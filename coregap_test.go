package coregap

// Integration tests through the public facade: the API a downstream user
// actually programs against.

import (
	"testing"
)

func TestPublicAPISharedAndGapped(t *testing.T) {
	for _, tc := range []struct {
		name  string
		opts  Options
		vcpus int
	}{
		{"baseline", Baseline(), 4},
		{"gapped", GappedDefault(), 3},
		{"gapped-nodeleg", GappedNoDelegation(), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			node := NewNode(4, tc.opts, DefaultParams(), 7)
			cm := NewCoreMark(tc.vcpus, 50*Millisecond)
			vm, err := node.NewVM("vm", tc.vcpus, cm)
			if err != nil {
				t.Fatal(err)
			}
			end := node.RunUntilAllHalted(10 * Second)
			if !cm.Done() {
				t.Fatal("workload incomplete")
			}
			score := cm.Score(Duration(end))
			if score < float64(tc.vcpus)*0.9 {
				t.Fatalf("score = %.2f, want ~%d", score, tc.vcpus)
			}
			if tc.opts.Mode == Gapped {
				if len(vm.GuestCores()) != tc.vcpus {
					t.Fatal("dedicated core count")
				}
				tok, err := node.Mon.Token(vm.Realm(), [32]byte{1})
				if err != nil || !tok.CoreGapped {
					t.Fatalf("attestation: %v", err)
				}
			}
		})
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	node := NewNode(3, GappedDefault(), DefaultParams(), 7)
	z := NewIOzone(64<<10, false, 1<<20)
	if _, err := node.NewVM("io", 1, z); err != nil {
		t.Fatal(err)
	}
	node.RunUntilAllHalted(10 * Second)
	if z.Moved() != 1<<20 {
		t.Fatalf("moved %d", z.Moved())
	}
}

func TestPublicAPIVulnCatalogue(t *testing.T) {
	vulns := VulnCatalogue()
	if len(vulns) < 30 {
		t.Fatalf("catalogue = %d", len(vulns))
	}
	s := SummarizeVulns(vulns)
	if s.Mitigated < 30 || s.Total-s.Mitigated > 5 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPublicAPIAttackBattery(t *testing.T) {
	h := NewAttackHarness(7, 2, false)
	gapped := h.RunBattery(CoreGappedPlacement)
	if leaks := gapped.LeakedVulns(); len(leaks) != 1 || leaks[0] != "CrossTalk" {
		t.Fatalf("gapped leaks = %v", leaks)
	}
	shared := h.RunBattery(SharedTimeSlicedNoFlush)
	if len(shared.LeakedVulns()) < 20 {
		t.Fatal("shared battery leaked too little")
	}
}

func TestPublicAPIRedisTags(t *testing.T) {
	tag := EncodeOpTag(OpLRange100, 17)
	op, client := DecodeOpTag(tag)
	if op != OpLRange100 || client != 17 {
		t.Fatal("tag round trip")
	}
}

func TestPublicAPIExperimentRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	// Smoke the remaining runners through the facade (shape tests live
	// in internal/exp).
	if r := RunTable2(7); r.Table == nil || r.Async == 0 {
		t.Fatal("table2")
	}
	if fig := RunFig7(2, 100*Millisecond, 7); len(fig.Labels()) != 2 {
		t.Fatal("fig7")
	}
	if r := RunFig3(7); r.Timeline == nil {
		t.Fatal("fig3")
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	// The paper's eleven plus the repo's open-loop extensions.
	if len(Experiments()) != 14 {
		t.Fatalf("experiments = %v", Experiments())
	}
	if _, ok := LookupExperiment("table2"); !ok {
		t.Fatal("table2 not registered")
	}
	rep, err := RunExperiment("table2", ExpProfile{Seed: 7}, NewExpRunner(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value("async", "ns") == 0 || len(rep.Metas()) != 3 {
		t.Fatalf("report = %+v", rep)
	}
	// A scenario executed directly is identical to the same trial inside
	// the experiment.
	trial, err := ExecuteScenario(rep.Trials[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if trial.V("ns") != rep.Value("async", "ns") {
		t.Fatal("direct scenario execution diverged from the registry run")
	}
}
