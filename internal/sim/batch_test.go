package sim

import (
	"fmt"
	"testing"
)

// Tests for same-timestamp batch dispatch: Step pops the earliest event
// and all of its same-instant siblings in one popRun and fires them from
// the engine's batch buffer. These tests pin the semantics the rest of
// the repo relies on — (at, seq) FIFO order, cancellation of a batched
// sibling, Pending/NextEventTime visibility mid-batch, and Reset with a
// partially dispatched batch — on both queue implementations.

func batchEngines(f func(name string, e *Engine)) {
	for _, k := range []QueueKind{QueueHeap, QueueWheel} {
		f(k.String(), NewEngineQueue(1, k))
	}
}

// TestBatchSameInstantFIFO: a storm of events at one timestamp fires in
// schedule order, interleaved correctly with events a callback schedules
// at that same timestamp mid-batch (higher seq: they fire after the
// original run).
func TestBatchSameInstantFIFO(t *testing.T) {
	batchEngines(func(name string, e *Engine) {
		var got []int
		at := Time(100)
		for i := 0; i < 8; i++ {
			i := i
			e.At(at, "storm", func() {
				got = append(got, i)
				if i == 2 {
					// Scheduled mid-batch at the same instant: must fire
					// after the pre-existing run, in schedule order.
					e.At(at, "late", func() { got = append(got, 100) })
					e.At(at, "late", func() { got = append(got, 101) })
				}
			})
		}
		e.Run()
		want := []int{0, 1, 2, 3, 4, 5, 6, 7, 100, 101}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: fire order %v, want %v", name, got, want)
		}
		if e.Now() != at {
			t.Errorf("%s: now = %v, want %v", name, e.Now(), at)
		}
	})
}

// TestBatchCancelSibling: an event cancelling a later same-instant
// sibling suppresses it even though the sibling was already popped into
// the dispatch batch, and the cancelled handle goes inert immediately.
func TestBatchCancelSibling(t *testing.T) {
	batchEngines(func(name string, e *Engine) {
		var got []string
		var victim Event
		e.At(50, "killer", func() {
			got = append(got, "killer")
			if !victim.Pending() {
				t.Errorf("%s: batched sibling not Pending before cancel", name)
			}
			e.Cancel(victim)
			if victim.Pending() {
				t.Errorf("%s: cancelled batched sibling still Pending", name)
			}
		})
		victim = e.At(50, "victim", func() { got = append(got, "victim") })
		e.At(50, "after", func() { got = append(got, "after") })
		e.Run()
		if fmt.Sprint(got) != fmt.Sprint([]string{"killer", "after"}) {
			t.Errorf("%s: fire order %v, want [killer after]", name, got)
		}
		if e.EventsFired() != 2 {
			t.Errorf("%s: fired = %d, want 2", name, e.EventsFired())
		}
	})
}

// TestBatchPendingCounts: Pending and NextEventTime stay correct while
// part of a same-instant run sits in the dispatch batch.
func TestBatchPendingCounts(t *testing.T) {
	batchEngines(func(name string, e *Engine) {
		for i := 0; i < 4; i++ {
			e.At(10, "tie", func() {})
		}
		e.At(20, "later", func() {})
		if got := e.Pending(); got != 5 {
			t.Fatalf("%s: Pending = %d, want 5", name, got)
		}
		e.Step() // pops the whole run at 10, fires one
		if got := e.Pending(); got != 4 {
			t.Errorf("%s: Pending mid-batch = %d, want 4", name, got)
		}
		if got := e.NextEventTime(); got != 10 {
			t.Errorf("%s: NextEventTime mid-batch = %v, want 10", name, got)
		}
		e.Step()
		e.Step()
		e.Step()
		if got := e.NextEventTime(); got != 20 {
			t.Errorf("%s: NextEventTime after run = %v, want 20", name, got)
		}
	})
}

// TestBatchResetMidRun: Reset with a partially dispatched batch (live
// and cancelled leftovers alike) recycles every node and leaves a clean
// engine — and the recycled nodes are reused, not leaked.
func TestBatchResetMidRun(t *testing.T) {
	batchEngines(func(name string, e *Engine) {
		var victim Event
		for i := 0; i < 6; i++ {
			h := e.At(10, "tie", func() {})
			if i == 3 {
				victim = h
			}
		}
		e.Step() // move the run into the batch, fire the first
		e.Cancel(victim)
		e.Reset(2)
		if got := e.Pending(); got != 0 {
			t.Fatalf("%s: Pending after Reset = %d, want 0", name, got)
		}
		if e.Now() != 0 {
			t.Fatalf("%s: clock not rewound", name)
		}
		// The engine must be fully reusable: another same-instant storm
		// runs to completion.
		fired := 0
		for i := 0; i < 6; i++ {
			e.At(5, "tie", func() { fired++ })
		}
		e.Run()
		if fired != 6 {
			t.Errorf("%s: fired %d/6 after Reset", name, fired)
		}
	})
}

// TestBatchStopMidRun: Stop inside a batched event halts dispatch; the
// undelivered siblings stay pending and drain on Reset.
func TestBatchStopMidRun(t *testing.T) {
	batchEngines(func(name string, e *Engine) {
		fired := 0
		e.At(10, "stopper", func() { fired++; e.Stop() })
		e.At(10, "tail", func() { fired++ })
		e.At(10, "tail", func() { fired++ })
		e.Run()
		if fired != 1 {
			t.Fatalf("%s: fired %d, want 1 (Stop mid-batch)", name, fired)
		}
		if got := e.Pending(); got != 2 {
			t.Errorf("%s: Pending after Stop = %d, want 2", name, got)
		}
		e.Reset(3)
		if got := e.Pending(); got != 0 {
			t.Errorf("%s: Pending after Reset = %d, want 0", name, got)
		}
	})
}

// TestZeroAllocSameInstantStorm extends the engine's zero-alloc gate to
// batched dispatch: scheduling and firing a same-instant run allocates
// nothing once the pool and the batch buffer are warm.
func TestZeroAllocSameInstantStorm(t *testing.T) {
	allocGateEngines(func(name string, e *Engine) {
		fn := func() {}
		zeroAllocs(t, "same-instant storm/"+name, func() {
			at := e.Now() + 5
			for i := 0; i < 16; i++ {
				e.At(at, "storm", fn)
			}
			e.RunUntil(at)
		})
	})
}
