package sim

import (
	"fmt"
	"sort"
	"testing"
)

// TestWheelAgainstReference drives the wheelQueue directly (no engine)
// with random push/pop/remove/peek streams against a sorted-slice
// reference queue. It complements TestQueueDifferential by reaching
// states the engine never produces through its own invariants — e.g.
// peek storms between pops — and by checking node identity, not just
// observable order. The op log in failures doubles as a shrinker.
func TestWheelAgainstReference(t *testing.T) {
	for seed := uint64(1); seed < 2000; seed++ {
		src := NewSource(seed)
		q := newWheelQueue(nil)
		var ref []*event
		var live []*event
		seq := uint64(0)
		now := Time(0)
		var ops []string
		fail := func(msg string) {
			t.Fatalf("seed %d ops=%v: %s", seed, ops, msg)
		}
		for i := 0; i < 200; i++ {
			switch o := src.Intn(10); {
			case o < 5: // push
				var d int
				if src.Intn(10) == 0 {
					d = src.Intn(1_000_000)
				} else {
					d = src.Intn(700)
				}
				seq++
				ev := &event{at: now + Time(d), seq: seq}
				q.push(ev)
				ref = append(ref, ev)
				live = append(live, ev)
				ops = append(ops, fmt.Sprintf("push@%d#%d", ev.at, ev.seq))
			case o < 6: // remove random live
				if len(live) > 0 {
					j := src.Intn(len(live))
					ev := live[j]
					q.remove(ev)
					ops = append(ops, fmt.Sprintf("rm@%d#%d", ev.at, ev.seq))
					live = append(live[:j], live[j+1:]...)
					for k, e2 := range ref {
						if e2 == ev {
							ref = append(ref[:k], ref[k+1:]...)
							break
						}
					}
				}
			case o < 8: // pop
				sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
				got := q.pop()
				if len(ref) == 0 {
					if got != nil {
						fail("pop nonempty on empty ref")
					}
					continue
				}
				want := ref[0]
				if got != want {
					fail(fmt.Sprintf("pop mismatch got@%d#%d want@%d#%d", got.at, got.seq, want.at, want.seq))
				}
				if got.at < now {
					fail("time went backwards")
				}
				now = got.at
				ops = append(ops, fmt.Sprintf("pop@%d#%d", got.at, got.seq))
				ref = ref[1:]
				for k, e2 := range live {
					if e2 == got {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
			default: // peek
				sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
				got := q.peek()
				if len(ref) == 0 {
					if got != nil {
						fail("peek nonempty on empty")
					}
					continue
				}
				if got != ref[0] {
					fail("peek mismatch")
				}
			}
			if q.size() != len(ref) {
				fail("size mismatch")
			}
		}
	}
}
