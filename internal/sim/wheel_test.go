package sim

import (
	"fmt"
	"sort"
	"testing"
)

// TestWheelAgainstReference drives the wheelQueue directly (no engine)
// with random push/pop/remove/peek streams against a sorted-slice
// reference queue. It complements TestQueueDifferential by reaching
// states the engine never produces through its own invariants — e.g.
// peek storms between pops — and by checking node identity, not just
// observable order. The op log in failures doubles as a shrinker.
func TestWheelAgainstReference(t *testing.T) {
	for seed := uint64(1); seed < 2000; seed++ {
		src := NewSource(seed)
		q := newWheelQueue(nil)
		var ref []*event
		var live []*event
		seq := uint64(0)
		now := Time(0)
		var ops []string
		fail := func(msg string) {
			t.Fatalf("seed %d ops=%v: %s", seed, ops, msg)
		}
		for i := 0; i < 200; i++ {
			switch o := src.Intn(10); {
			case o < 5: // push
				var d int
				if src.Intn(10) == 0 {
					d = src.Intn(1_000_000)
				} else {
					d = src.Intn(700)
				}
				seq++
				ev := &event{at: now + Time(d), seq: seq}
				q.push(ev)
				ref = append(ref, ev)
				live = append(live, ev)
				ops = append(ops, fmt.Sprintf("push@%d#%d", ev.at, ev.seq))
			case o < 6: // remove random live
				if len(live) > 0 {
					j := src.Intn(len(live))
					ev := live[j]
					q.remove(ev)
					ops = append(ops, fmt.Sprintf("rm@%d#%d", ev.at, ev.seq))
					live = append(live[:j], live[j+1:]...)
					for k, e2 := range ref {
						if e2 == ev {
							ref = append(ref[:k], ref[k+1:]...)
							break
						}
					}
				}
			case o < 7: // pop
				sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
				got := q.pop()
				if len(ref) == 0 {
					if got != nil {
						fail("pop nonempty on empty ref")
					}
					continue
				}
				want := ref[0]
				if got != want {
					fail(fmt.Sprintf("pop mismatch got@%d#%d want@%d#%d", got.at, got.seq, want.at, want.seq))
				}
				if got.at < now {
					fail("time went backwards")
				}
				now = got.at
				ops = append(ops, fmt.Sprintf("pop@%d#%d", got.at, got.seq))
				ref = ref[1:]
				for k, e2 := range live {
					if e2 == got {
						live = append(live[:k], live[k+1:]...)
						break
					}
				}
			case o < 8: // popRun: the min plus every same-timestamp sibling
				sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
				run := q.popRun(nil)
				if len(ref) == 0 {
					if len(run) != 0 {
						fail("popRun nonempty on empty ref")
					}
					continue
				}
				wantN := 1
				for wantN < len(ref) && ref[wantN].at == ref[0].at {
					wantN++
				}
				if len(run) != wantN {
					fail(fmt.Sprintf("popRun len=%d want=%d", len(run), wantN))
				}
				for k, got := range run {
					if got != ref[k] {
						fail(fmt.Sprintf("popRun[%d] mismatch got@%d#%d want@%d#%d",
							k, got.at, got.seq, ref[k].at, ref[k].seq))
					}
					if got.index != -1 {
						fail("popRun left index set")
					}
				}
				now = run[0].at
				ops = append(ops, fmt.Sprintf("popRun@%d n=%d", now, len(run)))
				for _, got := range run {
					for k, e2 := range live {
						if e2 == got {
							live = append(live[:k], live[k+1:]...)
							break
						}
					}
				}
				ref = ref[wantN:]
			default: // peek
				sort.Slice(ref, func(a, b int) bool { return less(ref[a], ref[b]) })
				got := q.peek()
				if len(ref) == 0 {
					if got != nil {
						fail("peek nonempty on empty")
					}
					continue
				}
				if got != ref[0] {
					fail("peek mismatch")
				}
			}
			if q.size() != len(ref) {
				fail("size mismatch")
			}
		}
	}
}
