package sim

import "testing"

// TestSkipMatchesDraws: Skip(k) must leave the stream in exactly the
// state k discarded draws would, across the loop/matrix crossover and
// for awkward k (powers of two, primes, the fill sizes the µarch
// models actually use).
func TestSkipMatchesDraws(t *testing.T) {
	ks := []uint64{0, 1, 2, 3, 7, 63, 64, 65, 255, 256, 257, 511, 1000,
		1024, 2048, 4096, 12007, 16384, 32768, 100000, 1 << 20}
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		for _, k := range ks {
			slow := NewSource(seed)
			for i := uint64(0); i < k; i++ {
				slow.Uint64()
			}
			fast := NewSource(seed)
			fast.Skip(k)
			if fast.s != slow.s {
				t.Fatalf("seed %#x k=%d: Skip state %x, draws state %x", seed, k, fast.s, slow.s)
			}
			// The next draws must agree too (catches output-path bugs).
			for i := 0; i < 4; i++ {
				if g, w := fast.Uint64(), slow.Uint64(); g != w {
					t.Fatalf("seed %#x k=%d draw %d: %x != %x", seed, k, i, g, w)
				}
			}
		}
	}
}

// TestSkipComposes: Skip(a) then Skip(b) equals Skip(a+b) — the
// property Touch relies on when it skips one summed batch for all
// fourteen per-core buffers.
func TestSkipComposes(t *testing.T) {
	a, b := uint64(1234), uint64(876543)
	x := NewSource(9)
	x.Skip(a)
	x.Skip(b)
	y := NewSource(9)
	y.Skip(a + b)
	if x.s != y.s {
		t.Fatalf("Skip(%d)+Skip(%d) != Skip(%d)", a, b, a+b)
	}
}

// TestSourceStateRoundTrip: State/SetState snapshot and restore the
// stream exactly — the replay hook for lazy fill materialization.
func TestSourceStateRoundTrip(t *testing.T) {
	s := NewSource(5)
	s.Skip(1000)
	saved := s.State()
	var want [8]uint64
	for i := range want {
		want[i] = s.Uint64()
	}
	s.SetState(saved)
	for i := range want {
		if g := s.Uint64(); g != want[i] {
			t.Fatalf("draw %d after restore: %x != %x", i, g, want[i])
		}
	}
}

func BenchmarkSkipMemoized(b *testing.B) {
	s := NewSource(1)
	s.Skip(20000) // warm the memo for this k
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Skip(20000)
	}
}

func BenchmarkSkipLoop(b *testing.B) {
	s := NewSource(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Skip(200)
	}
}
