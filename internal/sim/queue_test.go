package sim

import (
	"fmt"
	"testing"
)

// Differential property test: the heap and the wheel must be
// observationally indistinguishable. Both engines are driven with the
// same fuzzed schedule/cancel/run stream derived from a seeded Source,
// and every observable — fire order (time and label), handle liveness,
// pending counts, NextEventTime at run boundaries — must match
// exactly. `make check` runs this via the ordinary test suite; the
// 64-seed sweep keeps it fast enough for every run while covering
// cascade boundaries, same-instant FIFO ties, re-anchoring on empty,
// and cancel-under-cascade interleavings.

// queueScript drives one engine with a deterministic pseudo-random
// mix of operations and returns the observable trace.
func queueScript(e *Engine, seed uint64, ops int) []string {
	var out []string
	src := NewSource(seed) // engine-independent: both sides see the same ops
	var handles []Event
	record := func(tag string) {
		out = append(out, fmt.Sprintf("%s now=%d pend=%d next=%d", tag, e.Now(), e.Pending(), e.NextEventTime()))
	}
	for i := 0; i < ops; i++ {
		switch op := src.Intn(100); {
		case op < 45: // schedule, biased to short deltas with a long tail
			var d Duration
			switch src.Intn(10) {
			case 0:
				d = Duration(src.Intn(1_000_000)) // far timer
			case 1:
				d = 0 // same-instant tie
			default:
				d = Duration(src.Intn(700) + 1) // short IPI/timer delta
			}
			label := fmt.Sprintf("ev%d", i)
			h := e.After(d, label, func() { out = append(out, "fire "+label) })
			handles = append(handles, h)
		case op < 60: // cancel a random outstanding handle (may be stale)
			if len(handles) > 0 {
				j := src.Intn(len(handles))
				e.Cancel(handles[j])
			}
		case op < 70: // probe a random handle's liveness
			if len(handles) > 0 {
				j := src.Intn(len(handles))
				h := handles[j]
				out = append(out, fmt.Sprintf("probe %d pending=%v at=%d", j, h.Pending(), h.Time()))
			}
		case op < 90: // run a bounded slice
			e.RunFor(Duration(src.Intn(2000)))
			record("ran")
		default: // single step
			e.Step()
			record("stepped")
		}
	}
	e.Run()
	record("drained")
	return out
}

func TestQueueDifferential(t *testing.T) {
	for seed := uint64(1); seed <= 64; seed++ {
		heap := NewEngineQueue(seed, QueueHeap)
		wheel := NewEngineQueue(seed, QueueWheel)
		want := queueScript(heap, seed, 400)
		got := queueScript(wheel, seed, 400)
		if len(want) != len(got) {
			t.Fatalf("seed %d: trace length heap=%d wheel=%d", seed, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("seed %d: trace diverges at %d:\nheap:  %s\nwheel: %s", seed, i, want[i], got[i])
			}
		}
	}
}

// TestQueueDifferentialReset replays the differential check across a
// Reset boundary: a drained, reset wheel engine must keep matching the
// heap on a fresh stream, proving drain leaves no residue (occupancy
// bits, base, cached min).
func TestQueueDifferentialReset(t *testing.T) {
	heap := NewEngineQueue(7, QueueHeap)
	wheel := NewEngineQueue(7, QueueWheel)
	for round := 0; round < 8; round++ {
		seed := uint64(100 + round)
		heap.Reset(seed)
		wheel.Reset(seed)
		// Leave events pending at Reset half the time to exercise drain.
		ops := 300 + round*37
		want := queueScriptNoDrain(heap, seed, ops, round%2 == 0)
		got := queueScriptNoDrain(wheel, seed, ops, round%2 == 0)
		if len(want) != len(got) {
			t.Fatalf("round %d: trace length heap=%d wheel=%d", round, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("round %d: trace diverges at %d:\nheap:  %s\nwheel: %s", round, i, want[i], got[i])
			}
		}
	}
}

func queueScriptNoDrain(e *Engine, seed uint64, ops int, drain bool) []string {
	out := queueScript(e, seed, ops)
	if drain {
		e.Run()
	}
	return out
}
