package sim

import "fmt"

// Timer is a re-armable one-shot timer bound to an engine. It wraps the
// cancel-and-reschedule pattern used pervasively by periodic hardware
// timers and watchdogs in the models.
type Timer struct {
	eng   *Engine
	ev    Event
	label string
	fn    func()
}

// NewTimer returns an unarmed timer that will invoke fn when it fires.
func NewTimer(eng *Engine, label string, fn func()) *Timer {
	return &Timer{eng: eng, label: label, fn: fn}
}

// Arm (re)schedules the timer to fire after d. Any previously pending
// expiry is cancelled.
func (t *Timer) Arm(d Duration) {
	t.Disarm()
	t.ev = t.eng.After(d, t.label, func() {
		t.ev = Event{}
		t.fn()
	})
}

// ArmAt (re)schedules the timer to fire at absolute time at.
func (t *Timer) ArmAt(at Time) {
	t.Disarm()
	t.ev = t.eng.At(at, t.label, func() {
		t.ev = Event{}
		t.fn()
	})
}

// Disarm cancels a pending expiry, if any.
func (t *Timer) Disarm() {
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev.Pending() }

// Deadline reports when the timer will fire; valid only when Pending.
func (t *Timer) Deadline() Time {
	if !t.Pending() {
		return Forever
	}
	return t.ev.Time()
}

// Ticker invokes fn every period, starting one period from Start.
// Unlike two chained Timers, it guarantees no drift: ticks fire at
// start+k*period exactly.
type Ticker struct {
	eng    *Engine
	label  string
	period Duration
	next   Time
	ev     Event
	fn     func()
}

// NewTicker returns a stopped ticker.
func NewTicker(eng *Engine, label string, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q with period %v", label, period))
	}
	return &Ticker{eng: eng, label: label, period: period, fn: fn}
}

// Start begins ticking. The first tick fires one period from now.
func (t *Ticker) Start() {
	t.Stop()
	t.next = t.eng.Now().Add(t.period)
	t.schedule()
}

func (t *Ticker) schedule() {
	t.ev = t.eng.At(t.next, t.label, func() {
		t.next = t.next.Add(t.period)
		t.schedule()
		t.fn()
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.eng.Cancel(t.ev)
	t.ev = Event{}
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.ev.Pending() }

// Period reports the tick interval.
func (t *Ticker) Period() Duration { return t.period }
