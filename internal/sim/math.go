package sim

import "math"

func mathLog(x float64) float64 { return math.Log(x) }
