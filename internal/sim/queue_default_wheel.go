//go:build coregap_wheel

package sim

// buildQueueKind under `-tags coregap_wheel`: the timing wheel becomes
// the default event queue for every NewEngine call.
const buildQueueKind = QueueWheel
