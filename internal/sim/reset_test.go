package sim

import (
	"testing"
)

// driveEngine runs a deterministic little workload — chained events,
// cancellations, two named sources — and returns a trace of everything
// observable: fire order, times, and drawn random values.
func driveEngine(e *Engine) []uint64 {
	var out []uint64
	a, b := e.Source("alpha"), e.Source("beta")
	for i := 0; i < 8; i++ {
		i := i
		e.After(Duration(1+i*3), "ev", func() {
			out = append(out, uint64(e.Now()), a.Uint64())
			if i%2 == 0 {
				e.After(2, "chained", func() { out = append(out, b.Uint64()) })
			}
		})
	}
	doomed := e.After(100, "doomed", func() { out = append(out, 0xdead) })
	e.Cancel(doomed)
	e.Run()
	out = append(out, e.EventsFired(), uint64(e.Now()))
	return out
}

// TestEngineResetMatchesFresh: after any amount of prior use, Reset(seed)
// must leave the engine observationally identical to NewEngine(seed) —
// same event order, same clock, same source streams.
func TestEngineResetMatchesFresh(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xfeedface} {
		want := driveEngine(NewEngine(seed))
		reused := NewEngine(99)
		driveEngine(reused)  // dirty it with a different seed
		reused.Reset(seed)
		if got := driveEngine(reused); !equalU64(got, want) {
			t.Errorf("seed %d: reset engine diverges from fresh\nfresh: %v\nreset: %v", seed, want, got)
		}
	}
}

// TestEngineResetDiscardsPending: events still queued at Reset never
// fire, and their handles become inert exactly like cancelled ones.
func TestEngineResetDiscardsPending(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.After(10, "pending", func() { fired = true })
	if !h.Pending() {
		t.Fatal("event should be pending before reset")
	}
	e.Reset(2)
	if h.Pending() {
		t.Error("handle still pending after reset")
	}
	e.Cancel(h) // must be a no-op, not a heap corruption
	e.Run()
	if fired {
		t.Error("event scheduled before reset fired after it")
	}
	if e.Now() != 0 || e.EventsFired() != 0 {
		t.Errorf("reset engine not rewound: now=%v fired=%d", e.Now(), e.EventsFired())
	}
}

// TestEngineResetSourcePointersSurvive: a *Source obtained before Reset
// keeps working afterwards and carries the new seed's stream — holders
// across a pooled trial boundary see exactly what a fresh lookup would.
func TestEngineResetSourcePointersSurvive(t *testing.T) {
	e := NewEngine(7)
	held := e.Source("held")
	held.Uint64() // advance the old stream
	e.Reset(11)
	fresh := NewEngine(11)
	for i := 0; i < 16; i++ {
		if got, want := held.Uint64(), fresh.Source("held").Uint64(); got != want {
			t.Fatalf("draw %d: held source = %d, fresh = %d", i, got, want)
		}
	}
	if e.Source("held") != held {
		t.Error("Source lookup after reset returned a different pointer")
	}
}

// TestEngineResetZeroAllocSteadyState: once warmed, Reset plus a full
// reuse cycle allocates nothing — the heap array, free list and sources
// all survive.
func TestEngineResetZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(3)
	driveEngine(e)
	e.Reset(3)
	var sink []uint64
	// One shared callback: per-iteration closures would charge the test
	// itself with an allocation per event.
	draw := func() { sink = append(sink, e.Source("alpha").Uint64()) }
	run := func() {
		e.Reset(3)
		for i := 0; i < 8; i++ {
			e.After(Duration(1+i), "ev", draw)
		}
		e.Run()
	}
	run() // warm sink capacity
	sink = sink[:0]
	allocs := testing.AllocsPerRun(20, func() {
		sink = sink[:0]
		run()
	})
	if allocs > 0 {
		t.Errorf("warmed Reset+run cycle allocates %.1f times, want 0", allocs)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
