package sim

import "math/bits"

// wheelQueue is a hierarchical timing wheel (hashed calendar queue),
// the O(1)-push sibling of the 4-ary heap in heap.go.
//
// Layout: 11 levels of 64 slots. A queued event's level is chosen from
// the highest bit in which its timestamp differs from the wheel's base
// (the running lower bound on every queued time), its slot from the
// 6-bit digit of the timestamp at that level:
//
//	level = floor(msb(at XOR base) / 6)      (0 when at == base)
//	slot  = (at >> (6*level)) & 63
//
// Level 0 slots therefore hold exactly one timestamp each; level k
// slots hold a 64^k-wide span of timestamps. 11 levels x 6 bits cover
// 66 bits — any int64 delta, so there is no overflow wheel.
//
// The key property the engine's determinism rests on is that this
// digit mapping is monotone in the timestamp: for at1 < at2 (both
// >= base), (level1, slot1) <= (level2, slot2) lexicographically. The
// earliest queued event is thus always in the lowest occupied slot of
// the lowest occupied level, found with two trailing-zero scans over
// the occupancy bitmaps.
//
// pop cascades: while the lowest occupied level is > 0, base advances
// to the start of that level's lowest occupied slot span and the
// slot's events are refiled one or more levels down (their digit at
// that level now matches base, so the XOR shrinks). Each refiled node
// bumps the wheel.cascade counter. Once level 0 is occupied, the head
// of its lowest slot is the minimum.
//
// Slot lists are intrusive circular doubly-linked lists threaded
// through the event nodes' next/prev fields, with the sentinel array
// embedded in the wheelQueue itself — push, remove, and cascade
// allocate nothing. Lists are kept seq-sorted: fresh pushes carry the
// globally maximal seq (tail append), and cascades refile an already
// sorted list in order into slots at levels that are empty at cascade
// time, so filtering preserves sortedness. FIFO order for same-instant
// events follows.
//
// peek must not restructure (RunUntil's boundary check runs between
// arbitrary events, and a cascade there would advance base past
// timestamps the model may still schedule), so it scans: the lowest
// occupied slot's list is time-sorted at level 0 (single timestamp,
// seq order) and scanned linearly at higher levels. The result is
// cached in min and invalidated by pop and by remove of the cached
// node.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelMask   = wheelSlots - 1
	wheelLevels = 11
)

var cWheelCascade = DefineCounter("wheel.cascade")

type wheelQueue struct {
	eng  *Engine // cascade counter/trace hookup; nil in standalone tests
	base Time    // lower bound on all queued times; advances only in pop
	n    int
	min  *event // cached peek result, nil when unknown

	levels uint16              // bitmap: level has at least one occupied slot
	occ    [wheelLevels]uint64 // bitmap per level: slot list is non-empty

	// slot holds the embedded list sentinels. A slot's list is empty
	// when its sentinel points to itself.
	slot [wheelLevels][wheelSlots]event
}

func newWheelQueue(eng *Engine) *wheelQueue {
	q := &wheelQueue{eng: eng}
	for l := range q.slot {
		for s := range q.slot[l] {
			sent := &q.slot[l][s]
			sent.next, sent.prev = sent, sent
			sent.index = -1
		}
	}
	return q
}

func (q *wheelQueue) kind() QueueKind { return QueueWheel }

func (q *wheelQueue) size() int { return q.n }

// file threads ev onto the slot list its timestamp maps to under the
// current base.
func (q *wheelQueue) file(ev *event) {
	lvl := 0
	if x := uint64(ev.at) ^ uint64(q.base); x != 0 {
		lvl = (63 - bits.LeadingZeros64(x)) / wheelBits
	}
	s := int(uint64(ev.at)>>(uint(lvl)*wheelBits)) & wheelMask
	sent := &q.slot[lvl][s]
	ev.prev = sent.prev
	ev.next = sent
	sent.prev.next = ev
	sent.prev = ev
	ev.index = int32(lvl<<wheelBits | s)
	q.occ[lvl] |= 1 << uint(s)
	q.levels |= 1 << uint(lvl)
}

// unlink detaches ev from its slot list and updates occupancy.
func (q *wheelQueue) unlink(ev *event) {
	ev.prev.next = ev.next
	ev.next.prev = ev.prev
	lvl, s := int(ev.index)>>wheelBits, int(ev.index)&wheelMask
	sent := &q.slot[lvl][s]
	if sent.next == sent {
		q.occ[lvl] &^= 1 << uint(s)
		if q.occ[lvl] == 0 {
			q.levels &^= 1 << uint(lvl)
		}
	}
	ev.next, ev.prev = nil, nil
	ev.index = -1
	q.n--
}

func (q *wheelQueue) push(ev *event) {
	if q.n == 0 && q.eng != nil {
		// An empty wheel re-anchors base to the clock, keeping deltas
		// (and thus levels) small regardless of absolute time. The
		// anchor must be now, not ev.at: later pushes may carry any
		// timestamp >= now, and base must lower-bound them all.
		q.base = q.eng.now
	}
	q.file(ev)
	q.n++
	if q.min != nil && less(ev, q.min) {
		q.min = ev
	} else if q.n == 1 {
		q.min = ev
	}
}

func (q *wheelQueue) remove(ev *event) {
	q.unlink(ev)
	if ev == q.min {
		q.min = nil
	}
}

func (q *wheelQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	if q.min != nil {
		return q.min
	}
	lvl := bits.TrailingZeros16(q.levels)
	s := bits.TrailingZeros64(q.occ[lvl])
	sent := &q.slot[lvl][s]
	best := sent.next
	if lvl > 0 {
		// Higher-level lists are seq-sorted, not time-sorted: scan.
		// Strict less keeps the earliest-seq node among time ties.
		for ev := best.next; ev != sent; ev = ev.next {
			if less(ev, best) {
				best = ev
			}
		}
	}
	q.min = best
	return best
}

func (q *wheelQueue) pop() *event {
	if q.n == 0 {
		return nil
	}
	for {
		lvl := bits.TrailingZeros16(q.levels)
		if lvl == 0 {
			s := bits.TrailingZeros64(q.occ[0])
			ev := q.slot[0][s].next
			q.base = ev.at
			q.unlink(ev)
			q.min = nil
			return ev
		}
		q.cascade(lvl)
	}
}

// popRun pops the minimum node and every same-timestamp sibling. After
// pop returns the minimum at time T, base == T, and every remaining
// queued event at T sits in level-0 slot T&63: base only enters a
// 64-span by cascading the slot covering it, which refiles all of the
// span's events — same-timestamp events share every digit, so they
// travel down together. A level-0 slot holds exactly one timestamp, so
// the siblings are the whole (seq-sorted) slot list, drained in order.
func (q *wheelQueue) popRun(buf []*event) []*event {
	ev := q.pop()
	if ev == nil {
		return buf
	}
	buf = append(buf, ev)
	s := int(uint64(ev.at)) & wheelMask
	sent := &q.slot[0][s]
	for sent.next != sent {
		sib := sent.next
		q.unlink(sib)
		buf = append(buf, sib)
	}
	return buf
}

// cascade redistributes the lowest occupied slot of level lvl: base
// advances to the start of that slot's span and every event refiles at
// a strictly lower level. Target levels are empty when a cascade runs
// (the pop loop always works on the lowest occupied level), so
// refiling the seq-sorted source list in order keeps every target list
// seq-sorted.
func (q *wheelQueue) cascade(lvl int) {
	s := bits.TrailingZeros64(q.occ[lvl])
	shift := uint(lvl) * wheelBits
	span := uint64(1) << (shift + wheelBits)
	q.base = Time(uint64(q.base)&^(span-1) | uint64(s)<<shift)

	sent := &q.slot[lvl][s]
	first := sent.next
	last := sent.prev
	sent.next, sent.prev = sent, sent
	last.next = nil // terminate the detached chain
	q.occ[lvl] &^= 1 << uint(s)
	if q.occ[lvl] == 0 {
		q.levels &^= 1 << uint(lvl)
	}

	var moved uint64
	for ev := first; ev != nil; {
		next := ev.next
		q.file(ev)
		moved++
		ev = next
	}
	if q.eng != nil {
		q.eng.CountN(cWheelCascade, moved)
		if q.eng.trc != nil {
			q.eng.trc.EmitDetail(TCEngine, "cascade", "wheel", LaneGlobal, int64(moved))
		}
	}
}

func (q *wheelQueue) drain(recycle func(*event)) {
	for q.levels != 0 {
		lvl := bits.TrailingZeros16(q.levels)
		for q.occ[lvl] != 0 {
			s := bits.TrailingZeros64(q.occ[lvl])
			sent := &q.slot[lvl][s]
			for sent.next != sent {
				ev := sent.next
				q.unlink(ev)
				recycle(ev)
			}
		}
	}
	q.base = 0
	q.min = nil
}
