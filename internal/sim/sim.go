// Package sim provides a deterministic discrete-event simulation engine
// with nanosecond resolution.
//
// All higher-level models in this repository (hardware, firmware, host OS,
// devices, workloads) are built on this engine. Determinism is guaranteed
// by a strict (time, sequence) ordering of events and by requiring all
// randomness to flow through seeded Source values obtained from the engine.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is an absolute simulation timestamp in nanoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time package conventions.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a time later than any reachable simulation instant.
const Forever Time = math.MaxInt64

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmtDuration(Duration(t)) }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Nanos reports d as an integer nanosecond count.
func (d Duration) Nanos() int64 { return int64(d) }

func (d Duration) String() string { return fmtDuration(d) }

func fmtDuration(d Duration) string {
	switch {
	case d < 0:
		return "-" + fmtDuration(-d)
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(Second))
	}
}

// Event is a cancellation handle for a scheduled callback, returned by
// the scheduling methods so callers can cancel pending events (for
// example when a timer is re-armed or a compute slice is preempted).
//
// The handle is a value: it pairs the engine-owned queue node with the
// node's generation at scheduling time. Nodes are recycled through a
// free list once fired or cancelled, so a handle can outlive its event;
// the generation check makes such stale handles inert — Pending reports
// false and Cancel is a no-op even after the node has been reused for
// an unrelated later event. The zero Event is a valid "no event" handle.
type Event struct {
	n   *event
	gen uint32
}

// valid reports whether the handle still refers to the event it was
// created for (the node has not been recycled since).
func (e Event) valid() bool { return e.n != nil && e.gen == e.n.gen }

// Time reports when the event will fire. Once the event has fired or
// been cancelled the association is gone and Time reports 0.
func (e Event) Time() Time {
	if !e.valid() {
		return 0
	}
	return e.n.at
}

// Label reports the diagnostic label given at scheduling time ("" once
// the event has fired or been cancelled).
func (e Event) Label() string {
	if !e.valid() {
		return ""
	}
	return e.n.label
}

// Pending reports whether the event is still queued (or popped into the
// engine's same-timestamp dispatch batch but not yet fired).
func (e Event) Pending() bool { return e.valid() && e.n.index != -1 }

// batchIndex marks a node's index while it sits in the engine's
// same-timestamp dispatch batch: popped from the queue together with
// its siblings but not yet fired. A batched node is still Pending and
// still cancellable — Cancel invalidates it in place (the batch owns
// the node, so it cannot be unlinked) and dispatch retires it without
// firing.
const batchIndex int32 = -2

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	q         eventQueue   // pending events; heap.go / wheel.go, selected in queue.go
	free      []*event     // recycled nodes; At/After allocate nothing in steady state
	recycleFn func(*event) // e.recycle, bound once so Reset's drain allocates nothing
	stopped   bool
	seed      uint64
	sources   map[string]*Source

	// Same-timestamp dispatch batch: Step pops the earliest event and
	// every sibling sharing its timestamp in one popRun, then fires them
	// from this buffer without re-touching the queue top per event. The
	// buffer is reused across runs, so batching allocates nothing in
	// steady state.
	batch    []*event
	batchPos int

	// Stats.
	fired     uint64
	cancelled uint64

	// Observability: nil tracer / empty bank when disabled, so the
	// scheduling hot path pays one branch each. See tracer.go and
	// counter.go.
	trc    *Tracer
	counts []uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// sources derive from seed, using the process-default event queue (see
// SetDefaultQueue).
func NewEngine(seed uint64) *Engine {
	return NewEngineQueue(seed, defaultQueue)
}

// NewEngineQueue returns an engine backed by an explicit event-queue
// implementation. The choice changes performance only: event order,
// handles, and every observable stream are identical across kinds.
func NewEngineQueue(seed uint64, k QueueKind) *Engine {
	e := &Engine{seed: seed, sources: make(map[string]*Source)}
	e.q = newQueue(e, k)
	e.recycleFn = e.recycle
	return e
}

// QueueKind reports which event-queue implementation backs this engine.
func (e *Engine) QueueKind() QueueKind { return e.q.kind() }

// Reset rewinds the engine to its just-constructed state for a new seed
// while keeping every backing allocation: the heap's array, the node
// free list, and all named sources (reseeded in place, so holders of a
// *Source keep a valid pointer to the fresh deterministic stream). A
// pooled engine therefore reaches steady state with no per-trial
// allocation, and a reset engine is observationally identical to
// NewEngine(seed) — Source(name) streams depend only on (seed, name),
// never on creation order or prior use.
//
// Events still queued are discarded; their handles are invalidated by
// the generation bump exactly as if they had been cancelled.
func (e *Engine) Reset(seed uint64) {
	e.q.drain(e.recycleFn)
	for _, ev := range e.batch[e.batchPos:] {
		ev.index = -1
		if ev.fn == nil {
			// Cancelled while batched: Cancel already bumped the
			// generation; just retire the node.
			e.free = append(e.free, ev)
			continue
		}
		e.recycle(ev)
	}
	e.batch = e.batch[:0]
	e.batchPos = 0
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.seed = seed
	e.fired = 0
	e.cancelled = 0
	e.trc = nil
	clear(e.counts)
	for name, s := range e.sources {
		s.reseed(mix(seed, hashString(name)))
	}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the root seed the engine was constructed with.
func (e *Engine) Seed() uint64 { return e.seed }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug.
func (e *Engine) At(t Time, label string, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.label = label
	e.q.push(ev)
	if e.trc != nil {
		e.trc.EmitDetail(TCEngine, "sched", label, LaneGlobal, int64(ev.seq))
	}
	return Event{n: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now. Negative d is clamped
// to zero.
func (e *Engine) After(d Duration, label string, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), label, fn)
}

// Cancel removes a pending event. Cancelling a fired, cancelled, stale
// or zero handle is a no-op, so callers need not track event lifetimes
// precisely.
func (e *Engine) Cancel(ev Event) {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.index == -1 {
		return
	}
	if e.trc != nil {
		e.trc.EmitDetail(TCEngine, "cancel", n.label, LaneGlobal, int64(n.seq))
	}
	if n.index == batchIndex {
		// Popped into the dispatch batch with its same-timestamp
		// siblings: the batch owns the node, so invalidate it in place
		// and let dispatch retire it without firing.
		n.gen++
		n.fn = nil
		n.label = ""
		e.cancelled++
		return
	}
	e.q.remove(n)
	e.recycle(n)
	e.cancelled++
}

// Step executes the single next event, advancing the clock. It reports
// false when no events remain.
//
// Dispatch is batched by timestamp: when the earliest event has
// same-instant siblings, one popRun moves the whole run into e.batch
// and subsequent Steps fire from the buffer without a queue operation
// each. The (at, seq) total order is preserved exactly — the run is
// popped in order, and anything scheduled during dispatch carries a
// higher seq, so it files behind the batch even at the same timestamp.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for {
		for e.batchPos < len(e.batch) {
			ev := e.batch[e.batchPos]
			e.batch[e.batchPos] = nil
			e.batchPos++
			if ev.fn == nil {
				// Cancelled while batched: retire without firing (the
				// generation was bumped at cancel time).
				ev.index = -1
				e.free = append(e.free, ev)
				continue
			}
			if ev.at < e.now {
				panic("sim: event queue corrupted (time went backwards)")
			}
			ev.index = -1
			e.now = ev.at
			e.fired++
			fn := ev.fn
			if e.trc != nil {
				e.trc.EmitDetail(TCEngine, "fire", ev.label, LaneGlobal, int64(ev.seq))
			}
			// Recycle before running fn: the callback may schedule
			// follow-up events, and handing it this node keeps the pool
			// at its steady-state size. The generation bump has already
			// invalidated the fired event's own handle.
			e.recycle(ev)
			fn()
			return true
		}
		e.batch = e.q.popRun(e.batch[:0])
		e.batchPos = 0
		if len(e.batch) == 0 {
			return false
		}
		for _, ev := range e.batch {
			ev.index = batchIndex
		}
	}
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// peekNext reports the next event to dispatch — the head of the current
// same-timestamp batch (retiring cancelled entries on the way), else the
// queue top. nil when nothing is pending.
func (e *Engine) peekNext() *event {
	for e.batchPos < len(e.batch) {
		ev := e.batch[e.batchPos]
		if ev.fn != nil {
			return ev
		}
		e.batch[e.batchPos] = nil
		e.batchPos++
		ev.index = -1
		e.free = append(e.free, ev)
	}
	return e.q.peek()
}

// RunUntil executes events with timestamps <= t, then sets the clock to t
// (if it has not already passed it). Events scheduled exactly at t run.
func (e *Engine) RunUntil(t Time) {
	for !e.stopped {
		m := e.peekNext()
		if m == nil || m.at > t {
			break
		}
		e.Step()
	}
	if e.now < t && !e.stopped {
		e.now = t
	}
}

// RunFor advances the clock by d. See RunUntil.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending reports the number of queued events, including any popped
// into the dispatch batch but not yet fired.
func (e *Engine) Pending() int {
	n := e.q.size()
	for _, ev := range e.batch[e.batchPos:] {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// NextEventTime reports the timestamp of the earliest queued event, or
// Forever when the queue is empty.
func (e *Engine) NextEventTime() Time {
	m := e.peekNext()
	if m == nil {
		return Forever
	}
	return m.at
}

// Source returns a named deterministic random source. The same (seed, name)
// pair always yields the same stream, independent of the order in which
// sources are created or used relative to one another.
func (e *Engine) Source(name string) *Source {
	if s, ok := e.sources[name]; ok {
		return s
	}
	s := NewSource(mix(e.seed, hashString(name)))
	e.sources[name] = s
	return s
}

// SourceNames reports the names of all sources created so far, sorted.
func (e *Engine) SourceNames() []string {
	names := make([]string, 0, len(e.sources))
	for n := range e.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
