package sim

import "testing"

// Microbenchmarks for the engine hot path. The steady-state numbers
// here are the denominators every perf PR is judged against (`make
// bench` folds them into BENCH_4.json); the companion TestZeroAlloc*
// gates turn the free-list contract — no allocation on the
// schedule/fire path once the pool is warm — into a failing test
// rather than a benchmark footnote.

// BenchmarkSchedule measures the steady-state schedule→fire round trip:
// one After plus one Step, recycling a single pool node.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	e.After(1, "warm", fn)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, "bench", fn)
		e.Step()
	}
}

// BenchmarkCancel measures schedule→cancel, the re-arm pattern of every
// timer in the models.
func BenchmarkCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.After(1, "bench", fn))
	}
}

// BenchmarkChurn measures a deep-queue mix: 256 resident events, each
// iteration fires the earliest and schedules a replacement at a
// deterministic pseudo-random offset, exercising full-depth sifts.
func BenchmarkChurn(b *testing.B) {
	e := NewEngine(1)
	src := e.Source("churn")
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	}
}

// empiricalDelta samples the schedule-delta distribution observed on
// the real suite (sched->fire pairs from the engine flight recorder
// over table3/fig6/fig8 trials): 51% is the 5us scheduler tick, a
// third is sub-microsecond IPI/world-switch traffic (129ns-1.6us), and
// the tail has spikes at 500us (netpipe round), 4ms (redis think time)
// and beyond. The queue A/B is judged on this shape, not on uniform
// deltas: a calendar queue's cascade cost depends entirely on how
// often the clock crosses slot-span boundaries.
var empiricalDeltas = func() (table []Duration) {
	dist := []struct {
		d Duration
		w int
	}{
		{5000, 507}, {500000, 92}, {450, 80}, {500, 58}, {129, 35},
		{300, 32}, {600, 24}, {969, 24}, {23559, 20}, {800, 17},
		{4000000, 14}, {2000, 13}, {4059, 12}, {1350, 11}, {1250, 11},
		{9900, 11}, {1600, 7}, {6400, 3}, {2500, 2}, {200, 2},
		{262144, 1}, {210890875, 1},
	}
	for _, e := range dist {
		for i := 0; i < e.w; i++ {
			table = append(table, e.d)
		}
	}
	return table
}()

// BenchmarkScheduleShortDelta replays the empirical delta mix through a
// 256-deep resident queue: each iteration fires the earliest event and
// schedules a replacement at an empirically drawn offset.
func BenchmarkScheduleShortDelta(b *testing.B) {
	e := NewEngine(1)
	src := e.Source("bench")
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(empiricalDeltas[src.Intn(len(empiricalDeltas))], "resident", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.After(empiricalDeltas[src.Intn(len(empiricalDeltas))], "resident", fn)
	}
}

// BenchmarkTimerChurn replays the re-arm pattern of the models' timers
// against the empirical delta mix: 64 resident timers; each iteration
// cancels one, re-arms it at a fresh empirical offset, and steps the
// engine once — the cancel-heavy shape world-switch deadline timers
// produce.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	src := e.Source("bench")
	fn := func() {}
	var timers [64]Event
	for i := range timers {
		timers[i] = e.After(empiricalDeltas[src.Intn(len(empiricalDeltas))], "timer", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 63
		e.Cancel(timers[j])
		timers[j] = e.After(empiricalDeltas[src.Intn(len(empiricalDeltas))], "timer", fn)
		e.Step()
	}
}

// zeroAllocs asserts a hot-path operation allocates nothing per run
// once the engine pool is warm.
func zeroAllocs(t *testing.T, name string, op func()) {
	t.Helper()
	op() // warm the pool and the heap backing array
	if avg := testing.AllocsPerRun(1000, op); avg != 0 {
		t.Errorf("%s: %.2f allocs/op in steady state, want 0", name, avg)
	}
}

// allocGateEngines yields one engine per (queue kind, tracing) corner:
// both queue implementations must hold the zero-allocation invariant
// with the flight recorder off and on (ring emits are value writes, and
// wheel cascades may emit while stepping).
func allocGateEngines(f func(name string, e *Engine)) {
	for _, k := range []QueueKind{QueueHeap, QueueWheel} {
		for _, traced := range []bool{false, true} {
			e := NewEngineQueue(1, k)
			name := k.String()
			if traced {
				e.EnableTracing(1 << 12)
				name += "+trace"
			}
			f(name, e)
		}
	}
}

// TestZeroAllocScheduleFire is the allocation-regression gate for the
// BenchmarkSchedule path.
func TestZeroAllocScheduleFire(t *testing.T) {
	allocGateEngines(func(name string, e *Engine) {
		fn := func() {}
		zeroAllocs(t, "schedule+fire/"+name, func() {
			e.After(1, "gate", fn)
			e.Step()
		})
	})
}

// TestZeroAllocCancel gates the schedule→cancel path.
func TestZeroAllocCancel(t *testing.T) {
	allocGateEngines(func(name string, e *Engine) {
		fn := func() {}
		zeroAllocs(t, "schedule+cancel/"+name, func() {
			e.Cancel(e.After(1, "gate", fn))
		})
	})
}

// TestZeroAllocDeepQueue gates the full-depth restructuring path: the
// queue stays 256 deep while events churn through it (heap sifts,
// wheel slot relinks and cascades).
func TestZeroAllocDeepQueue(t *testing.T) {
	allocGateEngines(func(name string, e *Engine) {
		src := e.Source("gate")
		fn := func() {}
		for i := 0; i < 256; i++ {
			e.After(Duration(src.Intn(1000)+1), "resident", fn)
		}
		zeroAllocs(t, "deep-queue churn/"+name, func() {
			e.Step()
			e.After(Duration(src.Intn(1000)+1), "resident", fn)
		})
	})
}
