package sim

import "testing"

// Microbenchmarks for the engine hot path. The steady-state numbers
// here are the denominators every perf PR is judged against (`make
// bench` folds them into BENCH_4.json); the companion TestZeroAlloc*
// gates turn the free-list contract — no allocation on the
// schedule/fire path once the pool is warm — into a failing test
// rather than a benchmark footnote.

// BenchmarkSchedule measures the steady-state schedule→fire round trip:
// one After plus one Step, recycling a single pool node.
func BenchmarkSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	e.After(1, "warm", fn)
	e.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, "bench", fn)
		e.Step()
	}
}

// BenchmarkCancel measures schedule→cancel, the re-arm pattern of every
// timer in the models.
func BenchmarkCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.After(1, "bench", fn))
	}
}

// BenchmarkChurn measures a deep-queue mix: 256 resident events, each
// iteration fires the earliest and schedules a replacement at a
// deterministic pseudo-random offset, exercising full-depth sifts.
func BenchmarkChurn(b *testing.B) {
	e := NewEngine(1)
	src := e.Source("churn")
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	}
}

// zeroAllocs asserts a hot-path operation allocates nothing per run
// once the engine pool is warm.
func zeroAllocs(t *testing.T, name string, op func()) {
	t.Helper()
	op() // warm the pool and the heap backing array
	if avg := testing.AllocsPerRun(1000, op); avg != 0 {
		t.Errorf("%s: %.2f allocs/op in steady state, want 0", name, avg)
	}
}

// TestZeroAllocScheduleFire is the allocation-regression gate for the
// BenchmarkSchedule path.
func TestZeroAllocScheduleFire(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	zeroAllocs(t, "schedule+fire", func() {
		e.After(1, "gate", fn)
		e.Step()
	})
}

// TestZeroAllocCancel gates the schedule→cancel path.
func TestZeroAllocCancel(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	zeroAllocs(t, "schedule+cancel", func() {
		e.Cancel(e.After(1, "gate", fn))
	})
}

// TestZeroAllocDeepQueue gates the full-depth sift path: the queue
// stays 256 deep while events churn through it.
func TestZeroAllocDeepQueue(t *testing.T) {
	e := NewEngine(1)
	src := e.Source("gate")
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	}
	zeroAllocs(t, "deep-queue churn", func() {
		e.Step()
		e.After(Duration(src.Intn(1000)+1), "resident", fn)
	})
}
