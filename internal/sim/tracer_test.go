package sim

import "testing"

func TestTracerDisabledIsSafe(t *testing.T) {
	e := NewEngine(1)
	if e.Trace() != nil {
		t.Fatalf("new engine has a tracer attached")
	}
	// All methods on the nil tracer are no-ops.
	var tr *Tracer
	tr.Emit(TCWorld, "x", 0, 0)
	tr.Span(TCUarch, "y", 0, 5, 0)
	if tr.Len() != 0 || tr.Cap() != 0 || tr.Dropped() != 0 {
		t.Fatalf("nil tracer reports nonzero state")
	}
	if got := tr.Events(nil); got != nil {
		t.Fatalf("nil tracer returned events: %v", got)
	}
}

func TestTracerRecordsEngineOps(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTracing(16)
	ev := e.At(10, "a", func() {})
	e.At(20, "b", func() {})
	e.Cancel(ev)
	e.Run()

	got := tr.Events(nil)
	want := []struct {
		name, det string
		at        Time
	}{
		{"sched", "a", 0},
		{"sched", "b", 0},
		{"cancel", "a", 0},
		{"fire", "b", 20},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		g := got[i]
		if g.Name != w.name || g.Det != w.det || g.At != w.at || g.Cat != TCEngine {
			t.Errorf("event %d = %+v, want %v %q at %v", i, g, w.name, w.det, w.at)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTracing(4)
	for i := 0; i < 10; i++ {
		tr.Emit(TCIRQ, "ipi", int32(i), int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	got := tr.Events(nil)
	for i, ev := range got {
		if want := int64(6 + i); ev.Arg != want {
			t.Errorf("event %d arg = %d, want %d (ring should keep the newest)", i, ev.Arg, want)
		}
	}
}

func TestTracerTimestampsMonotone(t *testing.T) {
	e := NewEngine(7)
	tr := e.EnableTracing(0) // default capacity
	var tick func()
	n := 0
	tick = func() {
		tr.Span(TCWorld, "switch", 0, 30, 0)
		if n++; n < 50 {
			e.After(Duration(10*n), "tick", tick)
		}
	}
	e.After(0, "tick", tick)
	e.Run()
	evs := tr.Events(nil)
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("timestamps not monotone: event %d at %v after %v", i, evs[i].At, evs[i-1].At)
		}
	}
}

func TestResetDetachesTracerAndClearsCounters(t *testing.T) {
	id := DefineCounter("test.reset_detach")
	e := NewEngine(1)
	e.EnableTracing(8)
	e.Count(id)
	e.CountN(id, 4)
	if got := e.CounterValue(id); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	e.Reset(2)
	if e.Trace() != nil {
		t.Fatalf("Reset kept the tracer attached")
	}
	if got := e.CounterValue(id); got != 0 {
		t.Fatalf("CounterValue after Reset = %d, want 0", got)
	}
}

func TestDefineCounterIdempotent(t *testing.T) {
	a := DefineCounter("test.idem")
	b := DefineCounter("test.idem")
	if a != b {
		t.Fatalf("DefineCounter not idempotent: %d vs %d", a, b)
	}
	if got := CounterName(a); got != "test.idem" {
		t.Fatalf("CounterName = %q", got)
	}
	if CounterName(-1) != "counter?" || CounterName(CounterID(1<<30)) != "counter?" {
		t.Fatalf("out-of-range CounterName not defensive")
	}
}

func TestCountersIterationOrderAndValues(t *testing.T) {
	x := DefineCounter("test.iter_x")
	y := DefineCounter("test.iter_y")
	e := NewEngine(1)
	e.CountN(y, 3)
	e.Count(x)
	var names []string
	var vals []uint64
	e.Counters(func(name string, v uint64) {
		names = append(names, name)
		vals = append(vals, v)
	})
	// Registration order, zero counters skipped.
	ix, iy := -1, -1
	for i, n := range names {
		switch n {
		case "test.iter_x":
			ix = i
		case "test.iter_y":
			iy = i
		}
	}
	if ix == -1 || iy == -1 || ix > iy != (x > y) {
		t.Fatalf("iteration order wrong: %v", names)
	}
	if vals[ix] != 1 || vals[iy] != 3 {
		t.Fatalf("values wrong: %v", vals)
	}
}

// TestZeroAllocTraceEnabled pins down that tracing itself allocates
// nothing per event once the ring exists: emits are value writes.
func TestZeroAllocTraceEnabled(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTracing(1 << 10)
	id := DefineCounter("test.zero_alloc_emit")
	avg := testing.AllocsPerRun(1000, func() {
		tr.Emit(TCIRQ, "ipi", 3, 42)
		tr.Span(TCWorld, "switch", 0, 30, 1)
		e.Count(id)
	})
	if avg != 0 {
		t.Fatalf("emit+count allocates %v allocs/op, want 0", avg)
	}
}
