package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(30, "c", func() { got = append(got, 3) })
	e.After(10, "a", func() { got = append(got, 1) })
	e.After(20, "b", func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "same", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(10, "x", func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev)      // double-cancel is a no-op
	e.Cancel(Event{}) // zero handle is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ev.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

// TestStaleHandleAfterRecycle is the event-pool hazard regression test:
// once an event has been cancelled (or fired) its node goes back to the
// engine's free list and may be reused for an unrelated event. A handle
// held from before the recycle must read as not pending, must not
// cancel the node's new occupant, and must never fire the old callback.
func TestStaleHandleAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	oldFired, newFired := 0, 0
	ev1 := e.After(10, "old", func() { oldFired++ })
	e.Cancel(ev1)
	// The free list is LIFO, so this reuses ev1's node.
	ev2 := e.After(20, "new", func() { newFired++ })
	if ev2.n != ev1.n {
		t.Fatalf("free list did not recycle the cancelled node")
	}
	if ev1.Pending() {
		t.Fatal("stale handle reports pending after its node was recycled")
	}
	if ev1.Time() != 0 || ev1.Label() != "" {
		t.Fatalf("stale handle leaks recycled node state: at=%v label=%q", ev1.Time(), ev1.Label())
	}
	e.Cancel(ev1) // must not cancel ev2, which now owns the node
	if !ev2.Pending() {
		t.Fatal("stale Cancel killed the node's new occupant")
	}
	e.Run()
	if oldFired != 0 || newFired != 1 {
		t.Fatalf("fired old=%d new=%d, want 0/1", oldFired, newFired)
	}
	if ev2.Pending() {
		t.Fatal("fired event still pending")
	}
}

// TestEventPoolReuse: steady-state schedule/fire churn stays within the
// pool — the free list returns to its high-water mark after every fire,
// and the heap never regrows.
func TestEventPoolReuse(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var rec func()
	rec = func() {
		n++
		if n < 1000 {
			e.After(1, "rec", rec)
		}
	}
	e.After(1, "rec", rec)
	e.Run()
	if got := len(e.free); got != 1 {
		t.Fatalf("free list has %d nodes after single-chain churn, want 1", got)
	}
	if e.fired != 1000 {
		t.Fatalf("fired = %d, want 1000", e.fired)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Duration{5, 10, 15, 20} {
		d := d
		e.After(d, "t", func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=12, want 2", len(fired))
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %v, want 12", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineSchedulingInsideEvents(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 100 {
			e.After(1, "rec", rec)
		}
	}
	e.After(1, "rec", rec)
	e.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

// TestHeapStressRandom exercises the 4-ary heap with a random mix of
// schedules and cancellations and asserts the fundamental invariant:
// events fire in non-decreasing time order, FIFO within one instant,
// and cancelled events never fire.
func TestHeapStressRandom(t *testing.T) {
	e := NewEngine(123)
	src := e.Source("stress")
	type rec struct {
		at        Time
		seq       int
		cancelled bool
	}
	var fired []rec
	var handles []Event
	var meta []*rec
	for i := 0; i < 5000; i++ {
		at := Time(src.Intn(1000))
		r := &rec{at: at, seq: i}
		meta = append(meta, r)
		handles = append(handles, e.At(at, "s", func() { fired = append(fired, *r) }))
	}
	cancelled := 0
	for i := range handles {
		if src.Intn(3) == 0 {
			meta[i].cancelled = true
			e.Cancel(handles[i])
			cancelled++
		}
	}
	e.Run()
	if len(fired) != 5000-cancelled {
		t.Fatalf("fired %d events, want %d", len(fired), 5000-cancelled)
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("order violated at %d: (%v,%d) before (%v,%d)", i, a.at, a.seq, b.at, b.seq)
		}
	}
	for _, f := range fired {
		if f.cancelled {
			t.Fatalf("cancelled event (%v,%d) fired", f.at, f.seq)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(10, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, "past", func() {})
	})
	e.Run()
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.After(1, "a", func() { n++; e.Stop() })
	e.After(2, "b", func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("ran %d events after Stop, want 1", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestSourceDeterminism(t *testing.T) {
	a := NewEngine(42).Source("lat")
	b := NewEngine(42).Source("lat")
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverge at %d: %d != %d", i, x, y)
		}
	}
}

func TestSourceIndependence(t *testing.T) {
	e := NewEngine(42)
	a, b := e.Source("a"), e.Source("b")
	if a == b {
		t.Fatal("distinct names share a source")
	}
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for distinct names look identical (%d collisions)", same)
	}
	if e.Source("a") != a {
		t.Fatal("Source not memoized")
	}
}

func TestSourceUniformityProperties(t *testing.T) {
	s := NewSource(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if v := s.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestSourceDurationBounds(t *testing.T) {
	s := NewSource(9)
	f := func(a, b int32) bool {
		lo, hi := Duration(a), Duration(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		d := s.Duration(lo, hi)
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterBounds(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 1000; i++ {
		d := s.Jitter(1000, 0.1)
		if d < 900 || d > 1100 {
			t.Fatalf("jitter out of bounds: %v", d)
		}
	}
	if s.Jitter(1000, 0) != 1000 {
		t.Fatal("zero jitter changed value")
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(13)
	var sum Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Exp(1000)
	}
	mean := float64(sum) / n
	if mean < 900 || mean > 1100 {
		t.Fatalf("Exp mean = %.1f, want ~1000", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(17)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestTimerRearmAndDisarm(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, "t", func() { fired++ })
	tm.Arm(10)
	tm.Arm(20) // re-arm cancels the first expiry
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("fired at %v, want 20", e.Now())
	}
	tm.Arm(5)
	tm.Disarm()
	e.Run()
	if fired != 1 {
		t.Fatal("disarmed timer fired")
	}
}

func TestTimerDeadline(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, "t", func() {})
	if tm.Pending() {
		t.Fatal("new timer pending")
	}
	if tm.Deadline() != Forever {
		t.Fatal("unarmed deadline not Forever")
	}
	tm.ArmAt(77)
	if !tm.Pending() || tm.Deadline() != 77 {
		t.Fatalf("deadline = %v, want 77", tm.Deadline())
	}
}

func TestTickerNoDrift(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, "tick", 7, func() { ticks = append(ticks, e.Now()) })
	tk.Start()
	e.RunUntil(70)
	tk.Stop()
	e.Run()
	if len(ticks) != 10 {
		t.Fatalf("got %d ticks, want 10", len(ticks))
	}
	for i, at := range ticks {
		if want := Time(7 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopRestart(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, "tick", 10, func() { n++ })
	tk.Start()
	e.RunUntil(25)
	tk.Stop()
	if tk.Running() {
		t.Fatal("stopped ticker running")
	}
	e.RunUntil(100)
	if n != 2 {
		t.Fatalf("ticks after stop: n = %d, want 2", n)
	}
	tk.Start()
	e.RunUntil(120)
	if n != 4 {
		t.Fatalf("restart failed: n = %d, want 4", n)
	}
}

func TestDurationFormatting(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{-500, "-500ns"},
		{25 * Microsecond, "25.00us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.00s"},
		{30 * Second, "30.00s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 100
	if tm.Add(50) != 150 {
		t.Fatal("Add")
	}
	if Time(150).Sub(tm) != 50 {
		t.Fatal("Sub")
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine(1)
	if e.NextEventTime() != Forever {
		t.Fatal("empty queue should report Forever")
	}
	e.After(42, "x", func() {})
	if e.NextEventTime() != 42 {
		t.Fatalf("NextEventTime = %v, want 42", e.NextEventTime())
	}
}

func TestEngineFullDeterminism(t *testing.T) {
	run := func() (Time, uint64) {
		e := NewEngine(99)
		src := e.Source("w")
		var last Time
		var rec func()
		n := 0
		rec = func() {
			last = e.Now()
			n++
			if n < 500 {
				e.After(src.Duration(1, 100), "r", rec)
			}
		}
		e.After(1, "r", rec)
		e.Run()
		return last, e.EventsFired()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}
