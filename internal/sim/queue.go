package sim

import "fmt"

// eventQueue is the engine's pending-event set. Both implementations —
// the 4-ary min-heap (heap.go) and the hierarchical timing wheel
// (wheel.go) — provide the identical contract:
//
//   - pop yields events in strict (at, seq) order, so same-instant
//     events fire FIFO regardless of implementation;
//   - popRun pops the earliest event *and every queued sibling with the
//     same timestamp* in one operation, appending them to buf in
//     (at, seq) order. The engine dispatches timer/IPI storms from the
//     returned run without re-touching the queue top per event; the
//     heap pays one O(1) peek per extra sibling, the wheel drains the
//     whole level-0 slot list (one timestamp per slot) in O(run);
//   - a queued node's index field is >= 0 (its meaning is private to
//     the implementation) and -1 once popped, removed, or drained,
//     which is what Event.Pending keys off (the engine re-marks nodes
//     it holds in a dispatch batch; see batchIndex in sim.go);
//   - peek never changes observable state (it may cache, never
//     restructure), so RunUntil boundary checks are free of side
//     effects on scheduling order;
//   - push/pop/remove allocate nothing in steady state, preserving the
//     zero-alloc gates in bench_test.go;
//   - drain recycles every queued node while keeping the backing
//     storage, so Engine.Reset stays allocation-free.
type eventQueue interface {
	push(ev *event)
	pop() *event  // minimum node, nil when empty
	peek() *event // minimum node without restructuring, nil when empty
	// popRun pops the minimum node and every same-timestamp sibling,
	// appending them to buf in (at, seq) order; buf unchanged when empty.
	popRun(buf []*event) []*event
	remove(ev *event)
	size() int
	drain(recycle func(*event))
	kind() QueueKind
}

// QueueKind selects an eventQueue implementation.
type QueueKind uint8

const (
	// QueueHeap is the 4-ary comparison min-heap: O(log n) push/pop,
	// O(log n) remove, fully insensitive to the time distribution.
	QueueHeap QueueKind = iota
	// QueueWheel is the hierarchical timing wheel: O(1) push and
	// remove, amortised O(1) pop on short-delta timer workloads, with
	// occasional cascades when the clock crosses a slot-span boundary.
	QueueWheel
)

func (k QueueKind) String() string {
	switch k {
	case QueueHeap:
		return "heap"
	case QueueWheel:
		return "wheel"
	default:
		return fmt.Sprintf("queue?%d", uint8(k))
	}
}

// ParseQueueKind resolves a -queue flag value.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "heap":
		return QueueHeap, nil
	case "wheel":
		return QueueWheel, nil
	default:
		return 0, fmt.Errorf("sim: unknown queue kind %q (want heap or wheel)", s)
	}
}

// defaultQueue is the process-wide queue selection for NewEngine. The
// compile-time default comes from the queue_default_*.go build-tag
// pair; SetDefaultQueue lets benchsuite's -queue flag override it at
// startup (before any engine is pooled).
var defaultQueue = buildQueueKind

// SetDefaultQueue overrides the queue implementation used by NewEngine.
// Call it before constructing engines; existing engines keep the queue
// they were built with (Reset preserves it).
func SetDefaultQueue(k QueueKind) { defaultQueue = k }

// DefaultQueue reports the queue implementation NewEngine will use.
func DefaultQueue() QueueKind { return defaultQueue }

func newQueue(e *Engine, k QueueKind) eventQueue {
	if k == QueueWheel {
		return newWheelQueue(e)
	}
	return &heapQueue{}
}
