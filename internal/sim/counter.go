package sim

// The counter registry is the simulated analogue of a CPU's perf
// counters: cheap named uint64 event counts that are always on.
//
// The split that keeps incrementing off the map: names are registered
// once, process-wide, at package init time (DefineCounter returns a
// dense CounterID), and each Engine owns a plain []uint64 bank indexed
// by that id. An increment on the hot path is a bounds check and an
// add — no map lookup, no interning, no allocation once the bank has
// grown to the registry size. Reading names back out (trial capture,
// CSV export) is the cold path and takes a lock.

import "sync"

// CounterID indexes a counter registered with DefineCounter. IDs are
// dense, process-wide, and stable for the life of the process.
type CounterID int32

var counterReg struct {
	sync.Mutex
	names []string
	index map[string]CounterID
}

// DefineCounter registers a named counter and returns its id.
// Registration is idempotent — the same name always yields the same
// id — and is meant to run from package-level var initialisation, e.g.
//
//	var cWorldSwitch = sim.DefineCounter("hw.world_switch")
//
// so that by the time any engine runs, the registry is complete.
func DefineCounter(name string) CounterID {
	counterReg.Lock()
	defer counterReg.Unlock()
	if counterReg.index == nil {
		counterReg.index = make(map[string]CounterID)
	}
	if id, ok := counterReg.index[name]; ok {
		return id
	}
	id := CounterID(len(counterReg.names))
	counterReg.names = append(counterReg.names, name)
	counterReg.index[name] = id
	return id
}

// NumCounters reports how many counters have been registered.
func NumCounters() int {
	counterReg.Lock()
	defer counterReg.Unlock()
	return len(counterReg.names)
}

// CounterName reports the name a CounterID was registered under.
func CounterName(id CounterID) string {
	counterReg.Lock()
	defer counterReg.Unlock()
	if id < 0 || int(id) >= len(counterReg.names) {
		return "counter?"
	}
	return counterReg.names[id]
}

// Count increments a counter by one.
func (e *Engine) Count(id CounterID) {
	if int(id) >= len(e.counts) {
		e.growCounts()
	}
	e.counts[id]++
}

// CountN increments a counter by n.
func (e *Engine) CountN(id CounterID, n uint64) {
	if int(id) >= len(e.counts) {
		e.growCounts()
	}
	e.counts[id] += n
}

// CounterValue reports a counter's value on this engine.
func (e *Engine) CounterValue(id CounterID) uint64 {
	if id < 0 || int(id) >= len(e.counts) {
		return 0
	}
	return e.counts[id]
}

// Counters calls f for every counter with a nonzero value on this
// engine, in registration (id) order — a deterministic iteration, fit
// for capture into per-trial output.
func (e *Engine) Counters(f func(name string, v uint64)) {
	for id, v := range e.counts {
		if v != 0 {
			f(CounterName(CounterID(id)), v)
		}
	}
}

// growCounts sizes the bank to the current registry. It runs at most a
// handful of times per engine (once, when every counter is registered
// at init time); after that Count is a pure array increment.
func (e *Engine) growCounts() {
	counterReg.Lock()
	n := len(counterReg.names)
	counterReg.Unlock()
	if n < cap(e.counts) {
		n = cap(e.counts)
	}
	grown := make([]uint64, n)
	copy(grown, e.counts)
	e.counts = grown
}
