package sim

// The 4-ary min-heap is the comparison-based eventQueue implementation,
// ordered by (at, seq). It replaces container/heap to keep the hot path
// free of interface boxing and indirect Less/Swap calls: tens of
// millions of events flow through push/pop per benchsuite run, and the
// comparison is two integer compares that the compiler can inline.
//
// A 4-ary layout halves the tree depth of a binary heap. Sift-down
// scans up to four children per level, but those nodes share at most
// two cache lines, so the trade wins on the pop-heavy workload of a
// discrete-event simulator.
//
// Fired and cancelled nodes are recycled through an engine-owned free
// list rather than garbage: in steady state At/After allocate nothing.
// Recycling is what makes the generation counter on event necessary —
// see Event in sim.go for the stale-handle story. The sibling
// implementation lives in wheel.go; queue.go owns the selection.

// event is the pooled, engine-owned queue node. External code never
// sees an *event; it holds an Event handle (node pointer + generation).
type event struct {
	at    Time
	seq   uint64
	gen   uint32 // bumped every time the node is recycled
	index int32  // queue position (heap index or wheel lvl<<6|slot), -1 while not queued
	fn    func()
	label string

	// Intrusive list links, used only while the node is filed in a
	// wheelQueue slot. nil under the heap implementation.
	next, prev *event
}

// less orders the queue by time, breaking ties by schedule order so
// same-instant events fire FIFO.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// alloc takes a node from the free list, or mints one when the pool is
// dry (cold start, or more events pending at once than ever before).
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle retires a fired or cancelled node to the free list. The
// generation bump invalidates every outstanding Event handle to the
// node, and dropping fn releases the callback's captures immediately.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.label = ""
	e.free = append(e.free, ev)
}

// heapQueue is the 4-ary min-heap eventQueue. The backing array is kept
// across drain/reset so a pooled engine reaches steady state with no
// per-trial allocation.
type heapQueue struct {
	h []*event
}

func (q *heapQueue) kind() QueueKind { return QueueHeap }

func (q *heapQueue) size() int { return len(q.h) }

func (q *heapQueue) peek() *event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) push(ev *event) {
	q.h = append(q.h, ev)
	q.siftUp(len(q.h) - 1)
}

// pop removes and returns the minimum node, or nil when empty.
func (q *heapQueue) pop() *event {
	h := q.h
	if len(h) == 0 {
		return nil
	}
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	q.h = h[:n]
	if n > 0 {
		h[0] = last
		last.index = 0
		q.siftDown(0)
	}
	top.index = -1
	return top
}

// popRun pops the minimum node and every same-timestamp sibling. Each
// sibling costs one peek (h[0], free) plus the pop it would have cost
// anyway; the win is on the engine side, which dispatches the run
// without a queue interaction per event.
func (q *heapQueue) popRun(buf []*event) []*event {
	ev := q.pop()
	if ev == nil {
		return buf
	}
	at := ev.at
	buf = append(buf, ev)
	for len(q.h) > 0 && q.h[0].at == at {
		buf = append(buf, q.pop())
	}
	return buf
}

// remove unlinks a queued node (cancellation).
func (q *heapQueue) remove(ev *event) {
	i := int(ev.index)
	h := q.h
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	q.h = h[:n]
	if i < n {
		h[i] = last
		last.index = int32(i)
		q.siftDown(i)
		if int(last.index) == i {
			q.siftUp(i)
		}
	}
	ev.index = -1
}

func (q *heapQueue) drain(recycle func(*event)) {
	for _, ev := range q.h {
		ev.index = -1
		recycle(ev)
	}
	q.h = q.h[:0]
}

func (q *heapQueue) siftUp(i int) {
	h := q.h
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !less(ev, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = ev
	ev.index = int32(i)
}

func (q *heapQueue) siftDown(i int) {
	h := q.h
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best, bv := first, h[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if cv := h[c]; less(cv, bv) {
				best, bv = c, cv
			}
		}
		if !less(bv, ev) {
			break
		}
		h[i] = bv
		bv.index = int32(i)
		i = best
	}
	h[i] = ev
	ev.index = int32(i)
}
