package sim

// Source is a small, fast, deterministic pseudo-random source
// (xoshiro256** seeded via splitmix64). It is intentionally independent of
// math/rand so that streams are stable across Go releases: reproduction
// runs must produce identical event traces forever.
type Source struct {
	s [4]uint64
}

// NewSource returns a source seeded from seed via splitmix64.
func NewSource(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

// reseed rewinds the source to the state NewSource(seed) would produce,
// in place, so pooled holders of the pointer see the fresh stream.
func (s *Source) reseed(seed uint64) {
	x := seed
	for i := range s.s {
		x = splitmix64(&x)
		s.s[i] = x
	}
	// Avoid the all-zero state, which is a fixed point of xoshiro.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics when n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform duration in [lo, hi]. It panics when hi < lo.
func (s *Source) Duration(lo, hi Duration) Duration {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	span := uint64(hi - lo + 1)
	return lo + Duration(s.Uint64()%span)
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
// It models natural run-to-run variation in latencies without
// compromising determinism.
func (s *Source) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	f := 1 - frac + 2*frac*s.Float64()
	return Duration(float64(d) * f)
}

// Exp returns an exponentially distributed duration with the given mean,
// clamped to [0, 50*mean] to keep event horizons bounded.
func (s *Source) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := s.Float64()
	if u <= 0 {
		u = 1e-12
	}
	d := Duration(-float64(mean) * ln(u))
	if d > 50*mean {
		d = 50 * mean
	}
	return d
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ln computes the natural logarithm via the standard library-compatible
// identity; kept as a tiny wrapper so the dependency surface of this
// package stays obvious.
func ln(x float64) float64 {
	// math.Log is deterministic across platforms for our purposes.
	return mathLog(x)
}

func mix(a, b uint64) uint64 {
	x := a ^ rotl(b, 29)
	x = splitmix64(&x)
	return x
}

func hashString(s string) uint64 {
	// FNV-1a, 64-bit.
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
