package sim

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Source.Skip: O(1)-ish fast-forward of the xoshiro256** stream.
//
// The xoshiro256** state transition (everything in Uint64 except the
// output scrambler) is linear over GF(2): each bit of the next state is
// an XOR of bits of the current state. One step is therefore a 256x256
// bit-matrix T applied to the state vector, and skipping k draws is
// applying T^k — computed once per distinct k from cached T^(2^i)
// powers and memoized, since the models use a small set of fill sizes
// over and over. A memoized skip costs one 256-column matrix-vector
// multiply (~1.5k simple ops), independent of k; skipping a million
// draws costs the same as skipping a thousand.
//
// Small k takes a plain loop instead: below a few hundred draws the
// loop is cheaper than the matrix apply, and the crossover keeps Skip
// strictly no slower than drawing.
//
// This is what makes lazy µarch fills (internal/uarch) exact: a fill
// that would consume n tag draws records its start state and calls
// Skip(n), so every later consumer of the shared stream sees precisely
// the state n draws would have produced, while the n values themselves
// are only materialized (by replay from the recorded start state) if
// an entry-level reader ever looks.

// xoMatrix is a 256x256 GF(2) matrix stored as 256 columns, each a
// 256-bit vector in 4 uint64 limbs: column i is M applied to unit
// vector e_i, so M·v = XOR of columns at v's set bits.
type xoMatrix [256][4]uint64

// xoStepState advances the xoshiro256** state by one draw without
// computing the (nonlinear, state-independent) output scrambler. It
// must stay exactly in sync with Source.Uint64.
func xoStepState(s [4]uint64) [4]uint64 {
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return s
}

func matVec(m *xoMatrix, v [4]uint64) (w [4]uint64) {
	for limb := 0; limb < 4; limb++ {
		rem := v[limb]
		base := limb << 6
		for rem != 0 {
			i := base + bits.TrailingZeros64(rem)
			rem &= rem - 1
			col := &m[i]
			w[0] ^= col[0]
			w[1] ^= col[1]
			w[2] ^= col[2]
			w[3] ^= col[3]
		}
	}
	return w
}

func matMul(a, b *xoMatrix) *xoMatrix {
	c := new(xoMatrix)
	for j := range b {
		c[j] = matVec(a, b[j])
	}
	return c
}

// xoPowers caches T^(2^i); xoJumps memoizes the composite matrix for
// each distinct skip count ever requested. Both are process-wide and
// written under xoMu; reads go through an atomically swapped immutable
// map so the per-Touch lookup on the hot path takes no lock.
var (
	xoMu     sync.Mutex
	xoPowers [64]*xoMatrix
	xoJumps  atomic.Pointer[map[uint64]*xoMatrix]
)

// skipLoopMax is the largest k Skip handles by drawing in a loop. A
// memoized matrix apply measures ~330ns against ~2.7ns per loop draw,
// so the crossover sits near 125 draws.
const skipLoopMax = 128

// Skip advances the stream exactly k draws: the state afterwards is
// identical to calling Uint64 k times and discarding the results.
func (s *Source) Skip(k uint64) {
	if k <= skipLoopMax {
		for i := uint64(0); i < k; i++ {
			t := s.s[1] << 17
			s.s[2] ^= s.s[0]
			s.s[3] ^= s.s[1]
			s.s[1] ^= s.s[2]
			s.s[0] ^= s.s[3]
			s.s[2] ^= t
			s.s[3] = rotl(s.s[3], 45)
		}
		return
	}
	s.s = matVec(jumpMatrix(k), s.s)
}

// jumpMatrix returns the memoized T^k.
func jumpMatrix(k uint64) *xoMatrix {
	if m := xoJumps.Load(); m != nil {
		if j, ok := (*m)[k]; ok {
			return j
		}
	}
	xoMu.Lock()
	defer xoMu.Unlock()
	// Re-check under the lock: another goroutine may have published k.
	old := xoJumps.Load()
	if old != nil {
		if j, ok := (*old)[k]; ok {
			return j
		}
	}
	var j *xoMatrix
	for i, rem := 0, k; rem != 0; i, rem = i+1, rem>>1 {
		if rem&1 == 0 {
			continue
		}
		p := xoPower(i)
		if j == nil {
			j = p
		} else {
			j = matMul(p, j)
		}
	}
	next := make(map[uint64]*xoMatrix)
	if old != nil {
		for kk, vv := range *old {
			next[kk] = vv
		}
	}
	next[k] = j
	xoJumps.Store(&next)
	return j
}

// xoPower returns T^(2^i), building (and caching) the chain up to i.
// Caller holds xoMu.
func xoPower(i int) *xoMatrix {
	if xoPowers[0] == nil {
		t := new(xoMatrix)
		for bit := 0; bit < 256; bit++ {
			var e [4]uint64
			e[bit>>6] = 1 << uint(bit&63)
			t[bit] = xoStepState(e)
		}
		xoPowers[0] = t
	}
	for p := 1; p <= i; p++ {
		if xoPowers[p] == nil {
			xoPowers[p] = matMul(xoPowers[p-1], xoPowers[p-1])
		}
	}
	return xoPowers[i]
}

// State returns the raw stream state, and SetState restores it — the
// snapshot/replay hooks lazy fills use to record where a deferred fill
// started and to re-derive its draws on materialization.
func (s *Source) State() [4]uint64 { return s.s }

// SetState overwrites the stream state with a snapshot taken earlier
// via State.
func (s *Source) SetState(st [4]uint64) { s.s = st }
