package sim

// Sim-time event tracing: a fixed-capacity, allocation-free flight
// recorder owned by the engine. Tracing is off by default — every emit
// site goes through a nil-receiver fast path that costs one branch, so
// the zero-allocation scheduling gates (TestZeroAlloc*) hold whether or
// not the binary was built with instrumentation compiled in.
//
// The buffer is a true ring: when full, the oldest events are
// overwritten and counted in Dropped. That is the flight-recorder
// contract — the end of a trial is almost always the interesting part —
// and it keeps Emit O(1) with no growth path.
//
// Event names must be static strings (package-level constants or
// struct-held labels); emit sites must never build a name with fmt or
// concatenation, or the "allocation-free" half of the contract breaks.
// Anything variable goes in Arg or Lane.

// TraceCat classifies trace events by the subsystem that emitted them.
// Categories become Perfetto track groups on export.
type TraceCat uint8

// Trace categories, one per instrumented subsystem edge.
const (
	TCEngine  TraceCat = iota // scheduler: schedule / fire / cancel
	TCWorld                   // CPU world switches (Normal/Realm/Root)
	TCExit                    // vCPU exits and re-entries
	TCIRQ                     // IPIs, GIC injection and delivery
	TCProxy                   // RMM/SMC calls proxied over the mailbox transport
	TCUarch                   // µarch flushes and LLC evictions
	TCGranule                 // granule delegation state transitions
	numTraceCats
)

var traceCatNames = [numTraceCats]string{
	"engine", "world", "exit", "irq", "proxy", "uarch", "granule",
}

func (c TraceCat) String() string {
	if int(c) < len(traceCatNames) {
		return traceCatNames[c]
	}
	return "trace?"
}

// LaneGlobal is the Lane value for events not tied to a specific core
// (engine queue operations, granule table transitions).
const LaneGlobal int32 = -1

// TraceEvent is one recorded simulation event. Events are fixed-size
// values; a Tracer's ring is a single []TraceEvent allocation.
type TraceEvent struct {
	At   Time     // sim-time timestamp
	Dur  Duration // span length; 0 for instant events
	Arg  int64    // event-specific payload (target core, PA, FID, ...)
	Name string   // static operation label, e.g. "hw.ipi"
	Det  string   // optional detail, e.g. the scheduled callback's label
	Lane int32    // core number, or LaneGlobal
	Cat  TraceCat
}

// Tracer records TraceEvents into a fixed-capacity ring. The zero of
// *Tracer (nil) is the disabled tracer: every method is safe to call
// and does nothing, which is what makes unconditional emit sites cheap.
type Tracer struct {
	eng     *Engine
	buf     []TraceEvent
	head    int    // next write slot
	n       int    // live events, <= len(buf)
	dropped uint64 // events overwritten after the ring filled
}

// DefaultTraceCap is the ring capacity used when a caller enables
// tracing without choosing one (64k events ≈ a few MB).
const DefaultTraceCap = 1 << 16

// EnableTracing attaches a fresh tracer with the given ring capacity
// (DefaultTraceCap if capacity <= 0) and returns it. Any previous
// tracer and its events are discarded. Engine.Reset detaches the
// tracer: a reset engine is observationally identical to a new one.
func (e *Engine) EnableTracing(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	e.trc = &Tracer{eng: e, buf: make([]TraceEvent, capacity)}
	return e.trc
}

// DisableTracing detaches the tracer, discarding recorded events.
func (e *Engine) DisableTracing() { e.trc = nil }

// Trace reports the attached tracer, or nil when tracing is disabled.
// The result is always safe to emit on: sites write
// e.Trace().Emit(...) unconditionally.
func (e *Engine) Trace() *Tracer { return e.trc }

// Emit records an instant event at the current simulation time.
func (tr *Tracer) Emit(cat TraceCat, name string, lane int32, arg int64) {
	if tr == nil {
		return
	}
	tr.add(TraceEvent{At: tr.eng.now, Cat: cat, Name: name, Lane: lane, Arg: arg})
}

// Span records an event covering [now, now+dur) — a world switch, a
// flush, an in-flight IPI.
func (tr *Tracer) Span(cat TraceCat, name string, lane int32, dur Duration, arg int64) {
	if tr == nil {
		return
	}
	tr.add(TraceEvent{At: tr.eng.now, Dur: dur, Cat: cat, Name: name, Lane: lane, Arg: arg})
}

// EmitDetail is Emit with a second label — e.g. the scheduled
// callback's queue label, or a mailbox name. Both strings must still be
// pre-existing (no per-emit formatting).
func (tr *Tracer) EmitDetail(cat TraceCat, name, det string, lane int32, arg int64) {
	if tr == nil {
		return
	}
	tr.add(TraceEvent{At: tr.eng.now, Cat: cat, Name: name, Det: det, Lane: lane, Arg: arg})
}

// SpanDetail is Span with a second label.
func (tr *Tracer) SpanDetail(cat TraceCat, name, det string, lane int32, dur Duration, arg int64) {
	if tr == nil {
		return
	}
	tr.add(TraceEvent{At: tr.eng.now, Dur: dur, Cat: cat, Name: name, Det: det, Lane: lane, Arg: arg})
}

func (tr *Tracer) add(ev TraceEvent) {
	if tr.n == len(tr.buf) {
		tr.dropped++
	} else {
		tr.n++
	}
	tr.buf[tr.head] = ev
	tr.head++
	if tr.head == len(tr.buf) {
		tr.head = 0
	}
}

// Len reports the number of retained events.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	return tr.n
}

// Cap reports the ring capacity.
func (tr *Tracer) Cap() int {
	if tr == nil {
		return 0
	}
	return len(tr.buf)
}

// Dropped reports how many events were overwritten because the ring was
// full. When nonzero, Events holds the most recent Cap() events.
func (tr *Tracer) Dropped() uint64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}

// Events appends the retained events to dst in emit order (which is
// sim-time order: the engine clock never goes backwards) and returns
// the extended slice.
func (tr *Tracer) Events(dst []TraceEvent) []TraceEvent {
	if tr == nil || tr.n == 0 {
		return dst
	}
	start := tr.head - tr.n
	if start < 0 {
		start += len(tr.buf)
	}
	for i := 0; i < tr.n; i++ {
		j := start + i
		if j >= len(tr.buf) {
			j -= len(tr.buf)
		}
		dst = append(dst, tr.buf[j])
	}
	return dst
}
