//go:build !coregap_wheel

package sim

// buildQueueKind is the compile-time default event queue. The heap is
// the default build; `-tags coregap_wheel` flips the default to the
// timing wheel without touching runtime configuration. Benchsuite's
// -queue flag overrides either default at startup.
const buildQueueKind = QueueHeap
