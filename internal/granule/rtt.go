package granule

import (
	"errors"
	"fmt"
)

// Stage-2 translation for realms: a four-level realm translation table
// (RTT) mapping guest IPAs to host PAs. The host *requests* updates via
// RMI calls; the monitor validates and applies them, so a malicious host
// can never alias two realms onto one granule or remap a page without the
// architecture noticing (§2.1).

// RTT geometry: each level resolves 9 bits of IPA; level 3 entries map
// 4 KiB granules.
const (
	rttLevels      = 4
	rttEntriesBits = 9
	rttEntries     = 1 << rttEntriesBits
)

// EntryState is the state of one level-3 RTT entry.
type EntryState uint8

// RTT entry states, per the RMM specification.
const (
	// Unassigned: no physical memory behind this IPA yet.
	Unassigned EntryState = iota
	// Assigned: maps a protected Data granule.
	Assigned
	// AssignedNS: maps shared, non-confidential memory.
	AssignedNS
	// Destroyed: was assigned, then destroyed; cannot be silently reused
	// (prevents replay of stale mappings by the host).
	Destroyed
)

var entryStateNames = [...]string{"unassigned", "assigned", "assigned-ns", "destroyed"}

func (s EntryState) String() string {
	if int(s) < len(entryStateNames) {
		return entryStateNames[s]
	}
	return fmt.Sprintf("entrystate(%d)", uint8(s))
}

// RTT errors.
var (
	ErrNoTable     = errors.New("rtt: intermediate table missing (RTT fault)")
	ErrTableExists = errors.New("rtt: table already present")
	ErrEntryState  = errors.New("rtt: entry in wrong state")
	ErrLevel       = errors.New("rtt: invalid level")
	ErrNotEmpty    = errors.New("rtt: table still has live entries")
)

type rttNode struct {
	tablePA  PA // granule backing this table
	children [rttEntries]*rttNode
	leaves   [rttEntries]rttLeaf
	live     int // live children or non-unassigned leaves
}

type rttLeaf struct {
	state EntryState
	pa    PA
}

// Tree is one realm's stage-2 translation tree.
type Tree struct {
	realm RealmID
	gpt   *Table
	root  *rttNode
	// mapped counts live Assigned leaves for accounting.
	mapped uint64
}

// NewTree returns a stage-2 tree for realm r whose table granules are
// validated against gpt. rootPA must already be Claimed as RTT state.
func NewTree(r RealmID, gpt *Table, rootPA PA) (*Tree, error) {
	if st, err := gpt.State(rootPA); err != nil {
		return nil, err
	} else if st != RTT {
		return nil, ErrBadState
	}
	return &Tree{realm: r, gpt: gpt, root: &rttNode{tablePA: rootPA}}, nil
}

// Realm reports the owning realm.
func (t *Tree) Realm() RealmID { return t.realm }

// Clone deep-copies the tree, binding the copy to gpt. The granule
// states backing the tables are NOT copied — the caller restores them
// separately (Table.Restore) when transplanting a boot snapshot.
func (t *Tree) Clone(gpt *Table) *Tree {
	return &Tree{realm: t.realm, gpt: gpt, root: cloneRTTNode(t.root), mapped: t.mapped}
}

func cloneRTTNode(n *rttNode) *rttNode {
	if n == nil {
		return nil
	}
	c := &rttNode{tablePA: n.tablePA, leaves: n.leaves, live: n.live}
	for i, ch := range n.children {
		if ch != nil {
			c.children[i] = cloneRTTNode(ch)
		}
	}
	return c
}

// Mapped reports the number of protected granules currently mapped.
func (t *Tree) Mapped() uint64 { return t.mapped }

func ipaIndex(ipa IPA, level int) int {
	shift := uint(12 + (rttLevels-1-level)*rttEntriesBits)
	return int((uint64(ipa) >> shift) & (rttEntries - 1))
}

// walk descends to the node at the given level (0-based; level 3 holds
// leaves), returning nil when an intermediate table is missing.
func (t *Tree) walk(ipa IPA, level int) *rttNode {
	n := t.root
	for l := 0; l < level; l++ {
		n = n.children[ipaIndex(ipa, l)]
		if n == nil {
			return nil
		}
	}
	return n
}

// CreateTable installs an intermediate table (RMI_RTT_CREATE) for the
// region containing ipa at the given level (1..3), backed by tablePA
// which must be in Delegated state; it is claimed as RTT.
func (t *Tree) CreateTable(ipa IPA, level int, tablePA PA) error {
	if level < 1 || level >= rttLevels {
		return ErrLevel
	}
	parent := t.walk(ipa, level-1)
	if parent == nil {
		return ErrNoTable
	}
	idx := ipaIndex(ipa, level-1)
	if parent.children[idx] != nil {
		return ErrTableExists
	}
	if err := t.gpt.Claim(tablePA, RTT, t.realm); err != nil {
		return err
	}
	parent.children[idx] = &rttNode{tablePA: tablePA}
	parent.live++
	return nil
}

// DestroyTable removes an empty intermediate table (RMI_RTT_DESTROY) and
// releases its granule back to Delegated.
func (t *Tree) DestroyTable(ipa IPA, level int) error {
	if level < 1 || level >= rttLevels {
		return ErrLevel
	}
	parent := t.walk(ipa, level-1)
	if parent == nil {
		return ErrNoTable
	}
	idx := ipaIndex(ipa, level-1)
	n := parent.children[idx]
	if n == nil {
		return ErrNoTable
	}
	if n.live != 0 {
		return ErrNotEmpty
	}
	if err := t.gpt.Release(n.tablePA, t.realm); err != nil {
		return err
	}
	parent.children[idx] = nil
	parent.live--
	return nil
}

func (t *Tree) leafNode(ipa IPA) (*rttNode, int, error) {
	if !ipa.Aligned() {
		return nil, 0, ErrUnaligned
	}
	n := t.walk(ipa, rttLevels-1)
	if n == nil {
		return nil, 0, ErrNoTable
	}
	return n, ipaIndex(ipa, rttLevels-1), nil
}

// MapProtected maps ipa to the protected granule at pa
// (RMI_DATA_CREATE). pa must be Delegated; it is claimed as Data.
func (t *Tree) MapProtected(ipa IPA, pa PA) error {
	n, idx, err := t.leafNode(ipa)
	if err != nil {
		return err
	}
	if n.leaves[idx].state != Unassigned {
		return ErrEntryState
	}
	if err := t.gpt.Claim(pa, Data, t.realm); err != nil {
		return err
	}
	n.leaves[idx] = rttLeaf{state: Assigned, pa: pa}
	n.live++
	t.mapped++
	return nil
}

// MapShared maps ipa to untrusted shared memory at pa (unprotected IPA
// space). The granule must remain Undelegated (host-owned).
func (t *Tree) MapShared(ipa IPA, pa PA) error {
	n, idx, err := t.leafNode(ipa)
	if err != nil {
		return err
	}
	if n.leaves[idx].state != Unassigned {
		return ErrEntryState
	}
	if st, err := t.gpt.State(pa); err != nil {
		return err
	} else if st != Undelegated {
		return ErrBadState
	}
	n.leaves[idx] = rttLeaf{state: AssignedNS, pa: pa}
	n.live++
	return nil
}

// Unmap destroys the mapping at ipa (RMI_DATA_DESTROY). Protected
// granules are scrubbed and released to Delegated; the entry moves to
// Destroyed so the host cannot replay a stale mapping.
func (t *Tree) Unmap(ipa IPA) error {
	n, idx, err := t.leafNode(ipa)
	if err != nil {
		return err
	}
	switch n.leaves[idx].state {
	case Assigned:
		if err := t.gpt.Release(n.leaves[idx].pa, t.realm); err != nil {
			return err
		}
		t.mapped--
	case AssignedNS:
	default:
		return ErrEntryState
	}
	// Destroyed is a homogeneous (foldable) state in the RMM spec: it
	// blocks re-mapping of this IPA but does not keep its table live.
	n.leaves[idx] = rttLeaf{state: Destroyed}
	n.live--
	return nil
}

// Translate performs the stage-2 walk for a realm access, returning the
// PA and whether the target is protected memory. A missing table or
// unassigned/destroyed entry is an RTT fault the host must resolve.
func (t *Tree) Translate(ipa IPA) (pa PA, protected bool, err error) {
	n, idx, err := t.leafNode(IPA(uint64(ipa) / Size * Size))
	if err != nil {
		return 0, false, err
	}
	leaf := n.leaves[idx]
	switch leaf.state {
	case Assigned:
		return leaf.pa + PA(uint64(ipa)%Size), true, nil
	case AssignedNS:
		return leaf.pa + PA(uint64(ipa)%Size), false, nil
	default:
		return 0, false, ErrEntryState
	}
}

// EntryStateAt reports the leaf state at ipa (ErrNoTable when tables are
// missing on the walk).
func (t *Tree) EntryStateAt(ipa IPA) (EntryState, error) {
	n, idx, err := t.leafNode(IPA(uint64(ipa) / Size * Size))
	if err != nil {
		return Unassigned, err
	}
	return n.leaves[idx].state, nil
}
