package granule

import (
	"errors"
	"testing"
	"testing/quick"
)

const testMem = 64 << 20 // 64 MiB

func TestDelegateLifecycle(t *testing.T) {
	gpt := NewTable(testMem)
	pa := PA(0x10000)

	if err := gpt.Delegate(pa); err != nil {
		t.Fatal(err)
	}
	if st, _ := gpt.State(pa); st != Delegated {
		t.Fatalf("state = %v, want delegated", st)
	}
	if err := gpt.Delegate(pa); !errors.Is(err, ErrDoubleDelegate) {
		t.Fatalf("double delegate: err = %v", err)
	}
	if err := gpt.Undelegate(pa); err != nil {
		t.Fatal(err)
	}
	if st, _ := gpt.State(pa); st != Undelegated {
		t.Fatalf("state = %v, want undelegated", st)
	}
}

func TestAlignmentAndRange(t *testing.T) {
	gpt := NewTable(testMem)
	if err := gpt.Delegate(PA(123)); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned: %v", err)
	}
	if err := gpt.Delegate(PA(testMem)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if _, err := gpt.State(PA(testMem + Size)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("state out of range: %v", err)
	}
}

func TestClaimRequiresDelegated(t *testing.T) {
	gpt := NewTable(testMem)
	pa := PA(0x20000)
	if err := gpt.Claim(pa, Data, 1); !errors.Is(err, ErrBadState) {
		t.Fatalf("claim undelegated: %v", err)
	}
	if err := gpt.Delegate(pa); err != nil {
		t.Fatal(err)
	}
	if err := gpt.Claim(pa, Undelegated, 1); !errors.Is(err, ErrBadState) {
		t.Fatalf("claim to invalid state: %v", err)
	}
	if err := gpt.Claim(pa, Data, 1); err != nil {
		t.Fatal(err)
	}
	if owner, _ := gpt.Owner(pa); owner != 1 {
		t.Fatalf("owner = %d, want 1", owner)
	}
}

func TestUndelegateRequiresScrub(t *testing.T) {
	gpt := NewTable(testMem)
	pa := PA(0x30000)
	must(t, gpt.Delegate(pa))
	must(t, gpt.Claim(pa, Data, 1))
	// Cannot undelegate while in Data state at all.
	if err := gpt.Undelegate(pa); !errors.Is(err, ErrBadState) {
		t.Fatalf("undelegate Data: %v", err)
	}
	// Release scrubs; then undelegation succeeds.
	must(t, gpt.Release(pa, 1))
	if err := gpt.Undelegate(pa); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseWrongOwner(t *testing.T) {
	gpt := NewTable(testMem)
	pa := PA(0x40000)
	must(t, gpt.Delegate(pa))
	must(t, gpt.Claim(pa, REC, 7))
	if err := gpt.Release(pa, 8); !errors.Is(err, ErrWrongOwner) {
		t.Fatalf("release by wrong owner: %v", err)
	}
	must(t, gpt.Release(pa, 7))
}

func TestAccessChecks(t *testing.T) {
	gpt := NewTable(testMem)
	pa := PA(0x50000)
	if !gpt.HostAccessible(pa) {
		t.Fatal("host must access undelegated memory")
	}
	must(t, gpt.Delegate(pa))
	if gpt.HostAccessible(pa) {
		t.Fatal("host must NOT access delegated memory")
	}
	// Unaligned inner address still checks the containing granule.
	if gpt.HostAccessible(pa + 8) {
		t.Fatal("host accessed interior of delegated granule")
	}
	must(t, gpt.Claim(pa, Data, 3))
	if !gpt.RealmAccessible(pa+100, 3) {
		t.Fatal("owner realm must access its data")
	}
	if gpt.RealmAccessible(pa, 4) {
		t.Fatal("other realm must NOT access foreign data")
	}
	if !gpt.RealmAccessible(PA(0x60000), 3) {
		t.Fatal("realm must access shared (undelegated) memory")
	}
}

func TestCountsConsistent(t *testing.T) {
	gpt := NewTable(testMem)
	total := gpt.Granules()
	for i := 0; i < 100; i++ {
		must(t, gpt.Delegate(PA(i*Size)))
	}
	for i := 0; i < 40; i++ {
		must(t, gpt.Claim(PA(i*Size), Data, 1))
	}
	if gpt.CountIn(Undelegated) != total-100 || gpt.CountIn(Delegated) != 60 || gpt.CountIn(Data) != 40 {
		t.Fatalf("counts = %d/%d/%d", gpt.CountIn(Undelegated), gpt.CountIn(Delegated), gpt.CountIn(Data))
	}
	var sum uint64
	for s := Undelegated; s <= Data; s++ {
		sum += gpt.CountIn(s)
	}
	if sum != total {
		t.Fatalf("state counts sum %d != total %d", sum, total)
	}
}

func TestGranuleStateMachineProperty(t *testing.T) {
	// Property: no sequence of host-requested operations can make a
	// granule simultaneously host-accessible and realm-data, and counts
	// always sum to the total.
	f := func(ops []uint8) bool {
		gpt := NewTable(1 << 20)
		n := gpt.Granules()
		for _, op := range ops {
			pa := PA((uint64(op) % n) * Size)
			switch op % 5 {
			case 0:
				gpt.Delegate(pa)
			case 1:
				gpt.Undelegate(pa)
			case 2:
				gpt.Claim(pa, Data, 1)
			case 3:
				gpt.Claim(pa, REC, 2)
			case 4:
				gpt.Release(pa, 1)
			}
			st, err := gpt.State(pa)
			if err != nil {
				return false
			}
			if st == Data && gpt.HostAccessible(pa) {
				return false
			}
		}
		var sum uint64
		for s := Undelegated; s <= Data; s++ {
			sum += gpt.CountIn(s)
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Undelegated: "undelegated", Delegated: "delegated", RD: "rd",
		REC: "rec", RTT: "rtt", Data: "data",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
