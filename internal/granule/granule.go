// Package granule models physical-memory ownership for confidential VMs:
// the granule protection table (GPT) through which hardware checks every
// access against the owning physical address space, and the delegation
// protocol by which the untrusted host donates memory to realm world.
//
// This is the Arm CCA view (RME granule protection checks, RMM granule
// states); Intel TDX's PAMT and AMD's RMP play the same role (§2.1).
package granule

import (
	"errors"
	"fmt"

	"coregap/internal/sim"
)

// Delegation-protocol counters: every successful state transition on
// the table, by operation. These are the paper's RMI granule churn made
// visible per trial.
var (
	cDelegate   = sim.DefineCounter("granule.delegates")
	cUndelegate = sim.DefineCounter("granule.undelegates")
	cClaim      = sim.DefineCounter("granule.claims")
	cRelease    = sim.DefineCounter("granule.releases")
)

// Size is the granule size in bytes (4 KiB, as on Arm).
const Size = 4096

// PA is a physical address.
type PA uint64

// Index reports the granule index containing pa.
func (pa PA) Index() uint64 { return uint64(pa) / Size }

// Aligned reports whether pa is granule-aligned.
func (pa PA) Aligned() bool { return uint64(pa)%Size == 0 }

// IPA is an intermediate physical address (guest physical).
type IPA uint64

// Aligned reports whether the IPA is granule-aligned.
func (ipa IPA) Aligned() bool { return uint64(ipa)%Size == 0 }

// RealmID identifies a realm (confidential VM) as the owner of granules.
// Zero means "no realm".
type RealmID uint32

// State is the lifecycle state of one granule, following the RMM
// specification's granule state machine.
type State uint8

// Granule states.
const (
	// Undelegated: normal-world memory, accessible to the host.
	Undelegated State = iota
	// Delegated: donated to realm world but not yet used; contents wiped.
	Delegated
	// RD: holds a realm descriptor.
	RD
	// REC: holds a realm execution context (vCPU state).
	REC
	// RTT: holds a stage-2 translation table.
	RTT
	// Data: mapped as protected realm data.
	Data
)

var stateNames = [...]string{"undelegated", "delegated", "rd", "rec", "rtt", "data"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Errors returned by the table operations. They model the RMI error codes
// the real RMM returns to a misbehaving (or malicious) host.
var (
	ErrUnaligned      = errors.New("granule: address not granule-aligned")
	ErrOutOfRange     = errors.New("granule: address outside physical memory")
	ErrBadState       = errors.New("granule: granule in wrong state for operation")
	ErrWrongOwner     = errors.New("granule: granule owned by another realm")
	ErrNotScrubbed    = errors.New("granule: undelegate of unscrubbed granule")
	ErrDoubleDelegate = errors.New("granule: already delegated")
)

type granule struct {
	state State
	owner RealmID
	dirty bool // held secret contents since last scrub
}

// Table is the granule protection table for one machine's physical memory.
type Table struct {
	granules []granule
	counts   [6]uint64
	// hi is one past the highest granule index ever mutated. The table
	// covers whole-machine physical memory (millions of granules), but a
	// single run touches a tiny bump-allocated prefix plus a few stray
	// addresses; Reset scrubs only [0, hi) instead of re-zeroing — or,
	// worse, reallocating — the entire backing array.
	hi uint64
	// eng, when bound, receives counters and trace events for state
	// transitions. The table stays usable unbound (tests build bare
	// tables); note() is then a nil check.
	eng *sim.Engine
}

// NewTable returns a table covering size bytes of physical memory, all
// initially undelegated (host-owned).
func NewTable(size uint64) *Table {
	n := size / Size
	t := &Table{granules: make([]granule, n)}
	t.counts[Undelegated] = n
	return t
}

// Reset returns every granule to Undelegated for a table covering size
// bytes, reusing the backing array when the size is unchanged (the
// common pooled-context case) so a reset table is observationally
// identical to NewTable(size) without the multi-megabyte allocation.
func (t *Table) Reset(size uint64) {
	n := size / Size
	if n != uint64(len(t.granules)) {
		t.granules = make([]granule, n)
	} else if t.hi > 0 {
		clear(t.granules[:t.hi])
	}
	t.hi = 0
	t.counts = [6]uint64{}
	t.counts[Undelegated] = n
}

// Image is a copy of a table's mutated prefix — everything a boot
// sequence changed — taken by Snapshot and written back by Restore. It
// is immutable once taken: both directions copy, so a cached image stays
// valid while the live table keeps mutating.
type Image struct {
	granules []granule
	counts   [6]uint64
	hi       uint64
	size     uint64 // granule count of the source table
}

// Snapshot copies the table's mutated prefix. Restoring the image later
// reproduces today's state exactly, without replaying the delegation
// protocol that built it (the boot-fork fast path).
func (t *Table) Snapshot() *Image {
	return &Image{
		granules: append([]granule(nil), t.granules[:t.hi]...),
		counts:   t.counts,
		hi:       t.hi,
		size:     uint64(len(t.granules)),
	}
}

// Restore overwrites the table's state with the image. The table must
// cover the same physical memory the image was taken from. No counters
// or trace events fire: Restore is state transplantation, not protocol;
// callers replaying a boot account for the skipped transitions
// themselves.
func (t *Table) Restore(img *Image) error {
	if uint64(len(t.granules)) != img.size {
		return fmt.Errorf("granule: restore into table of %d granules, image from %d",
			len(t.granules), img.size)
	}
	if t.hi > img.hi {
		clear(t.granules[img.hi:t.hi])
	}
	copy(t.granules, img.granules)
	t.counts = img.counts
	t.hi = img.hi
	return nil
}

// Bind attaches the engine whose counters and tracer receive this
// table's state transitions, returning t for construction chaining.
func (t *Table) Bind(eng *sim.Engine) *Table {
	t.eng = eng
	return t
}

// note records a successful transition in the bound engine's counters
// and trace.
func (t *Table) note(id sim.CounterID, name string, pa PA) {
	if t.eng == nil {
		return
	}
	t.eng.Count(id)
	t.eng.Trace().Emit(sim.TCGranule, name, sim.LaneGlobal, int64(pa))
}

// mark records that the granule at pa was mutated, widening the range
// Reset must scrub. Callers pass an already-validated pa.
func (t *Table) mark(pa PA) {
	if idx := pa.Index(); idx >= t.hi {
		t.hi = idx + 1
	}
}

// Granules reports the total granule count.
func (t *Table) Granules() uint64 { return uint64(len(t.granules)) }

// CountIn reports how many granules are in state s.
func (t *Table) CountIn(s State) uint64 { return t.counts[s] }

func (t *Table) lookup(pa PA) (*granule, error) {
	if !pa.Aligned() {
		return nil, ErrUnaligned
	}
	idx := pa.Index()
	if idx >= uint64(len(t.granules)) {
		return nil, ErrOutOfRange
	}
	return &t.granules[idx], nil
}

// State reports the state of the granule at pa.
func (t *Table) State(pa PA) (State, error) {
	g, err := t.lookup(pa)
	if err != nil {
		return Undelegated, err
	}
	return g.state, nil
}

// Owner reports the realm owning the granule at pa (0 when none).
func (t *Table) Owner(pa PA) (RealmID, error) {
	g, err := t.lookup(pa)
	if err != nil {
		return 0, err
	}
	return g.owner, nil
}

func (t *Table) transition(g *granule, to State) {
	t.counts[g.state]--
	g.state = to
	t.counts[to]++
}

// Delegate moves an undelegated granule into realm world
// (RMI_GRANULE_DELEGATE). The granule is scrubbed on entry.
func (t *Table) Delegate(pa PA) error {
	g, err := t.lookup(pa)
	if err != nil {
		return err
	}
	if g.state == Delegated {
		return ErrDoubleDelegate
	}
	if g.state != Undelegated {
		return ErrBadState
	}
	t.transition(g, Delegated)
	g.dirty = false
	t.mark(pa)
	t.note(cDelegate, "granule.delegate", pa)
	return nil
}

// Undelegate returns a delegated granule to the host
// (RMI_GRANULE_UNDELEGATE). A granule that held realm contents must have
// been scrubbed first; returning secret-bearing memory to the host would
// be an architectural leak.
func (t *Table) Undelegate(pa PA) error {
	g, err := t.lookup(pa)
	if err != nil {
		return err
	}
	if g.state != Delegated {
		return ErrBadState
	}
	if g.dirty {
		return ErrNotScrubbed
	}
	t.transition(g, Undelegated)
	t.mark(pa)
	t.note(cUndelegate, "granule.undelegate", pa)
	return nil
}

// Claim converts a delegated granule into one of the realm-internal
// states (RD, REC, RTT, Data) on behalf of owner.
func (t *Table) Claim(pa PA, to State, owner RealmID) error {
	if to != RD && to != REC && to != RTT && to != Data {
		return ErrBadState
	}
	g, err := t.lookup(pa)
	if err != nil {
		return err
	}
	if g.state != Delegated {
		return ErrBadState
	}
	t.transition(g, to)
	g.owner = owner
	g.dirty = true
	t.mark(pa)
	t.note(cClaim, "granule.claim", pa)
	return nil
}

// Release scrubs a realm-internal granule back to Delegated. Only the
// owning realm's teardown path may release it.
func (t *Table) Release(pa PA, owner RealmID) error {
	g, err := t.lookup(pa)
	if err != nil {
		return err
	}
	switch g.state {
	case RD, REC, RTT, Data:
	default:
		return ErrBadState
	}
	if g.owner != owner {
		return ErrWrongOwner
	}
	t.transition(g, Delegated)
	g.owner = 0
	g.dirty = false // release implies scrub
	t.mark(pa)
	t.note(cRelease, "granule.release", pa)
	return nil
}

// HostAccessible reports whether normal-world software may access pa.
// This is the granule protection check performed (by hardware) on every
// host access; a false return models an instruction-level fault.
func (t *Table) HostAccessible(pa PA) bool {
	g, err := t.lookup(PA(uint64(pa) / Size * Size))
	if err != nil {
		return false
	}
	return g.state == Undelegated
}

// RealmAccessible reports whether realm r may access pa through its
// stage-2 tables (the granule must be realm-owned by r, or shared
// normal-world memory which the architecture maps as untrusted-shared).
func (t *Table) RealmAccessible(pa PA, r RealmID) bool {
	g, err := t.lookup(PA(uint64(pa) / Size * Size))
	if err != nil {
		return false
	}
	switch g.state {
	case Data:
		return g.owner == r
	case Undelegated:
		return true // shared (non-confidential) memory
	default:
		return false
	}
}
