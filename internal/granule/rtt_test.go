package granule

import (
	"errors"
	"testing"
)

// newTreeForTest builds a GPT + tree with the root RTT granule claimed.
func newTreeForTest(t *testing.T) (*Table, *Tree, func() PA) {
	t.Helper()
	gpt := NewTable(256 << 20)
	next := PA(0)
	alloc := func() PA {
		pa := next
		next += Size
		if err := gpt.Delegate(pa); err != nil {
			t.Fatal(err)
		}
		return pa
	}
	root := alloc()
	if err := gpt.Claim(root, RTT, 1); err != nil {
		t.Fatal(err)
	}
	tree, err := NewTree(1, gpt, root)
	if err != nil {
		t.Fatal(err)
	}
	return gpt, tree, alloc
}

// buildTables creates the level 1..3 intermediate tables covering ipa.
func buildTables(t *testing.T, tree *Tree, alloc func() PA, ipa IPA) {
	t.Helper()
	for level := 1; level <= 3; level++ {
		if err := tree.CreateTable(ipa, level, alloc()); err != nil && !errors.Is(err, ErrTableExists) {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}

func TestNewTreeRequiresRTTGranule(t *testing.T) {
	gpt := NewTable(1 << 20)
	if _, err := NewTree(1, gpt, PA(0)); !errors.Is(err, ErrBadState) {
		t.Fatalf("NewTree on undelegated root: %v", err)
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	gpt, tree, alloc := newTreeForTest(t)
	ipa := IPA(0x8000_0000)
	buildTables(t, tree, alloc, ipa)

	data := alloc()
	if err := tree.MapProtected(ipa, data); err != nil {
		t.Fatal(err)
	}
	if tree.Mapped() != 1 {
		t.Fatalf("mapped = %d", tree.Mapped())
	}
	if st, _ := gpt.State(data); st != Data {
		t.Fatalf("data granule state = %v", st)
	}

	pa, prot, err := tree.Translate(ipa + 0x123)
	if err != nil || !prot || pa != data+0x123 {
		t.Fatalf("translate = %v,%v,%v", pa, prot, err)
	}

	if err := tree.Unmap(ipa); err != nil {
		t.Fatal(err)
	}
	if tree.Mapped() != 0 {
		t.Fatalf("mapped after unmap = %d", tree.Mapped())
	}
	if st, _ := gpt.State(data); st != Delegated {
		t.Fatalf("released granule state = %v", st)
	}
	if st, _ := tree.EntryStateAt(ipa); st != Destroyed {
		t.Fatalf("entry state = %v, want destroyed", st)
	}
	// Destroyed entries cannot be silently remapped (no replay).
	if err := tree.MapProtected(ipa, alloc()); !errors.Is(err, ErrEntryState) {
		t.Fatalf("remap of destroyed entry: %v", err)
	}
}

func TestTranslateFaults(t *testing.T) {
	_, tree, alloc := newTreeForTest(t)
	ipa := IPA(0x4000_0000)
	if _, _, err := tree.Translate(ipa); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing tables: %v", err)
	}
	buildTables(t, tree, alloc, ipa)
	if _, _, err := tree.Translate(ipa); !errors.Is(err, ErrEntryState) {
		t.Fatalf("unassigned entry: %v", err)
	}
}

func TestMapSharedKeepsHostOwnership(t *testing.T) {
	gpt, tree, alloc := newTreeForTest(t)
	ipa := IPA(0xC000_0000)
	buildTables(t, tree, alloc, ipa)

	sharedPA := PA(128 << 20) // never delegated
	if err := tree.MapShared(ipa, sharedPA); err != nil {
		t.Fatal(err)
	}
	pa, prot, err := tree.Translate(ipa)
	if err != nil || prot || pa != sharedPA {
		t.Fatalf("shared translate = %v,%v,%v", pa, prot, err)
	}
	if !gpt.HostAccessible(sharedPA) {
		t.Fatal("shared memory must remain host accessible")
	}
	// A delegated granule cannot be mapped as shared.
	d := alloc()
	if err := tree.MapShared(ipa+Size, d); !errors.Is(err, ErrNoTable) && !errors.Is(err, ErrBadState) {
		// ipa+Size shares the level-3 table, so the walk succeeds and
		// the GPT check must reject the delegated granule.
		t.Fatalf("shared map of delegated granule: %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	_, tree, alloc := newTreeForTest(t)
	ipa := IPA(0x1000_0000)
	if err := tree.CreateTable(ipa, 0, alloc()); !errors.Is(err, ErrLevel) {
		t.Fatalf("level 0: %v", err)
	}
	if err := tree.CreateTable(ipa, 4, alloc()); !errors.Is(err, ErrLevel) {
		t.Fatalf("level 4: %v", err)
	}
	// Level 2 before level 1: walk fails.
	if err := tree.CreateTable(ipa, 2, alloc()); !errors.Is(err, ErrNoTable) {
		t.Fatalf("level skip: %v", err)
	}
	if err := tree.CreateTable(ipa, 1, alloc()); err != nil {
		t.Fatal(err)
	}
	if err := tree.CreateTable(ipa, 1, alloc()); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	// Table granule must be delegated first.
	if err := tree.CreateTable(ipa, 2, PA(200<<20)); !errors.Is(err, ErrBadState) {
		t.Fatalf("undelegated table granule: %v", err)
	}
}

func TestDestroyTableRequiresEmpty(t *testing.T) {
	gpt, tree, alloc := newTreeForTest(t)
	ipa := IPA(0x2000_0000)
	buildTables(t, tree, alloc, ipa)
	data := alloc()
	if err := tree.MapProtected(ipa, data); err != nil {
		t.Fatal(err)
	}
	if err := tree.DestroyTable(ipa, 3); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("destroy non-empty: %v", err)
	}
	if err := tree.Unmap(ipa); err != nil {
		t.Fatal(err)
	}
	// Note: a Destroyed leaf does not keep the table "live".
	if err := tree.DestroyTable(ipa, 3); err != nil {
		t.Fatalf("destroy empty: %v", err)
	}
	// Its granule is released back to Delegated.
	if got := gpt.CountIn(RTT); got != 3 { // root + L1 + L2 remain
		t.Fatalf("RTT granules = %d, want 3", got)
	}
	if err := tree.DestroyTable(ipa, 3); !errors.Is(err, ErrNoTable) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestDistinctIPAsDistinctEntries(t *testing.T) {
	_, tree, alloc := newTreeForTest(t)
	base := IPA(0x8000_0000)
	buildTables(t, tree, alloc, base)
	for i := 0; i < 8; i++ {
		ipa := base + IPA(i*Size)
		if err := tree.MapProtected(ipa, alloc()); err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
	}
	if tree.Mapped() != 8 {
		t.Fatalf("mapped = %d, want 8", tree.Mapped())
	}
	seen := map[PA]bool{}
	for i := 0; i < 8; i++ {
		pa, _, err := tree.Translate(base + IPA(i*Size))
		if err != nil {
			t.Fatal(err)
		}
		if seen[pa] {
			t.Fatalf("aliased PAs at entry %d", i)
		}
		seen[pa] = true
	}
}

func TestNoCrossRealmAliasing(t *testing.T) {
	// Two realms can never map the same protected granule: the GPT
	// claim for the second realm fails because the granule left the
	// Delegated state when the first realm claimed it.
	gpt := NewTable(64 << 20)
	allocAt := func(pa PA) PA {
		if err := gpt.Delegate(pa); err != nil {
			t.Fatal(err)
		}
		return pa
	}
	mkTree := func(r RealmID, rootPA PA) *Tree {
		allocAt(rootPA)
		if err := gpt.Claim(rootPA, RTT, r); err != nil {
			t.Fatal(err)
		}
		tree, err := NewTree(r, gpt, rootPA)
		if err != nil {
			t.Fatal(err)
		}
		return tree
	}
	t1 := mkTree(1, PA(0))
	t2 := mkTree(2, PA(Size))
	next := PA(10 * Size)
	alloc := func() PA { pa := next; next += Size; return allocAt(pa) }
	ipa := IPA(0x8000_0000)
	for level := 1; level <= 3; level++ {
		if err := t1.CreateTable(ipa, level, alloc()); err != nil {
			t.Fatal(err)
		}
		if err := t2.CreateTable(ipa, level, alloc()); err != nil {
			t.Fatal(err)
		}
	}
	victim := alloc()
	if err := t1.MapProtected(ipa, victim); err != nil {
		t.Fatal(err)
	}
	if err := t2.MapProtected(ipa, victim); err == nil {
		t.Fatal("second realm mapped a granule already owned by the first")
	}
}
