// Package obs exports simulation observability data in externally
// consumable formats. Its first citizen is the Chrome trace-event JSON
// encoding of a sim.Tracer ring, loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing: cores become threads,
// engine/global activity gets per-category lanes, spans render as
// slices and instants as markers.
//
// The package deliberately sits above internal/sim (it imports it, not
// the other way around): the tracer itself must stay allocation-free
// and dependency-free, while export can afford encoding/json.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"coregap/internal/sim"
)

// Lane numbering in the exported trace: core lanes use their core
// number as tid; global (non-core) events get one lane per category so
// engine churn does not bury granule transitions.
const globalLaneBase = 100

// chromeEvent is one entry of the trace-event JSON array. Field names
// and phase codes follow the Trace Event Format spec that Perfetto and
// chrome://tracing consume.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds; fractional part carries ns
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// usec converts a sim-time nanosecond count to the format's
// microsecond unit, keeping nanosecond precision in the fraction.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// tid maps a trace event to its display lane.
func tid(ev sim.TraceEvent) int {
	if ev.Lane >= 0 {
		return int(ev.Lane)
	}
	return globalLaneBase + int(ev.Cat)
}

// ChromeTrace writes events as Chrome trace-event JSON. proc names the
// process row in the viewer (typically the scenario id). Events with a
// nonzero Dur become complete ("X") slices; the rest become
// thread-scoped instants ("i").
func ChromeTrace(w io.Writer, proc string, events []sim.TraceEvent) error {
	return ChromeTraceWithCounters(w, proc, events, nil)
}

// ChromeTraceWithCounters is ChromeTrace plus counter tracks: every
// entry of counters becomes a Chrome counter ("C") sample at the
// trace's final timestamp, so headline engine totals — wheel cascades,
// snapshot forks and hits — get their own lanes in the viewer next to
// the event lanes. Counter samples are emitted in sorted name order;
// zero values are included deliberately, pinning the track (and the
// fact that the mechanism was off) into the trace.
func ChromeTraceWithCounters(w io.Writer, proc string, events []sim.TraceEvent, counters map[string]uint64) error {
	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": proc},
	})
	// Name each lane that actually carries events, once.
	named := map[int]bool{}
	for _, ev := range events {
		t := tid(ev)
		if named[t] {
			continue
		}
		named[t] = true
		label := ev.Cat.String()
		if ev.Lane >= 0 {
			label = fmt.Sprintf("core %d", ev.Lane)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: t,
			Args: map[string]any{"name": label},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat.String(),
			TS:   usec(int64(ev.At)),
			PID:  1,
			TID:  tid(ev),
			Args: map[string]any{"arg": ev.Arg},
		}
		if ev.Det != "" {
			ce.Args["detail"] = ev.Det
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = usec(int64(ev.Dur))
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if len(counters) > 0 {
		end := 0.0
		for _, ev := range events {
			if ts := usec(int64(ev.At)); ts > end {
				end = ts
			}
		}
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "counter", Ph: "C", TS: end, PID: 1,
				Args: map[string]any{"value": counters[name]},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ValidateChrome structurally checks data against the trace-event
// schema subset ChromeTrace emits: a traceEvents array whose entries
// carry name/ph/pid/tid, with known phase codes and — because the
// tracer records in engine order — monotonically non-decreasing
// timestamps for the non-metadata events. It returns the number of
// non-metadata events on success.
func ValidateChrome(data []byte) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  float64  `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("obs: not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("obs: missing traceEvents array")
	}
	n := 0
	last := -1.0
	for i, ev := range doc.TraceEvents {
		if ev.Name == nil || ev.Ph == nil || ev.PID == nil {
			return 0, fmt.Errorf("obs: event %d missing name/ph/pid", i)
		}
		switch *ev.Ph {
		case "M":
			continue
		case "C":
			if ev.TS == nil {
				return 0, fmt.Errorf("obs: counter event %d missing ts", i)
			}
			n++
			continue
		case "X", "i":
		default:
			return 0, fmt.Errorf("obs: event %d has unknown phase %q", i, *ev.Ph)
		}
		if ev.TS == nil || ev.TID == nil {
			return 0, fmt.Errorf("obs: event %d missing ts/tid", i)
		}
		if *ev.TS < last {
			return 0, fmt.Errorf("obs: event %d timestamp %v before %v", i, *ev.TS, last)
		}
		last = *ev.TS
		if *ev.Ph == "X" && ev.Dur <= 0 {
			return 0, fmt.Errorf("obs: complete event %d has no duration", i)
		}
		n++
	}
	return n, nil
}
