package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coregap/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// tinyEvents runs a miniature deterministic scenario — two timer
// events emitting a world switch, an IPI and a proxy post — and
// returns the recorded ring.
func tinyEvents() []sim.TraceEvent {
	// Pin the heap queue: this test checks trace formatting against a
	// golden, and the wheel queue adds cascade events of its own.
	e := sim.NewEngineQueue(42, sim.QueueHeap)
	tr := e.EnableTracing(64)
	e.At(100, "timer.tick", func() {
		tr.Span(sim.TCWorld, "hw.world_switch", 0, 30*sim.Nanosecond, 1)
		tr.Emit(sim.TCIRQ, "hw.ipi", 0, 1)
	})
	e.At(250, "wake", func() {
		tr.Emit(sim.TCProxy, "rpc.post", 1, 7)
	})
	e.Run()
	return tr.Events(nil)
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, "tiny", tinyEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tiny_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from golden %s;\ngot:\n%s", golden, buf.String())
	}
}

func TestChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, "tiny", tinyEvents()); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("ValidateChrome: %v", err)
	}
	// 2 sched + 2 fire from the engine, plus the 3 subsystem events.
	if n != 7 {
		t.Errorf("validated %d events, want 7", n)
	}
	for _, want := range []string{"hw.world_switch", "hw.ipi", "rpc.post", `"ph": "X"`, `"ph": "i"`, "process_name", "thread_name"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace JSON missing %q", want)
		}
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":         "{",
		"no traceEvents":   `{"foo": 1}`,
		"missing name":     `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"unknown phase":    `{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":1,"tid":0}]}`,
		"backwards time":   `{"traceEvents":[{"name":"a","ph":"i","ts":2,"pid":1,"tid":0},{"name":"b","ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"span without dur": `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":0}]}`,
	}
	for name, data := range cases {
		if _, err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted %s", name, data)
		}
	}
}
