package vmm

import (
	"coregap/internal/guest"
)

// Virtqueue models a virtio ring: a bounded descriptor table shared
// between guest driver and device. The guest posts buffers into the
// available ring; the device consumes them, works, and returns them via
// the used ring. A full ring exerts backpressure on the driver — under
// core gapping that matters because every doorbell retry is another
// cross-core exit.
type Virtqueue struct {
	size int

	avail    []queuedReq // posted by the driver, not yet started
	inFlight int         // taken by the device, not yet completed

	// stats
	posted   uint64
	fullDrop uint64
	maxDepth int
}

type queuedReq struct {
	vcpu int
	req  guest.IORequest
}

// DefaultQueueSize matches common virtio-blk/net configurations.
const DefaultQueueSize = 256

// NewVirtqueue builds a ring with the given descriptor count.
func NewVirtqueue(size int) *Virtqueue {
	if size <= 0 {
		size = DefaultQueueSize
	}
	return &Virtqueue{size: size}
}

// Size reports the descriptor count.
func (q *Virtqueue) Size() int { return q.size }

// Depth reports descriptors currently in use (posted + in flight).
func (q *Virtqueue) Depth() int { return len(q.avail) + q.inFlight }

// Free reports available descriptors.
func (q *Virtqueue) Free() int { return q.size - q.Depth() }

// Push posts a request into the available ring. It reports false when
// the ring is full (the driver must wait for used buffers).
func (q *Virtqueue) Push(vcpu int, req guest.IORequest) bool {
	if q.Depth() >= q.size {
		q.fullDrop++
		return false
	}
	q.avail = append(q.avail, queuedReq{vcpu: vcpu, req: req})
	q.posted++
	if d := q.Depth(); d > q.maxDepth {
		q.maxDepth = d
	}
	return true
}

// Pop takes the next available request for device processing.
func (q *Virtqueue) Pop() (vcpu int, req guest.IORequest, ok bool) {
	if len(q.avail) == 0 {
		return 0, guest.IORequest{}, false
	}
	head := q.avail[0]
	q.avail = q.avail[1:]
	q.inFlight++
	return head.vcpu, head.req, true
}

// Complete returns one in-flight descriptor to the used ring, freeing it.
func (q *Virtqueue) Complete() {
	if q.inFlight > 0 {
		q.inFlight--
	}
}

// Posted reports the total requests ever accepted.
func (q *Virtqueue) Posted() uint64 { return q.posted }

// FullDrops reports how often the driver hit a full ring.
func (q *Virtqueue) FullDrops() uint64 { return q.fullDrop }

// MaxDepth reports the high-water mark.
func (q *Virtqueue) MaxDepth() int { return q.maxDepth }
