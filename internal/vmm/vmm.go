// Package vmm models the user-space VMM (kvmtool in the paper, §5.1) and
// its device back-ends: virtio-net and virtio-blk emulated on host
// threads, and an SR-IOV virtual function whose data path bypasses the
// host entirely (§5.3). Device completions are delivered to the guest
// through an injection callback supplied by the orchestrator, which
// routes them over the mode-appropriate interrupt path (same-core KVM
// injection for shared-core VMs, host-requested exits or delegated
// injection for core-gapped CVMs).
package vmm

import (
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// InjectFunc delivers a device event to a guest vCPU. The orchestrator
// implements the mode-specific delivery path and its latency.
type InjectFunc func(vcpu int, ev guest.Event)

// Costs carries the host-side device emulation cost model. Values are
// derived from the latency/throughput levels of Figs. 8-9: virtio's
// per-interaction costs in the few-microsecond range, SR-IOV with no host
// data-path work at all.
type Costs struct {
	// VirtioNet: per-packet emulation work (TX and RX each).
	NetPerPacket sim.Duration
	NetPacketMTU int
	// VirtioBlk: per-request emulation work plus per-byte copy.
	BlkPerRequest     sim.Duration
	BlkNsPerByte      float64
	BlkMediaLatency   sim.Duration // storage access time
	BlkMediaNsPerByte float64      // storage streaming cost
	// SR-IOV: DMA setup/doorbell handled in hardware.
	VFDMALatency sim.Duration
	// Wire: one-way network latency to the peer machine, and streaming
	// cost per byte (200 GbE-class link).
	WireLatency   sim.Duration
	WireNsPerByte float64
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		NetPerPacket:      2500 * sim.Nanosecond,
		NetPacketMTU:      1500,
		BlkPerRequest:     5 * sim.Microsecond,
		BlkNsPerByte:      0.15,
		BlkMediaLatency:   18 * sim.Microsecond,
		BlkMediaNsPerByte: 0.33, // ~3 GB/s NVMe stream
		VFDMALatency:      2 * sim.Microsecond,
		WireLatency:       14 * sim.Microsecond,
		WireNsPerByte:     0.04, // 200 Gb/s
	}
}

// VMM is one guest's user-space device model process.
type VMM struct {
	k     *host.Kernel
	eng   *sim.Engine
	met   *trace.Set
	costs Costs

	// ioThread runs all virtio emulation for this VMM (kvmtool's I/O
	// thread). It is a normal-class thread: under core gapping it is
	// pinned to the host core together with every other VMM thread, which
	// is where the Fig. 9 contention comes from.
	ioThread *host.Thread

	inject InjectFunc

	Blk *BlkDevice
	Net *NetDevice
	VF  *VFDevice
}

// New creates a VMM whose I/O thread is pinned to ioCore (hw.NoCore for
// unpinned, as in the shared-core baseline).
func New(name string, k *host.Kernel, costs Costs, ioCore int, met *trace.Set) *VMM {
	v := &VMM{
		k:     k,
		eng:   k.Engine(),
		met:   met,
		costs: costs,
	}
	pin := hostPin(ioCore)
	v.ioThread = k.NewThread(name+"/io", host.ClassNormal, pin)
	v.Blk = &BlkDevice{vmm: v, vq: NewVirtqueue(DefaultQueueSize)}
	v.Net = &NetDevice{vmm: v, txq: NewVirtqueue(DefaultQueueSize)}
	v.VF = &VFDevice{vmm: v}
	return v
}

// SetInject installs the guest event delivery path.
func (v *VMM) SetInject(fn InjectFunc) { v.inject = fn }

// Inject forwards an event through the orchestrator-provided path.
func (v *VMM) Inject(vcpu int, ev guest.Event) {
	if v.inject != nil {
		v.inject(vcpu, ev)
	}
}

// IOThread exposes the emulation thread (for accounting and pinning
// assertions in tests).
func (v *VMM) IOThread() *host.Thread { return v.ioThread }

// Costs reports the device cost model.
func (v *VMM) Costs() Costs { return v.costs }

// Submit routes a guest I/O request to the right device model.
func (v *VMM) Submit(vcpu int, req guest.IORequest) {
	switch req.Dev {
	case guest.VirtioBlk:
		v.Blk.Submit(vcpu, req)
	case guest.VirtioNet:
		v.Net.Submit(vcpu, req)
	case guest.SRIOVNet:
		v.VF.Submit(vcpu, req)
	}
}

func (v *VMM) count(name string) {
	if v.met != nil {
		v.met.Counter(name).Inc()
	}
}
