package vmm

import (
	"coregap/internal/guest"
	"coregap/internal/hw"
	"coregap/internal/sim"
)

func hostPin(core int) hw.CoreID {
	if core < 0 {
		return hw.NoCore
	}
	return hw.CoreID(core)
}

// BlkDevice is the virtio-blk back-end: every request costs host CPU on
// the VMM I/O thread (descriptor parsing, bounce copy) plus storage media
// time, then a completion that is injected into the guest.
type BlkDevice struct {
	vmm *VMM
	// vq is the request virtqueue; a full ring backpressures the driver
	// (doorbell retries, each of which costs the guest an exit path).
	vq *Virtqueue

	requests  uint64
	bytes     uint64
	completed uint64
}

// Submit processes a guest block request.
func (d *BlkDevice) Submit(vcpu int, req guest.IORequest) {
	v := d.vmm
	c := v.costs
	if !d.vq.Push(vcpu, req) {
		// Ring full: the driver retries after the device makes progress.
		v.count("vmm.blk.ring_full")
		v.eng.After(10*sim.Microsecond, "blk-ring-retry", func() { d.Submit(vcpu, req) })
		return
	}
	d.requests++
	d.bytes += uint64(req.Bytes)
	v.count("vmm.blk.requests")

	emul := c.BlkPerRequest + sim.Duration(c.BlkNsPerByte*float64(req.Bytes))
	media := c.BlkMediaLatency + sim.Duration(c.BlkMediaNsPerByte*float64(req.Bytes))
	if req.Write {
		// Writes land in the device's write cache: lower access latency.
		media = media * 7 / 10
	}
	v.k.Submit(v.ioThread, "blk-emul", emul, func() {
		qv, qreq, ok := d.vq.Pop()
		if !ok {
			return
		}
		v.eng.After(media, "blk-media", func() {
			// Completion processing back on the I/O thread, then the
			// interrupt to the guest.
			v.k.Submit(v.ioThread, "blk-complete", sim.Microsecond, func() {
				d.vq.Complete()
				d.completed++
				v.Inject(qv, guest.Event{
					Kind: guest.EvIOComplete, Dev: guest.VirtioBlk,
					Bytes: qreq.Bytes, Tag: qreq.Tag,
				})
			})
		})
	})
}

// Requests reports submitted request count.
func (d *BlkDevice) Requests() uint64 { return d.requests }

// Queue exposes the request virtqueue.
func (d *BlkDevice) Queue() *Virtqueue { return d.vq }

// Completed reports completed request count.
func (d *BlkDevice) Completed() uint64 { return d.completed }

// NetDevice is the virtio-net back-end. TX: per-packet emulation on the
// I/O thread, then the wire. RX: per-packet emulation, then one coalesced
// EvPacket to the guest (NAPI-style).
type NetDevice struct {
	vmm *VMM
	// peer receives transmitted data (wire latency already applied).
	peer func(bytes, tag int)
	// txq is the transmit virtqueue.
	txq *Virtqueue

	txBytes, rxBytes uint64
	txPkts, rxPkts   uint64
}

// ConnectPeer attaches the external peer's receive function.
func (d *NetDevice) ConnectPeer(fn func(bytes, tag int)) { d.peer = fn }

func (d *NetDevice) packets(bytes int) int {
	mtu := d.vmm.costs.NetPacketMTU
	if mtu <= 0 {
		mtu = 1500
	}
	n := (bytes + mtu - 1) / mtu
	if n < 1 {
		n = 1
	}
	return n
}

// Submit transmits guest data to the peer.
func (d *NetDevice) Submit(vcpu int, req guest.IORequest) {
	v := d.vmm
	if !d.txq.Push(vcpu, req) {
		v.count("vmm.net.ring_full")
		v.eng.After(10*sim.Microsecond, "net-ring-retry", func() { d.Submit(vcpu, req) })
		return
	}
	pkts := d.packets(req.Bytes)
	d.txPkts += uint64(pkts)
	d.txBytes += uint64(req.Bytes)
	v.count("vmm.net.tx")

	work := sim.Duration(pkts) * v.costs.NetPerPacket
	wire := v.costs.WireLatency + sim.Duration(v.costs.WireNsPerByte*float64(req.Bytes))
	v.k.Submit(v.ioThread, "net-tx", work, func() {
		if _, _, ok := d.txq.Pop(); ok {
			d.txq.Complete()
		}
		// The vring TX-completion interrupt: the guest must reclaim its
		// descriptors. (SR-IOV has no such host-injected interrupt; this
		// is part of why emulated I/O is core gapping's worst case.)
		v.Inject(vcpu, guest.Event{Kind: guest.EvIOComplete, Dev: guest.VirtioNet, Bytes: req.Bytes, Tag: req.Tag})
		v.eng.After(wire, "net-wire", func() {
			if d.peer != nil {
				d.peer(req.Bytes, req.Tag)
			}
		})
	})
}

// DeliverToGuest is the RX path: the peer's data arrives at the host NIC,
// is processed per-packet on the I/O thread, and lands in the guest as a
// single coalesced event.
func (d *NetDevice) DeliverToGuest(vcpu, bytes, tag int) {
	v := d.vmm
	pkts := d.packets(bytes)
	d.rxPkts += uint64(pkts)
	d.rxBytes += uint64(bytes)
	v.count("vmm.net.rx")

	work := sim.Duration(pkts) * v.costs.NetPerPacket
	v.k.Submit(v.ioThread, "net-rx", work, func() {
		v.Inject(vcpu, guest.Event{Kind: guest.EvPacket, Dev: guest.VirtioNet, Bytes: bytes, Tag: tag})
	})
}

// TxPackets reports transmitted packet count.
func (d *NetDevice) TxPackets() uint64 { return d.txPkts }

// TxQueue exposes the transmit virtqueue.
func (d *NetDevice) TxQueue() *Virtqueue { return d.txq }

// RxPackets reports received packet count.
func (d *NetDevice) RxPackets() uint64 { return d.rxPkts }

// VFDevice is an SR-IOV virtual function: data moves by DMA directly
// between guest memory and the NIC with no host CPU on the data path; the
// host serves "only to deliver interrupts" (§5.3).
type VFDevice struct {
	vmm  *VMM
	peer func(bytes, tag int)

	txBytes, rxBytes uint64
}

// ConnectPeer attaches the external peer's receive function.
func (d *VFDevice) ConnectPeer(fn func(bytes, tag int)) { d.peer = fn }

// Submit transmits guest data: pure hardware path.
func (d *VFDevice) Submit(vcpu int, req guest.IORequest) {
	v := d.vmm
	d.txBytes += uint64(req.Bytes)
	v.count("vmm.vf.tx")
	wire := v.costs.VFDMALatency + v.costs.WireLatency +
		sim.Duration(v.costs.WireNsPerByte*float64(req.Bytes))
	v.eng.After(wire, "vf-wire", func() {
		if d.peer != nil {
			d.peer(req.Bytes, req.Tag)
		}
	})
}

// DeliverToGuest is the RX path: DMA into guest memory, then the
// completion interrupt through the orchestrator's injection path (which,
// in the core-gapped prototype, still involves the host — the Fig. 8
// "additional interrupt latency" limitation).
func (d *VFDevice) DeliverToGuest(vcpu, bytes, tag int) {
	v := d.vmm
	d.rxBytes += uint64(bytes)
	v.count("vmm.vf.rx")
	v.eng.After(v.costs.VFDMALatency, "vf-dma", func() {
		v.Inject(vcpu, guest.Event{Kind: guest.EvPacket, Dev: guest.SRIOVNet, Bytes: bytes, Tag: tag})
	})
}

// TxBytes reports transmitted bytes.
func (d *VFDevice) TxBytes() uint64 { return d.txBytes }

// RxBytes reports received bytes.
func (d *VFDevice) RxBytes() uint64 { return d.rxBytes }
