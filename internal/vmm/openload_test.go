package vmm

import (
	"testing"

	"coregap/internal/sim"
	"coregap/internal/trace"
)

// echoLoadGen wires an OpenLoadGen to a peer whose guest echoes every
// request synchronously at delivery time: the generator's own send and
// response paths run back-to-back with no VMM model in between, which is
// exactly what the zero-alloc gate and the arrival benchmark want to
// measure.
func echoLoadGen(kind ArrivalKind, rate float64, clients int) (*sim.Engine, *OpenLoadGen) {
	eng := sim.NewEngine(7)
	peer := NewPeer(eng, DefaultCosts(), trace.NewSet())
	lg := NewOpenLoadGen(peer, OpenLoadConfig{
		Kind: kind, Rate: rate, Clients: clients, ReqBytes: 512,
	}, func(c int) int { return c }, "openload.lat", eng.Source("openload"))
	peer.Connect(func(vcpu, bytes, tag int) { lg.OnResponse(bytes, tag) })
	return eng, lg
}

// TestZeroAllocOpenLoad: once the arrival plan, record arena, and engine
// pools are warm, offering and answering load allocates nothing — the
// gate that keeps 500 krps runs from scaling GC pressure with the
// offered rate. Mirrors the engine's TestZeroAlloc* gates.
func TestZeroAllocOpenLoad(t *testing.T) {
	for _, kind := range []ArrivalKind{ArrivalPoisson, ArrivalBursty} {
		eng, lg := echoLoadGen(kind, 500_000, 256)
		lg.Start()
		eng.RunUntil(sim.Time(100 * sim.Millisecond)) // warm pools and plan buffer
		avg := testing.AllocsPerRun(10, func() {
			eng.RunUntil(eng.Now().Add(sim.Millisecond)) // ~500 arrivals per run
			_ = lg.Sent()
			_ = lg.Backlog()
		})
		if avg != 0 {
			t.Errorf("%v: %.1f allocs per 1ms of 500 krps steady state, want 0", kind, avg)
		}
	}
}

// TestOpenLoadSentLazyCount: Sent counts arrivals at or before now (or
// the stop instant) without a counter on the delivery path. With a
// synchronous echo every delivered request is served immediately, so at
// any instant Sent−Served is exactly the arrivals still on the wire —
// bounded by the wire delay's worth of offered load — and after a
// stop+drain the two must meet.
func TestOpenLoadSentLazyCount(t *testing.T) {
	eng, lg := echoLoadGen(ArrivalPoisson, 500_000, 64)
	lg.Start()
	wireReqs := int(float64(lg.wireDelay) / 1e9 * lg.rate) // mean arrivals per wire delay
	prev := uint64(0)
	for step := 1; step <= 20; step++ {
		eng.RunUntil(sim.Time(step) * sim.Time(sim.Millisecond))
		sent := lg.Sent()
		if sent < prev {
			t.Fatalf("Sent went backwards: %d -> %d", prev, sent)
		}
		prev = sent
		if gap := int(sent - lg.Served()); gap > 10*(wireReqs+1) {
			t.Fatalf("step %d: sent-served = %d, far beyond wire occupancy ~%d", step, gap, wireReqs)
		}
	}
	lg.Stop()
	eng.Run()
	if lg.Sent() != lg.Served() {
		t.Fatalf("after drain sent=%d served=%d", lg.Sent(), lg.Served())
	}
	if lg.Backlog() != 0 || lg.Dropped() != 0 {
		t.Fatalf("backlog=%d dropped=%d after drain", lg.Backlog(), lg.Dropped())
	}
}

// TestOpenLoadMillionConnections: a 2^20-connection pool round-robins
// correctly — the intrusive per-connection FIFOs replace the old
// [][]sim.Time, whose million slice headers plus per-connection backing
// arrays made memory scale with the pool size times in-flight depth.
func TestOpenLoadMillionConnections(t *testing.T) {
	eng, lg := echoLoadGen(ArrivalPoisson, 500_000, 1<<20)
	lg.Start()
	eng.RunUntil(sim.Time(20 * sim.Millisecond))
	lg.Stop()
	eng.Run()
	if lg.Sent() < 9_000 || lg.Sent() > 11_000 {
		t.Fatalf("sent = %d, want ~10000", lg.Sent())
	}
	if lg.Served() != lg.Sent() || lg.Dropped() != 0 {
		t.Fatalf("served=%d sent=%d dropped=%d", lg.Served(), lg.Sent(), lg.Dropped())
	}
	// The shared record arena holds only the in-flight peak, not a
	// per-connection high-water mark.
	if len(lg.recs) > 1024 {
		t.Fatalf("record arena grew to %d for a synchronous echo", len(lg.recs))
	}
}

// TestOpenLoadFIFOMatching: with replies delayed a fixed amount, several
// requests are in flight per connection at once and responses must match
// sends in FIFO order — every recorded latency equals the wire delay
// plus the service delay exactly.
func TestOpenLoadFIFOMatching(t *testing.T) {
	eng := sim.NewEngine(7)
	met := trace.NewSet()
	peer := NewPeer(eng, DefaultCosts(), met)
	lg := NewOpenLoadGen(peer, OpenLoadConfig{
		Kind: ArrivalPoisson, Rate: 200_000, Clients: 4, ReqBytes: 512,
	}, func(c int) int { return c }, "openload.lat", eng.Source("openload"))
	const service = 40 * sim.Microsecond
	peer.Connect(func(vcpu, bytes, tag int) {
		eng.After(service, "echo-delay", func() { lg.OnResponse(bytes, tag) })
	})
	lg.Start()
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	lg.Stop()
	eng.Run()
	if lg.Dropped() != 0 || lg.Backlog() != 0 {
		t.Fatalf("dropped=%d backlog=%d", lg.Dropped(), lg.Backlog())
	}
	want := lg.wireDelay + service
	h := met.Hist("openload.lat")
	if h.Count() != int(lg.Served()) {
		t.Fatalf("samples %d != served %d", h.Count(), lg.Served())
	}
	for _, p := range []float64{0, 50, 100} {
		if got := h.Percentile(p); got != want {
			t.Fatalf("p%g latency = %v, want exactly %v (FIFO mismatch)", p, got, want)
		}
	}
}

// BenchmarkOpenLoopArrivals: cost of the full open-loop request
// lifecycle — batched arrival generation, chain delivery, FIFO record,
// synchronous response — at a 500 krps offered rate. One op is 100 µs of
// simulated time, ~50 requests.
func BenchmarkOpenLoopArrivals(b *testing.B) {
	eng, lg := echoLoadGen(ArrivalPoisson, 500_000, 1<<10)
	lg.Start()
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(eng.Now().Add(100 * sim.Microsecond))
	}
	b.StopTimer()
	if lg.Dropped() != 0 {
		b.Fatalf("dropped = %d", lg.Dropped())
	}
	b.ReportMetric(float64(lg.Served())/float64(b.N), "reqs/op")
}
