package vmm

import (
	"testing"

	"coregap/internal/gic"
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

func newVMM(t *testing.T, cores, ioCore int) (*sim.Engine, *host.Kernel, *VMM) {
	t.Helper()
	eng := sim.NewEngine(11)
	m := hw.NewMachine(eng, hw.DefaultConfig(cores))
	k := host.NewKernel(m, gic.NewDistributor(m), trace.NewSet())
	v := New("vm0", k, DefaultCosts(), ioCore, k.Metrics())
	return eng, k, v
}

func TestBlkRequestLifecycle(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	var got []guest.Event
	v.SetInject(func(vcpu int, ev guest.Event) { got = append(got, ev) })

	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 4096, Write: true, Tag: 7})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	ev := got[0]
	if ev.Kind != guest.EvIOComplete || ev.Dev != guest.VirtioBlk || ev.Bytes != 4096 || ev.Tag != 7 {
		t.Fatalf("event = %+v", ev)
	}
	if v.Blk.Requests() != 1 || v.Blk.Completed() != 1 {
		t.Fatal("blk accounting")
	}
	// End-to-end latency must include emulation + media + completion
	// (writes see the 70% write-cache media latency).
	c := v.Costs()
	min := c.BlkPerRequest + c.BlkMediaLatency*7/10 + sim.Microsecond
	if eng.Now() < sim.Time(min) {
		t.Fatalf("completed at %v, faster than cost floor %v", eng.Now(), min)
	}
}

func TestBlkLargerRequestsTakeLonger(t *testing.T) {
	measure := func(bytes int) sim.Time {
		eng, _, v := newVMM(t, 2, 1)
		v.SetInject(func(int, guest.Event) {})
		v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: bytes})
		eng.Run()
		return eng.Now()
	}
	small, big := measure(4096), measure(1<<20)
	if big <= small {
		t.Fatalf("1MiB (%v) not slower than 4KiB (%v)", big, small)
	}
}

func TestNetTxReachesPeer(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	var gotBytes, gotTag int
	v.Net.ConnectPeer(func(bytes, tag int) { gotBytes, gotTag = bytes, tag })
	v.Submit(0, guest.IORequest{Dev: guest.VirtioNet, Bytes: 9000, Tag: 3})
	eng.Run()
	if gotBytes != 9000 || gotTag != 3 {
		t.Fatalf("peer got %d/%d", gotBytes, gotTag)
	}
	// 9000B = 6 MTU packets.
	if v.Net.TxPackets() != 6 {
		t.Fatalf("tx packets = %d, want 6", v.Net.TxPackets())
	}
}

func TestNetRxInjectsCoalesced(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	events := 0
	v.SetInject(func(vcpu int, ev guest.Event) {
		events++
		if ev.Kind != guest.EvPacket || ev.Bytes != 4500 {
			t.Fatalf("event = %+v", ev)
		}
	})
	v.Net.DeliverToGuest(0, 4500, 0)
	eng.Run()
	if events != 1 {
		t.Fatalf("events = %d, want 1 (coalesced)", events)
	}
	if v.Net.RxPackets() != 3 {
		t.Fatalf("rx packets = %d", v.Net.RxPackets())
	}
}

func TestVFBypassesHostCPU(t *testing.T) {
	eng, k, v := newVMM(t, 2, 1)
	delivered := false
	v.VF.ConnectPeer(func(bytes, tag int) { delivered = true })
	v.Submit(0, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 64 << 10})
	eng.Run()
	if !delivered {
		t.Fatal("vf tx never arrived")
	}
	if v.IOThread().CPUTime() != 0 {
		t.Fatalf("SR-IOV consumed %v host CPU on the data path", v.IOThread().CPUTime())
	}
	_ = k
}

func TestVFFasterThanVirtioForBulk(t *testing.T) {
	measure := func(dev guest.DeviceClass) sim.Time {
		eng, _, v := newVMM(t, 2, 1)
		done := sim.Time(0)
		fn := func(bytes, tag int) { done = eng.Now() }
		v.Net.ConnectPeer(fn)
		v.VF.ConnectPeer(fn)
		v.Submit(0, guest.IORequest{Dev: dev, Bytes: 1 << 20})
		eng.Run()
		return done
	}
	virtio, vf := measure(guest.VirtioNet), measure(guest.SRIOVNet)
	if vf >= virtio {
		t.Fatalf("SR-IOV (%v) not faster than virtio (%v) for 1MiB", vf, virtio)
	}
}

func TestIOThreadPinning(t *testing.T) {
	eng, _, v := newVMM(t, 4, 2)
	v.SetInject(func(int, guest.Event) {})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 4096})
	eng.Run()
	if v.IOThread().Core() != 2 {
		t.Fatalf("io thread ran on core %d, want 2", v.IOThread().Core())
	}
	if v.IOThread().Pin() != 2 {
		t.Fatal("pin not recorded")
	}
}

func TestPeerPingPong(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	peer := NewPeer(eng, v.Costs(), nil)
	hist := &trace.Hist{}

	// Echo guest: reflect every delivery straight back via the VF.
	peer.Connect(func(vcpu, bytes, tag int) {
		// Model zero guest time: immediately transmit back.
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: bytes, Tag: tag})
	})
	done := false
	pp := NewPingPong(peer, 1024, 10, hist, func() { done = true })
	v.VF.ConnectPeer(pp.OnEcho)
	pp.Start()
	eng.Run()
	if !done || pp.Done() != 10 {
		t.Fatalf("rounds = %d", pp.Done())
	}
	if hist.Count() != 10 {
		t.Fatalf("rtt samples = %d", hist.Count())
	}
	// RTT floor: 2 wire crossings + DMA costs.
	c := v.Costs()
	floor := 2 * c.WireLatency
	if hist.Min() < floor {
		t.Fatalf("rtt %v below wire floor %v", hist.Min(), floor)
	}
}

func TestLoadGenClosedLoop(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	peer := NewPeer(eng, v.Costs(), nil)
	hist := &trace.Hist{}

	// Echo server guest.
	peer.Connect(func(vcpu, bytes, tag int) {
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 128, Tag: tag})
	})
	lg := NewLoadGen(peer, 10, 512, func(c int) int { return c }, hist)
	v.VF.ConnectPeer(lg.OnResponse)
	lg.Start()
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	lg.Stop()
	eng.Run()
	if lg.Served() < 100 {
		t.Fatalf("served = %d, want many", lg.Served())
	}
	if hist.Count() != int(lg.Served()) {
		t.Fatal("latency samples != served")
	}
	if lg.Throughput(10*sim.Millisecond) <= 0 {
		t.Fatal("throughput")
	}
}

func TestSubmitRoutesToDevices(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	v.SetInject(func(int, guest.Event) {})
	v.Net.ConnectPeer(func(int, int) {})
	v.VF.ConnectPeer(func(int, int) {})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 512})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioNet, Bytes: 512})
	v.Submit(0, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 512})
	eng.Run()
	if v.Blk.Requests() != 1 || v.Net.TxPackets() != 1 || v.VF.TxBytes() != 512 {
		t.Fatal("routing wrong")
	}
}
