package vmm

import (
	"testing"

	"coregap/internal/gic"
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

func newVMM(t *testing.T, cores, ioCore int) (*sim.Engine, *host.Kernel, *VMM) {
	t.Helper()
	eng := sim.NewEngine(11)
	m := hw.NewMachine(eng, hw.DefaultConfig(cores))
	k := host.NewKernel(m, gic.NewDistributor(m), trace.NewSet())
	v := New("vm0", k, DefaultCosts(), ioCore, k.Metrics())
	return eng, k, v
}

func TestBlkRequestLifecycle(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	var got []guest.Event
	v.SetInject(func(vcpu int, ev guest.Event) { got = append(got, ev) })

	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 4096, Write: true, Tag: 7})
	eng.Run()
	if len(got) != 1 {
		t.Fatalf("completions = %d", len(got))
	}
	ev := got[0]
	if ev.Kind != guest.EvIOComplete || ev.Dev != guest.VirtioBlk || ev.Bytes != 4096 || ev.Tag != 7 {
		t.Fatalf("event = %+v", ev)
	}
	if v.Blk.Requests() != 1 || v.Blk.Completed() != 1 {
		t.Fatal("blk accounting")
	}
	// End-to-end latency must include emulation + media + completion
	// (writes see the 70% write-cache media latency).
	c := v.Costs()
	min := c.BlkPerRequest + c.BlkMediaLatency*7/10 + sim.Microsecond
	if eng.Now() < sim.Time(min) {
		t.Fatalf("completed at %v, faster than cost floor %v", eng.Now(), min)
	}
}

func TestBlkLargerRequestsTakeLonger(t *testing.T) {
	measure := func(bytes int) sim.Time {
		eng, _, v := newVMM(t, 2, 1)
		v.SetInject(func(int, guest.Event) {})
		v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: bytes})
		eng.Run()
		return eng.Now()
	}
	small, big := measure(4096), measure(1<<20)
	if big <= small {
		t.Fatalf("1MiB (%v) not slower than 4KiB (%v)", big, small)
	}
}

func TestNetTxReachesPeer(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	var gotBytes, gotTag int
	v.Net.ConnectPeer(func(bytes, tag int) { gotBytes, gotTag = bytes, tag })
	v.Submit(0, guest.IORequest{Dev: guest.VirtioNet, Bytes: 9000, Tag: 3})
	eng.Run()
	if gotBytes != 9000 || gotTag != 3 {
		t.Fatalf("peer got %d/%d", gotBytes, gotTag)
	}
	// 9000B = 6 MTU packets.
	if v.Net.TxPackets() != 6 {
		t.Fatalf("tx packets = %d, want 6", v.Net.TxPackets())
	}
}

func TestNetRxInjectsCoalesced(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	events := 0
	v.SetInject(func(vcpu int, ev guest.Event) {
		events++
		if ev.Kind != guest.EvPacket || ev.Bytes != 4500 {
			t.Fatalf("event = %+v", ev)
		}
	})
	v.Net.DeliverToGuest(0, 4500, 0)
	eng.Run()
	if events != 1 {
		t.Fatalf("events = %d, want 1 (coalesced)", events)
	}
	if v.Net.RxPackets() != 3 {
		t.Fatalf("rx packets = %d", v.Net.RxPackets())
	}
}

func TestVFBypassesHostCPU(t *testing.T) {
	eng, k, v := newVMM(t, 2, 1)
	delivered := false
	v.VF.ConnectPeer(func(bytes, tag int) { delivered = true })
	v.Submit(0, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 64 << 10})
	eng.Run()
	if !delivered {
		t.Fatal("vf tx never arrived")
	}
	if v.IOThread().CPUTime() != 0 {
		t.Fatalf("SR-IOV consumed %v host CPU on the data path", v.IOThread().CPUTime())
	}
	_ = k
}

func TestVFFasterThanVirtioForBulk(t *testing.T) {
	measure := func(dev guest.DeviceClass) sim.Time {
		eng, _, v := newVMM(t, 2, 1)
		done := sim.Time(0)
		fn := func(bytes, tag int) { done = eng.Now() }
		v.Net.ConnectPeer(fn)
		v.VF.ConnectPeer(fn)
		v.Submit(0, guest.IORequest{Dev: dev, Bytes: 1 << 20})
		eng.Run()
		return done
	}
	virtio, vf := measure(guest.VirtioNet), measure(guest.SRIOVNet)
	if vf >= virtio {
		t.Fatalf("SR-IOV (%v) not faster than virtio (%v) for 1MiB", vf, virtio)
	}
}

func TestIOThreadPinning(t *testing.T) {
	eng, _, v := newVMM(t, 4, 2)
	v.SetInject(func(int, guest.Event) {})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 4096})
	eng.Run()
	if v.IOThread().Core() != 2 {
		t.Fatalf("io thread ran on core %d, want 2", v.IOThread().Core())
	}
	if v.IOThread().Pin() != 2 {
		t.Fatal("pin not recorded")
	}
}

func TestPeerPingPong(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	met := trace.NewSet()
	peer := NewPeer(eng, v.Costs(), met)
	hist := met.Hist("pingpong.rtt")

	// Echo guest: reflect every delivery straight back via the VF.
	peer.Connect(func(vcpu, bytes, tag int) {
		// Model zero guest time: immediately transmit back.
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: bytes, Tag: tag})
	})
	done := false
	pp := NewPingPong(peer, 1024, 10, "pingpong.rtt", func() { done = true })
	v.VF.ConnectPeer(pp.OnEcho)
	pp.Start()
	eng.Run()
	if !done || pp.Done() != 10 {
		t.Fatalf("rounds = %d", pp.Done())
	}
	if hist.Count() != 10 {
		t.Fatalf("rtt samples = %d", hist.Count())
	}
	// RTT floor: 2 wire crossings + DMA costs.
	c := v.Costs()
	floor := 2 * c.WireLatency
	if hist.Min() < floor {
		t.Fatalf("rtt %v below wire floor %v", hist.Min(), floor)
	}
}

func TestLoadGenClosedLoop(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	met := trace.NewSet()
	peer := NewPeer(eng, v.Costs(), met)
	hist := met.Hist("loadgen.lat")

	// Echo server guest.
	peer.Connect(func(vcpu, bytes, tag int) {
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 128, Tag: tag})
	})
	lg := NewLoadGen(peer, 10, 512, func(c int) int { return c }, "loadgen.lat")
	v.VF.ConnectPeer(lg.OnResponse)
	lg.Start()
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	lg.Stop()
	eng.Run()
	if lg.Served() < 100 {
		t.Fatalf("served = %d, want many", lg.Served())
	}
	if hist.Count() != int(lg.Served()) {
		t.Fatal("latency samples != served")
	}
	if lg.Throughput(10*sim.Millisecond) <= 0 {
		t.Fatal("throughput")
	}
}

func TestSubmitRoutesToDevices(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	v.SetInject(func(int, guest.Event) {})
	v.Net.ConnectPeer(func(int, int) {})
	v.VF.ConnectPeer(func(int, int) {})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 512})
	v.Submit(0, guest.IORequest{Dev: guest.VirtioNet, Bytes: 512})
	v.Submit(0, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 512})
	eng.Run()
	if v.Blk.Requests() != 1 || v.Net.TxPackets() != 1 || v.VF.TxBytes() != 512 {
		t.Fatal("routing wrong")
	}
}

// TestOpenLoadGenPoisson: open-loop arrivals against an echo guest — the
// offered rate is met independent of service latency, every reply
// matches an in-flight request, and latencies flow to the named metric.
func TestOpenLoadGenPoisson(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	met := trace.NewSet()
	peer := NewPeer(eng, v.Costs(), met)
	peer.Connect(func(vcpu, bytes, tag int) {
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 128, Tag: tag})
	})
	lg := NewOpenLoadGen(peer, OpenLoadConfig{
		Kind: ArrivalPoisson, Rate: 50_000, Clients: 10, ReqBytes: 512,
	}, func(c int) int { return c }, "openload.lat", eng.Source("openload"))
	v.VF.ConnectPeer(lg.OnResponse)
	lg.Start()
	eng.RunUntil(sim.Time(20 * sim.Millisecond))
	lg.Stop()
	eng.Run() // drain in-flight requests

	// 50 krps for 20 ms -> ~1000 arrivals; Poisson spread stays well
	// inside 3 sigma (~95) for any seed.
	if lg.Sent() < 900 || lg.Sent() > 1100 {
		t.Fatalf("sent = %d, want ~1000", lg.Sent())
	}
	if lg.Dropped() != 0 {
		t.Fatalf("dropped = %d replies matched no request", lg.Dropped())
	}
	if lg.Backlog() != 0 {
		t.Fatalf("backlog = %d after drain", lg.Backlog())
	}
	if got := met.Hist("openload.lat").Count(); got != int(lg.Served()) {
		t.Fatalf("latency samples %d != served %d", got, lg.Served())
	}
}

// TestOpenLoadGenBursty: the ON/OFF process hits the same mean rate as
// Poisson while concentrating arrivals in the duty-cycle ON phase.
func TestOpenLoadGenBursty(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	met := trace.NewSet()
	peer := NewPeer(eng, v.Costs(), met)
	peer.Connect(func(vcpu, bytes, tag int) {
		v.VF.Submit(vcpu, guest.IORequest{Dev: guest.SRIOVNet, Bytes: 128, Tag: tag})
	})
	lg := NewOpenLoadGen(peer, OpenLoadConfig{
		Kind: ArrivalBursty, Rate: 50_000, Clients: 10, ReqBytes: 512,
	}, func(c int) int { return c }, "openload.lat", eng.Source("openload"))
	v.VF.ConnectPeer(lg.OnResponse)
	lg.Start()
	eng.RunUntil(sim.Time(20 * sim.Millisecond))
	lg.Stop()
	eng.Run()

	if lg.Sent() < 800 || lg.Sent() > 1200 {
		t.Fatalf("sent = %d, want ~1000 at the same mean rate", lg.Sent())
	}
	if lg.Dropped() != 0 || lg.Backlog() != 0 {
		t.Fatalf("dropped=%d backlog=%d after drain", lg.Dropped(), lg.Backlog())
	}
}

// TestOpenLoadGenValidation: nonsensical configs must refuse loudly.
func TestOpenLoadGenValidation(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	peer := NewPeer(eng, v.Costs(), trace.NewSet())
	for _, cfg := range []OpenLoadConfig{
		{Kind: ArrivalPoisson, Rate: 0, Clients: 10},
		{Kind: ArrivalPoisson, Rate: -5, Clients: 10},
		{Kind: ArrivalPoisson, Rate: 1000, Clients: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewOpenLoadGen(%+v) did not panic", cfg)
				}
			}()
			NewOpenLoadGen(peer, cfg, func(c int) int { return c }, "x", eng.Source("x"))
		}()
	}
}
