package vmm

import (
	"coregap/internal/sim"
)

// ArrivalKind names an open-loop arrival process.
type ArrivalKind int

// Arrival processes.
const (
	// ArrivalPoisson draws i.i.d. exponential interarrivals: the
	// classical open-loop M/./1 offered load.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty modulates a Poisson process with a deterministic
	// ON/OFF duty cycle: during ON the instantaneous rate is
	// rate/BurstDuty (so the long-run mean stays at rate), during OFF no
	// requests arrive. This is the adversarial arrival shape for tail
	// SLOs — the same mean load arrives in concentrated bursts.
	ArrivalBursty ArrivalKind = iota
)

func (k ArrivalKind) String() string {
	if k == ArrivalBursty {
		return "bursty"
	}
	return "poisson"
}

// arrivalBatch is how many arrival times each extension of the plan
// buffer precomputes. Big enough that the per-batch bookkeeping
// amortises away at high offered rates; small enough that low-rate runs
// don't draw far past their horizon.
const arrivalBatch = 64

// retireThreshold is how many delivered arrivals accumulate at the front
// of the plan buffer before they are compacted away. The undelivered
// tail is bounded by one wire delay's worth of offered load plus a
// batch, so compaction is O(1) amortised per arrival and the buffer
// footprint is independent of run length.
const retireThreshold = 4 * arrivalBatch

// OpenLoadGen is the open-loop counterpart of LoadGen: requests arrive
// on their own clock — an arrival process with a fixed offered rate —
// whether or not earlier requests have completed. Unlike a closed loop,
// which self-throttles when the server slows down (coordinated
// omission), an open loop keeps offering load, so queueing delay shows
// up in full in the recorded latencies: this is the generator that makes
// tail-SLO and queueing-collapse behaviour visible.
//
// Arrivals round-robin over a pool of connection ids; each connection
// keeps a FIFO queue of send timestamps. The Redis guest model serves
// strictly in arrival order, so replies on one connection return in that
// connection's send order and the FIFO matching is exact.
//
// The generator is built for offered rates in the hundreds of krps and
// connection pools in the millions: arrival times are precomputed in
// batches into a reusable plan buffer, requests are delivered to the
// guest by a single self-re-arming engine event (one event per request,
// not two, and no per-request closure), and per-connection FIFOs are
// intrusive lists threaded through one shared free-listed record arena.
// In steady state the send and response paths allocate nothing; memory
// grows with the in-flight population and the connection count, not
// with the offered rate or the run length.
type OpenLoadGen struct {
	peer     *Peer
	reqBytes int
	mkTag    func(client int) int
	metric   string

	kind ArrivalKind
	rate float64 // offered req/s (long-run mean)
	src  *sim.Source

	// Bursty shape: cycle period and ON fraction.
	burstPeriod sim.Duration
	burstDuty   float64

	clients int

	// wireDelay is the constant peer→guest wire time for reqBytes; the
	// delivery chain schedules arrivals directly at arrival+wireDelay
	// rather than bouncing through a separate per-request wire event.
	wireDelay sim.Duration

	// Arrival plan: absolute times of upcoming arrivals, generated
	// batch-at-a-time by the same draws the one-event-per-arrival
	// implementation made, so the schedule is bit-identical. times is
	// sorted; head indexes the next undelivered arrival; baseIdx is the
	// arrival index of times[0] (arrivals retired from the buffer).
	// Invariant: whenever a delivery event is armed for deadline D,
	// times[len-1] >= D, so Sent can count arrivals by binary search —
	// every arrival at or before any observable instant is in the buffer.
	times   []sim.Time
	head    int
	baseIdx uint64
	prev    sim.Time // last generated arrival time, seeds the next batch

	deliverFn func() // method value, created once: the chain callback

	// In-flight request records: one shared arena with an intrusive
	// free list, plus per-connection intrusive FIFO heads/tails (-1 when
	// empty). Replaces a [][]sim.Time whose per-connection backing
	// arrays made memory scale with clients × in-flight.
	recs     []reqRec
	freeRec  int32
	connHead []int32
	connTail []int32

	served  uint64
	dropped uint64 // replies with no matching in-flight request (modelling bug guard)
	stopped bool
	stopAt  sim.Time
}

// reqRec is one in-flight request: its arrival (send) time and the next
// record on the same connection's FIFO, or the next free record.
type reqRec struct {
	at   sim.Time
	next int32
}

// OpenLoadConfig parameterizes NewOpenLoadGen.
type OpenLoadConfig struct {
	Kind     ArrivalKind
	Rate     float64 // offered req/s, > 0
	Clients  int     // connection pool size, > 0
	ReqBytes int
	// Bursty shape; ignored for Poisson. Zero values default to a 10 ms
	// period with a 20% duty cycle.
	BurstPeriod sim.Duration
	BurstDuty   float64
}

// NewOpenLoadGen builds the generator. mkTag produces the request tag
// for a connection id; latencies are recorded at completion time into
// the peer's metric set under metric. src must be one of the engine's
// named sources so runs stay deterministic.
func NewOpenLoadGen(peer *Peer, cfg OpenLoadConfig, mkTag func(int) int, metric string, src *sim.Source) *OpenLoadGen {
	if cfg.Rate <= 0 {
		panic("vmm: OpenLoadGen rate must be positive")
	}
	if cfg.Clients <= 0 {
		panic("vmm: OpenLoadGen needs at least one connection")
	}
	if cfg.BurstPeriod <= 0 {
		cfg.BurstPeriod = 10 * sim.Millisecond
	}
	if cfg.BurstDuty <= 0 || cfg.BurstDuty > 1 {
		cfg.BurstDuty = 0.2
	}
	g := &OpenLoadGen{
		peer:        peer,
		reqBytes:    cfg.ReqBytes,
		mkTag:       mkTag,
		metric:      metric,
		kind:        cfg.Kind,
		rate:        cfg.Rate,
		src:         src,
		burstPeriod: cfg.BurstPeriod,
		burstDuty:   cfg.BurstDuty,
		clients:     cfg.Clients,
		wireDelay:   peer.wireDelay(cfg.ReqBytes),
		freeRec:     -1,
		connHead:    make([]int32, cfg.Clients),
		connTail:    make([]int32, cfg.Clients),
	}
	for i := range g.connHead {
		g.connHead[i] = -1
		g.connTail[i] = -1
	}
	g.deliverFn = g.deliverNext
	return g
}

// Start generates the first arrival batch and arms the delivery chain.
func (g *OpenLoadGen) Start() {
	g.prev = g.peer.eng.Now()
	g.arm()
}

// meanGap is the mean interarrival time of the long-run offered rate.
func (g *OpenLoadGen) meanGap() sim.Duration {
	return sim.Duration(1e9 / g.rate)
}

// gapFrom draws the next interarrival according to the arrival process,
// with prev standing in for "now at the previous arrival" — the draws
// and the duty-cycle phase arithmetic are exactly what a generator
// scheduling one event per arrival would compute, so batching changes
// nothing observable.
func (g *OpenLoadGen) gapFrom(prev sim.Time) sim.Duration {
	switch g.kind {
	case ArrivalBursty:
		// Inside an ON phase the instantaneous rate is rate/duty; a draw
		// that lands past the ON boundary skips the OFF remainder of the
		// cycle, preserving the long-run mean.
		on := sim.Duration(float64(g.burstPeriod) * g.burstDuty)
		gap := g.src.Exp(sim.Duration(float64(g.meanGap()) * g.burstDuty))
		phase := sim.Duration(int64(prev) % int64(g.burstPeriod))
		if phase+gap >= on {
			// Carry the overshoot into the next ON phase.
			gap += g.burstPeriod - on
		}
		return gap
	default:
		return g.src.Exp(g.meanGap())
	}
}

// extendBatch appends arrivalBatch precomputed arrival times to the plan.
func (g *OpenLoadGen) extendBatch() {
	prev := g.prev
	for i := 0; i < arrivalBatch; i++ {
		prev = prev.Add(g.gapFrom(prev))
		g.times = append(g.times, prev)
	}
	g.prev = prev
}

// arm schedules the delivery event for the next planned arrival,
// retiring the plan buffer when fully delivered and extending it far
// enough that the Sent binary search stays complete (see the times
// invariant on OpenLoadGen).
func (g *OpenLoadGen) arm() {
	if g.head >= retireThreshold || (g.head > 0 && g.head == len(g.times)) {
		// Retire the delivered prefix, keeping capacity. Delivered
		// arrivals are at or before every future Sent cutoff, so folding
		// them into baseIdx keeps the binary search exact.
		g.baseIdx += uint64(g.head)
		n := copy(g.times, g.times[g.head:])
		g.times = g.times[:n]
		g.head = 0
	}
	if g.head >= len(g.times) {
		g.extendBatch()
	}
	next := g.times[g.head]
	if g.stopped && next > g.stopAt {
		return
	}
	deadline := next.Add(g.wireDelay)
	for g.times[len(g.times)-1] < deadline {
		g.extendBatch()
	}
	g.peer.eng.At(deadline, "openload-deliver", g.deliverFn)
}

// deliverNext is the chain callback: it delivers the head arrival to the
// guest (the request's wire time has elapsed — this is the moment the
// old per-request wire event fired) and re-arms for the next arrival.
func (g *OpenLoadGen) deliverNext() {
	at := g.times[g.head]
	if g.stopped && at > g.stopAt {
		return
	}
	client := int(g.baseIdx+uint64(g.head)) % g.clients
	g.head++
	g.pushRec(client, at)
	if f := g.peer.sendToGuest; f != nil {
		f(0, g.reqBytes, g.mkTag(client))
	}
	g.arm()
}

// pushRec appends an in-flight record to a connection's FIFO.
func (g *OpenLoadGen) pushRec(client int, at sim.Time) {
	idx := g.freeRec
	if idx >= 0 {
		g.freeRec = g.recs[idx].next
		g.recs[idx] = reqRec{at: at, next: -1}
	} else {
		g.recs = append(g.recs, reqRec{at: at, next: -1})
		idx = int32(len(g.recs) - 1)
	}
	if tail := g.connTail[client]; tail >= 0 {
		g.recs[tail].next = idx
	} else {
		g.connHead[client] = idx
	}
	g.connTail[client] = idx
}

// popRec removes the oldest in-flight record from a connection's FIFO.
func (g *OpenLoadGen) popRec(client int) (sim.Time, bool) {
	idx := g.connHead[client]
	if idx < 0 {
		return 0, false
	}
	r := &g.recs[idx]
	g.connHead[client] = r.next
	if r.next < 0 {
		g.connTail[client] = -1
	}
	r.next = g.freeRec
	g.freeRec = idx
	return r.at, true
}

// OnResponse is called when the guest's reply for a connection arrives.
func (g *OpenLoadGen) OnResponse(bytes, tag int) {
	client := tag & 0xffffff
	if client >= g.clients {
		return
	}
	sent, ok := g.popRec(client)
	if !ok {
		g.dropped++
		return
	}
	now := g.peer.eng.Now()
	g.peer.met.Lat(g.metric, now, now.Sub(sent))
	g.served++
}

// Stop ends the arrival process: arrivals after this instant are never
// delivered, while requests already on the wire drain naturally.
func (g *OpenLoadGen) Stop() {
	if g.stopped {
		return
	}
	g.stopped = true
	g.stopAt = g.peer.eng.Now()
}

// Sent reports requests offered so far: arrivals at or before now (or
// the stop time, once stopped). The count is a binary search over the
// arrival plan — the times invariant guarantees the plan extends past
// any instant at which Sent can run — so offering a request costs no
// counter update on the delivery path.
func (g *OpenLoadGen) Sent() uint64 {
	cutoff := g.peer.eng.Now()
	if g.stopped && g.stopAt < cutoff {
		cutoff = g.stopAt
	}
	// Manual upper bound (first index with times[i] > cutoff):
	// sort.Search would force the bound into a closure and allocate.
	lo, hi := 0, len(g.times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.times[mid] <= cutoff {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.baseIdx + uint64(lo)
}

// Served reports completed request-response pairs.
func (g *OpenLoadGen) Served() uint64 { return g.served }

// Dropped reports replies that matched no in-flight request.
func (g *OpenLoadGen) Dropped() uint64 { return g.dropped }

// Backlog reports requests offered but not yet answered.
func (g *OpenLoadGen) Backlog() int { return int(g.Sent() - g.served) }
