package vmm

import (
	"coregap/internal/sim"
)

// ArrivalKind names an open-loop arrival process.
type ArrivalKind int

// Arrival processes.
const (
	// ArrivalPoisson draws i.i.d. exponential interarrivals: the
	// classical open-loop M/./1 offered load.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty modulates a Poisson process with a deterministic
	// ON/OFF duty cycle: during ON the instantaneous rate is
	// rate/BurstDuty (so the long-run mean stays at rate), during OFF no
	// requests arrive. This is the adversarial arrival shape for tail
	// SLOs — the same mean load arrives in concentrated bursts.
	ArrivalBursty ArrivalKind = iota
)

func (k ArrivalKind) String() string {
	if k == ArrivalBursty {
		return "bursty"
	}
	return "poisson"
}

// OpenLoadGen is the open-loop counterpart of LoadGen: requests arrive
// on their own clock — an arrival process with a fixed offered rate —
// whether or not earlier requests have completed. Unlike a closed loop,
// which self-throttles when the server slows down (coordinated
// omission), an open loop keeps offering load, so queueing delay shows
// up in full in the recorded latencies: this is the generator that makes
// tail-SLO and queueing-collapse behaviour visible.
//
// Arrivals round-robin over a pool of connection ids; each connection
// keeps a FIFO queue of send timestamps. The Redis guest model serves
// strictly in arrival order, so replies on one connection return in that
// connection's send order and the FIFO matching is exact.
type OpenLoadGen struct {
	peer     *Peer
	reqBytes int
	mkTag    func(client int) int
	metric   string

	kind ArrivalKind
	rate float64 // offered req/s (long-run mean)
	src  *sim.Source

	// Bursty shape: cycle period and ON fraction.
	burstPeriod sim.Duration
	burstDuty   float64

	clients int
	sentAt  [][]sim.Time // per-connection FIFO of in-flight send times

	sent    uint64
	served  uint64
	dropped uint64 // replies with no matching in-flight request (modelling bug guard)
	stopped bool
}

// OpenLoadConfig parameterizes NewOpenLoadGen.
type OpenLoadConfig struct {
	Kind     ArrivalKind
	Rate     float64 // offered req/s, > 0
	Clients  int     // connection pool size, > 0
	ReqBytes int
	// Bursty shape; ignored for Poisson. Zero values default to a 10 ms
	// period with a 20% duty cycle.
	BurstPeriod sim.Duration
	BurstDuty   float64
}

// NewOpenLoadGen builds the generator. mkTag produces the request tag
// for a connection id; latencies are recorded at completion time into
// the peer's metric set under metric. src must be one of the engine's
// named sources so runs stay deterministic.
func NewOpenLoadGen(peer *Peer, cfg OpenLoadConfig, mkTag func(int) int, metric string, src *sim.Source) *OpenLoadGen {
	if cfg.Rate <= 0 {
		panic("vmm: OpenLoadGen rate must be positive")
	}
	if cfg.Clients <= 0 {
		panic("vmm: OpenLoadGen needs at least one connection")
	}
	if cfg.BurstPeriod <= 0 {
		cfg.BurstPeriod = 10 * sim.Millisecond
	}
	if cfg.BurstDuty <= 0 || cfg.BurstDuty > 1 {
		cfg.BurstDuty = 0.2
	}
	g := &OpenLoadGen{
		peer:        peer,
		reqBytes:    cfg.ReqBytes,
		mkTag:       mkTag,
		metric:      metric,
		kind:        cfg.Kind,
		rate:        cfg.Rate,
		src:         src,
		burstPeriod: cfg.BurstPeriod,
		burstDuty:   cfg.BurstDuty,
		clients:     cfg.Clients,
		sentAt:      make([][]sim.Time, cfg.Clients),
	}
	return g
}

// Start schedules the first arrival.
func (g *OpenLoadGen) Start() { g.scheduleNext() }

// meanGap is the mean interarrival time of the long-run offered rate.
func (g *OpenLoadGen) meanGap() sim.Duration {
	return sim.Duration(1e9 / g.rate)
}

// nextGap draws the next interarrival according to the arrival process.
func (g *OpenLoadGen) nextGap() sim.Duration {
	switch g.kind {
	case ArrivalBursty:
		// Inside an ON phase the instantaneous rate is rate/duty; a draw
		// that lands past the ON boundary skips the OFF remainder of the
		// cycle, preserving the long-run mean.
		on := sim.Duration(float64(g.burstPeriod) * g.burstDuty)
		gap := g.src.Exp(sim.Duration(float64(g.meanGap()) * g.burstDuty))
		now := g.peer.eng.Now()
		phase := sim.Duration(int64(now) % int64(g.burstPeriod))
		if phase+gap >= on {
			// Carry the overshoot into the next ON phase.
			gap += g.burstPeriod - on
		}
		return gap
	default:
		return g.src.Exp(g.meanGap())
	}
}

func (g *OpenLoadGen) scheduleNext() {
	if g.stopped {
		return
	}
	g.peer.eng.After(g.nextGap(), "openload-arrival", func() {
		if g.stopped {
			return
		}
		g.fire()
		g.scheduleNext()
	})
}

// fire sends one request on the next round-robin connection.
func (g *OpenLoadGen) fire() {
	client := int(g.sent) % g.clients
	g.sent++
	g.sentAt[client] = append(g.sentAt[client], g.peer.eng.Now())
	g.peer.Send(0, g.reqBytes, g.mkTag(client))
}

// OnResponse is called when the guest's reply for a connection arrives.
func (g *OpenLoadGen) OnResponse(bytes, tag int) {
	client := tag & 0xffffff
	if client >= g.clients {
		return
	}
	q := g.sentAt[client]
	if len(q) == 0 {
		g.dropped++
		return
	}
	sent := q[0]
	// Pop in place: shift keeps the backing array, so the steady-state
	// response path allocates nothing.
	copy(q, q[1:])
	g.sentAt[client] = q[:len(q)-1]
	now := g.peer.eng.Now()
	g.peer.met.Lat(g.metric, now, now.Sub(sent))
	g.served++
}

// Stop ends the arrival process (in-flight requests drain naturally).
func (g *OpenLoadGen) Stop() { g.stopped = true }

// Sent reports requests offered so far.
func (g *OpenLoadGen) Sent() uint64 { return g.sent }

// Served reports completed request-response pairs.
func (g *OpenLoadGen) Served() uint64 { return g.served }

// Dropped reports replies that matched no in-flight request.
func (g *OpenLoadGen) Dropped() uint64 { return g.dropped }

// Backlog reports requests offered but not yet answered.
func (g *OpenLoadGen) Backlog() int { return int(g.sent - g.served) }
