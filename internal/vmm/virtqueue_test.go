package vmm

import (
	"testing"
	"testing/quick"

	"coregap/internal/guest"
	"coregap/internal/sim"
)

func TestVirtqueueFIFOAndCapacity(t *testing.T) {
	q := NewVirtqueue(3)
	if q.Size() != 3 || q.Free() != 3 {
		t.Fatal("geometry")
	}
	for i := 0; i < 3; i++ {
		if !q.Push(0, guest.IORequest{Tag: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(0, guest.IORequest{Tag: 99}) {
		t.Fatal("push into full ring succeeded")
	}
	if q.FullDrops() != 1 || q.Posted() != 3 || q.MaxDepth() != 3 {
		t.Fatalf("stats: drops=%d posted=%d max=%d", q.FullDrops(), q.Posted(), q.MaxDepth())
	}
	for i := 0; i < 3; i++ {
		_, req, ok := q.Pop()
		if !ok || req.Tag != i {
			t.Fatalf("pop %d: got tag %d ok=%v", i, req.Tag, ok)
		}
	}
	// Popped but not completed: descriptors still held.
	if q.Free() != 0 {
		t.Fatalf("free = %d before completion", q.Free())
	}
	q.Complete()
	if q.Free() != 1 {
		t.Fatalf("free = %d after one completion", q.Free())
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty avail succeeded")
	}
}

func TestVirtqueueDefaultSize(t *testing.T) {
	if NewVirtqueue(0).Size() != DefaultQueueSize {
		t.Fatal("default size")
	}
}

func TestVirtqueueDepthInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewVirtqueue(16)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.Push(0, guest.IORequest{})
			case 1:
				q.Pop()
			case 2:
				q.Complete()
			}
			if q.Depth() < 0 || q.Depth() > q.Size() || q.Free() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlkRingBackpressure(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	v.SetInject(func(int, guest.Event) {})
	// Shrink the ring so a burst overflows it.
	v.Blk.vq = NewVirtqueue(4)
	for i := 0; i < 16; i++ {
		v.Submit(0, guest.IORequest{Dev: guest.VirtioBlk, Bytes: 4096, Tag: i})
	}
	eng.Run()
	// Everything eventually completes despite backpressure retries.
	if v.Blk.Completed() != 16 {
		t.Fatalf("completed %d/16", v.Blk.Completed())
	}
	if v.Blk.Queue().FullDrops() == 0 {
		t.Fatal("burst never hit the ring limit")
	}
	if v.Blk.Queue().Depth() != 0 {
		t.Fatalf("ring not drained: depth %d", v.Blk.Queue().Depth())
	}
}

func TestNetTxQueueDrains(t *testing.T) {
	eng, _, v := newVMM(t, 2, 1)
	v.SetInject(func(int, guest.Event) {})
	delivered := 0
	v.Net.ConnectPeer(func(bytes, tag int) { delivered++ })
	for i := 0; i < 32; i++ {
		v.Submit(0, guest.IORequest{Dev: guest.VirtioNet, Bytes: 1500, Tag: i})
	}
	eng.Run()
	if delivered != 32 {
		t.Fatalf("delivered %d/32", delivered)
	}
	if v.Net.TxQueue().Depth() != 0 {
		t.Fatal("tx ring not drained")
	}
	_ = sim.Second
}
