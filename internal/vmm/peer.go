package vmm

import (
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// Peer models the external client machine ("another equivalent but
// unmodified system", §5.3): it originates load, receives the guest's
// transmissions after wire latency, and measures client-observed latency.
//
// Peer is deliberately outside the simulated host: its own CPU time is
// free, exactly like a dedicated load-generator machine.
type Peer struct {
	eng *sim.Engine
	met *trace.Set

	// sendToGuest delivers peer→guest data (device RX path).
	sendToGuest func(vcpu, bytes, tag int)
	wire        sim.Duration
	wireNsPerB  float64
}

// NewPeer builds a peer with the same wire characteristics as the device
// model.
func NewPeer(eng *sim.Engine, costs Costs, met *trace.Set) *Peer {
	return &Peer{eng: eng, met: met, wire: costs.WireLatency, wireNsPerB: costs.WireNsPerByte}
}

// Connect wires the peer's transmit path to a device's DeliverToGuest.
func (p *Peer) Connect(rx func(vcpu, bytes, tag int)) { p.sendToGuest = rx }

// wireDelay is the peer→guest wire time for a message of the given size.
func (p *Peer) wireDelay(bytes int) sim.Duration {
	return p.wire + sim.Duration(p.wireNsPerB*float64(bytes))
}

// Send transmits bytes to the guest vCPU after wire latency.
func (p *Peer) Send(vcpu, bytes, tag int) {
	d := p.wireDelay(bytes)
	p.eng.After(d, "peer-wire", func() {
		if p.sendToGuest != nil {
			p.sendToGuest(vcpu, bytes, tag)
		}
	})
}

// PingPong runs a NetPIPE-style closed loop: send a message, wait for the
// echo, record the round-trip, repeat. onDone fires after rounds echoes.
type PingPong struct {
	peer   *Peer
	bytes  int
	rounds int
	done   int
	sentAt sim.Time
	metric string
	onDone func()
}

// NewPingPong builds the closed-loop client; RTTs are recorded at
// completion time into the peer's metric set under metric (whole-run
// histogram plus, when the set has a window width, the windowed metric).
func NewPingPong(peer *Peer, bytes, rounds int, metric string, onDone func()) *PingPong {
	return &PingPong{peer: peer, bytes: bytes, rounds: rounds, metric: metric, onDone: onDone}
}

// Start fires the first message.
func (pp *PingPong) Start() {
	pp.sentAt = pp.peer.eng.Now()
	pp.peer.Send(0, pp.bytes, 0)
}

// OnEcho is called (via the peer connection) when the guest's reply
// arrives back at the client.
func (pp *PingPong) OnEcho(bytes, tag int) {
	now := pp.peer.eng.Now()
	pp.peer.met.Lat(pp.metric, now, now.Sub(pp.sentAt))
	pp.done++
	if pp.done >= pp.rounds {
		if pp.onDone != nil {
			pp.onDone()
		}
		return
	}
	pp.Start()
}

// Done reports completed rounds.
func (pp *PingPong) Done() int { return pp.done }

// LoadGen is the redis-benchmark client pool (Table 5): n closed-loop
// clients, each sending its next request immediately after receiving the
// previous response.
type LoadGen struct {
	peer     *Peer
	clients  int
	reqBytes int
	mkTag    func(client int) int

	sentAt  []sim.Time
	metric  string
	served  uint64
	stopped bool
}

// NewLoadGen builds the client pool. mkTag produces the request tag for a
// client (encoding the operation); latencies are recorded at completion
// time into the peer's metric set under metric.
func NewLoadGen(peer *Peer, clients, reqBytes int, mkTag func(int) int, metric string) *LoadGen {
	return &LoadGen{
		peer:     peer,
		clients:  clients,
		reqBytes: reqBytes,
		mkTag:    mkTag,
		sentAt:   make([]sim.Time, clients),
		metric:   metric,
	}
}

// Start launches all clients against guest vCPU 0.
func (lg *LoadGen) Start() {
	for c := 0; c < lg.clients; c++ {
		lg.send(c)
	}
}

func (lg *LoadGen) send(client int) {
	lg.sentAt[client] = lg.peer.eng.Now()
	lg.peer.Send(0, lg.reqBytes, lg.mkTag(client))
}

// OnResponse is called when the guest's reply for a client arrives.
func (lg *LoadGen) OnResponse(bytes, tag int) {
	client := tag & 0xffffff
	if client >= lg.clients {
		return
	}
	now := lg.peer.eng.Now()
	lg.peer.met.Lat(lg.metric, now, now.Sub(lg.sentAt[client]))
	lg.served++
	if !lg.stopped {
		lg.send(client)
	}
}

// Stop ends the closed loop (outstanding requests drain naturally).
func (lg *LoadGen) Stop() { lg.stopped = true }

// Served reports completed request-response pairs.
func (lg *LoadGen) Served() uint64 { return lg.served }

// Throughput reports requests/s over the elapsed window.
func (lg *LoadGen) Throughput(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(lg.served) / elapsed.Seconds()
}
