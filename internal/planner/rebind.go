package planner

import (
	"errors"
	"fmt"
	"sort"

	"coregap/internal/hw"
)

// Coarse-timescale rebinding support (§3 future work): the planner can
// compute compaction plans that undo long-term fragmentation of the free
// pool, and tracks in-flight moves so a core is never double-allocated.

// Rebind errors.
var (
	ErrCoreNotFree  = errors.New("planner: target core not free")
	ErrCoreNotOwned = errors.New("planner: core not owned by this VM")
)

// Move is one planned vCPU-core migration.
type Move struct {
	VM   string
	From hw.CoreID
	To   hw.CoreID
}

// BeginRebind reserves the free core `to` for vm. Until CompleteRebind,
// the VM temporarily owns both cores, which is exactly the physical
// situation during the migration window.
func (p *Planner) BeginRebind(vm string, to hw.CoreID) error {
	a, ok := p.assigned[vm]
	if !ok {
		return ErrUnknownVM
	}
	if !p.free[to] {
		return ErrCoreNotFree
	}
	delete(p.free, to)
	a.GuestCores = append(a.GuestCores, to)
	return nil
}

// CompleteRebind releases the vacated core `from` back to the free pool.
func (p *Planner) CompleteRebind(vm string, from hw.CoreID) error {
	a, ok := p.assigned[vm]
	if !ok {
		return ErrUnknownVM
	}
	for i, c := range a.GuestCores {
		if c == from {
			a.GuestCores = append(a.GuestCores[:i], a.GuestCores[i+1:]...)
			p.free[from] = true
			return nil
		}
	}
	return ErrCoreNotOwned
}

// AbortRebind returns a reserved-but-unused target core to the pool.
func (p *Planner) AbortRebind(vm string, to hw.CoreID) error {
	return p.CompleteRebind(vm, to)
}

// CompactionPlan computes moves that pack every VM's cores toward the
// lowest core numbers, eliminating fragmentation of the free pool. The
// plan moves one core at a time and never requires a temporary spare:
// each move's target is free at plan time and plan order.
func (p *Planner) CompactionPlan() []Move {
	free := map[hw.CoreID]bool{}
	for c := range p.free {
		free[c] = true
	}
	var moves []Move

	// Deterministic order: VMs by name, their cores ascending.
	for _, a := range p.Assignments() {
		cores := append([]hw.CoreID(nil), a.GuestCores...)
		sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })
		for _, c := range cores {
			// Lowest free core below c, if any.
			best := hw.NoCore
			for f := range free {
				if f < c && (best == hw.NoCore || f < best) {
					best = f
				}
			}
			if best == hw.NoCore {
				continue
			}
			moves = append(moves, Move{VM: a.VM, From: c, To: best})
			delete(free, best)
			free[c] = true
		}
	}
	return moves
}

func (m Move) String() string {
	return fmt.Sprintf("%s: core %d -> %d", m.VM, m.From, m.To)
}
