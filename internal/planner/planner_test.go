package planner

import (
	"errors"
	"testing"
	"testing/quick"

	"coregap/internal/hw"
)

func TestAdmitContiguousPlacement(t *testing.T) {
	p := New(16, 1)
	a, err := p.Admit("vm1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.GuestCores) != 4 {
		t.Fatalf("cores = %v", a.GuestCores)
	}
	for i := 1; i < 4; i++ {
		if a.GuestCores[i] != a.GuestCores[i-1]+1 {
			t.Fatalf("not contiguous: %v", a.GuestCores)
		}
	}
	if a.HostCore != 0 {
		t.Fatalf("host core = %v", a.HostCore)
	}
	if p.FreeCount() != 16-1-4 {
		t.Fatalf("free = %d", p.FreeCount())
	}
}

func TestAdmitGuestCoresNeverIncludeHostPool(t *testing.T) {
	p := New(8, 1)
	a, _ := p.Admit("vm", 7)
	for _, c := range a.GuestCores {
		if c == 0 {
			t.Fatal("guest got the host's core")
		}
	}
}

func TestAdmissionControl(t *testing.T) {
	p := New(8, 1) // 7 free
	if _, err := p.Admit("a", 4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit("b", 4); !errors.Is(err, ErrInsufficientCores) {
		t.Fatalf("overcommit: %v", err)
	}
	if _, err := p.Admit("b", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit("a", 1); err == nil {
		t.Fatal("duplicate admit")
	}
	if _, err := p.Admit("c", 0); err == nil {
		t.Fatal("zero vcpus")
	}
}

func TestReleaseReturnsCores(t *testing.T) {
	p := New(8, 1)
	p.Admit("a", 4)
	if err := p.Release("a"); err != nil {
		t.Fatal(err)
	}
	if p.FreeCount() != 7 {
		t.Fatalf("free = %d", p.FreeCount())
	}
	if err := p.Release("a"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("double release: %v", err)
	}
	// Full capacity available again.
	if _, err := p.Admit("b", 7); err != nil {
		t.Fatal(err)
	}
}

func TestHostPoolBalancing(t *testing.T) {
	p := New(32, 1)
	if _, err := p.GrowHostPool(); err != nil {
		t.Fatal(err)
	}
	a1, _ := p.Admit("a", 2)
	a2, _ := p.Admit("b", 2)
	if a1.HostCore == a2.HostCore {
		t.Fatal("host load not balanced across pool")
	}
}

func TestShrinkHostPool(t *testing.T) {
	p := New(8, 1)
	id, err := p.GrowHostPool()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Admit("a", 1) // lands on the least-loaded host core
	if err := p.ShrinkHostPool(a.HostCore); err == nil {
		t.Fatal("shrunk a loaded host core")
	}
	other := id
	if a.HostCore == id {
		other = 0
	}
	if err := p.ShrinkHostPool(other); err != nil {
		t.Fatal(err)
	}
	if err := p.ShrinkHostPool(a.HostCore); !errors.Is(err, ErrHostPoolTooSmall) {
		t.Fatalf("shrunk below minimum: %v", err)
	}
}

func TestFragmentationMetric(t *testing.T) {
	p := New(9, 1) // free: 1..8
	if f := p.Fragmentation(); f != 0 {
		t.Fatalf("fresh pool fragmentation = %v", f)
	}
	p.Admit("a", 2) // takes 1,2
	p.Admit("b", 2) // takes 3,4
	p.Admit("c", 2) // takes 5,6
	p.Release("b")  // free: 3,4,7,8 → two runs of 2
	if f := p.Fragmentation(); f != 0.5 {
		t.Fatalf("fragmentation = %v, want 0.5", f)
	}
}

func TestFirstFitReusesReleasedWindow(t *testing.T) {
	p := New(16, 1)
	p.Admit("a", 4)
	p.Admit("b", 4)
	p.Release("a")
	c, _ := p.Admit("c", 4)
	if c.GuestCores[0] != 1 {
		t.Fatalf("first-fit should reuse the released window, got %v", c.GuestCores)
	}
}

func TestPlannerInvariantProperty(t *testing.T) {
	// Property: cores are never double-assigned; free+assigned+host = total.
	f := func(ops []uint8) bool {
		p := New(16, 1)
		names := []string{"a", "b", "c", "d"}
		for _, op := range ops {
			vm := names[int(op)%len(names)]
			if op%2 == 0 {
				p.Admit(vm, int(op%5)+1)
			} else {
				p.Release(vm)
			}
		}
		owned := map[hw.CoreID]string{}
		for _, c := range p.HostPool() {
			owned[c] = "host"
		}
		for _, a := range p.Assignments() {
			for _, c := range a.GuestCores {
				if _, dup := owned[c]; dup {
					return false
				}
				owned[c] = a.VM
			}
		}
		return len(owned)+p.FreeCount() == 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
