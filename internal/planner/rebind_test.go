package planner

import (
	"testing"

	"coregap/internal/hw"
)

func TestBeginCompleteRebind(t *testing.T) {
	p := New(8, 1)
	a, _ := p.Admit("vm", 2) // cores 1,2
	from := a.GuestCores[0]

	if err := p.BeginRebind("vm", 5); err != nil {
		t.Fatal(err)
	}
	if len(a.GuestCores) != 3 {
		t.Fatalf("transition state should own 3 cores, has %v", a.GuestCores)
	}
	if p.free[5] {
		t.Fatal("reserved core still free")
	}
	if err := p.CompleteRebind("vm", from); err != nil {
		t.Fatal(err)
	}
	if len(a.GuestCores) != 2 || !p.free[from] {
		t.Fatalf("post-rebind state wrong: %v", a.GuestCores)
	}
}

func TestRebindValidationErrors(t *testing.T) {
	p := New(8, 1)
	p.Admit("vm", 2)
	if err := p.BeginRebind("ghost", 5); err != ErrUnknownVM {
		t.Fatalf("unknown vm: %v", err)
	}
	if err := p.BeginRebind("vm", 1); err != ErrCoreNotFree {
		t.Fatalf("occupied target: %v", err)
	}
	if err := p.CompleteRebind("vm", 7); err != ErrCoreNotOwned {
		t.Fatalf("unowned from: %v", err)
	}
	if err := p.BeginRebind("vm", 5); err != nil {
		t.Fatal(err)
	}
	if err := p.AbortRebind("vm", 5); err != nil {
		t.Fatal(err)
	}
	if !p.free[5] {
		t.Fatal("abort did not free the target")
	}
}

func TestCompactionPlanEliminatesFragmentation(t *testing.T) {
	p := New(12, 1)
	p.Admit("a", 3) // 1-3
	p.Admit("b", 3) // 4-6
	p.Admit("c", 3) // 7-9
	p.Release("b")  // hole at 4-6

	if p.Fragmentation() == 0 {
		t.Fatal("expected fragmentation after release")
	}
	moves := p.CompactionPlan()
	if len(moves) == 0 {
		t.Fatal("no compaction moves proposed")
	}
	for _, m := range moves {
		if m.To >= m.From {
			t.Fatalf("move %v does not compact downward", m)
		}
		if err := p.BeginRebind(m.VM, m.To); err != nil {
			t.Fatalf("apply %v: %v", m, err)
		}
		if err := p.CompleteRebind(m.VM, m.From); err != nil {
			t.Fatalf("complete %v: %v", m, err)
		}
	}
	if f := p.Fragmentation(); f != 0 {
		t.Fatalf("fragmentation after compaction = %v, want 0", f)
	}
	// And a VM the size of the original hole now fits contiguously.
	d, err := p.Admit("d", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.GuestCores); i++ {
		if d.GuestCores[i] != d.GuestCores[i-1]+1 {
			t.Fatalf("post-compaction admit not contiguous: %v", d.GuestCores)
		}
	}
}

func TestCompactionPlanEmptyWhenCompact(t *testing.T) {
	p := New(8, 1)
	p.Admit("a", 3)
	if moves := p.CompactionPlan(); len(moves) != 0 {
		t.Fatalf("compact layout produced moves: %v", moves)
	}
}

func TestMoveString(t *testing.T) {
	m := Move{VM: "x", From: hw.CoreID(5), To: hw.CoreID(2)}
	if m.String() != "x: core 5 -> 2" {
		t.Fatalf("move string = %q", m.String())
	}
}
