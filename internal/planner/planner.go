// Package planner implements the user-mode core planner of §3: admission
// control for core-gapped CVMs, assignment of physical cores to guest
// vCPUs and to the host's residual pool, and anti-fragmentation placement
// so long-lived static bindings do not shred locality.
//
// It logically extends cluster-level VM allocators (Protean, Borg) down
// into a node and hardens the NUMA-affinity pinning existing VM
// schedulers already do: what used to be a performance hint is now an
// enforced, attested placement.
package planner

import (
	"errors"
	"fmt"
	"sort"

	"coregap/internal/hw"
)

// Errors.
var (
	ErrInsufficientCores = errors.New("planner: not enough free cores")
	ErrUnknownVM         = errors.New("planner: unknown VM")
	ErrHostPoolTooSmall  = errors.New("planner: host pool would drop below minimum")
)

// Assignment is the planner's decision for one CVM.
type Assignment struct {
	VM         string
	GuestCores []hw.CoreID // dedicated, one per vCPU
	HostCore   hw.CoreID   // where this VM's host-side threads are pinned
}

// Planner tracks core ownership on one node.
type Planner struct {
	total    int
	minHost  int
	free     map[hw.CoreID]bool
	hostPool map[hw.CoreID]bool
	assigned map[string]*Assignment
	// hostLoad counts VMs serviced per host-pool core, for balance.
	hostLoad map[hw.CoreID]int
}

// New builds a planner over cores [0, total). minHost cores always remain
// with the host (at least one; the host cannot run on zero cores).
func New(total, minHost int) *Planner {
	if minHost < 1 {
		minHost = 1
	}
	p := &Planner{
		total:    total,
		minHost:  minHost,
		free:     make(map[hw.CoreID]bool),
		hostPool: make(map[hw.CoreID]bool),
		assigned: make(map[string]*Assignment),
		hostLoad: make(map[hw.CoreID]int),
	}
	// Core 0 (boot core) seeds the host pool; the rest start free.
	p.hostPool[0] = true
	p.hostLoad[0] = 0
	for i := 1; i < total; i++ {
		p.free[hw.CoreID(i)] = true
	}
	return p
}

// FreeCount reports unassigned cores.
func (p *Planner) FreeCount() int { return len(p.free) }

// HostPool reports the host's cores, sorted.
func (p *Planner) HostPool() []hw.CoreID { return sortedKeys(p.hostPool) }

// Assignments reports current VMs, sorted by name.
func (p *Planner) Assignments() []*Assignment {
	names := make([]string, 0, len(p.assigned))
	for n := range p.assigned {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Assignment, len(names))
	for i, n := range names {
		out[i] = p.assigned[n]
	}
	return out
}

func sortedKeys(m map[hw.CoreID]bool) []hw.CoreID {
	out := make([]hw.CoreID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Admit performs admission control and placement for a CVM with the given
// vCPU count. It picks the lowest contiguous run of free cores (first-fit
// by address keeps fragmentation low and preserves cache/mesh locality),
// and binds the VM's host-side threads to the least-loaded host-pool core.
func (p *Planner) Admit(vm string, vcpus int) (*Assignment, error) {
	if vcpus <= 0 {
		return nil, fmt.Errorf("planner: invalid vcpu count %d", vcpus)
	}
	if _, dup := p.assigned[vm]; dup {
		return nil, fmt.Errorf("planner: VM %q already admitted", vm)
	}
	if len(p.free) < vcpus {
		return nil, ErrInsufficientCores
	}
	frees := sortedKeys(p.free)

	// Prefer a contiguous window; fall back to the lowest free cores.
	cores := contiguousRun(frees, vcpus)
	if cores == nil {
		cores = frees[:vcpus]
	}
	for _, id := range cores {
		delete(p.free, id)
	}
	host := p.leastLoadedHostCore()
	p.hostLoad[host]++
	a := &Assignment{VM: vm, GuestCores: cores, HostCore: host}
	p.assigned[vm] = a
	return a, nil
}

func contiguousRun(sortedFree []hw.CoreID, n int) []hw.CoreID {
	for i := 0; i+n <= len(sortedFree); i++ {
		if sortedFree[i+n-1]-sortedFree[i] == hw.CoreID(n-1) {
			return append([]hw.CoreID(nil), sortedFree[i:i+n]...)
		}
	}
	return nil
}

func (p *Planner) leastLoadedHostCore() hw.CoreID {
	best := hw.NoCore
	for _, id := range sortedKeys(p.hostPool) {
		if best == hw.NoCore || p.hostLoad[id] < p.hostLoad[best] {
			best = id
		}
	}
	return best
}

// Release returns a VM's cores to the free pool.
func (p *Planner) Release(vm string) error {
	a, ok := p.assigned[vm]
	if !ok {
		return ErrUnknownVM
	}
	for _, id := range a.GuestCores {
		p.free[id] = true
	}
	p.hostLoad[a.HostCore]--
	delete(p.assigned, vm)
	return nil
}

// GrowHostPool moves a free core into the host pool (e.g. when host-side
// I/O load saturates the existing pool).
func (p *Planner) GrowHostPool() (hw.CoreID, error) {
	frees := sortedKeys(p.free)
	if len(frees) == 0 {
		return hw.NoCore, ErrInsufficientCores
	}
	id := frees[0]
	delete(p.free, id)
	p.hostPool[id] = true
	p.hostLoad[id] = 0
	return id, nil
}

// ShrinkHostPool returns an unloaded host-pool core to the free pool.
func (p *Planner) ShrinkHostPool(id hw.CoreID) error {
	if !p.hostPool[id] {
		return ErrUnknownVM
	}
	if len(p.hostPool) <= p.minHost {
		return ErrHostPoolTooSmall
	}
	if p.hostLoad[id] != 0 {
		return fmt.Errorf("planner: host core %d still services %d VMs", id, p.hostLoad[id])
	}
	delete(p.hostPool, id)
	delete(p.hostLoad, id)
	p.free[id] = true
	return nil
}

// Fragmentation reports 1 - (largest contiguous free run / total free):
// 0 when all free cores are contiguous, approaching 1 as the pool shreds.
func (p *Planner) Fragmentation() float64 {
	frees := sortedKeys(p.free)
	if len(frees) == 0 {
		return 0
	}
	longest, run := 1, 1
	for i := 1; i < len(frees); i++ {
		if frees[i] == frees[i-1]+1 {
			run++
		} else {
			run = 1
		}
		if run > longest {
			longest = run
		}
	}
	return 1 - float64(longest)/float64(len(frees))
}
