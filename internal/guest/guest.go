// Package guest models the workloads the paper evaluates as programs run
// by virtual CPUs. A program is a deterministic state machine producing
// actions (compute, I/O, virtual IPIs, wait-for-interrupt); the execution
// environment (KVM for shared-core VMs, the RMM for core-gapped CVMs)
// interprets the actions and delivers events back.
//
// What matters for reproduction is each workload's *interaction profile* —
// how much it computes between device interactions, how often it takes
// interrupts, how much data it moves — because those are what determine
// VM-exit rates and therefore the performance difference between
// shared-core and core-gapped execution.
package guest

import (
	"fmt"

	"coregap/internal/sim"
)

// DeviceClass identifies the I/O device a request targets.
type DeviceClass int

// Device classes used by the workloads (§5.1, §5.3).
const (
	VirtioNet DeviceClass = iota
	VirtioBlk
	SRIOVNet // VF pass-through: data path bypasses the host
)

func (d DeviceClass) String() string {
	switch d {
	case VirtioNet:
		return "virtio-net"
	case VirtioBlk:
		return "virtio-blk"
	case SRIOVNet:
		return "sriov-net"
	default:
		return fmt.Sprintf("dev(%d)", int(d))
	}
}

// ActionKind discriminates Action.
type ActionKind int

// Action kinds.
const (
	// ActCompute executes Work nanoseconds of guest CPU work.
	ActCompute ActionKind = iota
	// ActIO submits an I/O request (doorbell write; see IORequest.Sync).
	ActIO
	// ActVIPI sends a virtual IPI to another vCPU of the same VM
	// (an ICC_SGI1R_EL1 write, which traps — §4.4, Table 3).
	ActVIPI
	// ActWFI idles until the next event is delivered.
	ActWFI
	// ActHalt terminates the vCPU.
	ActHalt
)

func (k ActionKind) String() string {
	switch k {
	case ActCompute:
		return "compute"
	case ActIO:
		return "io"
	case ActVIPI:
		return "vipi"
	case ActWFI:
		return "wfi"
	case ActHalt:
		return "halt"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// IORequest describes one device interaction.
type IORequest struct {
	Dev   DeviceClass
	Bytes int
	Write bool
	// Sync blocks the vCPU until completion (O_DIRECT block I/O, or a
	// blocking receive). Async requests post the doorbell and continue.
	Sync bool
	// Tag flows through to the completion event.
	Tag int
}

// Action is one step of a program.
type Action struct {
	Kind   ActionKind
	Work   sim.Duration // ActCompute
	Req    IORequest    // ActIO
	Target int          // ActVIPI: destination vCPU index
}

// EventKind discriminates events delivered to a program.
type EventKind int

// Events.
const (
	// EvIOComplete: a previously submitted request finished.
	EvIOComplete EventKind = iota
	// EvPacket: the network peer delivered data to the guest.
	EvPacket
	// EvVIPI: another vCPU sent this one a virtual IPI.
	EvVIPI
	// EvTimer: the guest's periodic tick fired (informational; tick
	// handling cost is modelled by the environment).
	EvTimer
)

// Event is an asynchronous notification to a program.
type Event struct {
	Kind  EventKind
	Dev   DeviceClass
	Bytes int
	Tag   int
	From  int // EvVIPI: sender vCPU
}

// Program produces the action stream for each vCPU of a VM.
//
// Next is called whenever vCPU i is ready for its next action: initially,
// after a compute or synchronous I/O completes, and after an event ends a
// WFI. Deliver is called for asynchronous events regardless of state;
// programs typically record them and react on the following Next.
type Program interface {
	Next(vcpu int) Action
	Deliver(vcpu int, ev Event)
}

// Halt is a convenience halted action.
func Halt() Action { return Action{Kind: ActHalt} }

// ComputeFor is a convenience compute action.
func ComputeFor(d sim.Duration) Action { return Action{Kind: ActCompute, Work: d} }

// WFI is a convenience wait action.
func WFI() Action { return Action{Kind: ActWFI} }
