package guest

import (
	"coregap/internal/sim"
)

// IOzone models the IOzone sync read/write benchmark with O_DIRECT
// (§5.3, Fig. 9): a single thread issues synchronous block requests of a
// fixed record size back to back. With the guest page cache bypassed,
// every record is a doorbell, a host-side emulation, and a completion
// interrupt — the workload the paper uses to show core-gapping's
// worst case.
type IOzone struct {
	record    int // bytes per request
	write     bool
	total     int64 // bytes to move
	moved     int64
	nsPerByte float64 // guest-side buffer handling, ns per byte
	ioNext    bool    // alternates compute / synchronous request
}

// NewIOzone builds a sequential sync reader/writer moving total bytes in
// record-sized requests.
func NewIOzone(record int, write bool, total int64) *IOzone {
	return &IOzone{
		record:    record,
		write:     write,
		total:     total,
		nsPerByte: 0.2, // memcpy at ~5 GB/s
	}
}

// SetPerByteWork overrides the guest-side per-byte handling cost in
// nanoseconds per byte.
func (z *IOzone) SetPerByteWork(nsPerByte float64) { z.nsPerByte = nsPerByte }

// Next implements Program. Each round is: syscall + buffer-handling
// compute, then a synchronous block request that blocks until completion.
func (z *IOzone) Next(vcpu int) Action {
	if z.moved >= z.total {
		return Halt()
	}
	if !z.ioNext {
		z.ioNext = true
		return ComputeFor(z.GuestWorkPerRecord())
	}
	z.ioNext = false
	z.moved += int64(z.record)
	return Action{Kind: ActIO, Req: IORequest{
		Dev: VirtioBlk, Bytes: z.record, Write: z.write, Sync: true,
	}}
}

// Deliver implements Program.
func (z *IOzone) Deliver(int, Event) {}

// GuestWorkPerRecord reports the guest-side compute the environment
// should charge around each request (buffer prep + copyout).
func (z *IOzone) GuestWorkPerRecord() sim.Duration {
	w := sim.Duration(z.nsPerByte * float64(z.record))
	if w < 500*sim.Nanosecond {
		w = 500 * sim.Nanosecond // syscall + block-layer floor
	}
	return w
}

// Moved reports bytes transferred so far.
func (z *IOzone) Moved() int64 { return z.moved }

// Throughput reports MiB/s given the elapsed time.
func (z *IOzone) Throughput(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(z.moved) / (1 << 20) / elapsed.Seconds()
}
