package guest

import (
	"coregap/internal/sim"
)

// IPIBench is the virtual-IPI microbenchmark of Table 3: vCPU 0 sends a
// virtual IPI to vCPU 1 and waits; vCPU 1 acknowledges (a write to shared
// guest memory, modelled as a short compute) and replies with its own
// IPI. The environment timestamps sends and acknowledgements; the
// reported figure is the one-way deliver-and-acknowledge latency.
type IPIBench struct {
	rounds int
	done   int

	state   []ipiState
	ackWork sim.Duration
}

type ipiState int

const (
	ipiIdle ipiState = iota
	ipiWaiting
	ipiGotIPI
	ipiDone
)

// NewIPIBench builds the two-vCPU benchmark for the given round count.
func NewIPIBench(rounds int) *IPIBench {
	return &IPIBench{
		rounds:  rounds,
		state:   make([]ipiState, 2),
		ackWork: 300 * sim.Nanosecond,
	}
}

// Next implements Program.
func (b *IPIBench) Next(vcpu int) Action {
	if vcpu == 0 {
		switch b.state[0] {
		case ipiIdle:
			if b.done >= b.rounds {
				return Halt()
			}
			b.state[0] = ipiWaiting
			return Action{Kind: ActVIPI, Target: 1}
		case ipiGotIPI:
			// Reply received: round complete.
			b.state[0] = ipiIdle
			b.done++
			return ComputeFor(b.ackWork)
		default:
			return WFI()
		}
	}
	// vCPU 1: acknowledge then reply.
	switch b.state[1] {
	case ipiGotIPI:
		b.state[1] = ipiDone
		return ComputeFor(b.ackWork) // write ack to shared memory
	case ipiDone:
		b.state[1] = ipiIdle
		if b.done >= b.rounds-1 && b.state[0] != ipiWaiting {
			return Halt()
		}
		return Action{Kind: ActVIPI, Target: 0}
	default:
		if b.done >= b.rounds {
			return Halt()
		}
		return WFI()
	}
}

// Deliver implements Program.
func (b *IPIBench) Deliver(vcpu int, ev Event) {
	if ev.Kind == EvVIPI {
		b.state[vcpu] = ipiGotIPI
	}
}

// Rounds reports completed round trips.
func (b *IPIBench) Rounds() int { return b.done }
