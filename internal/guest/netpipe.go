package guest

import (
	"coregap/internal/sim"
)

// NetPIPE models the NetPIPE ping-pong benchmark (§5.3, Fig. 8): an
// external client sends a message of a given size; the guest receives it,
// touches every byte, and echoes it back. Latency is the round-trip time
// seen by the client; throughput is message bytes over round-trip time.
//
// The guest side is a single-vCPU echo server: wait for the message
// (delivered as one or more EvPacket events by the NIC model), run the
// per-byte compute, transmit the reply, wait again.
type NetPIPE struct {
	dev       DeviceClass
	msgBytes  int
	perByte   sim.Duration // guest compute per payload byte (touch + copy)
	rounds    int
	completed int

	rxPending int // bytes received of the current message
	state     npState
}

type npState int

const (
	npWaiting npState = iota
	npProcessing
	npDone
)

// NewNetPIPE builds the echo server for the given device and message
// size, terminating after rounds echoes.
func NewNetPIPE(dev DeviceClass, msgBytes, rounds int) *NetPIPE {
	return &NetPIPE{
		dev:      dev,
		msgBytes: msgBytes,
		perByte:  sim.Nanosecond, // ≈1 ns/B: touch+copy at ~1 GB/s per core
		rounds:   rounds,
	}
}

// SetPerByteWork overrides the per-byte compute cost.
func (n *NetPIPE) SetPerByteWork(d sim.Duration) { n.perByte = d }

// Next implements Program. The echo server runs on vCPU 0; any other
// vCPUs of the VM idle.
func (n *NetPIPE) Next(vcpu int) Action {
	if vcpu != 0 {
		return WFI()
	}
	switch n.state {
	case npWaiting:
		if n.rxPending >= n.msgBytes {
			n.rxPending -= n.msgBytes
			n.state = npProcessing
			w := sim.Duration(float64(n.perByte) * float64(n.msgBytes))
			if w < 200*sim.Nanosecond {
				w = 200 * sim.Nanosecond // syscall + stack floor
			}
			return ComputeFor(w)
		}
		return WFI()
	case npProcessing:
		n.state = npWaiting
		n.completed++
		if n.completed >= n.rounds {
			n.state = npDone
		}
		return Action{Kind: ActIO, Req: IORequest{Dev: n.dev, Bytes: n.msgBytes, Write: true}}
	default:
		return Halt()
	}
}

// Deliver implements Program.
func (n *NetPIPE) Deliver(vcpu int, ev Event) {
	if ev.Kind == EvPacket {
		n.rxPending += ev.Bytes
	}
}

// Completed reports finished echo rounds.
func (n *NetPIPE) Completed() int { return n.completed }
