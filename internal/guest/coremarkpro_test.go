package guest

import (
	"testing"

	"coregap/internal/sim"
)

// driveCMP simulates an idealised environment: vCPUs consume chunks in
// lockstep, time advances by chunk duration per round.
func driveCMP(t *testing.T, c *CoreMarkPro, vcpus int, clock *sim.Time) {
	t.Helper()
	halted := make([]bool, vcpus)
	allHalted := func() bool {
		for _, h := range halted {
			if !h {
				return false
			}
		}
		return true
	}
	for rounds := 0; !allHalted(); rounds++ {
		if rounds > 1_000_000 {
			t.Fatal("suite did not terminate")
		}
		var advance sim.Duration
		for v := 0; v < vcpus; v++ {
			if halted[v] {
				continue
			}
			switch a := c.Next(v); a.Kind {
			case ActCompute:
				if a.Work > advance {
					advance = a.Work
				}
			case ActWFI:
				// barrier wait; re-polled next round
			case ActHalt:
				halted[v] = true
			default:
				t.Fatalf("unexpected action %v", a.Kind)
			}
		}
		if advance == 0 {
			advance = 100 * sim.Microsecond // barrier polling interval
		}
		*clock = clock.Add(advance)
	}
}

func TestCoreMarkProCompletesAllPhases(t *testing.T) {
	var clock sim.Time
	c := NewCoreMarkPro(4, 100*sim.Millisecond, func() sim.Time { return clock })
	driveCMP(t, c, 4, &clock)
	if !c.Done() {
		t.Fatal("not done")
	}
	scores := c.PhaseScores()
	if len(scores) != len(ProWorkloads()) {
		t.Fatalf("scores for %d workloads, want %d", len(scores), len(ProWorkloads()))
	}
	for name, s := range scores {
		// Idealised lockstep execution: close to 4 effective cores,
		// minus barrier rounding.
		if s < 2.0 || s > 4.01 {
			t.Errorf("%s score = %.2f, want ~4", name, s)
		}
	}
	if m := c.Mark(); m < 2.0 || m > 4.01 {
		t.Fatalf("mark = %.2f", m)
	}
}

func TestCoreMarkProWorkConservation(t *testing.T) {
	var clock sim.Time
	total := 90 * sim.Millisecond
	c := NewCoreMarkPro(3, total, func() sim.Time { return clock })
	var issued sim.Duration
	halted := make([]bool, 3)
	for rounds := 0; rounds < 1_000_000; rounds++ {
		live := false
		for v := 0; v < 3; v++ {
			if halted[v] {
				continue
			}
			live = true
			switch a := c.Next(v); a.Kind {
			case ActCompute:
				issued += a.Work
			case ActHalt:
				halted[v] = true
			}
		}
		clock = clock.Add(sim.Millisecond)
		if !live {
			break
		}
	}
	// Weights sum to 1.0: all work is issued exactly once.
	if issued < total*99/100 || issued > total {
		t.Fatalf("issued %v of %v", issued, total)
	}
}

func TestCoreMarkProFootprintTracksPhase(t *testing.T) {
	var clock sim.Time
	c := NewCoreMarkPro(1, 9*sim.Millisecond, func() sim.Time { return clock })
	seen := map[float64]bool{}
	for i := 0; i < 1_000_000 && !c.Done(); i++ {
		a := c.Next(0)
		if a.Kind == ActHalt {
			break
		}
		seen[c.Footprint(0)] = true
		clock = clock.Add(a.Work)
	}
	// Distinct footprints were exposed as phases progressed.
	if len(seen) < 5 {
		t.Fatalf("only %d distinct footprints observed", len(seen))
	}
	// Post-completion footprint stays in range.
	if f := c.Footprint(0); f <= 0 || f > 1 {
		t.Fatalf("footprint = %v", f)
	}
}

func TestProWorkloadsWellFormed(t *testing.T) {
	var weight float64
	for _, w := range ProWorkloads() {
		if w.Name == "" || w.Weight <= 0 || w.Footprint <= 0 || w.Footprint > 1 {
			t.Fatalf("malformed workload %+v", w)
		}
		weight += w.Weight
	}
	if weight < 0.999 || weight > 1.001 {
		t.Fatalf("weights sum to %v, want 1", weight)
	}
	if len(ProWorkloads()) != 9 {
		t.Fatal("CoreMark-PRO has 9 workloads")
	}
}
