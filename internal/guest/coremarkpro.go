package guest

import (
	"math"

	"coregap/internal/sim"
)

// Workload is one CoreMark-PRO sub-benchmark. The real suite [19] mixes
// integer and floating-point kernels with very different working sets;
// what matters to the reproduction is the *footprint* axis, because
// host interference on shared cores costs a workload in proportion to
// the state it must re-warm (§2.3).
type Workload struct {
	Name      string
	Weight    float64 // share of total work
	Footprint float64 // fraction of per-core cache/TLB state it occupies
}

// ProWorkloads is the CoreMark-PRO v1.1 suite: five integer and four
// floating-point kernels.
func ProWorkloads() []Workload {
	return []Workload{
		{"cjpeg-rose7-preset", 0.12, 0.45}, // image compression: medium WSS
		{"core", 0.10, 0.10},               // original CoreMark: tiny WSS
		{"linear_alg-mid-100x100-sp", 0.12, 0.55},
		{"loops-all-mid-10k-sp", 0.12, 0.60},
		{"nnet_test", 0.13, 0.80}, // neural net: large working set
		{"parser-125k", 0.10, 0.50},
		{"radix2-big-64k", 0.12, 0.75}, // FFT: strided, cache-hungry
		{"sha-test", 0.09, 0.15},       // hashing: compute-bound
		{"zip-test", 0.10, 0.40},
	}
}

// CoreMarkPro runs the suite phase by phase: all vCPUs grind through
// workload i's shared work pool, then move to i+1 together — matching
// how the real harness runs contexts and computes a per-workload
// MultiCore score before folding them into one mark.
type CoreMarkPro struct {
	workloads []Workload
	vcpus     int
	chunk     sim.Duration
	now       func() sim.Time

	phase     int
	remaining sim.Duration // pool left in the current phase
	// outstanding marks vCPUs whose last-issued chunk has not completed
	// (Next is called exactly when the previous action finishes).
	outstanding []bool

	phaseStart sim.Time
	durations  []sim.Duration
	totalWork  []sim.Duration
}

// NewCoreMarkPro builds the suite with totalWork spread over the
// workloads by weight; now provides simulation timestamps for phase
// accounting (pass eng.Now).
func NewCoreMarkPro(vcpus int, totalWork sim.Duration, now func() sim.Time) *CoreMarkPro {
	ws := ProWorkloads()
	c := &CoreMarkPro{
		workloads:   ws,
		vcpus:       vcpus,
		chunk:       500 * sim.Microsecond,
		now:         now,
		outstanding: make([]bool, vcpus),
		durations:   make([]sim.Duration, len(ws)),
		totalWork:   make([]sim.Duration, len(ws)),
	}
	for i, w := range ws {
		c.totalWork[i] = sim.Duration(float64(totalWork) * w.Weight)
	}
	c.remaining = c.totalWork[0]
	c.phaseStart = now()
	return c
}

// Next implements Program.
func (c *CoreMarkPro) Next(vcpu int) Action {
	c.outstanding[vcpu] = false // the previous chunk just completed
	for {
		if c.phase >= len(c.workloads) {
			return Halt()
		}
		if c.remaining > 0 {
			w := c.chunk
			if w > c.remaining {
				w = c.remaining
			}
			c.remaining -= w
			c.outstanding[vcpu] = true
			return ComputeFor(w)
		}
		// Pool drained: wait at the phase barrier until every sibling's
		// last chunk completes (barrier waiters are re-evaluated on the
		// periodic timer wake-up).
		if c.anyOutstanding() {
			return WFI()
		}
		// Last one out closes the phase.
		c.durations[c.phase] = c.now().Sub(c.phaseStart)
		c.phase++
		c.phaseStart = c.now()
		if c.phase < len(c.workloads) {
			c.remaining = c.totalWork[c.phase]
		}
	}
}

func (c *CoreMarkPro) anyOutstanding() bool {
	for _, b := range c.outstanding {
		if b {
			return true
		}
	}
	return false
}

// Deliver implements Program; the timer tick that wakes barrier waiters
// needs no bookkeeping here.
func (c *CoreMarkPro) Deliver(int, Event) {}

// Footprint implements the optional footprint reporter: the current
// workload's working-set size drives interference costs.
func (c *CoreMarkPro) Footprint(vcpu int) float64 {
	i := c.phase
	if i >= len(c.workloads) {
		i = len(c.workloads) - 1
	}
	return c.workloads[i].Footprint
}

// Done reports whether the whole suite has completed.
func (c *CoreMarkPro) Done() bool { return c.phase >= len(c.workloads) }

// PhaseScores reports each workload's throughput (work-seconds/second,
// i.e. effective cores during its phase).
func (c *CoreMarkPro) PhaseScores() map[string]float64 {
	out := make(map[string]float64, len(c.workloads))
	for i, w := range c.workloads {
		if c.durations[i] > 0 {
			out[w.Name] = c.totalWork[i].Seconds() / c.durations[i].Seconds()
		}
	}
	return out
}

// Mark reports the suite's single figure of merit: the geometric mean of
// the per-workload scores (as CoreMark-PRO folds its workloads).
func (c *CoreMarkPro) Mark() float64 {
	scores := c.PhaseScores()
	if len(scores) == 0 {
		return 0
	}
	logSum := 0.0
	n := 0
	for _, s := range scores {
		if s > 0 {
			logSum += math.Log(s)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
