package guest

import (
	"coregap/internal/sim"
)

// CoreMark models CoreMark-PRO (§5.2): a CPU-intensive, embarrassingly
// parallel benchmark. Each vCPU grinds through a fixed amount of work in
// chunks; the score is work completed per second of wall time, so host
// interference, exit costs, and cold-cache restarts all show up directly.
//
// The chunk size is the natural granularity at which the benchmark's
// worker loop checks for completion; it has no effect on results beyond
// bounding event counts, since interrupts preempt chunks anyway.
type CoreMark struct {
	vcpus     int
	workPer   sim.Duration
	chunk     sim.Duration
	remaining []sim.Duration
	completed []sim.Duration
}

// NewCoreMark builds a CoreMark instance for the given vCPU count where
// each vCPU must complete workPerVCPU of compute.
func NewCoreMark(vcpus int, workPerVCPU sim.Duration) *CoreMark {
	c := &CoreMark{
		vcpus:     vcpus,
		workPer:   workPerVCPU,
		chunk:     500 * sim.Microsecond,
		remaining: make([]sim.Duration, vcpus),
		completed: make([]sim.Duration, vcpus),
	}
	for i := range c.remaining {
		c.remaining[i] = workPerVCPU
	}
	return c
}

// Next implements Program.
func (c *CoreMark) Next(vcpu int) Action {
	rem := c.remaining[vcpu]
	if rem <= 0 {
		return Halt()
	}
	w := c.chunk
	if w > rem {
		w = rem
	}
	c.remaining[vcpu] -= w
	c.completed[vcpu] += w
	return ComputeFor(w)
}

// Deliver implements Program; CoreMark ignores events (timer ticks are
// environment-level).
func (c *CoreMark) Deliver(int, Event) {}

// Done reports whether every vCPU has finished its work.
func (c *CoreMark) Done() bool {
	for _, r := range c.remaining {
		if r > 0 {
			return false
		}
	}
	return true
}

// TotalWork reports the aggregate work assigned.
func (c *CoreMark) TotalWork() sim.Duration {
	return c.workPer * sim.Duration(c.vcpus)
}

// Score reports completed work-seconds per second of elapsed time — the
// aggregate throughput figure plotted in Figs. 6 and 7.
func (c *CoreMark) Score(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var done sim.Duration
	for i := range c.completed {
		done += c.completed[i]
	}
	return done.Seconds() / elapsed.Seconds()
}
