package guest

import (
	"coregap/internal/sim"
)

// KBuild models a parallel kernel build (§5.4, Fig. 10): a pool of
// compilation jobs executed by N worker vCPUs. Each job reads sources
// from the virtio disk, compiles (compute), and writes the object back.
// The virtio disk dependence is what puts core gapping at a disadvantage
// here (contention for I/O emulation on the single host core), which is
// exactly the effect Fig. 10 probes.
type KBuild struct {
	jobs      int
	started   int
	finished  int
	compile   sim.Duration // mean compile time per job
	readSize  int
	writeSize int
	src       *sim.Source

	// per-vCPU stage: 0=claim+read, 1=compile, 2=write, 3=idle
	stage []int
}

// NewKBuild builds a job pool: jobs translation units compiled by up to
// vcpus workers. Compile times are exponentially distributed around mean
// (real TU compile times are heavy-tailed).
func NewKBuild(jobs, vcpus int, mean sim.Duration, src *sim.Source) *KBuild {
	return &KBuild{
		jobs:      jobs,
		compile:   mean,
		readSize:  64 << 10, // headers + sources actually read per TU
		writeSize: 48 << 10, // object file
		src:       src,
		stage:     make([]int, vcpus),
	}
}

// Next implements Program.
func (k *KBuild) Next(vcpu int) Action {
	switch k.stage[vcpu] {
	case 0:
		if k.started >= k.jobs {
			return Halt()
		}
		k.started++
		k.stage[vcpu] = 1
		return Action{Kind: ActIO, Req: IORequest{
			Dev: VirtioBlk, Bytes: k.readSize, Write: false, Sync: true,
		}}
	case 1:
		k.stage[vcpu] = 2
		return ComputeFor(k.src.Exp(k.compile))
	case 2:
		k.stage[vcpu] = 0
		k.finished++
		return Action{Kind: ActIO, Req: IORequest{
			Dev: VirtioBlk, Bytes: k.writeSize, Write: true, Sync: true,
		}}
	default:
		return Halt()
	}
}

// Deliver implements Program.
func (k *KBuild) Deliver(int, Event) {}

// Finished reports completed jobs.
func (k *KBuild) Finished() int { return k.finished }

// Jobs reports the configured job count.
func (k *KBuild) Jobs() int { return k.jobs }
