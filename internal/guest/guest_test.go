package guest

import (
	"testing"

	"coregap/internal/sim"
)

func TestCoreMarkProducesAllWork(t *testing.T) {
	c := NewCoreMark(4, 10*sim.Millisecond)
	var total sim.Duration
	for v := 0; v < 4; v++ {
		for {
			a := c.Next(v)
			if a.Kind == ActHalt {
				break
			}
			if a.Kind != ActCompute {
				t.Fatalf("unexpected action %v", a.Kind)
			}
			total += a.Work
		}
	}
	if total != 40*sim.Millisecond {
		t.Fatalf("total work = %v, want 40ms", total)
	}
	if !c.Done() {
		t.Fatal("not done after drain")
	}
	if c.TotalWork() != 40*sim.Millisecond {
		t.Fatal("TotalWork wrong")
	}
}

func TestCoreMarkScore(t *testing.T) {
	c := NewCoreMark(2, 10*sim.Millisecond)
	for v := 0; v < 2; v++ {
		for c.Next(v).Kind != ActHalt {
		}
	}
	// 20ms of work over 20ms elapsed = score 1.0 (work-seconds/second).
	if got := c.Score(20 * sim.Millisecond); got < 0.99 || got > 1.01 {
		t.Fatalf("score = %v, want ~1", got)
	}
	if c.Score(0) != 0 {
		t.Fatal("score at zero elapsed")
	}
}

func TestCoreMarkIgnoresEvents(t *testing.T) {
	c := NewCoreMark(1, sim.Millisecond)
	c.Deliver(0, Event{Kind: EvTimer})
	if a := c.Next(0); a.Kind != ActCompute {
		t.Fatal("event perturbed coremark")
	}
}

func TestNetPIPEEchoCycle(t *testing.T) {
	n := NewNetPIPE(SRIOVNet, 4096, 2)

	// Idle with no data: waits.
	if a := n.Next(0); a.Kind != ActWFI {
		t.Fatalf("expected WFI, got %v", a.Kind)
	}
	// Partial message: still waits.
	n.Deliver(0, Event{Kind: EvPacket, Bytes: 1500})
	if a := n.Next(0); a.Kind != ActWFI {
		t.Fatal("woke on partial message")
	}
	n.Deliver(0, Event{Kind: EvPacket, Bytes: 1500})
	n.Deliver(0, Event{Kind: EvPacket, Bytes: 1096})
	a := n.Next(0)
	if a.Kind != ActCompute || a.Work <= 0 {
		t.Fatalf("expected compute, got %+v", a)
	}
	a = n.Next(0)
	if a.Kind != ActIO || a.Req.Bytes != 4096 || !a.Req.Write || a.Req.Dev != SRIOVNet {
		t.Fatalf("expected tx, got %+v", a)
	}
	if n.Completed() != 1 {
		t.Fatalf("completed = %d", n.Completed())
	}

	// Second round, then halt.
	n.Deliver(0, Event{Kind: EvPacket, Bytes: 4096})
	n.Next(0) // compute
	n.Next(0) // tx
	if a := n.Next(0); a.Kind != ActHalt {
		t.Fatalf("expected halt, got %v", a.Kind)
	}
}

func TestNetPIPEComputeScalesWithSize(t *testing.T) {
	small := NewNetPIPE(VirtioNet, 64, 1)
	big := NewNetPIPE(VirtioNet, 1<<20, 1)
	small.Deliver(0, Event{Kind: EvPacket, Bytes: 64})
	big.Deliver(0, Event{Kind: EvPacket, Bytes: 1 << 20})
	ws := small.Next(0).Work
	wb := big.Next(0).Work
	if wb <= ws {
		t.Fatalf("big message compute %v <= small %v", wb, ws)
	}
}

func TestIOzoneAlternatesComputeAndSyncIO(t *testing.T) {
	z := NewIOzone(64<<10, true, 1<<20) // 16 records
	records := 0
	for {
		a := z.Next(0)
		if a.Kind == ActHalt {
			break
		}
		if a.Kind == ActCompute {
			if a.Work <= 0 {
				t.Fatal("zero compute")
			}
			continue
		}
		if a.Kind != ActIO || !a.Req.Sync || a.Req.Dev != VirtioBlk || !a.Req.Write {
			t.Fatalf("unexpected action %+v", a)
		}
		records++
	}
	if records != 16 {
		t.Fatalf("records = %d, want 16", records)
	}
	if z.Moved() != 1<<20 {
		t.Fatalf("moved = %d", z.Moved())
	}
	// 1 MiB over 1 second = 1 MiB/s.
	if got := z.Throughput(sim.Second); got < 0.99 || got > 1.01 {
		t.Fatalf("throughput = %v", got)
	}
}

func TestRedisServiceLoop(t *testing.T) {
	r := NewRedis(SRIOVNet)
	if a := r.Next(0); a.Kind != ActWFI {
		t.Fatal("idle redis must wait")
	}
	r.Deliver(0, Event{Kind: EvPacket, Bytes: 512, Tag: EncodeOpTag(OpGet, 3)})
	a := r.Next(0)
	if a.Kind != ActCompute {
		t.Fatalf("expected service compute, got %v", a.Kind)
	}
	a = r.Next(0)
	if a.Kind != ActIO || a.Req.Bytes != OpGet.ReplyBytes() {
		t.Fatalf("expected reply, got %+v", a)
	}
	op, client := DecodeOpTag(a.Req.Tag)
	if op != OpGet || client != 3 {
		t.Fatalf("tag round trip: %v %d", op, client)
	}
	if r.Served() != 1 {
		t.Fatalf("served = %d", r.Served())
	}
}

func TestRedisFIFOBacklog(t *testing.T) {
	r := NewRedis(SRIOVNet)
	for i := 0; i < 3; i++ {
		r.Deliver(0, Event{Kind: EvPacket, Tag: EncodeOpTag(OpSet, i)})
	}
	if r.Backlog() != 3 {
		t.Fatalf("backlog = %d", r.Backlog())
	}
	for i := 0; i < 3; i++ {
		r.Next(0) // service
		a := r.Next(0)
		_, client := DecodeOpTag(a.Req.Tag)
		if client != i {
			t.Fatalf("served out of order: got client %d at round %d", client, i)
		}
	}
	if r.Backlog() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestRedisOpWeights(t *testing.T) {
	if OpLRange100.ServiceTime() <= OpGet.ServiceTime() {
		t.Fatal("LRANGE must cost more than GET")
	}
	if OpLRange100.ReplyBytes() <= OpGet.ReplyBytes() {
		t.Fatal("LRANGE reply must exceed GET reply")
	}
	if OpSet.String() != "SET" || OpGet.String() != "GET" || OpLRange100.String() != "LRANGE 100" {
		t.Fatal("op names")
	}
}

func TestKBuildCompletesAllJobs(t *testing.T) {
	src := sim.NewSource(1)
	k := NewKBuild(10, 2, 100*sim.Millisecond, src)
	halted := 0
	active := []int{0, 1}
	for halted < 2 {
		for _, v := range active {
			if k.stage[v] == 3 {
				continue
			}
			a := k.Next(v)
			if a.Kind == ActHalt {
				k.stage[v] = 3
				halted++
			}
		}
	}
	if k.Finished() != 10 {
		t.Fatalf("finished = %d, want 10", k.Finished())
	}
	if k.Jobs() != 10 {
		t.Fatal("Jobs accessor")
	}
}

func TestKBuildJobShape(t *testing.T) {
	src := sim.NewSource(2)
	k := NewKBuild(1, 1, 50*sim.Millisecond, src)
	a := k.Next(0)
	if a.Kind != ActIO || a.Req.Write || !a.Req.Sync {
		t.Fatalf("first action should be sync read, got %+v", a)
	}
	a = k.Next(0)
	if a.Kind != ActCompute || a.Work <= 0 {
		t.Fatalf("second action should be compile, got %+v", a)
	}
	a = k.Next(0)
	if a.Kind != ActIO || !a.Req.Write {
		t.Fatalf("third action should be object write, got %+v", a)
	}
	if a := k.Next(0); a.Kind != ActHalt {
		t.Fatalf("should halt after last job, got %v", a.Kind)
	}
}

func TestIPIBenchRoundTrip(t *testing.T) {
	b := NewIPIBench(3)

	// vCPU 1 starts waiting.
	if a := b.Next(1); a.Kind != ActWFI {
		t.Fatalf("vcpu1 first action %v", a.Kind)
	}
	rounds := 0
	for i := 0; i < 20 && rounds < 3; i++ {
		a0 := b.Next(0)
		switch a0.Kind {
		case ActVIPI:
			if a0.Target != 1 {
				t.Fatal("wrong target")
			}
			b.Deliver(1, Event{Kind: EvVIPI, From: 0})
			// vCPU 1 acks then replies.
			if a := b.Next(1); a.Kind != ActCompute {
				t.Fatalf("vcpu1 ack = %v", a.Kind)
			}
			if a := b.Next(1); a.Kind != ActVIPI || a.Target != 0 {
				t.Fatalf("vcpu1 reply wrong")
			}
			b.Deliver(0, Event{Kind: EvVIPI, From: 1})
		case ActCompute:
			rounds = b.Rounds()
		case ActWFI:
			// keep going
		case ActHalt:
			rounds = b.Rounds()
			i = 20
		}
	}
	if b.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", b.Rounds())
	}
}

func TestStringers(t *testing.T) {
	if VirtioNet.String() != "virtio-net" || VirtioBlk.String() != "virtio-blk" || SRIOVNet.String() != "sriov-net" {
		t.Fatal("device strings")
	}
	for k, want := range map[ActionKind]string{
		ActCompute: "compute", ActIO: "io", ActVIPI: "vipi", ActWFI: "wfi", ActHalt: "halt",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

// TestEncodeOpTagBounds: the tag packs the client id into 24 bits; an id
// outside [0, 2^24) would silently alias another client's in-flight
// request, so encoding must refuse it loudly.
func TestEncodeOpTagBounds(t *testing.T) {
	mustPanic := func(id int) {
		defer func() {
			if recover() == nil {
				t.Fatalf("EncodeOpTag(%d) did not panic", id)
			}
		}()
		EncodeOpTag(OpGet, id)
	}
	mustPanic(-1)
	mustPanic(1 << 24)
	mustPanic(1<<24 + 5)

	for _, id := range []int{0, 1, 1<<24 - 1} {
		op, got := DecodeOpTag(EncodeOpTag(OpSet, id))
		if op != OpSet || got != id {
			t.Fatalf("round trip id %d: got %v %d", id, op, got)
		}
	}
}
