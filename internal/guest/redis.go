package guest

import (
	"fmt"

	"coregap/internal/sim"
)

// RedisOp is one of the redis-benchmark operation types of Table 5.
type RedisOp int

// Operations.
const (
	OpSet RedisOp = iota
	OpGet
	OpLRange100
)

func (o RedisOp) String() string {
	switch o {
	case OpSet:
		return "SET"
	case OpGet:
		return "GET"
	default:
		return "LRANGE 100"
	}
}

// ServiceTime reports the guest CPU time to execute the operation on
// 512-byte objects. Values reflect the relative weights visible in
// Table 5 (SET/GET ~ short; LRANGE 100 walks 100 entries and serialises
// a ~51 KiB reply, roughly 4-5× the base cost).
func (o RedisOp) ServiceTime() sim.Duration {
	switch o {
	case OpSet:
		return 15 * sim.Microsecond
	case OpGet:
		return 16 * sim.Microsecond
	default:
		return 65 * sim.Microsecond
	}
}

// ReplyBytes reports the approximate reply size.
func (o RedisOp) ReplyBytes() int {
	switch o {
	case OpSet:
		return 64 // +OK
	case OpGet:
		return 512
	default:
		return 100 * 512
	}
}

// Redis models a single-threaded Redis 7 server (Table 5): an event loop
// that drains received requests in arrival order, executing each
// operation's service time and transmitting its reply. Requests arrive
// as EvPacket events tagged with the operation; the external
// redis-benchmark client model lives with the NIC.
type Redis struct {
	dev     DeviceClass
	pending []Event
	served  uint64
	// replying holds the op whose reply must be sent after service;
	// pendingTagForReply carries the request tag into the reply so the
	// client model can match response to request.
	replying           RedisOp
	pendingTagForReply int
	inService          bool
	epollFloor         sim.Duration
}

// NewRedis builds the server; dev is the NIC it serves on (the paper uses
// SR-IOV for this experiment).
func NewRedis(dev DeviceClass) *Redis {
	return &Redis{dev: dev, epollFloor: 2 * sim.Microsecond}
}

// Next implements Program. Redis is single-threaded: only vCPU 0 serves;
// the remaining vCPUs of the VM idle, as on the real system.
func (r *Redis) Next(vcpu int) Action {
	if vcpu != 0 {
		return WFI()
	}
	if r.inService {
		// Service finished: transmit the reply.
		r.inService = false
		r.served++
		return Action{Kind: ActIO, Req: IORequest{
			Dev: r.dev, Bytes: r.replying.ReplyBytes(), Write: true,
			Tag: r.pendingTagForReply,
		}}
	}
	if len(r.pending) == 0 {
		return WFI()
	}
	ev := r.pending[0]
	r.pending = r.pending[1:]
	r.replying = RedisOp(ev.Tag >> 24)
	r.pendingTagForReply = ev.Tag
	r.inService = true
	// epoll wakeup + parse + execute.
	return ComputeFor(r.epollFloor + r.replying.ServiceTime())
}

// Deliver implements Program.
func (r *Redis) Deliver(vcpu int, ev Event) {
	if ev.Kind == EvPacket {
		r.pending = append(r.pending, ev)
	}
}

// Served reports completed requests.
func (r *Redis) Served() uint64 { return r.served }

// Backlog reports queued, unserved requests.
func (r *Redis) Backlog() int { return len(r.pending) }

// EncodeOpTag packs an operation and a client id into an event tag. The
// client id occupies the low 24 bits; an out-of-range id would silently
// corrupt the operation on decode (the overflow bits OR into the op
// field), so it panics instead — open-loop runs model tens of thousands
// of connections and must fail loudly, not serve the wrong op.
func EncodeOpTag(op RedisOp, clientID int) int {
	if clientID < 0 || clientID >= 1<<24 {
		panic(fmt.Sprintf("guest: EncodeOpTag client id %d out of range [0, 2^24)", clientID))
	}
	return int(op)<<24 | clientID
}

// DecodeOpTag unpacks an event tag.
func DecodeOpTag(tag int) (RedisOp, int) { return RedisOp(tag >> 24), tag & 0xffffff }
