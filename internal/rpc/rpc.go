// Package rpc models the shared-memory cross-core RPC transport that
// replaces same-core CPU mode switches under core gapping (§4.3).
//
// The transport is a set of mailboxes in non-confidential shared memory.
// A mailbox carries one outstanding call: the client posts a request,
// which becomes visible to the other core after a cache-coherence
// propagation delay; the server takes it, services it, and completes it
// with a response that propagates back the same way. Two usage patterns
// are built on this single primitive:
//
//   - synchronous calls: the client busy-waits for the response (short
//     RMM calls such as page-table updates — 257.7 ns round trip);
//   - asynchronous calls: the client blocks and is woken through an IPI
//     plus a wake-up thread (vCPU run calls — 2757.6 ns round trip).
//
// The mailbox enforces its state machine strictly; protocol violations
// panic, because they always indicate an orchestration bug in host or
// monitor code, exactly the class of bug the real prototype had to debug.
package rpc

import (
	"fmt"

	"coregap/internal/sim"
)

// Proxy-call counters: one post and one complete per proxied call, so
// (posts == completes) at quiescence is a cheap protocol sanity check.
var (
	cPosts     = sim.DefineCounter("rpc.posts")
	cCompletes = sim.DefineCounter("rpc.completes")
)

// State is the mailbox protocol state.
type State int

// Mailbox states.
const (
	// Idle: no outstanding call.
	Idle State = iota
	// Requested: client posted a request (possibly not yet visible).
	Requested
	// Serving: server took the request and is working on it.
	Serving
	// Done: server posted a response (possibly not yet visible).
	Done
)

func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Requested:
		return "requested"
	case Serving:
		return "serving"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Mailbox is one cache-line-grained call slot in shared memory.
type Mailbox struct {
	eng  *sim.Engine
	name string

	state State
	req   any
	resp  any

	reqVisibleAt  sim.Time
	respVisibleAt sim.Time

	postedAt sim.Time

	// stats
	calls      uint64
	roundTrips *sim.Duration // optional external accumulator
}

// NewMailbox returns an idle mailbox.
func NewMailbox(eng *sim.Engine, name string) *Mailbox {
	return &Mailbox{eng: eng, name: name}
}

// Name reports the mailbox label.
func (m *Mailbox) Name() string { return m.name }

// State reports the protocol state.
func (m *Mailbox) State() State { return m.state }

// Calls reports how many calls have completed through this mailbox.
func (m *Mailbox) Calls() uint64 { return m.calls }

// Post places a request; it becomes visible to pollers after propDelay
// (the cache-line transfer between cores).
func (m *Mailbox) Post(req any, propDelay sim.Duration) {
	if m.state != Idle {
		panic(fmt.Sprintf("rpc: post on %v mailbox %s", m.state, m.name))
	}
	m.state = Requested
	m.req = req
	m.reqVisibleAt = m.eng.Now().Add(propDelay)
	m.postedAt = m.eng.Now()
	m.eng.Count(cPosts)
	m.eng.Trace().SpanDetail(sim.TCProxy, "rpc.post", m.name, sim.LaneGlobal, propDelay, 0)
}

// TryTake is the server-side poll: it claims the request if one is
// visible, transitioning to Serving.
func (m *Mailbox) TryTake() (req any, ok bool) {
	if m.state != Requested || m.eng.Now() < m.reqVisibleAt {
		return nil, false
	}
	m.state = Serving
	req = m.req
	m.req = nil
	return req, true
}

// RequestVisibleAt reports when a posted request becomes pollable
// (Forever when none is outstanding). Servers use this to schedule their
// pickup without simulating every poll iteration.
func (m *Mailbox) RequestVisibleAt() sim.Time {
	if m.state != Requested {
		return sim.Forever
	}
	return m.reqVisibleAt
}

// Complete posts the response; it becomes visible to the client after
// propDelay.
func (m *Mailbox) Complete(resp any, propDelay sim.Duration) {
	if m.state != Serving {
		panic(fmt.Sprintf("rpc: complete on %v mailbox %s", m.state, m.name))
	}
	m.state = Done
	m.resp = resp
	m.respVisibleAt = m.eng.Now().Add(propDelay)
	m.eng.Count(cCompletes)
	m.eng.Trace().SpanDetail(sim.TCProxy, "rpc.complete", m.name, sim.LaneGlobal, propDelay, 0)
}

// TryResponse is the client-side poll: it consumes the response if
// visible, returning the mailbox to Idle.
func (m *Mailbox) TryResponse() (resp any, ok bool) {
	if m.state != Done || m.eng.Now() < m.respVisibleAt {
		return nil, false
	}
	m.state = Idle
	resp = m.resp
	m.resp = nil
	m.calls++
	if m.roundTrips != nil {
		*m.roundTrips += m.eng.Now().Sub(m.postedAt)
	}
	return resp, true
}

// ResponseVisibleAt reports when the posted response becomes pollable
// (Forever when none).
func (m *Mailbox) ResponseVisibleAt() sim.Time {
	if m.state != Done {
		return sim.Forever
	}
	return m.respVisibleAt
}

// Abort drops an outstanding call (e.g. the vCPU was destroyed while a
// run call was in flight). Any state is accepted; the mailbox idles.
func (m *Mailbox) Abort() {
	m.state = Idle
	m.req = nil
	m.resp = nil
}

// TrackRoundTrips accumulates completed round-trip time into total.
func (m *Mailbox) TrackRoundTrips(total *sim.Duration) { m.roundTrips = total }

// Transport bundles the latency parameters of the shared-memory path.
type Transport struct {
	// Prop is the one-way cache-coherence propagation delay for a
	// mailbox line between two cores.
	Prop sim.Duration
	// PollOverhead is the mean extra delay before a busy-polling peer
	// notices a visible line (half a poll-loop iteration).
	PollOverhead sim.Duration
}

// DefaultTransport is calibrated so that a null synchronous call
// (post → server poll pickup → complete → client poll pickup) costs the
// paper's measured 257.7 ns round trip on an idle server (Table 2).
func DefaultTransport() Transport {
	return Transport{
		Prop:         110 * sim.Nanosecond,
		PollOverhead: 19 * sim.Nanosecond,
	}
}

// SyncRoundTrip reports the modelled null-call round-trip latency of a
// synchronous busy-wait call against an idle polling server.
func (t Transport) SyncRoundTrip() sim.Duration {
	return 2*t.Prop + 2*t.PollOverhead
}

// PickupLatency reports the delay from Post to the server's TryTake
// succeeding, for an idle busy-polling server.
func (t Transport) PickupLatency() sim.Duration { return t.Prop + t.PollOverhead }
