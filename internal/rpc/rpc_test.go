package rpc

import (
	"testing"

	"coregap/internal/sim"
)

func TestMailboxHappyPath(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "vcpu0")
	tr := DefaultTransport()

	m.Post("run", tr.Prop)
	if m.State() != Requested {
		t.Fatalf("state = %v", m.State())
	}
	// Not yet visible.
	if _, ok := m.TryTake(); ok {
		t.Fatal("request visible before propagation")
	}
	eng.RunUntil(sim.Time(tr.Prop))
	req, ok := m.TryTake()
	if !ok || req != "run" {
		t.Fatalf("take = %v,%v", req, ok)
	}
	if m.State() != Serving {
		t.Fatalf("state = %v", m.State())
	}

	m.Complete("exit", tr.Prop)
	if _, ok := m.TryResponse(); ok {
		t.Fatal("response visible before propagation")
	}
	eng.RunUntil(sim.Time(2 * tr.Prop))
	resp, ok := m.TryResponse()
	if !ok || resp != "exit" {
		t.Fatalf("resp = %v,%v", resp, ok)
	}
	if m.State() != Idle || m.Calls() != 1 {
		t.Fatalf("state=%v calls=%d", m.State(), m.Calls())
	}
}

func TestMailboxVisibility(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "x")
	if m.RequestVisibleAt() != sim.Forever || m.ResponseVisibleAt() != sim.Forever {
		t.Fatal("idle visibility not Forever")
	}
	m.Post(1, 100)
	if m.RequestVisibleAt() != 100 {
		t.Fatalf("req visible at %v", m.RequestVisibleAt())
	}
	eng.RunUntil(100)
	m.TryTake()
	m.Complete(2, 50)
	if m.ResponseVisibleAt() != 150 {
		t.Fatalf("resp visible at %v", m.ResponseVisibleAt())
	}
}

func TestMailboxProtocolViolations(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "x")
	mustPanic(t, "complete while idle", func() { m.Complete(nil, 0) })
	m.Post(1, 0)
	mustPanic(t, "double post", func() { m.Post(2, 0) })
	m.TryTake()
	mustPanic(t, "post while serving", func() { m.Post(3, 0) })
}

func TestMailboxAbort(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "x")
	m.Post(1, 0)
	m.Abort()
	if m.State() != Idle {
		t.Fatal("abort did not idle mailbox")
	}
	// A fresh call works after abort.
	m.Post(2, 0)
	if req, ok := m.TryTake(); !ok || req != 2 {
		t.Fatal("post after abort broken")
	}
}

func TestRoundTripTracking(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "x")
	var total sim.Duration
	m.TrackRoundTrips(&total)

	m.Post("a", 100)
	eng.RunUntil(100)
	m.TryTake()
	m.Complete("b", 100)
	eng.RunUntil(250) // client notices at 250 (visible at 200, polled at 250)
	if _, ok := m.TryResponse(); !ok {
		t.Fatal("response missing")
	}
	if total != 250 {
		t.Fatalf("round trip = %v, want 250", total)
	}
}

func TestDefaultTransportCalibration(t *testing.T) {
	tr := DefaultTransport()
	// Table 2: core-gapped synchronous null call = 257.7 ns. Our model
	// must land within 1 ns of the paper's measurement.
	got := tr.SyncRoundTrip()
	if got < 257*sim.Nanosecond || got > 259*sim.Nanosecond {
		t.Fatalf("sync round trip = %v, want ~258ns", got)
	}
	if tr.PickupLatency() != tr.Prop+tr.PollOverhead {
		t.Fatal("pickup latency inconsistent")
	}
}

func TestMailboxManyCalls(t *testing.T) {
	eng := sim.NewEngine(1)
	m := NewMailbox(eng, "x")
	tr := DefaultTransport()
	for i := 0; i < 100; i++ {
		m.Post(i, tr.Prop)
		eng.RunFor(tr.PickupLatency())
		req, ok := m.TryTake()
		if !ok || req != i {
			t.Fatalf("call %d: take = %v,%v", i, req, ok)
		}
		m.Complete(i*2, tr.Prop)
		eng.RunFor(tr.PickupLatency())
		resp, ok := m.TryResponse()
		if !ok || resp != i*2 {
			t.Fatalf("call %d: resp = %v,%v", i, resp, ok)
		}
	}
	if m.Calls() != 100 {
		t.Fatalf("calls = %d", m.Calls())
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{Idle: "idle", Requested: "requested", Serving: "serving", Done: "done"} {
		if s.String() != want {
			t.Errorf("%v = %q", s, s.String())
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}
