package exp

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vmm"
)

// This file declares the open-loop Redis experiments: the first consumer
// of the windowed metrics pipeline. Unlike the closed-loop Table 5 run —
// where clients self-throttle when the server slows down, hiding
// queueing delay (coordinated omission) — load arrives on its own clock
// at a fixed offered rate, so per-window tail latency and queueing
// collapse become directly observable. The paper stops at closed-loop
// throughput; these experiments answer the question its wake-path costs
// (Table 2) raise but Table 5 cannot: at what offered load does each
// configuration stop meeting a tail SLO, and where does it collapse?

// Open-loop run shape shared by interpreter and reducers.
const (
	// openLoopWarmup is when the measurement phase starts: load begins
	// at 5 ms (post-boot) and the first 100 ms of service warm up the
	// stack, matching the closed-loop Redis run.
	openLoopWarmup = 105 * sim.Millisecond
	// openLoopSLO is the per-window p99 target: a window violates the
	// SLO when its p99 exceeds 1 ms (or when it completes no requests at
	// all while load is offered).
	openLoopSLO = 1 * sim.Millisecond
	// collapseConsecWindows is the queueing-collapse criterion: the
	// backlog (requests offered but unanswered) exceeds one full
	// window's worth of offered load at this many consecutive window
	// boundaries. A transient burst can be absorbed and drained; a
	// backlog that stays above a window of work for several windows
	// means the arrival rate exceeds the service rate — the queue is
	// growing without bound.
	collapseConsecWindows = 3
)

// runOpenLoop boots the single-threaded Redis guest and drives it with
// an open-loop arrival process: warm-up to openLoopWarmup, then a
// measured Window at the offered rate. Latencies flow through the
// standard "redis.latency" record site, so finishNode publishes the
// per-window summaries in Trial.Windows; this interpreter additionally
// samples the backlog at every window boundary to detect queueing
// collapse, which per-window latency alone cannot distinguish from
// mere slowness (a collapsed server still completes *some* requests).
func (t *Trial) runOpenLoop(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	width := spec.MetricsWindow
	if width <= 0 {
		return fmt.Errorf("openloop: spec %s needs a MetricsWindow", spec.ID)
	}
	n := t.newNode(ctx, spec)
	r := guest.NewRedis(w.Dev)
	vm, err := n.NewVM("vm0", w.VCPUs, r)
	if err != nil {
		return err
	}
	peer := vmm.NewPeer(n.Eng, vm.VMM.Costs(), n.Met)
	peer.Connect(vm.VMM.VF.DeliverToGuest)
	lg := vmm.NewOpenLoadGen(peer, vmm.OpenLoadConfig{
		Kind:     w.Arrival,
		Rate:     w.Rate,
		Clients:  w.Clients,
		ReqBytes: w.Bytes,
	}, func(c int) int { return guest.EncodeOpTag(w.Op, c) }, "redis.latency",
		n.Eng.Source("openload"))
	vm.VMM.VF.ConnectPeer(lg.OnResponse)

	n.Eng.After(5*sim.Millisecond, "start-load", lg.Start)

	// Backlog sampler on the absolute window grid. Collapse detection
	// runs only in the measurement phase: the warm-up burst legitimately
	// overshoots while the stack boots.
	perWindow := w.Rate * width.Seconds()
	measureEnd := openLoopWarmup + w.Window
	run, maxBacklog := 0, 0
	collapseWin := int64(-1)
	var sample func()
	sample = func() {
		now := n.Eng.Now()
		if b := lg.Backlog(); now >= sim.Time(openLoopWarmup) {
			if b > maxBacklog {
				maxBacklog = b
			}
			if float64(b) > perWindow {
				run++
				if run >= collapseConsecWindows && collapseWin < 0 {
					collapseWin = int64(now)/int64(width) - collapseConsecWindows
				}
			} else {
				run = 0
			}
		}
		if now < sim.Time(measureEnd) {
			n.Eng.After(width, "openload-sample", sample)
		}
	}
	n.Eng.After(width, "openload-sample", sample)

	n.Eng.RunUntil(sim.Time(openLoopWarmup))
	warmupServed := lg.Served()
	n.Eng.RunUntil(sim.Time(measureEnd))
	served := lg.Served() - warmupServed
	lg.Stop()

	if lg.Served() == 0 {
		return fmt.Errorf("openloop: no requests completed (%v, %.0f req/s)", w.Arrival, w.Rate)
	}
	if lg.Dropped() > 0 {
		return fmt.Errorf("openloop: %d replies matched no in-flight request", lg.Dropped())
	}

	hist := n.Met.Hist("redis.latency")
	t.Values["offered.krps"] = w.Rate / 1000
	t.Values["goodput.krps"] = float64(served) / w.Window.Seconds() / 1000
	t.Values["sent"] = float64(lg.Sent())
	t.Values["served"] = float64(lg.Served())
	t.Values["backlog.end"] = float64(lg.Backlog())
	t.Values["backlog.max"] = float64(maxBacklog)
	t.Values["collapse"] = b2f(collapseWin >= 0)
	t.Values["collapse.win"] = float64(collapseWin)
	t.Values["lat.p50.ns"] = float64(hist.Percentile(50))
	t.Values["lat.p99.ns"] = float64(hist.Percentile(99))
	t.Values["lat.p999.ns"] = float64(hist.Percentile(99.9))
	t.finishNode(n)
	return nil
}

// openLoopSpecs sweeps offered SET load over the Table 5 machine shape
// (single-threaded Redis, SR-IOV, 16-core node) for shared-core and
// core-gapped configurations under the given arrival process. Specs
// share a BootKey per configuration, so consecutive rates in a sweep
// fork from one cached boot snapshot instead of re-booting the node.
func openLoopSpecs(kind vmm.ArrivalKind, ratesKRPS []float64, window, metWin sim.Duration, seed uint64, clients int) []ScenarioSpec {
	var specs []ScenarioSpec
	for _, mode := range []struct {
		series string
		cfg    Config
		vcpus  int
	}{
		{"shared-core", ConfigBaseline, 16},
		{"core-gapped", ConfigGapped, 15},
	} {
		for _, kr := range ratesKRPS {
			specs = append(specs, ScenarioSpec{
				ID:     fmt.Sprintf("%s@%gk", mode.series, kr),
				Config: mode.cfg, Cores: 16, Seed: seed,
				Workload: Workload{Kind: WLOpenLoop, Dev: guest.SRIOVNet,
					VCPUs: mode.vcpus, Op: guest.OpSet, Clients: clients, Bytes: 512,
					Window: window, Rate: kr * 1000, Arrival: kind, SLO: openLoopSLO},
				MetricsWindow: metWin,
				Series:        mode.series, X: kr,
				BootKey:       bootKey(1, mode.vcpus),
			})
		}
	}
	return specs
}

// seriesAgg tracks one configuration's SLO/collapse summary across an
// open-loop rate sweep.
type seriesAgg struct {
	sloMax      float64 // highest offered krps with every window SLO-ok
	sloAny      bool
	collapseAt  float64 // lowest offered krps that collapsed
	hasCollapse bool
	maxX        float64
}

// openLoopStream folds the sweep into the SLO story one trial at a
// time: worst-window p99 versus offered load, goodput versus offered
// load, the full per-window timeline at the highest offered rate, and
// headline lines naming each configuration's highest SLO-compliant rate
// and collapse onset. All tail statistics come from Trial.Windows — the
// whole point of the windowed pipeline is that the reducer can ask
// per-window questions the whole-run histogram cannot answer — and each
// trial's windows are folded into the figures and the window log the
// moment the trial is consumed, so the runner can release them and a
// long sweep's peak memory stays one trial deep. reduceOpenLoop runs
// the same code over a buffered list, so the streamed and batch reports
// are identical by construction.
type openLoopStream struct {
	stem    string
	metWin  sim.Duration
	peakX   float64 // highest offered rate in the sweep, known from the specs
	figP99  *trace.Figure
	figGood *trace.Figure
	wlog    *trace.WindowLog
	aggs    map[string]*seriesAgg
	order   []string // series in first-seen (spec) order
}

func newOpenLoopStream(stem string, metWin sim.Duration, peakX float64) *openLoopStream {
	return &openLoopStream{
		stem:   stem,
		metWin: metWin,
		peakX:  peakX,
		figP99: trace.NewFigure("Open loop", "Worst steady-state window p99 vs offered load",
			"offered krps", "worst-window p99 ms"),
		figGood: trace.NewFigure("Open loop", "Goodput vs offered load",
			"offered krps", "goodput krps"),
		wlog: trace.NewWindowLog(stem+"-windows", "Per-window latency timeline at peak offered load", metWin),
		aggs: map[string]*seriesAgg{},
	}
}

// Consume folds one trial. Trials arrive in spec order, so the series
// first-seen order and every figure's point order match the batch fold.
func (o *openLoopStream) Consume(t Trial) {
	s := t.Spec.Series
	a, ok := o.aggs[s]
	if !ok {
		a = &seriesAgg{sloMax: -1, collapseAt: -1}
		o.aggs[s] = a
		o.order = append(o.order, s)
	}
	wins := measureWindows(t)
	worstP99, sloOK := worstWindowP99(wins, t.Dur("lat.p99.ns"))
	o.figP99.Series(s).Add(t.Spec.X, worstP99.Seconds()*1000)
	o.figGood.Series(s).Add(t.Spec.X, t.V("goodput.krps"))
	if t.Spec.X > a.maxX {
		a.maxX = t.Spec.X
	}
	if sloOK && t.V("collapse") == 0 && t.Spec.X > a.sloMax {
		a.sloMax, a.sloAny = t.Spec.X, true
	}
	if t.V("collapse") == 1 && (!a.hasCollapse || t.Spec.X < a.collapseAt) {
		a.collapseAt, a.hasCollapse = t.Spec.X, true
	}
	if t.Spec.X == o.peakX {
		// Merge window-by-window: the rows are copied into the log, so
		// nothing retains the trial's Windows buffers.
		label := fmt.Sprintf("%s@%gk", s, t.Spec.X)
		for _, st := range wins {
			o.wlog.AddStat(label, st)
		}
	}
}

// Finish assembles the report from the folded state.
func (o *openLoopStream) Finish() *Report {
	var lines []string
	for _, s := range o.order {
		a := o.aggs[s]
		slo := "no offered rate met the SLO"
		if a.sloAny {
			slo = fmt.Sprintf("SLO-compliant up to %g krps (p99 <= %v in every %v window)",
				a.sloMax, openLoopSLO, o.metWin)
		}
		col := fmt.Sprintf("no queueing collapse up to %g krps", a.maxX)
		if a.hasCollapse {
			col = fmt.Sprintf("queueing collapse from %g krps (backlog > 1 window of load for %d consecutive windows)",
				a.collapseAt, collapseConsecWindows)
		}
		lines = append(lines, fmt.Sprintf("%s: %s; %s", s, slo, col))
	}

	return &Report{
		Artifacts: []Artifact{
			{Name: o.stem + "-p99", Item: o.figP99},
			{Name: o.stem + "-goodput", Item: o.figGood},
			{Name: o.stem + "-windows", Item: o.wlog},
		},
		Lines: lines,
	}
}

// streamOpenLoop builds the experiment's Stream hook: the peak offered
// rate — which selects the window-log trial — comes from the specs, so
// the one-pass fold needs no look-ahead over the trial list.
func streamOpenLoop(stem string, metWin sim.Duration) func(Profile, []ScenarioSpec) Streamer {
	return func(p Profile, specs []ScenarioSpec) Streamer {
		peakX := 0.0
		for _, s := range specs {
			if s.X > peakX {
				peakX = s.X
			}
		}
		return newOpenLoopStream(stem, metWin, peakX)
	}
}

// reduceOpenLoop is the batch entry point: it replays the buffered trial
// list through the streaming fold, so the two paths cannot diverge.
func reduceOpenLoop(stem string, metWin sim.Duration, trials []Trial) *Report {
	peakX := 0.0
	for _, t := range trials {
		if t.Spec.X > peakX {
			peakX = t.Spec.X
		}
	}
	o := newOpenLoopStream(stem, metWin, peakX)
	for _, t := range trials {
		o.Consume(t)
	}
	return o.Finish()
}

// measureWindows filters a trial's redis.latency windows to those fully
// inside the measurement phase (warm-up windows and the trailing partial
// window are excluded).
func measureWindows(t Trial) []trace.WindowStat {
	all := t.Windows["redis.latency"]
	end := sim.Time(openLoopWarmup + t.Spec.Workload.Window)
	var wins []trace.WindowStat
	for _, st := range all {
		if st.Start >= sim.Time(openLoopWarmup) && st.End <= end {
			wins = append(wins, st)
		}
	}
	return wins
}

// worstWindowP99 reports the worst per-window p99 across the measurement
// windows and whether every window met the SLO. An empty window (no
// completions while load was offered) is an SLO violation and its
// "latency" is unbounded; it reports the fallback whole-run p99 so the
// figure stays finite.
func worstWindowP99(wins []trace.WindowStat, fallback sim.Duration) (sim.Duration, bool) {
	worst, ok := sim.Duration(0), true
	for _, st := range wins {
		if st.Count == 0 {
			ok = false
			if fallback > worst {
				worst = fallback
			}
			continue
		}
		if st.P99 > worst {
			worst = st.P99
		}
		if st.P99 > openLoopSLO {
			ok = false
		}
	}
	if len(wins) == 0 {
		return fallback, false
	}
	return worst, ok
}

// The open-loop experiments, registered after the paper's eleven by
// register.go — they extend the evaluation rather than reproduce a
// published artifact.
var (
	expOpenLoop = &Experiment{
		Name:  "openloop",
		Desc:  "Offers an open-loop Poisson request stream to Redis SET at increasing rates and reports per-window p99 SLO attainment and collapse points.",
		Title: "Open-loop Redis SET: per-window SLO tails vs offered load (Poisson)",
		Paper: "paper reports closed-loop only (Table 5: SET 51.7->56.2 krps);\n" +
			"       open-loop SLO/collapse behaviour is this repo's extension",
		Specs: func(p Profile) []ScenarioSpec {
			rates, window, metWin := []float64{35, 50, 57, 62}, 250*sim.Millisecond, 10*sim.Millisecond
			if p.Full {
				rates = []float64{20, 30, 40, 45, 50, 53, 56, 59, 62, 65}
				window = 1500 * sim.Millisecond
			}
			return openLoopSpecs(vmm.ArrivalPoisson, rates, window, metWin, p.Seed, 50)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return reduceOpenLoop("openloop", 10*sim.Millisecond, trials)
		},
		Stream: streamOpenLoop("openloop", 10*sim.Millisecond),
	}

	expOpenLoopBurst = &Experiment{
		Name:  "openloop-burst",
		Desc:  "Open-loop Redis SET with bursty arrivals (5x rate at 20% duty) to probe tail behaviour under load spikes.",
		Title: "Open-loop Redis SET: bursty arrivals (5x rate at 20% duty)",
		Paper: "paper reports closed-loop only; bursty open-loop is this repo's extension",
		Specs: func(p Profile) []ScenarioSpec {
			rates, window, metWin := []float64{30, 45, 55}, 250*sim.Millisecond, 10*sim.Millisecond
			if p.Full {
				rates = []float64{20, 30, 40, 45, 50, 55, 60}
				window = 1500 * sim.Millisecond
			}
			return openLoopSpecs(vmm.ArrivalBursty, rates, window, metWin, p.Seed, 50)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return reduceOpenLoop("openloop-burst", 10*sim.Millisecond, trials)
		},
		Stream: streamOpenLoop("openloop-burst", 10*sim.Millisecond),
	}

	// expOpenLoopHi stresses the harness itself rather than the modelled
	// system: offered rates an order of magnitude past the Redis guest's
	// ~58 krps service capacity, over a 2^20-connection pool. Every
	// configuration collapses by design — the artifact is the harness
	// sustaining 500 krps of arrivals and a million modelled connections
	// at a flat memory footprint (zero-alloc request lifecycle, batched
	// arrival plan, streamed reduction), not the SLO story.
	expOpenLoopHi = &Experiment{
		Name:  "openloop-hi",
		Desc:  "Offers 100-500 krps — far past service capacity — to Redis SET over a 2^20-connection pool; deep queueing collapse is the expected result, and the point is that the harness sustains the offered rate with flat memory.",
		Title: "Open-loop Redis SET: high-rate harness stress (100-500 krps, 1M connections)",
		Paper: "no paper counterpart; harness scalability extension (collapse at every rate is expected)",
		Specs: func(p Profile) []ScenarioSpec {
			rates, window, metWin := []float64{100, 500}, 60*sim.Millisecond, 10*sim.Millisecond
			if p.Full {
				rates = []float64{100, 250, 500}
				window = 500 * sim.Millisecond
			}
			return openLoopSpecs(vmm.ArrivalPoisson, rates, window, metWin, p.Seed, 1<<20)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return reduceOpenLoop("openloop-hi", 10*sim.Millisecond, trials)
		},
		Stream: streamOpenLoop("openloop-hi", 10*sim.Millisecond),
	}
)
