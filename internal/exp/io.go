package exp

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/trace"
)

// This file declares the I/O experiments (Figs. 8–10) as spec generators
// plus pure reducers.

// ---------------------------------------------------------------- Fig. 8

// Fig8Result carries the NetPIPE latency and throughput figures.
type Fig8Result struct {
	Latency    *trace.Figure // one-way latency (µs) vs message size
	Throughput *trace.Figure // Gbit/s vs message size
}

// fig8Specs sweeps NetPIPE message sizes for virtio and SR-IOV
// interfaces, shared-core versus core-gapped. The 4-core node is a small
// VM: 1 server vCPU is what NetPIPE exercises.
func fig8Specs(sizes []int, rounds int, seed uint64) []ScenarioSpec {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
	}
	if rounds <= 0 {
		rounds = 40
	}
	configs := []struct {
		series string
		cfg    Config
		dev    guest.DeviceClass
	}{
		{"virtio shared-core", ConfigBaseline, guest.VirtioNet},
		{"virtio core-gapped", ConfigGapped, guest.VirtioNet},
		{"SR-IOV shared-core", ConfigBaseline, guest.SRIOVNet},
		{"SR-IOV core-gapped", ConfigGapped, guest.SRIOVNet},
	}
	var specs []ScenarioSpec
	for _, c := range configs {
		for _, size := range sizes {
			specs = append(specs, ScenarioSpec{
				ID:     fmt.Sprintf("%s@%d", c.series, size),
				Config: c.cfg, Cores: 4, Seed: seed,
				Workload: Workload{Kind: WLNetPIPE, Dev: c.dev, Bytes: size, Rounds: rounds},
				Series:   c.series, X: float64(size),
				BootKey:  bootKey(1, 1),
			})
		}
	}
	return specs
}

func reduceFig8(trials []Trial) Fig8Result {
	lat := trace.NewFigure("Figure 8", "NetPIPE TCP results", "message bytes", "latency us (one-way)")
	tput := trace.NewFigure("Figure 8b", "NetPIPE TCP throughput", "message bytes", "Gbit/s")
	for _, t := range trials {
		rtt := t.Dur("rtt.ns")
		lat.Series(t.Spec.Series).Add(t.Spec.X, rtt.Micros()/2)
		gbps := t.Spec.X * 8 / rtt.Seconds() / 1e9
		tput.Series(t.Spec.Series).Add(t.Spec.X, gbps)
	}
	return Fig8Result{Latency: lat, Throughput: tput}
}

// RunFig8 reproduces the NetPIPE figure: latency and throughput versus
// message size for virtio and SR-IOV interfaces, shared-core versus
// core-gapped.
func RunFig8(sizes []int, rounds int, seed uint64) Fig8Result {
	return reduceFig8(run(fig8Specs(sizes, rounds, seed)))
}

// ---------------------------------------------------------------- Fig. 9

// fig9Specs sweeps IOzone record sizes: synchronous O_DIRECT read/write
// throughput to a virtio block device.
func fig9Specs(records []int, seed uint64) []ScenarioSpec {
	if len(records) == 0 {
		records = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	var specs []ScenarioSpec
	for _, mode := range []struct {
		label string
		cfg   Config
	}{
		{"shared-core", ConfigBaseline},
		{"core-gapped", ConfigGapped},
	} {
		for _, write := range []bool{false, true} {
			op := "read"
			if write {
				op = "write"
			}
			for _, rec := range records {
				specs = append(specs, ScenarioSpec{
					ID:     fmt.Sprintf("%s %s@%d", mode.label, op, rec),
					Config: mode.cfg, Cores: 4, Seed: seed,
					Workload: Workload{Kind: WLIOzone, Bytes: rec, Write: write, Total: int64(rec) * 32},
					Series:   mode.label + " " + op, X: float64(rec),
					BootKey:  bootKey(1, 1),
				})
			}
		}
	}
	return specs
}

func reduceFig9(trials []Trial) *trace.Figure {
	fig := trace.NewFigure("Figure 9", "IOzone sync I/O throughput (virtio-blk, O_DIRECT)",
		"record bytes", "MiB/s")
	for _, t := range trials {
		fig.Series(t.Spec.Series).Add(t.Spec.X, t.V("mibs"))
	}
	return fig
}

// RunFig9 reproduces the IOzone figure: synchronous O_DIRECT read/write
// throughput to a virtio block device versus record size.
func RunFig9(records []int, seed uint64) *trace.Figure {
	return reduceFig9(run(fig9Specs(records, seed)))
}

// --------------------------------------------------------------- Fig. 10

// fig10Specs sweeps the kernel-build core counts, with the build tree on
// a virtio disk. Core-gapped CVMs run with one fewer vCPU
// (equal-physical-cores accounting).
func fig10Specs(coreCounts []int, jobs int, seed uint64) []ScenarioSpec {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8, 16}
	}
	if jobs <= 0 {
		jobs = 300
	}
	var specs []ScenarioSpec
	for _, N := range coreCounts {
		if N < 2 {
			continue
		}
		for _, mode := range []struct {
			series string
			cfg    Config
			vcpus  int
		}{
			{"shared-core", ConfigBaseline, N},
			{"core-gapped", ConfigGapped, N - 1},
		} {
			specs = append(specs, ScenarioSpec{
				ID:     fmt.Sprintf("%s@%d", mode.series, N),
				Config: mode.cfg, Cores: N, Seed: seed,
				Workload: Workload{Kind: WLKBuild, Jobs: jobs, VCPUs: mode.vcpus},
				Series:   mode.series, X: float64(N),
			})
		}
	}
	return specs
}

func reduceFig10(trials []Trial) *trace.Figure {
	fig := trace.NewFigure("Figure 10", "Linux kernel build (virtio disk)",
		"cores", "build time s")
	for _, t := range trials {
		fig.Series(t.Spec.Series).Add(t.Spec.X, t.Dur("build.ns").Seconds())
	}
	return fig
}

// RunFig10 reproduces the kernel-build figure: wall-clock build time
// versus core count.
func RunFig10(coreCounts []int, jobs int, seed uint64) *trace.Figure {
	return reduceFig10(run(fig10Specs(coreCounts, jobs, seed)))
}

// The I/O experiments, registered in paper order by register.go.
var (
	expFig8 = &Experiment{
		Name:  "fig8",
		Desc:  "Runs NetPIPE ping-pong over virtio-net and a passthrough VF across message sizes for the latency/throughput curves.",
		Title: "Figure 8: NetPIPE latency and throughput",
		Paper: "paper: virtio up to 2x latency / 30-70% lower throughput gapped;\n" +
			"       SR-IOV within 10-20 us of baseline, up to 5% higher throughput at large sizes",
		Specs: func(p Profile) []ScenarioSpec {
			sizes, rounds := []int{64, 1024, 16384, 262144, 1 << 20}, 30
			if p.Full {
				sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
				rounds = 100
			}
			return fig8Specs(sizes, rounds, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceFig8(trials)
			return &Report{Artifacts: []Artifact{
				{Name: "fig8-latency", Item: r.Latency},
				{Name: "fig8-throughput", Item: r.Throughput},
			}}
		},
	}

	expFig9 = &Experiment{
		Name:  "fig9",
		Desc:  "Drives IOzone-style synchronous O_DIRECT I/O over virtio-blk across record sizes.",
		Title: "Figure 9: IOzone sync throughput (virtio-blk)",
		Paper: "paper: core-gapping matches baseline only for large (>10 MiB) I/Os",
		Specs: func(p Profile) []ScenarioSpec {
			recs := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20}
			if p.Full {
				recs = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
			}
			return fig9Specs(recs, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return &Report{Artifacts: []Artifact{{Name: "fig9", Item: reduceFig9(trials)}}}
		},
	}

	expFig10 = &Experiment{
		Name:  "fig10",
		Desc:  "Builds a parallel kernel-compile workload to compare end-to-end build times across configurations.",
		Title: "Figure 10: Linux kernel build",
		Paper: "paper: comparable scaling despite one fewer vCPU and virtio-disk contention",
		Specs: func(p Profile) []ScenarioSpec {
			cores, jobs := []int{4, 8, 16}, 150
			if p.Full {
				cores, jobs = []int{2, 4, 8, 16}, 400
			}
			return fig10Specs(cores, jobs, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return &Report{Artifacts: []Artifact{{Name: "fig10", Item: reduceFig10(trials)}}}
		},
	}
)
