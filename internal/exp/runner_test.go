package exp

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// renderReport flattens every deterministic part of a report — artifact
// CSVs, headline lines, per-trial values and labels — into one string
// for byte-level comparison. Meta.Wall is deliberately excluded: it is
// the only host-dependent field.
func renderReport(t *testing.T, rep *Report) string {
	t.Helper()
	var b strings.Builder
	for _, a := range rep.Artifacts {
		b.WriteString(a.Name)
		b.WriteByte('\n')
		b.WriteString(a.Item.CSV())
	}
	for _, l := range rep.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, tr := range rep.Trials {
		b.WriteString(tr.Spec.ID)
		b.WriteByte('\n')
		meta := tr.Meta
		meta.Wall = 0
		b.WriteString(meta.String())
		b.WriteByte('\n')
		b.WriteString(trialValues(tr))
		var wnames []string
		for name := range tr.Windows {
			wnames = append(wnames, name)
		}
		sort.Strings(wnames)
		for _, name := range wnames {
			for _, st := range tr.Windows[name] {
				fmt.Fprintf(&b, "win %s %+v\n", name, st)
			}
		}
	}
	return b.String()
}

func trialValues(tr Trial) string {
	var keys []string
	for k := range tr.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%v\n", k, tr.Values[k])
	}
	keys = keys[:0]
	for k := range tr.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, strings.Join(tr.Labels[k], ";"))
	}
	return b.String()
}

// TestRunnerParallelMatchesSerial is the determinism regression test of
// the parallel runner: for the same root seed, an 8-worker run must be
// byte-identical to a serial run — artifacts, headline lines, values,
// labels and deterministic metadata alike.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	p := Profile{Seed: 42}
	for _, name := range []string{"table2", "table3", "fig3", "tdx"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		serial, err := NewRunner(1).RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		parallel, err := NewRunner(8).RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if s, pl := renderReport(t, serial), renderReport(t, parallel); s != pl {
			t.Errorf("%s: parallel output differs from serial\nserial:\n%s\nparallel:\n%s", name, s, pl)
		}
	}
}

// TestRunExperimentsCrossPoolDeterminism drives the work-stealing pool
// the way benchsuite -exp all does — one flat queue over several
// experiments' trials — and checks the reduced reports are byte-equal
// to per-experiment serial runs.
func TestRunExperimentsCrossPoolDeterminism(t *testing.T) {
	p := Profile{Seed: 42}
	names := []string{"table2", "table3", "fig3", "tdx"}
	var es []*Experiment
	for _, n := range names {
		e, ok := Lookup(n)
		if !ok {
			t.Fatalf("experiment %q not registered", n)
		}
		es = append(es, e)
	}
	pooled, err := NewRunner(8).RunExperiments(es, p)
	if err != nil {
		t.Fatalf("pooled: %v", err)
	}
	for i, e := range es {
		serial, err := NewRunner(1).RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s serial: %v", e.Name, err)
		}
		if s, pl := renderReport(t, serial), renderReport(t, pooled[i]); s != pl {
			t.Errorf("%s: cross-experiment pool output differs from serial\nserial:\n%s\npooled:\n%s", e.Name, s, pl)
		}
	}
}

// TestRunExperimentsPartialFailure: one failing experiment yields a nil
// report slot and a joined error naming it; the healthy experiment
// still reduces.
func TestRunExperimentsPartialFailure(t *testing.T) {
	good, _ := Lookup("table2")
	bad := &Experiment{
		Name:  "bad",
		Title: "always fails",
		Specs: func(p Profile) []ScenarioSpec {
			return []ScenarioSpec{{ID: "broken", Config: ConfigGapped, Cores: 2, Seed: 1,
				Workload: Workload{Kind: "no-such-kind"}}}
		},
		Reduce: func(p Profile, trials []Trial) *Report { return &Report{} },
	}
	reps, err := NewRunner(4).RunExperiments([]*Experiment{good, bad}, Profile{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err = %v, want failure naming experiment \"bad\"", err)
	}
	if reps[0] == nil || reps[0].Experiment != "table2" || len(reps[0].Trials) == 0 {
		t.Fatal("healthy experiment did not reduce")
	}
	if reps[1] != nil {
		t.Fatal("failed experiment produced a report")
	}
}

// TestRunnerRepeatable: two consecutive runs with the same seed are
// byte-identical; a different seed changes at least the recorded seeds.
func TestRunnerRepeatable(t *testing.T) {
	e, _ := Lookup("table3")
	r := NewRunner(4)
	first, err := r.RunExperiment(e, Profile{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.RunExperiment(e, Profile{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if renderReport(t, first) != renderReport(t, second) {
		t.Fatal("same seed, different output")
	}
	other, err := r.RunExperiment(e, Profile{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if first.Trials[0].Meta.Seed == other.Trials[0].Meta.Seed {
		t.Fatal("seed not recorded in metadata")
	}
}

// TestRegistryComplete: all eleven experiments of the evaluation are
// registered in the paper's presentation order, followed by the repo's
// open-loop extensions, and resolvable by name.
func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "table3", "table4", "table5", "fig3",
		"fig6", "fig7", "fig8", "fig9", "tdx", "fig10",
		"openloop", "openloop-burst", "openloop-hi"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("registered[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
		e, ok := Lookup(name)
		if !ok || e.Name != name {
			t.Fatalf("Lookup(%q) = %v, %v", name, e, ok)
		}
		if e.Title == "" || e.Specs == nil || e.Reduce == nil {
			t.Fatalf("experiment %q incomplete", name)
		}
		if specs := e.Specs(Profile{Seed: 1}); len(specs) == 0 {
			t.Fatalf("experiment %q generates no specs", name)
		}
	}
	if _, err := Run("nope", Profile{}, nil); err == nil {
		t.Fatal("Run of unknown experiment must fail")
	}
}

// TestSpecIDsUnique: within each experiment, reduced and full profiles
// generate unique trial IDs (Report.Value depends on it).
func TestSpecIDsUnique(t *testing.T) {
	for _, name := range Names() {
		e, _ := Lookup(name)
		for _, p := range []Profile{{Seed: 1}, {Seed: 1, Full: true}} {
			seen := map[string]bool{}
			for _, s := range e.Specs(p) {
				if seen[s.ID] {
					t.Errorf("%s (full=%v): duplicate trial ID %q", name, p.Full, s.ID)
				}
				seen[s.ID] = true
			}
		}
	}
}

// TestRunnerSurfacesErrors: a failing trial is reported with its
// identity; the other trials still execute.
func TestRunnerSurfacesErrors(t *testing.T) {
	specs := []ScenarioSpec{
		{ID: "ok", Config: ConfigGapped, Cores: 2, Seed: 1,
			Workload: Workload{Kind: WLNullRMMSync, Rounds: 10}},
		{ID: "broken", Config: ConfigGapped, Cores: 2, Seed: 1,
			Workload: Workload{Kind: "no-such-kind"}},
	}
	trials, err := NewRunner(2).RunSpecs(specs)
	if err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("err = %v, want trial identity", err)
	}
	if trials[0].V("ns") == 0 {
		t.Fatal("healthy trial did not run")
	}
}

// TestExecuteRecoversPanics: a panic inside the interpreter (here: an
// unknown config) comes back as an error naming the trial, never a
// crashed worker.
func TestExecuteRecoversPanics(t *testing.T) {
	_, err := Execute(ScenarioSpec{ID: "bad-config", Config: "warp-speed", Cores: 2, Seed: 1,
		Workload: Workload{Kind: WLCoreMark, VCPUs: 1, Work: 1000}})
	if err == nil || !strings.Contains(err.Error(), "bad-config") {
		t.Fatalf("err = %v, want recovered panic with trial identity", err)
	}
}

// TestParseConfig covers the command-line aliases.
func TestParseConfig(t *testing.T) {
	for in, want := range map[string]Config{
		"baseline": ConfigBaseline, "shared": ConfigBaseline, "shared-core": ConfigBaseline,
		"gapped": ConfigGapped, "core-gapped": ConfigGapped,
		"nodeleg": ConfigGappedNoDeleg, "gapped-nodeleg": ConfigGappedNoDeleg,
		"busywait": ConfigGappedBusyWait, "busywait-deleg": ConfigGappedBusyWaitDeleg,
	} {
		got, err := ParseConfig(in)
		if err != nil || got != want {
			t.Errorf("ParseConfig(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseConfig("warp-speed"); err == nil {
		t.Error("ParseConfig must reject unknown names")
	}
	for _, c := range []Config{ConfigBaseline, ConfigGapped, ConfigGappedNoDeleg,
		ConfigGappedBusyWait, ConfigGappedBusyWaitDeleg} {
		_ = c.Options() // must not panic
	}
}
