package exp

import (
	"fmt"
	"strings"

	"coregap/internal/attack"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vulncat"
)

// This file declares Figures 3, 6 and 7 as spec generators plus pure
// reducers.

// ---------------------------------------------------------------- Fig. 3

// Fig3Result reproduces Figure 3: the timeline of transient-execution
// vulnerabilities and CPU bugs breaking security isolation since 2018,
// annotated with core-gapping's mitigation verdicts, plus the empirical
// battery backing them.
type Fig3Result struct {
	Timeline *trace.Table
	Summary  vulncat.Summary
	// Battery results for the three schedulings.
	ZeroDayLeaks    []string // shared-core, no applicable mitigation
	MitigatedLeaks  []string // shared-core, monitor applies deployed flushes
	CoreGappedLeaks []string // core-gapped placement
}

func fig3Specs(seed uint64) []ScenarioSpec {
	battery := func(sched attack.Scheduling) Workload {
		return Workload{Kind: WLBattery, Sched: sched}
	}
	return []ScenarioSpec{
		{ID: "zero-day", Config: ConfigBaseline, Cores: 2, Seed: seed,
			Workload: battery(attack.SharedTimeSlicedNoFlush)},
		{ID: "mitigated", Config: ConfigBaseline, Cores: 2, Seed: seed,
			Workload: battery(attack.SharedTimeSliced)},
		{ID: "gapped", Config: ConfigGapped, Cores: 2, Seed: seed,
			Workload: battery(attack.CoreGappedPlacement)},
	}
}

// reduceFig3 builds the timeline table (a pure function of the
// catalogue) and folds in the battery outcomes.
func reduceFig3(trials []Trial) Fig3Result {
	vulns := vulncat.Catalogue()
	tb := trace.NewTable("Figure 3", "Vulnerabilities breaking CPU security isolation (2018-2024)",
		"Year", "Class", "Scope", "Structures", "Core-gapping verdict")
	for _, v := range vulns {
		var structs []string
		for _, k := range v.Structures {
			structs = append(structs, k.String())
		}
		verdict := "MITIGATED"
		if !v.MitigatedByCoreGapping() {
			verdict = "out of reach (" + v.Scope.String() + ")"
		}
		tb.AddRow(v.Name,
			fmt.Sprintf("%d", v.Year), v.Class.String(), v.Scope.String(),
			strings.Join(structs, ","), verdict)
	}

	res := Fig3Result{Timeline: tb, Summary: vulncat.Summarize(vulns)}
	for _, t := range trials {
		switch t.Spec.ID {
		case "zero-day":
			res.ZeroDayLeaks = t.Labels["leaks"]
		case "mitigated":
			res.MitigatedLeaks = t.Labels["leaks"]
		case "gapped":
			res.CoreGappedLeaks = t.Labels["leaks"]
		}
	}
	return res
}

// RunFig3 builds the timeline table and runs the attack battery that
// verifies each verdict against the modelled microarchitecture.
func RunFig3(seed uint64) Fig3Result {
	return reduceFig3(run(fig3Specs(seed)))
}

// SecuritySummary renders the battery outcome in the shape of the Fig. 3
// caption: "Only NetSpectre and CrossTalk demonstrated cross-core leaks
// in typical cloud VM settings."
func (r Fig3Result) SecuritySummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalogued vulnerabilities: %d (%d transient, %d CPU bugs)\n",
		r.Summary.Total, r.Summary.TransientCount, r.Summary.ArchBugCount)
	fmt.Fprintf(&b, "mitigated by core gapping:  %d\n", r.Summary.Mitigated)
	fmt.Fprintf(&b, "beyond core boundaries:     %v\n", r.Summary.UnmitigatedNames)
	fmt.Fprintf(&b, "attack battery:\n")
	fmt.Fprintf(&b, "  shared core, zero-day:    %d leak\n", len(r.ZeroDayLeaks))
	fmt.Fprintf(&b, "  shared core, mitigated:   %d leak\n", len(r.MitigatedLeaks))
	fmt.Fprintf(&b, "  core-gapped:              %d leak %v\n", len(r.CoreGappedLeaks), r.CoreGappedLeaks)
	return b.String()
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Result is the CoreMark-PRO scaling experiment (Fig. 6) plus the
// §5.2 run-to-run latency statistic.
type Fig6Result struct {
	Figure *trace.Figure
	// RunToRunMean/Stddev at the largest core count, full design — the
	// paper reports 26.18 ± 0.96 µs, stable across guest core counts.
	RunToRunMean   sim.Duration
	RunToRunStddev sim.Duration
}

// fig6Specs sweeps the CoreMark-PRO scaling grid: shared-core baseline
// VMs with N vCPUs on N cores versus core-gapped CVMs with N-1 dedicated
// cores plus one host core, and the two busy-wait ablations (Fig. 6's
// cyan lines), following §5.1's equal-resources accounting.
func fig6Specs(coreCounts []int, workPerVCPU sim.Duration, seed uint64) []ScenarioSpec {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8, 16, 32, 48, 64}
	}
	var specs []ScenarioSpec
	point := func(series string, cfg Config, N, vcpus int) ScenarioSpec {
		return ScenarioSpec{
			ID:     fmt.Sprintf("%s@%d", series, N),
			Config: cfg, Cores: N, Seed: seed,
			Workload: Workload{Kind: WLCoreMark, VCPUs: vcpus, Work: workPerVCPU},
			Horizon:  sim.Duration(200) * workPerVCPU,
			Series:   series, X: float64(N),
			BootKey:  bootKey(1, vcpus),
		}
	}
	for _, N := range coreCounts {
		if N < 2 {
			continue
		}
		specs = append(specs,
			point("shared-core", ConfigBaseline, N, N),
			point("core-gapped", ConfigGapped, N, N-1),
			point("busy-wait (delegated)", ConfigGappedBusyWaitDeleg, N, N-1),
			point("busy-wait, no delegation", ConfigGappedBusyWait, N, N-1))
	}
	return specs
}

func reduceFig6(trials []Trial) Fig6Result {
	fig := trace.NewFigure("Figure 6", "CoreMark-PRO scaling (shared-core vs core-gapped)",
		"cores", "score (effective cores)")
	var res Fig6Result
	for _, t := range trials {
		fig.Series(t.Spec.Series).Add(t.Spec.X, t.V("score"))
		// The §5.2 statistic: the full design's run-to-run latency at the
		// largest swept core count (trials arrive in ascending-N order).
		if t.Spec.Series == "core-gapped" && t.V("runtorun.count") > 0 {
			res.RunToRunMean = t.Dur("runtorun.mean.ns")
			res.RunToRunStddev = t.Dur("runtorun.stddev.ns")
		}
	}
	res.Figure = fig
	return res
}

// RunFig6 reproduces the CoreMark-PRO scaling figure. Higher is better;
// the x axis is total physical cores.
func RunFig6(coreCounts []int, workPerVCPU sim.Duration, seed uint64) Fig6Result {
	return reduceFig6(run(fig6Specs(coreCounts, workPerVCPU, seed)))
}

// ---------------------------------------------------------------- Fig. 7

// fig7Specs sweeps an increasing count of 4-core VMs, with every gapped
// VMM pinned to the single host core.
func fig7Specs(maxVMs int, workPerVCPU sim.Duration, seed uint64) []ScenarioSpec {
	if maxVMs <= 0 {
		maxVMs = 16
	}
	const vcpusPerVM = 4
	var specs []ScenarioSpec
	for _, mode := range []struct {
		series string
		cfg    Config
	}{
		{"shared-core", ConfigBaseline},
		{"core-gapped", ConfigGapped},
	} {
		for k := 1; k <= maxVMs; k *= 2 {
			cores := vcpusPerVM * k
			if mode.cfg != ConfigBaseline {
				cores++ // the single host core all VMMs share
			}
			specs = append(specs, ScenarioSpec{
				ID:     fmt.Sprintf("%s@%d", mode.series, k),
				Config: mode.cfg, Cores: cores, Seed: seed,
				Workload: Workload{Kind: WLCoreMark, VMs: k, VCPUs: vcpusPerVM, Work: workPerVCPU},
				Horizon:  sim.Duration(200) * workPerVCPU,
				Series:   mode.series, X: float64(k),
				BootKey:  bootKey(k, vcpusPerVM),
			})
		}
	}
	return specs
}

func reduceFig7(trials []Trial) *trace.Figure {
	fig := trace.NewFigure("Figure 7", "Scaling to multiple 4-core VMs",
		"VMs", "aggregate score")
	for _, t := range trials {
		fig.Series(t.Spec.Series).Add(t.Spec.X, t.V("score"))
	}
	return fig
}

// RunFig7 reproduces the multi-VM scaling figure: the y axis is the
// aggregate CoreMark-PRO score.
func RunFig7(maxVMs int, workPerVCPU sim.Duration, seed uint64) *trace.Figure {
	return reduceFig7(run(fig7Specs(maxVMs, workPerVCPU, seed)))
}

// The figure experiments, registered in paper order by register.go.
var (
	expFig3 = &Experiment{
		Name:  "fig3",
		Desc:  "Replays the transient-execution attack battery under shared-core, core-gapped, and partitioned-LLC scheduling and reports which catalogue vulnerabilities still leak.",
		Title: "Figure 3: vulnerability timeline + attack battery",
		Paper: "paper: only NetSpectre and CrossTalk demonstrated cross-core leaks in cloud VM settings",
		Specs: func(p Profile) []ScenarioSpec { return fig3Specs(p.Seed) },
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceFig3(trials)
			return &Report{
				Artifacts: []Artifact{{Name: "fig3", Item: r.Timeline}},
				Lines:     []string{r.SecuritySummary()},
			}
		},
	}

	expFig6 = &Experiment{
		Name:  "fig6",
		Desc:  "Sweeps CoreMark-PRO across guest core counts and polling modes to reproduce the scaling and run-to-run stability figure.",
		Title: "Figure 6: CoreMark-PRO scaling",
		Paper: "paper run-to-run: 26.18 ± 0.96 us, stable across guest core counts",
		Specs: func(p Profile) []ScenarioSpec {
			cores, work := []int{2, 4, 8, 16}, 300*sim.Millisecond
			if p.Full {
				cores, work = []int{2, 4, 8, 16, 32, 48, 64}, sim.Second
			}
			return fig6Specs(cores, work, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceFig6(trials)
			return &Report{
				Artifacts: []Artifact{{Name: "fig6", Item: r.Figure}},
				Lines: []string{fmt.Sprintf("run-to-run latency: %.2f ± %.2f us",
					r.RunToRunMean.Micros(), r.RunToRunStddev.Micros())},
			}
		},
	}

	expFig7 = &Experiment{
		Name:  "fig7",
		Desc:  "Scales multiple 4-core VMs on one host to show aggregate throughput and the effect of many VMMs sharing one host core.",
		Title: "Figure 7: scaling to multiple 4-core VMs",
		Paper: "paper: aggregate scales linearly; 16 VMMs on one host core do not harm throughput",
		Specs: func(p Profile) []ScenarioSpec {
			vms, work := 8, 200*sim.Millisecond
			if p.Full {
				vms, work = 16, sim.Second
			}
			return fig7Specs(vms, work, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			return &Report{Artifacts: []Artifact{{Name: "fig7", Item: reduceFig7(trials)}}}
		},
	}
)
