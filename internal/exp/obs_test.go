package exp

import (
	"bytes"
	"sync"
	"testing"

	"coregap/internal/obs"
	"coregap/internal/sim"
)

// TestStealQueueDrainedPrefix exercises the head-cursor edge the PR 5
// fix introduced: after the owner drains a prefix, the tail shrinking
// below the head cursor (thief steals) must read as empty on both ends,
// never re-deal a drained item.
func TestStealQueueDrainedPrefix(t *testing.T) {
	q := &stealQueue{items: []int{0, 1, 2}}
	if it, ok := q.pop(); !ok || it != 0 {
		t.Fatalf("pop = %d,%v, want 0,true", it, ok)
	}
	if it, ok := q.pop(); !ok || it != 1 {
		t.Fatalf("pop = %d,%v, want 1,true", it, ok)
	}
	// head == 2, items == [0,1,2]: one item left, reachable either way.
	if it, ok := q.steal(); !ok || it != 2 {
		t.Fatalf("steal = %d,%v, want 2,true", it, ok)
	}
	// Now len(items) == 2 < head == 2: both ends must report empty.
	if it, ok := q.pop(); ok {
		t.Fatalf("pop on drained queue returned %d", it)
	}
	if it, ok := q.steal(); ok {
		t.Fatalf("steal on drained queue returned %d", it)
	}

	// Mirror order: thief first, then the owner runs past the new end.
	q = &stealQueue{items: []int{0, 1, 2}}
	if it, ok := q.steal(); !ok || it != 2 {
		t.Fatalf("steal = %d,%v, want 2,true", it, ok)
	}
	got := []bool{false, false, false}
	for {
		it, ok := q.pop()
		if !ok {
			break
		}
		got[it] = true
	}
	if !got[0] || !got[1] || got[2] {
		t.Fatalf("owner drained %v, want items 0 and 1 only", got)
	}
}

// TestStealQueueConcurrent races one owner against several thieves
// (meaningful under -race): every item must be claimed exactly once.
func TestStealQueueConcurrent(t *testing.T) {
	const n = 10000
	const thieves = 3
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	q := &stealQueue{items: items}
	var mu sync.Mutex
	seen := make(map[int]int, n)
	claim := func(it int) {
		mu.Lock()
		seen[it]++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() {
		defer wg.Done()
		for {
			it, ok := q.pop()
			if !ok {
				return
			}
			claim(it)
		}
	}()
	for i := 0; i < thieves; i++ {
		go func() {
			defer wg.Done()
			for {
				it, ok := q.steal()
				if !ok {
					return
				}
				claim(it)
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("claimed %d distinct items, want %d", len(seen), n)
	}
	for it, c := range seen {
		if c != 1 {
			t.Fatalf("item %d claimed %d times", it, c)
		}
	}
}

// TestTracedTrialMatchesUntraced is the observer-effect gate: arming the
// flight recorder must not change a single deterministic output of a
// trial — values, labels, windows, simulated time, event count.
func TestTracedTrialMatchesUntraced(t *testing.T) {
	for _, e := range []string{"table2", "table3"} {
		exp, _ := Lookup(e)
		for _, spec := range exp.Specs(Profile{Seed: 42}) {
			plain, err := Execute(spec)
			if err != nil {
				t.Fatalf("%s/%s untraced: %v", e, spec.ID, err)
			}
			spec.Trace = true
			traced, err := Execute(spec)
			if err != nil {
				t.Fatalf("%s/%s traced: %v", e, spec.ID, err)
			}
			if len(traced.TraceEvents) == 0 {
				t.Errorf("%s/%s traced trial captured no events", e, spec.ID)
			}
			if len(plain.TraceEvents) != 0 {
				t.Errorf("%s/%s untraced trial captured %d events", e, spec.ID, len(plain.TraceEvents))
			}
			if got, want := trialValues(traced), trialValues(plain); got != want {
				t.Errorf("%s/%s traced values diverge:\n got %q\nwant %q", e, spec.ID, got, want)
			}
			if traced.Meta.Simulated != plain.Meta.Simulated || traced.Meta.Events != plain.Meta.Events {
				t.Errorf("%s/%s traced meta diverges: %v/%d vs %v/%d", e, spec.ID,
					traced.Meta.Simulated, traced.Meta.Events, plain.Meta.Simulated, plain.Meta.Events)
			}
		}
	}
}

// TestTable2TracedTrials checks the tentpole acceptance shape: a traced
// Table 2 run yields a structurally valid Chrome trace containing
// world-switch, IPI-injection, and proxy-call events with monotone
// sim-time timestamps.
func TestTable2TracedTrials(t *testing.T) {
	e, _ := Lookup("table2")
	var all []sim.TraceEvent
	for _, spec := range e.Specs(Profile{Seed: 42}) {
		spec.Trace = true
		trial, err := Execute(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		var buf bytes.Buffer
		if err := obs.ChromeTrace(&buf, "table2 "+spec.ID, trial.TraceEvents); err != nil {
			t.Fatalf("%s: ChromeTrace: %v", spec.ID, err)
		}
		n, err := obs.ValidateChrome(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: invalid Chrome trace: %v", spec.ID, err)
		}
		if n != len(trial.TraceEvents) {
			t.Errorf("%s: Chrome trace has %d events, captured %d", spec.ID, n, len(trial.TraceEvents))
		}
		last := sim.Time(0)
		for _, ev := range trial.TraceEvents {
			if ev.At < last {
				t.Fatalf("%s: timestamps regress: %v after %v", spec.ID, ev.At, last)
			}
			last = ev.At
		}
		all = append(all, trial.TraceEvents...)
	}
	want := map[string]bool{"hw.world_switch": false, "hw.ipi": false, "rpc.post": false}
	for _, ev := range all {
		if _, ok := want[ev.Name]; ok {
			want[ev.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no %q event in any traced Table 2 trial", name)
		}
	}
}

// TestTrialCountersCaptured checks that the always-on counter bank comes
// back on every trial, traced or not, and survives pooled execution.
func TestTrialCountersCaptured(t *testing.T) {
	e, _ := Lookup("table3")
	specs := e.Specs(Profile{Seed: 42})
	ctx := NewTrialContext()
	for _, spec := range specs[:1] {
		trial, err := ExecuteIn(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(trial.Counters) == 0 {
			t.Fatal("trial captured no engine counters")
		}
		for _, key := range []string{"hw.ipis", "core.irq_injections"} {
			if trial.Counters[key] == 0 {
				t.Errorf("counter %q is zero in an IPI benchmark", key)
			}
		}
		// A second trial on the same pooled context must not inherit the
		// first trial's counts.
		again, err := ExecuteIn(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		for key, v := range again.Counters {
			if trial.Counters[key] != v {
				t.Errorf("pooled rerun counter %q: %d vs %d", key, v, trial.Counters[key])
			}
		}
	}
}

// TestRunnerWorkerStats checks the harness self-metrics: every trial is
// attributed to exactly one worker, and the progress callback sees every
// completion.
func TestRunnerWorkerStats(t *testing.T) {
	e, _ := Lookup("table3")
	specs := e.Specs(Profile{Seed: 42})
	var mu sync.Mutex
	calls := 0
	lastDone := 0
	r := &Runner{Workers: 2}
	r.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if done > lastDone {
			lastDone = done
		}
		if total != len(specs) {
			t.Errorf("progress total = %d, want %d", total, len(specs))
		}
	}
	if _, err := r.RunSpecs(specs); err != nil {
		t.Fatal(err)
	}
	stats := r.WorkerStats()
	if len(stats) == 0 {
		t.Fatal("no worker stats after a run")
	}
	trials := 0
	for _, st := range stats {
		trials += st.Trials
		if st.Busy < 0 || st.Idle < 0 {
			t.Errorf("worker %d has negative time: busy=%v idle=%v", st.Worker, st.Busy, st.Idle)
		}
	}
	if trials != len(specs) {
		t.Errorf("workers report %d trials, want %d", trials, len(specs))
	}
	if calls != len(specs) || lastDone != len(specs) {
		t.Errorf("progress: %d calls, max done %d, want %d", calls, lastDone, len(specs))
	}
}
