package exp

import (
	"runtime"
	"testing"

	"coregap/internal/sim"
)

// poolingTestExperiments is the experiment set the pooled-vs-fresh
// equivalence test sweeps. Under -short only the cheap experiments run;
// the full set covers every workload kind the dispatcher knows,
// including the node-booting sweeps and the attack battery.
func poolingTestExperiments(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		// openloop rides in the short set deliberately: it is the one
		// experiment whose report includes per-window tails, so this is
		// where windowed-metrics determinism under pooling is enforced.
		// openloop-hi rides along for the same reason at a rate an order
		// of magnitude past service capacity: streamed reduction and the
		// batched arrival path must stay deterministic in deep collapse.
		return []string{"table2", "table3", "fig3", "tdx", "openloop", "openloop-hi"}
	}
	return Names()
}

// TestPooledExecuteDeterminism is the acceptance test of context
// pooling: for every experiment, a fresh-construction serial run, a
// pooled serial run and a pooled 8-worker run must reduce to
// byte-identical reports (artifact CSVs, headline lines, per-trial
// values and labels; Meta.Wall excluded). This is exactly the
// benchsuite `-exp all -seed 42` tree compared across `-parallel 1/8`
// and `-fresh`/pooled.
func TestPooledExecuteDeterminism(t *testing.T) {
	p := Profile{Seed: 42}
	for _, name := range poolingTestExperiments(t) {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		freshRunner := NewRunner(1)
		freshRunner.Fresh = true
		fresh, err := freshRunner.RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		pooled1, err := NewRunner(1).RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s pooled serial: %v", name, err)
		}
		pooled8, err := NewRunner(8).RunExperiment(e, p)
		if err != nil {
			t.Fatalf("%s pooled parallel: %v", name, err)
		}
		// The pooled runs above execute with boot-snapshot forking at its
		// default (on); a serial run with forking disabled pins down that
		// the fork path, not luck, is what matches.
		SetSnapshotForking(false)
		pooledOff, err := NewRunner(1).RunExperiment(e, p)
		SetSnapshotForking(true)
		if err != nil {
			t.Fatalf("%s pooled no-snapshot: %v", name, err)
		}
		want := renderReport(t, fresh)
		if got := renderReport(t, pooled1); got != want {
			t.Errorf("%s: pooled serial differs from fresh\nfresh:\n%s\npooled:\n%s", name, want, got)
		}
		if got := renderReport(t, pooled8); got != want {
			t.Errorf("%s: pooled 8-worker differs from fresh\nfresh:\n%s\npooled:\n%s", name, want, got)
		}
		if got := renderReport(t, pooledOff); got != want {
			t.Errorf("%s: pooled no-snapshot run differs from fresh\nfresh:\n%s\npooled:\n%s", name, want, got)
		}
	}
}

// TestPooledContextReuseOrderIndependence: a context that has already
// executed a large trial must produce byte-identical results for a
// small one (and vice versa) — Reset may not leak capacity-dependent
// behaviour, only capacity.
func TestPooledContextReuseOrderIndependence(t *testing.T) {
	small := ScenarioSpec{ID: "small", Config: ConfigGapped, Cores: 4, Seed: 7,
		Workload: Workload{Kind: WLIPIBench, Rounds: 64}}
	big := ScenarioSpec{ID: "big", Config: ConfigGapped, Cores: 8, Seed: 9,
		Workload: Workload{Kind: WLCoreMark, VMs: 2, VCPUs: 2, Work: 20 * sim.Millisecond}}

	ref := func(spec ScenarioSpec) Trial {
		tr, err := Execute(spec)
		if err != nil {
			t.Fatalf("fresh %s: %v", spec.ID, err)
		}
		return tr
	}
	wantSmall, wantBig := ref(small), ref(big)

	ctx := NewTrialContext()
	for i, spec := range []ScenarioSpec{big, small, big, small, small} {
		tr, err := ExecuteIn(ctx, spec)
		if err != nil {
			t.Fatalf("pooled run %d (%s): %v", i, spec.ID, err)
		}
		want := wantSmall
		if spec.ID == "big" {
			want = wantBig
		}
		if got, exp := trialValues(tr), trialValues(want); got != exp {
			t.Errorf("run %d (%s): pooled values diverge after reuse\nfresh:\n%s\npooled:\n%s",
				i, spec.ID, exp, got)
		}
	}
}

// bytesPerRun measures the mean bytes allocated per call of f, in the
// style of testing.AllocsPerRun: one warm-up call, a GC to settle the
// heap, then TotalAlloc deltas over runs calls.
func bytesPerRun(runs int, f func()) float64 {
	var before, after runtime.MemStats
	f()
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// TestTrialAllocs is the allocation gate of the pooling work. The
// pre-pooling profile showed trial construction — the 32 MiB granule
// table above all — was ~79% of every byte the suite allocated, so the
// gate is on bytes: a steady-state pooled trial must allocate at least
// 5x fewer bytes than the fresh-construction path (in practice the
// reduction is ~700x; 5x is the regression floor from the issue). The
// allocation *count* must also drop — the substrate's several hundred
// construction allocations disappear — but the surviving per-trial
// object graph (kernel, monitor, VMs, event closures) is rebuilt by
// design, so the count gate is directional, not 5x.
func TestTrialAllocs(t *testing.T) {
	spec := ScenarioSpec{ID: "alloc-gate", Config: ConfigGapped, Cores: 4, Seed: 11,
		Workload: Workload{Kind: WLIPIBench, Rounds: 32}}

	ctx := NewTrialContext()
	// Warm the context: first use grows the heap, source map, granule
	// table and metric maps to their steady-state footprint.
	for i := 0; i < 3; i++ {
		if _, err := ExecuteIn(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	pooledBytes := bytesPerRun(10, func() {
		if _, err := ExecuteIn(ctx, spec); err != nil {
			t.Fatal(err)
		}
	})
	freshBytes := bytesPerRun(10, func() {
		if _, err := Execute(spec); err != nil {
			t.Fatal(err)
		}
	})
	pooled := testing.AllocsPerRun(10, func() {
		if _, err := ExecuteIn(ctx, spec); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(10, func() {
		if _, err := Execute(spec); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("bytes/trial: fresh=%.0f pooled=%.0f (%.0fx); allocs/trial: fresh=%.0f pooled=%.0f (%.1fx)",
		freshBytes, pooledBytes, freshBytes/pooledBytes, fresh, pooled, fresh/pooled)
	if pooledBytes*5 > freshBytes {
		t.Errorf("pooled trial allocates %.0f bytes vs %.0f fresh; want >= 5x reduction", pooledBytes, freshBytes)
	}
	if pooled >= fresh {
		t.Errorf("pooled trial allocation count %.0f did not drop below fresh %.0f", pooled, fresh)
	}
}

// TestFreshRunnerBypassesPooling: Metrics stays populated on the fresh
// path (cmd/coregapctl -v depends on it) and nil under pooling, where
// the set belongs to the worker context and is recycled by the next
// trial.
func TestFreshRunnerBypassesPooling(t *testing.T) {
	spec := ScenarioSpec{ID: "metrics", Config: ConfigGapped, Cores: 4, Seed: 3,
		Workload: Workload{Kind: WLIPIBench, Rounds: 16}}
	tr, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Metrics == nil {
		t.Error("fresh Execute must populate Trial.Metrics")
	}
	tr, err = ExecuteIn(NewTrialContext(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Metrics != nil {
		t.Error("pooled ExecuteIn must leave Trial.Metrics nil (set is recycled)")
	}
}
