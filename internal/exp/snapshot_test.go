package exp

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"coregap/internal/sim"
)

// counterLines flattens a trial's engine counter bank, dropping the
// snapshot bookkeeping counters that (by design) only forked trials
// carry.
func counterLines(tr Trial) string {
	var keys []string
	for k := range tr.Counters {
		if strings.HasPrefix(k, "snapshot.") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, tr.Counters[k])
	}
	return b.String()
}

// windowLines flattens a trial's windowed metrics.
func windowLines(tr Trial) string {
	var names []string
	for name := range tr.Windows {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		for _, st := range tr.Windows[name] {
			fmt.Fprintf(&b, "win %s %+v\n", name, st)
		}
	}
	return b.String()
}

// trialFingerprint is every deterministic observable of a trial:
// values, labels, windows and the full engine counter bank (minus the
// snapshot.* markers). This is strictly stronger than renderReport,
// which skips Counters — the counter comparison is what proves the
// recorded-delta replay reproduces the skipped RMI work exactly.
func trialFingerprint(tr Trial) string {
	return trialValues(tr) + windowLines(tr) + counterLines(tr)
}

// TestSnapshotForkMatchesFullBoot is the acceptance test of
// boot-snapshot forking: for every registered experiment that declares
// BootKeys, run its keyed specs through one pooled context twice — the
// first pass captures boot snapshots, the second forks from them — and
// require each forked trial to be byte-identical to a fresh Execute of
// the same spec, engine counters included.
func TestSnapshotForkMatchesFullBoot(t *testing.T) {
	if !SnapshotForking() {
		t.Fatal("snapshot forking must default on")
	}
	p := Profile{Seed: 42}
	names := Names()
	if testing.Short() {
		names = []string{"fig8"}
	}
	tested := 0
	for _, name := range names {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		var keyed []ScenarioSpec
		for _, s := range e.Specs(p) {
			if s.BootKey != "" {
				keyed = append(keyed, s)
			}
		}
		if len(keyed) == 0 {
			continue
		}
		tested++
		ctx := NewTrialContext()
		for _, s := range keyed {
			if _, err := ExecuteIn(ctx, s); err != nil {
				t.Fatalf("%s/%s capture pass: %v", name, s.ID, err)
			}
		}
		forks := 0
		for _, s := range keyed {
			forked, err := ExecuteIn(ctx, s)
			if err != nil {
				t.Fatalf("%s/%s fork pass: %v", name, s.ID, err)
			}
			fresh, err := Execute(s)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", name, s.ID, err)
			}
			if got, want := trialFingerprint(forked), trialFingerprint(fresh); got != want {
				t.Errorf("%s/%s: forked trial differs from fresh boot\nfresh:\n%s\nforked:\n%s",
					name, s.ID, want, got)
			}
			forks += int(forked.Counters["snapshot.fork"])
			if s.Config != ConfigBaseline && forked.Counters["snapshot.hit"] == 0 {
				t.Errorf("%s/%s: second pass of a keyed gapped trial did not hit the cache", name, s.ID)
			}
		}
		if forks == 0 {
			t.Errorf("%s: no VM boot was forked on the second pass", name)
		}
	}
	if tested == 0 {
		t.Fatal("no registered experiment declares a BootKey")
	}
}

// TestSnapshotKeyMismatchFallsBack: a BootKey that lies about the boot
// shape (same key, different vCPU count) must not corrupt the trial —
// the per-VM product check falls back to a full boot whose output
// matches fresh execution.
func TestSnapshotKeyMismatchFallsBack(t *testing.T) {
	mk := func(id string, vcpus int) ScenarioSpec {
		return ScenarioSpec{ID: id, Config: ConfigGapped, Cores: 4, Seed: 11,
			Workload: Workload{Kind: WLCoreMark, VCPUs: vcpus, Work: 5 * sim.Millisecond},
			BootKey:  "liar"}
	}
	ctx := NewTrialContext()
	if _, err := ExecuteIn(ctx, mk("a", 3)); err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteIn(ctx, mk("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Execute(mk("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["snapshot.fork"] != 0 {
		t.Error("mismatched product was forked instead of falling back")
	}
	if g, w := trialFingerprint(got), trialFingerprint(want); g != w {
		t.Errorf("fallback trial differs from fresh boot\nfresh:\n%s\nfallback:\n%s", w, g)
	}
}

// TestSnapshotForkingDisabled: the global switch must suppress all
// snapshot activity while leaving results unchanged.
func TestSnapshotForkingDisabled(t *testing.T) {
	spec := ScenarioSpec{ID: "off", Config: ConfigGapped, Cores: 4, Seed: 5,
		Workload: Workload{Kind: WLCoreMark, VCPUs: 3, Work: 5 * sim.Millisecond},
		BootKey:  "off-key"}
	SetSnapshotForking(false)
	defer SetSnapshotForking(true)
	ctx := NewTrialContext()
	for i := 0; i < 2; i++ {
		tr, err := ExecuteIn(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Counters["snapshot.fork"] != 0 || tr.Counters["snapshot.hit"] != 0 {
			t.Fatalf("run %d: snapshot counters fired while forking disabled: %v", i, tr.Counters)
		}
	}
}
