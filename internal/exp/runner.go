package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes independent trials across a pool of goroutines. Each
// trial is seeded entirely from its spec, so the result list is
// bit-identical to serial execution regardless of worker count or
// scheduling: results are written into ordered slots, and nothing
// except RunMeta.Wall depends on the host.
//
// Each worker goroutine owns one pooled TrialContext — engine, machine,
// granule table, metric set — rewound per trial instead of rebuilt, so
// the steady-state trial allocates only its thin per-trial object
// graph. Pooling does not affect results (ExecuteIn's contract); Fresh
// disables it for A/B measurement.
//
// Work distribution is a work-stealing pool: trials are dealt
// round-robin into per-worker queues, a worker drains its own queue
// front-to-back, and a worker that runs dry steals from the others.
// With RunExperiments the pool spans *all* experiments' trials at once,
// so one experiment's long tail (e.g. fig6's largest-N run) no longer
// idles workers that could be executing the next experiment.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Fresh disables context pooling: every trial builds its simulation
	// substrate from scratch, as Execute does. This is the reference
	// behaviour pooling must reproduce; benchsuite -fresh exposes it so
	// the two can be A/B'd for both results and allocation cost.
	Fresh bool
	// Progress, when set, is called after every completed trial with the
	// running completion count and the total. It runs on worker
	// goroutines (possibly concurrently), so it must be cheap and
	// thread-safe; benchsuite's -progress uses it for a live line.
	Progress func(done, total int)

	// stats is the per-worker activity of the most recent run (nil until
	// a run completes, and never populated through a nil Runner).
	stats []WorkerStats
}

// WorkerStats is one pool worker's activity during a run: how many
// trials it executed, how many of those it stole from other workers'
// queues, and how its wall time split between executing trials and
// waiting. These are harness self-metrics — host wall clock, not
// simulated time — so they are the one part of a run that is NOT a pure
// function of the specs.
type WorkerStats struct {
	Worker int           `json:"worker"`
	Trials int           `json:"trials"`
	Steals int           `json:"steals"`
	Busy   time.Duration `json:"busy_ns"`
	Idle   time.Duration `json:"idle_ns"`
}

// WorkerStats reports the per-worker activity of the runner's most
// recent Run* call (nil before any run, or on a nil Runner).
func (r *Runner) WorkerStats() []WorkerStats {
	if r == nil {
		return nil
	}
	return append([]WorkerStats(nil), r.stats...)
}

// NewRunner returns a runner with the given pool size (<= 0: GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

func (r *Runner) fresh() bool { return r != nil && r.Fresh }

// stealQueue is one worker's trial queue. The owner pops from the head
// (preserving rough spec order); thieves steal from the tail, where the
// round-robin deal places the later — and in sweep experiments usually
// larger — trials. A mutex suffices: trials run for milliseconds to
// seconds, so queue operations are noise.
//
// The head is an index into a fixed backing array rather than a
// reslice: popping via items = items[1:] would keep every drained
// element reachable through the slice's origin pointer for the queue's
// whole lifetime and re-deal nothing, while an explicit cursor makes
// the drained prefix dead the moment it is passed.
type stealQueue struct {
	mu    sync.Mutex
	head  int
	items []int
}

func (q *stealQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.items) {
		return 0, false
	}
	it := q.items[q.head]
	q.head++
	return it, true
}

func (q *stealQueue) steal() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	if q.head >= n {
		return 0, false
	}
	it := q.items[n-1]
	q.items = q.items[:n-1]
	return it, true
}

// runItems executes exec(worker, 0..n-1) on the stealing pool. Every
// index runs exactly once, tagged with the worker that ran it so the
// caller can thread per-worker state (the pooled contexts) through.
// Ordered result slots make completion order irrelevant to the output.
// No work is added after the deal, so a worker that finds every queue
// empty can exit: the remaining items are already executing on other
// workers.
func (r *Runner) runItems(n int, exec func(worker, item int)) {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	stats := make([]WorkerStats, workers)
	for w := range stats {
		stats[w].Worker = w
	}
	var done atomic.Int64
	finish := func(w int) {
		if r == nil || r.Progress == nil {
			return
		}
		r.Progress(int(done.Add(1)), n)
	}
	if workers <= 1 {
		start := time.Now()
		for i := 0; i < n; i++ {
			exec(0, i)
			finish(0)
		}
		if len(stats) > 0 {
			stats[0].Trials = n
			stats[0].Busy = time.Since(start)
		}
		if r != nil {
			r.stats = stats
		}
		return
	}
	queues := make([]*stealQueue, workers)
	for w := range queues {
		queues[w] = &stealQueue{items: make([]int, 0, n/workers+1)}
	}
	for i := 0; i < n; i++ {
		q := queues[i%workers]
		q.items = append(q.items, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			st := &stats[self]
			spawned := time.Now()
			for {
				i, ok := queues[self].pop()
				for off := 1; !ok && off < workers; off++ {
					i, ok = queues[(self+off)%workers].steal()
					if ok {
						st.Steals++
					}
				}
				if !ok {
					st.Idle = time.Since(spawned) - st.Busy
					return
				}
				t0 := time.Now()
				exec(self, i)
				st.Busy += time.Since(t0)
				st.Trials++
				finish(self)
			}
		}(w)
	}
	wg.Wait()
	if r != nil {
		r.stats = stats
	}
}

// contexts builds the lazy per-worker context table: slot w is created
// on worker w's first trial and reused for all its later ones. With
// Fresh set every slot stays nil, and ExecuteIn(nil, …) falls back to
// scratch construction.
func (r *Runner) contexts() []*TrialContext {
	return make([]*TrialContext, r.workers())
}

func (r *Runner) contextFor(ctxs []*TrialContext, w int) *TrialContext {
	if r.fresh() {
		return nil
	}
	if ctxs[w] == nil {
		ctxs[w] = NewTrialContext()
	}
	return ctxs[w]
}

// RunSpecs executes every spec and returns the trials in spec order.
// All trials are attempted even when some fail; the joined error names
// each failed trial.
func (r *Runner) RunSpecs(specs []ScenarioSpec) ([]Trial, error) {
	trials := make([]Trial, len(specs))
	errs := make([]error, len(specs))
	ctxs := r.contexts()
	r.runItems(len(specs), func(w, i int) {
		trials[i], errs[i] = ExecuteIn(r.contextFor(ctxs, w), specs[i])
	})
	return trials, errors.Join(errs...)
}

// finishReport stamps the reduced report with the experiment's identity
// and attaches the ordered trials.
func finishReport(rep *Report, e *Experiment, trials []Trial) {
	rep.Experiment = e.Name
	rep.Title = e.Title
	rep.Paper = e.Paper
	rep.Trials = trials
	for i := range rep.Trials {
		rep.Trials[i].Meta.Experiment = e.Name
		rep.Work += rep.Trials[i].Meta.Wall
	}
}

// streamCursor drives one experiment's incremental reducer during a
// run. Workers complete trials in arbitrary order; the cursor admits
// them to the Streamer strictly in spec order — a completed trial waits
// until every earlier slot has been consumed — so a streamed reduce
// sees exactly the sequence the batch Reduce would. Once a failed trial
// reaches the cursor, consumption stops: the experiment is reporting an
// error and its Finish will never run.
type streamCursor struct {
	mu   sync.Mutex
	st   Streamer
	done []bool
	next int
	dead bool
}

// admit marks slot j complete and consumes every ready in-order trial.
// Consumed trials have their bulky buffers (Windows, TraceEvents)
// released immediately — the whole point of streaming: a long sweep's
// per-trial timelines die as the sweep progresses instead of
// accumulating until the reduce barrier.
func (c *streamCursor) admit(j int, trials []Trial, terrs []error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[j] = true
	for !c.dead && c.next < len(c.done) && c.done[c.next] {
		k := c.next
		if terrs[k] != nil {
			c.dead = true
			return
		}
		c.st.Consume(trials[k])
		trials[k].Windows = nil
		trials[k].TraceEvents = nil
		c.next++
	}
}

// RunExperiments generates the specs of every given experiment up
// front, executes the union of all trials on one work-stealing pool,
// and reduces each experiment — in order. An experiment with a Stream
// reducer consumes its trials incrementally as workers finish them (in
// spec order, releasing each trial's window and trace buffers once
// consumed) and takes its report from Finish at the end; the others
// batch-Reduce after the barrier as before. Reports come back in
// experiment order; a failed experiment leaves a nil slot and
// contributes to the joined error, while the others still reduce.
func (r *Runner) RunExperiments(es []*Experiment, p Profile) ([]*Report, error) {
	type slot struct{ exp, trial int }
	specs := make([][]ScenarioSpec, len(es))
	trials := make([][]Trial, len(es))
	terrs := make([][]error, len(es))
	cursors := make([]*streamCursor, len(es))
	var flat []slot
	for i, e := range es {
		specs[i] = e.Specs(p)
		trials[i] = make([]Trial, len(specs[i]))
		terrs[i] = make([]error, len(specs[i]))
		if e.Stream != nil {
			cursors[i] = &streamCursor{
				st:   e.Stream(p, specs[i]),
				done: make([]bool, len(specs[i])),
			}
		}
		for j := range specs[i] {
			flat = append(flat, slot{i, j})
		}
	}
	ctxs := r.contexts()
	r.runItems(len(flat), func(w, k int) {
		s := flat[k]
		trials[s.exp][s.trial], terrs[s.exp][s.trial] =
			ExecuteIn(r.contextFor(ctxs, w), specs[s.exp][s.trial])
		if c := cursors[s.exp]; c != nil {
			c.admit(s.trial, trials[s.exp], terrs[s.exp])
		}
	})
	reports := make([]*Report, len(es))
	var errs []error
	for i, e := range es {
		if err := errors.Join(terrs[i]...); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Name, err))
			continue
		}
		var rep *Report
		if c := cursors[i]; c != nil {
			rep = c.st.Finish()
		} else {
			rep = e.Reduce(p, trials[i])
		}
		finishReport(rep, e, trials[i])
		reports[i] = rep
	}
	return reports, errors.Join(errs...)
}

// RunExperiment generates the experiment's specs for the profile,
// executes them on the pool, and reduces the ordered results.
func (r *Runner) RunExperiment(e *Experiment, p Profile) (*Report, error) {
	reps, err := r.RunExperiments([]*Experiment{e}, p)
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// run is the serial-compatibility path used by the legacy Run* wrappers:
// execute the given specs on the default pool and panic on failure, as
// the pre-registry experiment functions did.
func run(specs []ScenarioSpec) []Trial {
	trials, err := (*Runner)(nil).RunSpecs(specs)
	if err != nil {
		panic(err)
	}
	return trials
}
