package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Runner executes independent trials across a pool of goroutines. Each
// trial owns its own simulation engine and is seeded entirely from its
// spec, so the result list is bit-identical to serial execution
// regardless of worker count or scheduling: results are returned in
// spec order, and nothing except RunMeta.Wall depends on the host.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
}

// NewRunner returns a runner with the given pool size (<= 0: GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// RunSpecs executes every spec and returns the trials in spec order.
// All trials are attempted even when some fail; the joined error names
// each failed trial.
func (r *Runner) RunSpecs(specs []ScenarioSpec) ([]Trial, error) {
	trials := make([]Trial, len(specs))
	errs := make([]error, len(specs))
	workers := r.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			trials[i], errs[i] = Execute(s)
		}
		return trials, errors.Join(errs...)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				trials[i], errs[i] = Execute(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return trials, errors.Join(errs...)
}

// RunExperiment generates the experiment's specs for the profile,
// executes them on the pool, and reduces the ordered results.
func (r *Runner) RunExperiment(e *Experiment, p Profile) (*Report, error) {
	specs := e.Specs(p)
	trials, err := r.RunSpecs(specs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.Name, err)
	}
	rep := e.Reduce(p, trials)
	rep.Experiment = e.Name
	rep.Title = e.Title
	rep.Paper = e.Paper
	rep.Trials = trials
	for i := range rep.Trials {
		rep.Trials[i].Meta.Experiment = e.Name
	}
	return rep, nil
}

// run is the serial-compatibility path used by the legacy Run* wrappers:
// execute the given specs on the default pool and panic on failure, as
// the pre-registry experiment functions did.
func run(specs []ScenarioSpec) []Trial {
	trials, err := (*Runner)(nil).RunSpecs(specs)
	if err != nil {
		panic(err)
	}
	return trials
}
