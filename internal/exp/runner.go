package exp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Runner executes independent trials across a pool of goroutines. Each
// trial owns its own simulation engine and is seeded entirely from its
// spec, so the result list is bit-identical to serial execution
// regardless of worker count or scheduling: results are written into
// ordered slots, and nothing except RunMeta.Wall depends on the host.
//
// Work distribution is a work-stealing pool: trials are dealt
// round-robin into per-worker queues, a worker drains its own queue
// front-to-back, and a worker that runs dry steals from the others.
// With RunExperiments the pool spans *all* experiments' trials at once,
// so one experiment's long tail (e.g. fig6's largest-N run) no longer
// idles workers that could be executing the next experiment.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
}

// NewRunner returns a runner with the given pool size (<= 0: GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// stealQueue is one worker's trial queue. The owner pops from the head
// (preserving rough spec order); thieves steal from the tail, where the
// round-robin deal places the later — and in sweep experiments usually
// larger — trials. A mutex suffices: trials run for milliseconds to
// seconds, so queue operations are noise.
type stealQueue struct {
	mu    sync.Mutex
	items []int
}

func (q *stealQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

func (q *stealQueue) steal() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	if n == 0 {
		return 0, false
	}
	it := q.items[n-1]
	q.items = q.items[:n-1]
	return it, true
}

// runItems executes exec(0..n-1) on the stealing pool. Every index runs
// exactly once; the caller provides ordered result slots, so completion
// order is irrelevant to the output. No work is added after the deal,
// so a worker that finds every queue empty can exit: the remaining
// items are already executing on other workers.
func (r *Runner) runItems(n int, exec func(int)) {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			exec(i)
		}
		return
	}
	queues := make([]*stealQueue, workers)
	for w := range queues {
		queues[w] = &stealQueue{items: make([]int, 0, n/workers+1)}
	}
	for i := 0; i < n; i++ {
		q := queues[i%workers]
		q.items = append(q.items, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := queues[self].pop()
				for off := 1; !ok && off < workers; off++ {
					i, ok = queues[(self+off)%workers].steal()
				}
				if !ok {
					return
				}
				exec(i)
			}
		}(w)
	}
	wg.Wait()
}

// RunSpecs executes every spec and returns the trials in spec order.
// All trials are attempted even when some fail; the joined error names
// each failed trial.
func (r *Runner) RunSpecs(specs []ScenarioSpec) ([]Trial, error) {
	trials := make([]Trial, len(specs))
	errs := make([]error, len(specs))
	r.runItems(len(specs), func(i int) {
		trials[i], errs[i] = Execute(specs[i])
	})
	return trials, errors.Join(errs...)
}

// finishReport stamps the reduced report with the experiment's identity
// and attaches the ordered trials.
func finishReport(rep *Report, e *Experiment, trials []Trial) {
	rep.Experiment = e.Name
	rep.Title = e.Title
	rep.Paper = e.Paper
	rep.Trials = trials
	for i := range rep.Trials {
		rep.Trials[i].Meta.Experiment = e.Name
		rep.Work += rep.Trials[i].Meta.Wall
	}
}

// RunExperiments generates the specs of every given experiment up
// front, executes the union of all trials on one work-stealing pool,
// and reduces each experiment — in order — once all trials are done.
// Reports come back in experiment order; a failed experiment leaves a
// nil slot and contributes to the joined error, while the others still
// reduce.
func (r *Runner) RunExperiments(es []*Experiment, p Profile) ([]*Report, error) {
	type slot struct{ exp, trial int }
	specs := make([][]ScenarioSpec, len(es))
	trials := make([][]Trial, len(es))
	terrs := make([][]error, len(es))
	var flat []slot
	for i, e := range es {
		specs[i] = e.Specs(p)
		trials[i] = make([]Trial, len(specs[i]))
		terrs[i] = make([]error, len(specs[i]))
		for j := range specs[i] {
			flat = append(flat, slot{i, j})
		}
	}
	r.runItems(len(flat), func(k int) {
		s := flat[k]
		trials[s.exp][s.trial], terrs[s.exp][s.trial] = Execute(specs[s.exp][s.trial])
	})
	reports := make([]*Report, len(es))
	var errs []error
	for i, e := range es {
		if err := errors.Join(terrs[i]...); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.Name, err))
			continue
		}
		rep := e.Reduce(p, trials[i])
		finishReport(rep, e, trials[i])
		reports[i] = rep
	}
	return reports, errors.Join(errs...)
}

// RunExperiment generates the experiment's specs for the profile,
// executes them on the pool, and reduces the ordered results.
func (r *Runner) RunExperiment(e *Experiment, p Profile) (*Report, error) {
	reps, err := r.RunExperiments([]*Experiment{e}, p)
	if err != nil {
		return nil, err
	}
	return reps[0], nil
}

// run is the serial-compatibility path used by the legacy Run* wrappers:
// execute the given specs on the default pool and panic on failure, as
// the pre-registry experiment functions did.
func run(specs []ScenarioSpec) []Trial {
	trials, err := (*Runner)(nil).RunSpecs(specs)
	if err != nil {
		panic(err)
	}
	return trials
}
