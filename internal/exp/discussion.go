package exp

import (
	"fmt"

	"coregap/internal/sim"
	"coregap/internal/trace"
)

// This file declares the §6.1 discussion experiment: how would core
// gapping behave on Intel TDX? The architectural difference the paper
// calls out is page-table handling — "TDX uses separate secure and
// insecure page tables for confidential VMs, allowing the host to
// manipulate untrusted portions of guest address space without calling
// the firmware. By contrast, the RMM is invoked for all page table
// modifications; thus we might expect a core-gapped version of TDX to
// have moderately better relative performance, due to fewer cross-core
// RPCs."

// TDXResult compares the stage-2 maintenance cost of the two designs.
type TDXResult struct {
	Table *trace.Table
	// Per-operation cost of an *unprotected* (shared-memory) mapping
	// update under each architecture, and the total for the churn run.
	CCAPerOp sim.Duration
	TDXPerOp sim.Duration
	// RPCs issued per 1000 mixed operations.
	CCARPCs uint64
	TDXRPCs uint64
}

func tdxSpecs(ops int, sharedFrac float64, seed uint64) []ScenarioSpec {
	if ops <= 0 {
		ops = 10000
	}
	churn := func(tdxStyle bool) Workload {
		return Workload{Kind: WLPTChurn, Ops: ops, Frac: sharedFrac, TDXStyle: tdxStyle}
	}
	return []ScenarioSpec{
		{ID: "cca", Config: ConfigGapped, Cores: 2, Seed: seed, Workload: churn(false)},
		{ID: "tdx", Config: ConfigGapped, Cores: 2, Seed: seed, Workload: churn(true)},
	}
}

func reduceTDX(trials []Trial) TDXResult {
	var res TDXResult
	var ccaTotal, tdxTotal sim.Duration
	var ops int
	for _, t := range trials {
		ops = t.Spec.Workload.Ops
		switch t.Spec.ID {
		case "cca":
			ccaTotal = t.Dur("total.ns")
			res.CCARPCs = uint64(t.V("rpcs")) * 1000 / uint64(ops)
		case "tdx":
			tdxTotal = t.Dur("total.ns")
			res.TDXRPCs = uint64(t.V("rpcs")) * 1000 / uint64(ops)
		}
	}
	res.CCAPerOp = ccaTotal / sim.Duration(ops)
	res.TDXPerOp = tdxTotal / sim.Duration(ops)

	tb := trace.NewTable("§6.1", "Stage-2 maintenance under CCA vs TDX rules (core-gapped)",
		"per-op", "RPCs/1000 ops", "total")
	tb.AddRow("CCA (all updates via monitor)",
		res.CCAPerOp.String(), fmt.Sprintf("%d", res.CCARPCs), ccaTotal.String())
	tb.AddRow("TDX (host edits insecure EPT)",
		res.TDXPerOp.String(), fmt.Sprintf("%d", res.TDXRPCs), tdxTotal.String())
	res.Table = tb
	return res
}

// RunTDXComparison drives a memory-churn phase — `ops` mapping updates
// against a running CVM, with the given fraction targeting unprotected
// (shared) guest memory — under the two architectures' rules (see
// WLPTChurn).
func RunTDXComparison(ops int, sharedFrac float64, seed uint64) TDXResult {
	return reduceTDX(run(tdxSpecs(ops, sharedFrac, seed)))
}

// The §6.1 experiment, registered in paper order by register.go.
var expTDX = &Experiment{
	Name:  "tdx",
	Desc:  "Contrasts stage-2 page-table maintenance churn under CCA rules (every update is a cross-core RPC) with TDX-style host-owned insecure tables.",
	Title: "§6.1 discussion: stage-2 maintenance under CCA vs TDX rules",
	Paper: "paper §6.1: TDX-style host-owned insecure page tables need fewer cross-core RPCs",
	Specs: func(p Profile) []ScenarioSpec { return tdxSpecs(20000, 0.5, p.Seed) },
	Reduce: func(p Profile, trials []Trial) *Report {
		r := reduceTDX(trials)
		return &Report{Artifacts: []Artifact{{Name: "tdx", Item: r.Table}}}
	},
}
