package exp

import (
	"fmt"
	"sort"
	"time"

	"coregap/internal/trace"
)

// Artifact is one named output of an experiment: a reproduced paper
// table or figure, renderable as text and as CSV.
type Artifact struct {
	// Name is the artifact's file stem for CSV export (e.g. "fig8-latency").
	Name string
	// Item is the table or figure itself.
	Item interface {
		String() string
		CSV() string
	}
}

// Report is the reduced outcome of running one experiment: its artifacts
// in presentation order, extra headline lines (statistics the paper
// quotes in prose), and the per-trial results they were reduced from.
type Report struct {
	Experiment string
	Title      string
	Paper      string // the paper's published numbers, for side-by-side display
	Artifacts  []Artifact
	Lines      []string
	Trials     []Trial
	// Work is the summed host wall-clock of the experiment's trials:
	// aggregate worker time, not elapsed time, since trials of several
	// experiments interleave on the shared work-stealing pool.
	Work time.Duration
}

// Value reports the named value of the identified trial (0 when absent) —
// the generic accessor consumers use when they need one number out of a
// report rather than a whole artifact.
func (r *Report) Value(trialID, key string) float64 {
	for _, t := range r.Trials {
		if t.Spec.ID == trialID {
			return t.Values[key]
		}
	}
	return 0
}

// Metas collects the run metadata of every trial, in trial order.
func (r *Report) Metas() []trace.RunMeta {
	metas := make([]trace.RunMeta, len(r.Trials))
	for i, t := range r.Trials {
		metas[i] = t.Meta
	}
	return metas
}

// Experiment is one registered, named experiment: a declarative spec
// generator plus a pure reducer from the ordered trial results to the
// paper-shaped report.
type Experiment struct {
	// Name is the registry key (e.g. "table2", "fig6", "tdx").
	Name string
	// Title is the one-line description benchsuite prints.
	Title string
	// Desc explains what the experiment measures and how, in a sentence
	// or two — what coregapctl -list shows under each name.
	Desc string
	// Paper quotes the paper's published numbers for this artifact.
	Paper string
	// Specs generates the trial list for a profile. It must be pure: the
	// same profile always yields the same specs in the same order.
	Specs func(p Profile) []ScenarioSpec
	// Reduce folds the trial results (in Specs order) into the report.
	// It must depend only on the profile and the trials' Spec/Values/
	// Labels fields, never on wall-clock metadata.
	Reduce func(p Profile, trials []Trial) *Report
	// Stream, when non-nil, returns an incremental reducer for one run:
	// the runner feeds it completed trials in Specs order as workers
	// finish — releasing each trial's bulky buffers (Windows,
	// TraceEvents) as soon as it is consumed — and takes the report from
	// Finish instead of calling Reduce. A streamed run must produce a
	// report byte-identical to Reduce over the buffered trial list
	// (stream_test.go holds every registered experiment to this), so
	// Stream is purely a peak-memory optimisation: a sweep's trial
	// buffers die as the sweep progresses rather than accumulating until
	// the reduce barrier.
	Stream func(p Profile, specs []ScenarioSpec) Streamer
}

// Streamer is an incremental reducer: Consume folds one trial at a time,
// in spec order, and Finish produces the report after the last trial.
// Implementations should fold a trial's Windows and TraceEvents into
// their own state rather than retaining them: the runner drops its
// references after Consume returns, and anything the streamer keeps
// alive is peak memory the streaming exists to shed.
type Streamer interface {
	Consume(t Trial)
	Finish() *Report
}

// BufferStream wraps a batch reducer as a Streamer by accumulating the
// trials and reducing at Finish. It is the reference behaviour a real
// streaming reducer must reproduce byte-for-byte (it retains every
// trial, so it gives up streaming's memory win; tests use it as the
// golden side of the comparison).
type BufferStream struct {
	p      Profile
	reduce func(p Profile, trials []Trial) *Report
	trials []Trial
}

// NewBufferStream builds the buffering adapter around a batch reducer.
func NewBufferStream(p Profile, reduce func(Profile, []Trial) *Report) *BufferStream {
	return &BufferStream{p: p, reduce: reduce}
}

// Consume buffers one trial.
func (b *BufferStream) Consume(t Trial) { b.trials = append(b.trials, t) }

// Finish reduces the buffered trials.
func (b *BufferStream) Finish() *Report { return b.reduce(b.p, b.trials) }

var (
	registry = map[string]*Experiment{}
	order    []string
)

// Register adds an experiment to the registry. Duplicate names panic:
// they always indicate an init-time programming error.
func Register(e *Experiment) {
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("exp: duplicate experiment %q", e.Name))
	}
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Lookup resolves an experiment by name.
func Lookup(name string) (*Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names reports all registered experiment names in registration order
// (the paper's presentation order).
func Names() []string { return append([]string(nil), order...) }

// SortedNames reports all registered experiment names sorted.
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}

// Run executes the named experiment with the given runner (nil: default
// pool) and profile.
func Run(name string, p Profile, r *Runner) (*Report, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	return r.RunExperiment(e, p)
}
