package exp

// All eleven experiments of the paper's evaluation, registered in the
// paper's presentation order (the order benchsuite prints with -exp all),
// followed by the repo's open-loop extensions.
func init() {
	for _, e := range []*Experiment{
		expTable2,
		expTable3,
		expTable4,
		expTable5,
		expFig3,
		expFig6,
		expFig7,
		expFig8,
		expFig9,
		expTDX,
		expFig10,
		expOpenLoop,
		expOpenLoopBurst,
		expOpenLoopHi,
	} {
		Register(e)
	}
}
