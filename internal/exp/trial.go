package exp

import (
	"fmt"
	"time"

	"coregap/internal/attack"

	"coregap/internal/core"
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/rpc"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/uarch"
	"coregap/internal/vmm"
)

// Trial is the result of executing one ScenarioSpec: named scalar
// outcomes, optional string-valued outcomes, run metadata, and (for
// node-based workloads) the full metric set for ad-hoc inspection.
//
// Everything except Meta.Wall and Metrics is a pure function of the
// spec, which is what makes parallel execution bit-identical to serial.
type Trial struct {
	Spec   ScenarioSpec
	Values map[string]float64
	Labels map[string][]string
	Meta   trace.RunMeta
	// Windows holds the closed per-window latency summaries of every
	// windowed metric, keyed by metric name, when the spec set a
	// MetricsWindow. The stats are copied out of the (possibly pooled)
	// metric set at trial finish, so they stay valid after the worker's
	// context is recycled. Like Values, they are a pure function of the
	// spec: windows live on the absolute simulated-time grid.
	Windows map[string][]trace.WindowStat
	// Metrics is the node's full metric set, nil for raw-transport
	// trials. Reducers must not depend on it; it exists for workbench
	// consumers (cmd/coregapctl -v). Only fresh-context execution
	// (Execute, or a Runner with Fresh set) populates it: under pooled
	// execution the set belongs to the worker's reusable TrialContext
	// and is recycled by the next trial, so ExecuteIn leaves it nil
	// rather than handing out state that will be rewound underneath
	// the caller.
	Metrics *trace.Set
	// Counters is the trial's engine counter bank — every cross-subsystem
	// perf counter (world switches, IPIs, SMC calls, …) that fired, by
	// name. Copied out of the (possibly pooled) engine at trial finish.
	// Reducers must not depend on it: it is diagnostic, not artifact.
	Counters map[string]uint64
	// TraceEvents is the trial's captured sim-time trace, chronological,
	// populated only when Spec.Trace was set. Like Counters it is copied
	// out before the pooled engine is recycled.
	TraceEvents []sim.TraceEvent
}

// V reports the named value (0 when absent).
func (t Trial) V(key string) float64 { return t.Values[key] }

// Dur reports the named value as a simulated duration.
func (t Trial) Dur(key string) sim.Duration { return sim.Duration(t.Values[key]) }

// Execute runs one scenario on a private, freshly allocated simulation
// engine and reduces it to a Trial. A modelling failure (workload
// stuck, horizon exceeded) is returned as an error, never a panic, so a
// parallel runner can surface it with the trial's identity attached.
func Execute(spec ScenarioSpec) (Trial, error) { return ExecuteIn(nil, spec) }

// ExecuteIn is Execute running inside a worker's pooled TrialContext:
// the scenario is rebuilt on the context's rewound engine/machine
// instead of allocating a new object graph. A nil context falls back to
// fresh construction. For any spec, pooled and fresh execution return
// byte-identical trials (Metrics aside, see Trial); the runner's
// determinism guarantee rests on that equivalence, which
// TestPooledExecuteDeterminism enforces end to end.
func ExecuteIn(ctx *TrialContext, spec ScenarioSpec) (t Trial, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trial %s [%s]: %v", spec.ID, spec.Config, r)
		}
	}()
	t = Trial{
		Spec:   spec,
		Values: make(map[string]float64),
		Labels: make(map[string][]string),
		Meta: trace.RunMeta{
			Trial:  spec.ID,
			Config: string(spec.Config),
			Seed:   spec.Seed,
		},
	}
	start := time.Now()
	switch spec.Workload.Kind {
	case WLCoreMark:
		err = t.runCoreMark(ctx, spec)
	case WLCoreMarkPro:
		err = t.runCoreMarkPro(ctx, spec)
	case WLIPIBench:
		err = t.runIPIBench(ctx, spec)
	case WLNetPIPE:
		err = t.runNetPIPE(ctx, spec)
	case WLIOzone:
		err = t.runIOzone(ctx, spec)
	case WLRedis:
		err = t.runRedis(ctx, spec)
	case WLOpenLoop:
		err = t.runOpenLoop(ctx, spec)
	case WLKBuild:
		err = t.runKBuild(ctx, spec)
	case WLNullRMMAsync:
		err = t.runNullAsync(ctx, spec)
	case WLNullRMMSync:
		err = t.runNullSync(ctx, spec)
	case WLNullRMMSameCore:
		err = t.runNullSameCore(ctx, spec)
	case WLBattery:
		err = t.runBattery(ctx, spec)
	case WLPTChurn:
		err = t.runPTChurn(ctx, spec)
	default:
		err = fmt.Errorf("trial %s: unknown workload kind %q", spec.ID, spec.Workload.Kind)
	}
	t.Meta.Wall = time.Since(start)
	if err != nil {
		return t, fmt.Errorf("trial %s [%s]: %w", spec.ID, spec.Config, err)
	}
	return t, nil
}

// newNode builds the trial's machine — inside the pooled context when
// one is supplied — and retains the metric set only for fresh nodes.
func (t *Trial) newNode(ctx *TrialContext, spec ScenarioSpec) *core.Node {
	n := ctx.node(spec)
	if ctx == nil {
		t.Metrics = n.Met
	}
	traceOn(n.Eng, spec)
	return n
}

// traceOn arms the engine's flight recorder when the spec asks for it.
// Pooled engines come back from Reset with tracing detached, so this is
// the single place a trial's trace state is decided.
func traceOn(eng *sim.Engine, spec ScenarioSpec) {
	if spec.Trace {
		eng.EnableTracing(0)
	}
}

// captureObs copies the engine's counter bank — and, when tracing was
// armed, its event buffer — into the trial. It must run before the
// worker's pooled context is recycled by the next trial.
func (t *Trial) captureObs(eng *sim.Engine) {
	eng.Counters(func(name string, v uint64) {
		if t.Counters == nil {
			t.Counters = make(map[string]uint64)
		}
		t.Counters[name] = v
	})
	if tr := eng.Trace(); tr != nil {
		t.TraceEvents = tr.Events(nil)
	}
}

// finishNode captures engine statistics, the standard per-VM counters,
// and — when the trial ran with a metrics window — the closed window
// summaries of every windowed metric.
func (t *Trial) finishNode(n *core.Node) {
	t.Meta.Simulated = sim.Duration(n.Eng.Now())
	t.Meta.Events = n.Eng.EventsFired()
	if names := n.Met.WindowedNames(); len(names) > 0 {
		t.Windows = make(map[string][]trace.WindowStat, len(names))
		for _, name := range names {
			w := n.Met.Windowed(name)
			w.Flush(n.Eng.Now())
			t.Windows[name] = append([]trace.WindowStat(nil), w.Stats()...)
		}
	}
	if n.Met.HasCounter("vm0.exits.total") {
		t.Values["exits.total"] = float64(n.Met.Counter("vm0.exits.total").Value())
		t.Values["exits.interrupt"] = float64(n.Met.Counter("vm0.exits.interrupt").Value())
	}
	if len(n.VMs()) > 0 && n.Opts.Mode == core.Gapped {
		vm := n.VMs()[0]
		if tok, err := n.Mon.Token(vm.Realm(), [32]byte{1}); err == nil {
			t.Values["attest.coregapped"] = b2f(tok.CoreGapped)
			t.Labels["attest.rim"] = []string{tok.RIM.String()}
		}
	}
	t.captureObs(n.Eng)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func horizonOr(spec ScenarioSpec, def sim.Duration) sim.Duration {
	if spec.Horizon > 0 {
		return spec.Horizon
	}
	return def
}

// runCoreMark boots Workload.VMs CoreMark-PRO guests of VCPUs vCPUs each
// and reports the aggregate score plus the §5.2 run-to-run statistics.
func (t *Trial) runCoreMark(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	vms := w.VMs
	if vms <= 0 {
		vms = 1
	}
	n := t.newNode(ctx, spec)
	marks := make([]*guest.CoreMark, vms)
	for i := 0; i < vms; i++ {
		marks[i] = guest.NewCoreMark(w.VCPUs, w.Work)
		if _, err := n.NewVM(fmt.Sprintf("vm%d", i), w.VCPUs, marks[i]); err != nil {
			return fmt.Errorf("coremark setup: %w", err)
		}
	}
	end := n.RunUntilAllHalted(horizonOr(spec, sim.Duration(200)*w.Work))
	agg := 0.0
	for i, cm := range marks {
		if !cm.Done() {
			return fmt.Errorf("coremark vm%d did not finish within the horizon", i)
		}
		agg += cm.Score(sim.Duration(end))
	}
	t.Values["score"] = agg
	if h := n.Met.Hist("vm0.runtorun"); h.Count() > 0 {
		t.Values["runtorun.count"] = float64(h.Count())
		t.Values["runtorun.mean.ns"] = float64(h.Mean())
		t.Values["runtorun.stddev.ns"] = float64(h.Stddev())
	}
	t.finishNode(n)
	return nil
}

// runCoreMarkPro runs the per-phase CoreMark-PRO harness (geomean mark).
func (t *Trial) runCoreMarkPro(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	cmp := guest.NewCoreMarkPro(w.VCPUs, w.Work, func() sim.Time { return n.Eng.Now() })
	if _, err := n.NewVM("vm0", w.VCPUs, cmp); err != nil {
		return err
	}
	n.RunUntilAllHalted(horizonOr(spec, sim.Duration(400)*w.Work))
	t.Values["mark"] = cmp.Mark()
	for name, score := range cmp.PhaseScores() {
		t.Values["phase."+name] = score
	}
	t.finishNode(n)
	return nil
}

// runIPIBench runs the two-vCPU IPI ping-pong and reports vIPI latency.
func (t *Trial) runIPIBench(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	b := guest.NewIPIBench(w.Rounds)
	if _, err := n.NewVM("vm0", 2, b); err != nil {
		return err
	}
	n.RunUntilAllHalted(horizonOr(spec, 30*sim.Second))
	h := n.Met.Hist("vm0.vipi.latency")
	if h.Count() == 0 {
		return fmt.Errorf("ipibench delivered no vIPIs")
	}
	t.Values["vipi.count"] = float64(h.Count())
	t.Values["vipi.mean.ns"] = float64(h.Mean())
	t.Values["vipi.p99.ns"] = float64(h.Percentile(99))
	t.finishNode(n)
	return nil
}

// runNetPIPE runs one NetPIPE ping-pong configuration and reports the
// mean round-trip time.
func (t *Trial) runNetPIPE(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	np := guest.NewNetPIPE(w.Dev, w.Bytes, w.Rounds)
	vm, err := n.NewVM("vm0", 1, np)
	if err != nil {
		return err
	}
	peer := vmm.NewPeer(n.Eng, vm.VMM.Costs(), n.Met)
	pp := vmm.NewPingPong(peer, w.Bytes, w.Rounds, "netpipe.rtt", nil)
	switch w.Dev {
	case guest.VirtioNet:
		peer.Connect(vm.VMM.Net.DeliverToGuest)
		vm.VMM.Net.ConnectPeer(pp.OnEcho)
	default:
		peer.Connect(vm.VMM.VF.DeliverToGuest)
		vm.VMM.VF.ConnectPeer(pp.OnEcho)
	}
	// Let the VM boot (hotplug handoff takes ~2 ms) before load starts.
	n.Eng.After(5*sim.Millisecond, "start-netpipe", pp.Start)
	n.RunUntilAllHalted(horizonOr(spec, 120*sim.Second))
	// The guest halts after transmitting its final echo; drain the wire
	// so the client sees it.
	n.Eng.RunFor(5 * sim.Millisecond)
	if pp.Done() < w.Rounds {
		return fmt.Errorf("netpipe: only %d/%d rounds (%v %dB)", pp.Done(), w.Rounds, w.Dev, w.Bytes)
	}
	t.Values["rtt.ns"] = float64(n.Met.Hist("netpipe.rtt").Mean())
	t.finishNode(n)
	return nil
}

// runIOzone runs the synchronous O_DIRECT workload against virtio-blk.
func (t *Trial) runIOzone(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	z := guest.NewIOzone(w.Bytes, w.Write, w.Total)
	if _, err := n.NewVM("vm0", 1, z); err != nil {
		return err
	}
	startT := n.Eng.Now()
	end := n.RunUntilAllHalted(horizonOr(spec, 600*sim.Second))
	if z.Moved() < w.Total {
		return fmt.Errorf("iozone stalled: %d/%d bytes (record %d)", z.Moved(), w.Total, w.Bytes)
	}
	t.Values["mibs"] = z.Throughput(end.Sub(startT))
	t.finishNode(n)
	return nil
}

// runRedis drives the closed-loop Redis load: boot, 100 ms warm-up, then
// a steady-state measurement window. Latency percentiles cover the whole
// run (the warm-up is a small fraction of the window and biases all
// configurations identically).
func (t *Trial) runRedis(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	r := guest.NewRedis(w.Dev)
	vm, err := n.NewVM("vm0", w.VCPUs, r)
	if err != nil {
		return err
	}
	peer := vmm.NewPeer(n.Eng, vm.VMM.Costs(), n.Met)
	peer.Connect(vm.VMM.VF.DeliverToGuest)
	lg := vmm.NewLoadGen(peer, w.Clients, w.Bytes,
		func(c int) int { return guest.EncodeOpTag(w.Op, c) }, "redis.latency")
	vm.VMM.VF.ConnectPeer(lg.OnResponse)

	n.Eng.After(5*sim.Millisecond, "start-load", lg.Start)
	n.Eng.RunUntil(sim.Time(105 * sim.Millisecond))
	warmupServed := lg.Served()
	n.Eng.RunUntil(sim.Time(105*sim.Millisecond + w.Window))
	served := lg.Served() - warmupServed
	lg.Stop()

	hist := n.Met.Hist("redis.latency")
	t.Values["krps"] = float64(served) / w.Window.Seconds() / 1000
	t.Values["lat.mean.ns"] = float64(hist.Mean())
	t.Values["lat.p95.ns"] = float64(hist.Percentile(95))
	t.Values["lat.p99.ns"] = float64(hist.Percentile(99))
	t.finishNode(n)
	return nil
}

// runKBuild runs the parallel kernel build and reports its wall time.
func (t *Trial) runKBuild(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	n := t.newNode(ctx, spec)
	kb := guest.NewKBuild(w.Jobs, w.VCPUs, 250*sim.Millisecond, n.Eng.Source("kbuild"))
	if _, err := n.NewVM("vm0", w.VCPUs, kb); err != nil {
		return err
	}
	end := n.RunUntilAllHalted(horizonOr(spec, 3600*sim.Second))
	if kb.Finished() < w.Jobs {
		return fmt.Errorf("kbuild incomplete: %d/%d jobs", kb.Finished(), w.Jobs)
	}
	t.Values["build.ns"] = float64(end)
	t.finishNode(n)
	return nil
}

// runNullAsync measures the full Fig. 4 asynchronous null-call path:
// mailbox post, RMM pickup on the remote core, completion, exit IPI,
// wake-up thread scan, vCPU thread wake.
func (t *Trial) runNullAsync(ctx *TrialContext, spec ScenarioSpec) error {
	p := core.DefaultParams()
	rounds := spec.Workload.Rounds
	parts := ctx.kernelParts(2, spec.Seed)
	eng, mach := parts.Eng, parts.Mach
	traceOn(eng, spec)
	kern := host.NewKernel(parts.Mach, parts.Dist, parts.Met)
	mb := rpc.NewMailbox(eng, "null")
	hist := trace.AcquireHist("null.async")
	defer trace.ReleaseHist(hist)

	hostCore, rmmCore := hw.CoreID(0), hw.CoreID(1)
	// The RMM side: a polling loop on the dedicated core that answers
	// null calls immediately and raises the exit IPI.
	rmmPickup := func() {
		eng.After(p.Transport.PickupLatency(), "pickup", func() {
			if _, ok := mb.TryTake(); ok {
				mb.Complete("null-return", p.Transport.Prop)
				mach.SendIPI(rmmCore, hostCore, hw.IPIGuestExit)
			}
		})
	}
	caller := kern.NewThread("vcpu-null", host.ClassFIFO, hostCore)
	wakeup := kern.NewThread("wakeup", host.ClassFIFO, hostCore)
	var postedAt sim.Time
	done := 0
	var post func()
	post = func() {
		postedAt = eng.Now()
		mb.Post("null-call", p.Transport.Prop)
		rmmPickup()
	}
	kern.RegisterIRQ(hw.IPIGuestExit, func(c hw.CoreID) {
		kern.Submit(wakeup, "scan", p.SchedWake+p.WakeupScan, func() {
			if _, ok := mb.TryResponse(); !ok {
				return
			}
			// Wake the blocked caller (Fig. 4 step 5); the call returns
			// in its context.
			kern.Submit(caller, "return", p.SchedWake, func() {
				hist.Observe(eng.Now().Sub(postedAt))
				done++
				if done < rounds {
					post()
				}
			})
		})
	})
	post()
	eng.Run()
	if hist.Count() < rounds {
		return fmt.Errorf("async null calls stalled at %d/%d", hist.Count(), rounds)
	}
	t.Values["ns"] = float64(hist.Mean())
	t.Meta.Simulated = sim.Duration(eng.Now())
	t.Meta.Events = eng.EventsFired()
	t.captureObs(eng)
	return nil
}

// runNullSync measures the busy-wait synchronous mailbox round trip.
func (t *Trial) runNullSync(ctx *TrialContext, spec ScenarioSpec) error {
	p := core.DefaultParams()
	rounds := spec.Workload.Rounds
	eng := ctx.engine(2, spec.Seed)
	traceOn(eng, spec)
	mb := rpc.NewMailbox(eng, "sync")
	hist := trace.AcquireHist("null.sync")
	defer trace.ReleaseHist(hist)
	done := 0
	var post func()
	post = func() {
		start := eng.Now()
		mb.Post("call", p.Transport.Prop)
		eng.After(p.Transport.PickupLatency(), "pickup", func() {
			if _, ok := mb.TryTake(); ok {
				mb.Complete("ret", p.Transport.Prop)
				eng.After(p.Transport.PickupLatency(), "resp", func() {
					if _, ok := mb.TryResponse(); ok {
						hist.Observe(eng.Now().Sub(start))
						done++
						if done < rounds {
							post()
						}
					}
				})
			}
		})
	}
	post()
	eng.Run()
	if hist.Count() < rounds {
		return fmt.Errorf("sync null calls stalled at %d/%d", hist.Count(), rounds)
	}
	t.Values["ns"] = float64(hist.Mean())
	t.Meta.Simulated = sim.Duration(eng.Now())
	t.Meta.Events = eng.EventsFired()
	t.captureObs(eng)
	return nil
}

// runNullSameCore computes the same-core EL3 null-call component: two
// world switches plus the deployed transient-execution mitigation
// flushes — the paper's >12.8 µs lower bound.
func (t *Trial) runNullSameCore(ctx *TrialContext, spec ScenarioSpec) error {
	p := core.DefaultParams()
	eng, mach := ctx.machine(1, spec.Seed)
	traceOn(eng, spec)
	costs := uarch.DefaultFlushCosts()
	c := mach.Core(0)
	// Host side traps to EL3: mitigation flush, then the world switch in.
	c.RecordExecution(uarch.DomainHost, 0.5, 0)
	flushIn := c.FlushMitigations(costs)
	swIn := c.SwitchWorld(hw.RealmWorld)
	// Monitor services the call, flushes on the way out, switches back.
	c.RecordExecution(uarch.DomainMonitor, 0.3, 0)
	flushOut := c.FlushMitigations(costs)
	swOut := c.SwitchWorld(hw.NormalWorld)
	t.Values["ns"] = float64(flushIn + flushOut + swIn + swOut + p.EL3Dispatch)
	t.captureObs(eng)
	return nil
}

// runBattery runs the transient-execution attack battery under the
// spec's scheduling and records which vulnerabilities leaked.
func (t *Trial) runBattery(ctx *TrialContext, spec ScenarioSpec) error {
	eng, mach := ctx.machine(2, spec.Seed)
	traceOn(eng, spec)
	h := attack.NewHarnessOn(eng, mach, spec.Config.Options().PartitionLLC)
	res := h.RunBattery(spec.Workload.Sched)
	leaks := res.LeakedVulns()
	t.Values["leaks"] = float64(len(leaks))
	t.Labels["leaks"] = leaks
	t.captureObs(eng)
	return nil
}

// runPTChurn drives the §6.1 stage-2 maintenance churn: Ops mapping
// updates with Frac of them to unprotected (shared) memory, under CCA
// rules (every update is a cross-core RPC) or TDX rules (unprotected
// updates edit the host-owned insecure table locally).
func (t *Trial) runPTChurn(ctx *TrialContext, spec ScenarioSpec) error {
	w := spec.Workload
	p := core.DefaultParams()
	eng := ctx.engine(2, spec.Seed)
	traceOn(eng, spec)
	src := eng.Source("churn")
	mb := rpc.NewMailbox(eng, "rtt")
	var rpcs uint64
	var done int
	var next func()
	next = func() {
		if done >= w.Ops {
			return
		}
		done++
		shared := src.Float64() < w.Frac
		if w.TDXStyle && shared {
			// Host edits its own EPT: purely local.
			eng.After(hostPTEUpdate, "ept-update", next)
			return
		}
		// Synchronous RPC to the monitor on the dedicated core.
		rpcs++
		mb.Post("rtt-op", p.Transport.Prop)
		eng.After(p.Transport.PickupLatency(), "rtt-pickup", func() {
			if _, ok := mb.TryTake(); !ok {
				return
			}
			eng.After(monitorRTTWork, "rtt-work", func() {
				mb.Complete("ok", p.Transport.Prop)
				eng.After(p.Transport.PickupLatency(), "rtt-resp", func() {
					if _, ok := mb.TryResponse(); ok {
						next()
					}
				})
			})
		})
	}
	next()
	eng.Run()
	if done < w.Ops {
		return fmt.Errorf("ptchurn stalled at %d/%d ops", done, w.Ops)
	}
	t.Values["total.ns"] = float64(eng.Now())
	t.Values["perop.ns"] = float64(eng.Now()) / float64(w.Ops)
	t.Values["rpcs"] = float64(rpcs)
	t.Meta.Simulated = sim.Duration(eng.Now())
	t.Meta.Events = eng.EventsFired()
	t.captureObs(eng)
	return nil
}

// hostPTEUpdate is the host's local cost to edit its own (insecure) EPT.
const hostPTEUpdate = 90 * sim.Nanosecond

// monitorRTTWork is the monitor's validation+update work per RTT call.
const monitorRTTWork = 120 * sim.Nanosecond
