// Package exp is the declarative experiment layer on top of the core
// simulation stack.
//
// It splits every experiment of the paper's evaluation (§5, Tables 2–5,
// Figs. 3–10, the §6.1 discussion) into three pieces:
//
//   - a ScenarioSpec generator: a pure function from an experiment
//     Profile (root seed, reduced/full sweep) to the list of independent
//     trials — each spec names its configuration (shared-core baseline,
//     core-gapped default, the busy-wait/no-delegation ablations), the
//     machine shape, the workload and its parameters, the seed and the
//     simulation horizon;
//   - a trial interpreter (Execute): runs one ScenarioSpec on its own
//     private simulation engine and reduces it to named scalar values
//     plus run metadata — no state is shared between trials, so any
//     number of them may run concurrently;
//   - a pure reducer: folds the ordered trial results back into the
//     paper-shaped tables and figures.
//
// The Runner executes trial lists on a worker pool; because every trial
// owns its engine and is seeded from its spec alone, results are
// bit-identical to serial execution regardless of scheduling. The
// Registry makes every experiment discoverable by name (see registry.go);
// cmd/benchsuite, cmd/coregapctl, bench_test.go and the examples all
// drive it rather than calling experiment code directly.
package exp

import (
	"fmt"

	"coregap/internal/attack"
	"coregap/internal/core"
	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/vmm"
)

// Config names one of the execution policies the evaluation sweeps. It is
// the declarative counterpart of core.Options.
type Config string

// The five configurations used across the paper's experiments.
const (
	// ConfigBaseline is the traditional shared-core VM (§5.1).
	ConfigBaseline Config = "baseline"
	// ConfigGapped is the full core-gapping design: dedicated cores,
	// asynchronous RPC exits, delegated interrupt management.
	ConfigGapped Config = "gapped"
	// ConfigGappedNoDeleg is the Table 3/4 ablation without interrupt
	// delegation.
	ConfigGappedNoDeleg Config = "gapped-nodeleg"
	// ConfigGappedBusyWait is the Quarantine-style yield-polling ablation
	// (Fig. 6), without delegation.
	ConfigGappedBusyWait Config = "gapped-busywait"
	// ConfigGappedBusyWaitDeleg is busy-wait polling with interrupt
	// delegation enabled (Fig. 6's second cyan line).
	ConfigGappedBusyWaitDeleg Config = "gapped-busywait-deleg"
)

// Options maps the declarative config name to the core execution policy.
func (c Config) Options() core.Options {
	switch c {
	case ConfigBaseline:
		return core.Baseline()
	case ConfigGapped:
		return core.GappedDefault()
	case ConfigGappedNoDeleg:
		return core.GappedNoDelegation()
	case ConfigGappedBusyWait:
		return core.GappedBusyWait()
	case ConfigGappedBusyWaitDeleg:
		o := core.GappedBusyWait()
		o.DelegateTimer, o.DelegateVIPI = true, true
		return o
	}
	panic(fmt.Sprintf("exp: unknown config %q", c))
}

// ParseConfig resolves a config name, accepting the short aliases used on
// command lines (shared, gapped, nodeleg, busywait).
func ParseConfig(s string) (Config, error) {
	switch s {
	case string(ConfigBaseline), "shared", "shared-core":
		return ConfigBaseline, nil
	case string(ConfigGapped), "core-gapped":
		return ConfigGapped, nil
	case string(ConfigGappedNoDeleg), "nodeleg":
		return ConfigGappedNoDeleg, nil
	case string(ConfigGappedBusyWait), "busywait":
		return ConfigGappedBusyWait, nil
	case string(ConfigGappedBusyWaitDeleg), "busywait-deleg":
		return ConfigGappedBusyWaitDeleg, nil
	}
	return "", fmt.Errorf("unknown config %q", s)
}

// WorkloadKind names what a trial runs.
type WorkloadKind string

// Workload kinds. The first group builds a full Node and boots one or
// more VMs; the second drives the transport/attack machinery directly
// (Table 2, Fig. 3's battery, the §6.1 churn).
const (
	// WLCoreMark: VMs × VCPUs CoreMark-PRO guests, Work per vCPU.
	WLCoreMark WorkloadKind = "coremark"
	// WLCoreMarkPro: the per-phase CoreMark-PRO harness (geomean mark).
	WLCoreMarkPro WorkloadKind = "coremarkpro"
	// WLIPIBench: two-vCPU IPI ping-pong, Rounds round trips.
	WLIPIBench WorkloadKind = "ipibench"
	// WLNetPIPE: ping-pong of Bytes-sized messages over Dev, Rounds times.
	WLNetPIPE WorkloadKind = "netpipe"
	// WLIOzone: synchronous O_DIRECT I/O, Bytes record size, Total bytes.
	WLIOzone WorkloadKind = "iozone"
	// WLRedis: closed-loop Clients load of Op requests for Window.
	WLRedis WorkloadKind = "redis"
	// WLOpenLoop: open-loop Rate req/s of Op requests (Arrival process)
	// for Window, with per-window SLO tails and collapse detection.
	WLOpenLoop WorkloadKind = "openloop"
	// WLKBuild: parallel kernel build, Jobs jobs on VCPUs vCPUs.
	WLKBuild WorkloadKind = "kbuild"

	// WLNullRMMAsync: Fig. 4 asynchronous null RMM call round trips.
	WLNullRMMAsync WorkloadKind = "nullrmm-async"
	// WLNullRMMSync: busy-wait synchronous null call round trips.
	WLNullRMMSync WorkloadKind = "nullrmm-sync"
	// WLNullRMMSameCore: the same-core EL3 component (world switches plus
	// transient-execution mitigation flushes) — a modelled lower bound.
	WLNullRMMSameCore WorkloadKind = "nullrmm-samecore"
	// WLBattery: the full transient-execution attack battery under Sched.
	WLBattery WorkloadKind = "battery"
	// WLPTChurn: Ops stage-2 updates, Frac of them to unprotected memory,
	// under CCA rules or (TDXStyle) host-owned insecure page tables.
	WLPTChurn WorkloadKind = "ptchurn"
)

// Workload is the declarative description of what one trial runs. Only
// the fields relevant to Kind are consulted; see the kind comments.
type Workload struct {
	Kind  WorkloadKind
	VCPUs int          // guest vCPUs per VM
	VMs   int          // VM count (0 = 1)
	Work  sim.Duration // compute per vCPU (coremark kinds)

	Bytes  int               // message/record/request size
	Total  int64             // total bytes (iozone)
	Rounds int               // round trips (netpipe, ipibench, nullrmm)
	Jobs   int               // compile jobs (kbuild)
	Dev    guest.DeviceClass // NIC/disk class (netpipe, redis)

	Op      guest.RedisOp // redis operation
	Clients int           // closed-loop clients (redis) / connection pool (openloop)
	Window  sim.Duration  // measurement window (redis, openloop)
	Write   bool          // write instead of read (iozone)

	Rate    float64         // offered req/s (openloop)
	Arrival vmm.ArrivalKind // arrival process (openloop)
	SLO     sim.Duration    // per-window p99 target (openloop)

	Ops      int               // stage-2 updates (ptchurn)
	Frac     float64           // unprotected fraction (ptchurn)
	TDXStyle bool              // host-owned insecure tables (ptchurn)
	Sched    attack.Scheduling // battery scheduling
}

// ScenarioSpec is one fully-described, independently-executable trial.
type ScenarioSpec struct {
	// ID identifies the trial within its experiment (unique there).
	ID string
	// Config selects the execution policy.
	Config Config
	// Cores is the physical core count of the simulated machine.
	Cores int
	// Workload is what runs on it.
	Workload Workload
	// Seed seeds the trial's private simulation engine.
	Seed uint64
	// Horizon bounds simulated time; 0 picks a kind-appropriate default.
	Horizon sim.Duration
	// MetricsWindow, when non-zero, rolls every latency metric over
	// fixed simulated-time windows of this width; the interpreter
	// publishes the closed windows in Trial.Windows. Zero keeps the
	// whole-run histograms only.
	MetricsWindow sim.Duration
	// Trace arms the engine's sim-time flight recorder for this trial;
	// the captured events come back in Trial.TraceEvents. Off by
	// default: tracing costs a ring-buffer write per event, and the
	// zero-allocation engine gates assume the disabled fast path.
	Trace bool

	// BootKey, when non-empty, declares that every trial carrying an
	// equal key (within the same Config and Cores) performs an identical
	// guest boot sequence — same VM names, vCPU counts and order — so
	// pooled workers may fork later trials from a cached boot snapshot
	// instead of replaying realm construction. The fork is
	// observationally identical to a full boot; generators set the key
	// only on sweeps whose trials provably share their boot, and leave
	// it empty when in doubt. Ignored for traced trials and fresh
	// (unpooled) execution.
	BootKey string

	// Series/X place the trial's results on a figure: reducers group by
	// Series label and plot at coordinate X. Unused by table reducers.
	Series string
	X      float64
}

// bootKey names a boot shape: vms guests of vcpus vCPUs each, booted in
// NewVM order under the standard vm0..vmN-1 names. Together with the
// Config and Cores the trial context appends to the key, this fully
// determines a gapped boot sequence — the workload program never runs
// until after boot capture, so it is deliberately absent. Generators
// attach the result as ScenarioSpec.BootKey on sweeps whose trials
// share their boot.
func bootKey(vms, vcpus int) string {
	if vms <= 0 {
		vms = 1
	}
	return fmt.Sprintf("vms=%d,vcpus=%d", vms, vcpus)
}

// Profile parameterizes spec generation: the root seed every trial seed
// derives from, and whether to build the paper-sized (Full) or reduced
// sweep.
type Profile struct {
	Seed uint64
	Full bool
}
