package exp

import (
	"fmt"

	"coregap/internal/core"
	"coregap/internal/hw"
	"coregap/internal/sim"
)

// snapshotForking gates boot-snapshot forking process-wide (the
// benchsuite -snapshot flag). On by default; generators opt individual
// sweeps in via ScenarioSpec.BootKey. Not safe to flip mid-run.
var snapshotForking = true

// SetSnapshotForking enables or disables boot-snapshot forking for
// subsequent trials. Call before starting a run.
func SetSnapshotForking(on bool) { snapshotForking = on }

// SnapshotForking reports whether boot-snapshot forking is enabled.
func SnapshotForking() bool { return snapshotForking }

// TrialContext is one worker's warmed simulation substrate, reused
// across every trial that worker executes. It wraps a core.Context —
// engine (event heap, node free list, named sources), machine (per-core
// microarchitectural buffers, the multi-megabyte granule table, shared
// socket state), interrupt distributor and metric set — and rewinds it
// per trial instead of rebuilding the object graph.
//
// Construction of that graph, not simulation, dominated the parallel
// suite before pooling (the granule table alone was ~79% of all bytes
// allocated); with one TrialContext per worker the steady-state trial
// allocates only its thin per-trial stack (kernel, monitor, VMs,
// result maps).
//
// A TrialContext is not safe for concurrent use; the Runner hands each
// worker goroutine its own. Determinism is unaffected: every Reset
// leaves the context observationally identical to freshly constructed
// components, so ExecuteIn(ctx, spec) and Execute(spec) return
// byte-identical trials.
type TrialContext struct {
	core *core.Context
	// boots caches boot snapshots across this worker's trials, keyed by
	// ScenarioSpec.BootKey (plus config and core count); trials sharing
	// a key fork their guest boots instead of replaying realm
	// construction. Lazily built on the first keyed trial.
	boots *core.BootCache
}

// NewTrialContext returns a context ready for any sequence of specs.
func NewTrialContext() *TrialContext {
	return &TrialContext{core: core.NewContext()}
}

// node resets the context for spec and boots a node on it. A nil
// context (fresh-execution mode) builds everything from scratch,
// which is the reference behaviour pooling must reproduce exactly.
func (c *TrialContext) node(spec ScenarioSpec) *core.Node {
	opts := spec.Config.Options()
	opts.MetricsWindow = spec.MetricsWindow
	if c == nil {
		return core.NewNode(spec.Cores, opts, core.DefaultParams(), spec.Seed)
	}
	c.core.Reset(spec.Cores, spec.Seed)
	n := core.NewNodeIn(c.core, opts, core.DefaultParams())
	// Arm boot-snapshot forking for keyed, untraced trials. Traced
	// trials must replay the full boot — the granule-protocol trace
	// events of a forked boot would otherwise vanish from the capture.
	if spec.BootKey != "" && !spec.Trace && snapshotForking {
		if c.boots == nil {
			c.boots = core.NewBootCache()
		}
		n.UseBootCache(c.boots, fmt.Sprintf("%s|%s|%d", spec.BootKey, spec.Config, spec.Cores))
	}
	return n
}

// engine resets the context to a cores-core machine for seed and
// returns its engine (raw-transport trials that never boot a node).
func (c *TrialContext) engine(cores int, seed uint64) *sim.Engine {
	if c == nil {
		return sim.NewEngine(seed)
	}
	c.core.Reset(cores, seed)
	return c.core.Eng
}

// machine is engine plus the machine itself, for trials that drive
// hardware directly (the null-call paths, the attack battery).
func (c *TrialContext) machine(cores int, seed uint64) (*sim.Engine, *hw.Machine) {
	if c == nil {
		eng := sim.NewEngine(seed)
		return eng, hw.NewMachine(eng, hw.DefaultConfig(cores))
	}
	c.core.Reset(cores, seed)
	return c.core.Eng, c.core.Mach
}

// kernelParts is machine plus the pooled distributor and metric set,
// for raw-transport trials that build a bare host kernel.
func (c *TrialContext) kernelParts(cores int, seed uint64) *core.Context {
	if c == nil {
		ctx := core.NewContext()
		ctx.Reset(cores, seed)
		return ctx
	}
	c.core.Reset(cores, seed)
	return c.core
}
