package exp

import (
	"coregap/internal/core"
	"coregap/internal/hw"
	"coregap/internal/sim"
)

// TrialContext is one worker's warmed simulation substrate, reused
// across every trial that worker executes. It wraps a core.Context —
// engine (event heap, node free list, named sources), machine (per-core
// microarchitectural buffers, the multi-megabyte granule table, shared
// socket state), interrupt distributor and metric set — and rewinds it
// per trial instead of rebuilding the object graph.
//
// Construction of that graph, not simulation, dominated the parallel
// suite before pooling (the granule table alone was ~79% of all bytes
// allocated); with one TrialContext per worker the steady-state trial
// allocates only its thin per-trial stack (kernel, monitor, VMs,
// result maps).
//
// A TrialContext is not safe for concurrent use; the Runner hands each
// worker goroutine its own. Determinism is unaffected: every Reset
// leaves the context observationally identical to freshly constructed
// components, so ExecuteIn(ctx, spec) and Execute(spec) return
// byte-identical trials.
type TrialContext struct {
	core *core.Context
}

// NewTrialContext returns a context ready for any sequence of specs.
func NewTrialContext() *TrialContext {
	return &TrialContext{core: core.NewContext()}
}

// node resets the context for spec and boots a node on it. A nil
// context (fresh-execution mode) builds everything from scratch,
// which is the reference behaviour pooling must reproduce exactly.
func (c *TrialContext) node(spec ScenarioSpec) *core.Node {
	opts := spec.Config.Options()
	opts.MetricsWindow = spec.MetricsWindow
	if c == nil {
		return core.NewNode(spec.Cores, opts, core.DefaultParams(), spec.Seed)
	}
	c.core.Reset(spec.Cores, spec.Seed)
	return core.NewNodeIn(c.core, opts, core.DefaultParams())
}

// engine resets the context to a cores-core machine for seed and
// returns its engine (raw-transport trials that never boot a node).
func (c *TrialContext) engine(cores int, seed uint64) *sim.Engine {
	if c == nil {
		return sim.NewEngine(seed)
	}
	c.core.Reset(cores, seed)
	return c.core.Eng
}

// machine is engine plus the machine itself, for trials that drive
// hardware directly (the null-call paths, the attack battery).
func (c *TrialContext) machine(cores int, seed uint64) (*sim.Engine, *hw.Machine) {
	if c == nil {
		eng := sim.NewEngine(seed)
		return eng, hw.NewMachine(eng, hw.DefaultConfig(cores))
	}
	c.core.Reset(cores, seed)
	return c.core.Eng, c.core.Mach
}

// kernelParts is machine plus the pooled distributor and metric set,
// for raw-transport trials that build a bare host kernel.
func (c *TrialContext) kernelParts(cores int, seed uint64) *core.Context {
	if c == nil {
		ctx := core.NewContext()
		ctx.Reset(cores, seed)
		return ctx
	}
	c.core.Reset(cores, seed)
	return c.core
}
