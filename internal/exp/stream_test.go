package exp

import (
	"strings"
	"testing"
)

// renderReduced renders the parts of a report the reducer controls —
// artifact names, their text and CSV forms, and the headline lines.
// Trials and wall-clock metadata are excluded: they are attached by
// finishReport, not produced by Reduce/Finish.
func renderReduced(rep *Report) string {
	var b strings.Builder
	for _, a := range rep.Artifacts {
		b.WriteString(a.Name)
		b.WriteString("\n")
		b.WriteString(a.Item.String())
		b.WriteString(a.Item.CSV())
	}
	for _, l := range rep.Lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// streamTestExperiments mirrors poolingTestExperiments: every registered
// experiment normally, the cheap core plus the streaming (openloop)
// family under -short.
func streamTestExperiments(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return []string{"table2", "fig3", "openloop", "openloop-burst", "openloop-hi"}
	}
	return Names()
}

// TestStreamMatchesReduce is the streaming pipeline's golden diff: for
// every registered experiment, feeding the trials one at a time through
// its Streamer (or through the BufferStream fallback when it has none)
// must produce a report byte-identical to the batch Reduce over the
// same trial list. This is what licenses the runner to stream any
// experiment that declares a Stream hook.
func TestStreamMatchesReduce(t *testing.T) {
	p := Profile{Seed: 42}
	r := NewRunner(4)
	for _, name := range streamTestExperiments(t) {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		specs := e.Specs(p)
		trials, err := r.RunSpecs(specs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		batch := renderReduced(e.Reduce(p, trials))

		var st Streamer
		if e.Stream != nil {
			st = e.Stream(p, specs)
		} else {
			st = NewBufferStream(p, e.Reduce)
		}
		for _, tr := range trials {
			st.Consume(tr)
		}
		streamed := renderReduced(st.Finish())

		if batch != streamed {
			t.Errorf("%s: streamed report differs from batch Reduce\n--- batch ---\n%s\n--- streamed ---\n%s",
				name, batch, streamed)
		}
	}
}

// TestRunnerStreamsAndReleases: the end-to-end runner path uses the
// Stream hook — the streamed experiment's report matches a batch
// Reduce over an independent run, and the heavy per-trial buffers
// (Windows) have been released by the time the report comes back, while
// an experiment without a Stream hook keeps them.
func TestRunnerStreamsAndReleases(t *testing.T) {
	p := Profile{Seed: 42}
	e, _ := Lookup("openloop")
	rep, err := NewRunner(4).RunExperiment(e, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range rep.Trials {
		if tr.Windows != nil || tr.TraceEvents != nil {
			t.Fatalf("trial %d: buffers not released after streamed reduce", i)
		}
	}

	trials, err := NewRunner(1).RunSpecs(e.Specs(p))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderReduced(rep), renderReduced(e.Reduce(p, trials)); got != want {
		t.Fatalf("streamed runner report differs from batch reduce\n--- runner ---\n%s\n--- batch ---\n%s", got, want)
	}

	e2, _ := Lookup("table2")
	rep2, err := NewRunner(2).RunExperiment(e2, p)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Stream != nil {
		t.Fatal("table2 unexpectedly grew a Stream hook; pick another non-streamed control")
	}
	if len(rep2.Trials) == 0 {
		t.Fatal("no trials")
	}
}
