package exp

import (
	"testing"

	"coregap/internal/sim"
)

// These tests assert the *shape* of every reproduced table and figure —
// who wins, by roughly what factor, where crossovers fall — against the
// paper's published results. Exact values are recorded in EXPERIMENTS.md.

func TestTable2Shapes(t *testing.T) {
	r := RunTable2(42)
	// Paper: 2757.6 ns asynchronous.
	if r.Async < 2600*sim.Nanosecond || r.Async > 2950*sim.Nanosecond {
		t.Errorf("async null call = %v, want ~2757ns", r.Async)
	}
	// Paper: 257.7 ns synchronous.
	if r.Sync < 245*sim.Nanosecond || r.Sync > 270*sim.Nanosecond {
		t.Errorf("sync null call = %v, want ~258ns", r.Sync)
	}
	// Paper: same-core takes >12.8 us — more than 4x the remote call.
	if r.SameCore < 12800*sim.Nanosecond {
		t.Errorf("same-core = %v, want >= 12.8us", r.SameCore)
	}
	if r.SameCore < 4*r.Async {
		t.Errorf("same-core (%v) not >4x async (%v)", r.SameCore, r.Async)
	}
	if r.Table.Rows() != 3 {
		t.Error("table shape")
	}
}

func TestTable3Shapes(t *testing.T) {
	r := RunTable3(42)
	// Paper: 43.9 / 2.22 / 3.85 us.
	if r.NoDeleg < 38*sim.Microsecond || r.NoDeleg > 50*sim.Microsecond {
		t.Errorf("no-delegation vIPI = %v, want ~43.9us", r.NoDeleg)
	}
	if r.Delegated < 1900*sim.Nanosecond || r.Delegated > 2600*sim.Nanosecond {
		t.Errorf("delegated vIPI = %v, want ~2.22us", r.Delegated)
	}
	if r.SharedCore < 3400*sim.Nanosecond || r.SharedCore > 4300*sim.Nanosecond {
		t.Errorf("shared-core vIPI = %v, want ~3.85us", r.SharedCore)
	}
	// Ordering: delegation beats even the shared-core in-kernel path
	// (Table 3's point: it "completely skips the host's scheduler").
	if !(r.Delegated < r.SharedCore && r.SharedCore < r.NoDeleg) {
		t.Errorf("ordering broken: %v < %v < %v expected", r.Delegated, r.SharedCore, r.NoDeleg)
	}
}

func TestTable4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	r := RunTable4(42)
	// Paper: 33954±161 → 390±3 interrupt-related; 37712±504 → 1324±60.
	within := func(got uint64, want, tol float64) bool {
		return float64(got) > want*(1-tol) && float64(got) < want*(1+tol)
	}
	if !within(r.InterruptExits[0], 33954, 0.05) {
		t.Errorf("interrupt exits no-deleg = %d, want ~33954", r.InterruptExits[0])
	}
	if !within(r.InterruptExits[1], 390, 0.20) {
		t.Errorf("interrupt exits deleg = %d, want ~390", r.InterruptExits[1])
	}
	if !within(r.TotalExits[0], 37712, 0.05) {
		t.Errorf("total exits no-deleg = %d, want ~37712", r.TotalExits[0])
	}
	if !within(r.TotalExits[1], 1324, 0.15) {
		t.Errorf("total exits deleg = %d, want ~1324", r.TotalExits[1])
	}
	// The headline: delegation reduces total exits ~28x.
	ratio := float64(r.TotalExits[0]) / float64(r.TotalExits[1])
	if ratio < 20 || ratio > 40 {
		t.Errorf("exit reduction = %.1fx, want ~28x", ratio)
	}
}

func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	r := RunTable5(400*sim.Millisecond, 42)
	byKey := map[string]Table5Row{}
	for _, row := range r.Rows {
		byKey[row.Op.String()+"/"+row.Mode] = row
	}
	// Core gapping achieves ~10% higher throughput on every operation
	// (Table 5), because Redis saturates the guest CPU and the dedicated
	// core escapes host interference.
	for _, op := range []string{"SET", "GET", "LRANGE 100"} {
		shared, gapped := byKey[op+"/shared core"], byKey[op+"/core gapped"]
		if gapped.Throughput <= shared.Throughput {
			t.Errorf("%s: gapped %.1f krps <= shared %.1f krps", op, gapped.Throughput, shared.Throughput)
		}
		gain := gapped.Throughput / shared.Throughput
		if gain > 1.35 {
			t.Errorf("%s: gain %.2fx implausibly high", op, gain)
		}
	}
	// LRANGE: gapped delivers lower latency (reduced contention).
	if byKey["LRANGE 100/core gapped"].Mean >= byKey["LRANGE 100/shared core"].Mean {
		t.Error("LRANGE gapped latency should beat shared core")
	}
	// Absolute scale: tens of krps for SET/GET, ~15 krps for LRANGE.
	if s := byKey["SET/shared core"].Throughput; s < 40 || s > 75 {
		t.Errorf("SET shared = %.1f krps, want ~52", s)
	}
	if s := byKey["LRANGE 100/shared core"].Throughput; s < 10 || s > 20 {
		t.Errorf("LRANGE shared = %.1f krps, want ~12-16", s)
	}
}

func TestFig3Shapes(t *testing.T) {
	r := RunFig3(42)
	if r.Summary.Total < 30 {
		t.Errorf("catalogue = %d, want 30+", r.Summary.Total)
	}
	// The battery: shared-core zero-day leaks nearly everything;
	// core gapping leaves only CrossTalk.
	if len(r.ZeroDayLeaks) < 20 {
		t.Errorf("zero-day leaks = %d, want many", len(r.ZeroDayLeaks))
	}
	if len(r.MitigatedLeaks) >= len(r.ZeroDayLeaks) {
		t.Error("deployed mitigations should reduce the leak set")
	}
	if len(r.CoreGappedLeaks) != 1 || r.CoreGappedLeaks[0] != "CrossTalk" {
		t.Errorf("core-gapped leaks = %v, want [CrossTalk]", r.CoreGappedLeaks)
	}
	if r.SecuritySummary() == "" || r.Timeline.Rows() != r.Summary.Total {
		t.Error("rendering shape")
	}
}

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	r := RunFig6([]int{4, 8, 16}, 300*sim.Millisecond, 42)
	at := func(series string, x float64) float64 {
		y, ok := r.Figure.Series(series).YAt(x)
		if !ok {
			t.Fatalf("missing %s@%v", series, x)
		}
		return y
	}
	for _, N := range []float64{4, 8, 16} {
		shared, gapped := at("shared-core", N), at("core-gapped", N)
		// Baseline ~N effective cores; gapped ~N-1 (one host core).
		if shared < N*0.97 || shared > N {
			t.Errorf("shared@%v = %.2f, want ~%v", N, shared, N)
		}
		if gapped < (N-1)*0.97 || gapped > N-1+0.01 {
			t.Errorf("gapped@%v = %.2f, want ~%v", N, gapped, N-1)
		}
		// Busy-wait without delegation falls behind the async design.
		if bw := at("busy-wait, no delegation", N); bw >= gapped {
			t.Errorf("busy-wait no-deleg@%v = %.2f, not below gapped %.2f", N, bw, gapped)
		}
	}
	// Run-to-run latency: paper reports 26.18 ± 0.96 us, stable.
	if r.RunToRunMean < 20*sim.Microsecond || r.RunToRunMean > 32*sim.Microsecond {
		t.Errorf("run-to-run = %v, want ~26us", r.RunToRunMean)
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	fig := RunFig7(8, 200*sim.Millisecond, 42)
	for _, series := range []string{"shared-core", "core-gapped"} {
		y1, _ := fig.Series(series).YAt(1)
		y8, _ := fig.Series(series).YAt(8)
		// Linear aggregate scaling (paper: "the aggregate scales
		// linearly"; 16 VMMs on one host core do not harm throughput).
		if y8 < 7.5*y1 {
			t.Errorf("%s: y(8)=%.2f not ~8x y(1)=%.2f", series, y8, y1)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	r := RunFig8([]int{1024, 65536, 1 << 20}, 30, 42)
	lat := func(series string, x float64) float64 {
		y, ok := r.Latency.Series(series).YAt(x)
		if !ok {
			t.Fatalf("missing %s@%v", series, x)
		}
		return y
	}
	// SR-IOV beats virtio in latency at every size, in both modes.
	for _, x := range []float64{1024, 65536} {
		if lat("SR-IOV shared-core", x) >= lat("virtio shared-core", x) {
			t.Errorf("SR-IOV not faster than virtio (shared) at %v", x)
		}
	}
	// Gapped SR-IOV latency within 10-20 us of baseline (paper) — we
	// accept up to 25 us of added one-way latency.
	for _, x := range []float64{1024, 65536} {
		d := lat("SR-IOV core-gapped", x) - lat("SR-IOV shared-core", x)
		if d <= 0 || d > 25 {
			t.Errorf("SR-IOV gapped latency delta @%v = %.1fus, want (0, 25]", x, d)
		}
	}
	// virtio suffers more from gapping than SR-IOV does (relative).
	dv := lat("virtio core-gapped", 1024) / lat("virtio shared-core", 1024)
	ds := lat("SR-IOV core-gapped", 1024) / lat("SR-IOV shared-core", 1024)
	if dv < 1.0 {
		t.Errorf("virtio gapped ratio = %.2f, want >= 1", dv)
	}
	_ = ds
	// Throughput: SR-IOV near parity at 1 MiB (within 5%, paper: up to
	// 5% higher for gapped at large sizes).
	tg, _ := r.Throughput.Series("SR-IOV core-gapped").YAt(1 << 20)
	ts, _ := r.Throughput.Series("SR-IOV shared-core").YAt(1 << 20)
	if tg < ts*0.93 {
		t.Errorf("SR-IOV gapped throughput %.2f well below shared %.2f at 1MiB", tg, ts)
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	fig := RunFig9([]int{4 << 10, 16 << 20}, 42)
	at := func(series string, x float64) float64 {
		y, ok := fig.Series(series).YAt(x)
		if !ok {
			t.Fatalf("missing %s@%v", series, x)
		}
		return y
	}
	// Small records: gapping suffers badly from per-request exit latency.
	small := at("core-gapped read", 4<<10) / at("shared-core read", 4<<10)
	if small > 0.6 {
		t.Errorf("4KiB gapped/shared = %.2f, want well below 1", small)
	}
	// Large records: similar throughput only for large (>10MiB) I/Os.
	big := at("core-gapped read", 16<<20) / at("shared-core read", 16<<20)
	if big < 0.95 || big > 1.02 {
		t.Errorf("16MiB gapped/shared = %.2f, want ~1", big)
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	fig := RunFig10([]int{8, 16}, 120, 42)
	at := func(series string, x float64) float64 {
		y, ok := fig.Series(series).YAt(x)
		if !ok {
			t.Fatalf("missing %s@%v", series, x)
		}
		return y
	}
	// Comparable performance despite one fewer vCPU: within ~20% at 8+
	// cores, converging as the core count grows.
	r8 := at("core-gapped", 8) / at("shared-core", 8)
	r16 := at("core-gapped", 16) / at("shared-core", 16)
	if r8 > 1.30 {
		t.Errorf("8-core build ratio = %.2f, want <= 1.30", r8)
	}
	if r16 > r8+0.02 {
		t.Errorf("ratio should converge with cores: r8=%.2f r16=%.2f", r8, r16)
	}
	// More cores build faster in both modes.
	if at("shared-core", 16) >= at("shared-core", 8) {
		t.Error("shared build did not speed up with cores")
	}
}

func TestTDXComparisonShapes(t *testing.T) {
	r := RunTDXComparison(5000, 0.5, 42)
	// §6.1: TDX-style host-owned insecure page tables need fewer RPCs
	// and therefore cost less per mixed update.
	if r.TDXRPCs >= r.CCARPCs {
		t.Errorf("TDX RPCs/1000 = %d, CCA = %d; want fewer", r.TDXRPCs, r.CCARPCs)
	}
	if r.CCARPCs != 1000 {
		t.Errorf("CCA must RPC on every update, got %d/1000", r.CCARPCs)
	}
	if r.TDXPerOp >= r.CCAPerOp {
		t.Errorf("TDX per-op %v not cheaper than CCA %v", r.TDXPerOp, r.CCAPerOp)
	}
	if r.Table.Rows() != 2 {
		t.Error("table shape")
	}
}
