package exp

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// This file declares the paper's tables (2–5) as spec generators plus
// pure reducers. The legacy Run* entry points are kept as thin wrappers
// that generate, execute on the default pool, and reduce.

// ---------------------------------------------------------------- Table 2

// Table2Result carries the three measured latencies alongside the table.
type Table2Result struct {
	Table    *trace.Table
	Async    sim.Duration // core-gapped asynchronous (vCPU run calls)
	Sync     sim.Duration // core-gapped synchronous (e.g. page-table update)
	SameCore sim.Duration // same-core synchronous (EL3 component, lower bound)
}

func table2Specs(seed uint64) []ScenarioSpec {
	const rounds = 1000
	return []ScenarioSpec{
		{ID: "async", Config: ConfigGapped, Cores: 2, Seed: seed,
			Workload: Workload{Kind: WLNullRMMAsync, Rounds: rounds}},
		{ID: "sync", Config: ConfigGapped, Cores: 2, Seed: seed + 1,
			Workload: Workload{Kind: WLNullRMMSync, Rounds: rounds}},
		{ID: "samecore", Config: ConfigGapped, Cores: 1, Seed: seed,
			Workload: Workload{Kind: WLNullRMMSameCore}},
	}
}

func reduceTable2(trials []Trial) Table2Result {
	var res Table2Result
	for _, t := range trials {
		switch t.Spec.ID {
		case "async":
			res.Async = t.Dur("ns")
		case "sync":
			res.Sync = t.Dur("ns")
		case "samecore":
			res.SameCore = t.Dur("ns")
		}
	}
	tb := trace.NewTable("Table 2", "Comparison of null RMM call latencies", "Latency")
	tb.AddRow("Core-gapped asynchronous (vCPU run calls)", fmt.Sprintf("%.1f ns", float64(res.Async)))
	tb.AddRow("Core-gapped synchronous (e.g., page table update)", fmt.Sprintf("%.1f ns", float64(res.Sync)))
	tb.AddRow("Same-core synchronous", fmt.Sprintf(">%.1f us", float64(res.SameCore)/1000))
	res.Table = tb
	return res
}

// RunTable2 measures null RMM call latencies (Table 2) by driving the
// actual transport machinery; see the WLNullRMM* interpreters.
func RunTable2(seed uint64) Table2Result {
	return reduceTable2(run(table2Specs(seed)))
}

// ---------------------------------------------------------------- Table 3

// Table3Result carries the three measured vIPI latencies.
type Table3Result struct {
	Table      *trace.Table
	NoDeleg    sim.Duration
	Delegated  sim.Duration
	SharedCore sim.Duration
}

func table3Specs(seed uint64) []ScenarioSpec {
	ipi := Workload{Kind: WLIPIBench, Rounds: 300}
	return []ScenarioSpec{
		{ID: "nodeleg", Config: ConfigGappedNoDeleg, Cores: 4, Seed: seed, Workload: ipi},
		{ID: "deleg", Config: ConfigGapped, Cores: 4, Seed: seed, Workload: ipi},
		{ID: "shared", Config: ConfigBaseline, Cores: 4, Seed: seed, Workload: ipi},
	}
}

func reduceTable3(trials []Trial) Table3Result {
	var res Table3Result
	for _, t := range trials {
		switch t.Spec.ID {
		case "nodeleg":
			res.NoDeleg = t.Dur("vipi.mean.ns")
		case "deleg":
			res.Delegated = t.Dur("vipi.mean.ns")
		case "shared":
			res.SharedCore = t.Dur("vipi.mean.ns")
		}
	}
	tb := trace.NewTable("Table 3", "Virtual interprocessor interrupt latency", "IPI latency")
	tb.AddRow("Core-gapped CVM, without delegation", fmt.Sprintf("%.1f us", res.NoDeleg.Micros()))
	tb.AddRow("Core-gapped CVM, with delegation", fmt.Sprintf("%.2f us", res.Delegated.Micros()))
	tb.AddRow("Shared-core VM", fmt.Sprintf("%.2f us", res.SharedCore.Micros()))
	res.Table = tb
	return res
}

// RunTable3 measures virtual inter-processor interrupt latency (Table 3)
// using the two-vCPU IPI ping-pong workload under the three
// configurations the paper compares.
func RunTable3(seed uint64) Table3Result {
	return reduceTable3(run(table3Specs(seed)))
}

// ---------------------------------------------------------------- Table 4

// Table4Result carries the exit counts.
type Table4Result struct {
	Table *trace.Table
	// [0] = without delegation, [1] = with delegation.
	InterruptExits [2]uint64
	TotalExits     [2]uint64
}

// table4Specs reproduces the Table 4 setup: CoreMark-PRO on a 16-core
// machine (15 core-gapped vCPUs + 1 host core, per §5.1's
// equal-physical-cores accounting), with and without delegation. The
// paper's run length corresponds to ≈4.5 s of guest execution at the
// 250 Hz tick.
func table4Specs(seed uint64) []ScenarioSpec {
	cm := Workload{Kind: WLCoreMark, VCPUs: 15, Work: 4410 * sim.Millisecond}
	return []ScenarioSpec{
		{ID: "nodeleg", Config: ConfigGappedNoDeleg, Cores: 16, Seed: seed,
			Workload: cm, Horizon: 60 * sim.Second},
		{ID: "deleg", Config: ConfigGapped, Cores: 16, Seed: seed,
			Workload: cm, Horizon: 60 * sim.Second},
	}
}

func reduceTable4(trials []Trial) Table4Result {
	var res Table4Result
	for _, t := range trials {
		i := 0
		if t.Spec.ID == "deleg" {
			i = 1
		}
		res.InterruptExits[i] = uint64(t.V("exits.interrupt"))
		res.TotalExits[i] = uint64(t.V("exits.total"))
	}
	tb := trace.NewTable("Table 4", "Interrupt delegation effect on CoreMark-PRO",
		"Without delegation", "With delegation")
	tb.AddRow("Interrupt-related exits",
		fmt.Sprintf("%d", res.InterruptExits[0]), fmt.Sprintf("%d", res.InterruptExits[1]))
	tb.AddRow("Total exits",
		fmt.Sprintf("%d", res.TotalExits[0]), fmt.Sprintf("%d", res.TotalExits[1]))
	res.Table = tb
	return res
}

// RunTable4 reproduces the interrupt-delegation exit accounting (Table 4).
func RunTable4(seed uint64) Table4Result {
	return reduceTable4(run(table4Specs(seed)))
}

// ---------------------------------------------------------------- Table 5

// Table5Row is one Redis measurement.
type Table5Row struct {
	Op         guest.RedisOp
	Mode       string
	Throughput float64      // krequests/s
	Mean       sim.Duration // client-observed latency
	P95        sim.Duration
	P99        sim.Duration
}

// Table5Result carries all rows plus the rendered table.
type Table5Result struct {
	Table *trace.Table
	Rows  []Table5Row
}

// table5Specs reproduces the Redis benchmark setup (Table 5): 50
// closed-loop clients, 512-byte objects, SR-IOV networking, on a 16-core
// machine (16 vCPUs shared-core, 15 vCPUs core-gapped; Redis itself is
// single-threaded, so the extra vCPUs idle as on the real system).
func table5Specs(window sim.Duration, seed uint64) []ScenarioSpec {
	if window <= 0 {
		window = 1 * sim.Second
	}
	redis := func(op guest.RedisOp, vcpus int) Workload {
		return Workload{Kind: WLRedis, Dev: guest.SRIOVNet, VCPUs: vcpus,
			Op: op, Clients: 50, Bytes: 512, Window: window}
	}
	var specs []ScenarioSpec
	for _, op := range []guest.RedisOp{guest.OpSet, guest.OpGet, guest.OpLRange100} {
		specs = append(specs,
			ScenarioSpec{ID: op.String() + "/shared", Config: ConfigBaseline,
				Cores: 16, Seed: seed, Workload: redis(op, 16),
				BootKey: bootKey(1, 16)},
			ScenarioSpec{ID: op.String() + "/gapped", Config: ConfigGapped,
				Cores: 16, Seed: seed, Workload: redis(op, 15),
				BootKey: bootKey(1, 15)})
	}
	return specs
}

func reduceTable5(trials []Trial) Table5Result {
	var res Table5Result
	for _, t := range trials {
		mode := "shared core"
		if t.Spec.Config == ConfigGapped {
			mode = "core gapped"
		}
		res.Rows = append(res.Rows, Table5Row{
			Op:         t.Spec.Workload.Op,
			Mode:       mode,
			Throughput: t.V("krps"),
			Mean:       t.Dur("lat.mean.ns"),
			P95:        t.Dur("lat.p95.ns"),
			P99:        t.Dur("lat.p99.ns"),
		})
	}
	tb := trace.NewTable("Table 5", "Redis benchmark: 50 clients, 512-byte objects",
		"Throughput (krps)", "Mean (ms)", "p95 (ms)", "p99 (ms)")
	for _, r := range res.Rows {
		tb.AddRow(fmt.Sprintf("%s %s", r.Op, r.Mode),
			fmt.Sprintf("%.1f", r.Throughput),
			fmt.Sprintf("%.2f", r.Mean.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P95.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P99.Seconds()*1000))
	}
	res.Table = tb
	return res
}

// RunTable5 reproduces the Redis benchmark (Table 5) over the given
// steady-state measurement window.
func RunTable5(window sim.Duration, seed uint64) Table5Result {
	return reduceTable5(run(table5Specs(window, seed)))
}

// The table experiments, registered in paper order by register.go.
var (
	expTable2 = &Experiment{
		Name:  "table2",
		Desc:  "Measures the three null RMM call paths: the asynchronous cross-core run call (mailbox post, IPI, wake-up thread), the synchronous busy-wait call, and the modelled same-core EL3 lower bound (world switches plus mitigation flushes).",
		Title: "Table 2: null RMM call latencies",
		Paper: "paper: async 2757.6 ns | sync 257.7 ns | same-core >12.8 us",
		Specs: func(p Profile) []ScenarioSpec { return table2Specs(p.Seed) },
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceTable2(trials)
			return &Report{Artifacts: []Artifact{{Name: "table2", Item: r.Table}}}
		},
	}

	expTable3 = &Experiment{
		Name:  "table3",
		Desc:  "Times virtual IPI delivery with a two-vCPU ping-pong guest under no-delegation, delegated, and shared-core configurations.",
		Title: "Table 3: virtual IPI latency",
		Paper: "paper: no-delegation 43.9 us | delegated 2.22 us | shared-core 3.85 us",
		Specs: func(p Profile) []ScenarioSpec { return table3Specs(p.Seed) },
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceTable3(trials)
			return &Report{Artifacts: []Artifact{{Name: "table3", Item: r.Table}}}
		},
	}

	expTable4 = &Experiment{
		Name:  "table4",
		Desc:  "Counts host-visible VM exits of a CoreMark-PRO run with and without interrupt delegation, split into interrupt-related and total.",
		Title: "Table 4: interrupt delegation effect on CoreMark-PRO exits",
		Paper: "paper: interrupt-related 33954±161 → 390±3 | total 37712±504 → 1324±60",
		Specs: func(p Profile) []ScenarioSpec { return table4Specs(p.Seed) },
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceTable4(trials)
			return &Report{Artifacts: []Artifact{{Name: "table4", Item: r.Table}}}
		},
	}

	expTable5 = &Experiment{
		Name:  "table5",
		Desc:  "Runs closed-loop Redis (50 clients, 512-byte objects) over SET/GET/LRANGE and compares throughput and latency percentiles across configurations.",
		Title: "Table 5: Redis benchmark (50 clients, 512-byte objects)",
		Paper: "paper krps: SET 51.7→56.2 | GET 48.8→55.3 | LRANGE 11.6→14.5 (shared→gapped)",
		Specs: func(p Profile) []ScenarioSpec {
			window := 500 * sim.Millisecond
			if p.Full {
				window = 2 * sim.Second
			}
			return table5Specs(window, p.Seed)
		},
		Reduce: func(p Profile, trials []Trial) *Report {
			r := reduceTable5(trials)
			return &Report{Artifacts: []Artifact{{Name: "table5", Item: r.Table}}}
		},
	}
)
