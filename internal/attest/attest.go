// Package attest implements the measurement and attestation machinery
// guests rely on to trust the platform (§2.4): a measurement ledger that
// accumulates the realm initial measurement (RIM) and runtime extensible
// measurements (REMs), and attestation tokens binding those measurements
// to a platform key.
//
// Crucially for this paper, the *monitor's own image* is part of the
// attested chain: a guest can verify it is running on a core-gapping RMM
// (and refuse to run otherwise), which is what makes core gapping a
// guarantee rather than a host courtesy (§2.3, §6.1).
package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Measurement is a SHA-256 digest.
type Measurement [sha256.Size]byte

// String renders the measurement in hex.
func (m Measurement) String() string { return hex.EncodeToString(m[:]) }

// MeasureBytes digests a blob.
func MeasureBytes(data []byte) Measurement { return sha256.Sum256(data) }

// Extend folds a new digest into an accumulator, TPM-style:
// new = H(old || data-digest).
func Extend(old Measurement, data []byte) Measurement {
	d := sha256.Sum256(data)
	h := sha256.New()
	h.Write(old[:])
	h.Write(d[:])
	var out Measurement
	copy(out[:], h.Sum(nil))
	return out
}

// NumREMs is the number of runtime extensible measurement registers,
// matching the RMM specification.
const NumREMs = 4

// Ledger accumulates a realm's measurements during construction and
// runtime. The RIM is sealed when the realm is activated; REMs may be
// extended by the guest afterwards.
type Ledger struct {
	rim    Measurement
	sealed bool
	rems   [NumREMs]Measurement
}

// ExtendRIM folds construction-time data (initial memory contents, vCPU
// creation parameters) into the realm initial measurement.
func (l *Ledger) ExtendRIM(data []byte) error {
	if l.sealed {
		return errors.New("attest: RIM extended after activation")
	}
	l.rim = Extend(l.rim, data)
	return nil
}

// Seal freezes the RIM (realm activation).
func (l *Ledger) Seal() { l.sealed = true }

// Sealed reports whether the realm has been activated.
func (l *Ledger) Sealed() bool { return l.sealed }

// RIM reports the realm initial measurement.
func (l *Ledger) RIM() Measurement { return l.rim }

// ExtendREM folds guest-provided data into REM index i (RSI call).
func (l *Ledger) ExtendREM(i int, data []byte) error {
	if i < 0 || i >= NumREMs {
		return fmt.Errorf("attest: REM index %d out of range", i)
	}
	if !l.sealed {
		return errors.New("attest: REM extended before activation")
	}
	l.rems[i] = Extend(l.rems[i], data)
	return nil
}

// REM reports runtime measurement register i.
func (l *Ledger) REM(i int) Measurement { return l.rems[i] }

// Token is a signed attestation report. The platform section covers the
// monitor image (so the verifier learns whether a core-gapping monitor is
// running); the realm section covers the guest's own measurements.
type Token struct {
	PlatformMeasurement Measurement // trusted firmware + RMM image
	MonitorVersion      string
	CoreGapped          bool // monitor enforces core gapping
	RIM                 Measurement
	REMs                [NumREMs]Measurement
	Challenge           [32]byte
	MAC                 [sha256.Size]byte
}

// Signer issues tokens under a platform key (modelled as an HMAC key —
// the real platform uses an ECDSA key rooted in the vendor's CA; the
// trust structure is identical).
type Signer struct {
	key []byte
}

// NewSigner returns a signer for the given platform key.
func NewSigner(key []byte) *Signer {
	if len(key) == 0 {
		panic("attest: empty platform key")
	}
	return &Signer{key: append([]byte(nil), key...)}
}

func (s *Signer) mac(t *Token) [sha256.Size]byte {
	h := hmac.New(sha256.New, s.key)
	h.Write(t.PlatformMeasurement[:])
	h.Write([]byte(t.MonitorVersion))
	var gap [8]byte
	if t.CoreGapped {
		binary.LittleEndian.PutUint64(gap[:], 1)
	}
	h.Write(gap[:])
	h.Write(t.RIM[:])
	for i := range t.REMs {
		h.Write(t.REMs[i][:])
	}
	h.Write(t.Challenge[:])
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Issue signs a token for the given ledger and platform state.
func (s *Signer) Issue(platform Measurement, version string, coreGapped bool, l *Ledger, challenge [32]byte) (*Token, error) {
	if !l.Sealed() {
		return nil, errors.New("attest: token requested before activation")
	}
	t := &Token{
		PlatformMeasurement: platform,
		MonitorVersion:      version,
		CoreGapped:          coreGapped,
		RIM:                 l.RIM(),
		Challenge:           challenge,
	}
	for i := 0; i < NumREMs; i++ {
		t.REMs[i] = l.REM(i)
	}
	t.MAC = s.mac(t)
	return t, nil
}

// Verify checks a token's MAC under the signer's key.
func (s *Signer) Verify(t *Token) bool {
	want := s.mac(t)
	return hmac.Equal(want[:], t.MAC[:])
}

// Policy is a guest owner's acceptance policy for tokens.
type Policy struct {
	// RequireCoreGapped rejects tokens from monitors that do not enforce
	// core gapping.
	RequireCoreGapped bool
	// AllowedPlatforms lists acceptable platform measurements (empty =
	// any platform signed by the key).
	AllowedPlatforms []Measurement
	// ExpectedRIM, when non-zero, must match the token's RIM.
	ExpectedRIM Measurement
}

// Evaluate reports whether the (already signature-verified) token meets
// the policy, with a reason on rejection.
func (p Policy) Evaluate(t *Token) error {
	if p.RequireCoreGapped && !t.CoreGapped {
		return errors.New("attest: monitor does not enforce core gapping")
	}
	if len(p.AllowedPlatforms) > 0 {
		ok := false
		for _, m := range p.AllowedPlatforms {
			if m == t.PlatformMeasurement {
				ok = true
			}
		}
		if !ok {
			return errors.New("attest: platform measurement not in allow-list")
		}
	}
	var zero Measurement
	if p.ExpectedRIM != zero && p.ExpectedRIM != t.RIM {
		return errors.New("attest: RIM mismatch")
	}
	return nil
}
