package attest

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestExtendOrderSensitive(t *testing.T) {
	var zero Measurement
	a := Extend(Extend(zero, []byte("a")), []byte("b"))
	b := Extend(Extend(zero, []byte("b")), []byte("a"))
	if a == b {
		t.Fatal("extend must be order sensitive")
	}
	if a == zero || b == zero {
		t.Fatal("extend produced zero")
	}
}

func TestExtendDeterministic(t *testing.T) {
	f := func(data []byte) bool {
		var zero Measurement
		return Extend(zero, data) == Extend(zero, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerLifecycle(t *testing.T) {
	var l Ledger
	if err := l.ExtendRIM([]byte("kernel")); err != nil {
		t.Fatal(err)
	}
	if err := l.ExtendRIM([]byte("initrd")); err != nil {
		t.Fatal(err)
	}
	rim := l.RIM()

	// REM before activation fails.
	if err := l.ExtendREM(0, []byte("x")); err == nil {
		t.Fatal("REM extend before seal succeeded")
	}
	l.Seal()
	if !l.Sealed() {
		t.Fatal("not sealed")
	}
	// RIM after activation fails.
	if err := l.ExtendRIM([]byte("evil")); err == nil {
		t.Fatal("RIM extend after seal succeeded")
	}
	if l.RIM() != rim {
		t.Fatal("RIM changed after seal")
	}
	if err := l.ExtendREM(2, []byte("runtime")); err != nil {
		t.Fatal(err)
	}
	if l.REM(2) == (Measurement{}) {
		t.Fatal("REM not extended")
	}
	if err := l.ExtendREM(NumREMs, nil); err == nil {
		t.Fatal("out-of-range REM accepted")
	}
}

func TestRIMReflectsContents(t *testing.T) {
	mk := func(blobs ...string) Measurement {
		var l Ledger
		for _, b := range blobs {
			l.ExtendRIM([]byte(b))
		}
		return l.RIM()
	}
	if mk("kernel-v1") == mk("kernel-v2") {
		t.Fatal("different contents, same RIM")
	}
	if mk("kernel-v1") != mk("kernel-v1") {
		t.Fatal("same contents, different RIM")
	}
}

func newSealedLedger() *Ledger {
	var l Ledger
	l.ExtendRIM([]byte("guest-image"))
	l.Seal()
	return &l
}

func TestTokenIssueVerify(t *testing.T) {
	s := NewSigner([]byte("platform-key"))
	platform := MeasureBytes([]byte("tf-rmm-coregap-1.0"))
	var challenge [32]byte
	copy(challenge[:], "nonce")

	l := newSealedLedger()
	tok, err := s.Issue(platform, "rmm-0.3.0+coregap", true, l, challenge)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(tok) {
		t.Fatal("fresh token does not verify")
	}
	if !tok.CoreGapped || tok.RIM != l.RIM() {
		t.Fatal("token fields wrong")
	}

	// Tampering with any claim breaks the MAC.
	tampered := *tok
	tampered.CoreGapped = false
	if s.Verify(&tampered) {
		t.Fatal("tampered core-gap claim verified")
	}
	tampered2 := *tok
	tampered2.RIM = MeasureBytes([]byte("other"))
	if s.Verify(&tampered2) {
		t.Fatal("tampered RIM verified")
	}

	// A different key cannot forge.
	s2 := NewSigner([]byte("other-key"))
	if s2.Verify(tok) {
		t.Fatal("token verified under wrong key")
	}
}

func TestTokenRequiresActivation(t *testing.T) {
	s := NewSigner([]byte("k"))
	var l Ledger
	if _, err := s.Issue(Measurement{}, "v", true, &l, [32]byte{}); err == nil {
		t.Fatal("token issued before activation")
	}
}

func TestPolicyCoreGapRequirement(t *testing.T) {
	s := NewSigner([]byte("k"))
	l := newSealedLedger()
	gapped, _ := s.Issue(MeasureBytes([]byte("p")), "v", true, l, [32]byte{})
	shared, _ := s.Issue(MeasureBytes([]byte("p")), "v", false, l, [32]byte{})

	pol := Policy{RequireCoreGapped: true}
	if err := pol.Evaluate(gapped); err != nil {
		t.Fatalf("core-gapped token rejected: %v", err)
	}
	if err := pol.Evaluate(shared); err == nil {
		t.Fatal("shared-core token accepted under core-gap policy")
	}
}

func TestPolicyPlatformAllowList(t *testing.T) {
	s := NewSigner([]byte("k"))
	l := newSealedLedger()
	good := MeasureBytes([]byte("good-fw"))
	tok, _ := s.Issue(good, "v", true, l, [32]byte{})

	pol := Policy{AllowedPlatforms: []Measurement{MeasureBytes([]byte("other-fw"))}}
	if err := pol.Evaluate(tok); err == nil {
		t.Fatal("unlisted platform accepted")
	}
	pol.AllowedPlatforms = append(pol.AllowedPlatforms, good)
	if err := pol.Evaluate(tok); err != nil {
		t.Fatalf("listed platform rejected: %v", err)
	}
}

func TestPolicyRIMPinning(t *testing.T) {
	s := NewSigner([]byte("k"))
	l := newSealedLedger()
	tok, _ := s.Issue(MeasureBytes([]byte("p")), "v", true, l, [32]byte{})

	pol := Policy{ExpectedRIM: l.RIM()}
	if err := pol.Evaluate(tok); err != nil {
		t.Fatalf("matching RIM rejected: %v", err)
	}
	pol.ExpectedRIM = MeasureBytes([]byte("different image"))
	if err := pol.Evaluate(tok); err == nil {
		t.Fatal("mismatched RIM accepted")
	}
}

func TestMeasurementString(t *testing.T) {
	m := MeasureBytes([]byte("x"))
	if len(m.String()) != 64 {
		t.Fatalf("hex length = %d", len(m.String()))
	}
	if bytes.Equal(m[:], make([]byte, 32)) {
		t.Fatal("digest is zero")
	}
}
