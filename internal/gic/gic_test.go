package gic

import (
	"testing"
	"testing/quick"

	"coregap/internal/hw"
	"coregap/internal/sim"
)

func TestInjectAckEOILifecycle(t *testing.T) {
	var l ListRegs
	slot := l.Inject(hw.IRQVTimer, false)
	if slot < 0 {
		t.Fatal("inject failed on empty list")
	}
	if l.At(slot).State != Pending {
		t.Fatalf("state = %v", l.At(slot).State)
	}
	if got := l.Ack(slot); got != hw.IRQVTimer {
		t.Fatalf("ack returned %v", got)
	}
	if l.At(slot).State != Active {
		t.Fatalf("state after ack = %v", l.At(slot).State)
	}
	l.EOI(slot)
	if l.At(slot).Valid() {
		t.Fatal("slot live after EOI")
	}
}

func TestInjectIdempotentWhilePending(t *testing.T) {
	var l ListRegs
	s1 := l.Inject(hw.IRQVTimer, false)
	s2 := l.Inject(hw.IRQVTimer, false)
	if s1 != s2 {
		t.Fatalf("re-inject allocated new slot: %d vs %d", s1, s2)
	}
	if l.LiveCount() != 1 {
		t.Fatalf("live = %d", l.LiveCount())
	}
	// Once active, a new edge may be injected into another slot.
	l.Ack(s1)
	s3 := l.Inject(hw.IRQVTimer, false)
	if s3 == s1 {
		t.Fatal("active slot reused for new pending edge")
	}
}

func TestInjectFullList(t *testing.T) {
	var l ListRegs
	for i := 0; i < NumListRegs; i++ {
		if slot := l.Inject(hw.SPIBase+hw.IRQ(i), false); slot < 0 {
			t.Fatalf("inject %d failed", i)
		}
	}
	if slot := l.Inject(hw.SPIBase+99, false); slot != -1 {
		t.Fatal("inject into full list succeeded")
	}
	if l.LiveCount() != NumListRegs || l.PendingCount() != NumListRegs {
		t.Fatal("counts wrong")
	}
}

func TestHighestPendingPriority(t *testing.T) {
	var l ListRegs
	l.Inject(hw.SPIBase+5, false)
	lowSlot := l.Inject(hw.IRQVTimer, false) // INTID 27 < 37
	if got := l.HighestPending(); got != lowSlot {
		t.Fatalf("highest pending slot = %d, want %d", got, lowSlot)
	}
	l.Ack(lowSlot)
	if got := l.HighestPending(); got == lowSlot {
		t.Fatal("active slot reported pending")
	}
	var empty ListRegs
	if empty.HighestPending() != -1 {
		t.Fatal("empty list reported pending")
	}
}

func TestAckEOIMisusePanics(t *testing.T) {
	var l ListRegs
	slot := l.Inject(hw.IRQVTimer, false)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EOI of pending slot did not panic")
			}
		}()
		l.EOI(slot)
	}()
	l.Ack(slot)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double ack did not panic")
			}
		}()
		l.Ack(slot)
	}()
}

func TestVisibleSnapshotFiltersHidden(t *testing.T) {
	var l ListRegs
	l.Inject(hw.IRQVTimer, true) // RMM-managed, hidden from host
	l.Inject(hw.SPIBase+1, false)
	vis := l.VisibleSnapshot()
	if len(vis) != 1 || vis[0].IntID != hw.SPIBase+1 {
		t.Fatalf("visible = %+v", vis)
	}
}

func TestMergeHostListPreservesHidden(t *testing.T) {
	var l ListRegs
	l.Inject(hw.IRQVTimer, true)
	l.Inject(hw.SPIBase+1, false) // stale host entry, will be replaced
	rejected := l.MergeHostList([]ListReg{
		{IntID: hw.SPIBase + 2, State: Pending},
		{IntID: hw.SPIBase + 3, State: Pending},
	})
	if len(rejected) != 0 {
		t.Fatalf("rejected = %v", rejected)
	}
	if l.LiveCount() != 3 {
		t.Fatalf("live = %d, want 3 (1 hidden + 2 host)", l.LiveCount())
	}
	// Hidden vtimer entry survives the merge.
	foundHidden := false
	for i := 0; i < NumListRegs; i++ {
		r := l.At(i)
		if r.Valid() && r.Hidden && r.IntID == hw.IRQVTimer {
			foundHidden = true
		}
		if r.Valid() && !r.Hidden && r.IntID == hw.SPIBase+1 {
			t.Fatal("stale host entry survived merge")
		}
	}
	if !foundHidden {
		t.Fatal("hidden entry lost in merge")
	}
}

func TestMergeHostListOverflow(t *testing.T) {
	var l ListRegs
	for i := 0; i < NumListRegs-1; i++ {
		l.Inject(hw.SPIBase+hw.IRQ(100+i), true) // hog slots with hidden entries
	}
	rejected := l.MergeHostList([]ListReg{
		{IntID: hw.SPIBase + 1, State: Pending},
		{IntID: hw.SPIBase + 2, State: Pending},
	})
	if len(rejected) != 1 || rejected[0].IntID != hw.SPIBase+2 {
		t.Fatalf("rejected = %+v", rejected)
	}
}

func TestListRegsProperty(t *testing.T) {
	// Property: live count never exceeds NumListRegs; ack/EOI round trips
	// return the list to its prior live count minus one.
	f := func(irqs []uint8) bool {
		var l ListRegs
		for _, raw := range irqs {
			irq := hw.SPIBase + hw.IRQ(raw%64)
			before := l.LiveCount()
			slot := l.Inject(irq, raw%2 == 0)
			if l.LiveCount() > NumListRegs {
				return false
			}
			if slot == -1 && before != NumListRegs && l.PendingCount() == 0 {
				return false
			}
		}
		// Drain everything.
		for {
			s := l.HighestPending()
			if s < 0 {
				break
			}
			l.Ack(s)
			l.EOI(s)
		}
		return l.PendingCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVTimer(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	vt := NewVTimer(eng, "vtimer", func() { fired++ })
	vt.Arm(100)
	if !vt.Armed() {
		t.Fatal("not armed")
	}
	eng.Run()
	if fired != 1 || vt.Ticks() != 1 {
		t.Fatalf("fired=%d ticks=%d", fired, vt.Ticks())
	}
	if vt.Armed() {
		t.Fatal("armed after fire")
	}
	vt.Arm(50)
	vt.Disarm()
	eng.Run()
	if fired != 1 {
		t.Fatal("disarmed timer fired")
	}
	// Re-arm from the callback models periodic guest timers.
	vt2 := NewVTimer(eng, "p", nil)
	n := 0
	vt2.onFire = func() {
		n++
		if n < 5 {
			vt2.Arm(10)
		}
	}
	vt2.Arm(10)
	eng.Run()
	if n != 5 || vt2.Ticks() != 5 {
		t.Fatalf("periodic ticks = %d", n)
	}
}

func TestDistributorRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	m := hw.NewMachine(eng, hw.DefaultConfig(4))
	d := NewDistributor(m)

	var got []hw.IRQ
	m.Core(2).SetIRQHandler(func(_ hw.CoreID, irq hw.IRQ) { got = append(got, irq) })

	irq := hw.SPIBase + 4
	if d.Target(irq) != hw.NoCore {
		t.Fatal("unrouted target")
	}
	d.Trigger(irq) // unrouted + disabled: dropped
	d.Route(irq, 2)
	if d.Target(irq) != 2 {
		t.Fatal("target after route")
	}
	d.Trigger(irq)
	d.Disable(irq)
	d.Trigger(irq) // masked: dropped
	eng.Run()
	if len(got) != 1 || got[0] != irq {
		t.Fatalf("delivered = %v", got)
	}
	if d.Delivered(irq) != 1 {
		t.Fatalf("delivered count = %d", d.Delivered(irq))
	}
}

func TestDistributorRetargetAll(t *testing.T) {
	eng := sim.NewEngine(1)
	m := hw.NewMachine(eng, hw.DefaultConfig(4))
	d := NewDistributor(m)
	d.Route(hw.SPIBase+1, 1)
	d.Route(hw.SPIBase+2, 1)
	d.Route(hw.SPIBase+3, 2)
	if n := d.RetargetAll(1, 3); n != 2 {
		t.Fatalf("retargeted %d, want 2", n)
	}
	if d.Target(hw.SPIBase+1) != 3 || d.Target(hw.SPIBase+2) != 3 || d.Target(hw.SPIBase+3) != 2 {
		t.Fatal("retarget wrong")
	}
}

func TestLRStateStrings(t *testing.T) {
	for s, want := range map[LRState]string{
		Invalid: "invalid", Pending: "pending", Active: "active", PendingActive: "pending+active",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}
