// Package gic models the interrupt controller mechanisms the design
// depends on (§4.4, Fig. 5): the distributor that routes device
// interrupts to cores, the per-vCPU list registers (ich_lr<n>_el2)
// through which virtual interrupts are presented to a guest, and the
// per-vCPU virtual timer whose ticks dominate VM exits for compute-bound
// workloads.
package gic

import (
	"fmt"

	"coregap/internal/hw"
)

// NumListRegs is the number of list registers per virtual CPU interface.
// Arm implementations expose up to 16; we model the full architectural
// maximum.
const NumListRegs = 16

// LRState is the state of one list register, per the GIC architecture.
type LRState uint8

// List-register states.
const (
	Invalid LRState = iota
	Pending
	Active
	PendingActive
)

func (s LRState) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Pending:
		return "pending"
	case Active:
		return "active"
	case PendingActive:
		return "pending+active"
	default:
		return fmt.Sprintf("lrstate(%d)", uint8(s))
	}
}

// ListReg is one ich_lr<n>_el2 slot.
type ListReg struct {
	IntID hw.IRQ
	State LRState
	// Hidden marks interrupts the RMM manages itself and filters out of
	// the host-visible list (the paper's transparent delegation, Fig. 5).
	Hidden bool
}

// Valid reports whether the slot holds a live interrupt.
func (lr ListReg) Valid() bool { return lr.State != Invalid }

// ListRegs is a virtual CPU interface's bank of list registers.
type ListRegs struct {
	regs [NumListRegs]ListReg
}

// Inject places intid into a free slot as Pending. It reports the slot
// index, or -1 when no free slot exists (the guest must drain first).
// Injecting an interrupt that is already pending is idempotent, matching
// edge-collapsed SGI/PPI semantics.
func (l *ListRegs) Inject(intid hw.IRQ, hidden bool) int {
	for i, r := range l.regs {
		if r.Valid() && r.IntID == intid && (r.State == Pending || r.State == PendingActive) {
			return i
		}
	}
	for i, r := range l.regs {
		if !r.Valid() {
			l.regs[i] = ListReg{IntID: intid, State: Pending, Hidden: hidden}
			return i
		}
	}
	return -1
}

// HighestPending reports the slot of the highest-priority pending
// interrupt (lowest INTID first, a simplification of GIC priorities), or
// -1 when none is pending.
func (l *ListRegs) HighestPending() int {
	best := -1
	for i, r := range l.regs {
		if r.State == Pending || r.State == PendingActive {
			if best == -1 || r.IntID < l.regs[best].IntID {
				best = i
			}
		}
	}
	return best
}

// Ack transitions a pending slot to Active, modelling the guest reading
// IAR. It panics on misuse: the guest model must only ack pending slots.
func (l *ListRegs) Ack(slot int) hw.IRQ {
	r := &l.regs[slot]
	switch r.State {
	case Pending:
		r.State = Active
	case PendingActive:
		r.State = Active
	default:
		panic(fmt.Sprintf("gic: ack of %v slot", r.State))
	}
	return r.IntID
}

// EOI retires an active slot, modelling the guest's end-of-interrupt.
func (l *ListRegs) EOI(slot int) {
	r := &l.regs[slot]
	if r.State != Active {
		panic(fmt.Sprintf("gic: EOI of %v slot", r.State))
	}
	*r = ListReg{}
}

// Pending reports how many slots are pending.
func (l *ListRegs) PendingCount() int {
	n := 0
	for _, r := range l.regs {
		if r.State == Pending || r.State == PendingActive {
			n++
		}
	}
	return n
}

// LiveCount reports how many slots are valid.
func (l *ListRegs) LiveCount() int {
	n := 0
	for _, r := range l.regs {
		if r.Valid() {
			n++
		}
	}
	return n
}

// At returns slot i's contents.
func (l *ListRegs) At(i int) ListReg { return l.regs[i] }

// Set overwrites slot i (used when merging a host-provided list).
func (l *ListRegs) Set(i int, r ListReg) { l.regs[i] = r }

// VisibleSnapshot returns the host-visible view of the list: all
// non-hidden slots, in slot order. This is the filtered list the modified
// RMM exposes to KVM (Fig. 5 step 5) so delegation stays transparent.
func (l *ListRegs) VisibleSnapshot() []ListReg {
	var out []ListReg
	for _, r := range l.regs {
		if r.Valid() && !r.Hidden {
			out = append(out, r)
		}
	}
	return out
}

// MergeHostList installs the host-provided virtual interrupt list
// (run-call argument, Fig. 5 step 1) into free, non-hidden slots. The
// RMM-owned hidden slots are untouched; host entries that no longer fit
// are reported back so the caller can retry after the guest drains.
func (l *ListRegs) MergeHostList(host []ListReg) (rejected []ListReg) {
	// Clear previous non-hidden slots: the host list is authoritative
	// for the interrupts it manages.
	for i, r := range l.regs {
		if r.Valid() && !r.Hidden {
			l.regs[i] = ListReg{}
		}
	}
	for _, hr := range host {
		hr.Hidden = false
		placed := false
		for i, r := range l.regs {
			if !r.Valid() {
				l.regs[i] = hr
				placed = true
				break
			}
		}
		if !placed {
			rejected = append(rejected, hr)
		}
	}
	return rejected
}
