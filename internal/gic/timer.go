package gic

import (
	"coregap/internal/hw"
	"coregap/internal/sim"
)

// VTimer is a guest vCPU's virtual timer (CNTV). The guest arms it by
// writing the compare register — an operation that traps to whoever
// virtualizes the timer: the host (baseline) or the RMM (delegated,
// §4.4). When it expires, the virtual timer interrupt (PPI 27) must be
// injected into the vCPU.
type VTimer struct {
	timer  *sim.Timer
	onFire func()
	armed  bool
	// Ticks counts expirations, for the exit-accounting experiments.
	ticks uint64
}

// NewVTimer returns a virtual timer that calls onFire on each expiry.
func NewVTimer(eng *sim.Engine, label string, onFire func()) *VTimer {
	vt := &VTimer{onFire: onFire}
	vt.timer = sim.NewTimer(eng, label, func() {
		vt.armed = false
		vt.ticks++
		vt.onFire()
	})
	return vt
}

// Arm sets the timer d into the future (CNTV_CVAL write).
func (vt *VTimer) Arm(d sim.Duration) {
	vt.armed = true
	vt.timer.Arm(d)
}

// Disarm cancels the timer (CNTV_CTL disable).
func (vt *VTimer) Disarm() {
	vt.armed = false
	vt.timer.Disarm()
}

// Armed reports whether the timer is pending.
func (vt *VTimer) Armed() bool { return vt.armed }

// Ticks reports total expirations.
func (vt *VTimer) Ticks() uint64 { return vt.ticks }

// cSPITrigger counts device interrupts accepted by the distributor
// (enabled, routed, and handed to the machine for delivery).
var cSPITrigger = sim.DefineCounter("gic.spi_triggers")

// Distributor routes shared peripheral interrupts (SPIs) to cores. The
// host configures affinity; devices trigger interrupts.
type Distributor struct {
	mach    *hw.Machine
	routes  map[hw.IRQ]hw.CoreID
	enabled map[hw.IRQ]bool
	// delivered counts per-IRQ deliveries.
	delivered map[hw.IRQ]uint64
}

// NewDistributor returns a distributor with no routes.
func NewDistributor(m *hw.Machine) *Distributor {
	return &Distributor{
		mach:      m,
		routes:    make(map[hw.IRQ]hw.CoreID),
		enabled:   make(map[hw.IRQ]bool),
		delivered: make(map[hw.IRQ]uint64),
	}
}

// Reset forgets every route, mask and delivery count, reusing the maps'
// buckets so a pooled distributor is rebuilt without allocation.
func (d *Distributor) Reset() {
	clear(d.routes)
	clear(d.enabled)
	clear(d.delivered)
}

// Route sets the target core for an SPI and enables it.
func (d *Distributor) Route(irq hw.IRQ, to hw.CoreID) {
	d.routes[irq] = to
	d.enabled[irq] = true
}

// Disable masks an SPI.
func (d *Distributor) Disable(irq hw.IRQ) { d.enabled[irq] = false }

// Target reports the configured target core (NoCore when unrouted).
func (d *Distributor) Target(irq hw.IRQ) hw.CoreID {
	if to, ok := d.routes[irq]; ok {
		return to
	}
	return hw.NoCore
}

// Trigger fires an SPI from a device; it is delivered to the routed core
// if enabled, and silently dropped otherwise (matching masked behaviour).
func (d *Distributor) Trigger(irq hw.IRQ) {
	if !d.enabled[irq] {
		return
	}
	to, ok := d.routes[irq]
	if !ok {
		return
	}
	d.delivered[irq]++
	eng := d.mach.Engine()
	eng.Count(cSPITrigger)
	eng.Trace().Emit(sim.TCIRQ, "gic.spi", int32(to), int64(irq))
	d.mach.DeliverIRQ(to, irq)
}

// Delivered reports how many times irq has been delivered.
func (d *Distributor) Delivered(irq hw.IRQ) uint64 { return d.delivered[irq] }

// RetargetAll moves every SPI currently routed to "from" over to "to" —
// the interrupt-migration step of the CPU hotplug path (§4.2).
func (d *Distributor) RetargetAll(from, to hw.CoreID) int {
	n := 0
	for irq, core := range d.routes {
		if core == from {
			d.routes[irq] = to
			n++
		}
	}
	return n
}
