package uarch

import (
	"testing"
	"testing/quick"

	"coregap/internal/sim"
)

func TestDomainStrings(t *testing.T) {
	cases := map[DomainID]string{
		DomainNone:    "none",
		DomainHost:    "host",
		DomainMonitor: "monitor",
		Guest(0):      "guest0",
		Guest(7):      "guest7",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
	if DomainID(50).String() != "domain50" {
		t.Error("unknown domain string")
	}
}

func TestTrustRelation(t *testing.T) {
	g0, g1 := Guest(0), Guest(1)
	if !g0.Trusts(g0) || !g0.Trusts(DomainMonitor) {
		t.Fatal("guest must trust itself and the monitor")
	}
	if g0.Trusts(DomainHost) || g0.Trusts(g1) {
		t.Fatal("guest must not trust host or other guests")
	}
	if DomainHost.Trusts(g0) {
		t.Fatal("host must not trust guests")
	}
	if !DomainHost.Trusts(DomainMonitor) {
		t.Fatal("host trusts the attested monitor")
	}
}

func TestIsGuest(t *testing.T) {
	if DomainHost.IsGuest() || DomainMonitor.IsGuest() {
		t.Fatal("host/monitor are not guests")
	}
	if !Guest(0).IsGuest() {
		t.Fatal("Guest(0) is a guest")
	}
}

func TestKindSharing(t *testing.T) {
	if L1D.Shared() || BTB.Shared() || FillBuffer.Shared() {
		t.Fatal("per-core kind reported shared")
	}
	if !LLC.Shared() || !Staging.Shared() {
		t.Fatal("shared kind reported per-core")
	}
	per, shared := PerCoreKinds(), SharedKinds()
	if len(per) == 0 || len(shared) == 0 {
		t.Fatal("kind enumeration empty")
	}
	for _, k := range per {
		if k.Shared() {
			t.Fatalf("%v in PerCoreKinds but shared", k)
		}
		if k.String() == "" {
			t.Fatalf("%v has no name", int(k))
		}
	}
	for _, k := range shared {
		if !k.Shared() {
			t.Fatalf("%v in SharedKinds but per-core", k)
		}
	}
}

func TestBufferFIFOEviction(t *testing.T) {
	b := NewBuffer(L1D, 3)
	for i := uint64(1); i <= 3; i++ {
		if ev := b.Insert(Entry{Domain: DomainHost, Tag: i}); ev.Domain != DomainNone {
			t.Fatal("eviction before full")
		}
	}
	ev := b.Insert(Entry{Domain: DomainHost, Tag: 4})
	if ev.Tag != 1 {
		t.Fatalf("evicted tag %d, want 1 (FIFO)", ev.Tag)
	}
	ev = b.Insert(Entry{Domain: DomainHost, Tag: 5})
	if ev.Tag != 2 {
		t.Fatalf("evicted tag %d, want 2", ev.Tag)
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
}

func TestBufferResidue(t *testing.T) {
	b := NewBuffer(FillBuffer, 8)
	b.Insert(Entry{Domain: Guest(0), Secret: true, Tag: 1})
	b.Insert(Entry{Domain: Guest(0), Secret: false, Tag: 2})
	b.Insert(Entry{Domain: DomainHost, Tag: 3})
	b.Insert(Entry{Domain: DomainMonitor, Tag: 4})

	// Host samples: sees guest residue (guest does not trust host), but
	// monitor residue is trusted-only in the other direction — monitor
	// does not trust host either, so its residue is also visible risk.
	res := b.Residue(DomainHost)
	if len(res) != 3 {
		t.Fatalf("host sees %d residue entries, want 3", len(res))
	}
	sec := b.SecretResidue(DomainHost)
	if len(sec) != 1 || sec[0].Tag != 1 {
		t.Fatalf("secret residue = %+v", sec)
	}

	// The monitor is trusted by everyone: no entry is residue for it.
	if res := b.Residue(DomainMonitor); len(res) != 0 {
		t.Fatalf("monitor sees %d residue entries, want 0", len(res))
	}

	// Guest 1 sampling sees guest 0, host, and monitor residue.
	if res := b.Residue(Guest(1)); len(res) != 4 {
		t.Fatalf("guest1 sees %d residue entries, want 4", len(res))
	}
}

func TestBufferFlush(t *testing.T) {
	b := NewBuffer(StoreBuffer, 4)
	b.Insert(Entry{Domain: Guest(0), Tag: 1})
	b.Insert(Entry{Domain: DomainHost, Tag: 2})
	b.Flush()
	if b.Len() != 0 {
		t.Fatal("flush left entries")
	}
	if len(b.Residue(DomainHost)) != 0 {
		t.Fatal("flush left residue")
	}
}

func TestBufferFlushDomain(t *testing.T) {
	b := NewBuffer(BTB, 8)
	for i := uint64(0); i < 4; i++ {
		b.Insert(Entry{Domain: Guest(0), Tag: i})
		b.Insert(Entry{Domain: DomainHost, Tag: 100 + i})
	}
	b.FlushDomain(Guest(0))
	if b.CountDomain(Guest(0)) != 0 {
		t.Fatal("FlushDomain left owner entries")
	}
	if b.CountDomain(DomainHost) != 4 {
		t.Fatalf("FlushDomain disturbed other domains: %d", b.CountDomain(DomainHost))
	}
}

func TestBufferOccupancy(t *testing.T) {
	b := NewBuffer(L1D, 10)
	for i := 0; i < 5; i++ {
		b.Insert(Entry{Domain: Guest(0)})
	}
	if got := b.Occupancy(Guest(0)); got != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5", got)
	}
}

func TestBufferInvariantsProperty(t *testing.T) {
	src := sim.NewSource(5)
	f := func(ops []bool) bool {
		b := NewBuffer(DTLB, 16)
		for _, ins := range ops {
			if ins {
				b.Insert(Entry{Domain: Guest(src.Intn(3)), Tag: src.Uint64()})
			} else {
				b.FlushDomain(Guest(src.Intn(3)))
			}
			if b.Len() > b.Cap() {
				return false
			}
			total := 0
			for g := 0; g < 3; g++ {
				total += b.CountDomain(Guest(g))
			}
			if total != b.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreStateTouchAndWarmth(t *testing.T) {
	cs := NewCoreState()
	src := sim.NewSource(1)
	cs.Touch(Guest(0), 1.0, 0, src)
	if w := cs.Warmth(Guest(0)); w < 0.95 {
		t.Fatalf("full touch warmth = %v, want ~1", w)
	}
	if w := cs.Warmth(DomainHost); w != 0 {
		t.Fatalf("host warmth = %v, want 0", w)
	}
	// Host runs with a moderate footprint: guest warmth must drop.
	cs.Touch(DomainHost, 0.5, 0, src)
	if w := cs.Warmth(Guest(0)); w > 0.9 {
		t.Fatalf("guest warmth after host interference = %v, want < 0.9", w)
	}
	if cs.LastDomain() != DomainHost {
		t.Fatal("LastDomain not updated")
	}
	if cs.DomainSwitches() != 1 {
		t.Fatalf("switches = %d, want 1", cs.DomainSwitches())
	}
}

func TestCoreStateSecretTagging(t *testing.T) {
	cs := NewCoreState()
	src := sim.NewSource(2)
	cs.Touch(Guest(0), 0.5, 1.0, src) // everything secret
	res := cs.Buffer(FillBuffer).SecretResidue(DomainHost)
	if len(res) == 0 {
		t.Fatal("secret touch left no secret residue in fill buffers")
	}
}

func TestCoreStateFlushAll(t *testing.T) {
	cs := NewCoreState()
	src := sim.NewSource(3)
	cs.Touch(Guest(0), 1.0, 0.5, src)
	cost := cs.FlushAll(DefaultFlushCosts())
	if cost <= 0 {
		t.Fatal("flush cost must be positive")
	}
	if res := cs.ResidueFor(DomainHost); len(res) != 0 {
		t.Fatalf("residue after FlushAll: %v", res)
	}
}

func TestCoreStateFlushMitigations(t *testing.T) {
	cs := NewCoreState()
	src := sim.NewSource(4)
	cs.Touch(Guest(0), 1.0, 1.0, src)
	cs.FlushMitigations(DefaultFlushCosts())
	// Mitigation flushes clear buffers (MDS-class) but NOT the L1D/TLB —
	// the retroactive, partial nature of real mitigations (§2.1).
	if cs.Buffer(FillBuffer).Len() != 0 || cs.Buffer(StoreBuffer).Len() != 0 {
		t.Fatal("mitigation flush left MDS buffers")
	}
	if cs.Buffer(L1D).Len() == 0 {
		t.Fatal("mitigation flush unexpectedly cleared L1D")
	}
}

func TestSharedStateStagingCrossCore(t *testing.T) {
	ss := NewSharedState(8192, 16)
	src := sim.NewSource(6)
	// Guest 0 executes RDRAND-class instructions on *its own* core.
	ss.TouchShared(Guest(0), 0.1, true, src)
	// Host on a different core can still sample the staging buffer:
	// this is CrossTalk, the one cross-core exception (§2.2).
	if res := ss.Staging().SecretResidue(DomainHost); len(res) == 0 {
		t.Fatal("staging buffer must leak cross-core (CrossTalk)")
	}
}

func TestLLCPartitioning(t *testing.T) {
	ss := NewSharedState(8192, 16)
	if ss.Partitioned() {
		t.Fatal("partitioning on by default")
	}
	if !ss.LLCObservable(Guest(0), DomainHost) {
		t.Fatal("unpartitioned LLC must be observable")
	}
	ss.EnablePartitioning()
	if !ss.AssignWays(Guest(0), 4) || !ss.AssignWays(DomainHost, 4) {
		t.Fatal("way assignment failed")
	}
	if ss.AssignWays(Guest(1), 16) {
		t.Fatal("over-assignment must fail")
	}
	if ss.LLCObservable(Guest(0), DomainHost) {
		t.Fatal("partitioned LLC must not be observable cross-domain")
	}
	if !ss.LLCObservable(Guest(0), Guest(0)) {
		t.Fatal("domain must observe itself")
	}
	ss.ReleaseWays(Guest(0))
	if !ss.AssignWays(Guest(1), 8) {
		t.Fatal("release did not free ways")
	}
}

func TestFlushCostsComplete(t *testing.T) {
	costs := DefaultFlushCosts()
	for _, k := range PerCoreKinds() {
		if _, ok := costs[k]; !ok {
			t.Errorf("no flush cost for %v", k)
		}
	}
}

// TestFillMatchesSequentialInsert pins the bulk-fill fast path to the
// reference semantics: identical Source consumption and identical final
// ring state as entry-by-entry Insert, across growth, wrap-around and
// secret-tagging cases. Any divergence here breaks byte-identical
// reproduction, not just performance.
func TestFillMatchesSequentialInsert(t *testing.T) {
	for _, tc := range []struct {
		name       string
		cap        int
		rounds     []int
		secretFrac float64
	}{
		{"grow-only", 64, []int{10, 20}, 0},
		{"wrap", 16, []int{10, 40, 7}, 0},
		{"exact-cap", 32, []int{32, 32}, 0},
		{"secret-wrap", 16, []int{10, 40, 7}, 0.3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref := NewBuffer(L1D, tc.cap)
			refSrc := sim.NewSource(99)
			fast := NewBuffer(L1D, tc.cap)
			fastSrc := sim.NewSource(99)
			for r, n := range tc.rounds {
				d := Guest(r)
				for i := 0; i < n; i++ {
					secret := tc.secretFrac > 0 && refSrc.Float64() < tc.secretFrac
					ref.Insert(Entry{Domain: d, Secret: secret, Tag: refSrc.Uint64()})
				}
				// Record the lazy run and advance the stream exactly as
				// Touch does for each structure in its batch.
				frac, draws := -1.0, uint64(n)
				if tc.secretFrac > 0 {
					frac, draws = tc.secretFrac, uint64(2*n)
				}
				fast.pushFill(d, n, frac, fastSrc.State(), 0)
				fastSrc.Skip(draws)
				// Aggregates must agree while fills are still pending.
				if ref.Len() != fast.Len() {
					t.Fatalf("round %d: lazy Len %d, eager %d", r, fast.Len(), ref.Len())
				}
				for probe := 0; probe <= r; probe++ {
					if rc, fc := ref.CountDomain(Guest(probe)), fast.CountDomain(Guest(probe)); rc != fc {
						t.Fatalf("round %d: lazy CountDomain(%v) %d, eager %d", r, Guest(probe), fc, rc)
					}
				}
			}
			fast.materialize()
			if ref.next != fast.next || len(ref.entries) != len(fast.entries) {
				t.Fatalf("ring state diverged: next %d/%d len %d/%d",
					ref.next, fast.next, len(ref.entries), len(fast.entries))
			}
			for i := range ref.entries {
				if ref.entries[i] != fast.entries[i] {
					t.Fatalf("entry %d diverged: %+v vs %+v", i, ref.entries[i], fast.entries[i])
				}
			}
			if refSrc.Uint64() != fastSrc.Uint64() {
				t.Fatal("random stream position diverged")
			}
		})
	}
}
