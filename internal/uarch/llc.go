package uarch

import "coregap/internal/sim"

// SetAssocCache is a set-indexed, set-associative cache model for the
// shared LLC — fine-grained enough to express the classic cross-core
// PRIME+PROBE contention channel (§2.4: last-level-cache side channels
// remain after core gapping and are closed by way-partitioning, not by
// placement).
//
// Unlike Buffer (which models occupancy), SetAssocCache models *where*
// lines land: an attacker that primes a set and later finds its lines
// evicted learns that the victim touched that set, secret-tagged or not —
// the channel carries address bits, which is all an LLC attack needs.
type SetAssocCache struct {
	sets  int
	ways  int
	lines [][]cacheLine // [set][way]
	rr    []int         // per-set round-robin eviction cursor

	// wayOwner, when partitioning is on, restricts each way index to one
	// domain across all sets (way-partitioning as in Arm MPAM / Intel CAT).
	partitioned bool
	wayOwner    []DomainID
}

type cacheLine struct {
	valid  bool
	domain DomainID
	tag    uint64
}

// NewSetAssocCache builds a sets×ways cache. Both must be powers of two
// in real hardware; the model only requires them positive.
func NewSetAssocCache(sets, ways int) *SetAssocCache {
	c := &SetAssocCache{
		sets:     sets,
		ways:     ways,
		lines:    make([][]cacheLine, sets),
		rr:       make([]int, sets),
		wayOwner: make([]DomainID, ways),
	}
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, ways)
	}
	return c
}

// Reset invalidates every line, rewinds the per-set eviction cursors,
// and clears partitioning, reusing the line arrays — a pooled cache is
// indistinguishable from a fresh NewSetAssocCache of the same geometry.
func (c *SetAssocCache) Reset() {
	for _, set := range c.lines {
		clear(set)
	}
	clear(c.rr)
	c.partitioned = false
	clear(c.wayOwner)
}

// Sets and Ways report the geometry.
func (c *SetAssocCache) Sets() int { return c.sets }

// Ways reports the associativity.
func (c *SetAssocCache) Ways() int { return c.ways }

// Partition assigns way ranges to domains: domain d gets ways
// [from, from+n). Enables partitioned mode.
func (c *SetAssocCache) Partition(d DomainID, from, n int) {
	c.partitioned = true
	for w := from; w < from+n && w < c.ways; w++ {
		c.wayOwner[w] = d
	}
}

// Partitioned reports whether way-partitioning is active.
func (c *SetAssocCache) Partitioned() bool { return c.partitioned }

func (c *SetAssocCache) setIndex(addr uint64) int {
	return int((addr >> 6) % uint64(c.sets)) // 64-byte lines
}

// Access models domain d touching addr: a lookup that allocates on miss,
// evicting within the domain's allowed ways. It reports whether the
// access evicted another domain's line (the observable contention event).
func (c *SetAssocCache) Access(d DomainID, addr uint64) (evictedForeign bool) {
	set := c.setIndex(addr)
	tag := addr >> 6
	lines := c.lines[set]

	// Hit?
	for w := range lines {
		if lines[w].valid && lines[w].tag == tag && c.wayAllowed(d, w) {
			return false
		}
	}
	// Miss: allocate in an allowed way — free first, else round robin.
	victim := -1
	for w := range lines {
		if c.wayAllowed(d, w) && !lines[w].valid {
			victim = w
			break
		}
	}
	if victim == -1 {
		// Rotate among allowed ways.
		start := c.rr[set]
		for i := 0; i < c.ways; i++ {
			w := (start + i) % c.ways
			if c.wayAllowed(d, w) {
				victim = w
				c.rr[set] = (w + 1) % c.ways
				break
			}
		}
	}
	if victim == -1 {
		return false // domain has no ways at all
	}
	evictedForeign = lines[victim].valid && lines[victim].domain != d
	lines[victim] = cacheLine{valid: true, domain: d, tag: tag}
	return evictedForeign
}

// WaysAvailable reports how many ways domain d may allocate into.
func (c *SetAssocCache) WaysAvailable(d DomainID) int {
	if !c.partitioned {
		return c.ways
	}
	n := 0
	for w := range c.wayOwner {
		if c.wayOwner[w] == d || c.wayOwner[w] == DomainNone {
			n++
		}
	}
	return n
}

func (c *SetAssocCache) wayAllowed(d DomainID, w int) bool {
	if !c.partitioned {
		return true
	}
	return c.wayOwner[w] == d || c.wayOwner[w] == DomainNone
}

// Present reports whether domain d's line for addr is still cached —
// the probe step of PRIME+PROBE (a fast access = still present).
func (c *SetAssocCache) Present(d DomainID, addr uint64) bool {
	set := c.setIndex(addr)
	tag := addr >> 6
	for _, l := range c.lines[set] {
		if l.valid && l.tag == tag && l.domain == d {
			return true
		}
	}
	return false
}

// OccupancyOf reports the fraction of all lines owned by d.
func (c *SetAssocCache) OccupancyOf(d DomainID) float64 {
	n := 0
	for _, set := range c.lines {
		for _, l := range set {
			if l.valid && l.domain == d {
				n++
			}
		}
	}
	return float64(n) / float64(c.sets*c.ways)
}

// FlushDomain drops all of d's lines (used on teardown/scrub).
func (c *SetAssocCache) FlushDomain(d DomainID) {
	for _, set := range c.lines {
		for w := range set {
			if set[w].domain == d {
				set[w] = cacheLine{}
			}
		}
	}
}

// AccessLatency models the timing side of the probe: a cached line
// answers in llcHit; an evicted one goes to memory.
const (
	llcHit  = 30 * sim.Nanosecond
	llcMiss = 110 * sim.Nanosecond
)

// ProbeLatency reports the modelled probe time for one line.
func (c *SetAssocCache) ProbeLatency(d DomainID, addr uint64) sim.Duration {
	if c.Present(d, addr) {
		return llcHit
	}
	return llcMiss
}
