package uarch

import (
	"testing"
	"testing/quick"
)

func TestSetAssocGeometryAndIndexing(t *testing.T) {
	c := NewSetAssocCache(8, 4)
	if c.Sets() != 8 || c.Ways() != 4 || c.Partitioned() {
		t.Fatal("geometry/defaults")
	}
	d := Guest(0)
	// Addresses 64 bytes apart land in consecutive sets.
	for i := 0; i < 8; i++ {
		c.Access(d, uint64(i)<<6)
	}
	for i := 0; i < 8; i++ {
		if !c.Present(d, uint64(i)<<6) {
			t.Fatalf("line %d missing", i)
		}
	}
	if got := c.OccupancyOf(d); got != 8.0/32.0 {
		t.Fatalf("occupancy = %v", got)
	}
}

func TestSetAssocEvictionWithinSet(t *testing.T) {
	c := NewSetAssocCache(4, 2)
	d := Guest(0)
	// Three conflicting lines in set 1: the first is evicted.
	for _, tag := range []uint64{1, 5, 9} {
		c.Access(d, tag<<6)
	}
	if c.Present(d, 1<<6) {
		t.Fatal("oldest conflicting line survived")
	}
	if !c.Present(d, 5<<6) || !c.Present(d, 9<<6) {
		t.Fatal("newer lines evicted")
	}
	// Untouched sets are unaffected.
	c.Access(d, 2<<6)
	if !c.Present(d, 2<<6) {
		t.Fatal("other set disturbed")
	}
}

func TestSetAssocForeignEvictionReporting(t *testing.T) {
	c := NewSetAssocCache(2, 1)
	a, b := Guest(0), Guest(1)
	if ev := c.Access(a, 0); ev {
		t.Fatal("cold miss reported foreign eviction")
	}
	if ev := c.Access(a, 0); ev {
		t.Fatal("hit reported eviction")
	}
	if ev := c.Access(b, 2<<6); !ev { // same set 0, different tag & domain
		t.Fatal("foreign eviction not reported")
	}
}

func TestSetAssocPartitioningIsolation(t *testing.T) {
	c := NewSetAssocCache(2, 4)
	a, b := Guest(0), Guest(1)
	c.Partition(a, 0, 2)
	c.Partition(b, 2, 2)
	if !c.Partitioned() {
		t.Fatal("not partitioned")
	}
	if c.WaysAvailable(a) != 2 || c.WaysAvailable(b) != 2 {
		t.Fatalf("ways available: %d/%d", c.WaysAvailable(a), c.WaysAvailable(b))
	}
	// b's line survives arbitrary pressure from a.
	c.Access(b, 0)
	for i := uint64(0); i < 32; i++ {
		c.Access(a, (2*i)<<6)
	}
	if !c.Present(b, 0) {
		t.Fatal("partition violated")
	}
	// A domain with no ways cannot allocate and evicts nothing.
	ghost := Guest(9)
	if c.WaysAvailable(ghost) != 0 {
		t.Fatal("ghost has ways")
	}
	if ev := c.Access(ghost, 0); ev {
		t.Fatal("wayless domain evicted a line")
	}
	if c.Present(ghost, 0) {
		t.Fatal("wayless domain allocated")
	}
}

func TestSetAssocProbeLatency(t *testing.T) {
	c := NewSetAssocCache(2, 2)
	d := Guest(0)
	c.Access(d, 0)
	hit := c.ProbeLatency(d, 0)
	miss := c.ProbeLatency(d, 4<<6)
	if hit >= miss {
		t.Fatalf("hit %v not faster than miss %v", hit, miss)
	}
}

func TestSetAssocFlushDomain(t *testing.T) {
	c := NewSetAssocCache(4, 2)
	a, b := Guest(0), Guest(1)
	c.Access(a, 0)
	c.Access(b, 1<<6)
	c.FlushDomain(a)
	if c.OccupancyOf(a) != 0 {
		t.Fatal("flush left lines")
	}
	if !c.Present(b, 1<<6) {
		t.Fatal("flush disturbed other domain")
	}
}

func TestSetAssocOccupancyInvariant(t *testing.T) {
	f := func(addrsRaw []uint16, domsRaw []uint8) bool {
		c := NewSetAssocCache(8, 2)
		for i, a := range addrsRaw {
			d := Guest(0)
			if i < len(domsRaw) {
				d = Guest(int(domsRaw[i]) % 3)
			}
			c.Access(d, uint64(a)<<6)
		}
		var total float64
		for g := 0; g < 3; g++ {
			total += c.OccupancyOf(Guest(g))
		}
		return total <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
