// Package uarch models the microarchitectural state that transient-execution
// attacks exploit: per-core structures (L1 caches, TLBs, branch predictors,
// store buffers, line-fill buffers) and cross-core structures (last-level
// cache, the CPUID/RDRAND staging buffer of CrossTalk fame).
//
// The model is deliberately architectural rather than cycle-accurate: each
// structure is a bounded set of entries tagged with the security domain that
// created them and whether they are derived from secret data. This captures
// exactly the property the paper's security argument rests on — *which
// structures can hold another domain's state when code runs on a core* —
// while also supplying a warmth/pollution signal used by the performance
// model (cold microarchitectural state after host interference, §2.3).
package uarch

import (
	"fmt"

	"coregap/internal/sim"
)

// DomainID identifies a security domain: the untrusted host, the trusted
// monitor, or one confidential VM. Domains are the unit of distrust.
type DomainID int32

// Well-known domains. Guest domains are allocated from GuestBase upward.
const (
	DomainNone    DomainID = 0
	DomainHost    DomainID = 1
	DomainMonitor DomainID = 2
	GuestBase     DomainID = 100
)

// Guest returns the domain for guest (CVM) index i.
func Guest(i int) DomainID { return GuestBase + DomainID(i) }

// IsGuest reports whether d identifies a confidential VM.
func (d DomainID) IsGuest() bool { return d >= GuestBase }

func (d DomainID) String() string {
	switch {
	case d == DomainNone:
		return "none"
	case d == DomainHost:
		return "host"
	case d == DomainMonitor:
		return "monitor"
	case d.IsGuest():
		return fmt.Sprintf("guest%d", d-GuestBase)
	default:
		return fmt.Sprintf("domain%d", int32(d))
	}
}

// Trusts reports whether domain d trusts domain other to observe its
// microarchitectural residue. Every domain trusts itself and the monitor
// (which is attested and wipes its own state); nothing else is trusted.
func (d DomainID) Trusts(other DomainID) bool {
	return d == other || other == DomainMonitor
}

// StructKind identifies one microarchitectural structure class.
type StructKind int

// The structures the Fig. 3 vulnerabilities exploit. Kinds below
// sharedKindsStart are per-core; the rest are shared across cores.
const (
	L1D StructKind = iota
	L1I
	L2
	DTLB
	ITLB
	BTB // branch target buffer / branch history
	RSB // return stack buffer
	StoreBuffer
	FillBuffer // line-fill buffers (MDS family)
	LoadPort
	FPURegs   // FPU/SIMD register file (LazyFP, Zenbleed)
	UopCache  // micro-op cache
	APICRegs  // local APIC architectural/superqueue state (ÆPIC)
	Prefetch  // data-memory-dependent prefetcher state (Augury, GoFetch)
	LLC       // shared last-level cache
	Staging   // shared staging buffer for CPUID/RDRAND etc. (CrossTalk)
	Interconn // on-chip interconnect/mesh contention state
	numKinds
)

const sharedKindsStart = LLC

var kindNames = [...]string{
	L1D: "L1D", L1I: "L1I", L2: "L2", DTLB: "dTLB", ITLB: "iTLB",
	BTB: "BTB", RSB: "RSB", StoreBuffer: "store-buffer",
	FillBuffer: "fill-buffer", LoadPort: "load-port", FPURegs: "fpu-regs",
	UopCache: "uop-cache", APICRegs: "apic", Prefetch: "dmp-prefetcher",
	LLC: "LLC", Staging: "staging-buffer", Interconn: "interconnect",
}

func (k StructKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("struct(%d)", int(k))
}

// Shared reports whether the structure is shared across physical cores.
func (k StructKind) Shared() bool { return k >= sharedKindsStart }

// PerCoreKinds lists all per-core structure kinds.
func PerCoreKinds() []StructKind {
	kinds := make([]StructKind, 0, int(sharedKindsStart))
	for k := StructKind(0); k < sharedKindsStart; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// SharedKinds lists all cross-core structure kinds.
func SharedKinds() []StructKind {
	kinds := make([]StructKind, 0, int(numKinds-sharedKindsStart))
	for k := sharedKindsStart; k < numKinds; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// Entry is one tagged slot of a structure.
type Entry struct {
	Domain DomainID
	Secret bool   // derived from data the owning domain considers secret
	Tag    uint64 // opaque identity (address bits, branch PC, ...)
}

// Buffer is a bounded structure holding tagged entries with FIFO
// replacement. FIFO (rather than LRU) keeps the model simple; replacement
// policy does not affect any security verdict, only warmth decay shape.
//
// Bulk fills from Touch are LAZY: they are recorded as fillRuns (domain,
// count, tag-stream start state) while the stream itself is advanced
// with Source.Skip, and the per-entry draws only happen if an
// entry-level reader — Residue, Insert, FlushDomain — ever looks
// (materialize replays the recorded runs and reconstructs entries
// byte-identically to the eager fill). Aggregate readers — Len,
// CountDomain, Occupancy, and through them Warmth — are answered from
// ring-interval arithmetic over the runs without materializing, which
// is what removes the fill loops from the simulator's hottest path.
type Buffer struct {
	kind    StructKind
	cap     int
	entries []Entry // materialized prefix; ring position == index
	next    int     // FIFO replacement cursor of the materialized prefix

	// Deferred fills, oldest first. While pend > 0 the buffer's true
	// state is (entries, next) with every run replayed on top; vlen and
	// vnext track the Len/next that replay would produce.
	runs  []fillRun
	pend  int // total entries across runs
	vlen  int
	vnext int
}

// fillRun is one deferred bulk fill: n entries by domain, whose tags
// replay from src after skipping skip draws (the draws consumed by
// earlier runs recorded in the same Touch batch). secretFrac < 0 marks
// a plain fill (one draw per entry); >= 0 a secret fill (two).
type fillRun struct {
	src        [4]uint64
	skip       uint32
	n          int32
	start      int32 // ring cursor where the run's first entry lands
	domain     DomainID
	secretFrac float64
}

// NewBuffer returns an empty buffer of the given capacity.
func NewBuffer(kind StructKind, capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("uarch: buffer %v with capacity %d", kind, capacity))
	}
	return &Buffer{kind: kind, cap: capacity}
}

// Kind reports the structure class.
func (b *Buffer) Kind() StructKind { return b.kind }

// Cap reports the entry capacity.
func (b *Buffer) Cap() int { return b.cap }

// Len reports the number of valid entries.
func (b *Buffer) Len() int {
	if b.pend > 0 {
		return b.vlen
	}
	return len(b.entries)
}

// Insert adds an entry, evicting the oldest when full. It reports the
// evicted entry (Domain == DomainNone when nothing was evicted).
func (b *Buffer) Insert(e Entry) (evicted Entry) {
	if b.pend > 0 {
		b.materialize()
	}
	if len(b.entries) < b.cap {
		b.entries = append(b.entries, e)
		return Entry{}
	}
	evicted = b.entries[b.next]
	b.entries[b.next] = e
	// Conditional wrap, not %: this runs ~1e9 times per benchsuite run
	// and an integer divide dominated the whole simulator's profile.
	b.next++
	if b.next == b.cap {
		b.next = 0
	}
	return evicted
}

// CountDomain reports how many entries belong to d. With fills pending
// it is answered from run arithmetic: each run's surviving entry count
// is its length minus however much the entries written after it wrapped
// around the ring into it, and base entries count only where the runs'
// combined write window has not overwritten them.
func (b *Buffer) CountDomain(d DomainID) int {
	n := 0
	if b.pend > 0 {
		newer := 0
		for i := len(b.runs) - 1; i >= 0; i-- {
			r := &b.runs[i]
			vis := int(r.n)
			if over := newer - (b.cap - vis); over > 0 {
				vis -= over
			}
			if vis > 0 && r.domain == d {
				n += vis
			}
			newer += int(r.n)
		}
		covered := b.pend
		if covered > b.cap {
			covered = b.cap
		}
		wstart := b.vnext - covered
		if b.vlen < b.cap {
			// Still in the append phase: the runs occupy the tail
			// [vlen-covered, vlen) and never wrapped over the base.
			wstart = b.vlen - covered
		}
		if wstart < 0 {
			wstart += b.cap
		}
		for p, e := range b.entries {
			if e.Domain != d {
				continue
			}
			off := p - wstart
			if off < 0 {
				off += b.cap
			}
			if off >= covered {
				n++
			}
		}
		return n
	}
	for _, e := range b.entries {
		if e.Domain == d {
			n++
		}
	}
	return n
}

// Occupancy reports the fraction of capacity holding d's entries.
func (b *Buffer) Occupancy(d DomainID) float64 {
	return float64(b.CountDomain(d)) / float64(b.cap)
}

// Residue reports all entries whose owner does not trust reader — i.e. the
// foreign state a transient-execution primitive run by reader could sample.
func (b *Buffer) Residue(reader DomainID) []Entry {
	if b.pend > 0 {
		b.materialize()
	}
	var out []Entry
	for _, e := range b.entries {
		if e.Domain != DomainNone && !e.Domain.Trusts(reader) {
			out = append(out, e)
		}
	}
	return out
}

// SecretResidue reports foreign entries that are secret-tagged.
func (b *Buffer) SecretResidue(reader DomainID) []Entry {
	var out []Entry
	for _, e := range b.Residue(reader) {
		if e.Secret {
			out = append(out, e)
		}
	}
	return out
}

// Flush removes all entries (architectural flush, e.g. verw/DSB-style).
// Pending fills are dropped unmaterialized — their tag draws were
// consumed from the stream at fill time, exactly as an eager fill's
// would have been.
func (b *Buffer) Flush() {
	b.entries = b.entries[:0]
	b.next = 0
	b.runs = b.runs[:0]
	b.pend = 0
	b.vlen = 0
	b.vnext = 0
}

// Reset empties the buffer for reuse across trials. The entries slice
// keeps its grown capacity, so a pooled buffer refills without
// reallocating; the observable state is identical to a fresh buffer.
func (b *Buffer) Reset() { b.Flush() }

// FlushDomain removes entries belonging to d, preserving others.
func (b *Buffer) FlushDomain(d DomainID) {
	if b.pend > 0 {
		b.materialize()
	}
	kept := b.entries[:0]
	for _, e := range b.entries {
		if e.Domain != d {
			kept = append(kept, e)
		}
	}
	b.entries = kept
	if b.next > len(b.entries) {
		b.next = 0
	}
	if len(b.entries) < b.cap {
		b.next = 0
	}
}

// pushFill records a deferred bulk fill of n entries by domain d whose
// tags derive from stream state src after skip draws. The caller is
// responsible for advancing the live stream (Source.Skip) by exactly
// the draws the fill would have consumed.
func (b *Buffer) pushFill(d DomainID, n int, secretFrac float64, src [4]uint64, skip uint32) {
	if b.pend == 0 {
		b.vlen, b.vnext = len(b.entries), b.next
	}
	start := b.vlen
	if b.vlen == b.cap {
		start = b.vnext
	}
	b.runs = append(b.runs, fillRun{
		src: src, skip: skip, n: int32(n), start: int32(start),
		domain: d, secretFrac: secretFrac,
	})
	b.pend += n
	if b.vlen += n; b.vlen >= b.cap {
		b.vlen = b.cap
		b.vnext = start + n
		for b.vnext >= b.cap {
			b.vnext -= b.cap
		}
	} else {
		b.vnext = 0
	}
	// Slide the window: runs fully overwritten by everything recorded
	// after them will never be observed, so drop them (and their replay
	// cost) now. The draws they consumed are already accounted for in
	// the stream.
	drop := 0
	for drop < len(b.runs)-1 && b.pend-int(b.runs[drop].n) >= b.cap {
		b.pend -= int(b.runs[drop].n)
		drop++
	}
	if drop > 0 {
		b.runs = b.runs[:copy(b.runs, b.runs[drop:])]
	}
}

// materialize replays every pending run, reconstructing the exact
// entries an eager fill would have produced: each run's tag stream is
// restored from its recorded start state and its entries written at
// their recorded ring positions. Runs dropped by the sliding window are
// not replayed; the entries they wrote are provably overwritten by the
// runs that remain.
func (b *Buffer) materialize() {
	for len(b.entries) < b.vlen {
		b.entries = append(b.entries, Entry{})
	}
	for ri := range b.runs {
		r := &b.runs[ri]
		var s sim.Source
		s.SetState(r.src)
		if r.skip > 0 {
			s.Skip(uint64(r.skip))
		}
		pos := int(r.start)
		if r.secretFrac < 0 {
			for i := 0; i < int(r.n); i++ {
				b.entries[pos] = Entry{Domain: r.domain, Tag: s.Uint64()}
				pos++
				if pos == b.cap {
					pos = 0
				}
			}
		} else {
			for i := 0; i < int(r.n); i++ {
				secret := s.Float64() < r.secretFrac
				b.entries[pos] = Entry{Domain: r.domain, Secret: secret, Tag: s.Uint64()}
				pos++
				if pos == b.cap {
					pos = 0
				}
			}
		}
	}
	b.next = b.vnext
	b.runs = b.runs[:0]
	b.pend = 0
}
