// Package uarch models the microarchitectural state that transient-execution
// attacks exploit: per-core structures (L1 caches, TLBs, branch predictors,
// store buffers, line-fill buffers) and cross-core structures (last-level
// cache, the CPUID/RDRAND staging buffer of CrossTalk fame).
//
// The model is deliberately architectural rather than cycle-accurate: each
// structure is a bounded set of entries tagged with the security domain that
// created them and whether they are derived from secret data. This captures
// exactly the property the paper's security argument rests on — *which
// structures can hold another domain's state when code runs on a core* —
// while also supplying a warmth/pollution signal used by the performance
// model (cold microarchitectural state after host interference, §2.3).
package uarch

import "fmt"

// DomainID identifies a security domain: the untrusted host, the trusted
// monitor, or one confidential VM. Domains are the unit of distrust.
type DomainID int32

// Well-known domains. Guest domains are allocated from GuestBase upward.
const (
	DomainNone    DomainID = 0
	DomainHost    DomainID = 1
	DomainMonitor DomainID = 2
	GuestBase     DomainID = 100
)

// Guest returns the domain for guest (CVM) index i.
func Guest(i int) DomainID { return GuestBase + DomainID(i) }

// IsGuest reports whether d identifies a confidential VM.
func (d DomainID) IsGuest() bool { return d >= GuestBase }

func (d DomainID) String() string {
	switch {
	case d == DomainNone:
		return "none"
	case d == DomainHost:
		return "host"
	case d == DomainMonitor:
		return "monitor"
	case d.IsGuest():
		return fmt.Sprintf("guest%d", d-GuestBase)
	default:
		return fmt.Sprintf("domain%d", int32(d))
	}
}

// Trusts reports whether domain d trusts domain other to observe its
// microarchitectural residue. Every domain trusts itself and the monitor
// (which is attested and wipes its own state); nothing else is trusted.
func (d DomainID) Trusts(other DomainID) bool {
	return d == other || other == DomainMonitor
}

// StructKind identifies one microarchitectural structure class.
type StructKind int

// The structures the Fig. 3 vulnerabilities exploit. Kinds below
// sharedKindsStart are per-core; the rest are shared across cores.
const (
	L1D StructKind = iota
	L1I
	L2
	DTLB
	ITLB
	BTB // branch target buffer / branch history
	RSB // return stack buffer
	StoreBuffer
	FillBuffer // line-fill buffers (MDS family)
	LoadPort
	FPURegs   // FPU/SIMD register file (LazyFP, Zenbleed)
	UopCache  // micro-op cache
	APICRegs  // local APIC architectural/superqueue state (ÆPIC)
	Prefetch  // data-memory-dependent prefetcher state (Augury, GoFetch)
	LLC       // shared last-level cache
	Staging   // shared staging buffer for CPUID/RDRAND etc. (CrossTalk)
	Interconn // on-chip interconnect/mesh contention state
	numKinds
)

const sharedKindsStart = LLC

var kindNames = [...]string{
	L1D: "L1D", L1I: "L1I", L2: "L2", DTLB: "dTLB", ITLB: "iTLB",
	BTB: "BTB", RSB: "RSB", StoreBuffer: "store-buffer",
	FillBuffer: "fill-buffer", LoadPort: "load-port", FPURegs: "fpu-regs",
	UopCache: "uop-cache", APICRegs: "apic", Prefetch: "dmp-prefetcher",
	LLC: "LLC", Staging: "staging-buffer", Interconn: "interconnect",
}

func (k StructKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("struct(%d)", int(k))
}

// Shared reports whether the structure is shared across physical cores.
func (k StructKind) Shared() bool { return k >= sharedKindsStart }

// PerCoreKinds lists all per-core structure kinds.
func PerCoreKinds() []StructKind {
	kinds := make([]StructKind, 0, int(sharedKindsStart))
	for k := StructKind(0); k < sharedKindsStart; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// SharedKinds lists all cross-core structure kinds.
func SharedKinds() []StructKind {
	kinds := make([]StructKind, 0, int(numKinds-sharedKindsStart))
	for k := sharedKindsStart; k < numKinds; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

// Entry is one tagged slot of a structure.
type Entry struct {
	Domain DomainID
	Secret bool   // derived from data the owning domain considers secret
	Tag    uint64 // opaque identity (address bits, branch PC, ...)
}

// Buffer is a bounded structure holding tagged entries with FIFO
// replacement. FIFO (rather than LRU) keeps the model simple; replacement
// policy does not affect any security verdict, only warmth decay shape.
type Buffer struct {
	kind    StructKind
	cap     int
	entries []Entry
	next    int // FIFO replacement cursor
}

// NewBuffer returns an empty buffer of the given capacity.
func NewBuffer(kind StructKind, capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("uarch: buffer %v with capacity %d", kind, capacity))
	}
	return &Buffer{kind: kind, cap: capacity}
}

// Kind reports the structure class.
func (b *Buffer) Kind() StructKind { return b.kind }

// Cap reports the entry capacity.
func (b *Buffer) Cap() int { return b.cap }

// Len reports the number of valid entries.
func (b *Buffer) Len() int { return len(b.entries) }

// Insert adds an entry, evicting the oldest when full. It reports the
// evicted entry (Domain == DomainNone when nothing was evicted).
func (b *Buffer) Insert(e Entry) (evicted Entry) {
	if len(b.entries) < b.cap {
		b.entries = append(b.entries, e)
		return Entry{}
	}
	evicted = b.entries[b.next]
	b.entries[b.next] = e
	// Conditional wrap, not %: this runs ~1e9 times per benchsuite run
	// and an integer divide dominated the whole simulator's profile.
	b.next++
	if b.next == b.cap {
		b.next = 0
	}
	return evicted
}

// CountDomain reports how many entries belong to d.
func (b *Buffer) CountDomain(d DomainID) int {
	n := 0
	for _, e := range b.entries {
		if e.Domain == d {
			n++
		}
	}
	return n
}

// Occupancy reports the fraction of capacity holding d's entries.
func (b *Buffer) Occupancy(d DomainID) float64 {
	return float64(b.CountDomain(d)) / float64(b.cap)
}

// Residue reports all entries whose owner does not trust reader — i.e. the
// foreign state a transient-execution primitive run by reader could sample.
func (b *Buffer) Residue(reader DomainID) []Entry {
	var out []Entry
	for _, e := range b.entries {
		if e.Domain != DomainNone && !e.Domain.Trusts(reader) {
			out = append(out, e)
		}
	}
	return out
}

// SecretResidue reports foreign entries that are secret-tagged.
func (b *Buffer) SecretResidue(reader DomainID) []Entry {
	var out []Entry
	for _, e := range b.Residue(reader) {
		if e.Secret {
			out = append(out, e)
		}
	}
	return out
}

// Flush removes all entries (architectural flush, e.g. verw/DSB-style).
func (b *Buffer) Flush() {
	b.entries = b.entries[:0]
	b.next = 0
}

// Reset empties the buffer for reuse across trials. The entries slice
// keeps its grown capacity, so a pooled buffer refills without
// reallocating; the observable state is identical to a fresh buffer.
func (b *Buffer) Reset() { b.Flush() }

// FlushDomain removes entries belonging to d, preserving others.
func (b *Buffer) FlushDomain(d DomainID) {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if e.Domain != d {
			kept = append(kept, e)
		}
	}
	b.entries = kept
	if b.next > len(b.entries) {
		b.next = 0
	}
	if len(b.entries) < b.cap {
		b.next = 0
	}
}
