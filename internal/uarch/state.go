package uarch

import (
	"fmt"

	"coregap/internal/sim"
)

// Sizes of the modelled structures, in entries. Absolute sizes only shape
// warmth-decay curves and sampling probabilities; relative sizes follow a
// contemporary Arm server core (≈AmpereOne class).
var defaultSizes = map[StructKind]int{
	L1D:         1024, // 64 KiB / 64 B lines
	L1I:         1024,
	L2:          16384, // 1 MiB private L2
	DTLB:        256,
	ITLB:        256,
	BTB:         4096,
	RSB:         32,
	StoreBuffer: 56,
	FillBuffer:  16,
	LoadPort:    8,
	FPURegs:     64,
	UopCache:    1536,
	APICRegs:    16,
	Prefetch:    64,
}

// CoreState is the per-core microarchitectural state.
type CoreState struct {
	bufs [sharedKindsStart]*Buffer
	// lastDomain is the domain that most recently executed; a change
	// means a same-core context switch between security domains occurred.
	lastDomain DomainID
	switches   uint64 // cross-domain same-core switches observed
}

// NewCoreState returns a core with all structures empty.
func NewCoreState() *CoreState {
	cs := &CoreState{}
	for k := StructKind(0); k < sharedKindsStart; k++ {
		cs.bufs[k] = NewBuffer(k, defaultSizes[k])
	}
	return cs
}

// Reset empties every per-core structure and forgets the execution
// history, returning the state a fresh NewCoreState would have while
// keeping each buffer's grown backing array for the next trial.
func (cs *CoreState) Reset() {
	for k := StructKind(0); k < sharedKindsStart; k++ {
		cs.bufs[k].Reset()
	}
	cs.lastDomain = DomainNone
	cs.switches = 0
}

// Buffer returns the structure of the given per-core kind.
func (cs *CoreState) Buffer(k StructKind) *Buffer {
	if k.Shared() {
		panic(fmt.Sprintf("uarch: %v is not per-core", k))
	}
	return cs.bufs[k]
}

// LastDomain reports the domain that most recently executed on this core.
func (cs *CoreState) LastDomain() DomainID { return cs.lastDomain }

// DomainSwitches reports how many cross-domain context switches this core
// has observed — exactly the events core gapping eliminates.
func (cs *CoreState) DomainSwitches() uint64 { return cs.switches }

// Touch models domain d executing on the core: it fills per-core
// structures proportionally to footprint (0..1 of each structure's
// capacity), tagging secretFrac of new entries as secret-derived.
// tagSrc provides entry identities deterministically.
func (cs *CoreState) Touch(d DomainID, footprint, secretFrac float64, tagSrc *sim.Source) {
	if d != cs.lastDomain {
		if cs.lastDomain != DomainNone && d != DomainNone {
			cs.switches++
		}
		cs.lastDomain = d
	}
	if footprint <= 0 {
		return
	}
	if footprint > 1 {
		footprint = 1
	}
	// Record one lazy fillRun per structure and advance the shared tag
	// stream once for the whole batch. Stream consumption is identical
	// to the historical eager loop — buffers fill in kind order, one
	// Uint64 per entry (Float64+Uint64 when secret-tagged) — so every
	// later consumer of tagSrc sees exactly the state the eager fills
	// would have left, and materialization replays exactly the values
	// they would have written. Touch is the simulator's single hottest
	// loop (every execution slice on every core lands here, with n up
	// to the 16K-entry L2); deferring the per-entry draws behind
	// Source.Skip's jump matrices is what removed it from the profile.
	st := tagSrc.State()
	drawsPer := uint32(1)
	frac := -1.0
	if secretFrac > 0 {
		drawsPer = 2
		frac = secretFrac
	}
	var skip uint32
	for k := StructKind(0); k < sharedKindsStart; k++ {
		b := cs.bufs[k]
		n := int(footprint * float64(b.cap))
		if n == 0 {
			n = 1
		}
		b.pushFill(d, n, frac, st, skip)
		skip += drawsPer * uint32(n)
	}
	tagSrc.Skip(uint64(skip))
}

// Warmth reports the fraction of per-core cache/TLB/predictor capacity
// currently holding d's entries, weighted toward the structures that
// dominate restart cost (L1, L2, TLBs). 1.0 means fully warm.
func (cs *CoreState) Warmth(d DomainID) float64 {
	weights := map[StructKind]float64{
		L1D: 0.25, L1I: 0.10, L2: 0.35, DTLB: 0.10, ITLB: 0.05,
		BTB: 0.10, UopCache: 0.05,
	}
	var w, total float64
	for k, wt := range weights {
		w += wt * cs.bufs[k].Occupancy(d)
		total += wt
	}
	return w / total
}

// FlushAll architecturally flushes every per-core structure and returns
// the modelled time cost. This is the mitigation work a shared-core
// security monitor must perform on every world switch (§2.1: "flushing
// carries an inevitable cost").
func (cs *CoreState) FlushAll(costs FlushCosts) sim.Duration {
	var total sim.Duration
	for k := StructKind(0); k < sharedKindsStart; k++ {
		cs.bufs[k].Flush()
		total += costs.Of(k)
	}
	return total
}

// FlushMitigations flushes only the structures targeted by deployed
// transient-execution mitigations (branch state, store/fill buffers,
// FPU state) — the verw/BHB-clear/FEDISABLE-style sequence — and
// returns its time cost.
func (cs *CoreState) FlushMitigations(costs FlushCosts) sim.Duration {
	var total sim.Duration
	for _, k := range []StructKind{BTB, RSB, StoreBuffer, FillBuffer, LoadPort, FPURegs, UopCache} {
		cs.bufs[k].Flush()
		total += costs.Of(k)
	}
	return total
}

// ResidueFor reports, per structure, foreign entries visible to reader.
func (cs *CoreState) ResidueFor(reader DomainID) map[StructKind][]Entry {
	out := make(map[StructKind][]Entry)
	for k := StructKind(0); k < sharedKindsStart; k++ {
		if r := cs.bufs[k].Residue(reader); len(r) > 0 {
			out[k] = r
		}
	}
	return out
}

// FlushCosts gives the modelled per-structure flush latency.
type FlushCosts map[StructKind]sim.Duration

// Of reports the cost for kind k (0 when unspecified).
func (fc FlushCosts) Of(k StructKind) sim.Duration { return fc[k] }

// DefaultFlushCosts models a contemporary mitigation sequence. The values
// sum to the multi-microsecond world-switch overhead the paper observes
// for same-core monitor calls (Table 2: >12.8 µs including EL3 costs).
func DefaultFlushCosts() FlushCosts {
	return FlushCosts{
		L1D:         2 * sim.Microsecond,
		L1I:         800 * sim.Nanosecond,
		L2:          0, // not flushed in practice
		DTLB:        600 * sim.Nanosecond,
		ITLB:        400 * sim.Nanosecond,
		BTB:         900 * sim.Nanosecond,
		RSB:         100 * sim.Nanosecond,
		StoreBuffer: 200 * sim.Nanosecond,
		FillBuffer:  300 * sim.Nanosecond,
		LoadPort:    200 * sim.Nanosecond,
		FPURegs:     400 * sim.Nanosecond,
		UopCache:    300 * sim.Nanosecond,
		APICRegs:    0,
		Prefetch:    200 * sim.Nanosecond,
	}
}

// SharedState is the socket-level state shared by all cores.
type SharedState struct {
	llc         *Buffer
	llcWays     int
	partitioned bool
	// wayOwner maps LLC way index -> domain when partitioning is enabled.
	wayOwner []DomainID
	staging  *Buffer
}

// NewSharedState returns socket state with an llcWays-way LLC and a
// CrossTalk-style staging buffer.
func NewSharedState(llcEntries, llcWays int) *SharedState {
	if llcWays <= 0 {
		llcWays = 16
	}
	return &SharedState{
		llc:      NewBuffer(LLC, llcEntries),
		llcWays:  llcWays,
		wayOwner: make([]DomainID, llcWays),
		staging:  NewBuffer(Staging, 32),
	}
}

// Reset empties the LLC and staging buffer, disables partitioning, and
// frees every way assignment — the state a fresh NewSharedState would
// have, minus the allocations.
func (ss *SharedState) Reset() {
	ss.llc.Reset()
	ss.staging.Reset()
	ss.partitioned = false
	clear(ss.wayOwner)
}

// LLC returns the shared last-level cache.
func (ss *SharedState) LLC() *Buffer { return ss.llc }

// Staging returns the shared staging buffer (CrossTalk's channel).
func (ss *SharedState) Staging() *Buffer { return ss.staging }

// EnablePartitioning turns on way-partitioning of the LLC (the hardware
// cache-partitioning mitigation the paper recommends for the remaining
// cross-core cache channel, §2.4).
func (ss *SharedState) EnablePartitioning() { ss.partitioned = true }

// Partitioned reports whether LLC way-partitioning is enabled.
func (ss *SharedState) Partitioned() bool { return ss.partitioned }

// AssignWays gives n LLC ways to domain d; returns false when fewer than
// n ways remain unassigned.
func (ss *SharedState) AssignWays(d DomainID, n int) bool {
	free := 0
	for _, o := range ss.wayOwner {
		if o == DomainNone {
			free++
		}
	}
	if free < n {
		return false
	}
	for i := range ss.wayOwner {
		if n == 0 {
			break
		}
		if ss.wayOwner[i] == DomainNone {
			ss.wayOwner[i] = d
			n--
		}
	}
	return true
}

// ReleaseWays returns all of d's LLC ways to the free pool.
func (ss *SharedState) ReleaseWays(d DomainID) {
	for i, o := range ss.wayOwner {
		if o == d {
			ss.wayOwner[i] = DomainNone
		}
	}
}

// TouchShared models domain d filling shared structures. With LLC
// partitioning enabled, d's fills are confined to its own ways and cannot
// evict (nor be observed via) other domains' lines. It reports how many
// resident lines the fill evicted — the cross-domain side effect the
// PRIME+PROBE channel observes, surfaced so callers can count it.
func (ss *SharedState) TouchShared(d DomainID, footprint float64, usesStaging bool, tagSrc *sim.Source) (evicted int) {
	if footprint > 1 {
		footprint = 1
	}
	n := int(footprint * float64(ss.llc.Cap()) / float64(ss.llcWays))
	if free := ss.llc.Cap() - ss.llc.Len(); n > free {
		evicted = n - free
	}
	for i := 0; i < n; i++ {
		ss.llc.Insert(Entry{Domain: d, Tag: tagSrc.Uint64()})
	}
	if usesStaging {
		// Instructions like RDRAND/CPUID leave residue in the shared
		// staging buffer regardless of which core executed them.
		if ss.staging.Len() == ss.staging.Cap() {
			evicted++
		}
		ss.staging.Insert(Entry{Domain: d, Secret: true, Tag: tagSrc.Uint64()})
	}
	return evicted
}

// LLCObservable reports whether reader can observe domain owner's LLC
// footprint: always true without partitioning, never true with it
// (distinct domains never share ways once assigned).
func (ss *SharedState) LLCObservable(owner, reader DomainID) bool {
	if owner.Trusts(reader) {
		return true
	}
	return !ss.partitioned
}
