package attack

import (
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// PrimeProbe is the classic cross-core LLC contention attack — the one
// channel the paper's threat model deliberately leaves to hardware cache
// partitioning rather than core gapping (§2.4). It needs no secret-tagged
// data: the victim's *address pattern* is the secret (think square-and-
// multiply exponentiation leaking key bits through which sets it touches).
type PrimeProbe struct {
	cache    *uarch.SetAssocCache
	attacker uarch.DomainID
	sets     int
}

// NewPrimeProbe builds the attack against a cache for an attacker domain.
func NewPrimeProbe(cache *uarch.SetAssocCache, attacker uarch.DomainID) *PrimeProbe {
	return &PrimeProbe{cache: cache, attacker: attacker, sets: cache.Sets()}
}

// addrFor picks an address mapping to a given set for a given way-slot.
func (pp *PrimeProbe) addrFor(set, slot int) uint64 {
	return (uint64(slot)*uint64(pp.sets) + uint64(set)) << 6
}

// Prime fills every monitored set with the attacker's lines — exactly as
// many per set as the attacker can actually allocate (a real attacker
// sizes its eviction sets to avoid self-eviction).
func (pp *PrimeProbe) Prime() {
	for set := 0; set < pp.sets; set++ {
		for slot := 0; slot < pp.cache.WaysAvailable(pp.attacker); slot++ {
			pp.cache.Access(pp.attacker, pp.addrFor(set, slot))
		}
	}
}

// Probe re-touches the primed lines and reports, per set, whether any of
// them was evicted (true = victim activity detected in that set), along
// with the modelled probe timing the attacker would measure.
func (pp *PrimeProbe) Probe() (hitSets []bool, totalLatency sim.Duration) {
	hitSets = make([]bool, pp.sets)
	for set := 0; set < pp.sets; set++ {
		for slot := 0; slot < pp.cache.WaysAvailable(pp.attacker); slot++ {
			addr := pp.addrFor(set, slot)
			totalLatency += pp.cache.ProbeLatency(pp.attacker, addr)
			if !pp.cache.Present(pp.attacker, addr) {
				hitSets[set] = true
			}
		}
	}
	return hitSets, totalLatency
}

// DetectedSets counts sets with observed victim activity.
func DetectedSets(hits []bool) int {
	n := 0
	for _, h := range hits {
		if h {
			n++
		}
	}
	return n
}

// VictimPattern models a victim whose secret selects which cache sets it
// touches — one bit per set (the canonical key-dependent access pattern).
type VictimPattern struct {
	cache  *uarch.SetAssocCache
	victim uarch.DomainID
	Secret []bool // secret bit per set: touch or don't
}

// NewVictimPattern builds a victim with a deterministic secret pattern.
func NewVictimPattern(cache *uarch.SetAssocCache, victim uarch.DomainID, src *sim.Source) *VictimPattern {
	v := &VictimPattern{cache: cache, victim: victim, Secret: make([]bool, cache.Sets())}
	for i := range v.Secret {
		v.Secret[i] = src.Intn(2) == 1
	}
	return v
}

// victimBase keeps the victim's physical addresses disjoint from the
// attacker's (different guests never share protected memory); it is a
// multiple of every plausible set count so set indices are unaffected.
const victimBase = uint64(1) << 20

// Run executes the victim's secret-dependent accesses.
func (v *VictimPattern) Run() {
	for set, touch := range v.Secret {
		if !touch {
			continue
		}
		addr := (victimBase + uint64(set)) << 6 // maps to `set`
		v.cache.Access(v.victim, addr)
	}
}

// RecoveredBits compares the attacker's observation with the secret and
// reports how many bits were recovered correctly.
func (v *VictimPattern) RecoveredBits(hits []bool) int {
	n := 0
	for i := range v.Secret {
		if i < len(hits) && hits[i] == v.Secret[i] {
			n++
		}
	}
	return n
}
