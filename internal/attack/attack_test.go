package attack

import (
	"testing"

	"coregap/internal/uarch"
	"coregap/internal/vulncat"
)

func TestSharedCoreZeroDayLeaks(t *testing.T) {
	h := NewHarness(1, 2, false)
	res := h.RunBattery(SharedTimeSlicedNoFlush)
	leaked := res.LeakedVulns()
	// Without mitigations, time-slicing on one core leaks through most
	// same-core structures that carry data (branch-only channels carry
	// control-flow, still counted when tagged secret).
	if len(leaked) < 20 {
		t.Fatalf("zero-day shared-core battery leaked only %d: %v", len(leaked), leaked)
	}
}

func TestSharedCoreFlushedStillLeaks(t *testing.T) {
	// Deployed mitigations cover MDS-class buffers, but structures
	// outside their reach (L1D contents, TLBs, APIC state) still leak —
	// the paper's "flushing cannot protect against everything".
	h := NewHarness(1, 2, false)
	res := h.RunBattery(SharedTimeSliced)
	leaked := map[string]bool{}
	for _, n := range res.LeakedVulns() {
		leaked[n] = true
	}
	if !leaked["Meltdown"] && !leaked["Foreshadow"] && !leaked["AEPIC leak"] {
		t.Fatalf("flush-covered battery should still leak via unflushed structures: %v",
			res.LeakedVulns())
	}
	// But MDS-class attacks through flushed buffers are stopped.
	if leaked["ZombieLoad"] || leaked["Fallout"] {
		t.Fatalf("flushed store/fill buffers still leaked: %v", res.LeakedVulns())
	}
}

func TestCoreGappingStopsAllButCrossCore(t *testing.T) {
	h := NewHarness(1, 2, false)
	res := h.RunBattery(CoreGappedPlacement)
	leaked := res.LeakedVulns()
	// The paper's headline: the only surviving leak with a data channel
	// in a cloud setting is CrossTalk's shared staging buffer. (LLC and
	// interconnect contention channels carry no secret-tagged data in
	// this model; NetSpectre is remote and rate-limited to <10 b/h.)
	for _, name := range leaked {
		if name != "CrossTalk" {
			t.Fatalf("core gapping leaked through %s (all leaks: %v)", name, leaked)
		}
	}
	if len(leaked) != 1 || leaked[0] != "CrossTalk" {
		t.Fatalf("expected exactly CrossTalk to survive, got %v", leaked)
	}
}

func TestBatteryConsistentWithCatalogueVerdicts(t *testing.T) {
	h := NewHarness(1, 2, false)
	res := h.RunBattery(CoreGappedPlacement)
	for _, o := range res.Outcomes {
		if o.Leaked && o.Vuln.MitigatedByCoreGapping() {
			t.Errorf("%s: leaked under core gapping but catalogued as mitigated", o.Vuln.Name)
		}
	}
}

func TestLLCPartitioningClosesCacheChannel(t *testing.T) {
	// §2.4 recommends hardware cache partitioning for the remaining
	// LLC side channel; with it on, LLC residue becomes unobservable.
	h := NewHarness(1, 2, true)
	h.runVictim(0)
	prim := Primitive{Vuln: vulncat.Vuln{
		Name: "llc-probe", Scope: vulncat.CrossCore,
		Structures: []uarch.StructKind{uarch.LLC},
	}}
	samples := prim.SampleCore(h.Machine(), 1, h.Attacker())
	for _, s := range samples {
		if s.Victim == h.Victim() {
			t.Fatalf("partitioned LLC still observable: %+v", s)
		}
	}

	// Without partitioning, the victim's footprint is visible.
	h2 := NewHarness(1, 2, false)
	h2.runVictim(0)
	samples2 := prim.SampleCore(h2.Machine(), 1, h2.Attacker())
	found := false
	for _, s := range samples2 {
		if s.Victim == h2.Victim() {
			found = true
		}
	}
	if !found {
		t.Fatal("unpartitioned LLC shows no victim footprint")
	}
}

func TestCrossTalkLeaksRegardlessOfPlacement(t *testing.T) {
	// The staging buffer is shared by all cores: core gapping cannot
	// help (the paper is explicit that CrossTalk needed a ucode fix).
	h := NewHarness(1, 2, false)
	var crossTalk vulncat.Vuln
	for _, v := range vulncat.Catalogue() {
		if v.Name == "CrossTalk" {
			crossTalk = v
		}
	}
	o := h.Attempt(crossTalk, CoreGappedPlacement)
	if !o.Leaked {
		t.Fatal("CrossTalk must leak across cores via the staging buffer")
	}
}

func TestSameThreadSamplesCarrySecrets(t *testing.T) {
	h := NewHarness(1, 2, false)
	h.runVictim(0)
	prim := Primitive{Vuln: vulncat.Vuln{
		Name: "mds-like", Scope: vulncat.SiblingSMT,
		Structures: []uarch.StructKind{uarch.FillBuffer, uarch.StoreBuffer},
	}}
	samples := prim.SampleCore(h.Machine(), 0, h.Attacker())
	if len(LeakedFrom(samples, h.Victim())) == 0 {
		t.Fatal("same-core sampling of an unflushed victim found no secrets")
	}
	// The same primitive on the other core sees nothing.
	samples = prim.SampleCore(h.Machine(), 1, h.Attacker())
	if len(LeakedFrom(samples, h.Victim())) != 0 {
		t.Fatal("per-core structures leaked across cores")
	}
}

func TestSchedulingStrings(t *testing.T) {
	for s, want := range map[Scheduling]string{
		SharedTimeSliced:        "shared-core (flushing monitor)",
		SharedTimeSlicedNoFlush: "shared-core (unmitigated zero-day)",
		CoreGappedPlacement:     "core-gapped",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}

func TestBatteryString(t *testing.T) {
	h := NewHarness(1, 2, false)
	res := h.RunBattery(CoreGappedPlacement)
	if res.String() == "" {
		t.Fatal("empty battery summary")
	}
}
