package attack

import (
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/uarch"
	"coregap/internal/vulncat"
)

// Scheduling selects how attacker and victim are placed — the variable
// the paper's design controls.
type Scheduling int

// Placements under test.
const (
	// SharedTimeSliced: hypervisor time-slices attacker and victim on
	// one core (the §3 attack: dispatch the attacker's vCPU on the
	// victim's core). Context switches go through the monitor, which
	// applies the standard mitigation flushes — the retroactive, partial
	// mitigations of §2.1.
	SharedTimeSliced Scheduling = iota
	// SharedTimeSlicedNoFlush: same, but against vulnerabilities whose
	// structures the deployed mitigations do not cover (or before a
	// mitigation exists — the paper's zero-day argument).
	SharedTimeSlicedNoFlush
	// CoreGappedPlacement: monitor enforces disjoint cores.
	CoreGappedPlacement
)

func (s Scheduling) String() string {
	switch s {
	case SharedTimeSliced:
		return "shared-core (flushing monitor)"
	case SharedTimeSlicedNoFlush:
		return "shared-core (unmitigated zero-day)"
	default:
		return "core-gapped"
	}
}

// Harness drives attacker/victim executions over a machine.
type Harness struct {
	mach     *hw.Machine
	eng      *sim.Engine
	victim   uarch.DomainID
	attacker uarch.DomainID
	src      *sim.Source
}

// NewHarness builds a two-domain harness on a fresh machine.
func NewHarness(seed uint64, cores int, partitionLLC bool) *Harness {
	eng := sim.NewEngine(seed)
	mach := hw.NewMachine(eng, hw.DefaultConfig(cores))
	return NewHarnessOn(eng, mach, partitionLLC)
}

// NewHarnessOn builds the harness on a caller-provided engine and
// machine — typically pooled ones that were just Reset — so repeated
// battery trials skip the machine construction cost. The pair must be
// in their just-built (or just-Reset) state; behaviour is then
// identical to NewHarness with the engine's seed.
func NewHarnessOn(eng *sim.Engine, mach *hw.Machine, partitionLLC bool) *Harness {
	if partitionLLC {
		mach.Shared().EnablePartitioning()
		mach.Shared().AssignWays(uarch.Guest(0), 4)
		mach.Shared().AssignWays(uarch.Guest(1), 4)
	}
	return &Harness{
		mach:     mach,
		eng:      eng,
		victim:   uarch.Guest(0),
		attacker: uarch.Guest(1),
		src:      eng.Source("attack"),
	}
}

// Machine exposes the underlying machine.
func (h *Harness) Machine() *hw.Machine { return h.mach }

// Victim and Attacker report the two domains.
func (h *Harness) Victim() uarch.DomainID   { return h.victim }
func (h *Harness) Attacker() uarch.DomainID { return h.attacker }

// runVictim models the victim executing secret-dependent code on a core:
// it fills per-core structures (with secrets) and shared structures, and
// executes the staging-buffer instructions CrossTalk targets.
func (h *Harness) runVictim(core hw.CoreID) {
	c := h.mach.Core(core)
	c.RecordExecution(h.victim, 0.7, 0.3)
	h.mach.TouchShared(h.victim, 0.2, true)
}

// monitorSwitch models the security monitor interposing on a context
// switch away from the victim, applying the deployed mitigation flushes
// (which cover the MDS-class buffers but not, e.g., L1D or TLBs — §2.1's
// "often applied only retroactively" and partial).
func (h *Harness) monitorSwitch(core hw.CoreID) {
	h.mach.Core(core).FlushMitigations(uarch.DefaultFlushCosts())
	h.mach.Core(core).RecordExecution(uarch.DomainMonitor, 0.02, 0)
}

// Attempt runs one attacker/victim round under the given scheduling for
// the given vulnerability and reports the outcome.
func (h *Harness) Attempt(v vulncat.Vuln, sched Scheduling) Outcome {
	prim := Primitive{Vuln: v}
	victimCore, attackerCore := hw.CoreID(0), hw.CoreID(0)
	placement := vulncat.PlacedSameThread
	if sched == CoreGappedPlacement {
		attackerCore = 1
		placement = vulncat.PlacedOtherCore
	}

	// Victim computes on its core with secrets in flight.
	h.runVictim(victimCore)

	switch sched {
	case SharedTimeSliced:
		// Hypervisor switches the core to the attacker; the monitor
		// interposes and flushes what current mitigations cover.
		h.monitorSwitch(victimCore)
	case SharedTimeSlicedNoFlush:
		// Zero-day: no mitigation exists yet for this structure class.
	case CoreGappedPlacement:
		// No switch happens at all: the attacker was never allowed on
		// the victim's core. Nothing to flush, nothing to race.
	}

	// The attacker executes its primitive wherever it is placed.
	samples := prim.SampleCore(h.mach, attackerCore, h.attacker)
	leaked := LeakedFrom(samples, h.victim)

	// Architectural reach check: the primitive must also be plausible at
	// this placement per the catalogue (e.g. an SMT-only attack cannot
	// fire cross-core even if some residue is visible).
	if !vulncat.Exploitable(v, placement) {
		leaked = nil
	}
	return Outcome{Vuln: v, Placement: placement, Leaked: len(leaked) > 0, Samples: len(leaked)}
}

// RunBattery attempts every catalogued vulnerability under a scheduling.
func (h *Harness) RunBattery(sched Scheduling) BatteryResult {
	res := BatteryResult{Config: sched.String()}
	for _, v := range vulncat.Catalogue() {
		// Fresh machine state per attempt so attempts are independent.
		for _, c := range h.mach.Cores() {
			c.FlushAll(uarch.DefaultFlushCosts())
		}
		h.mach.Shared().Staging().Flush()
		h.mach.Shared().LLC().Flush()
		res.Outcomes = append(res.Outcomes, h.Attempt(v, sched))
	}
	return res
}
