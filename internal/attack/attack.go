// Package attack implements the adversary's side of the paper's threat
// model (§2.4): transient-execution attack primitives that sample
// microarchitectural residue, and a harness that runs attacker/victim
// pairs under shared-core and core-gapped scheduling to demonstrate the
// paper's security claim — core gapping removes every same-core channel
// from the guest's TCB, leaving only the catalogued cross-core leaks
// (CrossTalk's staging buffer, LLC contention, NetSpectre-class remote
// timing).
package attack

import (
	"fmt"
	"sort"

	"coregap/internal/hw"
	"coregap/internal/uarch"
	"coregap/internal/vulncat"
)

// Sample is one observation an attack primitive extracted.
type Sample struct {
	Structure uarch.StructKind
	Victim    uarch.DomainID
	Secret    bool
	Tag       uint64
}

// Primitive is a transient-execution attack primitive: given code
// execution in the attacker's domain on a given core, it samples the
// structures its vulnerability exposes.
type Primitive struct {
	Vuln vulncat.Vuln
}

// SampleCore runs the primitive on the given core in the attacker's
// domain and reports the foreign residue it can observe. The primitive
// sees exactly what its vulnerability's structures hold:
//
//   - per-core structures: only from the core the attacker executes on;
//   - shared structures: from anywhere on the socket (subject to
//     LLC partitioning).
func (p Primitive) SampleCore(m *hw.Machine, core hw.CoreID, attacker uarch.DomainID) []Sample {
	var out []Sample
	cs := m.Core(core).Uarch
	for _, k := range p.Vuln.Structures {
		if !k.Shared() {
			for _, e := range cs.Buffer(k).Residue(attacker) {
				out = append(out, Sample{Structure: k, Victim: e.Domain, Secret: e.Secret, Tag: e.Tag})
			}
			continue
		}
		switch k {
		case uarch.Staging:
			for _, e := range m.Shared().Staging().Residue(attacker) {
				out = append(out, Sample{Structure: k, Victim: e.Domain, Secret: e.Secret, Tag: e.Tag})
			}
		case uarch.LLC:
			for _, e := range m.Shared().LLC().Residue(attacker) {
				if m.Shared().LLCObservable(e.Domain, attacker) {
					out = append(out, Sample{Structure: k, Victim: e.Domain, Secret: e.Secret, Tag: e.Tag})
				}
			}
		}
	}
	return out
}

// LeakedFrom filters samples to secret-bearing residue of one victim.
func LeakedFrom(samples []Sample, victim uarch.DomainID) []Sample {
	var out []Sample
	for _, s := range samples {
		if s.Victim == victim && s.Secret {
			out = append(out, s)
		}
	}
	return out
}

// Outcome is one attack attempt's result.
type Outcome struct {
	Vuln      vulncat.Vuln
	Placement vulncat.Placement
	// Leaked reports whether secret-tagged victim state was observed.
	Leaked bool
	// Samples counts the secret victim samples extracted.
	Samples int
}

// BatteryResult aggregates a full battery run.
type BatteryResult struct {
	Config   string
	Outcomes []Outcome
}

// LeakedVulns lists the vulnerabilities that leaked, sorted by name.
func (r BatteryResult) LeakedVulns() []string {
	var out []string
	for _, o := range r.Outcomes {
		if o.Leaked {
			out = append(out, o.Vuln.Name)
		}
	}
	sort.Strings(out)
	return out
}

// String summarizes the battery.
func (r BatteryResult) String() string {
	leaked := r.LeakedVulns()
	return fmt.Sprintf("%s: %d/%d vulnerabilities leaked %v",
		r.Config, len(leaked), len(r.Outcomes), leaked)
}
