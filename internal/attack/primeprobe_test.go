package attack

import (
	"testing"

	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func primeProbeSetup(partitioned bool) (*PrimeProbe, *VictimPattern) {
	cache := uarch.NewSetAssocCache(64, 8)
	attacker, victim := uarch.Guest(1), uarch.Guest(0)
	if partitioned {
		cache.Partition(attacker, 0, 4)
		cache.Partition(victim, 4, 4)
	}
	src := sim.NewSource(123)
	return NewPrimeProbe(cache, attacker), NewVictimPattern(cache, victim, src)
}

func TestPrimeProbeRecoversAccessPattern(t *testing.T) {
	pp, victim := primeProbeSetup(false)

	// PRIME: attacker owns every set. VICTIM: secret-dependent touches.
	pp.Prime()
	victim.Run()
	hits, _ := pp.Probe()

	// Without partitioning, the victim's touched sets evict attacker
	// lines: the secret pattern is recovered nearly perfectly.
	recovered := victim.RecoveredBits(hits)
	if recovered < len(victim.Secret)*95/100 {
		t.Fatalf("recovered %d/%d secret bits, want ~all (unpartitioned LLC leaks)",
			recovered, len(victim.Secret))
	}
	if DetectedSets(hits) == 0 {
		t.Fatal("no victim activity detected at all")
	}
}

func TestPrimeProbeTimingChannel(t *testing.T) {
	pp, victim := primeProbeSetup(false)
	pp.Prime()
	_, quiet := pp.Probe() // all lines still cached

	pp.Prime()
	victim.Run()
	_, active := pp.Probe()
	if active <= quiet {
		t.Fatalf("probe timing did not reflect victim activity: %v <= %v", active, quiet)
	}
}

func TestWayPartitioningClosesPrimeProbe(t *testing.T) {
	pp, victim := primeProbeSetup(true)
	pp.Prime()
	victim.Run()
	hits, _ := pp.Probe()
	// With disjoint way allocations the victim cannot evict a single
	// attacker line: the channel carries zero signal.
	if DetectedSets(hits) != 0 {
		t.Fatalf("partitioned LLC still signalled %d sets", DetectedSets(hits))
	}
	// "Recovery" degrades to guessing the all-zero pattern.
	recovered := victim.RecoveredBits(hits)
	zeros := 0
	for _, b := range victim.Secret {
		if !b {
			zeros++
		}
	}
	if recovered != zeros {
		t.Fatalf("recovered %d bits, want only the %d zero bits (no signal)", recovered, zeros)
	}
}

func TestSetAssocCacheBasics(t *testing.T) {
	c := uarch.NewSetAssocCache(4, 2)
	d := uarch.Guest(0)
	if c.Sets() != 4 || c.Ways() != 2 {
		t.Fatal("geometry")
	}
	// Fill one set beyond capacity: eviction occurs within the set.
	addrs := []uint64{0 << 6, 4 << 6, 8 << 6} // all map to set 0
	for _, a := range addrs {
		c.Access(d, a)
	}
	present := 0
	for _, a := range addrs {
		if c.Present(d, a) {
			present++
		}
	}
	if present != 2 {
		t.Fatalf("set holds %d lines, want 2 (ways)", present)
	}
	// Hit does not evict.
	if evicted := c.Access(d, addrs[2]); evicted {
		t.Fatal("hit reported eviction")
	}
	// Cross-domain eviction is reported.
	e := uarch.Guest(1)
	ev1 := c.Access(e, 12<<6) // set 0, evicts d
	ev2 := c.Access(e, 16<<6)
	if !ev1 && !ev2 {
		t.Fatal("foreign eviction not reported")
	}
	if c.OccupancyOf(e) == 0 {
		t.Fatal("occupancy")
	}
	c.FlushDomain(e)
	if c.OccupancyOf(e) != 0 {
		t.Fatal("flush domain")
	}
}

func TestPartitionedDomainCannotStealWays(t *testing.T) {
	c := uarch.NewSetAssocCache(2, 4)
	a, b := uarch.Guest(0), uarch.Guest(1)
	c.Partition(a, 0, 2)
	c.Partition(b, 2, 2)
	// a fills far beyond its 2 ways in set 0; b's lines must survive.
	c.Access(b, 0<<6)
	c.Access(b, 2<<6) // both set 0 via tag bits
	bAddr := uint64(0 << 6)
	for i := 0; i < 16; i++ {
		c.Access(a, uint64(i*2)<<6)
	}
	if !c.Present(b, bAddr) {
		t.Fatal("partitioned victim line evicted by foreign domain")
	}
	if !c.Partitioned() {
		t.Fatal("partitioned flag")
	}
}
