// Package trace collects measurements from simulation runs: counters,
// latency histograms with percentile queries, and time series suitable for
// regenerating the paper's tables and figures.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"coregap/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name  string
	n     uint64
	epoch uint64
}

// Name reports the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Hist records duration samples and answers mean/percentile queries. It
// is a streaming log-linear Recorder (see recorder.go): memory is bounded
// and deterministic regardless of sample count, the record path is
// allocation-free at steady state, and only percentile queries see the
// bucket resolution (relative error below 2^-14 — invisible at the 2-4
// significant digits every reproduced artifact prints). Count, Sum, Min,
// Max, Mean and Stddev are exact.
//
// The running sum is kept as int64 nanoseconds. It must not be a
// float64: past ~2^53 accumulated nanoseconds (a few months of simulated
// time, easily reached by long sweeps) float64 addition silently drops
// low-order sample bits, skewing Mean and Sum. Integer accumulation is
// exact over the full int64 range.
type Hist struct {
	name  string
	rec   Recorder
	epoch uint64
}

// Name reports the histogram's name.
func (h *Hist) Name() string { return h.name }

// Observe records one sample.
func (h *Hist) Observe(d sim.Duration) { h.rec.Record(int64(d)) }

// Count reports the number of samples.
func (h *Hist) Count() int { return int(h.rec.Count()) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Hist) Mean() sim.Duration {
	if h.rec.Count() == 0 {
		return 0
	}
	return sim.Duration(float64(h.rec.Sum()) / float64(h.rec.Count()))
}

// Sum reports the exact total of all samples.
func (h *Hist) Sum() sim.Duration { return sim.Duration(h.rec.Sum()) }

// Reset empties the histogram but keeps the recorder's bucket pages, so
// a pooled histogram reused across trials reaches steady state with no
// per-trial allocation.
func (h *Hist) Reset() { h.rec.Reset() }

// Percentile reports the p-th percentile (p in [0,100]) using
// nearest-rank; 0 with no samples. The result is quantized to the
// recorder's bucket resolution (relative error < 2^-14) and clamped into
// [Min, Max]; p <= 0 and p >= 100 are the exact extremes.
func (h *Hist) Percentile(p float64) sim.Duration {
	return sim.Duration(h.rec.Percentile(p))
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Hist) Min() sim.Duration { return sim.Duration(h.rec.Min()) }

// Max reports the largest sample, or 0 with no samples.
func (h *Hist) Max() sim.Duration { return sim.Duration(h.rec.Max()) }

// Stddev reports the sample standard deviation (exact: the recorder
// keeps a 128-bit sum of squares).
func (h *Hist) Stddev() sim.Duration {
	return sim.Duration(h.rec.Stddev())
}

// histPool recycles histograms — and, through Reset, their allocated
// bucket pages — across trials. The parallel experiment runner executes
// tens of thousands of short trials; without pooling each one touches
// fresh recorder pages only to drop them at reduction time.
var histPool = sync.Pool{New: func() any { return new(Hist) }}

// AcquireHist returns an empty histogram from the package pool. Use for
// trial-scoped histograms whose values are extracted before the trial
// ends; pair with ReleaseHist.
func AcquireHist(name string) *Hist {
	h := histPool.Get().(*Hist)
	h.name = name
	return h
}

// ReleaseHist resets h and returns it to the pool. The caller must not
// retain h or any result derived from its internal state afterwards.
func ReleaseHist(h *Hist) {
	if h == nil {
		return
	}
	h.Reset()
	h.name = ""
	histPool.Put(h)
}

// Gauge tracks the latest value of a quantity along with its extremes.
type Gauge struct {
	name     string
	v        float64
	min, max float64
	set      bool
	epoch    uint64
}

// Name reports the gauge's name.
func (g *Gauge) Name() string { return g.name }

// Set records a new value.
func (g *Gauge) Set(v float64) {
	if !g.set {
		g.min, g.max = v, v
		g.set = true
	}
	if v < g.min {
		g.min = v
	}
	if v > g.max {
		g.max = v
	}
	g.v = v
}

// Value reports the most recent value.
func (g *Gauge) Value() float64 { return g.v }

// Min reports the smallest value ever set.
func (g *Gauge) Min() float64 { return g.min }

// Max reports the largest value ever set.
func (g *Gauge) Max() float64 { return g.max }

// Set is a named collection of metrics for one simulation run.
//
// A Set is resettable for reuse across pooled trials: Reset bumps the
// set's epoch, which logically empties it — metrics registered before
// the bump are invisible to Has*/…Names and are revived (zeroed in
// place, sample capacity retained) the next time their name is
// requested. A reset Set is therefore observationally identical to
// NewSet() while reaching steady state with no per-trial allocation.
type Set struct {
	epoch    uint64
	counters map[string]*Counter
	hists    map[string]*Hist
	gauges   map[string]*Gauge

	// winWidth enables windowed recording (see Lat): 0 means whole-run
	// histograms only. It is per-run configuration, cleared by Reset.
	winWidth sim.Duration
	wins     map[string]*Windowed
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Hist),
		gauges:   make(map[string]*Gauge),
		wins:     make(map[string]*Windowed),
	}
}

// Reset logically empties the set: every metric registered so far drops
// out of the visible namespace and will be revived, zeroed but with its
// backing storage intact, on next use. The window width is per-run
// configuration and is cleared too — the next run opts back in with
// SetWindow.
func (s *Set) Reset() {
	s.epoch++
	s.winWidth = 0
}

// SetWindow enables windowed latency recording with the given window
// width (0 disables it). Call once at run setup, before any Lat.
func (s *Set) SetWindow(width sim.Duration) { s.winWidth = width }

// WindowWidth reports the configured window width (0: windows disabled).
func (s *Set) WindowWidth() sim.Duration { return s.winWidth }

// Lat records one latency observation made at simulated time now: always
// into the named whole-run histogram, and — when a window width is set —
// into the like-named windowed metric as well. It is the single record
// site every latency producer (vcpu wake paths, device completions, load
// generators) goes through, so enabling windows never changes whole-run
// artifacts.
func (s *Set) Lat(name string, now sim.Time, d sim.Duration) {
	s.Hist(name).Observe(d)
	if s.winWidth > 0 {
		s.Windowed(name).Observe(now, d)
	}
}

// Counter returns the named counter, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{name: name, epoch: s.epoch}
		s.counters[name] = c
	} else if c.epoch != s.epoch {
		c.epoch = s.epoch
		c.n = 0
	}
	return c
}

// Hist returns the named histogram, creating it on first use.
func (s *Set) Hist(name string) *Hist {
	h, ok := s.hists[name]
	if !ok {
		h = &Hist{name: name, epoch: s.epoch}
		s.hists[name] = h
	} else if h.epoch != s.epoch {
		h.epoch = s.epoch
		h.Reset()
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (s *Set) Gauge(name string) *Gauge {
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{name: name, epoch: s.epoch}
		s.gauges[name] = g
	} else if g.epoch != s.epoch {
		*g = Gauge{name: g.name, epoch: s.epoch}
	}
	return g
}

// Windowed returns the named windowed latency metric, creating it on
// first use with the set's configured window width. Calling it with
// windows disabled is a programming error.
func (s *Set) Windowed(name string) *Windowed {
	if s.winWidth <= 0 {
		panic(fmt.Sprintf("trace: Windowed(%q) with no window width set; call Set.SetWindow first", name))
	}
	w, ok := s.wins[name]
	if !ok {
		w = &Windowed{name: name, width: s.winWidth, epoch: s.epoch}
		s.wins[name] = w
	} else if w.epoch != s.epoch || w.width != s.winWidth {
		w.epoch = s.epoch
		w.width = s.winWidth
		w.reset()
	}
	return w
}

// HasCounter reports whether the named counter exists (without creating it).
func (s *Set) HasCounter(name string) bool {
	c, ok := s.counters[name]
	return ok && c.epoch == s.epoch
}

// CounterNames reports all counter names, sorted.
func (s *Set) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n, c := range s.counters {
		if c.epoch == s.epoch {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// HistNames reports all histogram names, sorted.
func (s *Set) HistNames() []string {
	names := make([]string, 0, len(s.hists))
	for n, h := range s.hists {
		if h.epoch == s.epoch {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// WindowedNames reports all windowed metric names, sorted. Only metrics
// touched since the last Reset are visible, matching the epoch contract
// of every other accessor. A metric revived with a stale width is still
// live — width mismatches are fixed up on access, not here.
func (s *Set) WindowedNames() []string {
	names := make([]string, 0, len(s.wins))
	for n, w := range s.wins {
		if w.epoch == s.epoch {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// String renders the set as a human-readable report.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "counter %-40s %d\n", n, s.counters[n].Value())
	}
	for _, n := range s.HistNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
			n, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	}
	for _, n := range s.WindowedNames() {
		w := s.wins[n]
		fmt.Fprintf(&b, "windowed %-39s width=%v closed=%d\n", n, w.width, len(w.stats))
	}
	return b.String()
}
