// Package trace collects measurements from simulation runs: counters,
// latency histograms with percentile queries, and time series suitable for
// regenerating the paper's tables and figures.
package trace

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"

	"coregap/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name  string
	n     uint64
	epoch uint64
}

// Name reports the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Hist records duration samples and answers mean/percentile queries.
// Samples are stored exactly; runs in this repository are small enough
// (≤ a few million samples) that exact percentiles are affordable and
// remove any binning artefacts from reproduced numbers.
//
// Samples and the running sum are kept as int64 nanoseconds. The sum in
// particular must not be a float64: past ~2^53 accumulated nanoseconds
// (a few months of simulated time, easily reached by long sweeps)
// float64 addition silently drops low-order sample bits, skewing Mean
// and Sum. Integer accumulation is exact over the full int64 range.
type Hist struct {
	name    string
	samples []int64 // nanoseconds; int64 so percentile sorts use slices.Sort's unboxed fast path
	sorted  bool
	sum     int64
	epoch   uint64
}

// Name reports the histogram's name.
func (h *Hist) Name() string { return h.name }

// Observe records one sample.
func (h *Hist) Observe(d sim.Duration) {
	h.samples = append(h.samples, int64(d))
	h.sum += int64(d)
	h.sorted = false
}

// Count reports the number of samples.
func (h *Hist) Count() int { return len(h.samples) }

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Hist) Mean() sim.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return sim.Duration(float64(h.sum) / float64(len(h.samples)))
}

// Sum reports the exact total of all samples.
func (h *Hist) Sum() sim.Duration { return sim.Duration(h.sum) }

// Reset empties the histogram but keeps the sample slice's capacity, so
// a pooled histogram reused across trials reaches steady state with no
// per-trial allocation.
func (h *Hist) Reset() {
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
}

func (h *Hist) sortSamples() {
	if !h.sorted {
		slices.Sort(h.samples)
		h.sorted = true
	}
}

// Percentile reports the p-th percentile (p in [0,100]) using
// nearest-rank; 0 with no samples.
func (h *Hist) Percentile(p float64) sim.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sortSamples()
	if p <= 0 {
		return sim.Duration(h.samples[0])
	}
	if p >= 100 {
		return sim.Duration(h.samples[len(h.samples)-1])
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return sim.Duration(h.samples[rank-1])
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Hist) Min() sim.Duration { return h.Percentile(0) }

// Max reports the largest sample, or 0 with no samples.
func (h *Hist) Max() sim.Duration { return h.Percentile(100) }

// Stddev reports the sample standard deviation.
func (h *Hist) Stddev() sim.Duration {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return sim.Duration(math.Sqrt(ss / float64(n-1)))
}

// histPool recycles histograms — and, through Reset, their grown sample
// slices — across trials. The parallel experiment runner executes tens
// of thousands of short trials; without pooling each one grows a fresh
// exact-sample slice only to drop it at reduction time.
var histPool = sync.Pool{New: func() any { return new(Hist) }}

// AcquireHist returns an empty histogram from the package pool. Use for
// trial-scoped histograms whose values are extracted before the trial
// ends; pair with ReleaseHist.
func AcquireHist(name string) *Hist {
	h := histPool.Get().(*Hist)
	h.name = name
	return h
}

// ReleaseHist resets h and returns it to the pool. The caller must not
// retain h or any result derived from its internal state afterwards.
func ReleaseHist(h *Hist) {
	if h == nil {
		return
	}
	h.Reset()
	h.name = ""
	histPool.Put(h)
}

// Gauge tracks the latest value of a quantity along with its extremes.
type Gauge struct {
	name     string
	v        float64
	min, max float64
	set      bool
	epoch    uint64
}

// Name reports the gauge's name.
func (g *Gauge) Name() string { return g.name }

// Set records a new value.
func (g *Gauge) Set(v float64) {
	if !g.set {
		g.min, g.max = v, v
		g.set = true
	}
	if v < g.min {
		g.min = v
	}
	if v > g.max {
		g.max = v
	}
	g.v = v
}

// Value reports the most recent value.
func (g *Gauge) Value() float64 { return g.v }

// Min reports the smallest value ever set.
func (g *Gauge) Min() float64 { return g.min }

// Max reports the largest value ever set.
func (g *Gauge) Max() float64 { return g.max }

// Set is a named collection of metrics for one simulation run.
//
// A Set is resettable for reuse across pooled trials: Reset bumps the
// set's epoch, which logically empties it — metrics registered before
// the bump are invisible to Has*/…Names and are revived (zeroed in
// place, sample capacity retained) the next time their name is
// requested. A reset Set is therefore observationally identical to
// NewSet() while reaching steady state with no per-trial allocation.
type Set struct {
	epoch    uint64
	counters map[string]*Counter
	hists    map[string]*Hist
	gauges   map[string]*Gauge
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Hist),
		gauges:   make(map[string]*Gauge),
	}
}

// Reset logically empties the set: every metric registered so far drops
// out of the visible namespace and will be revived, zeroed but with its
// backing storage intact, on next use.
func (s *Set) Reset() { s.epoch++ }

// Counter returns the named counter, creating it on first use.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{name: name, epoch: s.epoch}
		s.counters[name] = c
	} else if c.epoch != s.epoch {
		c.epoch = s.epoch
		c.n = 0
	}
	return c
}

// Hist returns the named histogram, creating it on first use.
func (s *Set) Hist(name string) *Hist {
	h, ok := s.hists[name]
	if !ok {
		h = &Hist{name: name, epoch: s.epoch}
		s.hists[name] = h
	} else if h.epoch != s.epoch {
		h.epoch = s.epoch
		h.Reset()
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (s *Set) Gauge(name string) *Gauge {
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{name: name, epoch: s.epoch}
		s.gauges[name] = g
	} else if g.epoch != s.epoch {
		*g = Gauge{name: g.name, epoch: s.epoch}
	}
	return g
}

// HasCounter reports whether the named counter exists (without creating it).
func (s *Set) HasCounter(name string) bool {
	c, ok := s.counters[name]
	return ok && c.epoch == s.epoch
}

// CounterNames reports all counter names, sorted.
func (s *Set) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n, c := range s.counters {
		if c.epoch == s.epoch {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// HistNames reports all histogram names, sorted.
func (s *Set) HistNames() []string {
	names := make([]string, 0, len(s.hists))
	for n, h := range s.hists {
		if h.epoch == s.epoch {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// String renders the set as a human-readable report.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "counter %-40s %d\n", n, s.counters[n].Value())
	}
	for _, n := range s.HistNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%v p50=%v p95=%v p99=%v max=%v\n",
			n, h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
	}
	return b.String()
}
