package trace

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"coregap/internal/sim"
)

func TestCounter(t *testing.T) {
	s := NewSet()
	c := s.Counter("exits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if s.Counter("exits") != c {
		t.Fatal("counter not memoized")
	}
	if !s.HasCounter("exits") || s.HasCounter("nope") {
		t.Fatal("HasCounter wrong")
	}
}

func TestHistBasics(t *testing.T) {
	s := NewSet()
	h := s.Hist("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50 { // (1+..+100)/100 = 50.5, truncates to 50
		t.Fatalf("mean = %v, want 50", got)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if got := h.Percentile(95); got != 95 {
		t.Fatalf("p95 = %v, want 95", got)
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %v, want 5050", h.Sum())
	}
}

// TestHistSumExactPastFloat53 is the precision regression test for the
// running sum: a float64 accumulator silently absorbs small samples
// once the total passes 2^53 ns (2^53 + 1 rounds back to 2^53). The
// int64 accumulator must stay exact.
func TestHistSumExactPastFloat53(t *testing.T) {
	h := &Hist{}
	big := sim.Duration(1) << 53
	h.Observe(big)
	for i := 0; i < 10; i++ {
		h.Observe(1)
	}
	if want := big + 10; h.Sum() != want {
		t.Fatalf("Sum = %d, want %d (low-order samples lost)", h.Sum(), want)
	}
	// The float64 path demonstrably loses them: 2^53 is the first
	// integer whose successor float64 cannot represent.
	f := float64(big)
	for i := 0; i < 10; i++ {
		f += 1
	}
	if sim.Duration(f) == big+10 {
		t.Fatal("float64 accumulation unexpectedly exact; test premise broken")
	}
}

// TestHistReset: reset keeps the recorder's bucket pages but clears all
// statistics, a reused histogram allocates nothing at steady state, and
// a pooled histogram comes back empty.
func TestHistReset(t *testing.T) {
	h := AcquireHist("x")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i))
	}
	if h.Percentile(50) == 0 || h.Sum() == 0 {
		t.Fatal("histogram did not record")
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("reset left state: n=%d sum=%d", h.Count(), h.Sum())
	}
	// Steady state: re-observing the same value range after Reset must
	// reuse the retained pages — zero allocations per cycle.
	if allocs := testing.AllocsPerRun(50, func() {
		for i := 1; i <= 100; i++ {
			h.Observe(sim.Duration(i * 1000))
		}
		h.Reset()
	}); allocs != 0 {
		t.Fatalf("observe+reset cycle allocates %v/run, want 0", allocs)
	}
	h.Observe(7)
	if h.Mean() != 7 || h.Count() != 1 {
		t.Fatal("histogram unusable after reset")
	}
	ReleaseHist(h)
	h2 := AcquireHist("y")
	if h2.Count() != 0 || h2.Sum() != 0 || h2.Name() != "y" {
		t.Fatal("pooled histogram not clean")
	}
	ReleaseHist(h2)
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Stddev() != 0 {
		t.Fatal("empty hist should report zeros")
	}
}

// TestHistPercentileProperty is the recorder-versus-exact equivalence
// property: for any sample set, a percentile answered from the streaming
// recorder must sit in [exact, exact + one bucket width] and never leave
// [Min, Max] — the bucketized nearest-rank can round a value up to the
// top of its bucket, but by no more than one part in 2^14, and the
// extremes are exact. int64 inputs exercise the exact linear segment,
// several log segments, and the clamping at both ends.
func TestHistPercentileProperty(t *testing.T) {
	f := func(raw []int64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		h := &Hist{}
		vals := make([]sim.Duration, len(raw))
		for i, r := range raw {
			if r < 0 {
				r = -r
			}
			vals[i] = sim.Duration(r)
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		p := float64(pRaw) / 255 * 100
		got := h.Percentile(p)
		if got < vals[0] || got > vals[len(vals)-1] {
			return false
		}
		// Exact nearest-rank reference.
		rank := int(math.Ceil(p / 100 * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		if p <= 0 {
			exact = vals[0]
		}
		if p >= 100 {
			exact = vals[len(vals)-1]
		}
		// One bucket width at the exact value's magnitude, at least 1.
		width := exact >> recSubBits
		if width < 1 {
			width = 1
		}
		return got >= exact && got <= exact+width
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistPercentileMonotone(t *testing.T) {
	h := &Hist{}
	src := sim.NewSource(3)
	for i := 0; i < 5000; i++ {
		h.Observe(src.Duration(0, 1_000_000))
	}
	prev := sim.Duration(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestHistStddev(t *testing.T) {
	h := &Hist{}
	for _, v := range []sim.Duration{2000, 4000, 4000, 4000, 5000, 5000, 7000, 9000} {
		h.Observe(v)
	}
	// Known dataset (×1000): sample stddev ~2138.
	got := float64(h.Stddev())
	if math.Abs(got-2138) > 1 {
		t.Fatalf("stddev = %v, want ~2138", got)
	}
}

func TestGauge(t *testing.T) {
	s := NewSet()
	g := s.Gauge("q")
	g.Set(5)
	g.Set(2)
	g.Set(8)
	if g.Value() != 8 || g.Min() != 2 || g.Max() != 8 {
		t.Fatalf("gauge = %v min %v max %v", g.Value(), g.Min(), g.Max())
	}
}

func TestSetNamesSorted(t *testing.T) {
	s := NewSet()
	s.Counter("b")
	s.Counter("a")
	s.Hist("z")
	s.Hist("y")
	if names := s.CounterNames(); names[0] != "a" || names[1] != "b" {
		t.Fatalf("counter names = %v", names)
	}
	if names := s.HistNames(); names[0] != "y" || names[1] != "z" {
		t.Fatalf("hist names = %v", names)
	}
	if out := s.String(); !strings.Contains(out, "counter") || !strings.Contains(out, "hist") {
		t.Fatalf("String missing sections: %q", out)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 30)
	if y, ok := s.YAt(2); !ok || y != 30 {
		t.Fatalf("YAt(2) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Fatal("YAt(99) should miss")
	}
	if s.MaxY() != 30 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 6", "scaling", "cores", "score")
	f.Series("shared").Add(4, 100)
	f.Series("gapped").Add(4, 110)
	f.Series("gapped").Add(8, 220)
	out := f.String()
	for _, want := range []string{"Figure 6", "shared", "gapped", "cores", "score"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
	if labels := f.Labels(); len(labels) != 2 || labels[0] != "shared" {
		t.Fatalf("labels = %v", labels)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatal("missing cell not rendered as -")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Table 2", "null call latency", "Latency")
	tb.AddRow("async", "2757.6 ns")
	tb.AddRow("sync", "257.7 ns")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	if got := tb.Cell("sync", "Latency"); got != "257.7 ns" {
		t.Fatalf("cell = %q", got)
	}
	if got := tb.Cell("nope", "Latency"); got != "" {
		t.Fatalf("missing row cell = %q", got)
	}
	out := tb.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "async") {
		t.Fatalf("table output wrong:\n%s", out)
	}
}
