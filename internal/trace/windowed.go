package trace

import (
	"fmt"
	"strings"

	"coregap/internal/sim"
)

// WindowStat is the reduced summary of one simulated-time window of a
// Windowed metric. Percentiles come from the streaming Recorder, so they
// carry its (sub-0.01%) quantization; Count/Sum/Mean/Min/Max are exact.
type WindowStat struct {
	Index      int64    // window ordinal on the absolute grid (start = Index * width)
	Start, End sim.Time // [Start, End) in simulated time
	Count      uint64
	Sum        sim.Duration
	Mean       sim.Duration
	Min, Max   sim.Duration
	P50        sim.Duration
	P90        sim.Duration
	P99        sim.Duration
	P999       sim.Duration
}

// Windowed rolls a Recorder over fixed simulated-time windows. Windows
// live on the absolute grid [k*width, (k+1)*width): a sample observed at
// simulated time now belongs to window now/width regardless of when
// recording started, so two runs of the same scenario place every sample
// in the same window no matter how trials are scheduled — windowed output
// is bit-identical at any -parallel N because it is driven purely by
// engine time.
//
// Rolling forward closes every elapsed window, including empty interior
// ones (an idle window is a real observation — it is what a queueing
// collapse looks like), and reuses the single internal Recorder in place,
// so the record path stays allocation-free at steady state.
type Windowed struct {
	name  string
	width sim.Duration
	epoch uint64

	haveWin bool
	winIdx  int64
	rec     Recorder
	stats   []WindowStat
}

// Name reports the metric's name.
func (w *Windowed) Name() string { return w.name }

// Width reports the window width.
func (w *Windowed) Width() sim.Duration { return w.width }

// reset rewinds the windowed metric in place, retaining the recorder's
// bucket pages and the closed-window slice capacity.
func (w *Windowed) reset() {
	w.haveWin = false
	w.winIdx = 0
	w.rec.Reset()
	w.stats = w.stats[:0]
}

// roll closes every window that ends at or before the one containing now.
func (w *Windowed) roll(idx int64) {
	if !w.haveWin {
		w.haveWin = true
		w.winIdx = idx
		return
	}
	for w.winIdx < idx {
		w.stats = append(w.stats, w.close())
		w.winIdx++
		if w.rec.count != 0 {
			w.rec.Reset()
		}
	}
}

// close summarizes the current (open) window from the live recorder.
func (w *Windowed) close() WindowStat {
	st := WindowStat{
		Index: w.winIdx,
		Start: sim.Time(w.winIdx * int64(w.width)),
		End:   sim.Time((w.winIdx + 1) * int64(w.width)),
	}
	if n := w.rec.Count(); n > 0 {
		st.Count = n
		st.Sum = sim.Duration(w.rec.Sum())
		st.Mean = sim.Duration(w.rec.Mean())
		st.Min = sim.Duration(w.rec.Min())
		st.Max = sim.Duration(w.rec.Max())
		st.P50 = sim.Duration(w.rec.Percentile(50))
		st.P90 = sim.Duration(w.rec.Percentile(90))
		st.P99 = sim.Duration(w.rec.Percentile(99))
		st.P999 = sim.Duration(w.rec.Percentile(99.9))
	}
	return st
}

// Observe records a duration observed at simulated time now, first
// closing any windows that elapsed since the previous observation.
func (w *Windowed) Observe(now sim.Time, d sim.Duration) {
	w.roll(int64(now) / int64(w.width))
	w.rec.Record(int64(d))
}

// Flush closes all windows up to and including the one containing now
// (the final, possibly partial window is closed as-is). Call once at the
// end of a run, before reading Stats.
func (w *Windowed) Flush(now sim.Time) {
	w.roll(int64(now) / int64(w.width))
	if w.haveWin {
		w.stats = append(w.stats, w.close())
		w.winIdx++
		if w.rec.count != 0 {
			w.rec.Reset()
		}
		w.haveWin = false
	}
}

// Stats reports the closed windows in time order. The slice aliases the
// metric's internal storage: copy it before the owning Set is reset.
func (w *Windowed) Stats() []WindowStat { return w.stats }

// WindowLog is an exportable artifact: the per-window latency timeline of
// one or more labelled windowed metrics, in the long format (one row per
// window per label) that plots directly as an SLO-over-time chart.
type WindowLog struct {
	Name  string
	Title string
	Width sim.Duration
	rows  []windowRow
}

type windowRow struct {
	label string
	stat  WindowStat
}

// NewWindowLog returns an empty window log for windows of the given width.
func NewWindowLog(name, title string, width sim.Duration) *WindowLog {
	return &WindowLog{Name: name, Title: title, Width: width}
}

// Add appends one label's window sequence to the log.
func (l *WindowLog) Add(label string, stats []WindowStat) {
	for _, st := range stats {
		l.AddStat(label, st)
	}
}

// AddStat appends a single labelled window — the unit streaming reducers
// merge at, so a log can grow window-by-window as trials complete
// without buffering whole timelines.
func (l *WindowLog) AddStat(label string, st WindowStat) {
	l.rows = append(l.rows, windowRow{label: label, stat: st})
}

// Rows reports the number of (label, window) rows.
func (l *WindowLog) Rows() int { return len(l.rows) }

// CSV renders the log as one row per (window, label). Empty windows keep
// their row — a gap in service is data — with the latency cells empty.
func (l *WindowLog) CSV() string {
	var b strings.Builder
	b.WriteString("window,start_s,label,count,mean_ns,p50_ns,p90_ns,p99_ns,p999_ns,max_ns\n")
	for _, r := range l.rows {
		st := r.stat
		fmt.Fprintf(&b, "%d,%g,%s,", st.Index, sim.Duration(st.Start).Seconds(), csvEscape(r.label))
		if st.Count == 0 {
			b.WriteString("0,,,,,,\n")
			continue
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d\n",
			st.Count, int64(st.Mean), int64(st.P50), int64(st.P90),
			int64(st.P99), int64(st.P999), int64(st.Max))
	}
	return b.String()
}

// String renders the log as an aligned human-readable timeline.
func (l *WindowLog) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (window %v) ==\n", l.Name, l.Title, l.Width)
	fmt.Fprintf(&b, "%-4s %-10s %-28s %8s %12s %12s %12s %12s\n",
		"win", "start", "label", "n", "mean", "p50", "p99", "p999")
	for _, r := range l.rows {
		st := r.stat
		if st.Count == 0 {
			fmt.Fprintf(&b, "%-4d %-10.4g %-28s %8d %12s %12s %12s %12s\n",
				st.Index, sim.Duration(st.Start).Seconds(), r.label, 0, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-4d %-10.4g %-28s %8d %12v %12v %12v %12v\n",
			st.Index, sim.Duration(st.Start).Seconds(), r.label, st.Count,
			st.Mean, st.P50, st.P99, st.P999)
	}
	return b.String()
}
