package trace

import (
	"math"
	"sort"
	"strings"
	"testing"

	"coregap/internal/sim"
)

// TestRecorderExactMoments: Count, Sum, Min, Max, Mean and Stddev carry
// no binning error whatsoever — only percentiles are quantized.
func TestRecorderExactMoments(t *testing.T) {
	var r Recorder
	vals := []int64{3, 17, 16384, 16385, 1 << 30, (1 << 30) + 12345, 999_999_999_999}
	var sum int64
	for _, v := range vals {
		r.Record(v)
		sum += v
	}
	if r.Count() != uint64(len(vals)) || r.Sum() != sum {
		t.Fatalf("count/sum = %d/%d, want %d/%d", r.Count(), r.Sum(), len(vals), sum)
	}
	if r.Min() != 3 || r.Max() != 999_999_999_999 {
		t.Fatalf("min/max = %d/%d", r.Min(), r.Max())
	}
	mean := float64(sum) / float64(len(vals))
	if r.Mean() != mean {
		t.Fatalf("mean = %v, want %v", r.Mean(), mean)
	}
	var ss float64
	for _, v := range vals {
		d := float64(v) - mean
		ss += d * d
	}
	want := math.Sqrt(ss / float64(len(vals)-1))
	if got := r.Stddev(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

// TestRecorderSegmentBoundaries: values at the exact/log segment seams
// and at bucket edges quantize within one bucket width and never move
// outside [Min, Max].
func TestRecorderSegmentBoundaries(t *testing.T) {
	for _, v := range []int64{0, 1, recSubCount - 1, recSubCount, recSubCount + 1,
		2*recSubCount - 1, 2 * recSubCount, 1<<20 - 1, 1 << 20, 1<<40 + 7} {
		var r Recorder
		r.Record(v)
		got := r.Percentile(50)
		if got != v {
			// A single sample: p50 quantizes to the bucket top but the
			// [min,max] clamp must pull it back to the exact value.
			t.Fatalf("single-sample p50(%d) = %d", v, got)
		}
	}
}

// TestRecorderNegativeValues: negatives are accepted (bucket 0) with
// exact min/sum.
func TestRecorderNegativeValues(t *testing.T) {
	var r Recorder
	r.Record(-5)
	r.Record(10)
	if r.Min() != -5 || r.Max() != 10 || r.Sum() != 5 {
		t.Fatalf("min/max/sum = %d/%d/%d", r.Min(), r.Max(), r.Sum())
	}
	// Negatives quantize to bucket zero, so the low percentile reads 0 —
	// inside [Min, Max] — while Min stays exact.
	if p := r.Percentile(1); p < r.Min() || p > 0 {
		t.Fatalf("p1 = %d, want in [-5, 0]", p)
	}
}

// TestRecorderStddevLargeValues: the 128-bit sum of squares stays exact
// where a float64 accumulator loses the small components entirely.
func TestRecorderStddevLargeValues(t *testing.T) {
	var r Recorder
	base := int64(1) << 40 // ~18 min in ns; base^2 = 2^80 dwarfs float64's 53-bit mantissa
	vals := []int64{base, base + 1000, base + 2000}
	for _, v := range vals {
		r.Record(v)
	}
	// Exact sample stddev of {0, 1000, 2000} shifted by base: 1000.
	if got := r.Stddev(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("stddev = %v, want 1000", got)
	}
}

// TestRecorderZeroAlloc is the hot-path allocation gate (wired into
// make check): once a recorder has touched its value range, Record must
// not allocate, and Reset must recycle the pages rather than dropping
// them.
func TestRecorderZeroAlloc(t *testing.T) {
	var r Recorder
	vals := []int64{5, 5000, 20_000, 1 << 21, 1 << 34}
	for _, v := range vals {
		r.Record(v) // fault in the pages
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			r.Record(v)
		}
	}); allocs != 0 {
		t.Fatalf("Record allocates %v/run at steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r.Reset()
		for _, v := range vals {
			r.Record(v)
		}
		_ = r.Percentile(99)
	}); allocs != 0 {
		t.Fatalf("Reset+Record+Percentile allocates %v/run, want 0", allocs)
	}
}

// TestWindowedRolls: samples land in absolute-grid windows, empty
// interior windows are emitted, and Flush closes the final partial
// window.
func TestWindowedRolls(t *testing.T) {
	w := &Windowed{name: "lat", width: 100}
	w.Observe(10, 7)
	w.Observe(20, 9)
	w.Observe(250, 40) // skips window 1 entirely
	w.Flush(310)

	stats := w.Stats()
	if len(stats) != 4 {
		t.Fatalf("windows = %d, want 4 (incl. empty #1 and final partial)", len(stats))
	}
	if stats[0].Index != 0 || stats[0].Count != 2 || stats[0].Max != 9 {
		t.Fatalf("window 0 = %+v", stats[0])
	}
	if stats[1].Index != 1 || stats[1].Count != 0 {
		t.Fatalf("empty interior window = %+v", stats[1])
	}
	if stats[2].Index != 2 || stats[2].Count != 1 || stats[2].P99 != 40 {
		t.Fatalf("window 2 = %+v", stats[2])
	}
	if stats[3].Index != 3 || stats[3].Count != 0 {
		t.Fatalf("final window = %+v", stats[3])
	}
	if stats[1].Start != 100 || stats[1].End != 200 {
		t.Fatalf("window 1 bounds = [%v, %v)", stats[1].Start, stats[1].End)
	}
}

// TestWindowedZeroAlloc: at steady state (pages faulted, stats capacity
// grown) an observe/flush/reset cycle allocates nothing.
func TestWindowedZeroAlloc(t *testing.T) {
	w := &Windowed{name: "lat", width: 100}
	warm := func() {
		for i := 0; i < 20; i++ {
			w.Observe(sim.Time(i*37), sim.Duration(1000+i*500))
		}
		w.Flush(sim.Time(20 * 37))
	}
	warm()
	w.reset()
	if allocs := testing.AllocsPerRun(100, func() {
		warm()
		w.reset()
	}); allocs != 0 {
		t.Fatalf("windowed cycle allocates %v/run at steady state, want 0", allocs)
	}
}

// TestSetLatAndWindowReset: Lat feeds both the whole-run histogram and
// (when enabled) the windowed metric; Reset clears the window config and
// revives recycled metrics clean.
func TestSetLatAndWindowReset(t *testing.T) {
	s := NewSet()
	s.Lat("rtt", 50, 500) // windows disabled: histogram only
	if len(s.WindowedNames()) != 0 {
		t.Fatal("windowed metric created without a window width")
	}
	s.SetWindow(100)
	s.Lat("rtt", 150, 700)
	s.Lat("rtt", 250, 900)
	if got := s.Hist("rtt").Count(); got != 3 {
		t.Fatalf("hist count = %d, want 3 (all Lat calls)", got)
	}
	w := s.Windowed("rtt")
	w.Flush(260)
	if got := len(w.Stats()); got != 2 {
		t.Fatalf("windows = %d, want 2", got)
	}
	if names := s.WindowedNames(); len(names) != 1 || names[0] != "rtt" {
		t.Fatalf("WindowedNames = %v", names)
	}
	if !strings.Contains(s.String(), "windowed") {
		t.Fatal("String() missing windowed section")
	}

	s.Reset()
	if s.WindowWidth() != 0 {
		t.Fatal("Reset kept the window width")
	}
	if len(s.WindowedNames()) != 0 {
		t.Fatal("Reset left windowed metrics visible")
	}
	s.SetWindow(200)
	w2 := s.Windowed("rtt")
	if w2 != w {
		t.Fatal("windowed metric not recycled in place")
	}
	if len(w2.Stats()) != 0 || w2.Width() != 200 {
		t.Fatalf("revived metric dirty: stats=%d width=%v", len(w2.Stats()), w2.Width())
	}
}

// TestRecorderVsExactHistEquivalence is the cross-check the refactor
// rests on: against an exact sorted-sample oracle over a realistic
// latency-shaped distribution, every queried percentile agrees within
// the recorder's bucket resolution.
func TestRecorderVsExactHistEquivalence(t *testing.T) {
	src := sim.NewSource(7)
	var r Recorder
	var exact []int64
	for i := 0; i < 100_000; i++ {
		// Exponential-ish spread across 4 decades: 1 us .. 10 ms.
		v := int64(src.Exp(sim.Duration(50_000))) + int64(src.Duration(1000, 2000))
		r.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 99.99, 100} {
		rank := int(math.Ceil(p / 100 * float64(len(exact))))
		if rank < 1 {
			rank = 1
		}
		want := exact[rank-1]
		if p <= 0 {
			want = exact[0]
		}
		if p >= 100 {
			want = exact[len(exact)-1]
		}
		got := r.Percentile(p)
		width := want >> recSubBits
		if width < 1 {
			width = 1
		}
		if got < want || got > want+width {
			t.Fatalf("p%v = %d, exact %d (allowed +%d)", p, got, want, width)
		}
	}
}
