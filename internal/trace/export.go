package trace

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CSV renders the figure as comma-separated values: a header row with the
// x label and series labels, then one row per x value. Missing points are
// empty cells. Suitable for direct plotting.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, l := range f.order {
		b.WriteByte(',')
		b.WriteString(csvEscape(l))
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, l := range f.order {
			b.WriteByte(',')
			if y, ok := f.series[l].YAt(x); ok {
				b.WriteString(csvFloat(y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// csvFloat renders a y value for CSV. A NaN or infinite value — a
// division by an empty window, an uninitialized reduction — renders as
// an empty cell (missing point) rather than poisoning the file with a
// token downstream plotting can't parse.
func csvFloat(y float64) string {
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return ""
	}
	return strconv.FormatFloat(y, 'g', -1, 64)
}

// CSV renders the table as comma-separated values: a header with the
// column names, then one row per entry.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.label))
		for _, c := range t.columns {
			b.WriteByte(',')
			b.WriteString(csvEscape(r.cells[c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// ParseFigureCSV reconstructs a figure from its CSV rendering (the exact
// inverse of Figure.CSV for the axis/series/point data; Name, Title and
// YLabel are not part of the CSV and come back empty). Empty cells are
// missing points. It is what downstream plotting or a determinism check
// uses to compare two exported artifacts structurally.
func ParseFigureCSV(data string) (*Figure, error) {
	r := csv.NewReader(strings.NewReader(data))
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("figure csv: %w", err)
	}
	if len(records) == 0 || len(records[0]) == 0 {
		return nil, fmt.Errorf("figure csv: missing header")
	}
	header := records[0]
	f := NewFigure("", "", header[0], "")
	// Instantiate the series in header order even if some have no points.
	for _, label := range header[1:] {
		f.Series(label)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("figure csv: row %d has %d cells, header has %d",
				i+1, len(rec), len(header))
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("figure csv: row %d x: %w", i+1, err)
		}
		for col, cell := range rec[1:] {
			if cell == "" {
				continue
			}
			y, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("figure csv: row %d series %q: %w", i+1, header[col+1], err)
			}
			f.Series(header[col+1]).Add(x, y)
		}
	}
	return f, nil
}

// ParseTableCSV reconstructs a table from its CSV rendering (the inverse
// of Table.CSV for columns, rows and cells; Name and Title come back
// empty).
func ParseTableCSV(data string) (*Table, error) {
	r := csv.NewReader(strings.NewReader(data))
	r.FieldsPerRecord = -1
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table csv: %w", err)
	}
	if len(records) == 0 || len(records[0]) == 0 || records[0][0] != "row" {
		return nil, fmt.Errorf("table csv: missing %q header", "row")
	}
	header := records[0]
	t := NewTable("", "", header[1:]...)
	for i, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("table csv: row %d has %d cells, header has %d",
				i+1, len(rec), len(header))
		}
		t.AddRow(rec[0], rec[1:]...)
	}
	return t, nil
}
