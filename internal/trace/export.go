package trace

import (
	"fmt"
	"sort"
	"strings"
)

// CSV renders the figure as comma-separated values: a header row with the
// x label and series labels, then one row per x value. Missing points are
// empty cells. Suitable for direct plotting.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, l := range f.order {
		b.WriteByte(',')
		b.WriteString(csvEscape(l))
	}
	b.WriteByte('\n')

	xs := map[float64]bool{}
	for _, s := range f.series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, l := range f.order {
			b.WriteByte(',')
			if y, ok := f.series[l].YAt(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values: a header with the
// column names, then one row per entry.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row")
	for _, c := range t.columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(csvEscape(r.label))
		for _, c := range t.columns {
			b.WriteByte(',')
			b.WriteString(csvEscape(r.cells[c]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
