package trace

import (
	"fmt"
	"time"

	"coregap/internal/sim"
)

// RunMeta records the provenance of one simulation trial: what ran, how
// it was seeded, and how much simulated and wall-clock time it consumed.
// The experiment runner attaches one to every trial result so that
// reproduced artifacts can always be traced back to their inputs.
type RunMeta struct {
	Experiment string `json:"experiment,omitempty"`
	Trial      string `json:"trial"`
	Config     string `json:"config"`
	Seed       uint64 `json:"seed"`
	// Simulated is the trial's final simulation clock.
	Simulated sim.Duration `json:"simulated_ns"`
	// Events is the number of discrete events the engine fired.
	Events uint64 `json:"events"`
	// Wall is host wall-clock time spent executing the trial. It is the
	// only non-deterministic field and never feeds into artifacts.
	Wall time.Duration `json:"wall_ns"`
}

func (m RunMeta) String() string {
	return fmt.Sprintf("%s/%s seed=%d sim=%v events=%d wall=%v",
		m.Config, m.Trial, m.Seed, m.Simulated, m.Events, m.Wall)
}

// MetaTable renders a set of run metadata records as a Table, one row per
// trial — the shape benchsuite prints under -v and exports with -csv.
func MetaTable(name string, metas []RunMeta) *Table {
	tb := NewTable(name, "per-trial run metadata",
		"config", "seed", "simulated", "events", "wall")
	for _, m := range metas {
		tb.AddRow(m.Trial,
			m.Config,
			fmt.Sprintf("%d", m.Seed),
			m.Simulated.String(),
			fmt.Sprintf("%d", m.Events),
			m.Wall.String())
	}
	return tb
}
