package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled line of a paper figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt reports the y value at the given x. The zero-value contract: a
// miss — including any lookup on an empty series — is (0, false), never
// NaN or garbage, so renderers can use the boolean alone to decide
// between the value and an empty cell.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY reports the largest y value in the series. The zero-value
// contract: an empty series reports exactly 0 (not NaN, not -Inf), so a
// windowed series whose leading windows are all empty still scales a
// plot axis sanely. Callers that must distinguish "max is 0" from "no
// points" check len(s.Points).
func (s *Series) MaxY() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Figure is a reproduced paper figure: a set of series over a shared x axis.
type Figure struct {
	Name   string // e.g. "Figure 6"
	Title  string
	XLabel string
	YLabel string
	series map[string]*Series
	order  []string
}

// NewFigure returns an empty figure.
func NewFigure(name, title, xlabel, ylabel string) *Figure {
	return &Figure{Name: name, Title: title, XLabel: xlabel, YLabel: ylabel,
		series: make(map[string]*Series)}
}

// Series returns the labelled series, creating it on first use.
func (f *Figure) Series(label string) *Series {
	s, ok := f.series[label]
	if !ok {
		s = &Series{Label: label}
		f.series[label] = s
		f.order = append(f.order, label)
	}
	return s
}

// Labels reports series labels in insertion order.
func (f *Figure) Labels() []string { return append([]string(nil), f.order...) }

// String renders the figure as aligned columns: one row per x value, one
// column per series — the same rows/series shape the paper plots.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.Name, f.Title)
	xs := map[float64]bool{}
	for _, s := range f.series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, l := range f.order {
		fmt.Fprintf(&b, " %22s", l)
	}
	fmt.Fprintf(&b, "   (%s)\n", f.YLabel)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, l := range f.order {
			if y, ok := f.series[l].YAt(x); ok {
				fmt.Fprintf(&b, " %22.6g", y)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table is a reproduced paper table: named rows of named columns.
type Table struct {
	Name    string // e.g. "Table 2"
	Title   string
	columns []string
	rows    []tableRow
}

type tableRow struct {
	label string
	cells map[string]string
}

// NewTable returns an empty table with the given column order.
func NewTable(name, title string, columns ...string) *Table {
	return &Table{Name: name, Title: title, columns: columns}
}

// AddRow appends a row; cells are matched to columns by position.
func (t *Table) AddRow(label string, cells ...string) {
	row := tableRow{label: label, cells: make(map[string]string)}
	for i, c := range cells {
		if i < len(t.columns) {
			row.cells[t.columns[i]] = c
		}
	}
	t.rows = append(t.rows, row)
}

// Cell reports the value at (rowLabel, column), or "" when absent.
func (t *Table) Cell(rowLabel, column string) string {
	for _, r := range t.rows {
		if r.label == rowLabel {
			return r.cells[column]
		}
	}
	return ""
}

// Rows reports the number of rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	width := 12
	for _, r := range t.rows {
		if len(r.label) > width {
			width = len(r.label)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, c := range t.columns {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", width+2, r.label)
		for _, c := range t.columns {
			fmt.Fprintf(&b, " %18s", r.cells[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
