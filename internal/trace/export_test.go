package trace

import (
	"strings"
	"testing"
)

func TestFigureCSV(t *testing.T) {
	f := NewFigure("F", "t", "cores", "score")
	f.Series("a").Add(2, 1.5)
	f.Series("b, with comma").Add(2, 2.5)
	f.Series("a").Add(4, 3)
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != `cores,a,"b, with comma"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "2,1.5,2.5" {
		t.Fatalf("row = %q", lines[1])
	}
	// Missing cell is empty.
	if lines[2] != "4,3," {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestFigureCSVRoundTrip(t *testing.T) {
	f := NewFigure("F", "t", "message bytes", "Gbit/s")
	f.Series("virtio shared-core").Add(64, 0.125)
	f.Series("virtio shared-core").Add(1024, 1.75)
	f.Series(`SR-IOV "fast", gapped`).Add(64, 0.5)
	f.Series("empty series")
	csv := f.CSV()

	parsed, err := ParseFigureCSV(csv)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.CSV(); got != csv {
		t.Fatalf("round trip:\n got %q\nwant %q", got, csv)
	}
	if parsed.XLabel != "message bytes" {
		t.Fatalf("xlabel = %q", parsed.XLabel)
	}
	if y, ok := parsed.Series(`SR-IOV "fast", gapped`).YAt(64); !ok || y != 0.5 {
		t.Fatalf("quoted series point = %v, %v", y, ok)
	}
	// The series with no points must survive as a column.
	if labels := parsed.Labels(); len(labels) != 3 || labels[2] != "empty series" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestParseFigureCSVErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"cores,a\nnot-a-number,1\n",
		"cores,a\n2,nan-ish-not\n",
		"cores,a\n2,1,extra\n",
	} {
		if _, err := ParseFigureCSV(bad); err == nil {
			t.Errorf("ParseFigureCSV(%q): want error", bad)
		}
	}
}

func TestTableCSVRoundTrip(t *testing.T) {
	tb := NewTable("T", "t", "Latency", "Notes")
	tb.AddRow("sync", "258 ns", `has "quotes"`)
	tb.AddRow("async, batched", "1.2 us", "")
	csv := tb.CSV()

	parsed, err := ParseTableCSV(csv)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.CSV(); got != csv {
		t.Fatalf("round trip:\n got %q\nwant %q", got, csv)
	}
	if c := parsed.Cell("async, batched", "Latency"); c != "1.2 us" {
		t.Fatalf("cell = %q", c)
	}
	if _, err := ParseTableCSV("nope,a\n"); err == nil {
		t.Fatal("want header error")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "t", "Latency", "Notes")
	tb.AddRow("sync", "258 ns", `has "quotes"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "row,Latency,Notes" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `sync,258 ns,"has ""quotes"""` {
		t.Fatalf("row = %q", lines[1])
	}
}
