package trace

import (
	"strings"
	"testing"
)

func TestFigureCSV(t *testing.T) {
	f := NewFigure("F", "t", "cores", "score")
	f.Series("a").Add(2, 1.5)
	f.Series("b, with comma").Add(2, 2.5)
	f.Series("a").Add(4, 3)
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != `cores,a,"b, with comma"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "2,1.5,2.5" {
		t.Fatalf("row = %q", lines[1])
	}
	// Missing cell is empty.
	if lines[2] != "4,3," {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "t", "Latency", "Notes")
	tb.AddRow("sync", "258 ns", `has "quotes"`)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "row,Latency,Notes" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `sync,258 ns,"has ""quotes"""` {
		t.Fatalf("row = %q", lines[1])
	}
}
