package trace

import (
	"math"
	"math/bits"

	"coregap/internal/sim"
)

// Recorder is a fixed-bucket log-linear (HDR-style) latency recorder: the
// streaming replacement for the exact sample-retaining histogram this
// package shipped before the windowed-metrics refactor.
//
// Values (int64 nanoseconds) are counted in buckets laid out in segments
// of 2^recSubBits sub-buckets. Segment 0 covers [0, 2^recSubBits) at
// 1 ns resolution — exact. Segment s >= 1 covers one power-of-two octave
// [2^(recSubBits+s-1), 2^(recSubBits+s)) with 2^recSubBits equal-width
// sub-buckets, so the quantization error of any recorded value is below
// one part in 2^recSubBits (~0.006%) of the value itself.
//
// Memory is bounded and deterministic: a segment's count page (2^recSubBits
// uint32 counters) is allocated the first time a value lands in it and is
// retained — zeroed in place — across Reset, so a recorder pooled across
// trials reaches a steady state with no allocations on the record path.
// The worst case (samples spanning every octave of the int64 range) is
// recSegments pages; in practice a latency distribution touches a handful.
//
// Count, Sum, Min and Max are tracked exactly alongside the buckets, and
// the sum of squares is accumulated as an exact 128-bit integer, so Mean
// and Stddev carry no binning error at all — only percentile queries see
// the bucket resolution, and those are clamped into [Min, Max].
type Recorder struct {
	count uint64
	sum   int64
	min   int64
	max   int64
	// 128-bit sum of squared values; exact for any realistic run
	// (overflow needs count * max^2 >= 2^128, i.e. centuries of
	// accumulated microsecond-scale samples).
	sqHi, sqLo uint64
	// segN[s] counts samples in segment s, so queries and Reset skip
	// untouched segments without scanning their pages.
	segN [recSegments]uint64
	seg  [recSegments][]uint32
}

const (
	// recSubBits fixes the resolution/footprint trade: 2^14 sub-buckets
	// per octave keep the relative quantization error of a percentile
	// below 2^-14 — far inside the rounding of every reported artifact
	// (tables print 2-4 significant digits) — at 64 KiB per touched
	// octave page.
	recSubBits  = 14
	recSubCount = 1 << recSubBits
	recSegments = 64 - recSubBits
)

// recBucket maps a value to its (segment, sub-bucket) pair. Negative
// values (not produced by the simulator, but accepted for robustness)
// land in bucket zero; their exact value still reaches min/sum/sumsq.
func recBucket(v int64) (int, int) {
	if v < recSubCount {
		if v < 0 {
			return 0, 0
		}
		return 0, int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	shift := uint(msb - recSubBits)
	return msb - recSubBits + 1, int(uint64(v)>>shift) - recSubCount
}

// recBucketValue is the largest value mapping to the bucket — the HDR
// "highest equivalent value", so nearest-rank percentiles never
// under-report a tail.
func recBucketValue(s, i int) int64 {
	if s == 0 {
		return int64(i)
	}
	shift := uint(s - 1)
	return (int64(recSubCount+i+1) << shift) - 1
}

// Record adds one value.
func (r *Recorder) Record(v int64) {
	r.count++
	r.sum += v
	if r.count == 1 {
		r.min, r.max = v, v
	} else if v < r.min {
		r.min = v
	} else if v > r.max {
		r.max = v
	}
	a := uint64(v)
	if v < 0 {
		a = uint64(-v)
	}
	hi, lo := bits.Mul64(a, a)
	var c uint64
	r.sqLo, c = bits.Add64(r.sqLo, lo, 0)
	r.sqHi += hi + c
	s, i := recBucket(v)
	page := r.seg[s]
	if page == nil {
		page = make([]uint32, recSubCount)
		r.seg[s] = page
	}
	page[i]++
	r.segN[s]++
}

// Count reports the number of recorded values.
func (r *Recorder) Count() uint64 { return r.count }

// Sum reports the exact total of all recorded values.
func (r *Recorder) Sum() int64 { return r.sum }

// Min reports the exact smallest recorded value (0 when empty).
func (r *Recorder) Min() int64 {
	if r.count == 0 {
		return 0
	}
	return r.min
}

// Max reports the exact largest recorded value (0 when empty).
func (r *Recorder) Max() int64 {
	if r.count == 0 {
		return 0
	}
	return r.max
}

// Mean reports the arithmetic mean (0 when empty).
func (r *Recorder) Mean() float64 {
	if r.count == 0 {
		return 0
	}
	return float64(r.sum) / float64(r.count)
}

// Percentile reports the nearest-rank p-th percentile (p in [0,100]).
// The answer is the highest value equivalent to the rank's bucket,
// clamped into [Min, Max]; its error versus the exact sample percentile
// is below one sub-bucket width (one part in 2^14 of the value).
func (r *Recorder) Percentile(p float64) int64 {
	if r.count == 0 {
		return 0
	}
	if p <= 0 {
		return r.min
	}
	if p >= 100 {
		return r.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(r.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for s := 0; s < recSegments; s++ {
		n := r.segN[s]
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		for i, c := range r.seg[s] {
			cum += uint64(c)
			if cum >= rank {
				v := recBucketValue(s, i)
				if v > r.max {
					v = r.max
				}
				if v < r.min {
					v = r.min
				}
				return v
			}
		}
	}
	return r.max
}

// variance is the exact sample variance, computed from the integer
// moments: with m the integer mean, S = sum((x-m)^2) is formed in 128-bit
// arithmetic (no cancellation against the large raw second moment), then
// the fractional-mean correction is applied in float64.
func (r *Recorder) variance() float64 {
	n := r.count
	if n < 2 {
		return 0
	}
	m := r.sum / int64(n)
	msum := mulI128(m, r.sum)
	nm2 := mulI128(m, m).mulU64(n)
	s128 := i128{r.sqHi, r.sqLo}.sub(msum).sub(msum).add(nm2)
	sf := s128.float()
	rem := r.sum - int64(n)*m // sum(x - m), exact, |rem| < n
	f := float64(rem) / float64(n)
	s2 := sf - 2*f*float64(rem) + float64(n)*f*f
	return s2 / float64(n-1)
}

// Stddev reports the sample standard deviation.
func (r *Recorder) Stddev() float64 {
	return math.Sqrt(r.variance())
}

// Reset empties the recorder in place: counters zero, every touched
// count page scrubbed but retained, so steady-state reuse (pooled trials,
// window rollover) allocates nothing.
func (r *Recorder) Reset() {
	r.count, r.sum, r.min, r.max = 0, 0, 0, 0
	r.sqHi, r.sqLo = 0, 0
	for s := 0; s < recSegments; s++ {
		if r.segN[s] != 0 {
			clear(r.seg[s])
			r.segN[s] = 0
		}
	}
}

// ObserveDur records a simulated duration (the sim-typed convenience the
// metric layer uses).
func (r *Recorder) ObserveDur(d sim.Duration) { r.Record(int64(d)) }

// i128 is a two's-complement 128-bit integer, wide enough for the exact
// moment arithmetic above.
type i128 struct{ hi, lo uint64 }

func (a i128) add(b i128) i128 {
	lo, c := bits.Add64(a.lo, b.lo, 0)
	return i128{a.hi + b.hi + c, lo}
}

func (a i128) sub(b i128) i128 {
	lo, brw := bits.Sub64(a.lo, b.lo, 0)
	return i128{a.hi - b.hi - brw, lo}
}

// mulI128 is the exact signed product of two int64s.
func mulI128(a, b int64) i128 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := bits.Mul64(ua, ub)
	r := i128{hi, lo}
	if neg {
		r = i128{}.sub(r)
	}
	return r
}

// mulU64 multiplies by an unsigned 64-bit count, truncating above 2^128
// (unreachable for in-domain moments).
func (a i128) mulU64(b uint64) i128 {
	h1, l1 := bits.Mul64(a.lo, b)
	_, l2 := bits.Mul64(a.hi, b)
	return i128{h1 + l2, l1}
}

func (a i128) float() float64 {
	if a.hi>>63 != 0 {
		n := i128{}.sub(a)
		return -(float64(n.hi)*0x1p64 + float64(n.lo))
	}
	return float64(a.hi)*0x1p64 + float64(a.lo)
}
