package rmm

import (
	"errors"
	"testing"

	"coregap/internal/attest"
	"coregap/internal/granule"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/uarch"
)

type fixture struct {
	m    *Monitor
	mach *hw.Machine
	next granule.PA
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	eng := sim.NewEngine(3)
	mach := hw.NewMachine(eng, hw.DefaultConfig(8))
	return &fixture{m: New(mach, cfg, trace.NewSet()), mach: mach}
}

// alloc delegates and returns a fresh granule.
func (f *fixture) alloc(t *testing.T) granule.PA {
	t.Helper()
	pa := f.next
	f.next += granule.Size
	if err := f.mach.GPT().Delegate(pa); err != nil {
		t.Fatal(err)
	}
	return pa
}

func (f *fixture) newRealm(t *testing.T, vcpus int) *Realm {
	t.Helper()
	r, err := f.m.RealmCreate(RealmParams{Name: "r", VCPUs: vcpus, IPASize: 40},
		f.alloc(t), f.alloc(t))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRealmLifecycle(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 2)
	if r.State() != RealmNew {
		t.Fatalf("state = %v", r.State())
	}
	if !r.Domain().IsGuest() {
		t.Fatal("realm domain must be a guest domain")
	}

	rec0, err := f.m.RecCreate(r, f.alloc(t))
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := f.m.RecCreate(r, f.alloc(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.m.RecCreate(r, f.alloc(t)); err == nil {
		t.Fatal("over-provisioned rec accepted")
	}
	if rec0.Index() != 0 || rec1.Index() != 1 {
		t.Fatal("rec indices")
	}

	if err := f.m.Activate(r); err != nil {
		t.Fatal(err)
	}
	if err := f.m.Activate(r); !errors.Is(err, ErrRealmState) {
		t.Fatalf("double activate: %v", err)
	}
	if _, err := f.m.RecCreate(r, f.alloc(t)); !errors.Is(err, ErrRealmState) {
		t.Fatalf("rec create after activate: %v", err)
	}

	if err := f.m.Destroy(r); err != nil {
		t.Fatal(err)
	}
	if r.State() != RealmDestroyed || rec0.State() != RecDestroyed {
		t.Fatal("destroy did not cascade")
	}
	if err := f.m.Destroy(r); !errors.Is(err, ErrBadRealm) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestRealmCreateValidation(t *testing.T) {
	f := newFixture(t, Config{})
	// Zero or absurd vCPU counts rejected.
	if _, err := f.m.RealmCreate(RealmParams{VCPUs: 0}, f.alloc(t), f.alloc(t)); err == nil {
		t.Fatal("0 vcpus accepted")
	}
	if _, err := f.m.RealmCreate(RealmParams{VCPUs: 999}, f.alloc(t), f.alloc(t)); err == nil {
		t.Fatal("999 vcpus accepted")
	}
	// Undelegated granules rejected.
	if _, err := f.m.RealmCreate(RealmParams{VCPUs: 1}, granule.PA(1<<30), f.alloc(t)); err == nil {
		t.Fatal("undelegated RD accepted")
	}
}

func TestDistinctRealmsDistinctDomains(t *testing.T) {
	f := newFixture(t, Config{})
	r1 := f.newRealm(t, 1)
	r2 := f.newRealm(t, 1)
	if r1.Domain() == r2.Domain() || r1.ID() == r2.ID() {
		t.Fatal("realms share identity")
	}
}

func TestDataCreateMeasuresOnlyBeforeActivation(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 1)
	buildRTT(t, f, r, 0x8000_0000)

	if err := f.m.DataCreate(r, 0x8000_0000, f.alloc(t), []byte("boot code")); err != nil {
		t.Fatal(err)
	}
	rimBefore := r.Ledger().RIM()
	f.m.Activate(r)
	// Post-activation data (host-initiated demand paging) is not measured.
	if err := f.m.DataCreate(r, 0x8000_0000+granule.Size, f.alloc(t), []byte("later")); err != nil {
		t.Fatal(err)
	}
	if r.Ledger().RIM() != rimBefore {
		t.Fatal("post-activation DataCreate changed the RIM")
	}
}

func buildRTT(t *testing.T, f *fixture, r *Realm, ipa granule.IPA) {
	t.Helper()
	for level := 1; level <= 3; level++ {
		if err := r.RTT().CreateTable(ipa, level, f.alloc(t)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckEnterBaselineAllowsAnyCore(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: false})
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)
	// Baseline CCA: any core, including migration, is fine.
	if err := f.m.CheckEnter(rec, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.m.CheckEnter(rec, 5); err != nil {
		t.Fatal(err)
	}
	if rec.BoundCore() != hw.NoCore {
		t.Fatal("baseline must not bind cores")
	}
}

func TestCheckEnterRequiresActivation(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	if err := f.m.CheckEnter(rec, 0); !errors.Is(err, ErrNotActive) {
		t.Fatalf("enter before activation: %v", err)
	}
}

func TestCoreGappedBindingEnforcement(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: true})
	r := f.newRealm(t, 2)
	rec0, _ := f.m.RecCreate(r, f.alloc(t))
	rec1, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)

	// Entering on a non-dedicated core fails.
	if err := f.m.CheckEnter(rec0, 3); !errors.Is(err, ErrCoreNotDedicated) {
		t.Fatalf("enter on host core: %v", err)
	}
	f.m.DedicateCore(3)
	f.m.DedicateCore(4)

	// First entry binds.
	if err := f.m.CheckEnter(rec0, 3); err != nil {
		t.Fatal(err)
	}
	if rec0.BoundCore() != 3 || f.m.BoundRec(3) != rec0 {
		t.Fatal("binding not recorded")
	}
	// Re-entry on the same core is fine.
	if err := f.m.CheckEnter(rec0, 3); err != nil {
		t.Fatal(err)
	}
	// Migration attempt: dispatch the same vCPU elsewhere fails (§4.2).
	if err := f.m.CheckEnter(rec0, 4); !errors.Is(err, ErrBoundElsewhere) {
		t.Fatalf("migration: %v", err)
	}
	// Co-scheduling another vCPU on the bound core fails.
	if err := f.m.CheckEnter(rec1, 3); !errors.Is(err, ErrCoreInUse) {
		t.Fatalf("co-schedule: %v", err)
	}
	if err := f.m.CheckEnter(rec1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestCrossRealmCoSchedulingBlocked(t *testing.T) {
	// The attack from §3: a malicious guest's vCPU dispatched on a
	// victim's core. The monitor must refuse.
	f := newFixture(t, Config{CoreGapped: true})
	victim := f.newRealm(t, 1)
	vrec, _ := f.m.RecCreate(victim, f.alloc(t))
	f.m.Activate(victim)
	attacker := f.newRealm(t, 1)
	arec, _ := f.m.RecCreate(attacker, f.alloc(t))
	f.m.Activate(attacker)

	f.m.DedicateCore(2)
	if err := f.m.CheckEnter(vrec, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.m.CheckEnter(arec, 2); !errors.Is(err, ErrCoreInUse) {
		t.Fatalf("attacker co-scheduled on victim core: %v", err)
	}
}

func TestReclaimProtocol(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: true})
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)
	f.m.DedicateCore(5)
	if err := f.m.CheckEnter(rec, 5); err != nil {
		t.Fatal(err)
	}
	// Host cannot reclaim a core with a live binding.
	if err := f.m.ReclaimCore(5); !errors.Is(err, ErrCoreBusy) {
		t.Fatalf("reclaim of bound core: %v", err)
	}
	// Destroying the realm releases bindings; reclaim then succeeds.
	if err := f.m.Destroy(r); err != nil {
		t.Fatal(err)
	}
	if err := f.m.ReclaimCore(5); err != nil {
		t.Fatal(err)
	}
	if f.m.IsDedicated(5) {
		t.Fatal("core still dedicated after reclaim")
	}
	// Reclaiming a never-dedicated core fails.
	if err := f.m.ReclaimCore(7); !errors.Is(err, ErrCoreNotDedicated) {
		t.Fatalf("reclaim of host core: %v", err)
	}
}

func TestEnterAfterRecDestroy(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: true})
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)
	f.m.DedicateCore(1)
	if err := f.m.CheckEnter(rec, 1); err != nil {
		t.Fatal(err)
	}
	f.m.RecDestroy(rec)
	if err := f.m.CheckEnter(rec, 1); !errors.Is(err, ErrBadRec) {
		t.Fatalf("enter of destroyed rec: %v", err)
	}
}

func TestEnterExitAccounting(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)
	f.m.NoteEnter(rec)
	if rec.State() != RecRunning || rec.Enters() != 1 {
		t.Fatal("enter accounting")
	}
	f.m.NoteExit(rec)
	if rec.State() != RecReady || rec.Exits() != 1 {
		t.Fatal("exit accounting")
	}
}

func TestAttestationCoreGapClaim(t *testing.T) {
	for _, gapped := range []bool{true, false} {
		f := newFixture(t, Config{CoreGapped: gapped})
		r := f.newRealm(t, 1)
		if _, err := f.m.Token(r, [32]byte{}); !errors.Is(err, ErrNotActive) {
			t.Fatalf("token before activation: %v", err)
		}
		f.m.Activate(r)
		tok, err := f.m.Token(r, [32]byte{1})
		if err != nil {
			t.Fatal(err)
		}
		if !f.m.Verifier().Verify(tok) {
			t.Fatal("token does not verify")
		}
		if tok.CoreGapped != gapped {
			t.Fatalf("token claims gapped=%v, monitor is %v", tok.CoreGapped, gapped)
		}
		// A guest policy requiring core gapping accepts/rejects correctly.
		pol := attest.Policy{RequireCoreGapped: true, ExpectedRIM: r.Ledger().RIM()}
		err = pol.Evaluate(tok)
		if gapped && err != nil {
			t.Fatalf("policy rejected gapped platform: %v", err)
		}
		if !gapped && err == nil {
			t.Fatal("policy accepted shared-core platform")
		}
	}
}

func TestGranuleAccountingAcrossLifecycle(t *testing.T) {
	f := newFixture(t, Config{})
	gpt := f.mach.GPT()
	base := gpt.CountIn(granule.Delegated)
	r := f.newRealm(t, 1)
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	_ = rec
	buildRTT(t, f, r, 0)
	if err := f.m.DataCreate(r, 0, f.alloc(t), []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.m.Activate(r)
	f.m.Destroy(r)
	// After destroy: RD, REC, Data granules released back to Delegated;
	// RTT table granules remain claimed by the tree in this model (the
	// host undelegates them during full teardown).
	if gpt.CountIn(granule.RD) != 0 || gpt.CountIn(granule.REC) != 0 || gpt.CountIn(granule.Data) != 1 {
		t.Fatalf("leaked granules: rd=%d rec=%d data=%d",
			gpt.CountIn(granule.RD), gpt.CountIn(granule.REC), gpt.CountIn(granule.Data))
	}
	_ = base
}

func TestDomainTrustInvariant(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 1)
	if r.Domain().Trusts(uarch.DomainHost) {
		t.Fatal("realm domain trusts host")
	}
}

func TestStateStrings(t *testing.T) {
	if RealmNew.String() != "new" || RealmActive.String() != "active" || RealmDestroyed.String() != "destroyed" {
		t.Fatal("realm state strings")
	}
	if RecReady.String() != "ready" || RecRunning.String() != "running" || RecDestroyed.String() != "destroyed" {
		t.Fatal("rec state strings")
	}
}
