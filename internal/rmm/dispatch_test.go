package rmm

import (
	"testing"
	"testing/quick"

	"coregap/internal/granule"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/smc"
	"coregap/internal/trace"
)

// abiFixture drives the monitor purely through the SMC ABI, as a real
// host kernel would.
type abiFixture struct {
	d    *Dispatcher
	mach *hw.Machine
	next uint64
}

func newABIFixture(t *testing.T, cfg Config) *abiFixture {
	t.Helper()
	eng := sim.NewEngine(5)
	mach := hw.NewMachine(eng, hw.DefaultConfig(8))
	return &abiFixture{d: NewDispatcher(New(mach, cfg, trace.NewSet())), mach: mach}
}

func (f *abiFixture) call(fid smc.FID, args ...uint64) smc.Result {
	c := smc.Call{FID: fid}
	copy(c.Args[:], args)
	return f.d.Handle(c)
}

// delegated returns a freshly delegated granule PA via the ABI.
func (f *abiFixture) delegated(t *testing.T) uint64 {
	t.Helper()
	pa := f.next
	f.next += granule.Size
	if r := f.call(smc.RMIGranuleDelegate, pa); r.Status != smc.StatusSuccess {
		t.Fatalf("delegate %#x: %v", pa, r.Status)
	}
	return pa
}

// buildRealm constructs and activates a realm entirely through the ABI,
// returning the RD handle and REC handles.
func (f *abiFixture) buildRealm(t *testing.T, vcpus int) (uint64, []uint64) {
	t.Helper()
	rd := f.delegated(t)
	rtt := f.delegated(t)
	if r := f.call(smc.RMIRealmCreate, rd, rtt, uint64(vcpus), 40, 0); r.Status != smc.StatusSuccess {
		t.Fatalf("realm create: %v", r.Status)
	}
	var recs []uint64
	for i := 0; i < vcpus; i++ {
		rec := f.delegated(t)
		if r := f.call(smc.RMIRecCreate, rd, rec); r.Status != smc.StatusSuccess {
			t.Fatalf("rec create: %v", r.Status)
		}
		recs = append(recs, rec)
	}
	if r := f.call(smc.RMIRealmActivate, rd); r.Status != smc.StatusSuccess {
		t.Fatalf("activate: %v", r.Status)
	}
	return rd, recs
}

func TestABIVersionAndFeatures(t *testing.T) {
	f := newABIFixture(t, Config{CoreGapped: true, DelegateTimer: true, DelegateVIPI: true})
	if r := f.call(smc.RMIVersion); r.Status != smc.StatusSuccess || r.Vals[0] != abiVersion {
		t.Fatalf("version = %+v", r)
	}
	r := f.call(smc.RMIFeatures)
	if r.Vals[0] != featureCoreGap|featureDelegTim|featureDelegIPI {
		t.Fatalf("features = %#x", r.Vals[0])
	}
	f2 := newABIFixture(t, Config{})
	if r := f2.call(smc.RMIFeatures); r.Vals[0] != 0 {
		t.Fatalf("baseline features = %#x", r.Vals[0])
	}
}

func TestABIRealmLifecycle(t *testing.T) {
	f := newABIFixture(t, Config{CoreGapped: true})
	rd, recs := f.buildRealm(t, 2)

	// Stage-2 build and data mapping through the ABI.
	ipa := uint64(0x8000_0000)
	for level := uint64(1); level <= 3; level++ {
		if r := f.call(smc.RMIRttCreate, rd, ipa, level, f.delegated(t)); r.Status != smc.StatusSuccess {
			t.Fatalf("rtt level %d: %v", level, r.Status)
		}
	}
	if r := f.call(smc.RMIDataCreate, rd, ipa, f.delegated(t)); r.Status != smc.StatusSuccess {
		t.Fatalf("data create: %v", r.Status)
	}
	if r := f.call(smc.RMIDataDestroy, rd, ipa); r.Status != smc.StatusSuccess {
		t.Fatalf("data destroy: %v", r.Status)
	}

	// Destroy: realm and all its RECs disappear from the handle space.
	if r := f.call(smc.RMIRealmDestroy, rd); r.Status != smc.StatusSuccess {
		t.Fatalf("destroy: %v", r.Status)
	}
	if r := f.call(smc.RMIRecDestroy, recs[0]); r.Status != smc.StatusErrorRec {
		t.Fatalf("stale rec handle: %v", r.Status)
	}
	if r := f.call(smc.RMIRealmActivate, rd); r.Status != smc.StatusErrorRealm {
		t.Fatalf("stale rd handle: %v", r.Status)
	}
}

func TestABIHostileHandles(t *testing.T) {
	f := newABIFixture(t, Config{CoreGapped: true})
	rd, _ := f.buildRealm(t, 1)

	// Fabricated handles are rejected, never dereferenced.
	if r := f.call(smc.RMIRecCreate, 0xdead000, f.delegated(t)); r.Status != smc.StatusErrorRealm {
		t.Fatalf("bogus rd: %v", r.Status)
	}
	if r := f.call(smc.RMIRecEnter, 0xdead000, 1); r.Status != smc.StatusErrorRec {
		t.Fatalf("bogus rec: %v", r.Status)
	}
	// Duplicate RD reuse is refused.
	if r := f.call(smc.RMIRealmCreate, rd, f.delegated(t), 1, 40, 0); r.Status == smc.StatusSuccess {
		t.Fatal("rd handle reuse accepted")
	}
	// Unknown FID.
	if r := f.call(smc.FID(0xC4000FFF)); r.Status != smc.StatusErrorUnknown {
		t.Fatalf("unknown fid: %v", r.Status)
	}
	// Undelegated granules fail cleanly.
	if r := f.call(smc.RMIRecCreate, rd, 0x7000_0000); r.Status == smc.StatusSuccess {
		t.Fatal("undelegated REC granule accepted")
	}
}

func TestABICoreGapEnforcement(t *testing.T) {
	f := newABIFixture(t, Config{CoreGapped: true})
	rd, recs := f.buildRealm(t, 2)
	_ = rd

	// Entering on a host core fails with the core-gap status.
	if r := f.call(smc.RMIRecEnter, recs[0], 3); r.Status != smc.StatusErrorCoreGap {
		t.Fatalf("enter on non-dedicated core: %v", r.Status)
	}
	if r := f.call(smc.RMICoreDedicate, 3); r.Status != smc.StatusSuccess {
		t.Fatal("dedicate")
	}
	if r := f.call(smc.RMIRecEnter, recs[0], 3); r.Status != smc.StatusSuccess {
		t.Fatalf("enter on dedicated core: %v", r.Status)
	}
	// Co-scheduling and migration refused at the ABI.
	if r := f.call(smc.RMIRecEnter, recs[1], 3); r.Status != smc.StatusErrorCoreGap {
		t.Fatalf("co-schedule: %v", r.Status)
	}
	if r := f.call(smc.RMICoreDedicate, 4); r.Status != smc.StatusSuccess {
		t.Fatal("dedicate 4")
	}
	if r := f.call(smc.RMIRecEnter, recs[0], 4); r.Status != smc.StatusErrorCoreGap {
		t.Fatalf("migrate: %v", r.Status)
	}
	// Reclaim of a bound core refused; invalid core ids rejected.
	if r := f.call(smc.RMICoreReclaim, 3); r.Status != smc.StatusErrorCoreGap {
		t.Fatalf("reclaim bound core: %v", r.Status)
	}
	if r := f.call(smc.RMICoreDedicate, 999); r.Status != smc.StatusErrorInput {
		t.Fatalf("bogus core id: %v", r.Status)
	}
	if r := f.call(smc.RMIRecEnter, recs[0], 999); r.Status != smc.StatusErrorInput {
		t.Fatalf("bogus enter core id: %v", r.Status)
	}
}

func TestABIGranuleRoundTrip(t *testing.T) {
	f := newABIFixture(t, Config{})
	pa := f.delegated(t)
	if r := f.call(smc.RMIGranuleDelegate, pa); r.Status != smc.StatusErrorInUse {
		t.Fatalf("double delegate: %v", r.Status)
	}
	if r := f.call(smc.RMIGranuleUndelegate, pa); r.Status != smc.StatusSuccess {
		t.Fatalf("undelegate: %v", r.Status)
	}
	if r := f.call(smc.RMIGranuleDelegate, pa+1); r.Status != smc.StatusErrorInput {
		t.Fatalf("unaligned: %v", r.Status)
	}
}

// TestABIFuzzNoPanicNoCorruption throws random calls at the dispatcher:
// nothing a hostile host sends may panic the monitor or unbalance the
// granule accounting.
func TestABIFuzzNoPanicNoCorruption(t *testing.T) {
	fids := []smc.FID{
		smc.RMIVersion, smc.RMIFeatures, smc.RMIGranuleDelegate,
		smc.RMIGranuleUndelegate, smc.RMIDataCreate, smc.RMIDataDestroy,
		smc.RMIRealmActivate, smc.RMIRealmCreate, smc.RMIRealmDestroy,
		smc.RMIRecCreate, smc.RMIRecDestroy, smc.RMIRecEnter,
		smc.RMIRttCreate, smc.RMIRttDestroy, smc.RMIRttMapUnprotected,
		smc.RMICoreDedicate, smc.RMICoreReclaim, smc.FID(0xdeadbeef),
	}
	f := newABIFixture(t, Config{CoreGapped: true})
	gpt := f.mach.GPT()
	total := gpt.Granules()
	src := sim.NewSource(77)

	prop := func(raw []uint16) bool {
		for _, r := range raw {
			c := smc.Call{FID: fids[int(r)%len(fids)]}
			for i := range c.Args {
				// Mix plausible granule-aligned addresses with garbage.
				if src.Intn(2) == 0 {
					c.Args[i] = uint64(src.Intn(64)) * granule.Size
				} else {
					c.Args[i] = src.Uint64()
				}
			}
			f.d.Handle(c) // must not panic
		}
		var sum uint64
		for s := granule.Undelegated; s <= granule.Data; s++ {
			sum += gpt.CountIn(s)
		}
		return sum == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
