// Package rmm implements the security monitor (Arm CCA's realm management
// monitor; TDX module and CoVE TSM are equivalents — Table 1): realm and
// REC (vCPU context) lifecycle, RMI command validation, stage-2 and
// granule bookkeeping, attestation, and the paper's core-gapping
// extensions (§4.2):
//
//   - a binding of CVM vCPUs to physical cores, enforced on every entry;
//   - dedicated-core accounting: cores the host has hotplugged out and
//     handed to the monitor, which never return to the host while their
//     CVM lives;
//   - delegated interrupt management (virtual timer and virtual IPIs
//     emulated in the monitor, §4.4).
//
// The monitor is control plane: guest execution itself is driven by the
// core-gapping orchestrator (package core), which consults the monitor
// for every validation the real RMM would perform.
package rmm

import (
	"errors"
	"fmt"

	"coregap/internal/attest"
	"coregap/internal/granule"
	"coregap/internal/hw"
	"coregap/internal/trace"
	"coregap/internal/uarch"
)

// Version is the modelled RMM version: the reference implementation the
// prototype modifies, plus the core-gapping patch level.
const Version = "rmm-0.3.0+coregap1"

// RMI error codes, mirroring the specification's failure classes.
var (
	ErrBadRealm         = errors.New("rmi: unknown or destroyed realm")
	ErrBadRec           = errors.New("rmi: unknown or destroyed rec")
	ErrRealmState       = errors.New("rmi: realm in wrong state")
	ErrBoundElsewhere   = errors.New("rmi: vcpu bound to a different core")
	ErrCoreInUse        = errors.New("rmi: core already bound to another vcpu")
	ErrCoreNotDedicated = errors.New("rmi: core not dedicated to realm world")
	ErrCoreBusy         = errors.New("rmi: dedicated core still has live bindings")
	ErrNotActive        = errors.New("rmi: realm not activated")
)

// RealmState is the realm lifecycle state.
type RealmState int

// Realm states.
const (
	RealmNew RealmState = iota
	RealmActive
	RealmDestroyed
)

func (s RealmState) String() string {
	switch s {
	case RealmNew:
		return "new"
	case RealmActive:
		return "active"
	default:
		return "destroyed"
	}
}

// RealmParams are host-provided construction parameters, validated and
// then measured into the RIM.
type RealmParams struct {
	Name    string
	VCPUs   int
	IPASize uint // bits of guest physical address space
	Flags   uint64
}

// Realm is one confidential VM.
type Realm struct {
	id     granule.RealmID
	domain uarch.DomainID
	params RealmParams
	state  RealmState
	rd     granule.PA
	rtt    *granule.Tree
	ledger attest.Ledger
	recs   []*REC
}

// ID reports the realm identifier.
func (r *Realm) ID() granule.RealmID { return r.id }

// Domain reports the realm's security domain.
func (r *Realm) Domain() uarch.DomainID { return r.domain }

// State reports the lifecycle state.
func (r *Realm) State() RealmState { return r.state }

// Params reports the construction parameters.
func (r *Realm) Params() RealmParams { return r.params }

// RTT reports the realm's stage-2 tree.
func (r *Realm) RTT() *granule.Tree { return r.rtt }

// Ledger reports the realm's measurement ledger.
func (r *Realm) Ledger() *attest.Ledger { return &r.ledger }

// RECs reports the realm's vCPU contexts.
func (r *Realm) RECs() []*REC { return r.recs }

// RECState is a vCPU context's lifecycle state.
type RECState int

// REC states.
const (
	RecReady RECState = iota
	RecRunning
	RecDestroyed
)

func (s RECState) String() string {
	switch s {
	case RecReady:
		return "ready"
	case RecRunning:
		return "running"
	default:
		return "destroyed"
	}
}

// REC is a realm execution context (one vCPU's saved state).
type REC struct {
	realm *Realm
	idx   int
	state RECState
	pa    granule.PA

	// bound is the physical core this vCPU is bound to under core
	// gapping (NoCore until first entry).
	bound hw.CoreID

	enters uint64
	exits  uint64
}

// Realm reports the owning realm.
func (c *REC) Realm() *Realm { return c.realm }

// Index reports the vCPU index within the realm.
func (c *REC) Index() int { return c.idx }

// State reports the REC state.
func (c *REC) State() RECState { return c.state }

// BoundCore reports the enforced core binding (NoCore when unbound).
func (c *REC) BoundCore() hw.CoreID { return c.bound }

// Enters and Exits report entry/exit counts.
func (c *REC) Enters() uint64 { return c.enters }

// Exits reports how many times this REC exited to the host.
func (c *REC) Exits() uint64 { return c.exits }

// Config selects the monitor's operating policy.
type Config struct {
	// CoreGapped enables vCPU-to-core binding enforcement and the
	// never-return-to-host rule on dedicated cores.
	CoreGapped bool
	// DelegateTimer emulates the guest virtual timer inside the monitor
	// (+150 LoC in the prototype) instead of trapping to the host.
	DelegateTimer bool
	// DelegateVIPI emulates guest IPIs inside the monitor (+70 LoC).
	DelegateVIPI bool
}

// Monitor is the security monitor instance.
type Monitor struct {
	mach *hw.Machine
	gpt  *granule.Table
	met  *trace.Set
	cfg  Config

	realms    map[granule.RealmID]*Realm
	nextRealm granule.RealmID
	nextGuest int

	// bindings: physical core -> REC currently bound to it.
	bindings map[hw.CoreID]*REC
	// dedicated: cores handed to the monitor by hotplug.
	dedicated map[hw.CoreID]bool

	signer       *attest.Signer
	platformMeas attest.Measurement
}

// New returns a monitor managing the machine's GPT.
func New(mach *hw.Machine, cfg Config, met *trace.Set) *Monitor {
	return &Monitor{
		mach:         mach,
		gpt:          mach.GPT(),
		met:          met,
		cfg:          cfg,
		realms:       make(map[granule.RealmID]*Realm),
		nextRealm:    1,
		bindings:     make(map[hw.CoreID]*REC),
		dedicated:    make(map[hw.CoreID]bool),
		signer:       attest.NewSigner([]byte("platform-root-key")),
		platformMeas: attest.MeasureBytes([]byte(Version)),
	}
}

// Config reports the monitor's policy.
func (m *Monitor) Config() Config { return m.cfg }

// Metrics reports the monitor's metric set.
func (m *Monitor) Metrics() *trace.Set { return m.met }

func (m *Monitor) count(name string) {
	if m.met != nil {
		m.met.Counter(name).Inc()
	}
}

// RealmCreate validates parameters, claims the RD granule, and builds the
// realm with an empty stage-2 tree rooted at rttRoot (both PAs must be in
// Delegated state).
func (m *Monitor) RealmCreate(params RealmParams, rd, rttRoot granule.PA) (*Realm, error) {
	if params.VCPUs <= 0 || params.VCPUs > m.mach.NumCores() {
		return nil, fmt.Errorf("rmi: invalid vcpu count %d", params.VCPUs)
	}
	id := m.nextRealm
	if err := m.gpt.Claim(rd, granule.RD, id); err != nil {
		return nil, err
	}
	if err := m.gpt.Claim(rttRoot, granule.RTT, id); err != nil {
		m.gpt.Release(rd, id)
		return nil, err
	}
	rtt, err := granule.NewTree(id, m.gpt, rttRoot)
	if err != nil {
		return nil, err
	}
	r := &Realm{
		id:     id,
		domain: uarch.Guest(m.nextGuest),
		params: params,
		rd:     rd,
		rtt:    rtt,
	}
	r.ledger.ExtendRIM([]byte(fmt.Sprintf("realm:%s vcpus:%d ipa:%d flags:%d",
		params.Name, params.VCPUs, params.IPASize, params.Flags)))
	m.nextRealm++
	m.nextGuest++
	m.realms[id] = r
	m.count("rmm.realm.create")
	return r, nil
}

// RecCreate adds a vCPU context backed by the Delegated granule at pa.
// Creation order is measured (the RIM covers vCPU configuration).
func (m *Monitor) RecCreate(r *Realm, pa granule.PA) (*REC, error) {
	if r.state != RealmNew {
		return nil, ErrRealmState
	}
	if len(r.recs) >= r.params.VCPUs {
		return nil, fmt.Errorf("rmi: realm already has %d recs", len(r.recs))
	}
	if err := m.gpt.Claim(pa, granule.REC, r.id); err != nil {
		return nil, err
	}
	rec := &REC{realm: r, idx: len(r.recs), pa: pa, bound: hw.NoCore}
	r.recs = append(r.recs, rec)
	r.ledger.ExtendRIM([]byte(fmt.Sprintf("rec:%d", rec.idx)))
	m.count("rmm.rec.create")
	return rec, nil
}

// DataCreate maps guest memory: claims the Delegated granule at pa as
// realm data at ipa and measures the (modelled) initial contents.
func (m *Monitor) DataCreate(r *Realm, ipa granule.IPA, pa granule.PA, contents []byte) error {
	if r.state == RealmDestroyed {
		return ErrBadRealm
	}
	if err := r.rtt.MapProtected(ipa, pa); err != nil {
		return err
	}
	if r.state == RealmNew && contents != nil {
		r.ledger.ExtendRIM(contents)
	}
	return nil
}

// Activate seals the realm's measurements and permits execution.
func (m *Monitor) Activate(r *Realm) error {
	if r.state != RealmNew {
		return ErrRealmState
	}
	r.ledger.Seal()
	r.state = RealmActive
	m.count("rmm.realm.activate")
	return nil
}

// Destroy tears the realm down: all RECs are destroyed, bindings
// released, and granules scrubbed back to Delegated.
func (m *Monitor) Destroy(r *Realm) error {
	if r.state == RealmDestroyed {
		return ErrBadRealm
	}
	for _, rec := range r.recs {
		if rec.state != RecDestroyed {
			m.RecDestroy(rec)
		}
	}
	m.gpt.Release(r.rd, r.id)
	r.state = RealmDestroyed
	m.count("rmm.realm.destroy")
	return nil
}

// RecDestroy retires a vCPU context and releases its core binding; the
// host may reclaim the core once no REC is bound to it (§4.2).
func (m *Monitor) RecDestroy(rec *REC) error {
	if rec.state == RecDestroyed {
		return ErrBadRec
	}
	if rec.bound != hw.NoCore {
		delete(m.bindings, rec.bound)
		rec.bound = hw.NoCore
	}
	m.gpt.Release(rec.pa, rec.realm.id)
	rec.state = RecDestroyed
	m.count("rmm.rec.destroy")
	return nil
}

// Token issues the realm's attestation token; the CoreGapped claim lets
// guests require a core-gapping monitor before trusting the platform.
func (m *Monitor) Token(r *Realm, challenge [32]byte) (*attest.Token, error) {
	if r.state != RealmActive {
		return nil, ErrNotActive
	}
	return m.signer.Issue(m.platformMeas, Version, m.cfg.CoreGapped, &r.ledger, challenge)
}

// Verifier returns the signer used to check tokens (stands in for the
// remote attestation service's trust anchor).
func (m *Monitor) Verifier() *attest.Signer { return m.signer }
