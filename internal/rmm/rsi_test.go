package rmm

import (
	"testing"

	"coregap/internal/granule"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/smc"
	"coregap/internal/trace"
)

func newActiveRealm(t *testing.T, cfg Config) (*Monitor, *Realm) {
	t.Helper()
	eng := sim.NewEngine(9)
	mach := hw.NewMachine(eng, hw.DefaultConfig(4))
	m := New(mach, cfg, trace.NewSet())
	alloc := func(pa uint64) uint64 {
		if err := mach.GPT().Delegate(granule.PA(pa)); err != nil {
			t.Fatal(err)
		}
		return pa
	}
	r, err := m.RealmCreate(RealmParams{Name: "g", VCPUs: 1, IPASize: 40},
		granule.PA(alloc(0)), granule.PA(alloc(4096)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Activate(r); err != nil {
		t.Fatal(err)
	}
	return m, r
}

func TestRSIVersionAndConfig(t *testing.T) {
	m, r := newActiveRealm(t, Config{CoreGapped: true})
	d := NewRSIDispatcher(m, r)
	if res := d.Handle(smc.Call{FID: smc.RSIVersion}); res.Vals[0] != abiVersion {
		t.Fatalf("version = %+v", res)
	}
	res := d.Handle(smc.Call{FID: smc.RSIRealmConfig})
	if res.Vals[0] != 40 {
		t.Fatalf("ipa bits = %d", res.Vals[0])
	}
	if res.Vals[1]&featureCoreGap == 0 {
		t.Fatal("core-gap feature bit missing from realm config")
	}
	if res.Vals[2] != 1 {
		t.Fatalf("vcpus = %d", res.Vals[2])
	}
}

func TestRSIMeasurementExtend(t *testing.T) {
	m, r := newActiveRealm(t, Config{})
	d := NewRSIDispatcher(m, r)
	before := r.Ledger().REM(1)
	res := d.Handle(smc.Call{FID: smc.RSIMeasurementExtend, Args: [6]uint64{1, 0xAA, 0xBB}})
	if res.Status != smc.StatusSuccess {
		t.Fatal(res.Status)
	}
	if r.Ledger().REM(1) == before {
		t.Fatal("REM not extended")
	}
	// Out-of-range REM index rejected.
	res = d.Handle(smc.Call{FID: smc.RSIMeasurementExtend, Args: [6]uint64{99, 0, 0}})
	if res.Status != smc.StatusErrorInput {
		t.Fatalf("bad REM index: %v", res.Status)
	}
}

func TestRSIAttestationStreaming(t *testing.T) {
	m, r := newActiveRealm(t, Config{CoreGapped: true})
	d := NewRSIDispatcher(m, r)

	res := d.Handle(smc.Call{FID: smc.RSIAttestTokenInit, Args: [6]uint64{0x1122334455667788}})
	if res.Status != smc.StatusSuccess || res.Vals[0] == 0 {
		t.Fatalf("token init: %+v", res)
	}
	total := int(res.Vals[0])
	streamed := 0
	for i := 0; i < 100; i++ {
		res = d.Handle(smc.Call{FID: smc.RSIAttestTokenCont})
		if res.Status != smc.StatusSuccess {
			t.Fatal(res.Status)
		}
		n := int(res.Vals[0])
		if n == 0 {
			break
		}
		streamed += n
	}
	if streamed != total {
		t.Fatalf("streamed %d of %d token bytes", streamed, total)
	}
	// Continue without init fails.
	d2 := NewRSIDispatcher(m, r)
	if res := d2.Handle(smc.Call{FID: smc.RSIAttestTokenCont}); res.Status != smc.StatusErrorInput {
		t.Fatalf("continue without init: %v", res.Status)
	}
}

func TestRSIUnknownAndBenign(t *testing.T) {
	m, r := newActiveRealm(t, Config{})
	d := NewRSIDispatcher(m, r)
	if res := d.Handle(smc.Call{FID: smc.FID(0x12)}); res.Status != smc.StatusErrorUnknown {
		t.Fatal("unknown RSI accepted")
	}
	if res := d.Handle(smc.Call{FID: smc.RSIIPAStateSet}); res.Status != smc.StatusSuccess {
		t.Fatal("ipa state set")
	}
	if res := d.Handle(smc.Call{FID: smc.RSIHostCall}); res.Status != smc.StatusSuccess {
		t.Fatal("host call")
	}
}
