package rmm

import (
	"errors"

	"coregap/internal/granule"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/smc"
)

// cSMCCall counts RMI calls crossing the host→monitor SMC boundary —
// in the core-gapped design these are exactly the calls proxied over
// the cross-core transport.
var cSMCCall = sim.DefineCounter("rmm.smc_calls")

// Dispatcher is the monitor's host-facing RMI entry point: it decodes SMC
// calls, resolves the opaque handles the ABI uses (a realm is named by
// its RD granule's PA, a vCPU by its REC granule's PA, exactly as in the
// RMM specification), validates, and invokes the monitor. The host never
// holds Go pointers into the monitor — everything crosses the boundary as
// register values, which is what makes the hostile-host tests meaningful.
type Dispatcher struct {
	m      *Monitor
	realms map[granule.PA]*Realm
	recs   map[granule.PA]*REC
}

// NewDispatcher wraps a monitor with the RMI ABI.
func NewDispatcher(m *Monitor) *Dispatcher {
	return &Dispatcher{
		m:      m,
		realms: make(map[granule.PA]*Realm),
		recs:   make(map[granule.PA]*REC),
	}
}

// ABI version reported by RMI_VERSION: major 1, minor 0, plus the
// core-gapping feature bit in the features register.
const (
	abiVersion      = 1 << 16 // v1.0
	featureCoreGap  = 1 << 0
	featureDelegTim = 1 << 1
	featureDelegIPI = 1 << 2
)

// Realm resolves an RD handle (nil when unknown).
func (d *Dispatcher) Realm(rd granule.PA) *Realm { return d.realms[rd] }

// Rec resolves a REC handle (nil when unknown).
func (d *Dispatcher) Rec(pa granule.PA) *REC { return d.recs[pa] }

func errStatus(err error) smc.Status {
	switch {
	case err == nil:
		return smc.StatusSuccess
	case errors.Is(err, ErrBadRealm), errors.Is(err, ErrRealmState), errors.Is(err, ErrNotActive):
		return smc.StatusErrorRealm
	case errors.Is(err, ErrBadRec):
		return smc.StatusErrorRec
	case errors.Is(err, ErrBoundElsewhere), errors.Is(err, ErrCoreInUse),
		errors.Is(err, ErrCoreNotDedicated), errors.Is(err, ErrCoreBusy):
		return smc.StatusErrorCoreGap
	case errors.Is(err, granule.ErrBadState), errors.Is(err, granule.ErrDoubleDelegate),
		errors.Is(err, granule.ErrNotScrubbed), errors.Is(err, granule.ErrWrongOwner):
		return smc.StatusErrorInUse
	case errors.Is(err, granule.ErrUnaligned), errors.Is(err, granule.ErrOutOfRange),
		errors.Is(err, granule.ErrLevel):
		return smc.StatusErrorInput
	case errors.Is(err, granule.ErrNoTable), errors.Is(err, granule.ErrTableExists),
		errors.Is(err, granule.ErrEntryState), errors.Is(err, granule.ErrNotEmpty):
		return smc.StatusErrorRtt
	default:
		return smc.StatusErrorInput
	}
}

// Handle implements smc.Handler for the RMI.
func (d *Dispatcher) Handle(c smc.Call) smc.Result {
	eng := d.m.mach.Engine()
	eng.Count(cSMCCall)
	// FID.String is a map of static names: no per-call formatting for
	// any known RMI function.
	eng.Trace().Emit(sim.TCProxy, c.FID.String(), sim.LaneGlobal, int64(uint32(c.FID)))
	switch c.FID {
	case smc.RMIVersion:
		return smc.Ok1(abiVersion)

	case smc.RMIFeatures:
		var f uint64
		if d.m.cfg.CoreGapped {
			f |= featureCoreGap
		}
		if d.m.cfg.DelegateTimer {
			f |= featureDelegTim
		}
		if d.m.cfg.DelegateVIPI {
			f |= featureDelegIPI
		}
		return smc.Ok1(f)

	case smc.RMIGranuleDelegate:
		return statusOnly(d.m.gpt.Delegate(granule.PA(c.Args[0])))

	case smc.RMIGranuleUndelegate:
		return statusOnly(d.m.gpt.Undelegate(granule.PA(c.Args[0])))

	case smc.RMIRealmCreate:
		// args: rd PA, rtt-root PA, vcpus, ipa bits, flags
		params := RealmParams{
			VCPUs:   int(c.Args[2]),
			IPASize: uint(c.Args[3]),
			Flags:   c.Args[4],
		}
		rd := granule.PA(c.Args[0])
		if _, dup := d.realms[rd]; dup {
			return smc.Err(smc.StatusErrorInUse)
		}
		r, err := d.m.RealmCreate(params, rd, granule.PA(c.Args[1]))
		if err != nil {
			return smc.Err(errStatus(err))
		}
		d.realms[rd] = r
		return smc.Ok1(uint64(r.ID()))

	case smc.RMIRealmActivate:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(d.m.Activate(r))

	case smc.RMIRealmDestroy:
		rd := granule.PA(c.Args[0])
		r := d.realms[rd]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		if err := d.m.Destroy(r); err != nil {
			return smc.Err(errStatus(err))
		}
		delete(d.realms, rd)
		for pa, rec := range d.recs {
			if rec.realm == r {
				delete(d.recs, pa)
			}
		}
		return smc.Ok()

	case smc.RMIRecCreate:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		recPA := granule.PA(c.Args[1])
		rec, err := d.m.RecCreate(r, recPA)
		if err != nil {
			return smc.Err(errStatus(err))
		}
		d.recs[recPA] = rec
		return smc.Ok1(uint64(rec.Index()))

	case smc.RMIRecDestroy:
		recPA := granule.PA(c.Args[0])
		rec := d.recs[recPA]
		if rec == nil {
			return smc.Err(smc.StatusErrorRec)
		}
		if err := d.m.RecDestroy(rec); err != nil {
			return smc.Err(errStatus(err))
		}
		delete(d.recs, recPA)
		return smc.Ok()

	case smc.RMIRecEnter:
		// args: rec PA, core id. The actual guest execution is driven by
		// the orchestrator; at the ABI level RecEnter is the binding
		// check plus the entry accounting.
		rec := d.recs[granule.PA(c.Args[0])]
		if rec == nil {
			return smc.Err(smc.StatusErrorRec)
		}
		core := hw.CoreID(c.Args[1])
		if core < 0 || int(core) >= d.m.mach.NumCores() {
			return smc.Err(smc.StatusErrorInput)
		}
		if err := d.m.CheckEnter(rec, core); err != nil {
			return smc.Err(errStatus(err))
		}
		d.m.NoteEnter(rec)
		return smc.Ok()

	case smc.RMIRttCreate:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(r.rtt.CreateTable(granule.IPA(c.Args[1]), int(c.Args[2]), granule.PA(c.Args[3])))

	case smc.RMIRttDestroy:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(r.rtt.DestroyTable(granule.IPA(c.Args[1]), int(c.Args[2])))

	case smc.RMIDataCreate:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(d.m.DataCreate(r, granule.IPA(c.Args[1]), granule.PA(c.Args[2]), nil))

	case smc.RMIDataDestroy:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(r.rtt.Unmap(granule.IPA(c.Args[1])))

	case smc.RMIRttMapUnprotected:
		r := d.realms[granule.PA(c.Args[0])]
		if r == nil {
			return smc.Err(smc.StatusErrorRealm)
		}
		return statusOnly(r.rtt.MapShared(granule.IPA(c.Args[1]), granule.PA(c.Args[2])))

	case smc.RMICoreDedicate:
		core := hw.CoreID(c.Args[0])
		if core < 0 || int(core) >= d.m.mach.NumCores() {
			return smc.Err(smc.StatusErrorInput)
		}
		d.m.DedicateCore(core)
		return smc.Ok()

	case smc.RMICoreReclaim:
		core := hw.CoreID(c.Args[0])
		if core < 0 || int(core) >= d.m.mach.NumCores() {
			return smc.Err(smc.StatusErrorInput)
		}
		return statusOnly(d.m.ReclaimCore(core))

	default:
		return smc.Err(smc.StatusErrorUnknown)
	}
}

func statusOnly(err error) smc.Result {
	if err != nil {
		return smc.Err(errStatus(err))
	}
	return smc.Ok()
}
