package rmm

import (
	"coregap/internal/attest"
	"coregap/internal/smc"
)

// RSIDispatcher is the monitor's guest-facing entry point: realm services
// interface calls made from inside a CVM. Unlike RMI, the caller's
// identity is implicit — the realm whose vCPU executed the SMC — so the
// dispatcher is constructed per realm.
type RSIDispatcher struct {
	m *Monitor
	r *Realm

	// token buffer for the init/continue attestation protocol: the real
	// ABI streams the token out one granule at a time.
	tokenBuf []byte
	tokenOff int
}

// NewRSIDispatcher returns the RSI entry for one realm's guests.
func NewRSIDispatcher(m *Monitor, r *Realm) *RSIDispatcher {
	return &RSIDispatcher{m: m, r: r}
}

// rsiChunk is the per-RSI_ATTEST_TOKEN_CONTINUE payload size.
const rsiChunk = 64

// Handle implements smc.Handler for the RSI.
func (d *RSIDispatcher) Handle(c smc.Call) smc.Result {
	switch c.FID {
	case smc.RSIVersion:
		return smc.Ok1(abiVersion)

	case smc.RSIRealmConfig:
		// Returns the realm's IPA width and, in this implementation, the
		// core-gapping feature bits so a guest can make an early (pre-
		// attestation) policy decision.
		var f uint64
		if d.m.cfg.CoreGapped {
			f |= featureCoreGap
		}
		return smc.Result{Status: smc.StatusSuccess,
			Vals: [3]uint64{uint64(d.r.params.IPASize), f, uint64(d.r.params.VCPUs)}}

	case smc.RSIMeasurementExtend:
		// args: REM index, measurement data (modelled as a register pair).
		idx := int(c.Args[0])
		var data [16]byte
		for i := 0; i < 8; i++ {
			data[i] = byte(c.Args[1] >> (8 * i))
			data[8+i] = byte(c.Args[2] >> (8 * i))
		}
		if err := d.r.ledger.ExtendREM(idx, data[:]); err != nil {
			return smc.Err(smc.StatusErrorInput)
		}
		return smc.Ok()

	case smc.RSIAttestTokenInit:
		// args: challenge (first 8 bytes in a register; the rest of the
		// 32-byte challenge lives in guest memory in the real ABI).
		var challenge [32]byte
		for i := 0; i < 8; i++ {
			challenge[i] = byte(c.Args[0] >> (8 * i))
		}
		tok, err := d.m.Token(d.r, challenge)
		if err != nil {
			return smc.Err(errStatus(err))
		}
		d.tokenBuf = encodeToken(tok)
		d.tokenOff = 0
		return smc.Ok1(uint64(len(d.tokenBuf)))

	case smc.RSIAttestTokenCont:
		if d.tokenBuf == nil {
			return smc.Err(smc.StatusErrorInput)
		}
		remaining := len(d.tokenBuf) - d.tokenOff
		if remaining <= 0 {
			d.tokenBuf = nil
			return smc.Ok1(0)
		}
		n := rsiChunk
		if n > remaining {
			n = remaining
		}
		d.tokenOff += n
		return smc.Ok1(uint64(n))

	case smc.RSIIPAStateSet:
		// The guest marks an IPA range shared/protected; the monitor
		// records the intent (stage-2 changes are host-initiated).
		return smc.Ok()

	case smc.RSIHostCall:
		// A paravirtual call the host must service; at the ABI level the
		// monitor forwards it as a REC exit. Accounted by the caller.
		return smc.Ok()

	default:
		return smc.Err(smc.StatusErrorUnknown)
	}
}

// TokenBytes reports the token stream collected so far (for tests).
func (d *RSIDispatcher) TokenBytes() []byte { return d.tokenBuf }

// encodeToken flattens a token for the streaming ABI.
func encodeToken(t *attest.Token) []byte {
	out := make([]byte, 0, 256)
	out = append(out, t.PlatformMeasurement[:]...)
	out = append(out, []byte(t.MonitorVersion)...)
	if t.CoreGapped {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, t.RIM[:]...)
	for i := range t.REMs {
		out = append(out, t.REMs[i][:]...)
	}
	out = append(out, t.Challenge[:]...)
	out = append(out, t.MAC[:]...)
	return out
}
