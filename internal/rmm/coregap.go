package rmm

import (
	"coregap/internal/hw"
	"coregap/internal/uarch"
)

// This file implements the monitor's core-gapping extensions (§4.2): the
// dedicated-core registry and the vCPU-to-core binding policy. The two
// essential properties from §3:
//
//	(a) all instructions of a CVM vCPU execute on the same host core;
//	(b) from first to last instruction, only guest-trusted code runs
//	    on that core.
//
// Property (a) is CheckEnter; property (b) follows because a dedicated
// core's interrupt handler is the monitor's and ReclaimCore refuses to
// return a core with live bindings.

// DedicateCore registers a core the host has hotplugged out and handed to
// realm world. Called from the host's modified hotplug path.
func (m *Monitor) DedicateCore(id hw.CoreID) {
	m.dedicated[id] = true
	m.count("rmm.core.dedicate")
}

// IsDedicated reports whether the monitor controls the core.
func (m *Monitor) IsDedicated(id hw.CoreID) bool { return m.dedicated[id] }

// DedicatedCount reports how many cores the monitor controls.
func (m *Monitor) DedicatedCount() int { return len(m.dedicated) }

// ReclaimCore returns a core to the host. It fails while any live REC is
// bound to the core — the host cannot repossess a CVM's core before
// destroying the CVM (§4.2).
func (m *Monitor) ReclaimCore(id hw.CoreID) error {
	if !m.dedicated[id] {
		return ErrCoreNotDedicated
	}
	if rec, ok := m.bindings[id]; ok && rec.state != RecDestroyed {
		return ErrCoreBusy
	}
	delete(m.dedicated, id)
	delete(m.bindings, id)
	m.count("rmm.core.reclaim")
	return nil
}

// CheckEnter validates a host request to run rec on core, binding on
// first entry. Under core gapping it enforces:
//
//   - the realm is active and the REC live;
//   - the core has been dedicated to realm world;
//   - the core is not bound to any other vCPU (of this or any realm);
//   - the REC is not bound to a different core.
//
// Without core gapping (baseline CCA) only the lifecycle checks apply:
// the host may schedule vCPUs wherever it likes, which is exactly the
// attack surface the paper closes.
func (m *Monitor) CheckEnter(rec *REC, core hw.CoreID) error {
	if rec.state == RecDestroyed {
		return ErrBadRec
	}
	if rec.realm.state != RealmActive {
		return ErrNotActive
	}
	if !m.cfg.CoreGapped {
		return nil
	}
	if !m.dedicated[core] {
		return ErrCoreNotDedicated
	}
	if bound, ok := m.bindings[core]; ok && bound != rec {
		return ErrCoreInUse
	}
	if rec.bound != hw.NoCore && rec.bound != core {
		return ErrBoundElsewhere
	}
	if rec.bound == hw.NoCore {
		rec.bound = core
		m.bindings[core] = rec
		m.count("rmm.core.bind")
	}
	return nil
}

// NoteEnter records a successful vCPU entry.
func (m *Monitor) NoteEnter(rec *REC) {
	rec.enters++
	rec.state = RecRunning
	m.count("rmm.rec.enter")
}

// NoteExit records a vCPU exit that reached the host.
func (m *Monitor) NoteExit(rec *REC) {
	rec.exits++
	if rec.state == RecRunning {
		rec.state = RecReady
	}
	m.count("rmm.rec.exit")
}

// BoundRec reports the REC bound to a core (nil when none).
func (m *Monitor) BoundRec(core hw.CoreID) *REC { return m.bindings[core] }

// RebindRec migrates a vCPU's core binding to another dedicated core —
// the coarse-timescale rebinding §3 defers to future work, implemented in
// the monitor so the host can request but never force it. The security
// property (b) of §3 is preserved: the old core's microarchitectural
// state is wiped by the monitor before the binding is released, so
// whatever runs there next (another CVM after reclaim, or the host)
// finds no residue.
func (m *Monitor) RebindRec(rec *REC, to hw.CoreID) error {
	if !m.cfg.CoreGapped {
		return ErrCoreNotDedicated
	}
	if rec.state == RecDestroyed {
		return ErrBadRec
	}
	if !m.dedicated[to] {
		return ErrCoreNotDedicated
	}
	if bound, ok := m.bindings[to]; ok && bound != rec {
		return ErrCoreInUse
	}
	old := rec.bound
	if old == to {
		return nil
	}
	if old != hw.NoCore {
		m.mach.Core(old).FlushAll(uarch.DefaultFlushCosts())
		delete(m.bindings, old)
	}
	rec.bound = to
	m.bindings[to] = rec
	m.count("rmm.core.rebind")
	return nil
}
