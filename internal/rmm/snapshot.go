package rmm

import (
	"coregap/internal/granule"
)

// Boot-snapshot support: a realm whose construction sequence (RealmCreate,
// RecCreate, DataCreate, Activate) is identical across trials can be
// captured once and transplanted into a later monitor instead of
// re-validating, re-hashing and re-walking the whole RMI sequence. The
// snapshot is a deep copy taken at capture time, and adoption deep-copies
// again, so the cached master never aliases live state.
//
// Adoption is deliberately silent: no metric counters fire and no granule
// transitions run. The boot-fork layer (internal/core) replays the
// recorded counter deltas and restores the granule-table image itself, so
// a forked boot is observationally identical to a replayed one.

// RealmSnapshot is a frozen copy of a realm's construction products.
type RealmSnapshot struct {
	master *Realm
	// marks are the monitor's id allocators right after this realm's
	// construction; adoption restores them so a later (non-forked)
	// RealmCreate continues the same id/domain sequence.
	nextRealm granule.RealmID
	nextGuest int
}

// cloneRealm deep-copies a realm, binding the copy's stage-2 tree to gpt.
func cloneRealm(r *Realm, gpt *granule.Table) *Realm {
	nr := &Realm{
		id:     r.id,
		domain: r.domain,
		params: r.params,
		state:  r.state,
		rd:     r.rd,
		ledger: r.ledger, // value copy: measurements only, no pointers
	}
	nr.rtt = r.rtt.Clone(gpt)
	nr.recs = make([]*REC, len(r.recs))
	for i, c := range r.recs {
		nr.recs[i] = &REC{
			realm:  nr,
			idx:    c.idx,
			state:  c.state,
			pa:     c.pa,
			bound:  c.bound,
			enters: c.enters,
			exits:  c.exits,
		}
	}
	return nr
}

// SnapshotRealm captures the realm's construction products for later
// adoption by a monitor replaying the same boot.
func (m *Monitor) SnapshotRealm(r *Realm) *RealmSnapshot {
	return &RealmSnapshot{
		master:    cloneRealm(r, nil),
		nextRealm: m.nextRealm,
		nextGuest: m.nextGuest,
	}
}

// AdoptRealm transplants a snapshot into the monitor: the realm appears
// exactly as if the captured construction sequence had just run, with the
// monitor's id allocators advanced to match. The caller is responsible
// for the granule-table state and for any counter accounting the skipped
// RMI calls would have produced.
func (m *Monitor) AdoptRealm(s *RealmSnapshot) *Realm {
	r := cloneRealm(s.master, m.gpt)
	m.realms[r.id] = r
	m.nextRealm = s.nextRealm
	m.nextGuest = s.nextGuest
	return r
}
