package rmm

import (
	"errors"
	"testing"

	"coregap/internal/granule"
	"coregap/internal/smc"
	"coregap/internal/uarch"
)

func TestAccessorsAndMetadata(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: true, DelegateTimer: true})
	if !f.m.Config().CoreGapped || f.m.Metrics() == nil {
		t.Fatal("monitor accessors")
	}
	r := f.newRealm(t, 2)
	if r.Params().VCPUs != 2 {
		t.Fatal("params accessor")
	}
	rec, _ := f.m.RecCreate(r, f.alloc(t))
	if len(r.RECs()) != 1 || r.RECs()[0] != rec || rec.Realm() != r {
		t.Fatal("rec accessors")
	}
	if f.m.DedicatedCount() != 0 {
		t.Fatal("dedicated count")
	}
	f.m.DedicateCore(3)
	if f.m.DedicatedCount() != 1 {
		t.Fatal("dedicated count after dedicate")
	}
}

func TestRebindRecValidation(t *testing.T) {
	f := newFixture(t, Config{CoreGapped: true})
	r := f.newRealm(t, 2)
	rec0, _ := f.m.RecCreate(r, f.alloc(t))
	rec1, _ := f.m.RecCreate(r, f.alloc(t))
	f.m.Activate(r)
	f.m.DedicateCore(2)
	f.m.DedicateCore(3)
	if err := f.m.CheckEnter(rec0, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.m.CheckEnter(rec1, 3); err != nil {
		t.Fatal(err)
	}

	// Rebind to a core bound to another REC: refused.
	if err := f.m.RebindRec(rec0, 3); !errors.Is(err, ErrCoreInUse) {
		t.Fatalf("rebind to bound core: %v", err)
	}
	// Rebind to a non-dedicated core: refused.
	if err := f.m.RebindRec(rec0, 5); !errors.Is(err, ErrCoreNotDedicated) {
		t.Fatalf("rebind to host core: %v", err)
	}
	// Valid rebind.
	f.m.DedicateCore(4)
	// Make the old core's state dirty first; the rebind must wipe it.
	f.mach.Core(2).RecordExecution(r.Domain(), 0.5, 0.5)
	if err := f.m.RebindRec(rec0, 4); err != nil {
		t.Fatal(err)
	}
	if rec0.BoundCore() != 4 || f.m.BoundRec(4) != rec0 || f.m.BoundRec(2) != nil {
		t.Fatal("binding table after rebind")
	}
	if res := f.mach.Core(2).Uarch.ResidueFor(uarch.DomainHost); len(res) != 0 {
		t.Fatalf("old core not wiped: %d structures dirty", len(res))
	}
	// No-op rebind is fine; destroyed REC refused; shared-mode refused.
	if err := f.m.RebindRec(rec0, 4); err != nil {
		t.Fatal(err)
	}
	f.m.RecDestroy(rec0)
	if err := f.m.RebindRec(rec0, 4); !errors.Is(err, ErrBadRec) {
		t.Fatalf("rebind destroyed rec: %v", err)
	}
	fs := newFixture(t, Config{})
	rs := fs.newRealm(t, 1)
	recS, _ := fs.m.RecCreate(rs, fs.alloc(t))
	if err := fs.m.RebindRec(recS, 1); !errors.Is(err, ErrCoreNotDedicated) {
		t.Fatalf("shared-mode rebind: %v", err)
	}
}

func TestDispatcherHandleAccessors(t *testing.T) {
	f := newABIFixture(t, Config{CoreGapped: true})
	rd, recs := f.buildRealm(t, 1)
	if f.d.Realm(granule.PA(rd)) == nil || f.d.Rec(granule.PA(recs[0])) == nil {
		t.Fatal("handle resolution")
	}
	if f.d.Realm(0xdead000) != nil || f.d.Rec(0xdead000) != nil {
		t.Fatal("bogus handles resolved")
	}
}

func TestRSITokenBytesAccessor(t *testing.T) {
	m, r := newActiveRealm(t, Config{CoreGapped: true})
	d := NewRSIDispatcher(m, r)
	if d.TokenBytes() != nil {
		t.Fatal("token before init")
	}
	d.Handle(smc.Call{FID: smc.RSIAttestTokenInit})
	if len(d.TokenBytes()) == 0 {
		t.Fatal("token empty after init")
	}
}

func TestDataCreateOnDestroyedRealm(t *testing.T) {
	f := newFixture(t, Config{})
	r := f.newRealm(t, 1)
	f.m.Activate(r)
	f.m.Destroy(r)
	if err := f.m.DataCreate(r, 0, f.alloc(t), nil); !errors.Is(err, ErrBadRealm) {
		t.Fatalf("data create on destroyed realm: %v", err)
	}
}
