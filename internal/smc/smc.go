// Package smc models the secure monitor call ABI through which the host
// reaches the security monitor (SMCCC [7] in the paper) — the realm
// management interface (RMI) — and the realm services interface (RSI)
// through which guests call it. Function identifiers and status codes
// follow the RMM specification's conventions; the core-gapping prototype
// explicitly does NOT change this ABI (§4.1: "We did not change the APIs
// that the RMM exposes to either host or guests"), it only changes the
// transport (same-core SMC vs cross-core RPC), which is why unmodified
// guests and largely unmodified hosts keep working.
package smc

import "fmt"

// FID is an SMC function identifier (fast call, 64-bit convention,
// standard secure service range for RMI; the two core-gapping additions
// sit in the vendor-specific range).
type FID uint32

// RMI function IDs (host → monitor).
const (
	RMIVersion           FID = 0xC4000150
	RMIGranuleDelegate   FID = 0xC4000151
	RMIGranuleUndelegate FID = 0xC4000152
	RMIDataCreate        FID = 0xC4000153
	RMIDataCreateUnknown FID = 0xC4000154
	RMIDataDestroy       FID = 0xC4000155
	RMIRealmActivate     FID = 0xC4000157
	RMIRealmCreate       FID = 0xC4000158
	RMIRealmDestroy      FID = 0xC4000159
	RMIRecCreate         FID = 0xC400015A
	RMIRecDestroy        FID = 0xC400015B
	RMIRecEnter          FID = 0xC400015C
	RMIRttCreate         FID = 0xC400015D
	RMIRttDestroy        FID = 0xC400015E
	RMIRttMapUnprotected FID = 0xC400015F
	RMIFeatures          FID = 0xC4000165

	// Core-gapping extensions (vendor range): the host's hotplug path
	// hands a core to the monitor; the planner reclaims it after the
	// CVM is destroyed (§4.2).
	RMICoreDedicate FID = 0xC4000170
	RMICoreReclaim  FID = 0xC4000171
)

// RSI function IDs (guest → monitor).
const (
	RSIVersion           FID = 0xC4000190
	RSIRealmConfig       FID = 0xC4000196
	RSIMeasurementExtend FID = 0xC4000193
	RSIAttestTokenInit   FID = 0xC4000194
	RSIAttestTokenCont   FID = 0xC4000195
	RSIIPAStateSet       FID = 0xC4000197
	RSIHostCall          FID = 0xC4000199
)

func (f FID) String() string {
	if name, ok := fidNames[f]; ok {
		return name
	}
	return fmt.Sprintf("FID(%#x)", uint32(f))
}

var fidNames = map[FID]string{
	RMIVersion: "RMI_VERSION", RMIGranuleDelegate: "RMI_GRANULE_DELEGATE",
	RMIGranuleUndelegate: "RMI_GRANULE_UNDELEGATE", RMIDataCreate: "RMI_DATA_CREATE",
	RMIDataCreateUnknown: "RMI_DATA_CREATE_UNKNOWN", RMIDataDestroy: "RMI_DATA_DESTROY",
	RMIRealmActivate: "RMI_REALM_ACTIVATE", RMIRealmCreate: "RMI_REALM_CREATE",
	RMIRealmDestroy: "RMI_REALM_DESTROY", RMIRecCreate: "RMI_REC_CREATE",
	RMIRecDestroy: "RMI_REC_DESTROY", RMIRecEnter: "RMI_REC_ENTER",
	RMIRttCreate: "RMI_RTT_CREATE", RMIRttDestroy: "RMI_RTT_DESTROY",
	RMIRttMapUnprotected: "RMI_RTT_MAP_UNPROTECTED", RMIFeatures: "RMI_FEATURES",
	RMICoreDedicate: "RMI_COREGAP_DEDICATE", RMICoreReclaim: "RMI_COREGAP_RECLAIM",
	RSIVersion: "RSI_VERSION", RSIRealmConfig: "RSI_REALM_CONFIG",
	RSIMeasurementExtend: "RSI_MEASUREMENT_EXTEND", RSIAttestTokenInit: "RSI_ATTEST_TOKEN_INIT",
	RSIAttestTokenCont: "RSI_ATTEST_TOKEN_CONTINUE", RSIIPAStateSet: "RSI_IPA_STATE_SET",
	RSIHostCall: "RSI_HOST_CALL",
}

// Status is an RMI/RSI return code.
type Status uint64

// Status codes, mirroring the specification's error classes.
const (
	StatusSuccess Status = iota
	StatusErrorInput
	StatusErrorRealm
	StatusErrorRec
	StatusErrorRtt
	StatusErrorInUse
	StatusErrorCoreGap // core-gapping policy violation (binding/dedication)
	StatusErrorUnknown
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "RMI_SUCCESS"
	case StatusErrorInput:
		return "RMI_ERROR_INPUT"
	case StatusErrorRealm:
		return "RMI_ERROR_REALM"
	case StatusErrorRec:
		return "RMI_ERROR_REC"
	case StatusErrorRtt:
		return "RMI_ERROR_RTT"
	case StatusErrorInUse:
		return "RMI_ERROR_IN_USE"
	case StatusErrorCoreGap:
		return "RMI_ERROR_COREGAP"
	default:
		return "RMI_ERROR_UNKNOWN"
	}
}

// Call is one SMC invocation: a function ID plus up to six register
// arguments, as in the SMC64 calling convention.
type Call struct {
	FID  FID
	Args [6]uint64
}

// Result is the SMC return: a status plus up to three result registers.
type Result struct {
	Status Status
	Vals   [3]uint64
}

// Ok is the bare success result.
func Ok() Result { return Result{Status: StatusSuccess} }

// Ok1 is success with one result register.
func Ok1(v uint64) Result { return Result{Status: StatusSuccess, Vals: [3]uint64{v}} }

// Err is a bare error result.
func Err(s Status) Result { return Result{Status: s} }

// Handler services SMC calls (the monitor's host- or guest-facing entry).
type Handler interface {
	Handle(c Call) Result
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(Call) Result

// Handle implements Handler.
func (f HandlerFunc) Handle(c Call) Result { return f(c) }
