package smc

import "testing"

func TestFIDNames(t *testing.T) {
	cases := map[FID]string{
		RMIVersion:         "RMI_VERSION",
		RMIRecEnter:        "RMI_REC_ENTER",
		RMICoreDedicate:    "RMI_COREGAP_DEDICATE",
		RSIAttestTokenInit: "RSI_ATTEST_TOKEN_INIT",
	}
	for fid, want := range cases {
		if fid.String() != want {
			t.Errorf("%#x = %q, want %q", uint32(fid), fid.String(), want)
		}
	}
	if FID(0x1234).String() != "FID(0x1234)" {
		t.Error("unknown FID formatting")
	}
}

func TestFIDRanges(t *testing.T) {
	// RMI FIDs live in the standard secure service range; the
	// core-gapping extensions in the vendor slice above it.
	for _, fid := range []FID{RMIVersion, RMIRecEnter, RMIDataCreate, RMIRttCreate} {
		if fid < 0xC4000150 || fid > 0xC400016F {
			t.Errorf("%v outside RMI range", fid)
		}
	}
	if RMICoreDedicate < 0xC4000170 || RMICoreReclaim < 0xC4000170 {
		t.Error("core-gap FIDs must not collide with the spec range")
	}
	for _, fid := range []FID{RSIVersion, RSIHostCall, RSIAttestTokenInit} {
		if fid < 0xC4000190 {
			t.Errorf("%v outside RSI range", fid)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		StatusSuccess:      "RMI_SUCCESS",
		StatusErrorInput:   "RMI_ERROR_INPUT",
		StatusErrorRealm:   "RMI_ERROR_REALM",
		StatusErrorRec:     "RMI_ERROR_REC",
		StatusErrorRtt:     "RMI_ERROR_RTT",
		StatusErrorInUse:   "RMI_ERROR_IN_USE",
		StatusErrorCoreGap: "RMI_ERROR_COREGAP",
		StatusErrorUnknown: "RMI_ERROR_UNKNOWN",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}

func TestResultHelpers(t *testing.T) {
	if Ok().Status != StatusSuccess {
		t.Error("Ok")
	}
	if r := Ok1(42); r.Status != StatusSuccess || r.Vals[0] != 42 {
		t.Error("Ok1")
	}
	if Err(StatusErrorRec).Status != StatusErrorRec {
		t.Error("Err")
	}
}

func TestHandlerFunc(t *testing.T) {
	h := HandlerFunc(func(c Call) Result {
		if c.FID == RMIVersion {
			return Ok1(99)
		}
		return Err(StatusErrorUnknown)
	})
	if r := h.Handle(Call{FID: RMIVersion}); r.Vals[0] != 99 {
		t.Error("handler dispatch")
	}
	if r := h.Handle(Call{FID: RMIRecEnter}); r.Status != StatusErrorUnknown {
		t.Error("handler default")
	}
}
