package host

import (
	"fmt"

	"coregap/internal/hw"
	"coregap/internal/sim"
)

// RegisterIRQ installs a kernel-level handler for an interrupt. The
// handler runs in IRQ context on the receiving core (stealing CPU from
// whatever thread is running there), like a Linux hardirq handler.
func (k *Kernel) RegisterIRQ(irq hw.IRQ, fn func(core hw.CoreID)) {
	k.irqHandlers[irq] = fn
}

// handleIRQ is the per-core interrupt entry point.
func (k *Kernel) handleIRQ(core hw.CoreID, from hw.CoreID, irq hw.IRQ) {
	cs, ok := k.cores[core]
	if !ok || cs.offline {
		// Interrupt raced with hotplug: hardware re-routes in practice;
		// we deliver to the lowest online core.
		for _, c := range k.mach.Cores() {
			if s, ok := k.cores[c.ID()]; ok && !s.offline {
				k.handleIRQ(c.ID(), from, irq)
				return
			}
		}
		return
	}
	if k.met != nil {
		k.met.Counter("host.irqs").Inc()
	}
	fn := k.irqHandlers[irq]
	if fn == nil {
		return
	}
	k.StealCPU(core, k.irqCost, func() { fn(core) })
}

// StealCPU runs fn after cost of IRQ-context work on the given core,
// preempting (and then resuming) the current thread. This models hardirq
// processing: it charges the time to the core but not to any thread.
func (k *Kernel) StealCPU(core hw.CoreID, cost sim.Duration, fn func()) {
	cs, ok := k.cores[core]
	if !ok {
		panic(fmt.Sprintf("host: StealCPU on unmanaged core %d", core))
	}
	exec := k.mach.Core(core).Exec
	k.eng.Count(cIRQSteals)
	k.eng.Trace().Span(sim.TCIRQ, "host.irq_steal", int32(core), cost, 0)

	if cs.stealing {
		// Nested IRQ: serialize after the current steal by deferring a
		// tiny amount; the handler chain remains deterministic.
		k.eng.After(cost, "irq:nested", func() {
			if fn != nil {
				fn()
			}
		})
		return
	}

	var resume func()
	if cs.cur != nil {
		t := cs.cur
		t.rem = exec.Preempt()
		t.cpuTime += k.eng.Now().Sub(t.sliceStart)
		cs.stealing = true
		resume = func() {
			cs.stealing = false
			// Resume the interrupted thread directly: it never left
			// cs.cur, so just restart its executor slice.
			if cs.cur == t && t.state == Running && t.cur != nil {
				k.startCurrent(cs)
			} else {
				cs.cur = nil
				k.dispatch(cs)
			}
		}
	} else {
		cs.stealing = true
		resume = func() {
			cs.stealing = false
			k.dispatch(cs)
		}
	}

	k.eng.After(cost, fmt.Sprintf("irq@%d", core), func() {
		if fn != nil {
			fn()
		}
		resume()
	})
}
