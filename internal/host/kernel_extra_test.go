package host

import (
	"testing"

	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func TestKernelAccessors(t *testing.T) {
	eng, m, k := newKernel(t, 2)
	if k.Engine() != eng || k.Machine() != m || k.Distributor() == nil || k.Metrics() == nil {
		t.Fatal("accessors")
	}
	th := k.NewThread("acc", ClassFIFO, 1)
	if th.Name() != "acc" || th.Class() != ClassFIFO || th.Pin() != 1 || th.QueueLen() != 0 {
		t.Fatal("thread accessors")
	}
	th.SetDomain(uarch.Guest(0), 0.5)
	k.Submit(th, "j", 100, nil) // dispatched immediately (becomes current)
	k.Submit(th, "j2", 100, nil)
	if th.QueueLen() != 1 {
		t.Fatalf("queue len = %d after second submit", th.QueueLen())
	}
	eng.Run()
	// Guest-domain thread execution polluted the core with its domain.
	if m.Core(1).Uarch.Warmth(uarch.Guest(0)) == 0 {
		t.Fatal("SetDomain not honoured by dispatch")
	}
}

func TestIsOffline(t *testing.T) {
	_, _, k := newKernel(t, 2)
	if k.IsOffline(0) || k.IsOffline(99) {
		t.Fatal("fresh cores reported offline")
	}
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	if !k.IsOffline(1) {
		t.Fatal("offlined core not reported")
	}
}

func TestKillRunnableAndBlocked(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	// Two queued threads on one core: the second is Runnable when killed.
	a := k.NewThread("a", ClassNormal, 0)
	b := k.NewThread("b", ClassNormal, 0)
	ranB := false
	k.Submit(a, "long", sim.Millisecond, nil)
	k.Submit(b, "j", 100, func() { ranB = true })
	eng.RunFor(10) // a running, b queued
	k.Kill(b)      // kill Runnable
	eng.Run()
	if ranB {
		t.Fatal("killed runnable thread ran")
	}
	// Kill a blocked (never-started) thread.
	c := k.NewThread("c", ClassNormal, 0)
	k.Kill(c)
	if c.State() != Dead {
		t.Fatal("blocked thread not dead")
	}
	// Kill FIFO thread queued behind another FIFO.
	f1 := k.NewThread("f1", ClassFIFO, 0)
	f2 := k.NewThread("f2", ClassFIFO, 0)
	ranF2 := false
	k.Submit(f1, "long", sim.Millisecond, nil)
	k.Submit(f2, "j", 100, func() { ranF2 = true })
	eng.RunFor(10)
	k.Kill(f2)
	eng.Run()
	if ranF2 {
		t.Fatal("killed fifo thread ran")
	}
}

func TestIRQToOfflinedCoreReroutes(t *testing.T) {
	eng, m, k := newKernel(t, 2)
	var got []hw.CoreID
	k.RegisterIRQ(hw.IPICall, func(c hw.CoreID) { got = append(got, c) })
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Hardware still delivers to core 1's handler, which is now the
	// kernel's stale hook: the kernel reroutes to an online core.
	k.handleIRQ(1, 0, hw.IPICall)
	eng.Run()
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("rerouted to %v, want core 0", got)
	}
	_ = m
}

func TestFIFOPreemptRequeuesAtFront(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	norm := k.NewThread("n", ClassNormal, 0)
	var order []string
	k.Submit(norm, "n1", 500*sim.Microsecond, func() { order = append(order, "n1") })
	k.Submit(norm, "n2", 500*sim.Microsecond, func() { order = append(order, "n2") })
	rt := k.NewThread("rt", ClassFIFO, 0)
	eng.After(100*sim.Microsecond, "wake", func() {
		k.Submit(rt, "rt", 100*sim.Microsecond, func() { order = append(order, "rt") })
	})
	eng.Run()
	// The preempted normal thread resumes n1 before n2.
	if len(order) != 3 || order[0] != "rt" || order[1] != "n1" || order[2] != "n2" {
		t.Fatalf("order = %v", order)
	}
}
