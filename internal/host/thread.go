// Package host models the untrusted host software stack: a Linux-like
// kernel scheduler with normal and FIFO (real-time) classes, CPU hotplug
// with the paper's realm-handoff modification (§4.2), IRQ routing and the
// wake-up thread machinery for asynchronous RMM calls (§4.3, Fig. 4).
package host

import (
	"fmt"

	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// Class is a thread's scheduling class.
type Class int

// Scheduling classes.
const (
	// ClassNormal is time-shared with a quantum (CFS stand-in).
	ClassNormal Class = iota
	// ClassFIFO runs to block and preempts normal threads — the class
	// the prototype uses for vCPU threads so they "typically run until
	// completion" after a wake-up (§4.3).
	ClassFIFO
)

func (c Class) String() string {
	if c == ClassFIFO {
		return "fifo"
	}
	return "normal"
}

// ThreadState is a thread's lifecycle state.
type ThreadState int

// Thread states.
const (
	Blocked ThreadState = iota
	Runnable
	Running
	Dead
)

func (s ThreadState) String() string {
	switch s {
	case Blocked:
		return "blocked"
	case Runnable:
		return "runnable"
	case Running:
		return "running"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("tstate(%d)", int(s))
	}
}

type workItem struct {
	label string
	work  sim.Duration
	fn    func()
}

// Thread is a host kernel thread. Threads execute queued work items in
// FIFO order and block when their queue drains (unless they have an idle
// poll function, which models busy-wait servers).
type Thread struct {
	k     *Kernel
	name  string
	class Class
	state ThreadState

	// pin restricts the thread to one core (NoCore = any online core).
	pin hw.CoreID
	// core is where the thread is running or queued.
	core hw.CoreID

	inbox []workItem
	cur   *workItem
	rem   sim.Duration

	// idlePoll, when set, is invoked instead of blocking: it returns a
	// slice of poll work and a function to run when the slice completes.
	idlePoll func() (sim.Duration, func())

	cpuTime    sim.Duration
	sliceStart sim.Time
	switches   uint64

	// domain & footprint describe whose code this thread executes for
	// the microarchitectural model: host threads pollute lightly; vCPU
	// threads running guest compute carry the guest's domain and a large
	// footprint (shared-core mode only).
	domain    uarch.DomainID
	footprint float64
}

// SetDomain marks the thread as executing code of the given security
// domain with the given per-core microarchitectural footprint.
func (t *Thread) SetDomain(d uarch.DomainID, footprint float64) {
	t.domain = d
	t.footprint = footprint
}

// Name reports the thread name.
func (t *Thread) Name() string { return t.name }

// State reports the thread state.
func (t *Thread) State() ThreadState { return t.state }

// Class reports the scheduling class.
func (t *Thread) Class() Class { return t.class }

// CPUTime reports accumulated execution time.
func (t *Thread) CPUTime() sim.Duration { return t.cpuTime }

// ContextSwitches reports how many times the thread was switched in.
func (t *Thread) ContextSwitches() uint64 { return t.switches }

// Core reports where the thread is (or last was) placed.
func (t *Thread) Core() hw.CoreID { return t.core }

// Pin reports the thread's pinned core (NoCore if unpinned).
func (t *Thread) Pin() hw.CoreID { return t.pin }

// QueueLen reports pending work items (excluding the current one).
func (t *Thread) QueueLen() int { return len(t.inbox) }

func (t *Thread) hasWork() bool { return t.cur != nil || len(t.inbox) > 0 }

// takeNext loads the next work item into cur; it reports false when the
// inbox is empty and no idle poll is configured.
func (t *Thread) takeNext() bool {
	if t.cur != nil {
		return true
	}
	if len(t.inbox) > 0 {
		item := t.inbox[0]
		t.inbox = t.inbox[1:]
		t.cur = &item
		t.rem = item.work
		return true
	}
	if t.idlePoll != nil {
		work, fn := t.idlePoll()
		t.cur = &workItem{label: t.name + ":poll", work: work, fn: fn}
		t.rem = work
		return true
	}
	return false
}
