package host

import (
	"errors"
	"fmt"

	"coregap/internal/gic"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/uarch"
)

// DefaultQuantum is the normal-class timeslice.
const DefaultQuantum = 4 * sim.Millisecond

// Host-kernel counters: scheduler and IRQ activity per trial.
var (
	cSubmits    = sim.DefineCounter("host.submits")
	cCtxSwitch  = sim.DefineCounter("host.ctx_switches")
	cIRQSteals  = sim.DefineCounter("host.irq_steals")
	cHotplugOff = sim.DefineCounter("host.hotplug_offlines")
	cHotplugOn  = sim.DefineCounter("host.hotplug_onlines")
)

// Kernel is the host OS: per-core run queues, two scheduling classes,
// IRQ dispatch, and CPU hotplug.
type Kernel struct {
	eng  *sim.Engine
	mach *hw.Machine
	dist *gic.Distributor
	met  *trace.Set

	cores   map[hw.CoreID]*coreSched
	quantum sim.Duration

	irqHandlers map[hw.IRQ]func(core hw.CoreID)
	irqCost     sim.Duration

	// hostFootprint is how much per-core microarchitectural state a
	// scheduled host thread touches — the interference that cools guest
	// working sets on shared cores (§2.3).
	hostFootprint float64
}

type coreSched struct {
	id      hw.CoreID
	cur     *Thread
	fifoQ   []*Thread
	normQ   []*Thread
	quantum *sim.Timer
	// stealing marks an in-progress IRQ steal: the executor belongs to
	// the IRQ path until it completes.
	stealing bool
	offline  bool
}

// NewKernel boots the host kernel on all of the machine's cores.
func NewKernel(mach *hw.Machine, dist *gic.Distributor, met *trace.Set) *Kernel {
	k := &Kernel{
		eng:           mach.Engine(),
		mach:          mach,
		dist:          dist,
		met:           met,
		cores:         make(map[hw.CoreID]*coreSched),
		quantum:       DefaultQuantum,
		irqHandlers:   make(map[hw.IRQ]func(hw.CoreID)),
		irqCost:       600 * sim.Nanosecond,
		hostFootprint: 0.25,
	}
	for _, c := range mach.Cores() {
		k.adoptCore(c.ID())
	}
	return k
}

func (k *Kernel) adoptCore(id hw.CoreID) {
	cs := &coreSched{id: id}
	cs.quantum = sim.NewTimer(k.eng, fmt.Sprintf("quantum%d", id), func() {
		k.quantumExpired(cs)
	})
	k.cores[id] = cs
	core := k.mach.Core(id)
	core.SetIRQHandler(func(from hw.CoreID, irq hw.IRQ) { k.handleIRQ(id, from, irq) })
}

// Engine reports the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Machine reports the underlying machine.
func (k *Kernel) Machine() *hw.Machine { return k.mach }

// Distributor reports the interrupt distributor.
func (k *Kernel) Distributor() *gic.Distributor { return k.dist }

// Metrics reports the kernel's metric set.
func (k *Kernel) Metrics() *trace.Set { return k.met }

// SetQuantum overrides the normal-class timeslice.
func (k *Kernel) SetQuantum(q sim.Duration) { k.quantum = q }

// NewThread creates a blocked thread. pin may be hw.NoCore.
func (k *Kernel) NewThread(name string, class Class, pin hw.CoreID) *Thread {
	return &Thread{k: k, name: name, class: class, state: Blocked, pin: pin, core: hw.NoCore}
}

// SetIdlePoll turns t into a busy-wait server: instead of blocking when
// out of work, it repeatedly runs poll slices. This models the
// Quarantine-style yield-polling configuration of Fig. 6 (§4.3).
func (k *Kernel) SetIdlePoll(t *Thread, poll func() (sim.Duration, func())) {
	t.idlePoll = poll
}

// Submit queues a work item on t, waking it if blocked.
func (k *Kernel) Submit(t *Thread, label string, work sim.Duration, fn func()) {
	if t.state == Dead {
		return
	}
	k.eng.Count(cSubmits)
	t.inbox = append(t.inbox, workItem{label: label, work: work, fn: fn})
	if t.state == Blocked {
		k.wake(t)
	}
}

// Kill terminates a thread, dropping queued work.
func (k *Kernel) Kill(t *Thread) {
	switch t.state {
	case Running:
		cs := k.cores[t.core]
		k.mach.Core(t.core).Exec.Preempt()
		cs.quantum.Disarm()
		cs.cur = nil
		t.state = Dead
		k.dispatch(cs)
	case Runnable:
		cs := k.cores[t.core]
		cs.fifoQ = removeThread(cs.fifoQ, t)
		cs.normQ = removeThread(cs.normQ, t)
		t.state = Dead
	default:
		t.state = Dead
	}
	t.inbox = nil
	t.cur = nil
}

func removeThread(q []*Thread, t *Thread) []*Thread {
	out := q[:0]
	for _, x := range q {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}

// pickCore selects a core for a waking unpinned thread: fewest queued
// threads, ties to the lowest ID — a deterministic stand-in for the load
// balancer.
func (k *Kernel) pickCore(t *Thread) (hw.CoreID, error) {
	if t.pin != hw.NoCore {
		if cs, ok := k.cores[t.pin]; ok && !cs.offline {
			return t.pin, nil
		}
		// Affinity broken by hotplug: fall through to any core, as
		// Linux does when the pinned core goes away.
	}
	best := hw.NoCore
	bestLoad := 0
	for _, c := range k.mach.Cores() {
		cs, ok := k.cores[c.ID()]
		if !ok || cs.offline {
			continue
		}
		load := len(cs.fifoQ) + len(cs.normQ)
		if cs.cur != nil {
			load++
		}
		if best == hw.NoCore || load < bestLoad {
			best = c.ID()
			bestLoad = load
		}
	}
	if best == hw.NoCore {
		return hw.NoCore, errors.New("host: no online cores")
	}
	return best, nil
}

func (k *Kernel) wake(t *Thread) {
	core, err := k.pickCore(t)
	if err != nil {
		panic("host: waking thread with no online cores")
	}
	t.state = Runnable
	t.core = core
	cs := k.cores[core]
	if t.class == ClassFIFO {
		cs.fifoQ = append(cs.fifoQ, t)
		// FIFO wake preempts a running normal thread.
		if cs.cur != nil && cs.cur.class == ClassNormal && !cs.stealing {
			k.preemptCurrent(cs, true)
		}
	} else {
		cs.normQ = append(cs.normQ, t)
	}
	k.dispatch(cs)
}

// preemptCurrent stops the running thread; front requeues it at the head
// of its queue (involuntary preemption) rather than the tail.
func (k *Kernel) preemptCurrent(cs *coreSched, front bool) {
	t := cs.cur
	if t == nil {
		return
	}
	t.rem = k.mach.Core(cs.id).Exec.Preempt()
	t.cpuTime += k.eng.Now().Sub(t.sliceStart)
	cs.quantum.Disarm()
	cs.cur = nil
	t.state = Runnable
	if t.class == ClassFIFO {
		if front {
			cs.fifoQ = append([]*Thread{t}, cs.fifoQ...)
		} else {
			cs.fifoQ = append(cs.fifoQ, t)
		}
	} else {
		if front {
			cs.normQ = append([]*Thread{t}, cs.normQ...)
		} else {
			cs.normQ = append(cs.normQ, t)
		}
	}
}

func (k *Kernel) quantumExpired(cs *coreSched) {
	if cs.cur == nil || cs.stealing {
		return
	}
	// Round-robin: requeue at the tail.
	k.preemptCurrent(cs, false)
	k.dispatch(cs)
}

// dispatch runs the next thread on an idle core.
func (k *Kernel) dispatch(cs *coreSched) {
	if cs.cur != nil || cs.offline || cs.stealing {
		return
	}
	var t *Thread
	if len(cs.fifoQ) > 0 {
		t = cs.fifoQ[0]
		cs.fifoQ = cs.fifoQ[1:]
	} else if len(cs.normQ) > 0 {
		t = cs.normQ[0]
		cs.normQ = cs.normQ[1:]
	} else {
		return
	}
	if !t.takeNext() {
		// Nothing to do: block and try the next candidate.
		t.state = Blocked
		k.dispatch(cs)
		return
	}
	cs.cur = t
	t.state = Running
	t.core = cs.id
	t.switches++
	k.eng.Count(cCtxSwitch)

	dom, fp := t.domain, t.footprint
	if dom == uarch.DomainNone {
		dom, fp = uarch.DomainHost, k.hostFootprint
	}
	k.mach.Core(cs.id).RecordExecution(dom, fp, 0)
	k.startCurrent(cs)
	// Arm the quantum after starting the slice so that a slice completing
	// exactly at quantum expiry counts as a completion, not a preemption.
	if t.class == ClassNormal {
		cs.quantum.Arm(k.quantum)
	}
}

// startCurrent starts (or restarts after an IRQ steal) the executor slice
// for cs.cur's current work item.
func (k *Kernel) startCurrent(cs *coreSched) {
	t := cs.cur
	t.sliceStart = k.eng.Now()
	k.mach.Core(cs.id).Exec.Start(t.name+":"+t.cur.label, t.rem, 1.0, func() {
		t.cpuTime += k.eng.Now().Sub(t.sliceStart)
		cs.quantum.Disarm()
		item := t.cur
		t.cur = nil
		t.rem = 0
		cs.cur = nil
		// Completion callback may submit more work, wake threads, etc.
		if item.fn != nil {
			item.fn()
		}
		if t.state == Running {
			// Still ours: run its next item or block. A completed FIFO
			// thread with more work continues at the queue head (it was
			// never preempted).
			if t.hasWork() || t.idlePoll != nil {
				t.state = Runnable
				if t.class == ClassFIFO {
					cs.fifoQ = append([]*Thread{t}, cs.fifoQ...)
				} else {
					cs.normQ = append(cs.normQ, t)
				}
			} else {
				t.state = Blocked
			}
		}
		k.dispatch(cs)
	})
}

// CoreQueueLen reports runnable threads queued on a core.
func (k *Kernel) CoreQueueLen(id hw.CoreID) int {
	cs := k.cores[id]
	if cs == nil {
		return 0
	}
	n := len(cs.fifoQ) + len(cs.normQ)
	if cs.cur != nil {
		n++
	}
	return n
}

// Running reports the thread currently on a core (nil when idle).
func (k *Kernel) Running(id hw.CoreID) *Thread {
	if cs := k.cores[id]; cs != nil {
		return cs.cur
	}
	return nil
}
