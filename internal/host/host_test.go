package host

import (
	"testing"

	"coregap/internal/gic"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

func newKernel(t *testing.T, cores int) (*sim.Engine, *hw.Machine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine(7)
	m := hw.NewMachine(eng, hw.DefaultConfig(cores))
	d := gic.NewDistributor(m)
	k := NewKernel(m, d, trace.NewSet())
	return eng, m, k
}

func TestSubmitRunsWork(t *testing.T) {
	eng, _, k := newKernel(t, 2)
	th := k.NewThread("worker", ClassNormal, hw.NoCore)
	done := sim.Time(-1)
	k.Submit(th, "job", 1000, func() { done = eng.Now() })
	eng.Run()
	if done != 1000 {
		t.Fatalf("job done at %v, want 1000", done)
	}
	if th.State() != Blocked {
		t.Fatalf("thread state %v after drain", th.State())
	}
	if th.CPUTime() != 1000 {
		t.Fatalf("cpu time %v", th.CPUTime())
	}
}

func TestWorkItemsFIFOOrder(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	th := k.NewThread("w", ClassNormal, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Submit(th, "j", 100, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTwoThreadsShareCoreRoundRobin(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	k.SetQuantum(1 * sim.Millisecond)
	a := k.NewThread("a", ClassNormal, 0)
	b := k.NewThread("b", ClassNormal, 0)
	var aDone, bDone sim.Time
	k.Submit(a, "big", 3*sim.Millisecond, func() { aDone = eng.Now() })
	k.Submit(b, "big", 3*sim.Millisecond, func() { bDone = eng.Now() })
	eng.Run()
	// Interleaved: both finish around 5-6ms, not 3ms then 6ms.
	if aDone < sim.Time(4*sim.Millisecond) {
		t.Fatalf("a finished at %v: no time sharing", aDone)
	}
	if bDone != sim.Time(6*sim.Millisecond) {
		t.Fatalf("b finished at %v, want 6ms", bDone)
	}
	if a.ContextSwitches() < 2 {
		t.Fatalf("a switches = %d, want >= 2", a.ContextSwitches())
	}
}

func TestUnpinnedThreadsBalanceAcrossCores(t *testing.T) {
	eng, _, k := newKernel(t, 2)
	a := k.NewThread("a", ClassNormal, hw.NoCore)
	b := k.NewThread("b", ClassNormal, hw.NoCore)
	var aDone, bDone sim.Time
	k.Submit(a, "j", sim.Millisecond, func() { aDone = eng.Now() })
	k.Submit(b, "j", sim.Millisecond, func() { bDone = eng.Now() })
	eng.Run()
	if aDone != sim.Time(sim.Millisecond) || bDone != sim.Time(sim.Millisecond) {
		t.Fatalf("no parallelism: a=%v b=%v", aDone, bDone)
	}
	if a.Core() == b.Core() {
		t.Fatal("both threads placed on one core")
	}
}

func TestFIFOPreemptsNormal(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	norm := k.NewThread("norm", ClassNormal, 0)
	rt := k.NewThread("rt", ClassFIFO, 0)
	var rtDone, normDone sim.Time
	k.Submit(norm, "long", 10*sim.Millisecond, func() { normDone = eng.Now() })
	// Wake the FIFO thread mid-run.
	eng.After(2*sim.Millisecond, "wake-rt", func() {
		k.Submit(rt, "urgent", sim.Millisecond, func() { rtDone = eng.Now() })
	})
	eng.Run()
	if rtDone != sim.Time(3*sim.Millisecond) {
		t.Fatalf("rt done at %v, want 3ms (immediate preemption)", rtDone)
	}
	if normDone != sim.Time(11*sim.Millisecond) {
		t.Fatalf("norm done at %v, want 11ms", normDone)
	}
}

func TestFIFORunsToCompletion(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	k.SetQuantum(sim.Millisecond)
	rt := k.NewThread("rt", ClassFIFO, 0)
	norm := k.NewThread("n", ClassNormal, 0)
	var order []string
	k.Submit(rt, "a", 3*sim.Millisecond, func() { order = append(order, "rt-a") })
	k.Submit(rt, "b", 3*sim.Millisecond, func() { order = append(order, "rt-b") })
	k.Submit(norm, "n", sim.Millisecond, func() { order = append(order, "norm") })
	eng.Run()
	if len(order) != 3 || order[0] != "rt-a" || order[1] != "rt-b" || order[2] != "norm" {
		t.Fatalf("order = %v: FIFO did not run to completion", order)
	}
}

func TestStealCPUDelaysThread(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	th := k.NewThread("w", ClassNormal, 0)
	var done sim.Time
	k.Submit(th, "j", 10_000, func() { done = eng.Now() })
	irqRan := false
	eng.After(5_000, "irq", func() {
		k.StealCPU(0, 1_000, func() { irqRan = true })
	})
	eng.Run()
	if !irqRan {
		t.Fatal("irq handler never ran")
	}
	if done != 11_000 {
		t.Fatalf("thread done at %v, want 11000 (stolen 1000)", done)
	}
	if th.CPUTime() != 10_000 {
		t.Fatalf("thread charged %v, want 10000", th.CPUTime())
	}
}

func TestStealCPUOnIdleCore(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	ran := false
	k.StealCPU(0, 500, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("steal on idle core did not run")
	}
}

func TestIRQDispatchToHandler(t *testing.T) {
	eng, m, k := newKernel(t, 2)
	var got []hw.CoreID
	k.RegisterIRQ(hw.IPIGuestExit, func(core hw.CoreID) { got = append(got, core) })
	m.SendIPI(1, 0, hw.IPIGuestExit)
	m.SendIPI(0, 1, hw.IPIGuestExit)
	m.SendIPI(0, 1, hw.IRQ(3)) // unregistered: dropped
	eng.Run()
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("handlers ran on %v", got)
	}
	if k.Metrics().Counter("host.irqs").Value() != 3 {
		t.Fatalf("irq count = %d", k.Metrics().Counter("host.irqs").Value())
	}
}

func TestIdlePollBusyWait(t *testing.T) {
	eng, m, k := newKernel(t, 1)
	th := k.NewThread("poller", ClassNormal, 0)
	polls := 0
	k.SetIdlePoll(th, func() (sim.Duration, func()) {
		return 10 * sim.Microsecond, func() { polls++ }
	})
	k.Submit(th, "seed", 1, nil) // wake it once
	eng.RunUntil(sim.Time(1 * sim.Millisecond))
	if polls < 90 {
		t.Fatalf("polls = %d, want ~100 over 1ms", polls)
	}
	// The polling thread monopolizes the core.
	if u := m.Core(0).Exec.Utilization(); u < 0.99 {
		t.Fatalf("utilization = %v, want ~1", u)
	}
}

func TestIdlePollCompetesWithWork(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	k.SetQuantum(100 * sim.Microsecond)
	poller := k.NewThread("poller", ClassNormal, 0)
	k.SetIdlePoll(poller, func() (sim.Duration, func()) {
		return 100 * sim.Microsecond, nil
	})
	k.Submit(poller, "seed", 1, nil)
	worker := k.NewThread("worker", ClassNormal, 0)
	var done sim.Time
	k.Submit(worker, "j", sim.Millisecond, func() { done = eng.Now() })
	eng.RunUntil(sim.Time(10 * sim.Millisecond))
	// The worker needed ~2x wall time because the poller burned ~half
	// the core (this is the Fig. 6 busy-wait scalability problem).
	if done < sim.Time(1800*sim.Microsecond) || done > sim.Time(2500*sim.Microsecond) {
		t.Fatalf("worker done at %v, want ~2ms under 50%% poller load", done)
	}
}

func TestKillDropsWork(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	th := k.NewThread("victim", ClassNormal, 0)
	ran := false
	k.Submit(th, "j", 10*sim.Millisecond, func() { ran = true })
	eng.After(sim.Millisecond, "kill", func() { k.Kill(th) })
	eng.Run()
	if ran {
		t.Fatal("killed thread's work completed")
	}
	if th.State() != Dead {
		t.Fatalf("state = %v", th.State())
	}
	// Submitting to a dead thread is a no-op.
	k.Submit(th, "post", 100, func() { ran = true })
	eng.Run()
	if ran {
		t.Fatal("dead thread ran work")
	}
}

func TestOfflineCoreMigratesThreads(t *testing.T) {
	eng, m, k := newKernel(t, 2)
	a := k.NewThread("a", ClassNormal, 1) // pinned to the doomed core
	var done sim.Time
	k.Submit(a, "j", 5*sim.Millisecond, func() { done = eng.Now() })
	eng.RunFor(sim.Millisecond)
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == 0 {
		t.Fatal("migrated thread never finished")
	}
	if a.Core() != 0 {
		t.Fatalf("thread on core %d, want 0", a.Core())
	}
	if m.Core(1).Power() != hw.Offline {
		t.Fatalf("core power = %v", m.Core(1).Power())
	}
	if k.OnlineCount() != 1 {
		t.Fatalf("online = %d", k.OnlineCount())
	}
}

func TestOfflineCoreHandoffToRealm(t *testing.T) {
	eng, m, k := newKernel(t, 2)
	handed := false
	if err := k.OfflineCore(1, func() { handed = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !handed {
		t.Fatal("handoff not invoked")
	}
	if m.Core(1).Power() != hw.DedicatedRealm {
		t.Fatalf("power = %v, want dedicated-realm", m.Core(1).Power())
	}
}

func TestOfflineLastCoreRefused(t *testing.T) {
	_, _, k := newKernel(t, 2)
	if err := k.OfflineCore(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.OfflineCore(1, nil); err != ErrLastCore {
		t.Fatalf("err = %v, want ErrLastCore", err)
	}
}

func TestOfflineTwiceRefused(t *testing.T) {
	_, _, k := newKernel(t, 3)
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.OfflineCore(1, nil); err != ErrCoreOffline {
		t.Fatalf("err = %v", err)
	}
}

func TestOnlineCoreRestoresScheduling(t *testing.T) {
	eng, _, k := newKernel(t, 2)
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := k.OnlineCore(1); err != nil {
		t.Fatal(err)
	}
	if err := k.OnlineCore(1); err != ErrCoreOnline {
		t.Fatalf("double online err = %v", err)
	}
	th := k.NewThread("back", ClassNormal, 1)
	var done sim.Time
	k.Submit(th, "j", 100, func() { done = eng.Now() })
	eng.Run()
	if done == 0 || th.Core() != 1 {
		t.Fatalf("thread did not run on re-onlined core (done=%v core=%d)", done, th.Core())
	}
	if k.OnlineCount() != 2 {
		t.Fatal("online count")
	}
}

func TestIRQRetargetOnOffline(t *testing.T) {
	eng, _, k := newKernel(t, 2)
	irq := hw.SPIBase + 1
	k.Distributor().Route(irq, 1)
	if err := k.OfflineCore(1, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got := k.Distributor().Target(irq); got != 0 {
		t.Fatalf("irq target = %v, want 0", got)
	}
}

func TestQueueAccessors(t *testing.T) {
	eng, _, k := newKernel(t, 1)
	a := k.NewThread("a", ClassNormal, 0)
	b := k.NewThread("b", ClassNormal, 0)
	k.Submit(a, "j", sim.Millisecond, nil)
	k.Submit(b, "j", sim.Millisecond, nil)
	eng.RunFor(sim.Microsecond)
	if k.CoreQueueLen(0) != 2 {
		t.Fatalf("queue len = %d", k.CoreQueueLen(0))
	}
	if k.Running(0) != a {
		t.Fatal("running thread wrong")
	}
	if k.CoreQueueLen(99) != 0 || k.Running(99) != nil {
		t.Fatal("unknown core accessors")
	}
}

func TestClassAndStateStrings(t *testing.T) {
	if ClassNormal.String() != "normal" || ClassFIFO.String() != "fifo" {
		t.Fatal("class strings")
	}
	if Blocked.String() != "blocked" || Running.String() != "running" ||
		Runnable.String() != "runnable" || Dead.String() != "dead" {
		t.Fatal("state strings")
	}
}
