package host

import (
	"errors"
	"fmt"

	"coregap/internal/hw"
	"coregap/internal/sim"
)

// Hotplug errors.
var (
	ErrCoreOffline   = errors.New("host: core already offline")
	ErrCoreOnline    = errors.New("host: core already online")
	ErrLastCore      = errors.New("host: cannot offline the last online core")
	ErrUnmanagedCore = errors.New("host: core not managed by this kernel")
)

// HotplugCost is the modelled duration of the hotplug shutdown procedure
// (task migration, IRQ retargeting, teardown callbacks). The operation is
// rare — once per CVM start/stop — so only its order of magnitude
// matters; Linux CPU offline takes on the order of milliseconds.
const HotplugCost = 2 * sim.Millisecond

// OfflineCore runs the Linux CPU-hotplug shutdown path on a core (§4.2):
// migrate every task away, retarget interrupts, mark the core unusable —
// and then, instead of halting it, invoke handoff, which the core-gapping
// host uses to transfer the core to the security monitor. The paper's
// only other change, keeping the frequency governor from downclocking the
// core, is implicit: the modelled core keeps full speed.
//
// With a nil handoff the core simply goes Offline (stock Linux).
func (k *Kernel) OfflineCore(id hw.CoreID, handoff func()) error {
	cs, ok := k.cores[id]
	if !ok {
		return ErrUnmanagedCore
	}
	if cs.offline {
		return ErrCoreOffline
	}
	online := 0
	for _, s := range k.cores {
		if !s.offline {
			online++
		}
	}
	if online <= 1 {
		return ErrLastCore
	}

	cs.offline = true
	k.eng.Count(cHotplugOff)
	k.eng.Trace().Span(sim.TCEngine, "host.hotplug_offline", int32(id), HotplugCost, 0)

	// Stop the running thread and collect every queued thread.
	var displaced []*Thread
	if cs.cur != nil {
		t := cs.cur
		t.rem = k.mach.Core(id).Exec.Preempt()
		t.cpuTime += k.eng.Now().Sub(t.sliceStart)
		cs.quantum.Disarm()
		cs.cur = nil
		t.state = Runnable
		displaced = append(displaced, t)
	}
	displaced = append(displaced, cs.fifoQ...)
	displaced = append(displaced, cs.normQ...)
	cs.fifoQ = nil
	cs.normQ = nil

	// Retarget device interrupts to the lowest-numbered online core.
	if k.dist != nil {
		for _, c := range k.mach.Cores() {
			if s, ok := k.cores[c.ID()]; ok && !s.offline {
				k.dist.RetargetAll(id, c.ID())
				break
			}
		}
	}

	// Re-enqueue displaced tasks elsewhere.
	for _, t := range displaced {
		t.state = Blocked // wake() requires Blocked→Runnable
		k.wake(t)
	}

	if k.met != nil {
		k.met.Counter("host.hotplug.offline").Inc()
	}

	// The shutdown procedure itself takes time; the final action is
	// either halting the core or handing it to the monitor.
	k.eng.After(HotplugCost, fmt.Sprintf("hotplug-off%d", id), func() {
		if handoff != nil {
			k.mach.SetPower(id, hw.DedicatedRealm)
			handoff()
		} else {
			k.mach.SetPower(id, hw.Offline)
		}
	})
	return nil
}

// OnlineCore brings a core back under host scheduler control (after the
// monitor returns it, or after a plain hotplug-on).
func (k *Kernel) OnlineCore(id hw.CoreID) error {
	cs, ok := k.cores[id]
	if !ok {
		return ErrUnmanagedCore
	}
	if !cs.offline {
		return ErrCoreOnline
	}
	cs.offline = false
	k.eng.Count(cHotplugOn)
	k.eng.Trace().Emit(sim.TCEngine, "host.hotplug_online", int32(id), 0)
	k.mach.SetPower(id, hw.Online)
	// The host owns the core's interrupt delivery again.
	k.mach.Core(id).SetIRQHandler(func(from hw.CoreID, irq hw.IRQ) { k.handleIRQ(id, from, irq) })
	if k.met != nil {
		k.met.Counter("host.hotplug.online").Inc()
	}
	k.dispatch(cs)
	return nil
}

// OnlineCount reports how many cores the scheduler currently uses.
func (k *Kernel) OnlineCount() int {
	n := 0
	for _, cs := range k.cores {
		if !cs.offline {
			n++
		}
	}
	return n
}

// IsOffline reports whether the kernel considers the core offline.
func (k *Kernel) IsOffline(id hw.CoreID) bool {
	cs, ok := k.cores[id]
	return ok && cs.offline
}
