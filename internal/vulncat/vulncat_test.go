package vulncat

import (
	"testing"

	"coregap/internal/uarch"
)

func TestCatalogueSizeAndSpan(t *testing.T) {
	vulns := Catalogue()
	// The paper cites 30+ vulnerabilities since 2018 (§1, §2.2).
	if len(vulns) < 30 {
		t.Fatalf("catalogue has %d entries, want >= 30", len(vulns))
	}
	for _, v := range vulns {
		if v.Year < 2018 || v.Year > 2024 {
			t.Errorf("%s: year %d outside 2018-2024", v.Name, v.Year)
		}
		if len(v.Structures) == 0 {
			t.Errorf("%s: no structures listed", v.Name)
		}
		if v.Name == "" {
			t.Error("unnamed vulnerability")
		}
	}
}

func TestCatalogueSorted(t *testing.T) {
	vulns := Catalogue()
	for i := 1; i < len(vulns); i++ {
		a, b := vulns[i-1], vulns[i]
		if a.Year > b.Year || (a.Year == b.Year && a.Name > b.Name) {
			t.Fatalf("catalogue unsorted at %d: %s/%d before %s/%d", i, a.Name, a.Year, b.Name, b.Year)
		}
	}
}

func TestOnlyCrossTalkWarrantedAdvisory(t *testing.T) {
	s := Summarize(Catalogue())
	if len(s.CrossCoreAdvisory) != 1 || s.CrossCoreAdvisory[0] != "CrossTalk" {
		t.Fatalf("cross-core advisory list = %v, want [CrossTalk]", s.CrossCoreAdvisory)
	}
}

func TestVastMajorityMitigated(t *testing.T) {
	s := Summarize(Catalogue())
	if s.Mitigated < 30 {
		t.Fatalf("core gapping mitigates %d, want >= 30 (paper: 30+ not cross-core)", s.Mitigated)
	}
	// The unmitigated set must be exactly the cross-core + remote ones.
	if got := s.Total - s.Mitigated; got != s.CrossCore+s.Remote {
		t.Fatalf("unmitigated %d != cross-core %d + remote %d", got, s.CrossCore, s.Remote)
	}
	if s.SameCoreExploitGap != s.Mitigated {
		t.Fatalf("same-core count %d != mitigated %d", s.SameCoreExploitGap, s.Mitigated)
	}
}

func TestMitigationRule(t *testing.T) {
	for _, v := range Catalogue() {
		want := v.Scope == SameThread || v.Scope == SiblingSMT
		if got := v.MitigatedByCoreGapping(); got != want {
			t.Errorf("%s: mitigated = %v, want %v (scope %v)", v.Name, got, want, v.Scope)
		}
	}
}

func TestGhostRaceMitigated(t *testing.T) {
	// §2.2: GhostRace relies on multiple cores to *steer* execution but
	// needs a shared kernel; it is catalogued same-thread and mitigated.
	for _, v := range Catalogue() {
		if v.Name == "GhostRace" {
			if !v.MitigatedByCoreGapping() {
				t.Fatal("GhostRace must be mitigated by core gapping (paper §2.2)")
			}
			return
		}
	}
	t.Fatal("GhostRace missing from catalogue")
}

func TestCrossTalkUsesSharedStaging(t *testing.T) {
	for _, v := range Catalogue() {
		if v.Name != "CrossTalk" {
			continue
		}
		if v.MitigatedByCoreGapping() {
			t.Fatal("CrossTalk must NOT be mitigated by core gapping")
		}
		found := false
		for _, k := range v.Structures {
			if k == uarch.Staging {
				found = true
				if !k.Shared() {
					t.Fatal("staging buffer must be a shared structure")
				}
			}
		}
		if !found {
			t.Fatal("CrossTalk must exploit the staging buffer")
		}
		return
	}
	t.Fatal("CrossTalk missing")
}

func TestScopeStructureConsistency(t *testing.T) {
	// A vulnerability whose ONLY structures are per-core cannot plausibly
	// be scoped cross-core, except via snooping (explicitly noted).
	for _, v := range Catalogue() {
		if v.Scope != CrossCore || v.Name == "Snoop-assisted L1 sampling" {
			continue
		}
		anyShared := false
		for _, k := range v.Structures {
			if k.Shared() {
				anyShared = true
			}
		}
		if !anyShared {
			t.Errorf("%s: cross-core scope but no shared structure", v.Name)
		}
	}
}

func TestExploitablePlacementMatrix(t *testing.T) {
	sameThread := Vuln{Name: "x", Scope: SameThread}
	smt := Vuln{Name: "y", Scope: SiblingSMT}
	cross := Vuln{Name: "z", Scope: CrossCore}
	remote := Vuln{Name: "w", Scope: Remote}

	cases := []struct {
		v    Vuln
		p    Placement
		want bool
	}{
		{sameThread, PlacedSameThread, true},
		{sameThread, PlacedSiblingSMT, false},
		{sameThread, PlacedOtherCore, false},
		{smt, PlacedSameThread, true},
		{smt, PlacedSiblingSMT, true},
		{smt, PlacedOtherCore, false},
		{cross, PlacedSameThread, true},
		{cross, PlacedOtherCore, true},
		{cross, PlacedOffHost, false},
		{remote, PlacedOffHost, true},
		{remote, PlacedOtherCore, true},
	}
	for _, c := range cases {
		if got := Exploitable(c.v, c.p); got != c.want {
			t.Errorf("Exploitable(%v, %v) = %v, want %v", c.v.Scope, c.p, got, c.want)
		}
	}
}

func TestCoreGappingEquivalentToOtherCorePlacement(t *testing.T) {
	// The design property: core gapping moves every distrusting attacker
	// to PlacedOtherCore. Each vuln must then be exploitable iff it is
	// one of the catalogue's cross-core (or remote) entries.
	for _, v := range Catalogue() {
		exploitableAfterGapping := Exploitable(v, PlacedOtherCore)
		if exploitableAfterGapping == v.MitigatedByCoreGapping() {
			t.Errorf("%s: gapping verdict inconsistent (exploitable=%v, mitigated=%v)",
				v.Name, exploitableAfterGapping, v.MitigatedByCoreGapping())
		}
	}
}

func TestByStructureIndex(t *testing.T) {
	idx := ByStructure(Catalogue())
	if len(idx[uarch.BTB]) < 5 {
		t.Fatalf("expected many BTB vulnerabilities, got %d", len(idx[uarch.BTB]))
	}
	if len(idx[uarch.Staging]) != 1 {
		t.Fatalf("staging buffer vulns = %d, want 1 (CrossTalk)", len(idx[uarch.Staging]))
	}
	for k, vs := range idx {
		for _, v := range vs {
			found := false
			for _, vk := range v.Structures {
				if vk == k {
					found = true
				}
			}
			if !found {
				t.Errorf("index inconsistency: %s under %v", v.Name, k)
			}
		}
	}
}

func TestSummaryPerYearNonEmpty(t *testing.T) {
	s := Summarize(Catalogue())
	// The "flood shows no sign of stopping": every year 2018-2024 has
	// at least one disclosure.
	for y := 2018; y <= 2024; y++ {
		if s.PerYear[y] == 0 {
			t.Errorf("no vulnerabilities catalogued for %d", y)
		}
	}
	if s.TransientCount+s.ArchBugCount != s.Total {
		t.Fatal("class counts do not add up")
	}
}

func TestScopeStrings(t *testing.T) {
	if SameThread.String() != "same-thread" || CrossCore.String() != "cross-core" ||
		SiblingSMT.String() != "sibling-SMT" || Remote.String() != "remote" {
		t.Fatal("scope strings wrong")
	}
	if Transient.String() != "transient" || ArchBug.String() != "CPU bug" {
		t.Fatal("class strings wrong")
	}
	if PlacedOtherCore.String() != "other-core" {
		t.Fatal("placement strings wrong")
	}
}
