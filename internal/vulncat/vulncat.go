// Package vulncat catalogues the transient-execution vulnerabilities and
// CPU bugs of the paper's Figure 3 — every disclosed issue since 2018 that
// broke processor security isolation on mainstream CPUs — together with
// the microarchitectural structures each exploits and the scope at which
// it leaks. From the catalogue we derive the paper's central empirical
// claim: only CrossTalk (and, marginally, NetSpectre) demonstrated a
// cross-core leak in a typical cloud-VM setting; everything else is
// same-core or sibling-thread and is therefore defeated by core gapping.
package vulncat

import (
	"fmt"
	"sort"

	"coregap/internal/uarch"
)

// Scope classifies the sharing boundary a vulnerability crosses.
type Scope int

// Scopes, ordered by increasing reach.
const (
	// SameThread leaks only across context switches on one hardware thread.
	SameThread Scope = iota
	// SiblingSMT leaks to the sibling hardware thread of the same core.
	SiblingSMT
	// CrossCore leaks across physical core boundaries.
	CrossCore
	// Remote leaks over the network with no code co-residency at all.
	Remote
)

func (s Scope) String() string {
	switch s {
	case SameThread:
		return "same-thread"
	case SiblingSMT:
		return "sibling-SMT"
	case CrossCore:
		return "cross-core"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("scope(%d)", int(s))
	}
}

// Class distinguishes speculation issues from architectural CPU bugs.
type Class int

// Vulnerability classes.
const (
	Transient Class = iota // transient-execution / speculation
	ArchBug                // architectural bug leaking or corrupting state
)

func (c Class) String() string {
	if c == ArchBug {
		return "CPU bug"
	}
	return "transient"
}

// Vuln is one catalogued vulnerability.
type Vuln struct {
	Name       string
	Year       int
	Class      Class
	Scope      Scope
	Structures []uarch.StructKind // structures exploited / used as channel
	Vendors    string             // affected vendor families, informational
	Note       string
}

// MitigatedByCoreGapping reports whether binding distrusting domains to
// disjoint physical cores removes the vulnerability from a CVM's TCB.
// The rule follows the paper: everything whose reach is confined to a
// core (same-thread or sibling-SMT — all threads of a core are bound to
// one CVM, §4.2 fn.1) is mitigated; cross-core and remote leaks are not.
func (v Vuln) MitigatedByCoreGapping() bool {
	return v.Scope == SameThread || v.Scope == SiblingSMT
}

// Catalogue returns the Figure 3 timeline, sorted by year then name.
// The set matches the vulnerabilities cited in the paper (§1, §2.2 and
// Fig. 3): 30+ same-core issues, with CrossTalk and NetSpectre the only
// cross-core/remote demonstrations relevant to cloud VMs.
func Catalogue() []Vuln {
	vulns := []Vuln{
		{"Spectre", 2018, Transient, SameThread, []uarch.StructKind{uarch.BTB, uarch.L1D}, "Intel/AMD/Arm", "branch-predictor poisoning (v1/v2)"},
		{"Meltdown", 2018, Transient, SameThread, []uarch.StructKind{uarch.L1D}, "Intel/Arm", "rogue data cache load"},
		{"Speculative Store Bypass", 2018, Transient, SameThread, []uarch.StructKind{uarch.StoreBuffer}, "Intel/AMD/Arm", "v4"},
		{"LazyFP", 2018, Transient, SameThread, []uarch.StructKind{uarch.FPURegs}, "Intel", "lazy FPU state restore"},
		{"Foreshadow", 2018, Transient, SiblingSMT, []uarch.StructKind{uarch.L1D}, "Intel", "L1TF, broke SGX"},
		{"NetSpectre", 2019, Transient, Remote, []uarch.StructKind{uarch.BTB, uarch.LLC}, "Intel/AMD/Arm", "<10 b/h in cloud settings"},
		{"ZombieLoad", 2019, Transient, SiblingSMT, []uarch.StructKind{uarch.FillBuffer}, "Intel", "MDS"},
		{"RIDL", 2019, Transient, SiblingSMT, []uarch.StructKind{uarch.FillBuffer, uarch.LoadPort}, "Intel", "MDS"},
		{"Fallout", 2019, Transient, SameThread, []uarch.StructKind{uarch.StoreBuffer}, "Intel", "MDS on Meltdown-resistant CPUs"},
		{"SWAPGS", 2019, Transient, SameThread, []uarch.StructKind{uarch.BTB, uarch.L1D}, "Intel", "speculative SWAPGS"},
		{"iTLB multihit", 2019, ArchBug, SameThread, []uarch.StructKind{uarch.ITLB}, "Intel", "machine check / DoS via iTLB"},
		{"Plundervolt", 2020, ArchBug, SameThread, []uarch.StructKind{uarch.FPURegs}, "Intel", "undervolting fault injection vs SGX"},
		{"LVI", 2020, Transient, SameThread, []uarch.StructKind{uarch.FillBuffer, uarch.StoreBuffer}, "Intel", "load value injection"},
		{"CacheOut", 2020, Transient, SiblingSMT, []uarch.StructKind{uarch.L1D, uarch.FillBuffer}, "Intel", "L1D eviction sampling"},
		{"Snoop-assisted L1 sampling", 2020, Transient, CrossCore, []uarch.StructKind{uarch.L1D}, "Intel", "impractical rate; no advisory-level cloud impact"},
		{"CrossTalk", 2020, Transient, CrossCore, []uarch.StructKind{uarch.Staging}, "Intel", "the one severe cross-core leak (staging buffer)"},
		{"Straight-line speculation", 2020, Transient, SameThread, []uarch.StructKind{uarch.BTB}, "Arm", ""},
		{"I see dead uops", 2021, Transient, SiblingSMT, []uarch.StructKind{uarch.UopCache}, "Intel/AMD", "uop-cache channel"},
		{"Pandora's box (uarch leaks)", 2021, Transient, SameThread, []uarch.StructKind{uarch.Prefetch, uarch.L1D}, "Intel/AMD/Arm", "systematic study of new leak sources"},
		{"Branch History Injection", 2022, Transient, SameThread, []uarch.StructKind{uarch.BTB}, "Intel/Arm", "cross-privilege Spectre-v2 revival"},
		{"Retbleed", 2022, Transient, SameThread, []uarch.StructKind{uarch.RSB, uarch.BTB}, "Intel/AMD", "return instruction speculation"},
		{"AEPIC leak", 2022, ArchBug, SameThread, []uarch.StructKind{uarch.APICRegs}, "Intel", "architecturally leaked stale SGX data"},
		{"PACMAN", 2022, Transient, SameThread, []uarch.StructKind{uarch.BTB}, "Apple/Arm", "pointer-authentication oracle"},
		{"Augury", 2022, Transient, SameThread, []uarch.StructKind{uarch.Prefetch}, "Apple/Arm", "DMP leaks data at rest"},
		{"MMIO stale data", 2022, ArchBug, SameThread, []uarch.StructKind{uarch.FillBuffer}, "Intel", "propagated stale MMIO data"},
		{"Downfall", 2023, Transient, SiblingSMT, []uarch.StructKind{uarch.FPURegs, uarch.FillBuffer}, "Intel", "gather data sampling"},
		{"Inception", 2023, Transient, SameThread, []uarch.StructKind{uarch.RSB, uarch.BTB}, "AMD", "training in transient execution"},
		{"Zenbleed", 2023, ArchBug, SameThread, []uarch.StructKind{uarch.FPURegs}, "AMD", "vector register file leak"},
		{"Reptar", 2023, ArchBug, SameThread, []uarch.StructKind{uarch.UopCache}, "Intel", "redundant-prefix machine state corruption"},
		{"(M)WAIT", 2023, Transient, CrossCore, []uarch.StructKind{uarch.LLC, uarch.Interconn}, "Intel/AMD", "power-state side channel; no advisory for VM isolation"},
		{"Speculation at fault", 2023, Transient, SameThread, []uarch.StructKind{uarch.L1D, uarch.BTB}, "Intel/AMD/Arm", "exception-path leakage"},
		{"GhostRace", 2024, Transient, SameThread, []uarch.StructKind{uarch.BTB, uarch.L1D}, "Intel/AMD/Arm", "needs a shared kernel between cores; mitigated by core gapping"},
		{"GoFetch", 2024, Transient, SameThread, []uarch.StructKind{uarch.Prefetch}, "Apple/Arm", "DMP vs constant-time crypto"},
		{"CacheWarp", 2024, ArchBug, SameThread, []uarch.StructKind{uarch.L1D}, "AMD", "INVD-based fault injection vs SEV"},
		{"TikTag", 2024, Transient, SameThread, []uarch.StructKind{uarch.Prefetch, uarch.L1D}, "Arm", "MTE tag oracle"},
		{"InSpectre Gadget", 2024, Transient, SameThread, []uarch.StructKind{uarch.BTB}, "Intel", "residual Spectre-v2 surface"},
		{"Leaky Address Masking", 2024, Transient, SameThread, []uarch.StructKind{uarch.DTLB, uarch.L1D}, "Intel", "non-canonical translation gadgets"},
	}
	sort.Slice(vulns, func(i, j int) bool {
		if vulns[i].Year != vulns[j].Year {
			return vulns[i].Year < vulns[j].Year
		}
		return vulns[i].Name < vulns[j].Name
	})
	return vulns
}

// Summary aggregates the catalogue the way the paper's Fig. 3 caption does.
type Summary struct {
	Total              int
	Mitigated          int // removed from the TCB by core gapping
	CrossCore          int // scope CrossCore
	Remote             int
	CrossCoreAdvisory  []string // cross-core leaks severe enough for cloud advisories
	UnmitigatedNames   []string
	PerYear            map[int]int
	TransientCount     int
	ArchBugCount       int
	SameCoreExploitGap int // vulnerabilities NOT exploitable across cores
}

// Summarize computes the Fig. 3 aggregate over the catalogue.
func Summarize(vulns []Vuln) Summary {
	s := Summary{PerYear: make(map[int]int)}
	for _, v := range vulns {
		s.Total++
		s.PerYear[v.Year]++
		if v.Class == Transient {
			s.TransientCount++
		} else {
			s.ArchBugCount++
		}
		switch v.Scope {
		case CrossCore:
			s.CrossCore++
		case Remote:
			s.Remote++
		default:
			s.SameCoreExploitGap++
		}
		if v.MitigatedByCoreGapping() {
			s.Mitigated++
		} else {
			s.UnmitigatedNames = append(s.UnmitigatedNames, v.Name)
		}
		// Per the paper, CrossTalk is the only cross-core leak that
		// warranted a vendor advisory and cloud-provider mitigation.
		if v.Name == "CrossTalk" {
			s.CrossCoreAdvisory = append(s.CrossCoreAdvisory, v.Name)
		}
	}
	sort.Strings(s.UnmitigatedNames)
	return s
}

// ByStructure indexes the catalogue by exploited structure.
func ByStructure(vulns []Vuln) map[uarch.StructKind][]Vuln {
	idx := make(map[uarch.StructKind][]Vuln)
	for _, v := range vulns {
		for _, k := range v.Structures {
			idx[k] = append(idx[k], v)
		}
	}
	return idx
}

// Exploitable reports whether vulnerability v is exploitable by an
// attacker in domain attacker against victim state, given the physical
// relationship between where the two domains execute.
type Placement int

// Physical placements of attacker relative to victim.
const (
	PlacedSameThread Placement = iota // time-sliced on one hardware thread
	PlacedSiblingSMT                  // sibling hardware threads, same core
	PlacedOtherCore                   // different physical cores, same socket
	PlacedOffHost                     // network access only
)

func (p Placement) String() string {
	switch p {
	case PlacedSameThread:
		return "same-thread"
	case PlacedSiblingSMT:
		return "sibling-SMT"
	case PlacedOtherCore:
		return "other-core"
	case PlacedOffHost:
		return "off-host"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Exploitable reports whether v can leak given the attacker's placement.
// A vulnerability reaches at most its scope: a sibling-SMT bug needs the
// attacker on the sibling thread or closer; a same-thread bug needs
// time-slicing on the very same thread; cross-core bugs work from any
// core on the socket; remote bugs work from anywhere.
func Exploitable(v Vuln, p Placement) bool {
	switch v.Scope {
	case SameThread:
		return p == PlacedSameThread
	case SiblingSMT:
		return p == PlacedSameThread || p == PlacedSiblingSMT
	case CrossCore:
		return p != PlacedOffHost
	case Remote:
		return true
	default:
		return false
	}
}
