package hw

import (
	"testing"

	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func newMachine(t *testing.T, cores int) (*sim.Engine, *Machine) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, NewMachine(eng, DefaultConfig(cores))
}

func TestMachineBasics(t *testing.T) {
	eng, m := newMachine(t, 4)
	if m.NumCores() != 4 || len(m.Cores()) != 4 {
		t.Fatalf("cores = %d", m.NumCores())
	}
	if m.Engine() != eng {
		t.Fatal("engine accessor")
	}
	if m.GPT() == nil || m.Shared() == nil {
		t.Fatal("missing GPT/shared state")
	}
	c := m.Core(2)
	if c.ID() != 2 || c.World() != NormalWorld || c.Power() != Online {
		t.Fatalf("core defaults: %v %v %v", c.ID(), c.World(), c.Power())
	}
}

func TestCorePanicOnBadID(t *testing.T) {
	_, m := newMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid core id")
		}
	}()
	m.Core(7)
}

func TestIPIDeliveryLatencyAndHandler(t *testing.T) {
	eng, m := newMachine(t, 2)
	var gotFrom CoreID
	var gotIRQ IRQ
	var at sim.Time
	m.Core(1).SetIRQHandler(func(from CoreID, irq IRQ) {
		gotFrom, gotIRQ, at = from, irq, eng.Now()
	})
	m.SendIPI(0, 1, IPIGuestExit)
	eng.Run()
	if gotFrom != 0 || gotIRQ != IPIGuestExit {
		t.Fatalf("got %v/%v", gotFrom, gotIRQ)
	}
	if at != sim.Time(m.IPILatency()) {
		t.Fatalf("delivered at %v, want %v", at, m.IPILatency())
	}
}

func TestIPIToHandlerlessCoreDropped(t *testing.T) {
	eng, m := newMachine(t, 2)
	m.SendIPI(0, 1, IPICall) // no handler installed: must not panic
	eng.Run()
}

func TestIPIOwnershipChangeInFlight(t *testing.T) {
	eng, m := newMachine(t, 2)
	first, second := 0, 0
	m.Core(1).SetIRQHandler(func(CoreID, IRQ) { first++ })
	m.SendIPI(0, 1, IPICall)
	// Ownership changes before delivery: new handler receives it.
	m.Core(1).SetIRQHandler(func(CoreID, IRQ) { second++ })
	eng.Run()
	if first != 0 || second != 1 {
		t.Fatalf("first=%d second=%d, want 0/1", first, second)
	}
}

func TestDeviceIRQDelivery(t *testing.T) {
	eng, m := newMachine(t, 2)
	var got IRQ
	var from CoreID = 99
	m.Core(0).SetIRQHandler(func(f CoreID, irq IRQ) { got, from = irq, f })
	m.DeliverIRQ(0, SPIBase+3)
	eng.Run()
	if got != SPIBase+3 || from != NoCore {
		t.Fatalf("got irq %v from %v", got, from)
	}
}

func TestWorldSwitchCost(t *testing.T) {
	_, m := newMachine(t, 1)
	c := m.Core(0)
	if d := c.SwitchWorld(NormalWorld); d != 0 {
		t.Fatalf("no-op switch cost %v", d)
	}
	if d := c.SwitchWorld(RealmWorld); d <= 0 {
		t.Fatalf("switch cost %v", d)
	}
	if c.World() != RealmWorld {
		t.Fatal("world not switched")
	}
}

func TestPowerStates(t *testing.T) {
	_, m := newMachine(t, 4)
	m.SetPower(1, DedicatedRealm)
	m.SetPower(2, Offline)
	online := m.OnlineCores()
	if len(online) != 2 || online[0] != 0 || online[1] != 3 {
		t.Fatalf("online = %v", online)
	}
	ded := m.DedicatedCores()
	if len(ded) != 1 || ded[0] != 1 {
		t.Fatalf("dedicated = %v", ded)
	}
}

func TestExecutionAuditLog(t *testing.T) {
	_, m := newMachine(t, 1)
	c := m.Core(0)
	c.RecordExecution(uarch.DomainHost, 0.1, 0)
	c.RecordExecution(uarch.Guest(0), 0.1, 0)
	c.RecordExecution(uarch.DomainHost, 0.1, 0)
	doms := c.DomainsObserved()
	if len(doms) != 2 || doms[0] != uarch.DomainHost || doms[1] != uarch.Guest(0) {
		t.Fatalf("domains = %v", doms)
	}
	if c.CurrentDomain() != uarch.DomainHost {
		t.Fatal("current domain")
	}
	if len(c.ExecLog()) != 3 {
		t.Fatalf("log len = %d", len(c.ExecLog()))
	}
	// Uarch state must have been touched.
	if c.Uarch.Warmth(uarch.Guest(0)) == 0 {
		t.Fatal("RecordExecution did not touch uarch state")
	}
}

func TestSGIPredicates(t *testing.T) {
	if !IPIGuestExit.IsSGI() || !IPIReschedule.IsSGI() {
		t.Fatal("SGIs not recognised")
	}
	if IRQVTimer.IsSGI() || SPIBase.IsSGI() {
		t.Fatal("non-SGI recognised as SGI")
	}
}

func TestStringers(t *testing.T) {
	if NormalWorld.String() != "normal" || RealmWorld.String() != "realm" || RootWorld.String() != "root" {
		t.Fatal("world strings")
	}
	if Online.String() != "online" || DedicatedRealm.String() != "dedicated-realm" || Offline.String() != "offline" {
		t.Fatal("power strings")
	}
}

func TestExecutorRunToCompletion(t *testing.T) {
	eng, m := newMachine(t, 1)
	x := m.Core(0).Exec
	done := false
	x.Start("job", 1000, 1.0, func() { done = true })
	if !x.Busy() || x.Label() != "job" {
		t.Fatal("executor not busy after Start")
	}
	eng.Run()
	if !done {
		t.Fatal("onDone not called")
	}
	if eng.Now() != 1000 {
		t.Fatalf("completed at %v, want 1000", eng.Now())
	}
	if x.Busy() {
		t.Fatal("still busy after completion")
	}
	if x.BusyTime() != 1000 {
		t.Fatalf("busy time = %v", x.BusyTime())
	}
}

func TestExecutorSpeedFactor(t *testing.T) {
	eng, m := newMachine(t, 1)
	x := m.Core(0).Exec
	x.Start("slow", 1000, 0.5, nil)
	eng.Run()
	if eng.Now() != 2000 {
		t.Fatalf("half-speed 1000ns finished at %v, want 2000", eng.Now())
	}
}

func TestExecutorPreemptResume(t *testing.T) {
	eng, m := newMachine(t, 1)
	x := m.Core(0).Exec
	done := false
	x.Start("job", 1000, 1.0, func() { done = true })
	eng.RunFor(400)
	remaining := x.Preempt()
	if remaining != 600 {
		t.Fatalf("remaining = %v, want 600", remaining)
	}
	if done {
		t.Fatal("onDone fired on preempt")
	}
	if x.Busy() {
		t.Fatal("busy after preempt")
	}
	// Resume the remainder later.
	eng.RunFor(100)
	x.Start("job", remaining, 1.0, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("resumed work never completed")
	}
	if eng.Now() != 1100 {
		t.Fatalf("finished at %v, want 1100", eng.Now())
	}
	if x.BusyTime() != 1000 {
		t.Fatalf("busy time = %v, want 1000", x.BusyTime())
	}
}

func TestExecutorPreemptIdle(t *testing.T) {
	_, m := newMachine(t, 1)
	if r := m.Core(0).Exec.Preempt(); r != 0 {
		t.Fatalf("preempt idle = %v", r)
	}
}

func TestExecutorDoubleStartPanics(t *testing.T) {
	_, m := newMachine(t, 1)
	x := m.Core(0).Exec
	x.Start("a", 100, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	x.Start("b", 100, 1, nil)
}

func TestExecutorSetSpeed(t *testing.T) {
	eng, m := newMachine(t, 1)
	x := m.Core(0).Exec
	x.Start("warming", 1000, 0.5, nil)
	eng.RunFor(1000) // 500 work done at half speed
	x.SetSpeed(1.0)  // remaining 500 at full speed
	eng.Run()
	if eng.Now() != 1500 {
		t.Fatalf("finished at %v, want 1500", eng.Now())
	}
}

func TestExecutorUtilization(t *testing.T) {
	eng, m := newMachine(t, 1)
	x := m.Core(0).Exec
	x.Start("j", 500, 1, nil)
	eng.RunUntil(1000)
	if u := x.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestExecutorZeroWork(t *testing.T) {
	eng, m := newMachine(t, 1)
	done := false
	m.Core(0).Exec.Start("nil", 0, 1, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("zero work never completed")
	}
}
