package hw

import (
	"fmt"

	"coregap/internal/sim"
)

// Executor runs at most one compute context on a core at a time, with
// preemption. Work is measured in nanoseconds of full-speed execution;
// the owner may run it at a reduced speed factor to model cold
// microarchitectural state after interference.
//
// The executor is mechanism only: host scheduler and RMM decide what runs
// and at which speed.
type Executor struct {
	eng  *sim.Engine
	core *Core

	running   bool
	label     string
	remaining sim.Duration
	speed     float64
	startedAt sim.Time
	ev        sim.Event
	onDone    func()

	busySince sim.Time
	busyTotal sim.Duration
}

func newExecutor(eng *sim.Engine, core *Core) *Executor {
	return &Executor{eng: eng, core: core, speed: 1}
}

// reset idles the executor and zeroes its accounting for a new trial.
// Any pending completion event belongs to the engine's previous life
// and was discarded by the engine's own Reset.
func (x *Executor) reset() {
	x.running = false
	x.label = ""
	x.remaining = 0
	x.speed = 1
	x.startedAt = 0
	x.ev = sim.Event{}
	x.onDone = nil
	x.busySince = 0
	x.busyTotal = 0
}

// Busy reports whether a context is currently running.
func (x *Executor) Busy() bool { return x.running }

// Label reports the running context's label ("" when idle).
func (x *Executor) Label() string {
	if !x.running {
		return ""
	}
	return x.label
}

// BusyTime reports the cumulative time this core spent executing.
func (x *Executor) BusyTime() sim.Duration {
	total := x.busyTotal
	if x.running {
		total += x.eng.Now().Sub(x.busySince)
	}
	return total
}

// Utilization reports BusyTime divided by elapsed simulation time.
func (x *Executor) Utilization() float64 {
	now := x.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(x.BusyTime()) / float64(now)
}

// Start begins executing `work` nanoseconds of compute at the given speed
// factor (1.0 = full speed); onDone fires when the work completes. It
// panics if the executor is already busy — owners must Preempt first;
// double-dispatch always indicates a scheduling bug worth failing loudly.
func (x *Executor) Start(label string, work sim.Duration, speed float64, onDone func()) {
	if x.running {
		panic(fmt.Sprintf("hw: core %d executor busy with %q, cannot start %q",
			x.core.id, x.label, label))
	}
	if speed <= 0 {
		panic("hw: non-positive speed factor")
	}
	if work < 0 {
		work = 0
	}
	x.running = true
	x.label = label
	x.remaining = work
	x.speed = speed
	x.startedAt = x.eng.Now()
	x.busySince = x.eng.Now()
	x.onDone = onDone
	x.schedule()
}

func (x *Executor) schedule() {
	wall := sim.Duration(float64(x.remaining) / x.speed)
	x.ev = x.eng.After(wall, "exec:"+x.label, x.complete)
}

func (x *Executor) complete() {
	x.ev = sim.Event{}
	x.busyTotal += x.eng.Now().Sub(x.busySince)
	x.running = false
	done := x.onDone
	x.onDone = nil
	if done != nil {
		done()
	}
}

// consumed reports how much work has been executed since startedAt.
func (x *Executor) consumed() sim.Duration {
	elapsed := x.eng.Now().Sub(x.startedAt)
	return sim.Duration(float64(elapsed) * x.speed)
}

// Preempt stops the running context and reports the work remaining; the
// onDone callback will not fire. Preempting an idle executor returns 0.
func (x *Executor) Preempt() sim.Duration {
	if !x.running {
		return 0
	}
	x.eng.Cancel(x.ev)
	x.ev = sim.Event{}
	done := x.consumed()
	if done > x.remaining {
		done = x.remaining
	}
	x.remaining -= done
	x.busyTotal += x.eng.Now().Sub(x.busySince)
	x.running = false
	x.onDone = nil
	return x.remaining
}

// SetSpeed changes the speed factor of the running context (for example,
// when its working set warms up). A no-op when idle.
func (x *Executor) SetSpeed(speed float64) {
	if !x.running {
		return
	}
	if speed <= 0 {
		panic("hw: non-positive speed factor")
	}
	// Account for work done so far, then re-schedule the remainder.
	done := x.consumed()
	if done > x.remaining {
		done = x.remaining
	}
	x.remaining -= done
	x.startedAt = x.eng.Now()
	x.speed = speed
	x.eng.Cancel(x.ev)
	x.schedule()
}
