// Package hw models the physical machine: cores with security worlds and
// power states, inter-processor interrupts, per-core timers, and the
// machine-wide microarchitectural state. It corresponds to the Armv9
// platform (with RME) the paper's design targets, minus anything the
// higher layers do not observe.
//
// The model enforces physics, not policy: any software layer may ask to
// run anything anywhere. Policy (who may run where) belongs to the
// security monitor and host kernel built on top, which is exactly the
// paper's software-only premise.
package hw

import (
	"fmt"

	"coregap/internal/granule"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// Cross-subsystem perf counters for the machine edges every experiment
// crosses: world switches, interrupt traffic, shared-cache pressure.
var (
	cWorldSwitch = sim.DefineCounter("hw.world_switches")
	cIPISent     = sim.DefineCounter("hw.ipis")
	cIRQSent     = sim.DefineCounter("hw.irqs")
	cLLCFill     = sim.DefineCounter("uarch.llc_fills")
	cLLCEvict    = sim.DefineCounter("uarch.llc_evictions")
	cFlush       = sim.DefineCounter("uarch.flushes")
)

// CoreID identifies a physical core.
type CoreID int

// NoCore is the absent-core sentinel.
const NoCore CoreID = -1

// World is the security state a core currently executes in.
type World int

// Security worlds (Arm CCA terminology; TDX's SEAM and CoVE's confidential
// mode are the same concept — Table 1 of the paper).
const (
	NormalWorld World = iota // host kernel and userspace
	RealmWorld               // RMM and confidential VMs
	RootWorld                // EL3 trusted firmware
)

func (w World) String() string {
	switch w {
	case NormalWorld:
		return "normal"
	case RealmWorld:
		return "realm"
	case RootWorld:
		return "root"
	default:
		return fmt.Sprintf("world(%d)", int(w))
	}
}

// PowerState is a core's hotplug state from the host's point of view.
type PowerState int

// Power states.
const (
	// Online: under host-kernel scheduler control.
	Online PowerState = iota
	// Offline: hotplugged out and halted (normal Linux hotplug endpoint).
	Offline
	// DedicatedRealm: hotplugged out of the host and handed to the
	// security monitor — the paper's modification to the hotplug path
	// (§4.2): instead of halting, the core jumps into realm world.
	DedicatedRealm
)

func (p PowerState) String() string {
	switch p {
	case Online:
		return "online"
	case Offline:
		return "offline"
	case DedicatedRealm:
		return "dedicated-realm"
	default:
		return fmt.Sprintf("power(%d)", int(p))
	}
}

// IRQ is an interrupt number. 0..15 are SGIs (IPIs) as on the Arm GIC.
type IRQ int

// Architectural interrupt numbers used by the models.
const (
	// SGIs 0..6 are "reserved by Linux" (the paper notes 7 of 16 are
	// taken); we model the ones the design needs.
	IPIReschedule IRQ = 0 // host scheduler kick
	IPICall       IRQ = 1 // smp_call_function
	IPIGuestExit  IRQ = 7 // our addition: CVM exit notification (§4.3)
	IPIHostToRMM  IRQ = 8 // our addition: host requests attention of RMM core

	IRQVTimer IRQ = 27 // virtual timer PPI
	IRQPTimer IRQ = 30 // physical timer PPI
	// Device interrupt numbers (SPIs) start at 32.
	SPIBase IRQ = 32
)

// IsSGI reports whether the IRQ is an inter-processor interrupt.
func (i IRQ) IsSGI() bool { return i >= 0 && i < 16 }

// IRQHandler receives interrupts delivered to a core.
type IRQHandler func(from CoreID, irq IRQ)

// ExecRecord is one entry of a core's execution audit log.
type ExecRecord struct {
	At     sim.Time
	Domain uarch.DomainID
	World  World
}

// Core is one physical core.
type Core struct {
	id   CoreID
	mach *Machine

	world World
	power PowerState

	// Uarch is the core's private microarchitectural state.
	Uarch *uarch.CoreState

	// Exec is the core's compute executor (one context at a time).
	Exec *Executor

	handler IRQHandler

	curDomain uarch.DomainID
	log       []ExecRecord
	maxLog    int
}

// reset returns the core to its just-built state: normal world, online,
// no IRQ handler, empty audit log, cold (but capacity-retaining)
// microarchitectural structures, and an idle executor.
func (c *Core) reset(logDepth int) {
	c.world = NormalWorld
	c.power = Online
	c.handler = nil
	c.curDomain = uarch.DomainNone
	c.log = c.log[:0]
	c.maxLog = logDepth
	c.Uarch.Reset()
	c.Exec.reset()
}

// ID reports the core's identity.
func (c *Core) ID() CoreID { return c.id }

// World reports the core's current security world.
func (c *Core) World() World { return c.world }

// Power reports the core's hotplug state.
func (c *Core) Power() PowerState { return c.power }

// CurrentDomain reports the security domain last recorded as executing.
func (c *Core) CurrentDomain() uarch.DomainID { return c.curDomain }

// SetIRQHandler installs the interrupt handler for whoever owns the core
// (host kernel in normal world, RMM in realm world).
func (c *Core) SetIRQHandler(h IRQHandler) { c.handler = h }

// SwitchWorld performs a world switch on this core, returning its modelled
// direct cost (the EL3 round trip). The caller is responsible for any
// mitigation flushing; the paper's point is precisely that those flushes
// are policy, applied (or not) by trusted firmware.
func (c *Core) SwitchWorld(to World) sim.Duration {
	if c.world == to {
		return 0
	}
	c.world = to
	c.mach.eng.Count(cWorldSwitch)
	c.mach.eng.Trace().Span(sim.TCWorld, "hw.world_switch", int32(c.id), c.mach.worldSwitchCost, int64(to))
	return c.mach.worldSwitchCost
}

// FlushMitigations applies the transient-execution mitigation flush
// sequence to this core's private structures and returns its time cost.
// Prefer this over calling Uarch.FlushMitigations directly: the core
// knows the machine, so the flush lands in counters and the trace.
func (c *Core) FlushMitigations(costs uarch.FlushCosts) sim.Duration {
	d := c.Uarch.FlushMitigations(costs)
	c.mach.eng.Count(cFlush)
	c.mach.eng.Trace().Span(sim.TCUarch, "uarch.flush_mitigations", int32(c.id), d, 0)
	return d
}

// FlushAll architecturally flushes every per-core structure (the full
// world-switch scrub), with the same observability as FlushMitigations.
func (c *Core) FlushAll(costs uarch.FlushCosts) sim.Duration {
	d := c.Uarch.FlushAll(costs)
	c.mach.eng.Count(cFlush)
	c.mach.eng.Trace().Span(sim.TCUarch, "uarch.flush_all", int32(c.id), d, 0)
	return d
}

// RecordExecution notes that domain d executed on this core for the
// purposes of the security audit and microarchitectural state, touching
// per-core structures with the given footprint and secret fraction.
func (c *Core) RecordExecution(d uarch.DomainID, footprint, secretFrac float64) {
	c.curDomain = d
	c.Uarch.Touch(d, footprint, secretFrac, c.mach.tagSrc)
	if len(c.log) < c.maxLog {
		c.log = append(c.log, ExecRecord{At: c.mach.eng.Now(), Domain: d, World: c.world})
	}
}

// ExecLog returns the core's execution audit log (bounded).
func (c *Core) ExecLog() []ExecRecord { return c.log }

// DomainsObserved reports the distinct domains that ever executed on the
// core, in first-seen order. Tests use this to verify the core-gapping
// invariant: a dedicated core sees only {monitor, its guest}.
func (c *Core) DomainsObserved() []uarch.DomainID {
	var out []uarch.DomainID
	seen := map[uarch.DomainID]bool{}
	for _, r := range c.log {
		if !seen[r.Domain] {
			seen[r.Domain] = true
			out = append(out, r.Domain)
		}
	}
	return out
}

// Machine is the whole physical platform.
type Machine struct {
	eng    *sim.Engine
	cores  []*Core
	shared *uarch.SharedState
	gpt    *granule.Table
	tagSrc *sim.Source

	// all stashes every core ever built for this machine; Reset re-views
	// cores as a prefix of it, so a pooled machine cycling between
	// trials of different shapes never rebuilds core state.
	all []*Core

	ipiLatency      sim.Duration
	worldSwitchCost sim.Duration
	freqGHz         float64
}

// Config sizes a machine.
type Config struct {
	Cores           int
	MemBytes        uint64
	IPILatency      sim.Duration // physical SGI delivery latency
	WorldSwitchCost sim.Duration // one EL3-mediated world transition
	FreqGHz         float64
	ExecLogDepth    int // per-core audit-log bound (0 = default)
}

// DefaultConfig models the evaluation platform: an AmpereOne-class SoC,
// 3 GHz, no SMT (§5.1; threaded processors would dedicate all sibling
// threads of a core together, §4.2 footnote).
func DefaultConfig(cores int) Config {
	return Config{
		Cores:           cores,
		MemBytes:        16 << 30,
		IPILatency:      500 * sim.Nanosecond,
		WorldSwitchCost: 1200 * sim.Nanosecond,
		FreqGHz:         3.0,
		ExecLogDepth:    4096,
	}
}

// NewMachine builds a machine.
func NewMachine(eng *sim.Engine, cfg Config) *Machine {
	if cfg.Cores <= 0 {
		panic("hw: machine with no cores")
	}
	if cfg.ExecLogDepth <= 0 {
		cfg.ExecLogDepth = 4096
	}
	m := &Machine{
		eng:             eng,
		shared:          uarch.NewSharedState(131072, 16),
		gpt:             granule.NewTable(cfg.MemBytes).Bind(eng),
		tagSrc:          eng.Source("hw.tags"),
		ipiLatency:      cfg.IPILatency,
		worldSwitchCost: cfg.WorldSwitchCost,
		freqGHz:         cfg.FreqGHz,
	}
	for i := 0; i < cfg.Cores; i++ {
		m.all = append(m.all, m.newCore(CoreID(i), cfg.ExecLogDepth))
	}
	m.cores = m.all
	return m
}

func (m *Machine) newCore(id CoreID, logDepth int) *Core {
	c := &Core{
		id:     id,
		mach:   m,
		Uarch:  uarch.NewCoreState(),
		maxLog: logDepth,
	}
	c.Exec = newExecutor(m.eng, c)
	return c
}

// Reset rewinds the machine to the state NewMachine(eng, cfg) would
// produce, reusing every backing allocation: core microarchitectural
// buffers, the granule table, and the shared socket state. The engine
// must have been Reset by the caller first (sources reseed in place, so
// the machine's tag source stays valid). Cores beyond a smaller
// cfg.Cores are kept in reserve; a larger cfg grows the stash once.
func (m *Machine) Reset(cfg Config) {
	if cfg.Cores <= 0 {
		panic("hw: machine with no cores")
	}
	if cfg.ExecLogDepth <= 0 {
		cfg.ExecLogDepth = 4096
	}
	m.shared.Reset()
	m.gpt.Reset(cfg.MemBytes)
	m.ipiLatency = cfg.IPILatency
	m.worldSwitchCost = cfg.WorldSwitchCost
	m.freqGHz = cfg.FreqGHz
	for len(m.all) < cfg.Cores {
		m.all = append(m.all, m.newCore(CoreID(len(m.all)), cfg.ExecLogDepth))
	}
	m.cores = m.all[:cfg.Cores]
	for _, c := range m.cores {
		c.reset(cfg.ExecLogDepth)
	}
}

// Engine reports the machine's simulation engine.
func (m *Machine) Engine() *sim.Engine { return m.eng }

// NumCores reports the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core id; it panics on an invalid id (modelling bug).
func (m *Machine) Core(id CoreID) *Core {
	if id < 0 || int(id) >= len(m.cores) {
		panic(fmt.Sprintf("hw: no core %d", id))
	}
	return m.cores[id]
}

// Cores returns all cores.
func (m *Machine) Cores() []*Core { return m.cores }

// Shared returns the socket-shared microarchitectural state.
func (m *Machine) Shared() *uarch.SharedState { return m.shared }

// GPT returns the granule protection table.
func (m *Machine) GPT() *granule.Table { return m.gpt }

// IPILatency reports the physical IPI delivery latency.
func (m *Machine) IPILatency() sim.Duration { return m.ipiLatency }

// SendIPI delivers irq from core "from" to core "to" after the physical
// delivery latency. Delivery invokes the *owner's* handler installed at
// delivery time — if ownership changed in flight, the new owner gets it,
// as on real hardware.
func (m *Machine) SendIPI(from, to CoreID, irq IRQ) {
	target := m.Core(to)
	m.eng.Count(cIPISent)
	m.eng.Trace().Span(sim.TCIRQ, "hw.ipi", int32(to), m.ipiLatency, int64(irq))
	m.eng.After(m.ipiLatency, fmt.Sprintf("ipi%d->%d", from, to), func() {
		if target.handler != nil {
			target.handler(from, irq)
		}
	})
}

// DeliverIRQ delivers a device interrupt (SPI) to a core immediately
// after the routing latency; the distributor model in package gic decides
// the target core.
func (m *Machine) DeliverIRQ(to CoreID, irq IRQ) {
	target := m.Core(to)
	m.eng.Count(cIRQSent)
	m.eng.Trace().Span(sim.TCIRQ, "hw.irq", int32(to), m.ipiLatency, int64(irq))
	m.eng.After(m.ipiLatency, fmt.Sprintf("irq%d@%d", int(irq), to), func() {
		if target.handler != nil {
			target.handler(NoCore, irq)
		}
	})
}

// SetPower transitions a core's hotplug state. The transition itself is
// modelled as instantaneous; the host's hotplug *procedure* (task
// migration, IRQ retargeting) is modelled in package host where it
// belongs.
func (m *Machine) SetPower(id CoreID, p PowerState) {
	m.Core(id).power = p
}

// OnlineCores reports the cores currently under host control.
func (m *Machine) OnlineCores() []CoreID {
	var out []CoreID
	for _, c := range m.cores {
		if c.power == Online {
			out = append(out, c.id)
		}
	}
	return out
}

// DedicatedCores reports the cores handed to realm world.
func (m *Machine) DedicatedCores() []CoreID {
	var out []CoreID
	for _, c := range m.cores {
		if c.power == DedicatedRealm {
			out = append(out, c.id)
		}
	}
	return out
}

// TouchShared models domain d filling socket-shared structures from any
// core (LLC footprint and, when usesStaging, the staging buffer).
func (m *Machine) TouchShared(d uarch.DomainID, footprint float64, usesStaging bool) {
	evicted := m.shared.TouchShared(d, footprint, usesStaging, m.tagSrc)
	m.eng.Count(cLLCFill)
	if evicted > 0 {
		m.eng.CountN(cLLCEvict, uint64(evicted))
		m.eng.Trace().Emit(sim.TCUarch, "uarch.llc_evict", sim.LaneGlobal, int64(evicted))
	}
}
