package core

import (
	"coregap/internal/guest"
	"coregap/internal/hw"
	"coregap/internal/rpc"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// This file is the core-gapped execution path (§4.2-§4.4): the guest runs
// directly on its dedicated core under monitor control; every exit is a
// cross-core RPC to the host core; interrupt delegation handles timer and
// IPI traffic locally.

// installRMMCoreHandler takes over the dedicated core's interrupt
// delivery for the monitor: after the hotplug handoff, the host never
// handles another interrupt on this core. The only interrupt the monitor
// expects is the host's doorbell requesting a guest exit (Fig. 5).
func (v *VCPU) installRMMCoreHandler() {
	core := v.node().Mach.Core(v.dcore)
	core.SetIRQHandler(func(from hw.CoreID, irq hw.IRQ) {
		if irq == hw.IPIHostToRMM {
			v.onHostKick()
		}
	})
	core.SwitchWorld(hw.RealmWorld)
}

// postRunCall is the host-side REC-enter: post the run request into
// shared memory; the monitor's poll loop on the (idle) dedicated core
// picks it up after the propagation delay and enters the guest.
func (v *VCPU) postRunCall() {
	if v.halted || v.stopped {
		return
	}
	p := v.params()
	// A requested core migration commits between run calls (§3's coarse
	// rebinding): the monitor validates, wipes the old core, and the
	// next entry lands on the new one.
	v.applyPendingRebind()
	// Interrupts the host wants delivered ride along in the run call's
	// virtual interrupt list (Fig. 5 step 1); any kick that raced with a
	// self-initiated exit is folded in here.
	if len(v.kickQueue) > 0 {
		v.pendingInj = append(v.pendingInj, v.kickQueue...)
		v.kickQueue = nil
		v.kickRequested = false
	}
	v.mb.Post("run", p.Transport.Prop)
	v.eng().After(p.Transport.PickupLatency(), v.mb.Name()+":pickup", func() {
		if v.stopped {
			return
		}
		if _, ok := v.mb.TryTake(); ok {
			v.enterGuest()
		}
	})
}

// enterGuest is the monitor-side REC entry on the dedicated core.
func (v *VCPU) enterGuest() {
	n := v.node()
	p := v.params()
	if err := n.Mon.CheckEnter(v.rec, v.dcore); err != nil {
		// Orchestration never violates the binding; a failure here is a
		// modelling bug and must be loud.
		panic("core: CheckEnter failed: " + err.Error())
	}
	n.Mon.NoteEnter(v.rec)
	n.Eng.Count(cRECEnter)
	n.Eng.Trace().Emit(sim.TCExit, "core.rec_enter", int32(v.dcore), int64(v.idx))
	if v.haveExitStamp {
		n.Met.Lat(v.vm.name+".runtorun", n.Eng.Now(), n.Eng.Now().Sub(v.exitCompletedAt))
		v.haveExitStamp = false
	}
	// Context restore on the dedicated core, then guest execution.
	v.eng().After(p.CtxSaveWipe, "ctx-restore", func() {
		if v.stopped {
			return
		}
		v.inGuest = true
		v.epoch++
		v.startTimers()
		n.Mach.Core(v.dcore).RecordExecution(v.vm.domain, v.footprint(), 0.02)

		// Deliver interrupts the host passed in the run call.
		inj := v.pendingInj
		v.pendingInj = nil
		var handlerCost sim.Duration
		for _, ev := range inj {
			v.deliverEvent(ev)
			handlerCost += p.GuestIRQHandle
		}
		epoch := v.epoch
		proceed := func() {
			if v.stopped || !v.inGuest || v.epoch != epoch {
				// An exit intervened while the handler cost elapsed;
				// the re-entry path owns the continuation now.
				return
			}
			if v.tickEOIPending {
				// Second exit of a non-delegated timer tick.
				v.tickEOIPending = false
				v.exitToHost(exitInfo{reason: ExitTimer})
				return
			}
			v.resumeGuest() // WFI guests simply keep sitting on their core
		}
		if handlerCost > 0 {
			v.eng().After(handlerCost, "irq-handlers", proceed)
		} else {
			proceed()
		}
	})
}

// advance interprets the program's next action on the dedicated core.
func (v *VCPU) advance() {
	if v.stopped || !v.inGuest {
		return
	}
	if v.waitIO || v.idle {
		return
	}
	if v.node().Mach.Core(v.dcore).Exec.Busy() {
		// The guest is already executing: a racing continuation (e.g. a
		// delegated tick overlapping an entry's handler window) has
		// nothing left to do.
		return
	}
	if !v.hasCur {
		v.cur = v.vm.prog.Next(v.idx)
		v.hasCur = true
	}
	switch v.cur.Kind {
	case guest.ActCompute:
		v.remWork = sim.Duration(float64(v.cur.Work) * v.encFactor())
		v.hasCur = false // consumed; remWork tracks the remainder
		v.startGuestCompute()

	case guest.ActIO:
		req := v.cur.Req
		v.hasCur = false
		if req.Dev == guest.SRIOVNet {
			// Pass-through doorbell: a device register write, no trap.
			v.remWork = 200
			v.afterCompute = func() {
				v.vm.VMM.VF.Submit(v.idx, req)
				if req.Sync {
					v.waitIO = true
				} else {
					v.advance()
				}
			}
			v.startGuestCompute()
			return
		}
		// virtio doorbell traps to the host.
		if req.Sync {
			v.waitIO = true
		}
		v.exitToHost(exitInfo{reason: ExitMMIO, req: req})

	case guest.ActVIPI:
		target := v.cur.Target
		v.hasCur = false
		if target >= 0 && target < len(v.vm.vipiSentAt) {
			v.vm.vipiSentAt[target] = v.eng().Now()
		}
		if v.node().Opts.DelegateVIPI {
			v.delegatedVIPI(target)
		} else {
			v.exitToHost(exitInfo{reason: ExitVIPI, target: target})
		}

	case guest.ActWFI:
		v.hasCur = false
		v.idle = true
		// The core stays in the guest at a WFI: no host interaction at
		// all, one of the structural wins of dedicated cores.

	case guest.ActHalt:
		v.hasCur = false
		v.halted = true
		v.stopTimers()
		v.exitToHost(exitInfo{reason: ExitHalt})
	}
}

// afterCompute optionally overrides the continuation of the current
// compute slice (used for doorbell costs and handler sequences).
// It is consumed on completion.

// startGuestCompute runs v.remWork on the dedicated core.
func (v *VCPU) startGuestCompute() {
	core := v.node().Mach.Core(v.dcore)
	if core.Exec.Busy() {
		// A concurrent continuation (entry path, delegated interrupt
		// handler) already resumed the guest; the first wins.
		return
	}
	core.Exec.Start(v.mb.Name()+":guest", v.remWork, 1.0, func() {
		v.remWork = 0
		cont := v.afterCompute
		v.afterCompute = nil
		if v.stopped {
			return
		}
		if cont != nil {
			cont()
		} else {
			v.advance()
		}
	})
}

// pauseGuestCompute preempts the guest, remembering remaining work.
func (v *VCPU) pauseGuestCompute() {
	core := v.node().Mach.Core(v.dcore)
	if core.Exec.Busy() {
		v.remWork = core.Exec.Preempt()
	}
}

// resumeGuest continues after a monitor-local interruption. It is safe
// against racing continuations: if the guest is already running it does
// nothing, and a compute slice preempted exactly at its completion
// boundary still runs its pending continuation.
func (v *VCPU) resumeGuest() {
	if v.stopped || !v.inGuest || v.idle || v.waitIO {
		return
	}
	if v.node().Mach.Core(v.dcore).Exec.Busy() {
		return
	}
	if v.remWork > 0 {
		v.startGuestCompute()
		return
	}
	if cont := v.afterCompute; cont != nil {
		v.afterCompute = nil
		cont()
		return
	}
	v.advance()
}

// exitToHost stops guest execution and performs the monitor's exit path:
// save and wipe context, write the exit record to shared memory, and
// notify the host core by IPI (unless the busy-wait ablation is polling).
func (v *VCPU) exitToHost(info exitInfo) {
	n := v.node()
	p := v.params()
	v.pauseGuestCompute()
	v.inGuest = false
	v.epoch++
	v.countExit(info.reason)
	n.Mon.NoteExit(v.rec)

	v.eng().After(p.CtxSaveWipe, "ctx-save", func() {
		if v.stopped {
			return
		}
		v.mb.Complete(info, p.Transport.Prop)
		v.exitCompletedAt = n.Eng.Now()
		v.haveExitStamp = true
		if !n.Opts.BusyWaitRPC {
			n.Mach.SendIPI(v.dcore, v.vm.assign.hostCore, hw.IPIGuestExit)
		}
	})
}

// hostPollOnce checks this vCPU's channel for a completed exit and, if
// one is present, dispatches handling onto the vCPU thread. Called from
// the wake-up thread (IPI mode) or from the vCPU thread's own poll loop
// (busy-wait mode).
func (v *VCPU) hostPollOnce() {
	resp, ok := v.mb.TryResponse()
	if !ok {
		return
	}
	info := resp.(exitInfo)
	n := v.node()
	work := v.hostExitWork(info)
	n.Kern.Submit(v.thread, "exit:"+info.reason.String(), work, func() {
		v.finishExit(info)
	})
}

// hostExitWork is the host-side CPU cost of handling one exit. Every
// path starts with the vCPU-thread wake (the run call returning) and the
// kernel exit decode.
func (v *VCPU) hostExitWork(info exitInfo) sim.Duration {
	p := v.params()
	base := p.SchedWake + p.KVMExitKernel
	switch info.reason {
	case ExitTimer, ExitVIPI, ExitMgmtIRQ:
		// Interrupt-management exits bounce through GIC emulation for
		// realm VMs (no in-kernel vGIC fast path).
		return base + p.GapGICEmul
	case ExitKick:
		return base + p.InjectKick
	case ExitMMIO:
		// Device doorbells bounce through the userspace VMM (no
		// ioeventfd in the CCA host stack) — a large part of why
		// emulated I/O is core gapping's worst case (§5.3).
		return base + p.UserMMIO
	case ExitMisc:
		return base + p.UserMMIO // userspace emulation round trip
	default: // ExitHalt
		return base
	}
}

// finishExit completes host-side exit handling and re-enters the guest.
func (v *VCPU) finishExit(info exitInfo) {
	if v.stopped {
		return
	}
	switch info.reason {
	case ExitMMIO:
		v.vm.VMM.Submit(v.idx, info.req)
	case ExitVIPI:
		// Non-delegated guest IPI: the host must force the target vCPU
		// out and pass the interrupt on its next run call.
		if info.target >= 0 && info.target < len(v.vm.vcpus) {
			v.vm.vcpus[info.target].hostRequestInjection(guest.Event{
				Kind: guest.EvVIPI, From: v.idx,
			})
		}
	case ExitKick:
		v.pendingInj = append(v.pendingInj, v.kickQueue...)
		v.kickQueue = nil
		v.kickRequested = false
	case ExitHalt:
		return // never re-entered
	}
	if v.vm.suspended {
		// Host-initiated suspend: park instead of re-entering. The
		// monitor keeps the core dedicated and the context sealed.
		v.parked = true
		return
	}
	v.postRunCall()
}

// hostRequestInjection queues an event for a guest and kicks its vCPU out
// so the interrupt can be passed on the next run call (Fig. 5: "the KVM
// host can still request exits ... by sending an IPI").
func (v *VCPU) hostRequestInjection(ev guest.Event) {
	if v.halted || v.stopped {
		return
	}
	n := v.node()
	v.kickQueue = append(v.kickQueue, ev)
	work := v.params().InjectKick
	if ev.Kind == guest.EvVIPI {
		// Cross-vCPU interrupt without delegation: the host must also
		// synchronize the target's virtual interrupt state.
		work += v.params().VGICSync
	}
	if v.kickRequested {
		return
	}
	v.kickRequested = true
	n.Kern.Submit(v.thread, "inject-kick", work, func() {
		if v.stopped {
			return
		}
		// If the guest is currently in (or entering) a run call, doorbell
		// its core; the monitor will exit with ExitKick. Otherwise the
		// events ride along on the next entry.
		if v.mb.State() == rpc.Serving {
			n.Mach.SendIPI(v.vm.assign.hostCore, v.dcore, hw.IPIHostToRMM)
		} else {
			v.pendingInj = append(v.pendingInj, v.kickQueue...)
			v.kickQueue = nil
			v.kickRequested = false
		}
	})
}

// onHostKick runs on the dedicated core when the host doorbells it.
func (v *VCPU) onHostKick() {
	if v.stopped || v.halted {
		return
	}
	v.node().Eng.Count(cHostKick)
	if !v.inGuest {
		return // already exited; the host will see the response
	}
	v.exitToHost(exitInfo{reason: ExitKick})
}

// onTick handles one virtual-timer tick (gapped mode).
func (v *VCPU) onTick() {
	if v.halted || v.stopped {
		return
	}
	if !v.gapped() {
		v.onTickShared()
		return
	}
	n := v.node()
	p := v.params()
	n.Met.Counter(v.vm.name + ".ticks").Inc()

	if n.Opts.DelegateTimer {
		// Monitor-local emulation (§4.4): trap, re-arm, inject, guest
		// handler — all on the dedicated core, no host interaction.
		n.Eng.Count(cTickDeleg)
		n.Eng.Trace().Emit(sim.TCIRQ, "core.tick_delegated", int32(v.dcore), int64(v.idx))
		n.Met.Counter(v.vm.name + ".ticks.delegated").Inc()
		if !v.inGuest {
			return // vCPU between run calls; tick state folded into entry
		}
		v.pauseGuestCompute()
		cost := p.RMMTimerHandle + p.GuestIRQHandle
		n.Mach.Core(v.dcore).RecordExecution(uarch.DomainMonitor, 0.02, 0)
		epoch := v.epoch
		v.eng().After(cost, "tick-delegated", func() {
			if v.stopped || !v.inGuest || v.epoch != epoch {
				// An exit (and possibly re-entry) intervened; the tick
				// folded into the exit path.
				return
			}
			v.vm.prog.Deliver(v.idx, guest.Event{Kind: guest.EvTimer})
			if v.idle {
				// Timer wake-up from WFI: re-evaluate the program.
				v.idle = false
				v.advance()
				return
			}
			v.resumeGuest()
		})
		return
	}

	// Without delegation each tick costs two exits (§4.4): the timer
	// interrupt itself, then the guest's EOI/re-arm trap after handling.
	if !v.inGuest {
		return
	}
	v.pendingInj = append(v.pendingInj, guest.Event{Kind: guest.EvTimer})
	v.tickEOIPending = true
	v.exitToHost(exitInfo{reason: ExitTimer})
}

// onResidual fires a background management/miscellaneous exit.
func (v *VCPU) onResidual(reason ExitReason) {
	if v.halted || v.stopped {
		return
	}
	p := v.params()
	rate := p.MgmtExitRate
	timer := v.mgmtTimer
	if reason == ExitMisc {
		rate = p.MiscExitRateDeleg
		if !v.node().Opts.DelegateTimer {
			rate = p.MiscExitRateNoDeleg
		}
		timer = v.miscTimer
	}
	timer.Arm(v.src.Exp(rateToMean(rate)))
	if v.inGuest && !v.idle {
		v.exitToHost(exitInfo{reason: reason})
	}
}

// delegatedVIPI is the Table 3 fast path: the monitor traps the sender's
// ICC_SGI1R write, routes the interrupt itself, and pokes the target's
// dedicated core with a physical IPI — no host involvement (§4.4).
func (v *VCPU) delegatedVIPI(target int) {
	n := v.node()
	p := v.params()
	n.Eng.Count(cVIPIDeleg)
	n.Eng.Trace().Emit(sim.TCIRQ, "core.vipi_delegated", int32(v.dcore), int64(target))
	n.Met.Counter(v.vm.name + ".vipi.delegated").Inc()
	if target < 0 || target >= len(v.vm.vcpus) {
		v.advance()
		return
	}
	tgt := v.vm.vcpus[target]
	// Sender-side trap and routing cost in the monitor.
	v.remWork = 0
	v.eng().After(p.RMMVIPIHandle, "vipi-delegated", func() {
		if v.stopped {
			return
		}
		// Physical IPI to the target's dedicated core.
		v.eng().After(n.Mach.IPILatency(), "vipi-wire", func() {
			tgt.receiveDelegatedVIPI(v.idx)
		})
		v.advance() // sender continues immediately after the trap
	})
}

// receiveDelegatedVIPI injects a vIPI on the target's dedicated core.
func (v *VCPU) receiveDelegatedVIPI(from int) {
	if v.stopped || v.halted {
		return
	}
	p := v.params()
	if !v.inGuest {
		// Between run calls: deliver on next entry.
		v.pendingInj = append(v.pendingInj, guest.Event{Kind: guest.EvVIPI, From: from})
		return
	}
	v.pauseGuestCompute()
	epoch := v.epoch
	v.eng().After(p.RMMVIPIHandle+p.GuestIRQHandle, "vipi-deliver", func() {
		if v.stopped {
			return
		}
		if !v.inGuest || v.epoch != epoch {
			// The guest exited under us: deliver on its next entry so
			// the interrupt is never lost.
			v.pendingInj = append(v.pendingInj, guest.Event{Kind: guest.EvVIPI, From: from})
			return
		}
		if v.deliverEvent(guest.Event{Kind: guest.EvVIPI, From: from}) {
			v.advance()
			return
		}
		v.resumeGuest()
	})
}
