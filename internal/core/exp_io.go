package core

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vmm"
)

// Fig8Result carries the NetPIPE latency and throughput figures.
type Fig8Result struct {
	Latency    *trace.Figure // one-way latency (µs) vs message size
	Throughput *trace.Figure // Gbit/s vs message size
}

// netpipePoint runs one NetPIPE configuration and reports the mean RTT.
func netpipePoint(opts Options, dev guest.DeviceClass, msgBytes, rounds int, seed uint64) sim.Duration {
	const cores = 4 // small VM: 1 server vCPU is what NetPIPE exercises
	n := NewNode(cores, opts, DefaultParams(), seed)
	vcpus := 1
	np := guest.NewNetPIPE(dev, msgBytes, rounds)
	vm, err := n.NewVM("vm0", vcpus, np)
	if err != nil {
		panic(err)
	}

	peer := vmm.NewPeer(n.Eng, vm.VMM.Costs(), n.Met)
	hist := n.Met.Hist("netpipe.rtt")
	pp := vmm.NewPingPong(peer, msgBytes, rounds, hist, nil)
	switch dev {
	case guest.VirtioNet:
		peer.Connect(vm.VMM.Net.DeliverToGuest)
		vm.VMM.Net.ConnectPeer(pp.OnEcho)
	default:
		peer.Connect(vm.VMM.VF.DeliverToGuest)
		vm.VMM.VF.ConnectPeer(pp.OnEcho)
	}
	// Let the VM boot (hotplug handoff takes ~2 ms) before load starts.
	n.Eng.After(5*sim.Millisecond, "start-netpipe", pp.Start)
	n.RunUntilAllHalted(120 * sim.Second)
	// The guest halts after transmitting its final echo; drain the wire
	// so the client sees it.
	n.Eng.RunFor(5 * sim.Millisecond)
	if pp.Done() < rounds {
		panic(fmt.Sprintf("netpipe: only %d/%d rounds (%v %v %dB)",
			pp.Done(), rounds, opts.Mode, dev, msgBytes))
	}
	return hist.Mean()
}

// RunFig8 reproduces the NetPIPE figure: latency and throughput versus
// message size for virtio and SR-IOV interfaces, shared-core versus
// core-gapped.
func RunFig8(sizes []int, rounds int, seed uint64) Fig8Result {
	if len(sizes) == 0 {
		sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
	}
	if rounds <= 0 {
		rounds = 40
	}
	lat := trace.NewFigure("Figure 8", "NetPIPE TCP results", "message bytes", "latency us (one-way)")
	tput := trace.NewFigure("Figure 8b", "NetPIPE TCP throughput", "message bytes", "Gbit/s")

	configs := []struct {
		label string
		opts  Options
		dev   guest.DeviceClass
	}{
		{"virtio shared-core", Baseline(), guest.VirtioNet},
		{"virtio core-gapped", GappedDefault(), guest.VirtioNet},
		{"SR-IOV shared-core", Baseline(), guest.SRIOVNet},
		{"SR-IOV core-gapped", GappedDefault(), guest.SRIOVNet},
	}
	for _, c := range configs {
		for _, size := range sizes {
			rtt := netpipePoint(c.opts, c.dev, size, rounds, seed)
			lat.Series(c.label).Add(float64(size), rtt.Micros()/2)
			gbps := float64(size) * 8 / rtt.Seconds() / 1e9
			tput.Series(c.label).Add(float64(size), gbps)
		}
	}
	return Fig8Result{Latency: lat, Throughput: tput}
}

// RunFig9 reproduces the IOzone figure: synchronous O_DIRECT read/write
// throughput to a virtio block device versus record size.
func RunFig9(records []int, seed uint64) *trace.Figure {
	if len(records) == 0 {
		records = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
	}
	fig := trace.NewFigure("Figure 9", "IOzone sync I/O throughput (virtio-blk, O_DIRECT)",
		"record bytes", "MiB/s")

	for _, mode := range []struct {
		label string
		opts  Options
	}{
		{"shared-core", Baseline()},
		{"core-gapped", GappedDefault()},
	} {
		for _, write := range []bool{false, true} {
			op := "read"
			if write {
				op = "write"
			}
			for _, rec := range records {
				total := int64(rec) * 32
				n := NewNode(4, mode.opts, DefaultParams(), seed)
				z := guest.NewIOzone(rec, write, total)
				if _, err := n.NewVM("vm0", 1, z); err != nil {
					panic(err)
				}
				start := n.Eng.Now()
				end := n.RunUntilAllHalted(600 * sim.Second)
				if z.Moved() < total {
					panic(fmt.Sprintf("iozone stalled: %d/%d (%s %s %d)",
						z.Moved(), total, mode.label, op, rec))
				}
				fig.Series(mode.label+" "+op).Add(float64(rec), z.Throughput(end.Sub(start)))
			}
		}
	}
	return fig
}

// RunFig10 reproduces the kernel-build figure: wall-clock build time
// versus core count, with the build tree on a virtio disk. Core-gapped
// CVMs run with one fewer vCPU (equal-physical-cores accounting).
func RunFig10(coreCounts []int, jobs int, seed uint64) *trace.Figure {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8, 16}
	}
	if jobs <= 0 {
		jobs = 300
	}
	fig := trace.NewFigure("Figure 10", "Linux kernel build (virtio disk)",
		"cores", "build time s")

	for _, N := range coreCounts {
		if N < 2 {
			continue
		}
		for _, mode := range []struct {
			label string
			opts  Options
			vcpus int
		}{
			{"shared-core", Baseline(), N},
			{"core-gapped", GappedDefault(), N - 1},
		} {
			n := NewNode(N, mode.opts, DefaultParams(), seed)
			kb := guest.NewKBuild(jobs, mode.vcpus, 250*sim.Millisecond, n.Eng.Source("kbuild"))
			if _, err := n.NewVM("vm0", mode.vcpus, kb); err != nil {
				panic(err)
			}
			end := n.RunUntilAllHalted(3600 * sim.Second)
			if kb.Finished() < jobs {
				panic(fmt.Sprintf("kbuild incomplete: %d/%d", kb.Finished(), jobs))
			}
			fig.Series(mode.label).Add(float64(N), sim.Duration(end).Seconds())
		}
	}
	return fig
}
