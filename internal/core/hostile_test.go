package core

import (
	"testing"
	"testing/quick"

	"coregap/internal/guest"
	"coregap/internal/hw"
	"coregap/internal/rmm"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// These tests play the malicious hypervisor of the threat model (§2.4):
// the host controls resource allocation and scheduling, and tries every
// lever it legitimately holds to break the §3 isolation properties.

func TestHostileCoSchedulingAttack(t *testing.T) {
	// The §3 attack: run a victim CVM, then try to dispatch an
	// attacker's vCPU onto the victim's dedicated core via the monitor.
	n := NewNode(6, GappedDefault(), DefaultParams(), 17)
	victim := guest.NewCoreMark(2, 50*sim.Millisecond)
	vmV, err := n.NewVM("victim", 2, victim)
	if err != nil {
		t.Fatal(err)
	}
	attacker := guest.NewCoreMark(1, 50*sim.Millisecond)
	vmA, err := n.NewVM("attacker", 1, attacker)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)

	// The "hypervisor" asks the monitor directly (as a compromised KVM
	// would): every dispatch of the attacker's REC onto a victim core
	// must fail.
	aRec := vmA.Realm().RECs()[0]
	for _, core := range vmV.GuestCores() {
		if err := n.Mon.CheckEnter(aRec, core); err == nil {
			t.Fatalf("monitor allowed attacker vCPU on victim core %d", core)
		}
	}
	// And the victim's REC cannot be migrated onto the attacker's core.
	vRec := vmV.Realm().RECs()[0]
	if err := n.Mon.CheckEnter(vRec, vmA.GuestCores()[0]); err == nil {
		t.Fatal("monitor allowed victim vCPU migration onto attacker core")
	}
	n.RunUntilAllHalted(10 * sim.Second)
}

func TestHostileKickStorm(t *testing.T) {
	// The host can always interrupt a CVM "at inopportune moments"
	// (§1) — here it doorbells the guest thousands of times. The guest
	// must slow down (DoS is out of scope) but never lose work, leak, or
	// wedge the protocol.
	n := NewNode(3, GappedDefault(), DefaultParams(), 17)
	cm := guest.NewCoreMark(1, 30*sim.Millisecond)
	vm, err := n.NewVM("vm0", 1, cm)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.VCPUs()[0]
	storm := sim.NewTicker(n.Eng, "storm", 50*sim.Microsecond, func() {
		if !v.Halted() {
			v.hostRequestInjection(guest.Event{Kind: guest.EvTimer})
		}
	})
	n.Eng.After(5*sim.Millisecond, "start-storm", storm.Start)
	end := n.RunUntilAllHalted(10 * sim.Second)
	storm.Stop()
	if !cm.Done() {
		t.Fatalf("kick storm wedged the guest (at %v)\n%s", end, n.Met.String())
	}
	if n.Met.Counter("vm0.exits.kick").Value() < 100 {
		t.Fatal("storm did not actually force exits")
	}
	// The guest paid in time, not in isolation: only monitor+guest on
	// its core after dedication.
	assertCoreGap(t, n, vm)
}

func TestHostileReclaimAndDestroyRaces(t *testing.T) {
	n := NewNode(4, GappedDefault(), DefaultParams(), 17)
	cm := guest.NewCoreMark(2, 40*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)

	// Reclaim attempts while the CVM runs: all refused.
	for _, c := range vm.GuestCores() {
		if err := n.Mon.ReclaimCore(c); err == nil {
			t.Fatalf("reclaimed live CVM core %d", c)
		}
	}
	// Destroying the realm mid-run is the host's right (DoS); afterwards
	// the cores are reclaimable and carry no guest residue.
	if err := n.StopVM(vm); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)
	for _, c := range vm.GuestCores() {
		if n.Mon.IsDedicated(c) {
			t.Fatalf("core %d still dedicated after destroy", c)
		}
	}
}

func TestHostileRebindToVictimCore(t *testing.T) {
	// The host cannot use the rebinding extension to co-locate domains:
	// the planner refuses occupied targets, and even a direct monitor
	// call refuses a core bound to another REC.
	n := NewNode(6, GappedDefault(), DefaultParams(), 17)
	vmV, _ := n.NewVM("victim", 2, guest.NewCoreMark(2, 50*sim.Millisecond))
	vmA, _ := n.NewVM("attacker", 1, guest.NewCoreMark(1, 50*sim.Millisecond))
	n.Eng.RunFor(10 * sim.Millisecond)

	if err := n.RebindVCPU(vmA, 0, vmV.GuestCores()[0]); err == nil {
		t.Fatal("planner allowed rebind onto a victim core")
	}
	aRec := vmA.Realm().RECs()[0]
	if err := n.Mon.RebindRec(aRec, vmV.GuestCores()[0]); err != rmm.ErrCoreInUse {
		t.Fatalf("monitor rebind onto bound core: %v", err)
	}
	n.RunUntilAllHalted(10 * sim.Second)
}

// assertCoreGap checks property (b) of §3 on every dedicated core.
func assertCoreGap(t *testing.T, n *Node, vm *VM) {
	t.Helper()
	for _, c := range vm.GuestCores() {
		log := n.Mach.Core(c).ExecLog()
		sawGuest := false
		for _, r := range log {
			if r.Domain == vm.Domain() {
				sawGuest = true
			}
			if sawGuest && r.Domain != vm.Domain() && r.Domain != uarch.DomainMonitor {
				t.Fatalf("domain %v ran on dedicated core %d after guest start", r.Domain, c)
			}
		}
	}
}

// TestCoreGapInvariantProperty runs randomized multi-VM workloads and
// checks the isolation invariant afterwards: no two guest domains ever
// appear in the same core's execution log after dedication.
func TestCoreGapInvariantProperty(t *testing.T) {
	prop := func(seed uint16, sizesRaw [3]uint8) bool {
		n := NewNode(10, GappedDefault(), DefaultParams(), uint64(seed)+1)
		var vms []*VM
		for i, raw := range sizesRaw {
			size := int(raw)%3 + 1
			cm := guest.NewCoreMark(size, 20*sim.Millisecond)
			vm, err := n.NewVM(names[i], size, cm)
			if err != nil {
				continue // admission control may legitimately refuse
			}
			vms = append(vms, vm)
		}
		n.RunUntilAllHalted(10 * sim.Second)
		for _, c := range n.Mach.Cores() {
			guests := map[uarch.DomainID]bool{}
			for _, r := range c.ExecLog() {
				if r.Domain.IsGuest() {
					guests[r.Domain] = true
				}
			}
			if len(guests) > 1 {
				return false
			}
		}
		_ = vms
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

var names = []string{"alpha", "beta", "gamma"}

func TestHostileOversubscription(t *testing.T) {
	// Admission control bounds total dedicated cores; the host cannot
	// conjure capacity by asking repeatedly.
	n := NewNode(8, GappedDefault(), DefaultParams(), 17)
	admitted := 0
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		if _, err := n.NewVM(name, 2, guest.NewCoreMark(2, sim.Millisecond)); err == nil {
			admitted++
		}
	}
	if admitted != 3 { // 7 free cores / 2 per VM = 3 VMs
		t.Fatalf("admitted %d VMs on 7 free cores", admitted)
	}
	n.RunUntilAllHalted(10 * sim.Second)
	// Host never lost its own core.
	if n.Kern.OnlineCount() < 1 {
		t.Fatal("host has no cores")
	}
	if !contains(n.Mach.OnlineCores(), hw.CoreID(0)) {
		t.Fatal("host core 0 taken")
	}
}

func contains(ids []hw.CoreID, id hw.CoreID) bool {
	for _, c := range ids {
		if c == id {
			return true
		}
	}
	return false
}
