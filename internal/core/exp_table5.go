package core

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vmm"
)

// Table5Row is one Redis measurement.
type Table5Row struct {
	Op         guest.RedisOp
	Mode       string
	Throughput float64      // krequests/s
	Mean       sim.Duration // client-observed latency
	P95        sim.Duration
	P99        sim.Duration
}

// Table5Result carries all rows plus the rendered table.
type Table5Result struct {
	Table *trace.Table
	Rows  []Table5Row
}

// RunTable5 reproduces the Redis benchmark (Table 5): 50 closed-loop
// clients, 512-byte objects, SR-IOV networking, on a 16-core machine
// (16 vCPUs shared-core, 15 vCPUs core-gapped; Redis itself is
// single-threaded, so the extra vCPUs idle as on the real system).
func RunTable5(window sim.Duration, seed uint64) Table5Result {
	if window <= 0 {
		window = 1 * sim.Second
	}
	const clients = 50
	const reqBytes = 512

	measure := func(opts Options, vcpus int, op guest.RedisOp) Table5Row {
		n := NewNode(16, opts, DefaultParams(), seed)
		r := guest.NewRedis(guest.SRIOVNet)
		vm, err := n.NewVM("vm0", vcpus, r)
		if err != nil {
			panic(err)
		}
		peer := vmm.NewPeer(n.Eng, vm.VMM.Costs(), n.Met)
		peer.Connect(vm.VMM.VF.DeliverToGuest)
		hist := n.Met.Hist("redis.latency")
		lg := vmm.NewLoadGen(peer, clients, reqBytes,
			func(c int) int { return guest.EncodeOpTag(op, c) }, hist)
		vm.VMM.VF.ConnectPeer(lg.OnResponse)

		// Boot, warm up for 100 ms of load, then measure throughput over
		// a steady-state window. Latency percentiles cover the whole run
		// (the 100 ms warm-up is a small fraction of the window and
		// biases all configurations identically).
		n.Eng.After(5*sim.Millisecond, "start-load", lg.Start)
		n.Eng.RunUntil(sim.Time(105 * sim.Millisecond))
		warmupServed := lg.Served()
		n.Eng.RunUntil(sim.Time(105*sim.Millisecond + window))
		served := lg.Served() - warmupServed
		lg.Stop()

		mode := "shared core"
		if opts.Mode == Gapped {
			mode = "core gapped"
		}
		return Table5Row{
			Op:         op,
			Mode:       mode,
			Throughput: float64(served) / window.Seconds() / 1000,
			Mean:       hist.Mean(),
			P95:        hist.Percentile(95),
			P99:        hist.Percentile(99),
		}
	}

	var rows []Table5Row
	for _, op := range []guest.RedisOp{guest.OpSet, guest.OpGet, guest.OpLRange100} {
		rows = append(rows, measure(Baseline(), 16, op))
		rows = append(rows, measure(GappedDefault(), 15, op))
	}

	tb := trace.NewTable("Table 5", "Redis benchmark: 50 clients, 512-byte objects",
		"Throughput (krps)", "Mean (ms)", "p95 (ms)", "p99 (ms)")
	for _, r := range rows {
		tb.AddRow(fmt.Sprintf("%s %s", r.Op, r.Mode),
			fmt.Sprintf("%.1f", r.Throughput),
			fmt.Sprintf("%.2f", r.Mean.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P95.Seconds()*1000),
			fmt.Sprintf("%.2f", r.P99.Seconds()*1000))
	}
	return Table5Result{Table: tb, Rows: rows}
}
