package core

import (
	"fmt"

	"coregap/internal/granule"
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/rmm"
	"coregap/internal/rpc"
	"coregap/internal/sim"
	"coregap/internal/uarch"
	"coregap/internal/vmm"
)

// VM is one guest, in either execution mode.
type VM struct {
	node *Node
	name string
	prog guest.Program

	domain uarch.DomainID
	realm  *rmm.Realm // nil in SharedCore mode
	VMM    *vmm.VMM
	assign *assignment

	vcpus []*VCPU

	// wakeup is this VM's host core's wake-up thread (shared between
	// co-located VMs; owned by the node).
	wakeup *host.Thread

	// vipiSentAt timestamps in-flight guest IPIs per destination vCPU,
	// for the Table 3 deliver-and-acknowledge latency measurement.
	vipiSentAt []sim.Time

	// suspended marks a host-initiated suspension in progress (§7).
	suspended bool
}

// assignment is the planner decision realized on the node.
type assignment struct {
	guestCores []hw.CoreID
	hostCore   hw.CoreID
}

// Name reports the VM name.
func (vm *VM) Name() string { return vm.name }

// Domain reports the guest's security domain.
func (vm *VM) Domain() uarch.DomainID { return vm.domain }

// Realm reports the CVM's realm (nil for the shared-core baseline).
func (vm *VM) Realm() *rmm.Realm { return vm.realm }

// VCPUs reports the virtual CPUs.
func (vm *VM) VCPUs() []*VCPU { return vm.vcpus }

// HostCore reports the core servicing this VM's host-side threads
// (NoCore in the shared baseline, where they float).
func (vm *VM) HostCore() hw.CoreID {
	if vm.assign == nil {
		return hw.NoCore
	}
	return vm.assign.hostCore
}

// GuestCores reports the dedicated cores (nil in the shared baseline).
func (vm *VM) GuestCores() []hw.CoreID {
	if vm.assign == nil {
		return nil
	}
	return vm.assign.guestCores
}

func (vm *VM) counter(name string) {
	vm.node.Met.Counter(vm.name + "." + name).Inc()
}

// NewVM builds a guest running prog on vcpus virtual CPUs and starts it.
//
// In Gapped mode this performs the full paper §4.2 sequence: planner
// admission, CPU hotplug with realm handoff, realm construction through
// RMI (granule delegation, RD/REC creation, initial memory measurement,
// activation), vCPU-to-core binding, and the first run calls. In
// SharedCore mode it builds a plain KVM VM with floating vCPU threads.
func (n *Node) NewVM(name string, vcpus int, prog guest.Program) (*VM, error) {
	vm := &VM{node: n, name: name, prog: prog, vipiSentAt: make([]sim.Time, vcpus)}

	switch n.Opts.Mode {
	case Gapped:
		var err error
		if p := n.forkProduct(name, vcpus); p != nil {
			err = n.forkGapped(vm, vcpus, p)
		} else {
			err = n.setupGapped(vm, vcpus)
		}
		if err != nil {
			return nil, err
		}
	default:
		n.setupShared(vm, vcpus)
	}
	n.vms = append(n.vms, vm)
	return vm, nil
}

func (n *Node) setupGapped(vm *VM, vcpus int) error {
	// 1. Admission control and placement.
	a, err := n.Plan.Admit(vm.name, vcpus)
	if err != nil {
		return err
	}
	vm.assign = &assignment{guestCores: a.GuestCores, hostCore: a.HostCore}

	// When capturing a boot snapshot, record counter deltas around the
	// RMI sections only; kernel-visible work (threads, mailboxes,
	// hotplug) is replayed verbatim on fork and must stay out of the
	// delta or it would be counted twice.
	var rec *deltaRecorder
	if b := n.boot; b != nil && b.capturing {
		rec = newDeltaRecorder(n)
		rec.resume()
	}

	// 2. Realm construction via RMI.
	realm, err := n.Mon.RealmCreate(
		rmm.RealmParams{Name: vm.name, VCPUs: vcpus, IPASize: 40},
		n.allocGranule(), n.allocGranule())
	if err != nil {
		n.Plan.Release(vm.name)
		return err
	}
	vm.realm = realm
	vm.domain = realm.Domain()

	// Initial memory: build stage-2 tables and measure a boot image.
	base := granule.IPA(0x8000_0000)
	for level := 1; level <= 3; level++ {
		if err := realm.RTT().CreateTable(base, level, n.allocGranule()); err != nil {
			return fmt.Errorf("core: rtt setup: %w", err)
		}
	}
	for i := 0; i < 4; i++ {
		ipa := base + granule.IPA(i*granule.Size)
		if err := n.Mon.DataCreate(realm, ipa, n.allocGranule(),
			[]byte(fmt.Sprintf("%s-boot-%d", vm.name, i))); err != nil {
			return fmt.Errorf("core: data create: %w", err)
		}
	}
	if rec != nil {
		rec.pause()
	}

	err = n.finishGapped(vm, vcpus,
		func(i int) (*rmm.REC, error) {
			if rec != nil {
				rec.resume()
			}
			r, err := n.Mon.RecCreate(realm, n.allocGranule())
			if rec != nil {
				rec.pause()
			}
			return r, err
		},
		func() error {
			if rec != nil {
				rec.resume()
			}
			err := n.Mon.Activate(realm)
			if rec != nil {
				rec.pause()
			}
			return err
		})
	if err != nil {
		return err
	}

	if rec != nil {
		eng, met := rec.deltas()
		n.boot.entry.vms = append(n.boot.entry.vms, &vmBootProduct{
			name:   vm.name,
			vcpus:  vcpus,
			gpt:    n.Mach.GPT().Snapshot(),
			nextPA: n.nextPA,
			realm:  n.Mon.SnapshotRealm(realm),
			eng:    eng,
			met:    met,
		})
	}
	return nil
}

// forkGapped boots vm by transplanting a captured boot snapshot: the
// planner admission and every kernel-visible call are replayed in the
// original order, while the RMI products (granule table, realm object
// graph, measurements) are restored from the cache and the counters the
// skipped calls would have fired are replayed as recorded deltas.
func (n *Node) forkGapped(vm *VM, vcpus int, p *vmBootProduct) error {
	// Replayed admission: planner state must advance exactly as in the
	// captured boot.
	a, err := n.Plan.Admit(vm.name, vcpus)
	if err != nil {
		return err
	}
	vm.assign = &assignment{guestCores: a.GuestCores, hostCore: a.HostCore}

	if err := n.Mach.GPT().Restore(p.gpt); err != nil {
		n.Plan.Release(vm.name)
		return err
	}
	n.nextPA = p.nextPA
	realm := n.Mon.AdoptRealm(p.realm)
	vm.realm = realm
	vm.domain = realm.Domain()
	n.replayDeltas(p)
	n.Eng.Count(cSnapFork)

	recs := realm.RECs()
	// Activation is part of the snapshot (the adopted realm is already
	// Active and its ledger sealed), so the activate step is nil.
	return n.finishGapped(vm, vcpus,
		func(i int) (*rmm.REC, error) { return recs[i], nil }, nil)
}

// finishGapped is the kernel-visible tail of a gapped boot, identical
// between a full boot and a snapshot fork: VMM process, wake-up thread,
// vCPU threads and mailboxes, activation (when non-nil), core hotplug
// with realm handoff, and busy-wait seeding. newREC supplies the i-th
// vCPU's REC — freshly created over RMI on the full path, adopted from
// the snapshot on the fork path. Call order here is load-bearing:
// thread creation and event scheduling must match the captured boot
// exactly for forked trials to stay byte-identical.
func (n *Node) finishGapped(vm *VM, vcpus int, newREC func(i int) (*rmm.REC, error), activate func() error) error {
	a := vm.assign

	// 3. VMM process, pinned to the assigned host core (§5.1: "pinning
	// all VMM threads on the host to a single additional core").
	vm.VMM = vmm.New(vm.name, n.Kern, vmm.DefaultCosts(), int(a.hostCore), n.Met)
	vm.VMM.SetInject(vm.injectFromHost)

	// 4. vCPU contexts, threads and run-call mailboxes.
	vm.wakeup = n.wakeupThreadFor(a.hostCore)
	for i := 0; i < vcpus; i++ {
		rec, err := newREC(i)
		if err != nil {
			return err
		}
		v := &VCPU{
			vm:            vm,
			idx:           i,
			rec:           rec,
			dcore:         a.guestCores[i],
			pendingRebind: hw.NoCore,
			mb:            rpc.NewMailbox(n.Eng, fmt.Sprintf("%s/vcpu%d", vm.name, i)),
		}
		// vCPU threads run FIFO so they preempt VMM threads when woken
		// (§4.3); the busy-wait ablation uses yield-polling normal
		// threads as Quarantine does — FIFO pollers would starve the
		// I/O emulation threads outright.
		class := host.ClassFIFO
		if n.Opts.BusyWaitRPC {
			class = host.ClassNormal
		}
		v.thread = n.Kern.NewThread(fmt.Sprintf("%s/vcpu%d", vm.name, i),
			class, a.hostCore)
		vm.vcpus = append(vm.vcpus, v)
	}
	if activate != nil {
		if err := activate(); err != nil {
			return err
		}
	}

	// 5. Hotplug the guest cores out of the host and hand them to the
	// monitor; when each handoff completes, issue the first run call.
	for _, v := range vm.vcpus {
		v := v
		err := n.Kern.OfflineCore(v.dcore, func() {
			n.Mon.DedicateCore(v.dcore)
			v.installRMMCoreHandler()
			v.postRunCall()
		})
		if err != nil {
			return fmt.Errorf("core: hotplug of core %d: %w", v.dcore, err)
		}
	}

	// Busy-wait ablation: vCPU threads poll their mailboxes instead of
	// blocking on IPI-driven wakeups.
	if n.Opts.BusyWaitRPC {
		for _, v := range vm.vcpus {
			v := v
			n.Kern.SetIdlePoll(v.thread, func() (sim.Duration, func()) {
				return n.P.BusyPollSlice, func() { v.hostPollOnce() }
			})
			// Seed the polling loop.
			n.Kern.Submit(v.thread, "poll-seed", 1, nil)
		}
	}
	return nil
}

func (n *Node) setupShared(vm *VM, vcpus int) {
	vm.domain = uarch.Guest(100 + len(n.vms)) // plain VMs get distinct domains too
	vm.VMM = vmm.New(vm.name, n.Kern, vmm.DefaultCosts(), -1, n.Met)
	vm.VMM.SetInject(vm.injectFromHost)
	for i := 0; i < vcpus; i++ {
		v := &VCPU{vm: vm, idx: i, dcore: hw.NoCore, pendingRebind: hw.NoCore}
		v.thread = n.Kern.NewThread(fmt.Sprintf("%s/vcpu%d", vm.name, i),
			host.ClassNormal, hw.NoCore)
		v.thread.SetDomain(vm.domain, n.P.GuestFootprint)
		vm.vcpus = append(vm.vcpus, v)
	}
	for _, v := range vm.vcpus {
		v.startShared()
	}
}

// injectFromHost is the VMM's event-delivery callback; it routes device
// completions through the mode-appropriate interrupt path.
//
// Packet arrivals follow NAPI semantics: the data is already in guest
// memory (DMA), so a *busy* guest picks it up on its next service-loop
// iteration without any interrupt; only an idle (WFI/blocked) guest needs
// one. This matters enormously under core gapping, where every injection
// into a running vCPU costs a host-requested exit (Fig. 5).
func (vm *VM) injectFromHost(vcpu int, ev guest.Event) {
	if vcpu < 0 || vcpu >= len(vm.vcpus) {
		return
	}
	v := vm.vcpus[vcpu]
	if v.halted || v.stopped {
		return
	}
	n := vm.node
	p := n.P

	if v.gapped() {
		if ev.Kind == guest.EvPacket && v.inGuest && !v.idle && !v.waitIO {
			vm.prog.Deliver(vcpu, ev) // NAPI: ring polled by the busy guest
			return
		}
		v.hostRequestInjection(ev)
		return
	}

	// Shared-core: the device's IRQ/softirq work lands on whichever core
	// the vCPU occupies, stealing guest time and polluting its state.
	// NAPI processing scales with the delivered data (per-64KiB batches).
	if core := v.thread.Core(); core != hw.NoCore && n.Kern.Running(core) == v.thread {
		batches := sim.Duration(1 + ev.Bytes/(64<<10))
		n.Mach.Core(core).RecordExecution(uarch.DomainHost, 0.05, 0)
		n.Kern.StealCPU(core, batches*p.HostIRQWork, nil)
	}
	if ev.Kind == guest.EvPacket && !v.idle && !v.waitIO && v.thread.State() != host.Blocked {
		vm.prog.Deliver(vcpu, ev) // NAPI on the baseline too
		return
	}
	v.sharedInject(ev)
}

// wakeupThreadFor returns (creating on first use) the wake-up thread for
// a host core, and registers the exit-notification IPI handler that
// activates it (Fig. 4 steps 1-2).
func (n *Node) wakeupThreadFor(core hw.CoreID) *host.Thread {
	if n.wakeups == nil {
		n.wakeups = make(map[hw.CoreID]*host.Thread)
		n.Kern.RegisterIRQ(hw.IPIGuestExit, func(c hw.CoreID) {
			if t := n.wakeups[c]; t != nil {
				// Activation pays the wake-up dispatch plus the scan.
				n.Kern.Submit(t, "scan", n.P.SchedWake+n.P.WakeupScan,
					func() { n.scanMailboxes(c) })
			}
		})
	}
	if t, ok := n.wakeups[core]; ok {
		return t
	}
	t := n.Kern.NewThread(fmt.Sprintf("wakeup%d", core), host.ClassFIFO, core)
	n.wakeups[core] = t
	return t
}

// scanMailboxes is the wake-up thread body: poll every RPC channel homed
// on this host core, unblocking the vCPU threads of stopped vCPUs
// (Fig. 4 steps 3-5), then suspend until the next IPI (step 6).
func (n *Node) scanMailboxes(core hw.CoreID) {
	for _, vm := range n.vms {
		if vm.assign == nil || vm.assign.hostCore != core {
			continue
		}
		for _, v := range vm.vcpus {
			v.hostPollOnce()
		}
	}
}

// StopVM destroys a gapped VM and returns its cores to the host —
// the reclaim path of §4.2.
func (n *Node) StopVM(vm *VM) error {
	for _, v := range vm.vcpus {
		v.shutdown()
	}
	if vm.realm != nil {
		if err := n.Mon.Destroy(vm.realm); err != nil {
			return err
		}
		for _, c := range vm.assign.guestCores {
			if err := n.Mon.ReclaimCore(c); err != nil {
				return err
			}
			if err := n.Kern.OnlineCore(c); err != nil {
				return err
			}
		}
		n.Plan.Release(vm.name)
	}
	return nil
}
