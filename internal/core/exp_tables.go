package core

import (
	"fmt"

	"coregap/internal/gic"
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/rpc"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/uarch"
)

// This file regenerates the paper's tables. Each Run* function builds the
// experiment from the real machinery (never from closed-form constants,
// except where the paper itself reports a modelled lower bound) and
// returns a trace.Table shaped like the one in the paper.

// Table2Result carries the three measured latencies alongside the table.
type Table2Result struct {
	Table    *trace.Table
	Async    sim.Duration // core-gapped asynchronous (vCPU run calls)
	Sync     sim.Duration // core-gapped synchronous (e.g. page-table update)
	SameCore sim.Duration // same-core synchronous (EL3 component, lower bound)
}

// RunTable2 measures null RMM call latencies (Table 2) by driving the
// actual transport machinery:
//
//   - asynchronous: the full Fig. 4 path — mailbox post, RMM pickup on
//     the remote core, completion, exit IPI, wake-up thread scan, vCPU
//     thread wake;
//   - synchronous: busy-wait mailbox round trip;
//   - same-core: the EL3 null-call component (world switches plus the
//     transient-execution mitigation flushes), which the paper reports
//     as a >12.8 µs lower bound for a same-core RMM call.
func RunTable2(seed uint64) Table2Result {
	p := DefaultParams()

	// --- Asynchronous path, through kernel + IPI + wake-up thread. ---
	eng := sim.NewEngine(seed)
	mach := hw.NewMachine(eng, hw.DefaultConfig(2))
	kern := host.NewKernel(mach, gic.NewDistributor(mach), trace.NewSet())
	mb := rpc.NewMailbox(eng, "null")
	asyncHist := &trace.Hist{}

	const rounds = 1000
	hostCore, rmmCore := hw.CoreID(0), hw.CoreID(1)
	// The RMM side: a polling loop on the dedicated core that answers
	// null calls immediately and raises the exit IPI.
	rmmPickup := func() {
		eng.After(p.Transport.PickupLatency(), "pickup", func() {
			if _, ok := mb.TryTake(); ok {
				mb.Complete("null-return", p.Transport.Prop)
				mach.SendIPI(rmmCore, hostCore, hw.IPIGuestExit)
			}
		})
	}
	caller := kern.NewThread("vcpu-null", host.ClassFIFO, hostCore)
	wakeup := kern.NewThread("wakeup", host.ClassFIFO, hostCore)
	var postedAt sim.Time
	done := 0
	var post func()
	post = func() {
		postedAt = eng.Now()
		mb.Post("null-call", p.Transport.Prop)
		rmmPickup()
	}
	kern.RegisterIRQ(hw.IPIGuestExit, func(c hw.CoreID) {
		kern.Submit(wakeup, "scan", p.SchedWake+p.WakeupScan, func() {
			if _, ok := mb.TryResponse(); !ok {
				return
			}
			// Wake the blocked caller (Fig. 4 step 5); the call returns
			// in its context.
			kern.Submit(caller, "return", p.SchedWake, func() {
				asyncHist.Observe(eng.Now().Sub(postedAt))
				done++
				if done < rounds {
					post()
				}
			})
		})
	})
	post()
	eng.Run()
	asyncLat := asyncHist.Mean()

	// --- Synchronous path: busy-wait both sides. ---
	eng2 := sim.NewEngine(seed + 1)
	mb2 := rpc.NewMailbox(eng2, "sync")
	syncHist := &trace.Hist{}
	done2 := 0
	var post2 func()
	post2 = func() {
		start := eng2.Now()
		mb2.Post("call", p.Transport.Prop)
		eng2.After(p.Transport.PickupLatency(), "pickup", func() {
			if _, ok := mb2.TryTake(); ok {
				mb2.Complete("ret", p.Transport.Prop)
				eng2.After(p.Transport.PickupLatency(), "resp", func() {
					if _, ok := mb2.TryResponse(); ok {
						syncHist.Observe(eng2.Now().Sub(start))
						done2++
						if done2 < rounds {
							post2()
						}
					}
				})
			}
		})
	}
	post2()
	eng2.Run()
	syncLat := syncHist.Mean()

	// --- Same-core component: EL3 null call with mitigation flushes. ---
	cs := uarch.NewCoreState()
	src := sim.NewSource(seed)
	cs.Touch(uarch.DomainHost, 0.5, 0, src)
	flushIn := cs.FlushMitigations(uarch.DefaultFlushCosts())
	cs.Touch(uarch.DomainMonitor, 0.3, 0, src)
	flushOut := cs.FlushMitigations(uarch.DefaultFlushCosts())
	worldSwitches := 2 * hw.DefaultConfig(1).WorldSwitchCost
	sameCore := flushIn + flushOut + worldSwitches + p.EL3Dispatch

	tb := trace.NewTable("Table 2", "Comparison of null RMM call latencies", "Latency")
	tb.AddRow("Core-gapped asynchronous (vCPU run calls)", fmt.Sprintf("%.1f ns", float64(asyncLat)))
	tb.AddRow("Core-gapped synchronous (e.g., page table update)", fmt.Sprintf("%.1f ns", float64(syncLat)))
	tb.AddRow("Same-core synchronous", fmt.Sprintf(">%.1f us", float64(sameCore)/1000))
	return Table2Result{Table: tb, Async: asyncLat, Sync: syncLat, SameCore: sameCore}
}

// Table3Result carries the three measured vIPI latencies.
type Table3Result struct {
	Table      *trace.Table
	NoDeleg    sim.Duration
	Delegated  sim.Duration
	SharedCore sim.Duration
}

// RunTable3 measures virtual inter-processor interrupt latency (Table 3)
// using the two-vCPU IPI ping-pong workload under the three
// configurations the paper compares.
func RunTable3(seed uint64) Table3Result {
	measure := func(opts Options) sim.Duration {
		n := NewNode(4, opts, DefaultParams(), seed)
		b := guest.NewIPIBench(300)
		if _, err := n.NewVM("vm0", 2, b); err != nil {
			panic(err)
		}
		n.RunUntilAllHalted(30 * sim.Second)
		return n.Met.Hist("vm0.vipi.latency").Mean()
	}
	res := Table3Result{
		NoDeleg:    measure(GappedNoDelegation()),
		Delegated:  measure(GappedDefault()),
		SharedCore: measure(Baseline()),
	}
	tb := trace.NewTable("Table 3", "Virtual interprocessor interrupt latency", "IPI latency")
	tb.AddRow("Core-gapped CVM, without delegation", fmt.Sprintf("%.1f us", res.NoDeleg.Micros()))
	tb.AddRow("Core-gapped CVM, with delegation", fmt.Sprintf("%.2f us", res.Delegated.Micros()))
	tb.AddRow("Shared-core VM", fmt.Sprintf("%.2f us", res.SharedCore.Micros()))
	res.Table = tb
	return res
}

// Table4Result carries the exit counts.
type Table4Result struct {
	Table *trace.Table
	// [0] = without delegation, [1] = with delegation.
	InterruptExits [2]uint64
	TotalExits     [2]uint64
}

// RunTable4 reproduces the interrupt-delegation exit accounting (Table 4):
// CoreMark-PRO on a 16-core machine (15 core-gapped vCPUs + 1 host core,
// per §5.1's equal-physical-cores accounting), with and without
// delegation. The paper's run length corresponds to ≈4.5 s of guest
// execution at the 250 Hz tick.
func RunTable4(seed uint64) Table4Result {
	const vcpus = 15
	work := 4410 * sim.Millisecond
	run := func(opts Options) (uint64, uint64) {
		n := NewNode(16, opts, DefaultParams(), seed)
		cm := guest.NewCoreMark(vcpus, work)
		if _, err := n.NewVM("vm0", vcpus, cm); err != nil {
			panic(err)
		}
		n.RunUntilAllHalted(60 * sim.Second)
		if !cm.Done() {
			panic("table4: coremark did not finish")
		}
		return n.Met.Counter("vm0.exits.interrupt").Value(),
			n.Met.Counter("vm0.exits.total").Value()
	}
	var res Table4Result
	res.InterruptExits[0], res.TotalExits[0] = run(GappedNoDelegation())
	res.InterruptExits[1], res.TotalExits[1] = run(GappedDefault())

	tb := trace.NewTable("Table 4", "Interrupt delegation effect on CoreMark-PRO",
		"Without delegation", "With delegation")
	tb.AddRow("Interrupt-related exits",
		fmt.Sprintf("%d", res.InterruptExits[0]), fmt.Sprintf("%d", res.InterruptExits[1]))
	tb.AddRow("Total exits",
		fmt.Sprintf("%d", res.TotalExits[0]), fmt.Sprintf("%d", res.TotalExits[1]))
	res.Table = tb
	return res
}
