package core

import (
	"testing"

	"coregap/internal/guest"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func TestLiveRebindMovesRunningVCPU(t *testing.T) {
	n := NewNode(6, GappedDefault(), DefaultParams(), 3)
	cm := guest.NewCoreMark(2, 200*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond) // VM up and computing

	v := vm.VCPUs()[0]
	oldCore := v.DedicatedCore()
	target := hw.CoreID(4) // free core
	if err := n.RebindVCPU(vm, 0, target); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(30 * sim.Millisecond)

	if v.DedicatedCore() != target {
		t.Fatalf("vcpu still on core %d, want %d", v.DedicatedCore(), target)
	}
	if n.Met.Counter("vm0.rebind.ok").Value() != 1 {
		t.Fatal("rebind not recorded")
	}
	// The vacated core returned to the host...
	if n.Kern.IsOffline(oldCore) {
		t.Fatal("old core still offline")
	}
	if n.Mon.IsDedicated(oldCore) {
		t.Fatal("old core still dedicated")
	}
	// ...with its microarchitectural state wiped (no guest residue).
	if res := n.Mach.Core(oldCore).Uarch.ResidueFor(uarch.DomainHost); len(res) != 0 {
		t.Fatalf("old core not wiped: residue in %d structures", len(res))
	}
	// The guest keeps making progress on the new core.
	n.RunUntilAllHalted(10 * sim.Second)
	if !cm.Done() {
		t.Fatal("workload did not finish after rebind")
	}
	// Monitor bookkeeping is consistent.
	if n.Mon.BoundRec(target) != v.rec {
		t.Fatal("binding table wrong")
	}
}

func TestRebindValidation(t *testing.T) {
	n := NewNode(6, GappedDefault(), DefaultParams(), 3)
	vm, err := n.NewVM("vm0", 2, guest.NewCoreMark(2, 100*sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)

	if err := n.RebindVCPU(vm, 9, 4); err != ErrBadVCPU {
		t.Fatalf("bad vcpu: %v", err)
	}
	// Target occupied by the other vCPU: planner refuses (not free).
	if err := n.RebindVCPU(vm, 0, vm.VCPUs()[1].DedicatedCore()); err == nil {
		t.Fatal("rebind onto an occupied core accepted")
	}
	// No-op rebind is fine.
	if err := n.RebindVCPU(vm, 0, vm.VCPUs()[0].DedicatedCore()); err != nil {
		t.Fatalf("no-op rebind: %v", err)
	}
	// Two concurrent rebinds of one vCPU refused.
	if err := n.RebindVCPU(vm, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := n.RebindVCPU(vm, 0, 5); err != ErrRebindBusy {
		t.Fatalf("concurrent rebind: %v", err)
	}
	n.RunUntilAllHalted(10 * sim.Second)
}

func TestRebindSharedModeRefused(t *testing.T) {
	n := NewNode(4, Baseline(), DefaultParams(), 3)
	vm, err := n.NewVM("vm0", 2, guest.NewCoreMark(2, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RebindVCPU(vm, 0, 3); err != ErrNotGapped {
		t.Fatalf("shared-mode rebind: %v", err)
	}
	n.RunUntilAllHalted(sim.Second)
}

func TestRebindPreservesCoreGapInvariant(t *testing.T) {
	// After a rebind, the audit logs must still show no foreign guest
	// domain ever shared a core with the victim while it was bound.
	n := NewNode(8, GappedDefault(), DefaultParams(), 3)
	cmA := guest.NewCoreMark(2, 150*sim.Millisecond)
	vmA, err := n.NewVM("vmA", 2, cmA)
	if err != nil {
		t.Fatal(err)
	}
	cmB := guest.NewCoreMark(2, 150*sim.Millisecond)
	vmB, err := n.NewVM("vmB", 2, cmB)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond)
	if err := n.RebindVCPU(vmA, 0, 6); err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(20 * sim.Second)
	if !cmA.Done() || !cmB.Done() {
		t.Fatal("workloads incomplete")
	}
	// No core's audit log may contain both guests.
	for _, c := range n.Mach.Cores() {
		sawA, sawB := false, false
		for _, d := range c.DomainsObserved() {
			if d == vmA.Domain() {
				sawA = true
			}
			if d == vmB.Domain() {
				sawB = true
			}
		}
		if sawA && sawB {
			t.Fatalf("core %d executed both guests", c.ID())
		}
	}
}
