package core

import "coregap/internal/sim"

// Engine-level counters for the node orchestration edges. These are
// machine-wide (every VM on the node lands in the same bank), unlike
// the per-VM map counters in the trial metric Set; together they give
// the perf-counter view of a trial: how many REC entries, exits,
// injections and delegated fast-path events the scenario generated.
var (
	cRECEnter   = sim.DefineCounter("core.rec_enters")
	cVCPUExit   = sim.DefineCounter("core.vcpu_exits")
	cInjections = sim.DefineCounter("core.irq_injections")
	cVIPIDeleg  = sim.DefineCounter("core.vipi_delegated")
	cTickDeleg  = sim.DefineCounter("core.ticks_delegated")
	cHostKick   = sim.DefineCounter("core.host_kicks")
)

// exitTraceNames gives each ExitReason a static trace label: the exit
// path must not format strings.
var exitTraceNames = [...]string{
	ExitTimer:   "exit.timer",
	ExitVIPI:    "exit.vipi",
	ExitMgmtIRQ: "exit.mgmt-irq",
	ExitMMIO:    "exit.mmio",
	ExitMisc:    "exit.misc",
	ExitKick:    "exit.kick",
	ExitHalt:    "exit.halt",
}

func exitTraceName(r ExitReason) string {
	if r >= 0 && int(r) < len(exitTraceNames) {
		return exitTraceNames[r]
	}
	return "exit.unknown"
}
