package core

import (
	"testing"

	"coregap/internal/guest"
	"coregap/internal/hw"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func TestSharedCoreMarkCompletes(t *testing.T) {
	n := NewNode(4, Baseline(), DefaultParams(), 1)
	cm := guest.NewCoreMark(4, 50*sim.Millisecond)
	vm, err := n.NewVM("vm0", 4, cm)
	if err != nil {
		t.Fatal(err)
	}
	end := n.RunUntilAllHalted(5 * sim.Second)
	if !cm.Done() {
		t.Fatalf("coremark not done at %v; exits=%s", end, n.Met.String())
	}
	// 50ms work per vCPU on 4 dedicated-ish cores: wall ≈ 50ms + overhead.
	if end < sim.Time(50*sim.Millisecond) || end > sim.Time(60*sim.Millisecond) {
		t.Fatalf("completed at %v, want ~50-60ms", end)
	}
	if vm.VCPUs()[0].Halted() != true {
		t.Fatal("vcpu not halted")
	}
	// Baseline performed same-core timer exits.
	if n.Met.Counter("vm0.exits.timer").Value() == 0 {
		t.Fatal("no timer exits in shared mode")
	}
}

func TestGappedCoreMarkCompletes(t *testing.T) {
	n := NewNode(6, GappedDefault(), DefaultParams(), 1)
	cm := guest.NewCoreMark(4, 50*sim.Millisecond)
	vm, err := n.NewVM("vm0", 4, cm)
	if err != nil {
		t.Fatal(err)
	}
	end := n.RunUntilAllHalted(5 * sim.Second)
	if !cm.Done() {
		t.Fatalf("coremark not done at %v\n%s", end, n.Met.String())
	}
	if end > sim.Time(65*sim.Millisecond) {
		t.Fatalf("completed at %v, want < 65ms", end)
	}
	// Dedicated cores were bound and used.
	if len(vm.GuestCores()) != 4 {
		t.Fatalf("guest cores = %v", vm.GuestCores())
	}
	// With delegation, ticks are handled locally: almost no exits.
	ticks := n.Met.Counter("vm0.ticks").Value()
	deleg := n.Met.Counter("vm0.ticks.delegated").Value()
	if ticks == 0 || deleg == 0 {
		t.Fatalf("ticks=%d delegated=%d", ticks, deleg)
	}
	exits := n.Met.Counter("vm0.exits.total").Value()
	if exits > ticks {
		t.Fatalf("exits (%d) should be far below ticks (%d) with delegation", exits, ticks)
	}
}

func TestGappedNoDelegationExitsPerTick(t *testing.T) {
	n := NewNode(3, GappedNoDelegation(), DefaultParams(), 1)
	cm := guest.NewCoreMark(1, 100*sim.Millisecond)
	_, err := n.NewVM("vm0", 1, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(5 * sim.Second)
	if !cm.Done() {
		t.Fatal("not done")
	}
	ticks := n.Met.Counter("vm0.ticks").Value()
	timerExits := n.Met.Counter("vm0.exits.timer").Value()
	// Two exits per tick (§4.4).
	if timerExits < 2*ticks-4 || timerExits > 2*ticks {
		t.Fatalf("timer exits = %d for %d ticks, want ~2x", timerExits, ticks)
	}
}

func TestGappedCoreGapInvariant(t *testing.T) {
	// The core security property (§3): only the monitor and the bound
	// guest ever execute on a dedicated core.
	n := NewNode(4, GappedDefault(), DefaultParams(), 1)
	cm := guest.NewCoreMark(2, 20*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(5 * sim.Second)
	for _, c := range vm.GuestCores() {
		for _, d := range n.Mach.Core(c).DomainsObserved() {
			if d != vm.Domain() && d != uarch.DomainMonitor && d != uarch.DomainHost {
				t.Fatalf("foreign domain %v on dedicated core %d", d, c)
			}
		}
		// Host may appear in the log only BEFORE dedication (hotplug).
		log := n.Mach.Core(c).ExecLog()
		seenGuest := false
		for _, r := range log {
			if r.Domain == vm.Domain() {
				seenGuest = true
			}
			if seenGuest && r.Domain == uarch.DomainHost {
				t.Fatalf("host executed on core %d after guest started", c)
			}
		}
	}
}

func TestGappedVMStopReclaimsCores(t *testing.T) {
	n := NewNode(4, GappedDefault(), DefaultParams(), 1)
	cm := guest.NewCoreMark(2, 10*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(sim.Second)
	if err := n.StopVM(vm); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)
	if n.Kern.OnlineCount() != 4 {
		t.Fatalf("online = %d after reclaim, want 4", n.Kern.OnlineCount())
	}
	if n.Mon.DedicatedCount() != 0 {
		t.Fatal("monitor still holds cores")
	}
	// Cores can be reused by a new VM.
	cm2 := guest.NewCoreMark(2, 5*sim.Millisecond)
	if _, err := n.NewVM("vm1", 2, cm2); err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(sim.Second)
	if !cm2.Done() {
		t.Fatal("second VM did not run")
	}
}

func TestGappedAdmissionFailure(t *testing.T) {
	n := NewNode(4, GappedDefault(), DefaultParams(), 1)
	if _, err := n.NewVM("big", 4, guest.NewCoreMark(4, sim.Millisecond)); err == nil {
		t.Fatal("admitted VM larger than free cores") // host keeps 1
	}
}

func TestGappedIOzoneCompletes(t *testing.T) {
	n := NewNode(3, GappedDefault(), DefaultParams(), 1)
	z := guest.NewIOzone(64<<10, true, 4<<20)
	_, err := n.NewVM("vm0", 1, z)
	if err != nil {
		t.Fatal(err)
	}
	end := n.RunUntilAllHalted(10 * sim.Second)
	if z.Moved() != 4<<20 {
		t.Fatalf("moved %d at %v", z.Moved(), end)
	}
	// Block I/O produced MMIO exits and kick injections.
	if n.Met.Counter("vm0.exits.mmio").Value() == 0 {
		t.Fatal("no mmio exits")
	}
	if n.Met.Counter("vm0.exits.kick").Value() == 0 {
		t.Fatal("no kick exits (completion interrupts)")
	}
}

func TestSharedIOzoneCompletes(t *testing.T) {
	n := NewNode(3, Baseline(), DefaultParams(), 1)
	z := guest.NewIOzone(64<<10, true, 4<<20)
	if _, err := n.NewVM("vm0", 1, z); err != nil {
		t.Fatal(err)
	}
	end := n.RunUntilAllHalted(10 * sim.Second)
	if z.Moved() != 4<<20 {
		t.Fatalf("moved %d at %v", z.Moved(), end)
	}
}

func TestGappedVIPIDelegatedVsNot(t *testing.T) {
	run := func(opts Options) (sim.Time, uint64, *Node) {
		n := NewNode(4, opts, DefaultParams(), 1)
		b := guest.NewIPIBench(50)
		_, err := n.NewVM("vm0", 2, b)
		if err != nil {
			t.Fatal(err)
		}
		end := n.RunUntilAllHalted(10 * sim.Second)
		if b.Rounds() != 50 {
			t.Fatalf("rounds = %d\n%s", b.Rounds(), n.Met.String())
		}
		return end, n.Met.Counter("vm0.exits.vipi").Value(), n
	}
	endDeleg, vipiExitsDeleg, nDeleg := run(GappedDefault())
	endNoDeleg, vipiExitsNoDeleg, _ := run(GappedNoDelegation())
	if vipiExitsDeleg != 0 {
		t.Fatalf("delegated vIPIs caused %d exits", vipiExitsDeleg)
	}
	if vipiExitsNoDeleg == 0 {
		t.Fatal("non-delegated vIPIs caused no exits")
	}
	if endDeleg >= endNoDeleg {
		t.Fatalf("delegation (%v) not faster than trap-to-host (%v)", endDeleg, endNoDeleg)
	}
	if nDeleg.Met.Counter("vm0.vipi.delegated").Value() == 0 {
		t.Fatal("no delegated vipi recorded")
	}
}

func TestBusyWaitServicesExits(t *testing.T) {
	n := NewNode(3, GappedBusyWait(), DefaultParams(), 1)
	z := guest.NewIOzone(64<<10, true, 1<<20)
	_, err := n.NewVM("vm0", 1, z)
	if err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(10 * sim.Second)
	if z.Moved() != 1<<20 {
		t.Fatalf("busy-wait mode stalled: moved %d\n%s", z.Moved(), n.Met.String())
	}
	// The polling vCPU thread burned host CPU while waiting.
	vm := n.VMs()[0]
	if vm.VCPUs()[0].thread.CPUTime() == 0 {
		t.Fatal("poller consumed no CPU")
	}
}

func TestRunToRunLatencyRecorded(t *testing.T) {
	n := NewNode(3, GappedNoDelegation(), DefaultParams(), 1)
	cm := guest.NewCoreMark(1, 50*sim.Millisecond)
	if _, err := n.NewVM("vm0", 1, cm); err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(5 * sim.Second)
	h := n.Met.Hist("vm0.runtorun")
	if h.Count() == 0 {
		t.Fatal("no run-to-run samples")
	}
	// §5.2: run-to-run latency ~26 µs. Accept a generous band.
	mean := h.Mean()
	if mean < 15*sim.Microsecond || mean > 40*sim.Microsecond {
		t.Fatalf("run-to-run mean = %v, want ~26us", mean)
	}
}

func TestAsyncNullRoundTripCalibration(t *testing.T) {
	p := DefaultParams()
	rt := p.AsyncNullRoundTrip(hw.DefaultConfig(2).IPILatency)
	// Table 2: 2757.6 ns.
	if rt < 2700*sim.Nanosecond || rt > 2810*sim.Nanosecond {
		t.Fatalf("async null RT = %v, want ~2757ns", rt)
	}
}

func TestModeStrings(t *testing.T) {
	if SharedCore.String() != "shared-core" || Gapped.String() != "core-gapped" {
		t.Fatal("mode strings")
	}
}

func TestCoreMarkProRunsInBothModes(t *testing.T) {
	run := func(opts Options, vcpus int) *guest.CoreMarkPro {
		n := NewNode(4, opts, DefaultParams(), 11)
		cmp := guest.NewCoreMarkPro(vcpus, 900*sim.Millisecond, func() sim.Time { return n.Eng.Now() })
		if _, err := n.NewVM("vm0", vcpus, cmp); err != nil {
			t.Fatal(err)
		}
		n.RunUntilAllHalted(60 * sim.Second)
		if !cmp.Done() {
			t.Fatal("suite incomplete")
		}
		return cmp
	}
	shared := run(Baseline(), 3)
	gapped := run(GappedDefault(), 3)
	if shared.Mark() <= 0 || gapped.Mark() <= 0 {
		t.Fatal("marks")
	}
	// Same vCPU count: the dedicated cores should not lose to the shared
	// ones (no host interference; small differences come from the 4 ms
	// barrier wake-up granularity between phases).
	if gapped.Mark() < shared.Mark()*0.95 {
		t.Fatalf("gapped mark %.3f well below shared %.3f", gapped.Mark(), shared.Mark())
	}
	// Memory-hungry workloads suffer relatively more interference on
	// shared cores than compute-bound ones.
	sScores, gScores := shared.PhaseScores(), gapped.PhaseScores()
	relNnet := sScores["nnet_test"] / gScores["nnet_test"]
	relSha := sScores["sha-test"] / gScores["sha-test"]
	if relNnet > relSha*1.02 {
		t.Fatalf("nnet (large WSS) should suffer at least as much as sha: %.4f vs %.4f", relNnet, relSha)
	}
}
