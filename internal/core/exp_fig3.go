package core

import (
	"fmt"
	"strings"

	"coregap/internal/attack"
	"coregap/internal/trace"
	"coregap/internal/vulncat"
)

// Fig3Result reproduces Figure 3: the timeline of transient-execution
// vulnerabilities and CPU bugs breaking security isolation since 2018,
// annotated with core-gapping's mitigation verdicts, plus the empirical
// battery backing them.
type Fig3Result struct {
	Timeline *trace.Table
	Summary  vulncat.Summary
	// Battery results for the three schedulings.
	ZeroDayLeaks    []string // shared-core, no applicable mitigation
	MitigatedLeaks  []string // shared-core, monitor applies deployed flushes
	CoreGappedLeaks []string // core-gapped placement
}

// RunFig3 builds the timeline table and runs the attack battery that
// verifies each verdict against the modelled microarchitecture.
func RunFig3(seed uint64) Fig3Result {
	vulns := vulncat.Catalogue()
	tb := trace.NewTable("Figure 3", "Vulnerabilities breaking CPU security isolation (2018-2024)",
		"Year", "Class", "Scope", "Structures", "Core-gapping verdict")
	for _, v := range vulns {
		var structs []string
		for _, k := range v.Structures {
			structs = append(structs, k.String())
		}
		verdict := "MITIGATED"
		if !v.MitigatedByCoreGapping() {
			verdict = "out of reach (" + v.Scope.String() + ")"
		}
		tb.AddRow(v.Name,
			fmt.Sprintf("%d", v.Year), v.Class.String(), v.Scope.String(),
			strings.Join(structs, ","), verdict)
	}

	res := Fig3Result{Timeline: tb, Summary: vulncat.Summarize(vulns)}
	h := attack.NewHarness(seed, 2, false)
	res.ZeroDayLeaks = h.RunBattery(attack.SharedTimeSlicedNoFlush).LeakedVulns()
	res.MitigatedLeaks = h.RunBattery(attack.SharedTimeSliced).LeakedVulns()
	res.CoreGappedLeaks = h.RunBattery(attack.CoreGappedPlacement).LeakedVulns()
	return res
}

// SecuritySummary renders the battery outcome in the shape of the Fig. 3
// caption: "Only NetSpectre and CrossTalk demonstrated cross-core leaks
// in typical cloud VM settings."
func (r Fig3Result) SecuritySummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalogued vulnerabilities: %d (%d transient, %d CPU bugs)\n",
		r.Summary.Total, r.Summary.TransientCount, r.Summary.ArchBugCount)
	fmt.Fprintf(&b, "mitigated by core gapping:  %d\n", r.Summary.Mitigated)
	fmt.Fprintf(&b, "beyond core boundaries:     %v\n", r.Summary.UnmitigatedNames)
	fmt.Fprintf(&b, "attack battery:\n")
	fmt.Fprintf(&b, "  shared core, zero-day:    %d leak\n", len(r.ZeroDayLeaks))
	fmt.Fprintf(&b, "  shared core, mitigated:   %d leak\n", len(r.MitigatedLeaks))
	fmt.Fprintf(&b, "  core-gapped:              %d leak %v\n", len(r.CoreGappedLeaks), r.CoreGappedLeaks)
	return b.String()
}
