package core

import (
	"errors"
	"fmt"

	"coregap/internal/hw"
)

// Live vCPU-to-core rebinding (§3's future-work extension): the planner
// may, at coarse time scales, move a running vCPU to a different
// dedicated core — for example to defragment the free pool. The host
// *requests* the move; the monitor validates it, wipes the old core, and
// re-establishes the binding; the guest observes nothing but one extra
// exit.

// Rebind errors.
var (
	ErrNotGapped  = errors.New("core: rebinding requires core-gapped mode")
	ErrBadVCPU    = errors.New("core: no such vcpu")
	ErrRebindBusy = errors.New("core: a rebind is already in flight")
)

// RebindVCPU migrates vm's vcpu to the given free core. The target core
// is hotplugged out of the host and dedicated; after the migration the
// old core is wiped by the monitor, reclaimed, and returned to the host
// scheduler. The actual switch happens at the vCPU's next exit (forced
// promptly via the host-kick doorbell).
func (n *Node) RebindVCPU(vm *VM, vcpu int, to hw.CoreID) error {
	if n.Opts.Mode != Gapped {
		return ErrNotGapped
	}
	if vcpu < 0 || vcpu >= len(vm.vcpus) {
		return ErrBadVCPU
	}
	v := vm.vcpus[vcpu]
	if v.rebindInFlight {
		return ErrRebindBusy
	}
	if to == v.dcore {
		return nil
	}
	// Reserve the target with the planner (fails unless free).
	if err := n.Plan.BeginRebind(vm.name, to); err != nil {
		return err
	}
	v.rebindInFlight = true

	// Take the target core from the host, as at VM start (§4.2).
	err := n.Kern.OfflineCore(to, func() {
		n.Mon.DedicateCore(to)
		v.pendingRebind = to
		// Force a prompt exit so the rebind happens at coarse-but-bounded
		// latency; if the vCPU is between run calls the rebind rides the
		// next re-entry.
		v.requestKickForRebind()
	})
	if err != nil {
		v.rebindInFlight = false
		n.Plan.AbortRebind(vm.name, to)
		return fmt.Errorf("core: hotplug of rebind target %d: %w", to, err)
	}
	return nil
}

// requestKickForRebind doorbells the dedicated core like an injection
// kick, without queueing any event.
func (v *VCPU) requestKickForRebind() {
	n := v.node()
	n.Kern.Submit(v.thread, "rebind-kick", v.params().InjectKick, func() {
		if v.stopped || v.halted {
			return
		}
		if v.inGuest {
			n.Mach.SendIPI(v.vm.assign.hostCore, v.dcore, hw.IPIHostToRMM)
		}
		// Otherwise the vCPU is mid-exit; applyPendingRebind runs on the
		// next postRunCall either way.
	})
}

// applyPendingRebind performs the monitor-validated migration; called
// from the host side just before re-entering the guest.
func (v *VCPU) applyPendingRebind() {
	to := v.pendingRebind
	if to == hw.NoCore {
		return
	}
	v.pendingRebind = hw.NoCore
	v.rebindInFlight = false
	n := v.node()
	if err := n.Mon.RebindRec(v.rec, to); err != nil {
		// Validation failed (e.g. the VM is being torn down): return the
		// target core to the host rather than leaking it.
		n.Mon.ReclaimCore(to)
		n.Kern.OnlineCore(to)
		n.Plan.AbortRebind(v.vm.name, to)
		n.Met.Counter(v.vm.name + ".rebind.failed").Inc()
		return
	}
	old := v.dcore
	v.dcore = to
	v.installRMMCoreHandler()
	// Update the VM's assignment record.
	for i, c := range v.vm.assign.guestCores {
		if c == old {
			v.vm.assign.guestCores[i] = to
		}
	}
	// The old core is already wiped by the monitor; reclaim it and give
	// it back to the host scheduler and the planner's free pool.
	if err := n.Mon.ReclaimCore(old); err == nil {
		n.Kern.OnlineCore(old)
	}
	n.Plan.CompleteRebind(v.vm.name, old)
	n.Met.Counter(v.vm.name + ".rebind.ok").Inc()
}
