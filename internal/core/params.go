// Package core is the paper's primary contribution assembled into a
// runnable system: core-gapped confidential VMs. It wires the substrates
// together (machine, host kernel, security monitor, VMM devices, guest
// workloads), implements the two execution paths the paper compares —
// shared-core VMs with same-core exit handling, and core-gapped CVMs with
// cross-core RPC exit handling (§4.3), delegated interrupt management
// (§4.4) and hotplug-based core dedication (§4.2) — and provides the
// experiment runners that regenerate every table and figure in §5.
package core

import (
	"coregap/internal/rpc"
	"coregap/internal/sim"
)

// Params is the calibrated cost model. Each value is traceable either to
// a measurement in the paper (Tables 2-4, §5 text) or to a documented
// order-of-magnitude property of the modelled platform; EXPERIMENTS.md
// records the calibration targets next to the reproduced numbers.
type Params struct {
	// Transport is the shared-memory RPC cost model; its sync round trip
	// is calibrated to Table 2's 257.7 ns.
	Transport rpc.Transport

	// SchedWake is the host-kernel cost to wake and dispatch a blocked
	// thread (IPI handler to runnable-on-CPU). Together with the
	// transport and the wake-up thread scan it yields Table 2's
	// 2757.6 ns asynchronous null-call round trip.
	SchedWake sim.Duration
	// WakeupScan is the wake-up thread's per-scan work: polling the RPC
	// channels for stopped vCPUs (Fig. 4 steps 3-4).
	WakeupScan sim.Duration

	// EL3Call is the cost of a null call into trusted firmware on the
	// same core, dominated by transient-execution mitigations; Table 2
	// reports >12.8 µs for this *component* of a same-core RMM call.
	EL3Call sim.Duration
	// EL3Dispatch is the EL3 firmware's own dispatch path (vector entry,
	// SMC decode, SPD routing, ERET), i.e. EL3Call minus the world
	// switches and mitigation flushes modelled explicitly elsewhere.
	EL3Dispatch sim.Duration
	// CtxSaveWipe is the monitor's register save-and-wipe on a vCPU exit.
	CtxSaveWipe sim.Duration

	// GuestTick is the guest kernel's periodic timer (250 Hz Linux).
	GuestTick sim.Duration
	// TickExitsNoDeleg: each tick induces this many exits without
	// delegation (§4.4: "each tick of the virtual timer induces two
	// exits").
	TickExitsNoDeleg int
	// RMMTimerHandle is the monitor's local cost to emulate one timer
	// tick under delegation (trap, re-arm, list-register injection).
	RMMTimerHandle sim.Duration
	// GuestIRQHandle is the guest's cost to take and EOI an interrupt.
	GuestIRQHandle sim.Duration

	// KVMExitKernel is the host-kernel part of handling any VM exit.
	KVMExitKernel sim.Duration
	// GapGICEmul is the host's cost to emulate a GIC-register or
	// interrupt-management exit for a *realm* VM, where the in-kernel
	// vGIC fast path is unavailable and emulation bounces through the
	// VMM (calibrated against Table 3's 43.9 µs no-delegation vIPI and
	// §5.2's 26.18 µs run-to-run latency).
	GapGICEmul sim.Duration
	// UserMMIO is a userspace-VMM MMIO emulation round trip (ioctl
	// return to kvmtool, emulate, re-enter) — the cost of the residual
	// non-interrupt exits.
	UserMMIO sim.Duration
	// VGICSync is the host's cost to synchronize the target vCPU's
	// virtual interrupt state when injecting a cross-vCPU interrupt
	// without delegation.
	VGICSync sim.Duration
	// SharedMMIO is the baseline's same-core cost for a device doorbell
	// that bounces to the userspace VMM (the CCA-RFC kvmtool stack has
	// no ioeventfd fast path; on the same core the bounce is one
	// user/kernel round trip).
	SharedMMIO sim.Duration
	// SharedVGIC is the baseline's in-kernel same-core vGIC cost
	// (calibrated against Table 3's 3.85 µs shared-core vIPI).
	SharedVGIC sim.Duration
	// InjectKick is the host's cost to force a running remote vCPU to
	// exit so an interrupt can be passed on the next run call (Fig. 5).
	InjectKick sim.Duration

	// RMMVIPIHandle is the monitor-local cost of a delegated vIPI send
	// (ICC_SGI1R trap, route, cross-core inject — Table 3's 2.22 µs
	// path together with the physical IPI and the guest's ack).
	RMMVIPIHandle sim.Duration

	// HostIRQWork is the host-side IRQ/softirq processing per device
	// event batch. On shared cores this work executes on — and steals
	// time from — the guest's own core; under core gapping it runs on
	// the host core. This asymmetry is the §2.3 locality effect that
	// lets core-gapped CVMs win on network-saturated guests (Table 5).
	HostIRQWork sim.Duration

	// RewarmCost is the full cache/TLB refill penalty a guest pays after
	// its per-core state is completely evicted; the actual charge scales
	// with (1 - warmth). This is the locality effect of §2.3.
	RewarmCost sim.Duration
	// HostNoise is a small per-tick scheduling/bookkeeping interference
	// charged to guests on shared cores (softirqs, RCU, clocksource).
	HostNoise sim.Duration

	// MemEncOverhead is the fractional guest-compute slowdown from
	// memory encryption (2-3% on TDX per §5.1; applies to CVM modes when
	// ModelEncryption is set).
	MemEncOverhead float64

	// MgmtExitRate is the per-vCPU rate (exits/sec) of residual
	// interrupt-related exits under delegation (host management IPIs,
	// Table 4's 390 remaining interrupt exits).
	MgmtExitRate float64
	// MiscExitRateDeleg / MiscExitRateNoDeleg are per-vCPU rates of
	// non-interrupt exits (console MMIO and similar); the no-delegation
	// configuration traps more CPU-interface accesses (Table 4).
	MiscExitRateDeleg   float64
	MiscExitRateNoDeleg float64

	// BusyPollSlice is the poll-loop granularity of the busy-wait
	// (Quarantine-style) ablation: poll, find nothing, sched_yield.
	BusyPollSlice sim.Duration

	// GuestChunk is the granularity at which guest compute is simulated.
	GuestChunk sim.Duration

	// GuestFootprint is how much of the per-core microarchitectural
	// state a computing guest touches per chunk.
	GuestFootprint float64
}

// DefaultParams returns the calibrated model.
func DefaultParams() Params {
	return Params{
		Transport:  rpc.DefaultTransport(),
		SchedWake:  559 * sim.Nanosecond,
		WakeupScan: 410 * sim.Nanosecond,

		EL3Call:     12800 * sim.Nanosecond,
		EL3Dispatch: 5600 * sim.Nanosecond,
		CtxSaveWipe: 450 * sim.Nanosecond,

		GuestTick:        4 * sim.Millisecond, // 250 Hz
		TickExitsNoDeleg: 2,
		RMMTimerHandle:   800 * sim.Nanosecond,
		GuestIRQHandle:   800 * sim.Nanosecond,

		KVMExitKernel: 2600 * sim.Nanosecond,
		GapGICEmul:    20400 * sim.Nanosecond,
		UserMMIO:      19000 * sim.Nanosecond,
		VGICSync:      9000 * sim.Nanosecond,
		SharedMMIO:    6000 * sim.Nanosecond,
		SharedVGIC:    1200 * sim.Nanosecond,
		InjectKick:    900 * sim.Nanosecond,

		RMMVIPIHandle: 450 * sim.Nanosecond,

		HostIRQWork: 1600 * sim.Nanosecond,

		RewarmCost: 35 * sim.Microsecond,
		HostNoise:  1800 * sim.Nanosecond,

		MemEncOverhead: 0.025,

		MgmtExitRate:        5.3,
		MiscExitRateDeleg:   13.5,
		MiscExitRateNoDeleg: 53.0,

		BusyPollSlice: 5 * sim.Microsecond,

		GuestChunk:     500 * sim.Microsecond,
		GuestFootprint: 0.35,
	}
}

// AsyncNullRoundTrip reports the modelled asynchronous (run-call) null
// RPC round trip: post + propagation, exit IPI, wake-up thread scan,
// vCPU-thread wake, and the response propagation (Table 2: 2757.6 ns).
func (p Params) AsyncNullRoundTrip(ipiLatency sim.Duration) sim.Duration {
	return p.Transport.PickupLatency() + // request reaches the RMM core
		ipiLatency + // exit notification IPI (Fig. 4 step 1)
		600*sim.Nanosecond + // host IRQ entry
		p.SchedWake + p.WakeupScan + // wake-up thread dispatch + scan (steps 2-4)
		p.SchedWake // vCPU thread wake, call returns (step 5)
}
