package core

import (
	"fmt"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// Fig6Result is the CoreMark-PRO scaling experiment (Fig. 6) plus the
// §5.2 run-to-run latency statistic.
type Fig6Result struct {
	Figure *trace.Figure
	// RunToRunMean/Stddev at the largest core count, full design — the
	// paper reports 26.18 ± 0.96 µs, stable across guest core counts.
	RunToRunMean   sim.Duration
	RunToRunStddev sim.Duration
}

// runCoreMark runs CoreMark-PRO on a fresh node and reports the score
// (work-seconds per second, i.e. effective cores) and the node.
func runCoreMark(opts Options, machineCores, vcpus int, work sim.Duration, seed uint64) (float64, *Node) {
	n := NewNode(machineCores, opts, DefaultParams(), seed)
	cm := guest.NewCoreMark(vcpus, work)
	if _, err := n.NewVM("vm0", vcpus, cm); err != nil {
		panic(fmt.Sprintf("coremark setup: %v", err))
	}
	end := n.RunUntilAllHalted(sim.Duration(200) * work)
	if !cm.Done() {
		panic("coremark did not finish within the horizon")
	}
	return cm.Score(sim.Duration(end)), n
}

// RunFig6 reproduces the CoreMark-PRO scaling figure: shared-core
// baseline VMs with N vCPUs on N cores versus core-gapped CVMs with N-1
// dedicated cores plus one host core, and the two busy-wait ablations
// (Fig. 6's cyan lines). Higher is better; the x axis is total physical
// cores, following §5.1's equal-resources accounting.
func RunFig6(coreCounts []int, workPerVCPU sim.Duration, seed uint64) Fig6Result {
	if len(coreCounts) == 0 {
		coreCounts = []int{2, 4, 8, 16, 32, 48, 64}
	}
	fig := trace.NewFigure("Figure 6", "CoreMark-PRO scaling (shared-core vs core-gapped)",
		"cores", "score (effective cores)")
	var res Fig6Result

	for _, N := range coreCounts {
		if N < 2 {
			continue
		}
		score, _ := runCoreMark(Baseline(), N, N, workPerVCPU, seed)
		fig.Series("shared-core").Add(float64(N), score)

		score, n := runCoreMark(GappedDefault(), N, N-1, workPerVCPU, seed)
		fig.Series("core-gapped").Add(float64(N), score)
		h := n.Met.Hist("vm0.runtorun")
		if h.Count() > 0 {
			res.RunToRunMean = h.Mean()
			res.RunToRunStddev = h.Stddev()
		}

		bw := GappedBusyWait()
		bw.DelegateTimer, bw.DelegateVIPI = true, true
		score, _ = runCoreMark(bw, N, N-1, workPerVCPU, seed)
		fig.Series("busy-wait (delegated)").Add(float64(N), score)

		score, _ = runCoreMark(GappedBusyWait(), N, N-1, workPerVCPU, seed)
		fig.Series("busy-wait, no delegation").Add(float64(N), score)
	}
	res.Figure = fig
	return res
}

// RunFig7 reproduces the multi-VM scaling figure: an increasing count of
// 4-core VMs, with every gapped VMM pinned to the single host core. The
// y axis is the aggregate CoreMark-PRO score.
func RunFig7(maxVMs int, workPerVCPU sim.Duration, seed uint64) *trace.Figure {
	if maxVMs <= 0 {
		maxVMs = 16
	}
	fig := trace.NewFigure("Figure 7", "Scaling to multiple 4-core VMs",
		"VMs", "aggregate score")
	const vcpusPerVM = 4

	for _, mode := range []struct {
		label string
		opts  Options
	}{
		{"shared-core", Baseline()},
		{"core-gapped", GappedDefault()},
	} {
		for k := 1; k <= maxVMs; k *= 2 {
			cores := vcpusPerVM * k
			if mode.opts.Mode == Gapped {
				cores++ // the single host core all VMMs share
			}
			n := NewNode(cores, mode.opts, DefaultParams(), seed)
			marks := make([]*guest.CoreMark, k)
			for i := 0; i < k; i++ {
				marks[i] = guest.NewCoreMark(vcpusPerVM, workPerVCPU)
				if _, err := n.NewVM(fmt.Sprintf("vm%d", i), vcpusPerVM, marks[i]); err != nil {
					panic(err)
				}
			}
			end := n.RunUntilAllHalted(sim.Duration(200) * workPerVCPU)
			agg := 0.0
			for _, cm := range marks {
				if !cm.Done() {
					panic("fig7: VM did not finish")
				}
				agg += cm.Score(sim.Duration(end))
			}
			fig.Series(mode.label).Add(float64(k), agg)
			if k == 1 && maxVMs == 1 {
				break
			}
		}
	}
	return fig
}
