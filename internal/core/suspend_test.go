package core

import (
	"testing"

	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

func TestSuspendResumeRoundTrip(t *testing.T) {
	n := NewNode(4, GappedDefault(), DefaultParams(), 13)
	cm := guest.NewCoreMark(2, 100*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond)

	if err := n.SuspendVM(vm); err != nil {
		t.Fatal(err)
	}
	if !vm.Suspended() {
		t.Fatal("not marked suspended")
	}
	// Give the kicks time to land; then verify no progress while parked.
	n.Eng.RunFor(5 * sim.Millisecond)
	before := progress(cm)
	n.Eng.RunFor(50 * sim.Millisecond)
	after := progress(cm)
	if after != before {
		t.Fatalf("suspended VM made progress: %v -> %v", before, after)
	}
	// Cores stay dedicated and bound while parked: the host cannot
	// repossess a suspended CVM's cores.
	for _, c := range vm.GuestCores() {
		if !n.Mon.IsDedicated(c) {
			t.Fatalf("core %d no longer dedicated during suspend", c)
		}
		if err := n.Mon.ReclaimCore(c); err == nil {
			t.Fatal("host reclaimed a suspended CVM's core")
		}
	}

	// Double suspend / bogus resume errors.
	if err := n.SuspendVM(vm); err != ErrAlreadySuspended {
		t.Fatalf("double suspend: %v", err)
	}

	if err := n.ResumeVM(vm); err != nil {
		t.Fatal(err)
	}
	if err := n.ResumeVM(vm); err != ErrNotSuspended {
		t.Fatalf("double resume: %v", err)
	}
	n.RunUntilAllHalted(10 * sim.Second)
	if !cm.Done() {
		t.Fatal("workload did not finish after resume")
	}
	if n.Met.Counter("vm0.suspend").Value() != 1 || n.Met.Counter("vm0.resume").Value() != 1 {
		t.Fatal("suspend/resume accounting")
	}
}

func progress(cm *guest.CoreMark) float64 {
	return cm.Score(sim.Second) // any fixed divisor: proportional to work done
}

func TestSuspendDeliversPendingInterruptsOnResume(t *testing.T) {
	// A device completion that arrives while the VM is parked must be
	// delivered when it resumes — not lost.
	n := NewNode(3, GappedDefault(), DefaultParams(), 13)
	z := guest.NewIOzone(256<<10, true, 512<<10) // 2 records
	vm, err := n.NewVM("vm0", 1, z)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first sync request get submitted, then suspend before the
	// (media-latency-delayed) completion arrives.
	n.Eng.RunFor(2*sim.Millisecond + 30*sim.Microsecond)
	if err := n.SuspendVM(vm); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond) // completion fires while parked
	if z.Moved() == 512<<10 {
		t.Skip("timing: I/O finished before suspend took effect")
	}
	if err := n.ResumeVM(vm); err != nil {
		t.Fatal(err)
	}
	n.RunUntilAllHalted(10 * sim.Second)
	if z.Moved() != 512<<10 {
		t.Fatalf("I/O lost across suspend: moved %d", z.Moved())
	}
}

func TestSuspendSharedModeRefused(t *testing.T) {
	n := NewNode(3, Baseline(), DefaultParams(), 13)
	vm, err := n.NewVM("vm0", 1, guest.NewCoreMark(1, sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SuspendVM(vm); err != ErrNotGapped {
		t.Fatalf("shared suspend: %v", err)
	}
	n.RunUntilAllHalted(sim.Second)
}

func TestSuspendedContextStaysSealed(t *testing.T) {
	// While parked, the dedicated core holds the guest's wiped-or-own
	// state only; the host never gains residue from parking a CVM.
	n := NewNode(4, GappedDefault(), DefaultParams(), 13)
	cm := guest.NewCoreMark(2, 100*sim.Millisecond)
	vm, err := n.NewVM("vm0", 2, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond)
	if err := n.SuspendVM(vm); err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(20 * sim.Millisecond)
	for _, c := range vm.GuestCores() {
		for _, d := range n.Mach.Core(c).DomainsObserved() {
			if d == uarch.DomainHost {
				// Host must not have executed after dedication.
				log := n.Mach.Core(c).ExecLog()
				sawGuest := false
				for _, r := range log {
					if r.Domain == vm.Domain() {
						sawGuest = true
					}
					if sawGuest && r.Domain == uarch.DomainHost {
						t.Fatalf("host ran on parked CVM core %d", c)
					}
				}
			}
		}
	}
	n.ResumeVM(vm)
	n.RunUntilAllHalted(10 * sim.Second)
}
