package core

import (
	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/uarch"
)

// This file is the shared-core baseline (§5.1): a traditional
// non-confidential VM. Guest compute runs inside vCPU threads that
// time-share the host's online cores under the kernel scheduler; exits
// are handled on the same core by in-kernel KVM; device emulation runs on
// the VMM's floating I/O thread. The costs this path pays that the
// gapped path does not — same-core exit handling, host interference with
// guest microarchitectural state — and vice versa are exactly what the
// evaluation measures.

// startShared boots a shared-mode vCPU.
func (v *VCPU) startShared() {
	v.startTimers()
	v.advanceShared()
}

// advanceShared interprets the next program action on the vCPU thread.
func (v *VCPU) advanceShared() {
	if v.stopped || v.halted || v.waitIO || v.idle {
		return
	}
	n := v.node()
	p := v.params()
	if !v.hasCur {
		v.cur = v.vm.prog.Next(v.idx)
		v.hasCur = true
	}
	switch v.cur.Kind {
	case guest.ActCompute:
		work := sim.Duration(float64(v.cur.Work) * v.encFactor())
		v.hasCur = false
		n.Kern.Submit(v.thread, "guest", work, func() { v.advanceShared() })

	case guest.ActIO:
		req := v.cur.Req
		v.hasCur = false
		if req.Dev == guest.SRIOVNet {
			n.Kern.Submit(v.thread, "vf-doorbell", 200, func() {
				v.vm.VMM.VF.Submit(v.idx, req)
				if req.Sync {
					v.waitIO = true
				} else {
					v.advanceShared()
				}
			})
			return
		}
		// virtio doorbell: same-core exit bouncing to the userspace VMM
		// (one local user/kernel round trip), then the request lands on
		// the VMM I/O thread.
		v.countExit(ExitMMIO)
		n.Kern.Submit(v.thread, "mmio-exit", p.KVMExitKernel+p.SharedMMIO, func() {
			v.vm.VMM.Submit(v.idx, req)
			if req.Sync {
				v.waitIO = true
			} else {
				v.advanceShared()
			}
		})

	case guest.ActVIPI:
		target := v.cur.Target
		v.hasCur = false
		if target >= 0 && target < len(v.vm.vipiSentAt) {
			v.vm.vipiSentAt[target] = v.eng().Now()
		}
		v.countExit(ExitVIPI)
		// Sender's trap is handled by the in-kernel vGIC fast path on
		// the same core (Table 3's 3.85 µs), then a physical IPI kicks
		// the target core.
		n.Kern.Submit(v.thread, "vipi-exit", p.SharedVGIC+150, func() {
			if target >= 0 && target < len(v.vm.vcpus) {
				tgt := v.vm.vcpus[target]
				v.eng().After(n.Mach.IPILatency(), "vipi-wire", func() {
					tgt.sharedInject(guest.Event{Kind: guest.EvVIPI, From: v.idx})
				})
			}
			v.advanceShared()
		})

	case guest.ActWFI:
		v.hasCur = false
		v.idle = true
		// The vCPU thread blocks in the kernel (WFI trap); nothing to do.

	case guest.ActHalt:
		v.hasCur = false
		v.halted = true
		v.stopTimers()
	}
}

// sharedInject delivers an event to a shared-core guest: in-kernel vGIC
// injection plus the guest's handler, charged on the vCPU thread.
func (v *VCPU) sharedInject(ev guest.Event) {
	if v.stopped || v.halted {
		return
	}
	p := v.params()
	v.node().Kern.Submit(v.thread, "inject", p.SharedVGIC+p.GuestIRQHandle, func() {
		if v.deliverEvent(ev) {
			v.advanceShared()
		}
	})
}

// onTickShared charges one timer tick on the shared path: the exit and
// vGIC work happen on whatever core the vCPU occupies, stealing guest
// time, polluting the guest's microarchitectural state, and forcing a
// partial re-warm (§2.3's interference cost).
func (v *VCPU) onTickShared() {
	n := v.node()
	p := v.params()
	n.Met.Counter(v.vm.name + ".ticks").Inc()
	v.countExit(ExitTimer)

	base := p.KVMExitKernel + p.SharedVGIC + p.GuestIRQHandle + p.HostNoise

	if n.Kern.Running(v.thread.Core()) == v.thread {
		core := n.Mach.Core(v.thread.Core())
		warmth := core.Uarch.Warmth(v.vm.domain)
		// The re-warm penalty scales with the working set at risk: a
		// cache-hungry workload pays more for the same interference.
		rewarm := sim.Duration((1 - warmth) * v.footprint() / p.GuestFootprint * float64(p.RewarmCost))
		// The host's handler runs on the guest's core, evicting state.
		core.RecordExecution(uarch.DomainHost, 0.08, 0)
		n.Kern.StealCPU(v.thread.Core(), base+rewarm, nil)
		return
	}
	// vCPU not on a core right now (queued or in WFI): charge the
	// handler as a work item, which also wakes an idle guest.
	n.Kern.Submit(v.thread, "tick", base, func() {
		v.vm.prog.Deliver(v.idx, guest.Event{Kind: guest.EvTimer})
		if v.idle {
			v.idle = false
			v.advanceShared()
		}
	})
}
