package core

import (
	"coregap/internal/guest"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/rmm"
	"coregap/internal/rpc"
	"coregap/internal/sim"
)

// ExitReason classifies VM exits for accounting (Table 4 distinguishes
// interrupt-related exits from the rest).
type ExitReason int

// Exit reasons.
const (
	ExitTimer   ExitReason = iota // virtual-timer interrupt or EOI trap
	ExitVIPI                      // ICC_SGI1R trap (guest IPI send)
	ExitMgmtIRQ                   // residual host management interrupt
	ExitMMIO                      // device doorbell / emulated MMIO
	ExitMisc                      // other traps (console, sysregs)
	ExitKick                      // host-requested exit for injection (Fig. 5)
	ExitHalt                      // vCPU finished
)

// InterruptRelated reports whether the reason counts into Table 4's
// "interrupt-related exits" row.
func (r ExitReason) InterruptRelated() bool {
	switch r {
	case ExitTimer, ExitVIPI, ExitMgmtIRQ, ExitKick:
		return true
	}
	return false
}

func (r ExitReason) String() string {
	switch r {
	case ExitTimer:
		return "timer"
	case ExitVIPI:
		return "vipi"
	case ExitMgmtIRQ:
		return "mgmt-irq"
	case ExitMMIO:
		return "mmio"
	case ExitMisc:
		return "misc"
	case ExitKick:
		return "kick"
	case ExitHalt:
		return "halt"
	default:
		return "unknown"
	}
}

// exitInfo is the record the monitor writes to shared memory on an exit.
type exitInfo struct {
	reason ExitReason
	req    guest.IORequest // ExitMMIO
	target int             // ExitVIPI
}

// VCPU is one virtual CPU in either execution mode.
type VCPU struct {
	vm  *VM
	idx int

	rec    *rmm.REC  // gapped only
	dcore  hw.CoreID // dedicated core (gapped) or NoCore
	thread *host.Thread
	mb     *rpc.Mailbox // run-call channel (gapped)

	// Guest-side execution state.
	started bool
	halted  bool
	stopped bool
	inGuest bool // gapped: guest context live on the dedicated core
	idle    bool // WFI (or blocked on sync I/O)
	waitIO  bool

	hasCur  bool
	cur     guest.Action
	remWork sim.Duration
	// afterCompute, when set, overrides the continuation of the current
	// compute slice (doorbell costs and handler sequences).
	afterCompute func()

	// Interrupt machinery.
	tick      *sim.Ticker
	mgmtTimer *sim.Timer
	miscTimer *sim.Timer

	// Gapped exit plumbing.
	exitCompletedAt sim.Time
	haveExitStamp   bool
	kickQueue       []guest.Event
	pendingInj      []guest.Event
	kickRequested   bool
	// tickEOIPending marks that the guest must take the second
	// (EOI/re-arm) exit of a non-delegated timer tick after re-entry.
	tickEOIPending bool
	// epoch increments on every exit and entry; monitor-local
	// continuations (delegated timer/IPI handling) check it so they do
	// not resume a guest context that exited and re-entered meanwhile.
	epoch uint64
	// pendingRebind is the target core of an in-flight coarse-timescale
	// rebinding (hw.NoCore when none); rebindInFlight guards the whole
	// window from the host's request to the committed migration.
	pendingRebind  hw.CoreID
	rebindInFlight bool
	// parked marks a vCPU held out of execution by a host-initiated
	// suspend; resume re-issues its run call.
	parked bool

	src *sim.Source
}

// Index reports the vCPU index.
func (v *VCPU) Index() int { return v.idx }

// Halted reports whether the vCPU has finished its program.
func (v *VCPU) Halted() bool { return v.halted }

// DedicatedCore reports the gapped-mode core (NoCore in shared mode).
func (v *VCPU) DedicatedCore() hw.CoreID { return v.dcore }

func (v *VCPU) node() *Node      { return v.vm.node }
func (v *VCPU) params() Params   { return v.vm.node.P }
func (v *VCPU) eng() *sim.Engine { return v.vm.node.Eng }

func (v *VCPU) gapped() bool { return v.vm.node.Opts.Mode == Gapped }

// encFactor is the guest-compute scaling for memory encryption.
func (v *VCPU) encFactor() float64 {
	if v.node().Opts.ModelEncryption {
		return 1 + v.params().MemEncOverhead
	}
	return 1
}

// countExit records a host-visible exit for Table 4 accounting.
func (v *VCPU) countExit(r ExitReason) {
	n := v.node()
	n.Eng.Count(cVCPUExit)
	n.Eng.Trace().Emit(sim.TCExit, exitTraceName(r), int32(v.dcore), int64(v.idx))
	n.Met.Counter(v.vm.name + ".exits.total").Inc()
	if r.InterruptRelated() {
		n.Met.Counter(v.vm.name + ".exits.interrupt").Inc()
	}
	n.Met.Counter(v.vm.name + ".exits." + r.String()).Inc()
}

// startTimers arms the guest tick and the residual-exit generators.
func (v *VCPU) startTimers() {
	if v.started {
		return
	}
	v.started = true
	n := v.node()
	p := v.params()
	v.src = n.Eng.Source("vcpu." + v.thread.Name())

	v.tick = sim.NewTicker(n.Eng, v.thread.Name()+":tick", p.GuestTick, v.onTick)
	// Stagger tick phases across vCPUs: real guests do not tick in
	// lockstep, and a thundering herd of synchronized timer exits would
	// distort the host-core queueing model.
	phase := v.src.Duration(0, p.GuestTick-1)
	n.Eng.After(phase, v.thread.Name()+":tick-phase", func() {
		if !v.halted && !v.stopped {
			v.tick.Start()
		}
	})

	if v.gapped() {
		if p.MgmtExitRate > 0 {
			v.mgmtTimer = sim.NewTimer(n.Eng, v.thread.Name()+":mgmt", func() { v.onResidual(ExitMgmtIRQ) })
			v.mgmtTimer.Arm(v.src.Exp(rateToMean(p.MgmtExitRate)))
		}
		misc := p.MiscExitRateDeleg
		if !n.Opts.DelegateTimer {
			misc = p.MiscExitRateNoDeleg
		}
		if misc > 0 {
			v.miscTimer = sim.NewTimer(n.Eng, v.thread.Name()+":misc", func() { v.onResidual(ExitMisc) })
			v.miscTimer.Arm(v.src.Exp(rateToMean(misc)))
		}
	}
}

func rateToMean(perSec float64) sim.Duration {
	return sim.Duration(float64(sim.Second) / perSec)
}

func (v *VCPU) stopTimers() {
	if v.tick != nil {
		v.tick.Stop()
	}
	if v.mgmtTimer != nil {
		v.mgmtTimer.Disarm()
	}
	if v.miscTimer != nil {
		v.miscTimer.Disarm()
	}
}

// shutdown force-stops the vCPU (VM teardown).
func (v *VCPU) shutdown() {
	v.stopped = true
	v.halted = true
	v.stopTimers()
	if v.gapped() {
		if v.inGuest {
			v.pauseGuestCompute()
			v.inGuest = false
		}
		v.mb.Abort()
	}
	v.node().Kern.Kill(v.thread)
}

// FootprintReporter is an optional guest.Program extension: workloads
// whose working-set size varies (e.g. the CoreMark-PRO suite) report it
// so interference costs scale with the state actually at risk (§2.3).
type FootprintReporter interface {
	Footprint(vcpu int) float64
}

// footprint reports the guest's current per-core footprint.
func (v *VCPU) footprint() float64 {
	if fr, ok := v.vm.prog.(FootprintReporter); ok {
		if f := fr.Footprint(v.idx); f > 0 {
			return f
		}
	}
	return v.params().GuestFootprint
}

// deliverEvent hands an event to the program at guest level, charging the
// interrupt-handler cost where appropriate, and un-idles the guest.
// Returns true when the guest was idle and should re-evaluate its
// program.
func (v *VCPU) deliverEvent(ev guest.Event) bool {
	v.node().Eng.Count(cInjections)
	v.node().Eng.Trace().Emit(sim.TCIRQ, "core.inject", int32(v.dcore), int64(ev.Kind))
	if ev.Kind == guest.EvVIPI && v.idx < len(v.vm.vipiSentAt) {
		if t := v.vm.vipiSentAt[v.idx]; t != 0 {
			v.node().Met.Lat(v.vm.name+".vipi.latency", v.eng().Now(), v.eng().Now().Sub(t))
			v.vm.vipiSentAt[v.idx] = 0
		}
	}
	v.vm.prog.Deliver(v.idx, ev)
	if ev.Kind == guest.EvIOComplete || ev.Kind == guest.EvPacket {
		v.waitIO = false
	}
	wasIdle := v.idle
	v.idle = false
	return wasIdle || !v.hasCur
}
