package core

import (
	"fmt"

	"coregap/internal/gic"
	"coregap/internal/granule"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/planner"
	"coregap/internal/rmm"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// Mode selects how guests execute on a node.
type Mode int

// Execution modes.
const (
	// SharedCore is the paper's baseline: a traditional non-confidential
	// VM whose vCPU threads time-share the host's cores under KVM, with
	// exits handled on the same core (§5.1).
	SharedCore Mode = iota
	// Gapped is core-gapped confidential VMs: dedicated cores, cross-core
	// RPC exits, and (per Options) delegated interrupt management.
	Gapped
)

func (m Mode) String() string {
	if m == Gapped {
		return "core-gapped"
	}
	return "shared-core"
}

// Options configure a node's execution policy — the axes the paper's
// evaluation sweeps.
type Options struct {
	Mode Mode
	// DelegateTimer / DelegateVIPI: monitor-local interrupt emulation
	// (§4.4); both true in the full design, both false in the Table 3/4
	// "without delegation" ablation.
	DelegateTimer bool
	DelegateVIPI  bool
	// BusyWaitRPC replaces IPI-notified asynchronous calls with
	// Quarantine-style yield-polling vCPU threads (Fig. 6 cyan lines).
	BusyWaitRPC bool
	// ModelEncryption applies the 2-3% memory-encryption overhead to
	// guest compute (off by default, matching the evaluation platform).
	ModelEncryption bool
	// PartitionLLC enables way-partitioning of the shared cache
	// (recommended mitigation for the remaining cross-core channel).
	PartitionLLC bool
	// MetricsWindow, when non-zero, rolls every latency metric over
	// fixed simulated-time windows of this width (trace.Windowed) in
	// addition to the whole-run histograms. Windows are driven purely by
	// engine time, so enabling them never perturbs existing artifacts.
	MetricsWindow sim.Duration
}

// GappedDefault is the full core-gapping design.
func GappedDefault() Options {
	return Options{Mode: Gapped, DelegateTimer: true, DelegateVIPI: true}
}

// GappedNoDelegation is the Table 3/4 ablation.
func GappedNoDelegation() Options { return Options{Mode: Gapped} }

// GappedBusyWait is the Quarantine-style ablation of Fig. 6.
func GappedBusyWait() Options {
	return Options{Mode: Gapped, BusyWaitRPC: true}
}

// Baseline is the shared-core comparison system.
func Baseline() Options { return Options{Mode: SharedCore} }

// Node is one physical machine with its full software stack.
type Node struct {
	Eng  *sim.Engine
	Mach *hw.Machine
	Dist *gic.Distributor
	Kern *host.Kernel
	Mon  *rmm.Monitor
	Plan *planner.Planner
	Met  *trace.Set

	P    Params
	Opts Options

	vms     []*VM
	nextPA  granule.PA
	tagSeed *sim.Source
	// wakeups holds the per-host-core wake-up threads (Fig. 4).
	wakeups map[hw.CoreID]*host.Thread
	// boot, when armed via UseBootCache, captures or forks guest boot
	// snapshots for sweep trials sharing a BootKey.
	boot *bootFork
}

// Context bundles the expensive, resettable substrate a Node is built
// on: the simulation engine (event heap, free list, random sources),
// the machine (core microarchitectural buffers, the multi-megabyte
// granule table, shared socket state), the interrupt distributor and
// the metric set. A Context is reused across trials via Reset; the
// cheap per-trial object graph (kernel, monitor, planner, VMs) is
// rebuilt fresh on top by NewNodeIn.
type Context struct {
	Eng  *sim.Engine
	Mach *hw.Machine
	Dist *gic.Distributor
	Met  *trace.Set
}

// NewContext builds an unseeded context. Call Reset before each use —
// including the first.
func NewContext() *Context {
	eng := sim.NewEngine(0)
	mach := hw.NewMachine(eng, hw.DefaultConfig(1))
	return &Context{
		Eng:  eng,
		Mach: mach,
		Dist: gic.NewDistributor(mach),
		Met:  trace.NewSet(),
	}
}

// Reset rewinds every pooled component for a trial on a cores-core
// machine seeded with seed. Afterwards the context is observationally
// identical to a freshly built engine/machine/distributor/metric set:
// determinism depends only on (cores, seed), never on what ran before.
func (c *Context) Reset(cores int, seed uint64) {
	c.Eng.Reset(seed)
	c.Mach.Reset(hw.DefaultConfig(cores))
	c.Dist.Reset()
	c.Met.Reset()
}

// NewNode builds a machine with the given core count and boots the stack.
func NewNode(cores int, opts Options, p Params, seed uint64) *Node {
	ctx := NewContext()
	ctx.Reset(cores, seed)
	return NewNodeIn(ctx, opts, p)
}

// NewNodeIn boots the software stack on an already-Reset context. The
// caller owns the context's lifecycle; the node is valid until the
// context's next Reset.
func NewNodeIn(ctx *Context, opts Options, p Params) *Node {
	ctx.Met.SetWindow(opts.MetricsWindow)
	n := &Node{
		Eng:     ctx.Eng,
		Mach:    ctx.Mach,
		Dist:    ctx.Dist,
		Kern:    host.NewKernel(ctx.Mach, ctx.Dist, ctx.Met),
		Met:     ctx.Met,
		P:       p,
		Opts:    opts,
		Plan:    planner.New(ctx.Mach.NumCores(), 1),
		tagSeed: ctx.Eng.Source("core.tags"),
	}
	n.Mon = rmm.New(ctx.Mach, rmm.Config{
		CoreGapped:    opts.Mode == Gapped,
		DelegateTimer: opts.DelegateTimer,
		DelegateVIPI:  opts.DelegateVIPI,
	}, ctx.Met)
	if opts.PartitionLLC {
		ctx.Mach.Shared().EnablePartitioning()
	}
	return n
}

// allocGranule delegates and returns a fresh physical granule, walking a
// bump allocator across the machine's memory.
func (n *Node) allocGranule() granule.PA {
	pa := n.nextPA
	n.nextPA += granule.Size
	if err := n.Mach.GPT().Delegate(pa); err != nil {
		panic(fmt.Sprintf("core: granule allocation failed: %v", err))
	}
	return pa
}

// VMs reports the node's guests.
func (n *Node) VMs() []*VM { return n.vms }

// RunUntilAllHalted drives the simulation until every vCPU of every VM
// has halted, or maxSim elapses. It reports the halt time.
func (n *Node) RunUntilAllHalted(maxSim sim.Duration) sim.Time {
	deadline := n.Eng.Now().Add(maxSim)
	for n.Eng.Now() < deadline {
		if n.allHalted() {
			return n.Eng.Now()
		}
		next := n.Eng.NextEventTime()
		if next == sim.Forever || next > deadline {
			break
		}
		n.Eng.Step()
	}
	return n.Eng.Now()
}

func (n *Node) allHalted() bool {
	for _, vm := range n.vms {
		for _, v := range vm.vcpus {
			if !v.halted {
				return false
			}
		}
	}
	return true
}
