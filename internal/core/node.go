package core

import (
	"fmt"

	"coregap/internal/gic"
	"coregap/internal/granule"
	"coregap/internal/host"
	"coregap/internal/hw"
	"coregap/internal/planner"
	"coregap/internal/rmm"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// Mode selects how guests execute on a node.
type Mode int

// Execution modes.
const (
	// SharedCore is the paper's baseline: a traditional non-confidential
	// VM whose vCPU threads time-share the host's cores under KVM, with
	// exits handled on the same core (§5.1).
	SharedCore Mode = iota
	// Gapped is core-gapped confidential VMs: dedicated cores, cross-core
	// RPC exits, and (per Options) delegated interrupt management.
	Gapped
)

func (m Mode) String() string {
	if m == Gapped {
		return "core-gapped"
	}
	return "shared-core"
}

// Options configure a node's execution policy — the axes the paper's
// evaluation sweeps.
type Options struct {
	Mode Mode
	// DelegateTimer / DelegateVIPI: monitor-local interrupt emulation
	// (§4.4); both true in the full design, both false in the Table 3/4
	// "without delegation" ablation.
	DelegateTimer bool
	DelegateVIPI  bool
	// BusyWaitRPC replaces IPI-notified asynchronous calls with
	// Quarantine-style yield-polling vCPU threads (Fig. 6 cyan lines).
	BusyWaitRPC bool
	// ModelEncryption applies the 2-3% memory-encryption overhead to
	// guest compute (off by default, matching the evaluation platform).
	ModelEncryption bool
	// PartitionLLC enables way-partitioning of the shared cache
	// (recommended mitigation for the remaining cross-core channel).
	PartitionLLC bool
}

// GappedDefault is the full core-gapping design.
func GappedDefault() Options {
	return Options{Mode: Gapped, DelegateTimer: true, DelegateVIPI: true}
}

// GappedNoDelegation is the Table 3/4 ablation.
func GappedNoDelegation() Options { return Options{Mode: Gapped} }

// GappedBusyWait is the Quarantine-style ablation of Fig. 6.
func GappedBusyWait() Options {
	return Options{Mode: Gapped, BusyWaitRPC: true}
}

// Baseline is the shared-core comparison system.
func Baseline() Options { return Options{Mode: SharedCore} }

// Node is one physical machine with its full software stack.
type Node struct {
	Eng  *sim.Engine
	Mach *hw.Machine
	Dist *gic.Distributor
	Kern *host.Kernel
	Mon  *rmm.Monitor
	Plan *planner.Planner
	Met  *trace.Set

	P    Params
	Opts Options

	vms     []*VM
	nextPA  granule.PA
	tagSeed *sim.Source
	// wakeups holds the per-host-core wake-up threads (Fig. 4).
	wakeups map[hw.CoreID]*host.Thread
}

// NewNode builds a machine with the given core count and boots the stack.
func NewNode(cores int, opts Options, p Params, seed uint64) *Node {
	eng := sim.NewEngine(seed)
	mach := hw.NewMachine(eng, hw.DefaultConfig(cores))
	dist := gic.NewDistributor(mach)
	met := trace.NewSet()
	n := &Node{
		Eng:     eng,
		Mach:    mach,
		Dist:    dist,
		Kern:    host.NewKernel(mach, dist, met),
		Met:     met,
		P:       p,
		Opts:    opts,
		Plan:    planner.New(cores, 1),
		tagSeed: eng.Source("core.tags"),
	}
	n.Mon = rmm.New(mach, rmm.Config{
		CoreGapped:    opts.Mode == Gapped,
		DelegateTimer: opts.DelegateTimer,
		DelegateVIPI:  opts.DelegateVIPI,
	}, met)
	if opts.PartitionLLC {
		mach.Shared().EnablePartitioning()
	}
	return n
}

// allocGranule delegates and returns a fresh physical granule, walking a
// bump allocator across the machine's memory.
func (n *Node) allocGranule() granule.PA {
	pa := n.nextPA
	n.nextPA += granule.Size
	if err := n.Mach.GPT().Delegate(pa); err != nil {
		panic(fmt.Sprintf("core: granule allocation failed: %v", err))
	}
	return pa
}

// VMs reports the node's guests.
func (n *Node) VMs() []*VM { return n.vms }

// RunUntilAllHalted drives the simulation until every vCPU of every VM
// has halted, or maxSim elapses. It reports the halt time.
func (n *Node) RunUntilAllHalted(maxSim sim.Duration) sim.Time {
	deadline := n.Eng.Now().Add(maxSim)
	for n.Eng.Now() < deadline {
		if n.allHalted() {
			return n.Eng.Now()
		}
		next := n.Eng.NextEventTime()
		if next == sim.Forever || next > deadline {
			break
		}
		n.Eng.Step()
	}
	return n.Eng.Now()
}

func (n *Node) allHalted() bool {
	for _, vm := range n.vms {
		for _, v := range vm.vcpus {
			if !v.halted {
				return false
			}
		}
	}
	return true
}
