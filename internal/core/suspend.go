package core

import (
	"errors"

	"coregap/internal/hw"
)

// Host-initiated suspend/resume — one of the VM-abstraction capabilities
// the paper credits core gapping with retaining, unlike statically-sliced
// bare-metal designs (§7: core-gapped VMs "can support dynamic memory
// allocation and deallocation, virtual I/O, host-initiated
// suspend/resume, and live migration").
//
// Suspend parks every vCPU at its next exit: the monitor keeps the cores
// dedicated and the bindings intact (the host may stop *running* a CVM
// whenever it likes — denial of service is its prerogative — but it can
// never repossess the cores or observe the parked context). Resume
// simply issues fresh run calls; interrupts that arrived while parked
// ride in on the resumed entries.

// Suspend errors.
var (
	ErrAlreadySuspended = errors.New("core: VM already suspended")
	ErrNotSuspended     = errors.New("core: VM not suspended")
)

// SuspendVM parks a gapped VM. The call initiates the suspension; each
// vCPU parks at its next exit (forced promptly via the kick doorbell).
func (n *Node) SuspendVM(vm *VM) error {
	if n.Opts.Mode != Gapped {
		return ErrNotGapped
	}
	if vm.suspended {
		return ErrAlreadySuspended
	}
	vm.suspended = true
	n.Met.Counter(vm.name + ".suspend").Inc()
	for _, v := range vm.vcpus {
		v := v
		if v.halted || v.stopped {
			continue
		}
		n.Kern.Submit(v.thread, "suspend-kick", n.P.InjectKick, func() {
			if v.inGuest {
				n.Mach.SendIPI(vm.assign.hostCore, v.dcore, hw.IPIHostToRMM)
			}
		})
	}
	return nil
}

// ResumeVM un-parks a suspended VM: every parked vCPU gets a fresh run
// call carrying whatever interrupts accumulated while it slept.
func (n *Node) ResumeVM(vm *VM) error {
	if n.Opts.Mode != Gapped {
		return ErrNotGapped
	}
	if !vm.suspended {
		return ErrNotSuspended
	}
	vm.suspended = false
	n.Met.Counter(vm.name + ".resume").Inc()
	for _, v := range vm.vcpus {
		if v.halted || v.stopped || !v.parked {
			continue
		}
		v.parked = false
		v.postRunCall()
	}
	return nil
}

// Suspended reports whether the VM is parked.
func (vm *VM) Suspended() bool { return vm.suspended }
