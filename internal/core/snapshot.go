package core

// Boot-snapshot forking: sweep experiments re-run an identical guest
// boot (planner admission, granule delegation, realm construction and
// measurement, vCPU REC creation, activation) for every trial, varying
// only post-boot workload parameters. The RMI half of that sequence —
// granule-table transitions, RIM hashing, stage-2 tree construction,
// realm/REC object building — is pure computation with no effect on the
// event queue, so its *products* can be captured once per (worker,
// BootKey) and transplanted into later trials, while every
// kernel/engine-visible call (thread creation, mailboxes, hotplug,
// run-call posting) is replayed in the original order so scheduling and
// event timing stay byte-identical.
//
// Correctness contract: a forked boot must be observationally identical
// to a full one. Three mechanisms enforce it:
//
//  1. The granule table is restored from an Image taken at the end of
//     the captured boot, and the realm object graph is deep-copied both
//     into and out of the cache (rmm.RealmSnapshot), so no state aliases
//     the cached master.
//  2. Counter deltas for the *skipped* RMI sections are recorded during
//     capture and replayed on fork; counters fired by replayed
//     kernel-visible calls (host.submits etc.) are excluded from the
//     delta so they are not double counted.
//  3. Capture happens before any event fires (boot construction is
//     synchronous at t=0), so the snapshot never has to reproduce
//     scheduler or microarchitectural state.
//
// Snapshots are keyed by an opaque BootKey supplied by the experiment
// layer; equal keys promise an identical boot sequence, and a per-VM
// name/vcpus check catches accidental violations by falling back to a
// full boot.

import (
	"coregap/internal/granule"
	"coregap/internal/rmm"
	"coregap/internal/sim"
)

// Snapshot-forking counters: forks counts transplanted VM boots, hits
// counts trials that found a usable cache entry.
var (
	cSnapFork = sim.DefineCounter("snapshot.fork")
	cSnapHit  = sim.DefineCounter("snapshot.hit")
)

// vmBootProduct is everything one VM's skipped RMI sequence produced:
// the granule-table image and allocation watermark after the boot, the
// realm object graph, and the counter deltas the skipped calls fired.
type vmBootProduct struct {
	name   string
	vcpus  int
	gpt    *granule.Image
	nextPA granule.PA
	realm  *rmm.RealmSnapshot
	eng    []engDelta
	met    []metDelta
}

type engDelta struct {
	id sim.CounterID
	n  uint64
}

type metDelta struct {
	name string
	n    uint64
}

// bootEntry is the cached product list for one BootKey, in NewVM order.
// It is appended to as the first trial with this key boots its VMs, so
// a partially booted (errored) trial simply leaves a shorter prefix;
// later trials fork the prefix and boot the rest in full.
type bootEntry struct {
	vms []*vmBootProduct
}

// BootCache holds boot snapshots for one worker's trial context. It is
// not safe for concurrent use — each parallel worker owns its own cache,
// mirroring the per-worker Context pooling.
type BootCache struct {
	entries map[string]*bootEntry
}

// NewBootCache returns an empty cache.
func NewBootCache() *BootCache { return &BootCache{entries: make(map[string]*bootEntry)} }

// Len reports the number of distinct boot keys cached.
func (c *BootCache) Len() int { return len(c.entries) }

// bootFork is a node's per-trial snapshot state: either capturing the
// first boot for a key or forking from an existing entry.
type bootFork struct {
	entry *bootEntry
	// next indexes the product to fork for the node's next NewVM call;
	// once it runs past the recorded products (or a mismatch disables
	// forking), boots fall through to the full path.
	next      int
	capturing bool
}

// UseBootCache arms boot-snapshot forking on the node for the given
// key. If the cache already holds products for the key, subsequent
// NewVM calls fork from them; otherwise the node captures its boots
// into the cache for later trials. Only meaningful in Gapped mode —
// shared-core boots perform no RMI and are not worth caching.
func (n *Node) UseBootCache(c *BootCache, key string) {
	if c == nil || key == "" || n.Opts.Mode != Gapped {
		return
	}
	e, ok := c.entries[key]
	if !ok {
		e = &bootEntry{}
		c.entries[key] = e
		n.boot = &bootFork{entry: e, capturing: true}
		return
	}
	n.boot = &bootFork{entry: e}
	if len(e.vms) > 0 {
		n.Eng.Count(cSnapHit)
	}
}

// forkProduct returns the cached product for the node's next VM when
// forking is armed and the product matches, nil to take the full path.
func (n *Node) forkProduct(name string, vcpus int) *vmBootProduct {
	b := n.boot
	if b == nil || b.capturing || b.next >= len(b.entry.vms) {
		return nil
	}
	p := b.entry.vms[b.next]
	if p.name != name || p.vcpus != vcpus {
		// Key contract violated: stop forking for this node entirely so
		// the remaining boots run in full against the real table state.
		n.boot = nil
		return nil
	}
	b.next++
	return p
}

// deltaRecorder accumulates engine- and metric-counter deltas across
// the RMI sections of a captured boot. It is paused across
// kernel-visible calls so counters those calls fire (and will fire
// again on fork) never enter the delta.
type deltaRecorder struct {
	n       *Node
	engBase map[string]uint64
	metBase map[string]uint64
	eng     map[string]uint64
	met     map[string]uint64
	active  bool
}

func newDeltaRecorder(n *Node) *deltaRecorder {
	return &deltaRecorder{
		n:       n,
		engBase: make(map[string]uint64),
		metBase: make(map[string]uint64),
		eng:     make(map[string]uint64),
		met:     make(map[string]uint64),
	}
}

func (r *deltaRecorder) resume() {
	clear(r.engBase)
	r.n.Eng.Counters(func(name string, v uint64) { r.engBase[name] = v })
	clear(r.metBase)
	for _, name := range r.n.Met.CounterNames() {
		r.metBase[name] = r.n.Met.Counter(name).Value()
	}
	r.active = true
}

func (r *deltaRecorder) pause() {
	if !r.active {
		return
	}
	r.active = false
	r.n.Eng.Counters(func(name string, v uint64) {
		if d := v - r.engBase[name]; d != 0 {
			r.eng[name] += d
		}
	})
	for _, name := range r.n.Met.CounterNames() {
		if d := r.n.Met.Counter(name).Value() - r.metBase[name]; d != 0 {
			r.met[name] += d
		}
	}
}

// deltas freezes the accumulated counts into replayable form. Engine
// counters are resolved to ids once here (DefineCounter is idempotent),
// and both lists are emitted in sorted-name order for determinism.
func (r *deltaRecorder) deltas() (eng []engDelta, met []metDelta) {
	for _, name := range sortedKeys(r.eng) {
		eng = append(eng, engDelta{id: sim.DefineCounter(name), n: r.eng[name]})
	}
	for _, name := range sortedKeys(r.met) {
		met = append(met, metDelta{name: name, n: r.met[name]})
	}
	return eng, met
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// replayDeltas fires the recorded counter deltas on the node, standing
// in for the skipped RMI calls.
func (n *Node) replayDeltas(p *vmBootProduct) {
	for _, d := range p.eng {
		n.Eng.CountN(d.id, d.n)
	}
	for _, d := range p.met {
		n.Met.Counter(d.name).Add(d.n)
	}
}
