package core

import (
	"fmt"

	"coregap/internal/rpc"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

// This file implements the §6.1 discussion experiment: how would core
// gapping behave on Intel TDX? The architectural difference the paper
// calls out is page-table handling — "TDX uses separate secure and
// insecure page tables for confidential VMs, allowing the host to
// manipulate untrusted portions of guest address space without calling
// the firmware. By contrast, the RMM is invoked for all page table
// modifications; thus we might expect a core-gapped version of TDX to
// have moderately better relative performance, due to fewer cross-core
// RPCs."

// TDXResult compares the stage-2 maintenance cost of the two designs.
type TDXResult struct {
	Table *trace.Table
	// Per-operation cost of an *unprotected* (shared-memory) mapping
	// update under each architecture, and the total for the churn run.
	CCAPerOp sim.Duration
	TDXPerOp sim.Duration
	// RPCs issued per 1000 mixed operations.
	CCARPCs uint64
	TDXRPCs uint64
}

// hostPTEUpdate is the host's local cost to edit its own (insecure) EPT.
const hostPTEUpdate = 90 * sim.Nanosecond

// monitorRTTWork is the monitor's validation+update work per RTT call.
const monitorRTTWork = 120 * sim.Nanosecond

// RunTDXComparison drives a memory-churn phase — `ops` mapping updates
// against a running CVM, with the given fraction targeting unprotected
// (shared) guest memory — under the two architectures' rules:
//
//   - CCA rules: every update, protected or not, is a synchronous
//     cross-core RPC to the monitor;
//   - TDX rules: updates to unprotected memory edit the host-owned
//     insecure page table locally; only protected-memory updates RPC.
func RunTDXComparison(ops int, sharedFrac float64, seed uint64) TDXResult {
	if ops <= 0 {
		ops = 10000
	}
	p := DefaultParams()

	run := func(tdxStyle bool) (sim.Duration, uint64) {
		eng := sim.NewEngine(seed)
		src := eng.Source("churn")
		mb := rpc.NewMailbox(eng, "rtt")
		var rpcs uint64
		var done int
		var next func()
		next = func() {
			if done >= ops {
				return
			}
			done++
			shared := src.Float64() < sharedFrac
			if tdxStyle && shared {
				// Host edits its own EPT: purely local.
				eng.After(hostPTEUpdate, "ept-update", next)
				return
			}
			// Synchronous RPC to the monitor on the dedicated core.
			rpcs++
			mb.Post("rtt-op", p.Transport.Prop)
			eng.After(p.Transport.PickupLatency(), "rtt-pickup", func() {
				if _, ok := mb.TryTake(); !ok {
					return
				}
				eng.After(monitorRTTWork, "rtt-work", func() {
					mb.Complete("ok", p.Transport.Prop)
					eng.After(p.Transport.PickupLatency(), "rtt-resp", func() {
						if _, ok := mb.TryResponse(); ok {
							next()
						}
					})
				})
			})
		}
		next()
		eng.Run()
		return sim.Duration(eng.Now()), rpcs
	}

	ccaTotal, ccaRPCs := run(false)
	tdxTotal, tdxRPCs := run(true)

	res := TDXResult{
		CCAPerOp: ccaTotal / sim.Duration(ops),
		TDXPerOp: tdxTotal / sim.Duration(ops),
		CCARPCs:  ccaRPCs * 1000 / uint64(ops),
		TDXRPCs:  tdxRPCs * 1000 / uint64(ops),
	}
	tb := trace.NewTable("§6.1", "Stage-2 maintenance under CCA vs TDX rules (core-gapped)",
		"per-op", "RPCs/1000 ops", "total")
	tb.AddRow("CCA (all updates via monitor)",
		res.CCAPerOp.String(), fmt.Sprintf("%d", res.CCARPCs), ccaTotal.String())
	tb.AddRow("TDX (host edits insecure EPT)",
		res.TDXPerOp.String(), fmt.Sprintf("%d", res.TDXRPCs), tdxTotal.String())
	res.Table = tb
	return res
}
