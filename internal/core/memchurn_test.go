package core

import (
	"testing"

	"coregap/internal/granule"
	"coregap/internal/guest"
	"coregap/internal/sim"
)

// TestDynamicMemoryWhileRunning exercises §7's "dynamic memory allocation
// and deallocation" claim: the host balloons pages into and out of a
// *running* core-gapped CVM through the monitor (stage-2 churn), without
// disturbing the guest and without unbalancing granule accounting.
func TestDynamicMemoryWhileRunning(t *testing.T) {
	n := NewNode(3, GappedDefault(), DefaultParams(), 21)
	cm := guest.NewCoreMark(1, 80*sim.Millisecond)
	vm, err := n.NewVM("vm0", 1, cm)
	if err != nil {
		t.Fatal(err)
	}
	n.Eng.RunFor(10 * sim.Millisecond)

	gpt := n.Mach.GPT()
	realm := vm.Realm()
	base := granule.IPA(0x8000_0000)

	// Balloon in: map 64 fresh pages while the guest computes.
	var mapped []granule.IPA
	for i := 0; i < 64; i++ {
		ipa := base + granule.IPA((16+i)*granule.Size)
		pa := n.allocGranule()
		if err := n.Mon.DataCreate(realm, ipa, pa, nil); err != nil {
			t.Fatalf("balloon-in page %d: %v", i, err)
		}
		mapped = append(mapped, ipa)
		n.Eng.RunFor(100 * sim.Microsecond)
	}
	inFlight := gpt.CountIn(granule.Data)

	// Balloon out: unmap half of them.
	for i, ipa := range mapped {
		if i%2 == 1 {
			continue
		}
		if err := realm.RTT().Unmap(ipa); err != nil {
			t.Fatalf("balloon-out %v: %v", ipa, err)
		}
		n.Eng.RunFor(100 * sim.Microsecond)
	}
	if got := gpt.CountIn(granule.Data); got != inFlight-32 {
		t.Fatalf("data granules = %d, want %d", got, inFlight-32)
	}

	// The guest never noticed.
	n.RunUntilAllHalted(10 * sim.Second)
	if !cm.Done() {
		t.Fatal("guest disturbed by memory churn")
	}

	// Accounting stays balanced across the whole machine.
	var sum uint64
	for s := granule.Undelegated; s <= granule.Data; s++ {
		sum += gpt.CountIn(s)
	}
	if sum != gpt.Granules() {
		t.Fatalf("granule accounting unbalanced: %d != %d", sum, gpt.Granules())
	}

	// Unmapped (Destroyed) IPAs cannot be silently remapped by the host.
	if err := n.Mon.DataCreate(realm, mapped[0], n.allocGranule(), nil); err == nil {
		t.Fatal("replay of destroyed mapping accepted")
	}
}
