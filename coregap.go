// Package coregap is the public API of the core-gapped confidential VM
// library: a faithful, executable reproduction of "Sharing is leaking:
// blocking transient-execution attacks with core-gapped confidential VMs"
// (ASPLOS 2024).
//
// The library models the complete stack the paper builds and evaluates —
// an Arm-CCA-class machine, the realm management monitor with the
// paper's core-gapping extensions, a Linux/KVM-like host, kvmtool-like
// device models, and the evaluated guest workloads — on a deterministic
// discrete-event simulator. Two execution paths are provided:
//
//   - Baseline(): traditional shared-core VMs (exits handled on-core);
//   - GappedDefault(): core-gapped CVMs (dedicated cores, cross-core RPC
//     exit handling, delegated interrupt management), plus the
//     GappedNoDelegation() and GappedBusyWait() ablations.
//
// Quick start:
//
//	node := coregap.NewNode(8, coregap.GappedDefault(), coregap.DefaultParams(), 42)
//	workload := coregap.NewCoreMark(4, coregap.Second)
//	vm, err := node.NewVM("tenant-a", 4, workload)
//	...
//	node.RunUntilAllHalted(10 * coregap.Second)
//
// Every table and figure of the paper's evaluation can be regenerated
// through the Run* experiment functions (see also cmd/benchsuite and the
// benchmarks in bench_test.go).
package coregap

import (
	"coregap/internal/attack"
	"coregap/internal/core"
	"coregap/internal/exp"
	"coregap/internal/guest"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vulncat"
)

// Simulation time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Core system types.
type (
	// Node is a physical machine with its full software stack.
	Node = core.Node
	// VM is one guest in either execution mode.
	VM = core.VM
	// VCPU is one virtual CPU.
	VCPU = core.VCPU
	// Options selects the execution policy under test.
	Options = core.Options
	// Params is the calibrated cost model.
	Params = core.Params
	// Mode selects shared-core or core-gapped execution.
	Mode = core.Mode

	// Duration and Time are simulated nanoseconds.
	Duration = sim.Duration
	Time     = sim.Time

	// Program is a guest workload.
	Program = guest.Program
	// Action and Event are the workload interface vocabulary.
	Action = guest.Action
	Event  = guest.Event

	// Figure and Table are reproduced evaluation artifacts.
	Figure = trace.Figure
	Table  = trace.Table
)

// Execution modes.
const (
	SharedCore = core.SharedCore
	Gapped     = core.Gapped
)

// Node construction.
var (
	NewNode       = core.NewNode
	DefaultParams = core.DefaultParams

	Baseline           = core.Baseline
	GappedDefault      = core.GappedDefault
	GappedNoDelegation = core.GappedNoDelegation
	GappedBusyWait     = core.GappedBusyWait
)

// Workloads (the paper's evaluation suite).
var (
	NewCoreMark = guest.NewCoreMark
	NewNetPIPE  = guest.NewNetPIPE
	NewIOzone   = guest.NewIOzone
	NewRedis    = guest.NewRedis
	NewKBuild   = guest.NewKBuild
	NewIPIBench = guest.NewIPIBench

	// EncodeOpTag / DecodeOpTag pack a Redis operation and client id
	// into the request tags the load generator uses.
	EncodeOpTag = guest.EncodeOpTag
	DecodeOpTag = guest.DecodeOpTag
)

// Redis operations for Table 5 workloads.
const (
	OpSet       = guest.OpSet
	OpGet       = guest.OpGet
	OpLRange100 = guest.OpLRange100
)

// Guest device classes.
const (
	VirtioNet = guest.VirtioNet
	VirtioBlk = guest.VirtioBlk
	SRIOVNet  = guest.SRIOVNet
)

// The declarative experiment layer (internal/exp): every experiment of
// the paper's evaluation is a named entry in a registry, expanded into
// independent ScenarioSpec trials and executed on a deterministic
// worker-pool Runner — bit-identical results at any parallelism.
type (
	// Experiment is one registered experiment: spec generator + reducer.
	Experiment = exp.Experiment
	// ScenarioSpec is one declarative, independently-executable trial.
	ScenarioSpec = exp.ScenarioSpec
	// ExpWorkload describes what a ScenarioSpec runs.
	ExpWorkload = exp.Workload
	// ExpConfig names an execution policy (baseline, gapped, ablations).
	ExpConfig = exp.Config
	// Trial is one executed scenario: named values + run metadata.
	Trial = exp.Trial
	// ExpRunner executes trials across a goroutine pool.
	ExpRunner = exp.Runner
	// ExpProfile selects root seed and reduced/full sweeps.
	ExpProfile = exp.Profile
	// ExpReport is a reduced experiment outcome (artifacts + trials).
	ExpReport = exp.Report
	// RunMeta is per-trial provenance (seed, config, simulated ns,
	// event count, wall time).
	RunMeta = trace.RunMeta
)

// Registry access and scenario execution.
var (
	Experiments      = exp.Names
	LookupExperiment = exp.Lookup
	RunExperiment    = exp.Run
	NewExpRunner     = exp.NewRunner
	ExecuteScenario  = exp.Execute
)

// Experiment runners: one per table and figure in the paper's evaluation
// (thin wrappers over the registry's spec generators and reducers).
var (
	RunTable2 = exp.RunTable2
	RunTable3 = exp.RunTable3
	RunTable4 = exp.RunTable4
	RunTable5 = exp.RunTable5
	RunFig3   = exp.RunFig3
	RunFig6   = exp.RunFig6
	RunFig7   = exp.RunFig7
	RunFig8   = exp.RunFig8
	RunFig9   = exp.RunFig9
	RunFig10  = exp.RunFig10
)

// Experiment result types.
type (
	Table2Result = exp.Table2Result
	Table3Result = exp.Table3Result
	Table4Result = exp.Table4Result
	Table5Result = exp.Table5Result
	Fig3Result   = exp.Fig3Result
	Fig6Result   = exp.Fig6Result
	Fig8Result   = exp.Fig8Result
)

// Security side: the vulnerability catalogue and attack harness.
type (
	// Vuln is one catalogued vulnerability (Fig. 3).
	Vuln = vulncat.Vuln
	// AttackHarness runs attacker/victim batteries.
	AttackHarness = attack.Harness
	// BatteryResult is one battery's outcome.
	BatteryResult = attack.BatteryResult
)

// Security constructors and schedulings.
var (
	VulnCatalogue    = vulncat.Catalogue
	SummarizeVulns   = vulncat.Summarize
	NewAttackHarness = attack.NewHarness
)

// Attack schedulings.
const (
	SharedTimeSliced        = attack.SharedTimeSliced
	SharedTimeSlicedNoFlush = attack.SharedTimeSlicedNoFlush
	CoreGappedPlacement     = attack.CoreGappedPlacement
)
