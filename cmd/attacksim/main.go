// Command attacksim runs the transient-execution attack battery of the
// paper's threat model (§2.4): every catalogued vulnerability (Fig. 3)
// attempted by an attacker domain against a victim CVM under shared-core
// and core-gapped scheduling, printing what leaked where.
//
// Usage:
//
//	attacksim [-timeline] [-seed N]
package main

import (
	"flag"
	"fmt"

	"coregap/internal/attack"
	"coregap/internal/exp"
	"coregap/internal/sim"
	"coregap/internal/uarch"
	"coregap/internal/vulncat"
)

var (
	timeline = flag.Bool("timeline", false, "also print the Fig. 3 vulnerability timeline")
	seed     = flag.Uint64("seed", 42, "simulation seed")
)

func main() {
	flag.Parse()

	if *timeline {
		r := exp.RunFig3(*seed)
		fmt.Print(r.Timeline)
		fmt.Println()
	}

	h := attack.NewHarness(*seed, 2, false)
	for _, sched := range []attack.Scheduling{
		attack.SharedTimeSlicedNoFlush,
		attack.SharedTimeSliced,
		attack.CoreGappedPlacement,
	} {
		res := h.RunBattery(sched)
		fmt.Println(res)
	}

	fmt.Println()
	s := vulncat.Summarize(vulncat.Catalogue())
	fmt.Printf("catalogue: %d vulnerabilities 2018-2024; core gapping removes %d from the CVM TCB\n",
		s.Total, s.Mitigated)
	fmt.Printf("cross-core survivors: %v (CrossTalk was fixed in microcode;\n", s.UnmitigatedNames)
	fmt.Println("LLC contention is closed by way-partitioning; NetSpectre leaks <10 b/h remotely)")

	// LLC partitioning ablation: the §2.4-recommended mitigation for the
	// remaining shared-cache channel.
	hp := attack.NewHarness(*seed, 2, true)
	resPart := hp.RunBattery(attack.CoreGappedPlacement)
	fmt.Printf("with LLC way-partitioning: %s\n", resPart)

	// PRIME+PROBE on the set-indexed LLC: the contention channel that
	// survives core gapping and dies with way-partitioning.
	fmt.Println()
	fmt.Println("=== cross-core LLC PRIME+PROBE (the residual channel) ===")
	for _, part := range []bool{false, true} {
		cache := uarch.NewSetAssocCache(256, 16)
		attacker, victim := uarch.Guest(1), uarch.Guest(0)
		if part {
			cache.Partition(attacker, 0, 8)
			cache.Partition(victim, 8, 8)
		}
		pp := attack.NewPrimeProbe(cache, attacker)
		vic := attack.NewVictimPattern(cache, victim, sim.NewSource(*seed))
		pp.Prime()
		vic.Run()
		hits, lat := pp.Probe()
		label := "unpartitioned"
		if part {
			label = "way-partitioned"
		}
		fmt.Printf("  %-16s %3d/%d sets signalled, %3d/%d secret bits recovered (probe %v)\n",
			label, attack.DetectedSets(hits), cache.Sets(),
			vic.RecoveredBits(hits), len(vic.Secret), lat)
	}
}
