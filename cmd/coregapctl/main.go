// Command coregapctl runs one VM scenario on a simulated node and prints
// its metrics — a workbench for exploring how execution mode, delegation
// and placement affect a workload.
//
// Scenarios are the same declarative ScenarioSpecs the experiment
// registry expands to: the flags assemble one spec and hand it to the
// internal/exp interpreter, so a coregapctl run is bit-identical to the
// corresponding trial inside benchsuite.
//
// Usage:
//
//	coregapctl -mode gapped -workload coremark -cores 8 -vcpus 7 -work 500ms
//	coregapctl -mode shared -workload iozone -record 65536
//	coregapctl -mode busywait -workload coremark -cores 16
//	coregapctl -workload openloop -rate 100000,250000,500000   # rate sweep, shared boot
//	coregapctl -list
//	coregapctl -exp table3
//	coregapctl -workload ipibench -trace trace.json    # view in Perfetto
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"coregap/internal/exp"
	"coregap/internal/guest"
	"coregap/internal/obs"
	"coregap/internal/sim"
	"coregap/internal/trace"
	"coregap/internal/vmm"
)

var (
	mode     = flag.String("mode", "gapped", "gapped | shared | nodeleg | busywait | busywait-deleg")
	workload = flag.String("workload", "coremark", "coremark | coremarkpro | iozone | ipibench | kbuild | netpipe | redis | openloop")
	cores    = flag.Int("cores", 8, "physical cores on the node")
	vcpus    = flag.Int("vcpus", 0, "guest vCPUs (default: cores-1 gapped, cores shared)")
	work     = flag.Duration("work", 500*time.Millisecond, "compute per vCPU (coremark)")
	record   = flag.Int("record", 64<<10, "record size in bytes (iozone)")
	totalIO  = flag.Int64("total", 64<<20, "total bytes (iozone)")
	jobs     = flag.Int("jobs", 100, "compile jobs (kbuild)")
	rounds   = flag.Int("rounds", 200, "round trips (ipibench, netpipe)")
	msgBytes = flag.Int("bytes", 1024, "message/request size (netpipe, redis)")
	rate     = flag.String("rate", "50000", "offered request rate in req/s; comma-separated rates run as a sweep sharing one booted node (openloop)")
	clients  = flag.Int("clients", 50, "connection pool size (openloop)")
	arrival  = flag.String("arrival", "poisson", "poisson | bursty (openloop)")
	metwin   = flag.Duration("metwin", 10*time.Millisecond, "windowed-metrics width (openloop)")
	seed     = flag.Uint64("seed", 1, "simulation seed")
	expName  = flag.String("exp", "", "run a registered experiment by name instead of a single scenario")
	list     = flag.Bool("list", false, "list the registered experiments and exit")
	parallel = flag.Int("parallel", 0, "worker goroutines for -exp (0 = GOMAXPROCS)")
	traceOut = flag.String("trace", "", "arm sim-time tracing and write a Chrome trace-event JSON here (Perfetto-viewable)")
	counters = flag.Bool("counters", false, "print the trial's engine counter bank")
	memstats = flag.Bool("memstats", false, "print Go runtime allocation totals after the run (for harness memory tracking)")
	verbose  = flag.Bool("v", false, "dump the full metric set")
	queueSel = flag.String("queue", "", "event queue implementation: heap or wheel (empty = build default)")
	repeat   = flag.Int("repeat", 1, "run the scenario N times in one pooled context; >1 exercises boot-snapshot forking (last run is reported)")
)

// parseRates parses the -rate flag: one or more positive req/s values,
// comma-separated.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want positive req/s)", part)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// headlineCounters are the mechanism counters coregapctl always
// surfaces — in -counters output and as Chrome counter tracks — even at
// zero, so the active queue implementation and snapshot behaviour are
// visible at a glance.
var headlineCounters = []string{"wheel.cascade", "snapshot.fork", "snapshot.hit"}

func main() {
	flag.Parse()

	if *queueSel != "" {
		k, err := sim.ParseQueueKind(*queueSel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
			os.Exit(2)
		}
		sim.SetDefaultQueue(k)
	}

	if *list {
		for _, name := range exp.Names() {
			e, _ := exp.Lookup(name)
			fmt.Printf("%-14s %s\n", name, e.Title)
			if e.Desc != "" {
				fmt.Printf("%-14s   %s\n", "", e.Desc)
			}
		}
		return
	}
	if *expName != "" {
		runExperiment(*expName)
		return
	}

	cfg, err := exp.ParseConfig(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
		os.Exit(2)
	}

	n := *vcpus
	if n == 0 {
		n = *cores
		if cfg != exp.ConfigBaseline {
			n--
		}
	}

	rates, err := parseRates(*rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
		os.Exit(2)
	}
	if len(rates) > 1 && *workload != "openloop" {
		fmt.Fprintf(os.Stderr, "coregapctl: -rate sweeps apply to -workload openloop only\n")
		os.Exit(2)
	}

	w := exp.Workload{VCPUs: n}
	switch *workload {
	case "coremark":
		w.Kind, w.Work = exp.WLCoreMark, sim.Duration(work.Nanoseconds())
	case "coremarkpro":
		w.Kind, w.Work = exp.WLCoreMarkPro, sim.Duration(work.Nanoseconds())
	case "iozone":
		w.Kind, w.Bytes, w.Total = exp.WLIOzone, *record, *totalIO
	case "ipibench":
		w.Kind, w.Rounds = exp.WLIPIBench, *rounds
	case "kbuild":
		w.Kind, w.Jobs = exp.WLKBuild, *jobs
	case "netpipe":
		w.Kind, w.Dev, w.Bytes, w.Rounds = exp.WLNetPIPE, guest.SRIOVNet, *msgBytes, *rounds
	case "redis":
		w.Kind, w.Dev, w.Op, w.Clients, w.Bytes, w.Window =
			exp.WLRedis, guest.SRIOVNet, guest.OpGet, 50, *msgBytes, 500*sim.Millisecond
	case "openloop":
		kind := vmm.ArrivalPoisson
		switch *arrival {
		case "poisson":
		case "bursty":
			kind = vmm.ArrivalBursty
		default:
			fmt.Fprintf(os.Stderr, "unknown arrival process %q (poisson | bursty)\n", *arrival)
			os.Exit(2)
		}
		w.Kind, w.Dev, w.Op, w.Clients, w.Bytes, w.Window =
			exp.WLOpenLoop, guest.SRIOVNet, guest.OpSet, *clients, *msgBytes, 250*sim.Millisecond
		w.Rate, w.Arrival = rates[0], kind
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	spec := exp.ScenarioSpec{
		ID:       *workload,
		Config:   cfg,
		Cores:    *cores,
		Workload: w,
		Seed:     *seed,
	}
	if w.Kind == exp.WLOpenLoop {
		spec.MetricsWindow = sim.Duration(metwin.Nanoseconds())
	}
	spec.Trace = *traceOut != ""

	if len(rates) > 1 {
		// A rate sweep runs one trial per offered rate inside a single
		// pooled context sharing a boot key, so every rate after the first
		// forks the booted guest from the cached snapshot instead of
		// re-booting — the sweep's wall clock is dominated by the serving
		// phases, not repeated boots.
		if spec.Trace {
			fmt.Fprintf(os.Stderr, "coregapctl: -trace captures a single run; drop it or pick one -rate\n")
			os.Exit(2)
		}
		if *repeat > 1 {
			fmt.Fprintf(os.Stderr, "coregapctl: -repeat and a -rate sweep are mutually exclusive\n")
			os.Exit(2)
		}
		spec.BootKey = "coregapctl"
		ctx := exp.NewTrialContext()
		for i, r := range rates {
			spec.Workload.Rate = r
			spec.ID = fmt.Sprintf("%s@%gkrps", *workload, r/1000)
			trial, err := exp.ExecuteIn(ctx, spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
				os.Exit(1)
			}
			if i > 0 {
				fmt.Println()
			}
			printTrial(spec, trial)
		}
		printMemStats()
		return
	}

	var trial exp.Trial
	if *repeat > 1 {
		// Repeated runs share one pooled context and a boot key, so runs
		// after the first fork the guest boot from the cached snapshot
		// (visible as snapshot.hit/snapshot.fork in -counters). Traced
		// runs still boot in full: forking is disabled under tracing so
		// the granule-protocol events stay in the capture.
		spec.BootKey = "coregapctl"
		ctx := exp.NewTrialContext()
		for i := 0; i < *repeat; i++ {
			trial, err = exp.ExecuteIn(ctx, spec)
			if err != nil {
				break
			}
		}
	} else {
		trial, err = exp.Execute(spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
		os.Exit(1)
	}

	printTrial(spec, trial)
	if *traceOut != "" {
		if err := writeTrace(*traceOut, spec.ID, trial); err != nil {
			fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s\n", len(trial.TraceEvents), *traceOut)
	}
	printMemStats()
}

// printTrial renders one trial: the scenario header, sorted metric
// values and labels, deterministic metadata, any windowed-latency
// logs, and — under -counters — the engine counter bank. Shared by the
// single-scenario path and the -rate sweep.
func printTrial(spec exp.ScenarioSpec, trial exp.Trial) {
	fmt.Printf("config=%s workload=%s cores=%d vcpus=%d seed=%d\n",
		spec.Config, spec.ID, spec.Cores, spec.Workload.VCPUs, spec.Seed)
	keys := make([]string, 0, len(trial.Values))
	for k := range trial.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := trial.Values[k]
		if strings.HasSuffix(k, ".ns") || k == "ns" {
			fmt.Printf("  %-20s %v\n", k, sim.Duration(v))
		} else {
			fmt.Printf("  %-20s %.3f\n", k, v)
		}
	}
	for k, labels := range trial.Labels {
		fmt.Printf("  %-20s %s\n", k, strings.Join(labels, ", "))
	}
	fmt.Printf("  %s\n", trial.Meta)
	if len(trial.Windows) > 0 {
		wnames := make([]string, 0, len(trial.Windows))
		for name := range trial.Windows {
			wnames = append(wnames, name)
		}
		sort.Strings(wnames)
		for _, name := range wnames {
			wl := trace.NewWindowLog(name, "per-window latency", spec.MetricsWindow)
			wl.Add(name, trial.Windows[name])
			fmt.Println()
			fmt.Print(wl.String())
		}
	}
	if *counters {
		bank := make(map[string]uint64, len(trial.Counters)+len(headlineCounters))
		for _, name := range headlineCounters {
			bank[name] = 0
		}
		for name, v := range trial.Counters {
			bank[name] = v
		}
		cnames := make([]string, 0, len(bank))
		for name := range bank {
			cnames = append(cnames, name)
		}
		sort.Strings(cnames)
		fmt.Println("engine counters:")
		for _, name := range cnames {
			fmt.Printf("  %-24s %d\n", name, bank[name])
		}
	}
	if *verbose && trial.Metrics != nil {
		fmt.Println()
		fmt.Print(trial.Metrics.String())
	}
}

// printMemStats reports the process's cumulative Go allocation totals
// under -memstats — the hook scripts/bench.sh uses to show that harness
// memory grows sublinearly with offered rate.
func printMemStats() {
	if !*memstats {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("memstats: total_alloc_bytes=%d heap_alloc_bytes=%d sys_bytes=%d mallocs=%d\n",
		ms.TotalAlloc, ms.HeapAlloc, ms.Sys, ms.Mallocs)
}

// writeTrace exports the trial's captured events as Chrome trace JSON,
// with the headline mechanism counters (wheel cascades, snapshot
// forks/hits) attached as counter tracks.
func writeTrace(path, id string, trial exp.Trial) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tracks := make(map[string]uint64, len(headlineCounters))
	for _, name := range headlineCounters {
		tracks[name] = trial.Counters[name]
	}
	if err := obs.ChromeTraceWithCounters(f, "coregap "+id, trial.TraceEvents, tracks); err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}
	return f.Close()
}

// runExperiment executes one registered experiment, like a focused
// benchsuite invocation.
func runExperiment(name string) {
	rep, err := exp.Run(name, exp.Profile{Seed: *seed}, exp.NewRunner(*parallel))
	if err != nil {
		fmt.Fprintf(os.Stderr, "coregapctl: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("──── %s ────\n", rep.Title)
	for i, a := range rep.Artifacts {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(a.Item.String())
	}
	for _, l := range rep.Lines {
		fmt.Print(l)
		if !strings.HasSuffix(l, "\n") {
			fmt.Println()
		}
	}
	if *verbose {
		for _, m := range rep.Metas() {
			fmt.Printf("  %s\n", m)
		}
	}
}
