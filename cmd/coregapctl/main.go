// Command coregapctl runs one VM scenario on a simulated node and prints
// its metrics — a workbench for exploring how execution mode, delegation
// and placement affect a workload.
//
// Usage:
//
//	coregapctl -mode gapped -workload coremark -cores 8 -vcpus 7 -work 500ms
//	coregapctl -mode shared -workload iozone -record 65536
//	coregapctl -mode busywait -workload coremark -cores 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"coregap/internal/core"
	"coregap/internal/guest"
	"coregap/internal/sim"
)

var (
	mode     = flag.String("mode", "gapped", "gapped | shared | nodeleg | busywait")
	workload = flag.String("workload", "coremark", "coremark | coremarkpro | iozone | ipibench | kbuild")
	cores    = flag.Int("cores", 8, "physical cores on the node")
	vcpus    = flag.Int("vcpus", 0, "guest vCPUs (default: cores-1 gapped, cores shared)")
	work     = flag.Duration("work", 500*time.Millisecond, "compute per vCPU (coremark)")
	record   = flag.Int("record", 64<<10, "record size in bytes (iozone)")
	totalIO  = flag.Int64("total", 64<<20, "total bytes (iozone)")
	jobs     = flag.Int("jobs", 100, "compile jobs (kbuild)")
	rounds   = flag.Int("rounds", 200, "ping-pong rounds (ipibench)")
	seed     = flag.Uint64("seed", 1, "simulation seed")
	verbose  = flag.Bool("v", false, "dump the full metric set")
)

func main() {
	flag.Parse()

	var opts core.Options
	switch *mode {
	case "gapped":
		opts = core.GappedDefault()
	case "shared":
		opts = core.Baseline()
	case "nodeleg":
		opts = core.GappedNoDelegation()
	case "busywait":
		opts = core.GappedBusyWait()
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	n := *vcpus
	if n == 0 {
		n = *cores
		if opts.Mode == core.Gapped {
			n--
		}
	}

	node := core.NewNode(*cores, opts, core.DefaultParams(), *seed)
	var prog guest.Program
	var report func(end sim.Time)
	simWork := sim.Duration(work.Nanoseconds())

	switch *workload {
	case "coremark":
		cm := guest.NewCoreMark(n, simWork)
		prog = cm
		report = func(end sim.Time) {
			fmt.Printf("score: %.3f effective cores over %v\n", cm.Score(sim.Duration(end)), end)
		}
	case "coremarkpro":
		cmp := guest.NewCoreMarkPro(n, simWork, func() sim.Time { return node.Eng.Now() })
		prog = cmp
		report = func(end sim.Time) {
			fmt.Printf("CoreMark-PRO mark: %.3f (geomean of %d workloads) over %v\n",
				cmp.Mark(), len(guest.ProWorkloads()), end)
			for _, w := range guest.ProWorkloads() {
				fmt.Printf("  %-28s %.3f\n", w.Name, cmp.PhaseScores()[w.Name])
			}
		}
	case "iozone":
		z := guest.NewIOzone(*record, true, *totalIO)
		n = 1
		prog = z
		report = func(end sim.Time) {
			fmt.Printf("throughput: %.1f MiB/s over %v\n", z.Throughput(sim.Duration(end)), end)
		}
	case "ipibench":
		b := guest.NewIPIBench(*rounds)
		n = 2
		prog = b
		report = func(end sim.Time) {
			h := node.Met.Hist("vm0.vipi.latency")
			fmt.Printf("vIPI latency: mean %v p99 %v over %d deliveries\n",
				h.Mean(), h.Percentile(99), h.Count())
		}
	case "kbuild":
		kb := guest.NewKBuild(*jobs, n, 250*sim.Millisecond, node.Eng.Source("kbuild"))
		prog = kb
		report = func(end sim.Time) {
			fmt.Printf("build: %d jobs in %v\n", kb.Finished(), end)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	vm, err := node.NewVM("vm0", n, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vm setup: %v\n", err)
		os.Exit(1)
	}

	end := node.RunUntilAllHalted(30 * 60 * sim.Second)
	fmt.Printf("mode=%s workload=%s cores=%d vcpus=%d\n", opts.Mode, *workload, *cores, n)
	report(end)

	exits := node.Met.Counter("vm0.exits.total").Value()
	irq := node.Met.Counter("vm0.exits.interrupt").Value()
	fmt.Printf("exits: %d total, %d interrupt-related\n", exits, irq)
	if h := node.Met.Hist("vm0.runtorun"); h.Count() > 0 {
		fmt.Printf("run-to-run latency: mean %v p99 %v\n", h.Mean(), h.Percentile(99))
	}
	if opts.Mode == core.Gapped {
		fmt.Printf("dedicated cores: %v, host core: %v\n", vm.GuestCores(), vm.HostCore())
		tok, err := node.Mon.Token(vm.Realm(), [32]byte{1})
		if err == nil {
			fmt.Printf("attestation: core-gapped=%v rim=%s...\n", tok.CoreGapped, tok.RIM.String()[:16])
		}
	}
	if *verbose {
		fmt.Println()
		fmt.Print(node.Met.String())
	}
}
