// Command benchsuite regenerates every table and figure of the paper's
// evaluation (§5) and prints them in the paper's shape, side by side with
// the published values where the paper reports exact numbers.
//
// Usage:
//
//	benchsuite [-exp all|table2|table3|table4|table5|fig3|fig6|fig7|fig8|fig9|fig10] [-full] [-seed N]
//
// Without -full, reduced sweeps keep the total runtime in the minutes
// range; -full runs the paper-sized configurations (Fig. 6 up to 63
// dedicated cores).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coregap/internal/core"
	"coregap/internal/sim"
)

var (
	exp    = flag.String("exp", "all", "experiment to run (all, table2..5, fig3, fig6..10, tdx)")
	full   = flag.Bool("full", false, "paper-sized sweeps (slower)")
	seed   = flag.Uint64("seed", 42, "simulation seed")
	csvDir = flag.String("csv", "", "also write each artifact as CSV into this directory")
)

// emit prints an artifact and, with -csv, writes it alongside.
func emit(name string, artifact interface {
	String() string
	CSV() string
}) {
	fmt.Print(artifact.String())
	if *csvDir == "" {
		return
	}
	path := fmt.Sprintf("%s/%s.csv", *csvDir, name)
	if err := os.WriteFile(path, []byte(artifact.CSV()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "csv: %v\n", err)
	}
}

func main() {
	flag.Parse()
	want := strings.ToLower(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran++
		start := time.Now()
		fmt.Printf("──── %s ────\n", e.title)
		e.run()
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

type experiment struct {
	name  string
	title string
	run   func()
}

var experiments = []experiment{
	{"table2", "Table 2: null RMM call latencies", func() {
		r := core.RunTable2(*seed)
		emit("table2", r.Table)
		fmt.Println("paper: async 2757.6 ns | sync 257.7 ns | same-core >12.8 us")
	}},
	{"table3", "Table 3: virtual IPI latency", func() {
		r := core.RunTable3(*seed)
		emit("table3", r.Table)
		fmt.Println("paper: no-delegation 43.9 us | delegated 2.22 us | shared-core 3.85 us")
	}},
	{"table4", "Table 4: interrupt delegation effect on CoreMark-PRO exits", func() {
		r := core.RunTable4(*seed)
		emit("table4", r.Table)
		fmt.Println("paper: interrupt-related 33954±161 → 390±3 | total 37712±504 → 1324±60")
	}},
	{"table5", "Table 5: Redis benchmark (50 clients, 512-byte objects)", func() {
		window := 500 * sim.Millisecond
		if *full {
			window = 2 * sim.Second
		}
		r := core.RunTable5(window, *seed)
		emit("table5", r.Table)
		fmt.Println("paper krps: SET 51.7→56.2 | GET 48.8→55.3 | LRANGE 11.6→14.5 (shared→gapped)")
	}},
	{"fig3", "Figure 3: vulnerability timeline + attack battery", func() {
		r := core.RunFig3(*seed)
		emit("fig3", r.Timeline)
		fmt.Println()
		fmt.Print(r.SecuritySummary())
		fmt.Println("paper: only NetSpectre and CrossTalk demonstrated cross-core leaks in cloud VM settings")
	}},
	{"fig6", "Figure 6: CoreMark-PRO scaling", func() {
		cores := []int{2, 4, 8, 16}
		work := 300 * sim.Millisecond
		if *full {
			cores = []int{2, 4, 8, 16, 32, 48, 64}
			work = sim.Second
		}
		r := core.RunFig6(cores, work, *seed)
		emit("fig6", r.Figure)
		fmt.Printf("run-to-run latency: %.2f ± %.2f us (paper: 26.18 ± 0.96 us)\n",
			r.RunToRunMean.Micros(), r.RunToRunStddev.Micros())
	}},
	{"fig7", "Figure 7: scaling to multiple 4-core VMs", func() {
		vms := 8
		work := 200 * sim.Millisecond
		if *full {
			vms = 16
			work = sim.Second
		}
		emit("fig7", core.RunFig7(vms, work, *seed))
		fmt.Println("paper: aggregate scales linearly; 16 VMMs on one host core do not harm throughput")
	}},
	{"fig8", "Figure 8: NetPIPE latency and throughput", func() {
		sizes := []int{64, 1024, 16384, 262144, 1 << 20}
		rounds := 30
		if *full {
			sizes = []int{64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20}
			rounds = 100
		}
		r := core.RunFig8(sizes, rounds, *seed)
		emit("fig8-latency", r.Latency)
		fmt.Println()
		emit("fig8-throughput", r.Throughput)
		fmt.Println("paper: virtio up to 2x latency / 30-70% lower throughput gapped;")
		fmt.Println("       SR-IOV within 10-20 us of baseline, up to 5% higher throughput at large sizes")
	}},
	{"fig9", "Figure 9: IOzone sync throughput (virtio-blk)", func() {
		recs := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20}
		if *full {
			recs = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20}
		}
		emit("fig9", core.RunFig9(recs, *seed))
		fmt.Println("paper: core-gapping matches baseline only for large (>10 MiB) I/Os")
	}},
	{"tdx", "§6.1 discussion: stage-2 maintenance under CCA vs TDX rules", func() {
		r := core.RunTDXComparison(20000, 0.5, *seed)
		emit("tdx", r.Table)
		fmt.Println("paper §6.1: TDX-style host-owned insecure page tables need fewer cross-core RPCs")
	}},
	{"fig10", "Figure 10: Linux kernel build", func() {
		cores := []int{4, 8, 16}
		jobs := 150
		if *full {
			cores = []int{2, 4, 8, 16}
			jobs = 400
		}
		emit("fig10", core.RunFig10(cores, jobs, *seed))
		fmt.Println("paper: comparable scaling despite one fewer vCPU and virtio-disk contention")
	}},
}
