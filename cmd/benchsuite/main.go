// Command benchsuite regenerates every table and figure of the paper's
// evaluation (§5) and prints them in the paper's shape, side by side with
// the published values where the paper reports exact numbers.
//
// Usage:
//
//	benchsuite [-exp all|table2|...|fig10|tdx|openloop] [-full] [-seed N]
//	           [-parallel N] [-fresh] [-json] [-csv DIR] [-v] [-progress]
//	           [-counters] [-selfmetrics FILE] [-queue heap|wheel]
//	           [-snapshot=false] [-cpuprofile FILE] [-memprofile FILE]
//
// Experiments come from the internal/exp registry; -exp list prints
// them, and -exp accepts a comma-separated subset (e.g.
// -exp table2,table5,openloop) run in registry order. All selected
// experiments' trials are flattened onto a single
// work-stealing pool of -parallel workers (default: GOMAXPROCS), so a
// long trial in one experiment never idles workers that could run the
// next experiment's trials; results are bit-identical to a serial run
// for the same seed, whatever the worker count. Each worker reuses one
// pooled simulation context (engine, machine, granule table, metric
// set) across its trials; -fresh disables the pooling and rebuilds
// everything per trial, for A/B-ing results and allocation cost.
// Without -full, reduced sweeps keep the total runtime in the minutes
// range; -full runs the paper-sized configurations (Fig. 6 up to 63
// dedicated cores).
//
// -cpuprofile and -memprofile write standard pprof profiles of the run
// (`go tool pprof` reads them), so performance work starts from data.
// -selfmetrics captures the harness's own behaviour — per-worker trial/
// steal/busy/idle stats, allocation and GC deltas, and build provenance —
// as JSON, for tracking the runner itself across revisions.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"flag"

	"coregap/internal/exp"
	"coregap/internal/sim"
	"coregap/internal/trace"
)

var (
	expFlag     = flag.String("exp", "all", "experiments to run (all, list, or comma-separated registry names)")
	full        = flag.Bool("full", false, "paper-sized sweeps (slower)")
	seed        = flag.Uint64("seed", 42, "simulation root seed")
	parallel    = flag.Int("parallel", 0, "worker goroutines shared across all experiments (0 = GOMAXPROCS)")
	fresh       = flag.Bool("fresh", false, "disable per-worker context pooling (rebuild all simulation state per trial)")
	jsonOut     = flag.Bool("json", false, "emit a machine-readable JSON report to stdout")
	csvDir      = flag.String("csv", "", "also write each artifact as CSV into this directory")
	verbose     = flag.Bool("v", false, "print per-trial run metadata")
	cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	progress    = flag.Bool("progress", false, "print a live trials-completed line to stderr")
	countersCSV = flag.Bool("counters", false, "with -csv, also write each experiment's per-trial engine counters as <exp>-counters.csv")
	selfmetrics = flag.String("selfmetrics", "", "write runner self-metrics (worker stats, alloc/GC deltas, provenance) as JSON to this file")
	queueFlag   = flag.String("queue", "", "event queue implementation: heap or wheel (empty = build default)")
	snapshot    = flag.Bool("snapshot", true, "fork sweep trials from cached boot snapshots when specs share a BootKey")
)

// readMetric samples one runtime/metrics uint64 counter (0 if absent).
func readMetric(name string) uint64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}

// selfMetrics is the -selfmetrics JSON document.
type selfMetrics struct {
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	Workers     int               `json:"workers"`
	Fresh       bool              `json:"fresh"`
	Experiments []string          `json:"experiments"`
	WallNS      int64             `json:"wall_ns"`
	AllocBytes  uint64            `json:"alloc_bytes"`
	GCCycles    uint64            `json:"gc_cycles"`
	WorkerStats []exp.WorkerStats `json:"worker_stats"`
}

// trialCounters renders an experiment's per-trial engine counter banks
// as CSV (trial,counter,value rows, trial then counter order).
type trialCounters struct{ rep *exp.Report }

func (tc trialCounters) CSV() string {
	var b strings.Builder
	b.WriteString("trial,counter,value\n")
	for _, t := range tc.rep.Trials {
		names := make([]string, 0, len(t.Counters))
		for name := range t.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "%s,%s,%d\n", t.Spec.ID, name, t.Counters[name])
		}
	}
	return b.String()
}

// emit writes an artifact's CSV rendering into -csv's directory. Unlike
// printing, a failed write is a hard error: a partial CSV tree silently
// poisons downstream plotting.
func emit(name string, item interface{ CSV() string }) error {
	if *csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		return fmt.Errorf("csv %s: %w", name, err)
	}
	path := filepath.Join(*csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(item.CSV()), 0o644); err != nil {
		return fmt.Errorf("csv %s: %w", name, err)
	}
	return nil
}

// jsonTrial is one trial in the -json report.
type jsonTrial struct {
	trace.RunMeta
	Values map[string]float64  `json:"values"`
	Labels map[string][]string `json:"labels,omitempty"`
}

// jsonReport is one experiment in the -json report.
type jsonReport struct {
	Experiment string            `json:"experiment"`
	Title      string            `json:"title"`
	Seed       uint64            `json:"seed"`
	Full       bool              `json:"full"`
	Artifacts  map[string]string `json:"artifacts"` // name -> CSV
	Lines      []string          `json:"lines,omitempty"`
	WorkNS     int64             `json:"work_ns"` // summed per-trial wall clock
	Trials     []jsonTrial       `json:"trials"`
}

// fail stops any active CPU profile before exiting non-zero, so a
// failed run still leaves a readable profile behind.
func fail(code int, format string, args ...any) {
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(code)
}

func main() {
	flag.Parse()
	if *queueFlag != "" {
		k, err := sim.ParseQueueKind(*queueFlag)
		if err != nil {
			fail(2, "benchsuite: %v\n", err)
		}
		sim.SetDefaultQueue(k)
	}
	exp.SetSnapshotForking(*snapshot)
	want := strings.ToLower(*expFlag)
	if want == "list" {
		for _, name := range exp.Names() {
			e, _ := exp.Lookup(name)
			fmt.Printf("%-14s %s\n", name, e.Title)
			if e.Desc != "" {
				fmt.Printf("%-14s   %s\n", "", e.Desc)
			}
		}
		return
	}

	wanted := map[string]bool{}
	for _, name := range strings.Split(want, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wanted[name] = true
		}
	}
	var selected []*exp.Experiment
	for _, name := range exp.Names() {
		if !wanted["all"] && !wanted[name] {
			continue
		}
		delete(wanted, name)
		e, _ := exp.Lookup(name)
		selected = append(selected, e)
	}
	delete(wanted, "all")
	if len(wanted) > 0 {
		unknown := make([]string, 0, len(wanted))
		for name := range wanted {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		fail(2, "unknown experiment(s) %v (try -exp list)\n", unknown)
	}
	if len(selected) == 0 {
		fail(2, "no experiment selected from %q (try -exp list)\n", *expFlag)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(1, "benchsuite: cpuprofile: %v\n", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(1, "benchsuite: cpuprofile: %v\n", err)
		}
	}

	runner := exp.NewRunner(*parallel)
	runner.Fresh = *fresh
	if *progress {
		runner.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	profile := exp.Profile{Seed: *seed, Full: *full}
	allocs0, gcs0 := readMetric("/gc/heap/allocs:bytes"), readMetric("/gc/cycles/total:gc-cycles")
	start := time.Now()
	reports, err := runner.RunExperiments(selected, profile)
	if err != nil {
		fail(1, "benchsuite: %v\n", err)
	}
	wall := time.Since(start)
	if *selfmetrics != "" {
		names := make([]string, len(selected))
		for i, e := range selected {
			names[i] = e.Name
		}
		sm := selfMetrics{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			Workers:     runner.Workers,
			Fresh:       *fresh,
			Experiments: names,
			WallNS:      wall.Nanoseconds(),
			AllocBytes:  readMetric("/gc/heap/allocs:bytes") - allocs0,
			GCCycles:    readMetric("/gc/cycles/total:gc-cycles") - gcs0,
			WorkerStats: runner.WorkerStats(),
		}
		data, merr := json.MarshalIndent(sm, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*selfmetrics, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fail(1, "benchsuite: selfmetrics: %v\n", merr)
		}
	}

	var jsonReports []jsonReport
	for _, rep := range reports {
		if *jsonOut {
			jr := jsonReport{
				Experiment: rep.Experiment,
				Title:      rep.Title,
				Seed:       *seed,
				Full:       *full,
				Artifacts:  map[string]string{},
				Lines:      rep.Lines,
				WorkNS:     rep.Work.Nanoseconds(),
			}
			for _, a := range rep.Artifacts {
				jr.Artifacts[a.Name] = a.Item.CSV()
			}
			for _, t := range rep.Trials {
				jr.Trials = append(jr.Trials, jsonTrial{RunMeta: t.Meta, Values: t.Values, Labels: t.Labels})
			}
			jsonReports = append(jsonReports, jr)
		} else {
			fmt.Printf("──── %s ────\n", rep.Title)
			for i, a := range rep.Artifacts {
				if i > 0 {
					fmt.Println()
				}
				fmt.Print(a.Item.String())
			}
			for _, l := range rep.Lines {
				fmt.Print(l)
				if !strings.HasSuffix(l, "\n") {
					fmt.Println()
				}
			}
			if rep.Paper != "" {
				fmt.Println(rep.Paper)
			}
			if *verbose {
				fmt.Print(trace.MetaTable(rep.Experiment+" trials", rep.Metas()).String())
			}
			fmt.Printf("(%s: %d trials in %.1fs)\n\n", rep.Experiment, len(rep.Trials), rep.Work.Seconds())
		}

		for _, a := range rep.Artifacts {
			if err := emit(a.Name, a.Item); err != nil {
				fail(1, "benchsuite: %v\n", err)
			}
		}
		if *countersCSV {
			if err := emit(rep.Experiment+"-counters", trialCounters{rep}); err != nil {
				fail(1, "benchsuite: %v\n", err)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReports); err != nil {
			fail(1, "benchsuite: json: %v\n", err)
		}
	} else if len(reports) > 1 {
		fmt.Printf("(%d experiments in %.1fs wall)\n", len(reports), wall.Seconds())
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(1, "benchsuite: memprofile: %v\n", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(1, "benchsuite: memprofile: %v\n", err)
		}
		f.Close()
	}
}
