module coregap

go 1.22
