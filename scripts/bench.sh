#!/bin/sh
# bench.sh — regenerate BENCH_7.json, the perf trajectory record for
# this repo.
#
# Quick mode (default, used by `make bench` / `make check`):
#   - runs the internal/sim engine microbenchmarks (ns/op, allocs/op),
#     including the empirical-delta replays (ScheduleShortDelta,
#     TimerChurn) that decide the heap-vs-wheel event queue question
#   - times a fixed benchsuite smoke run (-exp table3 -seed 42 -parallel 1)
#   - records runner self-metrics (per-worker trials/steals/busy/idle,
#     allocation deltas) from a table3 -parallel 2 -selfmetrics run
#   - stamps provenance (git SHA, go version, GOOS/GOARCH, active event
#     queue, snapshot forking on/off)
#   - preserves the "suite" section of an existing BENCH_7.json,
#     seeding it from BENCH_6.json the first time
#
# Full mode (BENCH_FULL=1, used when re-baselining a perf PR):
#   - re-measures the legacy 11-experiment suite (the same set every
#     earlier BENCH_N.json timed, now spelled out via comma-separated
#     -exp because -exp all grew the open-loop experiments) at
#     -parallel 1, 2, 4 and 8, plus a -fresh serial run as the
#     construction-cost baseline
#   - A/Bs the serial suite along this PR's two axes: -snapshot=false
#     (all_parallel1_nosnapshot_s) and -queue wheel
#     (all_parallel1_wheel_s), so the boot-snapshot win and the
#     queue-implementation decision stay measured, not asserted
#   - times the open-loop experiments separately (openloop_parallel4_s)
#     so their cost is visible without muddying the legacy trajectory
#   - computes per-N parallel efficiency, eff(N) = p1 / (N * pN), and
#     rewrites the "suite" section
#   - prints a LOUD warning when any parallel run is slower than serial:
#     that is negative scaling, the regression PR 5 removed.
#
# The committed baseline_* numbers are earlier measurements of the same
# commands on the same class of host; they are inputs to the trajectory,
# not re-measured here.
set -e
cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_7.json}
# QUEUE selects the event-queue implementation for the suite runs (the
# provenance records it); SNAPSHOT=0 disables boot-snapshot forking.
QUEUE=${QUEUE:-heap}
SNAPSHOT=${SNAPSHOT:-1}
SNAPFLAG="-snapshot=true"
[ "$SNAPSHOT" = "1" ] || SNAPFLAG="-snapshot=false"
# The experiment set every earlier BENCH_N.json called "all": the
# paper's eleven artifacts, pre-open-loop. Keep timing exactly this set
# under the all_parallel{N}_s keys so the trajectory stays comparable.
LEGACY="table2,table3,table4,table5,fig3,fig6,fig7,fig8,fig9,tdx,fig10"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "bench: sim microbenchmarks..."
go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$|BenchmarkScheduleShortDelta$|BenchmarkTimerChurn$' \
    -benchmem -count=1 -run '^$' ./internal/sim >"$TMP/micro.txt"

go build -o "$TMP/benchsuite" ./cmd/benchsuite

walltime() {
    # POSIX wall-clock timing with subsecond resolution via awk.
    start=$(date +%s%N)
    "$@" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}"
}

echo "bench: smoke run (table3, serial)..."
SMOKE_S=$(walltime "$TMP/benchsuite" -exp table3 -seed 42 -parallel 1 -queue "$QUEUE" $SNAPFLAG)

echo "bench: runner self-metrics (table3, -parallel 2)..."
"$TMP/benchsuite" -exp table3 -seed 42 -parallel 2 -queue "$QUEUE" $SNAPFLAG \
    -selfmetrics "$TMP/selfmetrics.json" >/dev/null

GIT_SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
GO_VERSION=$(go version | awk '{print $3 "/" $4}')

SUITE_P1_S=""
SUITE_P2_S=""
SUITE_P4_S=""
SUITE_P8_S=""
SUITE_FRESH_P1_S=""
SUITE_NOSNAP_P1_S=""
SUITE_WHEEL_P1_S=""
OPENLOOP_P4_S=""
if [ "${BENCH_FULL:-0}" = "1" ]; then
    echo "bench: legacy suite, fresh (pooling off), -parallel 1..."
    SUITE_FRESH_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -fresh -queue "$QUEUE")
    for n in 1 2 4 8; do
        echo "bench: legacy suite, pooled, -parallel $n..."
        eval "SUITE_P${n}_S=\$(walltime \"$TMP/benchsuite\" -exp \"$LEGACY\" -seed 42 -parallel $n -queue \"$QUEUE\" $SNAPFLAG)"
    done
    echo "bench: legacy suite A/B, serial, snapshot forking off..."
    SUITE_NOSNAP_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -queue "$QUEUE" -snapshot=false)
    echo "bench: legacy suite A/B, serial, timing-wheel queue..."
    SUITE_WHEEL_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -queue wheel $SNAPFLAG)
    echo "bench: open-loop experiments, pooled, -parallel 4..."
    OPENLOOP_P4_S=$(walltime "$TMP/benchsuite" -exp openloop,openloop-burst -seed 42 -parallel 4 -queue "$QUEUE" $SNAPFLAG)
fi

MICRO="$TMP/micro.txt" SMOKE_S="$SMOKE_S" \
SELFMETRICS="$TMP/selfmetrics.json" \
GIT_SHA="$GIT_SHA" GO_VERSION="$GO_VERSION" \
QUEUE="$QUEUE" SNAPSHOT="$SNAPSHOT" \
SUITE_P1_S="$SUITE_P1_S" SUITE_P2_S="$SUITE_P2_S" \
SUITE_P4_S="$SUITE_P4_S" SUITE_P8_S="$SUITE_P8_S" \
SUITE_FRESH_P1_S="$SUITE_FRESH_P1_S" OPENLOOP_P4_S="$OPENLOOP_P4_S" \
SUITE_NOSNAP_P1_S="$SUITE_NOSNAP_P1_S" SUITE_WHEEL_P1_S="$SUITE_WHEEL_P1_S" \
BENCH_OUT="$BENCH_OUT" \
python3 - <<'PYEOF'
import json, os, re

out = os.environ["BENCH_OUT"]
micro = {}
for line in open(os.environ["MICRO"]):
    m = re.match(r"(Benchmark\w+)\S*\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op", line)
    if m:
        micro[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        }

prev = {}
if os.path.exists(out):
    try:
        prev = json.load(open(out))
    except Exception:
        prev = {}
elif os.path.exists("BENCH_6.json"):
    # First run after the BENCH_6 -> BENCH_7 switch: carry the suite
    # trajectory forward so the history stays in one place.
    try:
        prev = json.load(open("BENCH_6.json"))
    except Exception:
        prev = {}

suite = prev.get("suite", {})
# Earlier engines measured with the identical commands on the same host
# class: pre-PR-3 (before the zero-allocation hot path), PR 3 (before
# per-worker context pooling; parallel 4 was *slower* than serial), and
# PR 5 (pooled contexts, pre-windowed-metrics).
suite.setdefault("baseline_pre_pr3", {"all_parallel1_s": 55.9, "all_parallel8_s": 61.7})
suite.setdefault("baseline_pr3", {"all_parallel1_s": 24.66, "all_parallel4_s": 27.2})
suite.setdefault("baseline_pr5", {"all_parallel1_s": 27.09, "all_parallel2_s": 25.82,
                                  "all_parallel4_s": 26.46, "all_parallel8_s": 28.88,
                                  "all_fresh_parallel1_s": 26.06})
# PR 6 (windowed-metrics pipeline): the suite as measured just before the
# tracing/counters instrumentation landed.
suite.setdefault("baseline_pr6", {"all_parallel1_s": 24.74, "all_parallel2_s": 26.52,
                                  "all_parallel4_s": 27.49, "all_parallel8_s": 27.96,
                                  "all_fresh_parallel1_s": 25.55})
# The PR 7 re-baseline ran on a visibly slower host session than the
# baseline_pr6 numbers; an interleaved pre/post A-B showed the tracing
# branch + counter increments inside noise, so the deltas vs
# baseline_pr6 are host drift, not instrumentation cost.
suite.setdefault("baseline_pr7", {"all_parallel1_s": 30.30, "all_parallel2_s": 28.34,
                                  "all_parallel4_s": 28.89, "all_parallel8_s": 30.83,
                                  "all_fresh_parallel1_s": 36.75,
                                  "openloop_parallel4_s": 9.6})
suite.setdefault("note_pr7", "suite deltas vs baseline_pr6 are host drift; "
                 "interleaved pre/post A-B showed no instrumentation overhead")
suite.setdefault("note_pr8", "lazy uarch fills + boot-snapshot forking collapsed the "
                 "serial suite ~15x vs baseline_pr7; the timing-wheel queue wins raw "
                 "short-delta scheduling but loses the cancel-heavy TimerChurn replay "
                 "and the suite A/B (all_parallel1_wheel_s), so the 4-ary heap stays "
                 "the build default")

walls = {}
for n in (1, 2, 4, 8):
    v = os.environ.get(f"SUITE_P{n}_S", "")
    if v:
        walls[n] = float(v)
        suite[f"all_parallel{n}_s"] = walls[n]
if os.environ.get("SUITE_FRESH_P1_S", ""):
    suite["all_fresh_parallel1_s"] = float(os.environ["SUITE_FRESH_P1_S"])
if os.environ.get("SUITE_NOSNAP_P1_S", ""):
    suite["all_parallel1_nosnapshot_s"] = float(os.environ["SUITE_NOSNAP_P1_S"])
if os.environ.get("SUITE_WHEEL_P1_S", ""):
    suite["all_parallel1_wheel_s"] = float(os.environ["SUITE_WHEEL_P1_S"])
if os.environ.get("OPENLOOP_P4_S", ""):
    suite["openloop_parallel4_s"] = float(os.environ["OPENLOOP_P4_S"])

if walls and 1 in walls:
    p1 = walls[1]
    eff = {str(n): round(p1 / (n * pn), 3) for n, pn in sorted(walls.items())}
    suite["parallel_efficiency"] = eff
    slower = {n: pn for n, pn in walls.items() if n > 1 and pn > p1}
    if slower:
        print("=" * 72)
        print("bench: WARNING: NEGATIVE PARALLEL SCALING")
        for n, pn in sorted(slower.items()):
            print(f"bench: WARNING:   -parallel {n} took {pn:.2f}s, "
                  f"SLOWER than serial ({p1:.2f}s)")
        print("bench: WARNING: adding workers is making the suite slower;")
        print("bench: WARNING: see parallel_efficiency in", out)
        print("=" * 72)
    else:
        for n, pn in sorted(walls.items()):
            print(f"bench: pooled -parallel {n}: {pn:.2f}s "
                  f"(efficiency {p1 / (n * pn):.2f})")

runner = {}
try:
    runner = json.load(open(os.environ["SELFMETRICS"]))
except Exception:
    pass

doc = {
    "pr": 8,
    "provenance": {
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "go_version": os.environ.get("GO_VERSION", "unknown"),
        "queue": os.environ.get("QUEUE", "heap"),
        "snapshot_forking": os.environ.get("SNAPSHOT", "1") == "1",
    },
    # Efficiency is relative to the measuring host; on a single-CPU
    # host every eff(N>1) is bounded by 1/N and the scaling warning is
    # expected.
    "host_cpus": os.cpu_count(),
    "commands": {
        "micro": "go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$|BenchmarkScheduleShortDelta$|BenchmarkTimerChurn$' -benchmem ./internal/sim",
        "smoke": "benchsuite -exp table3 -seed 42 -parallel 1 -queue <queue>",
        "suite": "benchsuite -exp <legacy 11 experiments> -seed 42 -parallel {1,2,4,8} -queue <queue> [+ -fresh | -snapshot=false | -queue wheel at -parallel 1]",
        "openloop": "benchsuite -exp openloop,openloop-burst -seed 42 -parallel 4",
        "runner": "benchsuite -exp table3 -seed 42 -parallel 2 -selfmetrics <file>",
    },
    "microbench": micro,
    "smoke": {"exp": "table3", "wall_s": float(os.environ["SMOKE_S"])},
    "runner": runner,
    "suite": suite,
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print(f"bench: wrote {out}")
PYEOF

# The gate half of `make bench`: the steady-state schedule/fire path —
# both queue implementations, tracing off and on, including Engine.Reset
# reuse — must stay allocation-free, the streaming recorder's record
# path must stay allocation-free once its pages are faulted in, and a
# pooled trial must allocate at least 5x fewer bytes than a fresh one.
go test -run 'TestZeroAlloc|TestEngineResetZeroAlloc' -count=1 ./internal/sim >/dev/null
go test -run 'TestRecorderZeroAlloc|TestWindowedZeroAlloc|TestHistReset' -count=1 ./internal/trace >/dev/null
go test -run 'TestTrialAllocs' -count=1 ./internal/exp >/dev/null
echo "bench: zero-alloc and pooled-trial allocation gates pass"
