#!/bin/sh
# bench.sh — regenerate BENCH_6.json, the perf trajectory record for
# this repo.
#
# Quick mode (default, used by `make bench` / `make check`):
#   - runs the internal/sim engine microbenchmarks (ns/op, allocs/op)
#   - times a fixed benchsuite smoke run (-exp table3 -seed 42 -parallel 1)
#   - records runner self-metrics (per-worker trials/steals/busy/idle,
#     allocation deltas) from a table3 -parallel 2 -selfmetrics run
#   - stamps provenance (git SHA, go version, GOOS/GOARCH)
#   - preserves the "suite" section of an existing BENCH_6.json,
#     seeding it from BENCH_5.json the first time
#
# Full mode (BENCH_FULL=1, used when re-baselining a perf PR):
#   - re-measures the legacy 11-experiment suite (the same set every
#     earlier BENCH_N.json timed, now spelled out via comma-separated
#     -exp because -exp all grew the open-loop experiments) at
#     -parallel 1, 2, 4 and 8, plus a -fresh serial run as the
#     construction-cost baseline
#   - times the open-loop experiments separately (openloop_parallel4_s)
#     so their cost is visible without muddying the legacy trajectory
#   - computes per-N parallel efficiency, eff(N) = p1 / (N * pN), and
#     rewrites the "suite" section
#   - prints a LOUD warning when any parallel run is slower than serial:
#     that is negative scaling, the regression PR 5 removed.
#
# The committed baseline_* numbers are earlier measurements of the same
# commands on the same class of host; they are inputs to the trajectory,
# not re-measured here.
set -e
cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_6.json}
# The experiment set every earlier BENCH_N.json called "all": the
# paper's eleven artifacts, pre-open-loop. Keep timing exactly this set
# under the all_parallel{N}_s keys so the trajectory stays comparable.
LEGACY="table2,table3,table4,table5,fig3,fig6,fig7,fig8,fig9,tdx,fig10"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "bench: sim microbenchmarks..."
go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' \
    -benchmem -count=1 -run '^$' ./internal/sim >"$TMP/micro.txt"

go build -o "$TMP/benchsuite" ./cmd/benchsuite

walltime() {
    # POSIX wall-clock timing with subsecond resolution via awk.
    start=$(date +%s%N)
    "$@" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}"
}

echo "bench: smoke run (table3, serial)..."
SMOKE_S=$(walltime "$TMP/benchsuite" -exp table3 -seed 42 -parallel 1)

echo "bench: runner self-metrics (table3, -parallel 2)..."
"$TMP/benchsuite" -exp table3 -seed 42 -parallel 2 -selfmetrics "$TMP/selfmetrics.json" >/dev/null

GIT_SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
GO_VERSION=$(go version | awk '{print $3 "/" $4}')

SUITE_P1_S=""
SUITE_P2_S=""
SUITE_P4_S=""
SUITE_P8_S=""
SUITE_FRESH_P1_S=""
OPENLOOP_P4_S=""
if [ "${BENCH_FULL:-0}" = "1" ]; then
    echo "bench: legacy suite, fresh (pooling off), -parallel 1 (minutes)..."
    SUITE_FRESH_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -fresh)
    for n in 1 2 4 8; do
        echo "bench: legacy suite, pooled, -parallel $n..."
        eval "SUITE_P${n}_S=\$(walltime \"$TMP/benchsuite\" -exp \"$LEGACY\" -seed 42 -parallel $n)"
    done
    echo "bench: open-loop experiments, pooled, -parallel 4..."
    OPENLOOP_P4_S=$(walltime "$TMP/benchsuite" -exp openloop,openloop-burst -seed 42 -parallel 4)
fi

MICRO="$TMP/micro.txt" SMOKE_S="$SMOKE_S" \
SELFMETRICS="$TMP/selfmetrics.json" \
GIT_SHA="$GIT_SHA" GO_VERSION="$GO_VERSION" \
SUITE_P1_S="$SUITE_P1_S" SUITE_P2_S="$SUITE_P2_S" \
SUITE_P4_S="$SUITE_P4_S" SUITE_P8_S="$SUITE_P8_S" \
SUITE_FRESH_P1_S="$SUITE_FRESH_P1_S" OPENLOOP_P4_S="$OPENLOOP_P4_S" \
BENCH_OUT="$BENCH_OUT" \
python3 - <<'PYEOF'
import json, os, re

out = os.environ["BENCH_OUT"]
micro = {}
for line in open(os.environ["MICRO"]):
    m = re.match(r"(Benchmark\w+)\S*\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op", line)
    if m:
        micro[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        }

prev = {}
if os.path.exists(out):
    try:
        prev = json.load(open(out))
    except Exception:
        prev = {}
elif os.path.exists("BENCH_5.json"):
    # First run after the BENCH_5 -> BENCH_6 switch: carry the suite
    # trajectory forward so the history stays in one place.
    try:
        prev = json.load(open("BENCH_5.json"))
    except Exception:
        prev = {}

suite = prev.get("suite", {})
# Earlier engines measured with the identical commands on the same host
# class: pre-PR-3 (before the zero-allocation hot path), PR 3 (before
# per-worker context pooling; parallel 4 was *slower* than serial), and
# PR 5 (pooled contexts, pre-windowed-metrics — the direct baseline for
# this PR's Hist-internals replacement).
suite.setdefault("baseline_pre_pr3", {"all_parallel1_s": 55.9, "all_parallel8_s": 61.7})
suite.setdefault("baseline_pr3", {"all_parallel1_s": 24.66, "all_parallel4_s": 27.2})
suite.setdefault("baseline_pr5", {"all_parallel1_s": 27.09, "all_parallel2_s": 25.82,
                                  "all_parallel4_s": 26.46, "all_parallel8_s": 28.88,
                                  "all_fresh_parallel1_s": 26.06})
# PR 6 (windowed-metrics pipeline): the suite as measured just before the
# tracing/counters instrumentation landed.
suite.setdefault("baseline_pr6", {"all_parallel1_s": 24.74, "all_parallel2_s": 26.52,
                                  "all_parallel4_s": 27.49, "all_parallel8_s": 27.96,
                                  "all_fresh_parallel1_s": 25.55})
# The PR 7 re-baseline ran on a visibly slower host session than the
# baseline_pr6 numbers (the *pre-PR* binary also measured ~17% slower
# that day). An interleaved same-host pre/post A-B of a four-experiment
# subset showed the tracing branch + counter increments inside noise
# (pre 19.90/18.69 s vs post 18.68/17.79 s), so deltas against
# baseline_pr6 are host drift, not instrumentation cost.
suite.setdefault("note_pr7", "suite deltas vs baseline_pr6 are host drift; "
                 "interleaved pre/post A-B showed no instrumentation overhead")

walls = {}
for n in (1, 2, 4, 8):
    v = os.environ.get(f"SUITE_P{n}_S", "")
    if v:
        walls[n] = float(v)
        suite[f"all_parallel{n}_s"] = walls[n]
if os.environ.get("SUITE_FRESH_P1_S", ""):
    suite["all_fresh_parallel1_s"] = float(os.environ["SUITE_FRESH_P1_S"])
if os.environ.get("OPENLOOP_P4_S", ""):
    suite["openloop_parallel4_s"] = float(os.environ["OPENLOOP_P4_S"])

if walls and 1 in walls:
    p1 = walls[1]
    eff = {str(n): round(p1 / (n * pn), 3) for n, pn in sorted(walls.items())}
    suite["parallel_efficiency"] = eff
    slower = {n: pn for n, pn in walls.items() if n > 1 and pn > p1}
    if slower:
        print("=" * 72)
        print("bench: WARNING: NEGATIVE PARALLEL SCALING")
        for n, pn in sorted(slower.items()):
            print(f"bench: WARNING:   -parallel {n} took {pn:.2f}s, "
                  f"SLOWER than serial ({p1:.2f}s)")
        print("bench: WARNING: adding workers is making the suite slower;")
        print("bench: WARNING: see parallel_efficiency in", out)
        print("=" * 72)
    else:
        for n, pn in sorted(walls.items()):
            print(f"bench: pooled -parallel {n}: {pn:.2f}s "
                  f"(efficiency {p1 / (n * pn):.2f})")

runner = {}
try:
    runner = json.load(open(os.environ["SELFMETRICS"]))
except Exception:
    pass

doc = {
    "pr": 7,
    "provenance": {
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "go_version": os.environ.get("GO_VERSION", "unknown"),
    },
    # Efficiency is relative to the measuring host; on a single-CPU
    # host every eff(N>1) is bounded by 1/N and the scaling warning is
    # expected.
    "host_cpus": os.cpu_count(),
    "commands": {
        "micro": "go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' -benchmem ./internal/sim",
        "smoke": "benchsuite -exp table3 -seed 42 -parallel 1",
        "suite": "benchsuite -exp <legacy 11 experiments> -seed 42 -parallel {1,2,4,8} [+ -fresh at -parallel 1]",
        "openloop": "benchsuite -exp openloop,openloop-burst -seed 42 -parallel 4",
        "runner": "benchsuite -exp table3 -seed 42 -parallel 2 -selfmetrics <file>",
    },
    "microbench": micro,
    "smoke": {"exp": "table3", "wall_s": float(os.environ["SMOKE_S"])},
    "runner": runner,
    "suite": suite,
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print(f"bench: wrote {out}")
PYEOF

# The gate half of `make bench`: the steady-state schedule/fire path —
# including Engine.Reset reuse — must stay allocation-free, the
# streaming recorder's record path must stay allocation-free once its
# pages are faulted in, and a pooled trial must allocate at least 5x
# fewer bytes than a fresh one.
go test -run 'TestZeroAlloc|TestEngineResetZeroAlloc' -count=1 ./internal/sim >/dev/null
go test -run 'TestRecorderZeroAlloc|TestWindowedZeroAlloc|TestHistReset' -count=1 ./internal/trace >/dev/null
go test -run 'TestTrialAllocs' -count=1 ./internal/exp >/dev/null
echo "bench: zero-alloc and pooled-trial allocation gates pass"
