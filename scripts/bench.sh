#!/bin/sh
# bench.sh — regenerate BENCH_4.json, the perf trajectory record for
# this repo.
#
# Quick mode (default, used by `make bench` / `make check`):
#   - runs the internal/sim engine microbenchmarks (ns/op, allocs/op)
#   - times a fixed benchsuite smoke run (-exp table3 -seed 42 -parallel 1)
#   - preserves the "suite" section of an existing BENCH_4.json
#
# Full mode (BENCH_FULL=1, used when re-baselining a perf PR):
#   - re-measures `benchsuite -exp all -seed 42` wall clock with pooled
#     per-worker contexts at -parallel 1, 2, 4 and 8, plus a -fresh
#     serial run (pooling disabled) as the construction-cost baseline
#   - computes per-N parallel efficiency, eff(N) = p1 / (N * pN), and
#     rewrites the "suite" section
#   - prints a LOUD warning when any parallel run is slower than serial:
#     that is negative scaling, the regression this PR exists to gate.
#
# The committed baseline_* numbers are earlier measurements of the same
# commands on the same class of host; they are inputs to the trajectory,
# not re-measured here.
set -e
cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_4.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "bench: sim microbenchmarks..."
go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' \
    -benchmem -count=1 -run '^$' ./internal/sim >"$TMP/micro.txt"

go build -o "$TMP/benchsuite" ./cmd/benchsuite

walltime() {
    # POSIX wall-clock timing with subsecond resolution via awk.
    start=$(date +%s%N)
    "$@" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}"
}

echo "bench: smoke run (table3, serial)..."
SMOKE_S=$(walltime "$TMP/benchsuite" -exp table3 -seed 42 -parallel 1)

SUITE_P1_S=""
SUITE_P2_S=""
SUITE_P4_S=""
SUITE_P8_S=""
SUITE_FRESH_P1_S=""
if [ "${BENCH_FULL:-0}" = "1" ]; then
    echo "bench: full suite, fresh (pooling off), -parallel 1 (minutes)..."
    SUITE_FRESH_P1_S=$(walltime "$TMP/benchsuite" -exp all -seed 42 -parallel 1 -fresh)
    for n in 1 2 4 8; do
        echo "bench: full suite, pooled, -parallel $n..."
        eval "SUITE_P${n}_S=\$(walltime \"$TMP/benchsuite\" -exp all -seed 42 -parallel $n)"
    done
fi

MICRO="$TMP/micro.txt" SMOKE_S="$SMOKE_S" \
SUITE_P1_S="$SUITE_P1_S" SUITE_P2_S="$SUITE_P2_S" \
SUITE_P4_S="$SUITE_P4_S" SUITE_P8_S="$SUITE_P8_S" \
SUITE_FRESH_P1_S="$SUITE_FRESH_P1_S" BENCH_OUT="$BENCH_OUT" \
python3 - <<'PYEOF'
import json, os, re

out = os.environ["BENCH_OUT"]
micro = {}
for line in open(os.environ["MICRO"]):
    m = re.match(r"(Benchmark\w+)\S*\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op", line)
    if m:
        micro[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        }

prev = {}
if os.path.exists(out):
    try:
        prev = json.load(open(out))
    except Exception:
        prev = {}

suite = prev.get("suite", {})
# Earlier engines measured with the identical commands on the same host
# class: pre-PR-3 (before the zero-allocation hot path), and PR 3
# (before per-worker context pooling — note parallel 4 was *slower*
# than serial, the negative scaling this PR removes).
suite.setdefault("baseline_pre_pr3", {"all_parallel1_s": 55.9, "all_parallel8_s": 61.7})
suite.setdefault("baseline_pr3", {"all_parallel1_s": 24.66, "all_parallel4_s": 27.2})

walls = {}
for n in (1, 2, 4, 8):
    v = os.environ.get(f"SUITE_P{n}_S", "")
    if v:
        walls[n] = float(v)
        suite[f"all_parallel{n}_s"] = walls[n]
if os.environ.get("SUITE_FRESH_P1_S", ""):
    suite["all_fresh_parallel1_s"] = float(os.environ["SUITE_FRESH_P1_S"])

if walls and 1 in walls:
    p1 = walls[1]
    eff = {str(n): round(p1 / (n * pn), 3) for n, pn in sorted(walls.items())}
    suite["parallel_efficiency"] = eff
    slower = {n: pn for n, pn in walls.items() if n > 1 and pn > p1}
    if slower:
        print("=" * 72)
        print("bench: WARNING: NEGATIVE PARALLEL SCALING")
        for n, pn in sorted(slower.items()):
            print(f"bench: WARNING:   -parallel {n} took {pn:.2f}s, "
                  f"SLOWER than serial ({p1:.2f}s)")
        print("bench: WARNING: adding workers is making the suite slower;")
        print("bench: WARNING: see parallel_efficiency in", out)
        print("=" * 72)
    else:
        for n, pn in sorted(walls.items()):
            print(f"bench: pooled -parallel {n}: {pn:.2f}s "
                  f"(efficiency {p1 / (n * pn):.2f})")

doc = {
    "pr": 5,
    # Efficiency is relative to the measuring host; on a single-CPU
    # host every eff(N>1) is bounded by 1/N and the scaling warning is
    # expected.
    "host_cpus": os.cpu_count(),
    "commands": {
        "micro": "go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' -benchmem ./internal/sim",
        "smoke": "benchsuite -exp table3 -seed 42 -parallel 1",
        "suite": "benchsuite -exp all -seed 42 -parallel {1,2,4,8} [+ -fresh at -parallel 1]",
    },
    "microbench": micro,
    "smoke": {"exp": "table3", "wall_s": float(os.environ["SMOKE_S"])},
    "suite": suite,
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print(f"bench: wrote {out}")
PYEOF

# The gate half of `make bench`: the steady-state schedule/fire path —
# including Engine.Reset reuse — must stay allocation-free, and a pooled
# trial must allocate at least 5x fewer bytes than a fresh one.
go test -run 'TestZeroAlloc|TestEngineResetZeroAlloc' -count=1 ./internal/sim >/dev/null
go test -run 'TestTrialAllocs' -count=1 ./internal/exp >/dev/null
echo "bench: zero-alloc and pooled-trial allocation gates pass"
