#!/bin/sh
# bench.sh — regenerate BENCH_3.json, the perf trajectory record for
# this repo.
#
# Quick mode (default, used by `make bench` / `make check`):
#   - runs the internal/sim engine microbenchmarks (ns/op, allocs/op)
#   - times a fixed benchsuite smoke run (-exp table3 -seed 42 -parallel 1)
#   - preserves the "suite" section of an existing BENCH_3.json
#
# Full mode (BENCH_FULL=1, used when re-baselining a perf PR):
#   - additionally re-measures `benchsuite -exp all -seed 42` wall clock
#     at -parallel 1 and -parallel 4 and rewrites the "suite" section.
#
# The committed baseline_* numbers are the pre-PR-3 measurement of the
# same commands on the same class of host; they are inputs to the
# trajectory, not re-measured here.
set -e
cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_3.json}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "bench: sim microbenchmarks..."
go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' \
    -benchmem -count=1 -run '^$' ./internal/sim >"$TMP/micro.txt"

go build -o "$TMP/benchsuite" ./cmd/benchsuite

walltime() {
    # POSIX wall-clock timing with subsecond resolution via awk.
    start=$(date +%s%N)
    "$@" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}"
}

echo "bench: smoke run (table3, serial)..."
SMOKE_S=$(walltime "$TMP/benchsuite" -exp table3 -seed 42 -parallel 1)

SUITE_P1_S=""
SUITE_P4_S=""
if [ "${BENCH_FULL:-0}" = "1" ]; then
    echo "bench: full suite, -parallel 1 (minutes)..."
    SUITE_P1_S=$(walltime "$TMP/benchsuite" -exp all -seed 42 -parallel 1)
    echo "bench: full suite, -parallel 4..."
    SUITE_P4_S=$(walltime "$TMP/benchsuite" -exp all -seed 42 -parallel 4)
fi

MICRO="$TMP/micro.txt" SMOKE_S="$SMOKE_S" \
SUITE_P1_S="$SUITE_P1_S" SUITE_P4_S="$SUITE_P4_S" BENCH_OUT="$BENCH_OUT" \
python3 - <<'PYEOF'
import json, os, re

out = os.environ["BENCH_OUT"]
micro = {}
for line in open(os.environ["MICRO"]):
    m = re.match(r"(Benchmark\w+)\S*\s+\d+\s+([\d.]+) ns/op\s+(\d+) B/op\s+(\d+) allocs/op", line)
    if m:
        micro[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        }

prev = {}
if os.path.exists(out):
    try:
        prev = json.load(open(out))
    except Exception:
        prev = {}

suite = prev.get("suite", {})
# The pre-PR-3 engine, measured with the identical commands on the same
# host class, immediately before the optimization landed.
suite.setdefault("baseline_pre_pr3", {"all_parallel1_s": 55.9, "all_parallel8_s": 61.7})
if os.environ["SUITE_P1_S"]:
    suite["all_parallel1_s"] = float(os.environ["SUITE_P1_S"])
if os.environ["SUITE_P4_S"]:
    suite["all_parallel4_s"] = float(os.environ["SUITE_P4_S"])

doc = {
    "pr": 3,
    "commands": {
        "micro": "go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$' -benchmem ./internal/sim",
        "smoke": "benchsuite -exp table3 -seed 42 -parallel 1",
        "suite": "benchsuite -exp all -seed 42 -parallel {1,4}",
    },
    "microbench": micro,
    "smoke": {"exp": "table3", "wall_s": float(os.environ["SMOKE_S"])},
    "suite": suite,
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print(f"bench: wrote {out}")
PYEOF

# The gate half of `make bench`: the steady-state schedule/fire path
# must stay allocation-free (TestZeroAlloc* fail otherwise).
go test -run 'TestZeroAlloc' -count=1 ./internal/sim >/dev/null
echo "bench: zero-alloc gates pass"
