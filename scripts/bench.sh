#!/bin/sh
# bench.sh — regenerate BENCH_8.json, the perf trajectory record for
# this repo.
#
# Quick mode (default, used by `make bench` / `make check`):
#   - runs the internal/sim engine microbenchmarks (ns/op, allocs/op),
#     including the empirical-delta replays (ScheduleShortDelta,
#     TimerChurn) that decide the heap-vs-wheel event queue question,
#     plus the internal/vmm open-loop arrival benchmark
#   - times a fixed benchsuite smoke run (-exp table3 -seed 42 -parallel 1)
#   - times the open-loop headline: coregapctl serving 500 krps offered
#     into a 1 Mi-connection pool (openloop_500k_s), and records
#     coregapctl -memstats allocation totals at 100 krps vs 500 krps —
#     the 5x-rate allocation ratio is the sublinear-memory evidence
#   - records runner self-metrics (per-worker trials/steals/busy/idle,
#     allocation deltas) from a table3 -parallel 2 -selfmetrics run
#   - guards the headline serial keys (smoke wall_s, all_parallel1_s,
#     openloop_parallel4_s, openloop_500k_s) against the previous
#     BENCH_N.json: >10% slower prints a LOUD regression warning
#   - stamps provenance (git SHA, go version, GOOS/GOARCH, active event
#     queue, snapshot forking on/off)
#   - preserves the "suite" section of an existing BENCH_8.json,
#     seeding it from BENCH_7.json (or BENCH_6.json) the first time
#
# Full mode (BENCH_FULL=1, used when re-baselining a perf PR):
#   - re-measures the legacy 11-experiment suite (the same set every
#     earlier BENCH_N.json timed, now spelled out via comma-separated
#     -exp because -exp all grew the open-loop experiments) at
#     -parallel 1, 2, 4 and 8, plus a -fresh serial run as the
#     construction-cost baseline
#   - A/Bs the serial suite along this PR's two axes: -snapshot=false
#     (all_parallel1_nosnapshot_s) and -queue wheel
#     (all_parallel1_wheel_s), so the boot-snapshot win and the
#     queue-implementation decision stay measured, not asserted
#   - times the open-loop experiments separately (openloop_parallel4_s)
#     so their cost is visible without muddying the legacy trajectory
#   - computes per-N parallel efficiency, eff(N) = p1 / (N * pN), and
#     rewrites the "suite" section
#   - prints a LOUD warning when any parallel run is slower than serial:
#     that is negative scaling, the regression PR 5 removed.
#
# The committed baseline_* numbers are earlier measurements of the same
# commands on the same class of host; they are inputs to the trajectory,
# not re-measured here.
set -e
cd "$(dirname "$0")/.."

BENCH_OUT=${BENCH_OUT:-BENCH_8.json}
# QUEUE selects the event-queue implementation for the suite runs (the
# provenance records it); SNAPSHOT=0 disables boot-snapshot forking.
QUEUE=${QUEUE:-heap}
SNAPSHOT=${SNAPSHOT:-1}
SNAPFLAG="-snapshot=true"
[ "$SNAPSHOT" = "1" ] || SNAPFLAG="-snapshot=false"
# The experiment set every earlier BENCH_N.json called "all": the
# paper's eleven artifacts, pre-open-loop. Keep timing exactly this set
# under the all_parallel{N}_s keys so the trajectory stays comparable.
LEGACY="table2,table3,table4,table5,fig3,fig6,fig7,fig8,fig9,tdx,fig10"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "bench: sim microbenchmarks..."
go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$|BenchmarkScheduleShortDelta$|BenchmarkTimerChurn$' \
    -benchmem -count=1 -run '^$' ./internal/sim >"$TMP/micro.txt"
echo "bench: vmm open-loop arrival microbenchmark..."
go test -bench 'BenchmarkOpenLoopArrivals$' \
    -benchmem -count=1 -run '^$' ./internal/vmm >>"$TMP/micro.txt"

go build -o "$TMP/benchsuite" ./cmd/benchsuite
go build -o "$TMP/coregapctl" ./cmd/coregapctl

walltime() {
    # POSIX wall-clock timing with subsecond resolution via awk.
    start=$(date +%s%N)
    "$@" >/dev/null
    end=$(date +%s%N)
    awk "BEGIN{printf \"%.2f\", ($end - $start) / 1e9}"
}

echo "bench: smoke run (table3, serial)..."
SMOKE_S=$(walltime "$TMP/benchsuite" -exp table3 -seed 42 -parallel 1 -queue "$QUEUE" $SNAPFLAG)

echo "bench: open-loop headline (coregapctl, 500 krps, 1Mi connections)..."
OPENLOOP_500K_S=$(walltime "$TMP/coregapctl" -workload openloop -rate 500000 -clients 1048576 -queue "$QUEUE")
# Allocation totals at 1x and 5x the offered rate, same pool size: with
# the zero-alloc request lifecycle the ratio stays far below the 5x a
# per-request-allocating generator would show.
"$TMP/coregapctl" -workload openloop -rate 100000 -clients 1048576 -queue "$QUEUE" -memstats \
    | grep '^memstats:' >"$TMP/mem100k.txt"
"$TMP/coregapctl" -workload openloop -rate 500000 -clients 1048576 -queue "$QUEUE" -memstats \
    | grep '^memstats:' >"$TMP/mem500k.txt"

echo "bench: runner self-metrics (table3, -parallel 2)..."
"$TMP/benchsuite" -exp table3 -seed 42 -parallel 2 -queue "$QUEUE" $SNAPFLAG \
    -selfmetrics "$TMP/selfmetrics.json" >/dev/null

GIT_SHA=$(git rev-parse HEAD 2>/dev/null || echo unknown)
GO_VERSION=$(go version | awk '{print $3 "/" $4}')

SUITE_P1_S=""
SUITE_P2_S=""
SUITE_P4_S=""
SUITE_P8_S=""
SUITE_FRESH_P1_S=""
SUITE_NOSNAP_P1_S=""
SUITE_WHEEL_P1_S=""
OPENLOOP_P4_S=""
if [ "${BENCH_FULL:-0}" = "1" ]; then
    echo "bench: legacy suite, fresh (pooling off), -parallel 1..."
    SUITE_FRESH_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -fresh -queue "$QUEUE")
    for n in 1 2 4 8; do
        echo "bench: legacy suite, pooled, -parallel $n..."
        eval "SUITE_P${n}_S=\$(walltime \"$TMP/benchsuite\" -exp \"$LEGACY\" -seed 42 -parallel $n -queue \"$QUEUE\" $SNAPFLAG)"
    done
    echo "bench: legacy suite A/B, serial, snapshot forking off..."
    SUITE_NOSNAP_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -queue "$QUEUE" -snapshot=false)
    echo "bench: legacy suite A/B, serial, timing-wheel queue..."
    SUITE_WHEEL_P1_S=$(walltime "$TMP/benchsuite" -exp "$LEGACY" -seed 42 -parallel 1 -queue wheel $SNAPFLAG)
    echo "bench: open-loop experiments, pooled, -parallel 4..."
    OPENLOOP_P4_S=$(walltime "$TMP/benchsuite" -exp openloop,openloop-burst -seed 42 -parallel 4 -queue "$QUEUE" $SNAPFLAG)
fi

MICRO="$TMP/micro.txt" SMOKE_S="$SMOKE_S" \
OPENLOOP_500K_S="$OPENLOOP_500K_S" \
MEM100K="$TMP/mem100k.txt" MEM500K="$TMP/mem500k.txt" \
SELFMETRICS="$TMP/selfmetrics.json" \
GIT_SHA="$GIT_SHA" GO_VERSION="$GO_VERSION" \
QUEUE="$QUEUE" SNAPSHOT="$SNAPSHOT" \
SUITE_P1_S="$SUITE_P1_S" SUITE_P2_S="$SUITE_P2_S" \
SUITE_P4_S="$SUITE_P4_S" SUITE_P8_S="$SUITE_P8_S" \
SUITE_FRESH_P1_S="$SUITE_FRESH_P1_S" OPENLOOP_P4_S="$OPENLOOP_P4_S" \
SUITE_NOSNAP_P1_S="$SUITE_NOSNAP_P1_S" SUITE_WHEEL_P1_S="$SUITE_WHEEL_P1_S" \
BENCH_OUT="$BENCH_OUT" \
python3 - <<'PYEOF'
import json, os, re

out = os.environ["BENCH_OUT"]
micro = {}
for line in open(os.environ["MICRO"]):
    # Custom metrics (e.g. BenchmarkOpenLoopArrivals' reqs/op) may sit
    # between ns/op and -benchmem's B/op column.
    m = re.match(r"(Benchmark\w+)\S*\s+\d+\s+([\d.]+) ns/op\s+(?:[\d.]+ \S+\s+)*?(\d+) B/op\s+(\d+) allocs/op", line)
    if m:
        micro[m.group(1)] = {
            "ns_per_op": float(m.group(2)),
            "bytes_per_op": int(m.group(3)),
            "allocs_per_op": int(m.group(4)),
        }


def read_memstats(path):
    try:
        line = open(path).read()
    except Exception:
        return {}
    return {k: int(v) for k, v in re.findall(r"(\w+)=(\d+)", line)}


prev = {}
if os.path.exists(out):
    try:
        prev = json.load(open(out))
    except Exception:
        prev = {}
else:
    # First run after a BENCH_N -> BENCH_N+1 switch: carry the suite
    # trajectory forward so the history stays in one place.
    for older in ("BENCH_7.json", "BENCH_6.json"):
        if os.path.exists(older):
            try:
                prev = json.load(open(older))
            except Exception:
                prev = {}
            break

# Snapshot the previous headline numbers before `suite` below starts
# mutating the same dict in place — these feed the regression guard.
prev_headline = {"smoke_wall_s": prev.get("smoke", {}).get("wall_s")}
for k in ("all_parallel1_s", "openloop_parallel4_s", "openloop_500k_s"):
    prev_headline[k] = prev.get("suite", {}).get(k)

suite = prev.get("suite", {})
# Earlier engines measured with the identical commands on the same host
# class: pre-PR-3 (before the zero-allocation hot path), PR 3 (before
# per-worker context pooling; parallel 4 was *slower* than serial), and
# PR 5 (pooled contexts, pre-windowed-metrics).
suite.setdefault("baseline_pre_pr3", {"all_parallel1_s": 55.9, "all_parallel8_s": 61.7})
suite.setdefault("baseline_pr3", {"all_parallel1_s": 24.66, "all_parallel4_s": 27.2})
suite.setdefault("baseline_pr5", {"all_parallel1_s": 27.09, "all_parallel2_s": 25.82,
                                  "all_parallel4_s": 26.46, "all_parallel8_s": 28.88,
                                  "all_fresh_parallel1_s": 26.06})
# PR 6 (windowed-metrics pipeline): the suite as measured just before the
# tracing/counters instrumentation landed.
suite.setdefault("baseline_pr6", {"all_parallel1_s": 24.74, "all_parallel2_s": 26.52,
                                  "all_parallel4_s": 27.49, "all_parallel8_s": 27.96,
                                  "all_fresh_parallel1_s": 25.55})
# The PR 7 re-baseline ran on a visibly slower host session than the
# baseline_pr6 numbers; an interleaved pre/post A-B showed the tracing
# branch + counter increments inside noise, so the deltas vs
# baseline_pr6 are host drift, not instrumentation cost.
suite.setdefault("baseline_pr7", {"all_parallel1_s": 30.30, "all_parallel2_s": 28.34,
                                  "all_parallel4_s": 28.89, "all_parallel8_s": 30.83,
                                  "all_fresh_parallel1_s": 36.75,
                                  "openloop_parallel4_s": 9.6})
suite.setdefault("note_pr7", "suite deltas vs baseline_pr6 are host drift; "
                 "interleaved pre/post A-B showed no instrumentation overhead")
suite.setdefault("note_pr8", "lazy uarch fills + boot-snapshot forking collapsed the "
                 "serial suite ~15x vs baseline_pr7; the timing-wheel queue wins raw "
                 "short-delta scheduling but loses the cancel-heavy TimerChurn replay "
                 "and the suite A/B (all_parallel1_wheel_s), so the 4-ary heap stays "
                 "the build default")
suite.setdefault("note_pr10", "batched arrival generation + a free-listed request "
                 "arena made the open-loop hot path allocation-free, and streamed "
                 "trial reduction releases window buffers as workers finish; "
                 "openloop_500k_s and the 100k-vs-500k allocation ratio are the "
                 "headline evidence (5x offered rate, near-1x allocated bytes)")

walls = {}
for n in (1, 2, 4, 8):
    v = os.environ.get(f"SUITE_P{n}_S", "")
    if v:
        walls[n] = float(v)
        suite[f"all_parallel{n}_s"] = walls[n]
if os.environ.get("SUITE_FRESH_P1_S", ""):
    suite["all_fresh_parallel1_s"] = float(os.environ["SUITE_FRESH_P1_S"])
if os.environ.get("SUITE_NOSNAP_P1_S", ""):
    suite["all_parallel1_nosnapshot_s"] = float(os.environ["SUITE_NOSNAP_P1_S"])
if os.environ.get("SUITE_WHEEL_P1_S", ""):
    suite["all_parallel1_wheel_s"] = float(os.environ["SUITE_WHEEL_P1_S"])
if os.environ.get("OPENLOOP_P4_S", ""):
    suite["openloop_parallel4_s"] = float(os.environ["OPENLOOP_P4_S"])
if os.environ.get("OPENLOOP_500K_S", ""):
    suite["openloop_500k_s"] = float(os.environ["OPENLOOP_500K_S"])
mem100k = read_memstats(os.environ.get("MEM100K", ""))
mem500k = read_memstats(os.environ.get("MEM500K", ""))
if mem100k.get("total_alloc_bytes") and mem500k.get("total_alloc_bytes"):
    ratio = mem500k["total_alloc_bytes"] / mem100k["total_alloc_bytes"]
    suite["openloop_total_alloc_bytes_100k"] = mem100k["total_alloc_bytes"]
    suite["openloop_total_alloc_bytes_500k"] = mem500k["total_alloc_bytes"]
    suite["openloop_alloc_ratio_500k_over_100k"] = round(ratio, 3)
    if ratio >= 5.0:
        print("=" * 72)
        print("bench: WARNING: OPEN-LOOP MEMORY SCALES WITH OFFERED RATE")
        print(f"bench: WARNING:   5x the rate allocated {ratio:.2f}x the bytes;")
        print("bench: WARNING:   the zero-alloc request lifecycle has regressed")
        print("=" * 72)
    else:
        print(f"bench: open-loop allocation at 5x rate: {ratio:.2f}x bytes (sublinear)")

if walls and 1 in walls:
    p1 = walls[1]
    eff = {str(n): round(p1 / (n * pn), 3) for n, pn in sorted(walls.items())}
    suite["parallel_efficiency"] = eff
    slower = {n: pn for n, pn in walls.items() if n > 1 and pn > p1}
    if slower:
        print("=" * 72)
        print("bench: WARNING: NEGATIVE PARALLEL SCALING")
        for n, pn in sorted(slower.items()):
            print(f"bench: WARNING:   -parallel {n} took {pn:.2f}s, "
                  f"SLOWER than serial ({p1:.2f}s)")
        print("bench: WARNING: adding workers is making the suite slower;")
        print("bench: WARNING: see parallel_efficiency in", out)
        print("=" * 72)
    else:
        for n, pn in sorted(walls.items()):
            print(f"bench: pooled -parallel {n}: {pn:.2f}s "
                  f"(efficiency {p1 / (n * pn):.2f})")

# Regression guard: every headline serial key measured this run is
# compared against the previous BENCH_N.json. Wall-clock numbers wander
# with host load, so the gate is deliberately loose — but >10% slower
# on the same host class is a real slowdown and gets a loud warning,
# not a silent rewrite of the trajectory.
guard = [("smoke wall_s", prev_headline["smoke_wall_s"], float(os.environ["SMOKE_S"]))]
measured = {
    "all_parallel1_s": walls.get(1),
    "openloop_parallel4_s": (float(os.environ["OPENLOOP_P4_S"])
                             if os.environ.get("OPENLOOP_P4_S") else None),
    "openloop_500k_s": (float(os.environ["OPENLOOP_500K_S"])
                        if os.environ.get("OPENLOOP_500K_S") else None),
}
for key in ("all_parallel1_s", "openloop_parallel4_s", "openloop_500k_s"):
    guard.append((key, prev_headline[key], measured[key]))
regressed = [(k, old, new) for k, old, new in guard
             if old and new and new > 1.10 * old]
if regressed:
    print("=" * 72)
    print("bench: WARNING: HEADLINE WALL-CLOCK REGRESSION (>10% vs previous)")
    for k, old, new in regressed:
        print(f"bench: WARNING:   {k}: {new:.2f}s vs {old:.2f}s previously "
              f"({new / old:.2f}x)")
    print("bench: WARNING: if the host class changed, re-baseline and say so;")
    print("bench: WARNING: otherwise this PR made the suite slower")
    print("=" * 72)
else:
    checked = [k for k, old, new in guard if old and new]
    if checked:
        print(f"bench: headline keys within 10% of previous: {', '.join(checked)}")

runner = {}
try:
    runner = json.load(open(os.environ["SELFMETRICS"]))
except Exception:
    pass

doc = {
    "pr": 10,
    "provenance": {
        "git_sha": os.environ.get("GIT_SHA", "unknown"),
        "go_version": os.environ.get("GO_VERSION", "unknown"),
        "queue": os.environ.get("QUEUE", "heap"),
        "snapshot_forking": os.environ.get("SNAPSHOT", "1") == "1",
    },
    # Efficiency is relative to the measuring host; on a single-CPU
    # host every eff(N>1) is bounded by 1/N and the scaling warning is
    # expected.
    "host_cpus": os.cpu_count(),
    "commands": {
        "micro": "go test -bench 'BenchmarkSchedule$|BenchmarkCancel$|BenchmarkChurn$|BenchmarkScheduleShortDelta$|BenchmarkTimerChurn$' -benchmem ./internal/sim + go test -bench BenchmarkOpenLoopArrivals$ -benchmem ./internal/vmm",
        "smoke": "benchsuite -exp table3 -seed 42 -parallel 1 -queue <queue>",
        "openloop_500k": "coregapctl -workload openloop -rate {100000,500000} -clients 1048576 [-memstats]",
        "suite": "benchsuite -exp <legacy 11 experiments> -seed 42 -parallel {1,2,4,8} -queue <queue> [+ -fresh | -snapshot=false | -queue wheel at -parallel 1]",
        "openloop": "benchsuite -exp openloop,openloop-burst -seed 42 -parallel 4",
        "runner": "benchsuite -exp table3 -seed 42 -parallel 2 -selfmetrics <file>",
    },
    "microbench": micro,
    "smoke": {"exp": "table3", "wall_s": float(os.environ["SMOKE_S"])},
    "runner": runner,
    "suite": suite,
}
json.dump(doc, open(out, "w"), indent=2, sort_keys=True)
open(out, "a").write("\n")
print(f"bench: wrote {out}")
PYEOF

# The gate half of `make bench`: the steady-state schedule/fire path —
# both queue implementations, tracing off and on, including Engine.Reset
# reuse — must stay allocation-free, the streaming recorder's record
# path must stay allocation-free once its pages are faulted in, the
# open-loop generator's steady state (arrivals, delivery, response
# matching, Sent/Backlog probes) must stay allocation-free at 500 krps,
# and a pooled trial must allocate at least 5x fewer bytes than a
# fresh one.
go test -run 'TestZeroAlloc|TestEngineResetZeroAlloc' -count=1 ./internal/sim >/dev/null
go test -run 'TestRecorderZeroAlloc|TestWindowedZeroAlloc|TestHistReset' -count=1 ./internal/trace >/dev/null
go test -run 'TestZeroAllocOpenLoad' -count=1 ./internal/vmm >/dev/null
go test -run 'TestTrialAllocs' -count=1 ./internal/exp >/dev/null
echo "bench: zero-alloc and pooled-trial allocation gates pass"
