# Development entry points. `make check` is the full gate: vet, build,
# a fast race pass over the runner and engine, full race-enabled tests,
# a benchsuite smoke run, a traced-run smoke (Chrome trace export), the
# perf smoke (microbenchmarks + allocation gates -> BENCH_7.json, no
# wall-clock thresholds) and an end-to-end determinism check (serial CSV
# output == 8-way parallel CSV output).

GO ?= go

.PHONY: all check vet build test race race-fast smoke trace-smoke determinism bench bench-full bench-paper profile clean

all: check

check: vet build race-fast race smoke trace-smoke bench determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The shape tests simulate tens of seconds of machine time; under the
# race detector on a small host that exceeds go test's default 10m
# package timeout, so raise it.
race:
	$(GO) test -race -timeout 45m ./...

# Fast feedback for the packages where worker concurrency actually
# lives: the pooled-context runner, the engine it rewinds, and the
# metrics layer (streaming recorder + windowed rollover) those share.
# -short keeps the pooled-vs-fresh sweep to the cheap experiments
# (which include openloop, the windowed-determinism canary).
race-fast:
	$(GO) test -race -short -timeout 10m ./internal/exp ./internal/sim ./internal/trace ./internal/vmm

# A quick end-to-end run through the registry and the parallel runner.
smoke:
	$(GO) run ./cmd/benchsuite -exp table2 -parallel 4

# Sim-time tracing end to end: arm the flight recorder on a real
# scenario, export Chrome trace JSON, and sanity-check it is non-trivial.
trace-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/coregapctl -workload ipibench -rounds 50 -trace "$$tmp/trace.json" >/dev/null && \
	grep -q '"hw.world_switch"' "$$tmp/trace.json" && \
	grep -q '"traceEvents"' "$$tmp/trace.json" && \
	echo "trace-smoke: Chrome trace exported and well-formed"

# The parallel runner must produce byte-identical artifacts to a serial
# run for the same seed. openloop rides along because its per-window
# CSVs are the output most sensitive to trial scheduling.
determinism:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/benchsuite -exp table3,openloop -parallel 1 -csv "$$tmp/serial" >/dev/null && \
	$(GO) run ./cmd/benchsuite -exp table3,openloop -parallel 8 -csv "$$tmp/parallel" >/dev/null && \
	diff -r "$$tmp/serial" "$$tmp/parallel" && \
	echo "determinism: serial and parallel CSVs identical"

# Perf trajectory: engine microbenchmarks + a fixed benchsuite smoke
# run, recorded in BENCH_7.json. A smoke, not a threshold — except the
# zero-alloc gates, which fail the build on regression. bench-full also
# re-measures the full-suite wall clock (minutes).
bench:
	sh scripts/bench.sh

bench-full:
	BENCH_FULL=1 sh scripts/bench.sh

# The historical whole-repo benchmark sweep (one per paper artifact).
bench-paper:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Start perf work from a pprof, not a guess: profiles the heaviest
# registry experiment and leaves cpu.pprof/mem.pprof for
# `go tool pprof`.
profile:
	$(GO) run ./cmd/benchsuite -exp fig6 -parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof >/dev/null
	@echo "profile: wrote cpu.pprof and mem.pprof (go tool pprof cpu.pprof)"

clean:
	$(GO) clean ./...
