# Development entry points. `make check` is the full gate: vet, build,
# race-enabled tests, a benchsuite smoke run and an end-to-end
# determinism check (serial CSV output == 8-way parallel CSV output).

GO ?= go

.PHONY: all check vet build test race smoke determinism bench clean

all: check

check: vet build race smoke determinism

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The shape tests simulate tens of seconds of machine time; under the
# race detector on a small host that exceeds go test's default 10m
# package timeout, so raise it.
race:
	$(GO) test -race -timeout 45m ./...

# A quick end-to-end run through the registry and the parallel runner.
smoke:
	$(GO) run ./cmd/benchsuite -exp table2 -parallel 4

# The parallel runner must produce byte-identical artifacts to a serial
# run for the same seed.
determinism:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/benchsuite -exp table3 -parallel 1 -csv "$$tmp/serial" >/dev/null && \
	$(GO) run ./cmd/benchsuite -exp table3 -parallel 8 -csv "$$tmp/parallel" >/dev/null && \
	diff -r "$$tmp/serial" "$$tmp/parallel" && \
	echo "determinism: serial and parallel CSVs identical"

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

clean:
	$(GO) clean ./...
