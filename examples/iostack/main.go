// Iostack: the I/O story of the paper in one run — how core gapping
// interacts with emulated virtio devices versus SR-IOV pass-through
// (§5.3, Figs. 8-9).
//
// It runs a NetPIPE ping-pong over both NIC types and an IOzone sweep
// over the virtio disk, under both execution modes, and prints the
// crossovers: virtio pays for every exit, SR-IOV needs the host only for
// interrupts, and block I/O reaches parity once requests are large
// enough to amortize the exit path.
package main

import (
	"fmt"

	"coregap"
)

func main() {
	fmt.Println("=== NetPIPE one-way latency (us) ===")
	r := coregap.RunFig8([]int{256, 4096, 65536}, 30, 5)
	fmt.Print(r.Latency)

	fmt.Println()
	fmt.Println("=== NetPIPE throughput (Gbit/s) ===")
	fmt.Print(r.Throughput)

	fmt.Println()
	fmt.Println("=== IOzone sync write throughput to virtio-blk (MiB/s) ===")
	fig := coregap.RunFig9([]int{4 << 10, 64 << 10, 1 << 20, 16 << 20}, 5)
	fmt.Print(fig)

	fmt.Println()
	small, _ := fig.Series("core-gapped read").YAt(4 << 10)
	smallBase, _ := fig.Series("shared-core read").YAt(4 << 10)
	big, _ := fig.Series("core-gapped read").YAt(16 << 20)
	bigBase, _ := fig.Series("shared-core read").YAt(16 << 20)
	fmt.Printf("virtio-blk 4KiB records:  core-gapped at %.0f%% of shared-core throughput\n",
		100*small/smallBase)
	fmt.Printf("virtio-blk 16MiB records: core-gapped at %.0f%% of shared-core throughput\n",
		100*big/bigBase)
	fmt.Println("\ntakeaway: emulated I/O is core gapping's worst case; with SR-IOV")
	fmt.Println("(the direction cloud hardware is moving) the gap nearly disappears.")
}
