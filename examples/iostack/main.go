// Iostack: the I/O story of the paper in one run — how core gapping
// interacts with emulated virtio devices versus SR-IOV pass-through
// (§5.3, Figs. 8-9).
//
// It drives the experiment registry (fig8, fig9) through a parallel
// runner — every NetPIPE/IOzone configuration is an independent trial on
// its own simulation engine — and prints the crossovers: virtio pays for
// every exit, SR-IOV needs the host only for interrupts, and block I/O
// reaches parity once requests are large enough to amortize the exit
// path.
package main

import (
	"fmt"
	"os"

	"coregap"
)

func main() {
	runner := coregap.NewExpRunner(0) // GOMAXPROCS workers
	profile := coregap.ExpProfile{Seed: 5}

	fig8, err := coregap.RunExperiment("fig8", profile, runner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("=== NetPIPE one-way latency (us) ===")
	fmt.Print(fig8.Artifacts[0].Item)
	fmt.Println()
	fmt.Println("=== NetPIPE throughput (Gbit/s) ===")
	fmt.Print(fig8.Artifacts[1].Item)

	fig9rep, err := coregap.RunExperiment("fig9", profile, runner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("=== IOzone sync I/O throughput to virtio-blk (MiB/s) ===")
	fig := fig9rep.Artifacts[0].Item.(*coregap.Figure)
	fmt.Print(fig)

	fmt.Println()
	small, _ := fig.Series("core-gapped read").YAt(4 << 10)
	smallBase, _ := fig.Series("shared-core read").YAt(4 << 10)
	big, _ := fig.Series("core-gapped read").YAt(16 << 20)
	bigBase, _ := fig.Series("shared-core read").YAt(16 << 20)
	fmt.Printf("virtio-blk 4KiB records:  core-gapped at %.0f%% of shared-core throughput\n",
		100*small/smallBase)
	fmt.Printf("virtio-blk 16MiB records: core-gapped at %.0f%% of shared-core throughput\n",
		100*big/bigBase)
	fmt.Println("\ntakeaway: emulated I/O is core gapping's worst case; with SR-IOV")
	fmt.Println("(the direction cloud hardware is moving) the gap nearly disappears.")
}
