// Quickstart: run the same CPU-bound workload as a traditional
// shared-core VM and as a core-gapped confidential VM, compare the
// scores, and verify the CVM's attestation token proves a core-gapping
// monitor is in charge.
package main

import (
	"fmt"
	"log"

	"coregap"
	"coregap/internal/attest"
)

func main() {
	const (
		cores = 8
		work  = 500 * coregap.Millisecond
	)

	// ----- Traditional shared-core VM: 8 vCPUs time-share 8 cores. -----
	shared := coregap.NewNode(cores, coregap.Baseline(), coregap.DefaultParams(), 42)
	cmShared := coregap.NewCoreMark(cores, work)
	if _, err := shared.NewVM("baseline", cores, cmShared); err != nil {
		log.Fatal(err)
	}
	endShared := shared.RunUntilAllHalted(60 * coregap.Second)

	// ----- Core-gapped CVM: 7 dedicated cores + 1 host core. -----
	// Same number of physical cores in both configurations (§5.1).
	gapped := coregap.NewNode(cores, coregap.GappedDefault(), coregap.DefaultParams(), 42)
	cmGapped := coregap.NewCoreMark(cores-1, work)
	vm, err := gapped.NewVM("cvm", cores-1, cmGapped)
	if err != nil {
		log.Fatal(err)
	}
	endGapped := gapped.RunUntilAllHalted(60 * coregap.Second)

	fmt.Println("CoreMark-PRO on", cores, "physical cores:")
	fmt.Printf("  shared-core VM  (8 vCPUs): score %.3f effective cores\n",
		cmShared.Score(coregap.Duration(endShared)))
	fmt.Printf("  core-gapped CVM (7 vCPUs): score %.3f effective cores\n",
		cmGapped.Score(coregap.Duration(endGapped)))
	fmt.Printf("  CVM exits to host: %d total (delegation handled %d timer ticks locally)\n",
		gapped.Met.Counter("cvm.exits.total").Value(),
		gapped.Met.Counter("cvm.ticks.delegated").Value())

	// ----- Attestation: the guest's proof that cores are gapped. -----
	token, err := gapped.Mon.Token(vm.Realm(), [32]byte{0xC0, 0xFF, 0xEE})
	if err != nil {
		log.Fatal(err)
	}
	policy := attest.Policy{
		RequireCoreGapped: true,
		ExpectedRIM:       vm.Realm().Ledger().RIM(),
	}
	if !gapped.Mon.Verifier().Verify(token) {
		log.Fatal("token signature invalid")
	}
	if err := policy.Evaluate(token); err != nil {
		log.Fatalf("policy rejected platform: %v", err)
	}
	fmt.Printf("\nattestation: monitor %q, core-gapped=%v — policy satisfied\n",
		token.MonitorVersion, token.CoreGapped)
	fmt.Printf("dedicated cores %v are bound for the CVM's lifetime; host core: %v\n",
		vm.GuestCores(), vm.HostCore())
}
