// Attackdemo: the security story of the paper, end to end.
//
// A victim CVM computes with secrets; a co-located attacker guest runs
// every transient-execution primitive from the Fig. 3 catalogue. Under
// shared-core scheduling (with and without deployed mitigations), secrets
// leak through per-core structures. Under core-gapped scheduling the
// monitor refuses to ever co-locate the two domains, and only the shared
// staging buffer (CrossTalk) remains — exactly the paper's claim.
package main

import (
	"fmt"

	"coregap"
	"coregap/internal/attack"
	"coregap/internal/uarch"
	"coregap/internal/vulncat"
)

func main() {
	fmt.Println("=== transient-execution attack battery ===")
	fmt.Println()

	h := coregap.NewAttackHarness(7, 2, false)
	for _, sched := range []attack.Scheduling{
		coregap.SharedTimeSlicedNoFlush,
		coregap.SharedTimeSliced,
		coregap.CoreGappedPlacement,
	} {
		res := h.RunBattery(sched)
		fmt.Printf("%-40s %2d/%2d leak\n", sched.String()+":",
			len(res.LeakedVulns()), len(res.Outcomes))
	}

	fmt.Println()
	fmt.Println("=== per-vulnerability verdicts under core gapping ===")
	res := h.RunBattery(coregap.CoreGappedPlacement)
	for _, o := range res.Outcomes {
		verdict := "blocked"
		if o.Leaked {
			verdict = fmt.Sprintf("LEAKED (%d secret samples)", o.Samples)
		}
		fmt.Printf("  %-32s %-12s %s\n", o.Vuln.Name, o.Vuln.Scope, verdict)
	}

	fmt.Println()
	s := coregap.SummarizeVulns(coregap.VulnCatalogue())
	fmt.Printf("catalogue 2018-2024: %d issues; %d confined to a core and removed\n",
		s.Total, s.Mitigated)
	fmt.Printf("from the CVM's TCB by core gapping. Cross-core advisory-level leaks: %v.\n",
		s.CrossCoreAdvisory)

	// The remaining LLC contention channel closes with way-partitioning
	// (recommended in §2.4); CrossTalk needed its microcode fix.
	hp := coregap.NewAttackHarness(7, 2, true)
	part := hp.RunBattery(coregap.CoreGappedPlacement)
	fmt.Printf("with LLC way-partitioning on top: %d leak %v\n",
		len(part.LeakedVulns()), part.LeakedVulns())

	// And the structural argument, per structure class.
	fmt.Println()
	fmt.Println("=== structures exploited, by vulnerability count ===")
	idx := vulncat.ByStructure(coregap.VulnCatalogue())
	kinds := append(uarch.PerCoreKinds(), uarch.SharedKinds()...)
	for _, kind := range kinds {
		vulns := idx[kind]
		if len(vulns) == 0 {
			continue
		}
		where := "per-core (gapped away)"
		if kind.Shared() {
			where = "SHARED across cores"
		}
		fmt.Printf("  %-16s %2d vulnerabilities — %s\n", kind, len(vulns), where)
	}
}
