// Cloudnode: a multi-tenant node lifecycle under core gapping.
//
// The core planner admits several CVMs, the host hotplugs cores out and
// hands them to the monitor, the tenants run (one of them a Redis server
// under client load), then VMs stop and their cores return to the host —
// demonstrating admission control, binding enforcement, reclaim, and the
// planner's fragmentation behaviour (§3, §4.2).
package main

import (
	"fmt"
	"log"

	"coregap"
	"coregap/internal/vmm"
)

func main() {
	const cores = 16
	node := coregap.NewNode(cores, coregap.GappedDefault(), coregap.DefaultParams(), 99)

	// ----- Admit three tenants. -----
	cmA := coregap.NewCoreMark(4, 300*coregap.Millisecond)
	vmA, err := node.NewVM("tenant-a", 4, cmA)
	if err != nil {
		log.Fatal(err)
	}
	cmB := coregap.NewCoreMark(6, 300*coregap.Millisecond)
	vmB, err := node.NewVM("tenant-b", 6, cmB)
	if err != nil {
		log.Fatal(err)
	}
	redis := coregap.NewRedis(coregap.SRIOVNet)
	vmC, err := node.NewVM("tenant-c", 2, redis)
	if err != nil {
		log.Fatal(err)
	}
	for _, vm := range []*coregap.VM{vmA, vmB, vmC} {
		fmt.Printf("%-9s dedicated cores %v, host core %v\n",
			vm.Name(), vm.GuestCores(), vm.HostCore())
	}

	// Admission control: no room for a 4-vCPU fourth tenant (1 host core
	// + 12 dedicated leaves 3 free).
	if _, err := node.NewVM("tenant-d", 4, coregap.NewCoreMark(4, coregap.Millisecond)); err != nil {
		fmt.Printf("tenant-d rejected: %v\n", err)
	}

	// ----- Drive Redis with 25 closed-loop clients. -----
	peer := vmm.NewPeer(node.Eng, vmC.VMM.Costs(), node.Met)
	peer.Connect(vmC.VMM.VF.DeliverToGuest)
	lg := vmm.NewLoadGen(peer, 25, 512,
		func(c int) int { return coregap.EncodeOpTag(coregap.OpGet, c) }, "redis.latency")
	vmC.VMM.VF.ConnectPeer(lg.OnResponse)
	node.Eng.After(5*coregap.Millisecond, "load", lg.Start)

	// Run until the compute tenants finish; Redis keeps serving.
	node.Eng.RunFor(400 * coregap.Millisecond)
	lg.Stop()
	node.Eng.RunFor(5 * coregap.Millisecond)

	fmt.Printf("\ntenant-a score: %.2f effective cores\n", cmA.Score(400*coregap.Millisecond))
	fmt.Printf("tenant-b score: %.2f effective cores\n", cmB.Score(400*coregap.Millisecond))
	hist := node.Met.Hist("redis.latency")
	fmt.Printf("tenant-c redis: %d requests served, mean latency %v, p99 %v\n",
		lg.Served(), hist.Mean(), hist.Percentile(99))

	// ----- Teardown: destroy VMs, reclaim cores. -----
	for _, vm := range []*coregap.VM{vmA, vmB, vmC} {
		if err := node.StopVM(vm); err != nil {
			log.Fatalf("stop %s: %v", vm.Name(), err)
		}
	}
	node.Eng.RunFor(10 * coregap.Millisecond)
	fmt.Printf("\nafter teardown: %d cores online under the host, %d still dedicated\n",
		node.Kern.OnlineCount(), node.Mon.DedicatedCount())
	fmt.Printf("planner free pool: %d cores, fragmentation %.2f\n",
		node.Plan.FreeCount(), node.Plan.Fragmentation())

	// Long-lived nodes fragment; the planner computes a compaction plan
	// and the monitor executes the coarse-timescale rebinds (§3).
	fmt.Println()
	cmF := coregap.NewCoreMark(2, 100*coregap.Millisecond)
	vmF, err := node.NewVM("tenant-frag", 2, cmF)
	if err != nil {
		log.Fatal(err)
	}
	node.Eng.RunFor(10 * coregap.Millisecond)
	// Artificially fragment: rebind one vCPU to a high core, then show
	// the compaction plan that would undo it.
	if err := node.RebindVCPU(vmF, 1, 12); err != nil {
		log.Fatal(err)
	}
	node.Eng.RunFor(20 * coregap.Millisecond)
	fmt.Printf("after rebind: tenant-frag on cores %v, fragmentation %.2f\n",
		vmF.GuestCores(), node.Plan.Fragmentation())
	for _, m := range node.Plan.CompactionPlan() {
		fmt.Printf("  compaction move: %v\n", m)
	}
	node.RunUntilAllHalted(10 * coregap.Second)
	node.StopVM(vmF)
	node.Eng.RunFor(10 * coregap.Millisecond)

	// The freed window is immediately reusable.
	cmE := coregap.NewCoreMark(10, 50*coregap.Millisecond)
	vmE, err := node.NewVM("tenant-e", 10, cmE)
	if err != nil {
		log.Fatal(err)
	}
	node.RunUntilAllHalted(10 * coregap.Second)
	fmt.Printf("tenant-e admitted on %v and completed (done=%v)\n",
		vmE.GuestCores(), cmE.Done())
}
