package coregap

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates its artifact through the
// experiment registry and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the paper's
// result set.
//
// Benchmarks run the registry's reduced profiles to keep a full -bench=.
// run in the minutes range; cmd/benchsuite -full runs the paper-sized
// versions.

import (
	"strings"
	"testing"
)

// benchRun executes one registered experiment on the default worker pool
// with the benchmark's fixed seed.
func benchRun(b *testing.B, name string) *ExpReport {
	b.Helper()
	rep, err := RunExperiment(name, ExpProfile{Seed: 42}, NewExpRunner(0))
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// figure extracts the idx'th artifact of a report as a Figure.
func figure(b *testing.B, rep *ExpReport, idx int) *Figure {
	b.Helper()
	fig, ok := rep.Artifacts[idx].Item.(*Figure)
	if !ok {
		b.Fatalf("%s artifact %d is not a figure", rep.Experiment, idx)
	}
	return fig
}

// BenchmarkTable2NullRMMCall regenerates Table 2: null RMM call
// latencies over the three transports.
func BenchmarkTable2NullRMMCall(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "table2")
	}
	b.ReportMetric(rep.Value("async", "ns"), "async-ns")
	b.ReportMetric(rep.Value("sync", "ns"), "sync-ns")
	b.ReportMetric(rep.Value("samecore", "ns"), "samecore-ns")
}

// BenchmarkTable3VirtualIPI regenerates Table 3: virtual IPI latency.
func BenchmarkTable3VirtualIPI(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "table3")
	}
	b.ReportMetric(Duration(rep.Value("nodeleg", "vipi.mean.ns")).Micros(), "nodeleg-us")
	b.ReportMetric(Duration(rep.Value("deleg", "vipi.mean.ns")).Micros(), "deleg-us")
	b.ReportMetric(Duration(rep.Value("shared", "vipi.mean.ns")).Micros(), "shared-us")
}

// BenchmarkTable4ExitCounts regenerates Table 4: CoreMark-PRO exit
// counts with and without interrupt delegation.
func BenchmarkTable4ExitCounts(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "table4")
	}
	b.ReportMetric(rep.Value("nodeleg", "exits.interrupt"), "irq-exits-nodeleg")
	b.ReportMetric(rep.Value("deleg", "exits.interrupt"), "irq-exits-deleg")
	b.ReportMetric(rep.Value("nodeleg", "exits.total"), "total-exits-nodeleg")
	b.ReportMetric(rep.Value("deleg", "exits.total"), "total-exits-deleg")
}

// BenchmarkTable5Redis regenerates Table 5: the Redis benchmark under
// both execution modes.
func BenchmarkTable5Redis(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "table5")
	}
	for _, t := range rep.Trials {
		name := strings.ReplaceAll(strings.ReplaceAll(t.Spec.ID, "/", "-"), " ", "-")
		b.ReportMetric(t.V("krps"), name+"-krps")
	}
}

// BenchmarkFig3VulnTimeline regenerates Figure 3's catalogue and runs
// the attack battery verifying every mitigation verdict.
func BenchmarkFig3VulnTimeline(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig3")
	}
	s := SummarizeVulns(VulnCatalogue())
	b.ReportMetric(float64(s.Total), "vulns")
	b.ReportMetric(float64(s.Mitigated), "mitigated")
	b.ReportMetric(rep.Value("zero-day", "leaks"), "leaks-sharedcore")
	b.ReportMetric(rep.Value("gapped", "leaks"), "leaks-coregapped")
}

// BenchmarkFig6CoreMarkScaling regenerates Figure 6 (reduced sweep) and
// the §5.2 run-to-run latency statistic.
func BenchmarkFig6CoreMarkScaling(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig6")
	}
	fig := figure(b, rep, 0)
	b.ReportMetric(fig.Series("shared-core").MaxY(), "shared-max-score")
	b.ReportMetric(fig.Series("core-gapped").MaxY(), "gapped-max-score")
	b.ReportMetric(fig.Series("busy-wait, no delegation").MaxY(), "busywait-max-score")
	b.ReportMetric(Duration(rep.Value("core-gapped@16", "runtorun.mean.ns")).Micros(), "run-to-run-us")
}

// BenchmarkFig7MultiVM regenerates Figure 7 (reduced sweep): aggregate
// score for an increasing count of 4-core VMs.
func BenchmarkFig7MultiVM(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig7")
	}
	fig := figure(b, rep, 0)
	b.ReportMetric(fig.Series("shared-core").MaxY(), "shared-agg-score")
	b.ReportMetric(fig.Series("core-gapped").MaxY(), "gapped-agg-score")
}

// BenchmarkFig8NetPIPE regenerates Figure 8 (reduced sweep): NetPIPE
// latency/throughput for virtio and SR-IOV under both modes.
func BenchmarkFig8NetPIPE(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig8")
	}
	lat, tput := figure(b, rep, 0), figure(b, rep, 1)
	if y, ok := lat.Series("SR-IOV shared-core").YAt(1024); ok {
		b.ReportMetric(y, "sriov-shared-lat-us")
	}
	if y, ok := lat.Series("SR-IOV core-gapped").YAt(1024); ok {
		b.ReportMetric(y, "sriov-gapped-lat-us")
	}
	if y, ok := tput.Series("virtio core-gapped").YAt(16384); ok {
		b.ReportMetric(y, "virtio-gapped-gbps")
	}
}

// BenchmarkFig9IOzone regenerates Figure 9 (reduced sweep): sync virtio
// block throughput vs record size.
func BenchmarkFig9IOzone(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig9")
	}
	fig := figure(b, rep, 0)
	if y, ok := fig.Series("shared-core read").YAt(4 << 10); ok {
		b.ReportMetric(y, "shared-4k-mibs")
	}
	if y, ok := fig.Series("core-gapped read").YAt(4 << 10); ok {
		b.ReportMetric(y, "gapped-4k-mibs")
	}
	if y, ok := fig.Series("core-gapped read").YAt(16 << 20); ok {
		b.ReportMetric(y, "gapped-16m-mibs")
	}
}

// BenchmarkFig10KernelBuild regenerates Figure 10 (reduced sweep):
// kernel build time scaling on a virtio disk.
func BenchmarkFig10KernelBuild(b *testing.B) {
	var rep *ExpReport
	for i := 0; i < b.N; i++ {
		rep = benchRun(b, "fig10")
	}
	fig := figure(b, rep, 0)
	if y, ok := fig.Series("shared-core").YAt(16); ok {
		b.ReportMetric(y, "shared-16c-s")
	}
	if y, ok := fig.Series("core-gapped").YAt(16); ok {
		b.ReportMetric(y, "gapped-16c-s")
	}
}

// BenchmarkSecurityBattery runs the full attack battery under the three
// schedulings (the §2.4 threat-model validation).
func BenchmarkSecurityBattery(b *testing.B) {
	var gapped BatteryResult
	var zeroDay BatteryResult
	for i := 0; i < b.N; i++ {
		h := NewAttackHarness(42, 2, false)
		zeroDay = h.RunBattery(SharedTimeSlicedNoFlush)
		gapped = h.RunBattery(CoreGappedPlacement)
	}
	b.ReportMetric(float64(len(zeroDay.LeakedVulns())), "leaks-shared-zeroday")
	b.ReportMetric(float64(len(gapped.LeakedVulns())), "leaks-coregapped")
}
