package coregap

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5). Each benchmark regenerates its artifact through the
// full machinery and reports the headline numbers as custom metrics, so
// `go test -bench=. -benchmem` reproduces the paper's result set.
//
// Benchmarks use moderately sized sweeps to keep a full -bench=. run in
// the minutes range; cmd/benchsuite runs the paper-sized versions.

import (
	"strings"
	"testing"
)

// BenchmarkTable2NullRMMCall regenerates Table 2: null RMM call
// latencies over the three transports.
func BenchmarkTable2NullRMMCall(b *testing.B) {
	var r Table2Result
	for i := 0; i < b.N; i++ {
		r = RunTable2(42)
	}
	b.ReportMetric(float64(r.Async), "async-ns")
	b.ReportMetric(float64(r.Sync), "sync-ns")
	b.ReportMetric(float64(r.SameCore), "samecore-ns")
}

// BenchmarkTable3VirtualIPI regenerates Table 3: virtual IPI latency.
func BenchmarkTable3VirtualIPI(b *testing.B) {
	var r Table3Result
	for i := 0; i < b.N; i++ {
		r = RunTable3(42)
	}
	b.ReportMetric(r.NoDeleg.Micros(), "nodeleg-us")
	b.ReportMetric(r.Delegated.Micros(), "deleg-us")
	b.ReportMetric(r.SharedCore.Micros(), "shared-us")
}

// BenchmarkTable4ExitCounts regenerates Table 4: CoreMark-PRO exit
// counts with and without interrupt delegation.
func BenchmarkTable4ExitCounts(b *testing.B) {
	var r Table4Result
	for i := 0; i < b.N; i++ {
		r = RunTable4(42)
	}
	b.ReportMetric(float64(r.InterruptExits[0]), "irq-exits-nodeleg")
	b.ReportMetric(float64(r.InterruptExits[1]), "irq-exits-deleg")
	b.ReportMetric(float64(r.TotalExits[0]), "total-exits-nodeleg")
	b.ReportMetric(float64(r.TotalExits[1]), "total-exits-deleg")
}

// BenchmarkTable5Redis regenerates Table 5: the Redis benchmark under
// both execution modes.
func BenchmarkTable5Redis(b *testing.B) {
	var r Table5Result
	for i := 0; i < b.N; i++ {
		r = RunTable5(400*Millisecond, 42)
	}
	for _, row := range r.Rows {
		name := strings.ReplaceAll(row.Op.String()+"-"+row.Mode, " ", "-")
		b.ReportMetric(row.Throughput, name+"-krps")
	}
}

// BenchmarkFig3VulnTimeline regenerates Figure 3's catalogue and runs
// the attack battery verifying every mitigation verdict.
func BenchmarkFig3VulnTimeline(b *testing.B) {
	var r Fig3Result
	for i := 0; i < b.N; i++ {
		r = RunFig3(42)
	}
	b.ReportMetric(float64(r.Summary.Total), "vulns")
	b.ReportMetric(float64(r.Summary.Mitigated), "mitigated")
	b.ReportMetric(float64(len(r.ZeroDayLeaks)), "leaks-sharedcore")
	b.ReportMetric(float64(len(r.CoreGappedLeaks)), "leaks-coregapped")
}

// BenchmarkFig6CoreMarkScaling regenerates Figure 6 (reduced sweep) and
// the §5.2 run-to-run latency statistic.
func BenchmarkFig6CoreMarkScaling(b *testing.B) {
	var r Fig6Result
	for i := 0; i < b.N; i++ {
		r = RunFig6([]int{2, 4, 8, 16}, 300*Millisecond, 42)
	}
	b.ReportMetric(r.Figure.Series("shared-core").MaxY(), "shared-max-score")
	b.ReportMetric(r.Figure.Series("core-gapped").MaxY(), "gapped-max-score")
	b.ReportMetric(r.Figure.Series("busy-wait, no delegation").MaxY(), "busywait-max-score")
	b.ReportMetric(r.RunToRunMean.Micros(), "run-to-run-us")
}

// BenchmarkFig7MultiVM regenerates Figure 7 (reduced sweep): aggregate
// score for an increasing count of 4-core VMs.
func BenchmarkFig7MultiVM(b *testing.B) {
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = RunFig7(8, 200*Millisecond, 42)
	}
	b.ReportMetric(fig.Series("shared-core").MaxY(), "shared-agg-score")
	b.ReportMetric(fig.Series("core-gapped").MaxY(), "gapped-agg-score")
}

// BenchmarkFig8NetPIPE regenerates Figure 8 (reduced sweep): NetPIPE
// latency/throughput for virtio and SR-IOV under both modes.
func BenchmarkFig8NetPIPE(b *testing.B) {
	var r Fig8Result
	for i := 0; i < b.N; i++ {
		r = RunFig8([]int{1024, 65536, 1 << 20}, 30, 42)
	}
	if y, ok := r.Latency.Series("SR-IOV shared-core").YAt(1024); ok {
		b.ReportMetric(y, "sriov-shared-lat-us")
	}
	if y, ok := r.Latency.Series("SR-IOV core-gapped").YAt(1024); ok {
		b.ReportMetric(y, "sriov-gapped-lat-us")
	}
	if y, ok := r.Throughput.Series("virtio core-gapped").YAt(65536); ok {
		b.ReportMetric(y, "virtio-gapped-gbps")
	}
}

// BenchmarkFig9IOzone regenerates Figure 9 (reduced sweep): sync virtio
// block throughput vs record size.
func BenchmarkFig9IOzone(b *testing.B) {
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = RunFig9([]int{4 << 10, 256 << 10, 16 << 20}, 42)
	}
	if y, ok := fig.Series("shared-core read").YAt(4 << 10); ok {
		b.ReportMetric(y, "shared-4k-mibs")
	}
	if y, ok := fig.Series("core-gapped read").YAt(4 << 10); ok {
		b.ReportMetric(y, "gapped-4k-mibs")
	}
	if y, ok := fig.Series("core-gapped read").YAt(16 << 20); ok {
		b.ReportMetric(y, "gapped-16m-mibs")
	}
}

// BenchmarkFig10KernelBuild regenerates Figure 10 (reduced sweep):
// kernel build time scaling on a virtio disk.
func BenchmarkFig10KernelBuild(b *testing.B) {
	var fig *Figure
	for i := 0; i < b.N; i++ {
		fig = RunFig10([]int{4, 8, 16}, 150, 42)
	}
	if y, ok := fig.Series("shared-core").YAt(16); ok {
		b.ReportMetric(y, "shared-16c-s")
	}
	if y, ok := fig.Series("core-gapped").YAt(16); ok {
		b.ReportMetric(y, "gapped-16c-s")
	}
}

// BenchmarkSecurityBattery runs the full attack battery under the three
// schedulings (the §2.4 threat-model validation).
func BenchmarkSecurityBattery(b *testing.B) {
	var gapped BatteryResult
	var zeroDay BatteryResult
	for i := 0; i < b.N; i++ {
		h := NewAttackHarness(42, 2, false)
		zeroDay = h.RunBattery(SharedTimeSlicedNoFlush)
		gapped = h.RunBattery(CoreGappedPlacement)
	}
	b.ReportMetric(float64(len(zeroDay.LeakedVulns())), "leaks-shared-zeroday")
	b.ReportMetric(float64(len(gapped.LeakedVulns())), "leaks-coregapped")
}
